// In-field testing: the deployment scenario the paper's compact test
// enables. The optimized stimulus is generated once, stored on-chip (here:
// serialized alongside its golden response), and re-applied periodically
// while the device operates. Faults appearing over the device lifetime —
// aging, latent defects — are caught at the next test window by comparing
// the output spike trains against the golden response (Eq. 3).
//
// The demo simulates a device lifetime with randomly arriving faults and
// reports the detection latency of each.
//
//	go run ./examples/infield_test
package main

import (
	"fmt"
	"math/rand"
	"os"

	snntest "github.com/repro/snntest"
	"github.com/repro/snntest/internal/fault"
	"github.com/repro/snntest/internal/tensor"
)

func main() {
	rng := rand.New(rand.NewSource(1))
	net, err := snntest.BuildSHD(rng, snntest.ScaleTiny)
	if err != nil {
		fatal(err)
	}

	// One-time test generation (post-manufacturing) and golden-response
	// capture. In a real deployment both are burned into on-chip memory:
	// the stimulus here is a few hundred binary frames — kilobytes.
	cfg := snntest.TestGenConfig()
	cfg.Seed = 2
	gen, err := snntest.GenerateTest(net, cfg)
	if err != nil {
		fatal(err)
	}
	golden := net.Run(gen.Stimulus).Output().Clone()
	bits := gen.Stimulus.Len()
	fmt.Printf("stored test: %d steps (%d bits ≈ %.1f KiB packed), golden response %d spikes\n\n",
		gen.TotalSteps(), bits, float64(bits)/8/1024, int(tensor.Sum(golden)))

	// Device lifetime: every "day" there is a chance a new fault appears;
	// the stored test runs every testPeriod days.
	const (
		lifetimeDays = 365
		testPeriod   = 30
		faultChance  = 0.02
	)
	universe := snntest.EnumerateFaults(net)
	inj := fault.NewInjector(net)
	device := inj.Net()

	type liveFault struct {
		f        snntest.Fault
		appeared int
	}
	var active []liveFault
	detectedAt := map[int]int{} // appearance day → detection day

	for day := 1; day <= lifetimeDays; day++ {
		if rng.Float64() < faultChance {
			f := universe[rng.Intn(len(universe))]
			inj.Apply(f) // fault persists: no revert in this scenario
			active = append(active, liveFault{f: f, appeared: day})
		}
		if day%testPeriod != 0 {
			continue
		}
		// Periodic in-field test: apply the stored stimulus, compare
		// output spike trains to the golden response.
		out := device.Run(gen.Stimulus).Output()
		if tensor.L1Diff(golden, out) > 0 {
			for _, lf := range active {
				if _, done := detectedAt[lf.appeared]; !done {
					detectedAt[lf.appeared] = day
				}
			}
			fmt.Printf("day %3d: TEST FAILED — %d active fault(s), last injected %v\n",
				day, len(active), active[len(active)-1].f)
		} else {
			fmt.Printf("day %3d: test passed (%d latent fault(s) present)\n", day, len(active))
		}
	}

	fmt.Printf("\nlifetime summary: %d faults appeared, %d detected by the periodic test\n",
		len(active), len(detectedAt))
	for _, lf := range active {
		if d, ok := detectedAt[lf.appeared]; ok {
			fmt.Printf("  %v: appeared day %d, detected day %d (latency %d days)\n",
				lf.f, lf.appeared, d, d-lf.appeared)
		} else {
			fmt.Printf("  %v: appeared day %d, NOT detected (benign for this stimulus)\n",
				lf.f, lf.appeared)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "infield_test:", err)
	os.Exit(1)
}
