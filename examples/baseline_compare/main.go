// Baseline comparison: the paper's Table IV experiment — the proposed
// optimized test against the greedy prior-work methods ([17] adversarial,
// [18] dataset, [20] random) on one trained benchmark, reporting test
// duration, generation cost (fault simulations paid) and critical fault
// coverage.
//
//	go run ./examples/baseline_compare [-bench nmnist|ibm-gesture|shd]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/repro/snntest/internal/experiments"
	"github.com/repro/snntest/internal/snn"
)

func main() {
	bench := flag.String("bench", "nmnist", "benchmark to compare on")
	flag.Parse()

	opts := experiments.ScaledOptions(snn.ScaleTiny, 1)
	opts.Log = os.Stderr
	// The greedy baselines fault-simulate every candidate against the
	// whole universe; stride the universe and keep the candidate pool
	// small so the comparison finishes in a couple of minutes.
	opts.FaultStride = 9
	opts.TrainPerClass = 2
	p, err := experiments.NewPipeline(*bench, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s: trained to %.1f%% accuracy; fault universe %d\n\n",
		p.Benchmark, 100*p.Accuracy, len(p.Faults()))

	rows, err := experiments.Table4(p)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := experiments.RenderTable4(os.Stdout, rows); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// The headline asymmetry (Section IV-B): the greedy baselines verify
	// candidates by fault simulation (cost O(M·T_FS)); the proposed
	// method pays none during generation (O(M + T_FS)).
	fmt.Println("Generation-cost asymmetry:")
	for _, r := range rows {
		fmt.Printf("  %-18s %8d fault simulations, %6.2f samples of test, %6.2f%% critical FC\n",
			r.Method, r.FaultSims, r.DurationSamples, r.CriticalFC)
	}
}
