// NMNIST test generation: the paper's primary pipeline on the NMNIST-like
// benchmark — train the convolutional SNN of Fig. 4 on the synthetic
// saccade-digit dataset, generate the optimized test stimulus, verify its
// fault coverage against the classified fault universe, and render a
// stimulus snapshot (Fig. 7) plus the activation comparison (Fig. 8).
//
//	go run ./examples/nmnist_testgen [-scale tiny|small]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/repro/snntest/internal/experiments"
	"github.com/repro/snntest/internal/snn"
)

func main() {
	scaleFlag := flag.String("scale", "tiny", "model scale: tiny or small")
	flag.Parse()
	scale := snn.ScaleTiny
	if *scaleFlag == "small" {
		scale = snn.ScaleSmall
	}

	opts := experiments.ScaledOptions(scale, 1)
	opts.Log = os.Stderr
	p, err := experiments.NewPipeline("nmnist", opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("trained NMNIST model: %.1f%% test accuracy (%d neurons, %d synapses)\n\n",
		100*p.Accuracy, p.Net.NumNeurons(), p.Net.NumSynapses())

	// Table III metrics for this single benchmark.
	row, err := experiments.Table3(p)
	if err != nil {
		fatal(err)
	}
	if err := experiments.RenderTable3(os.Stdout, []experiments.Table3Row{row}); err != nil {
		fatal(err)
	}

	// Fig. 7: what the optimized stimulus looks like.
	if err := experiments.Fig7(os.Stdout, p, 3); err != nil {
		fatal(err)
	}

	// Fig. 8: optimized test vs. a dataset sample.
	d, err := experiments.Fig8(p)
	if err != nil {
		fatal(err)
	}
	if err := experiments.RenderFig8(os.Stdout, p, d); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nmnist_testgen:", err)
	os.Exit(1)
}
