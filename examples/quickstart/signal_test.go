package main

import (
	"bufio"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"github.com/repro/snntest/internal/obs"
)

// TestSigintFlushesTrace pins the graceful-shutdown contract end to end:
// a quickstart process interrupted mid-pipeline must still exit cleanly,
// and its -trace file must be complete, valid JSONL — terminated by the
// final counter snapshot — rather than a truncated stream.
func TestSigintFlushesTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs a subprocess")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "quickstart")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("go build: %v", err)
	}

	trace := filepath.Join(dir, "trace.jsonl")
	cmd := exec.Command(bin, "-quiet", "-trace", trace)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Interrupt as soon as the tour has printed its first report line, so
	// the signal lands while test generation is still ahead of us.
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		_ = cmd.Process.Kill()
		t.Fatalf("no stdout before exit (scan err: %v)", sc.Err())
	}
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	go func() {
		for sc.Scan() { // drain so the child never blocks on a full pipe
		}
	}()

	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("interrupted quickstart exited with error: %v", err)
		}
	case <-time.After(2 * time.Minute):
		_ = cmd.Process.Kill()
		t.Fatal("interrupted quickstart did not exit within 2m")
	}

	f, err := os.Open(trace)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var last obs.Event
	lines, counters := 0, 0
	fsc := bufio.NewScanner(f)
	fsc.Buffer(make([]byte, 1<<20), 1<<20)
	for fsc.Scan() {
		var e obs.Event
		if err := json.Unmarshal(fsc.Bytes(), &e); err != nil {
			t.Fatalf("trace line %d is not valid JSON: %v\n%s", lines+1, err, fsc.Text())
		}
		lines++
		last = e
		if e.Kind == obs.KindCounters {
			counters++
		}
	}
	if err := fsc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Fatal("trace is empty")
	}
	if counters != 1 || last.Kind != obs.KindCounters {
		t.Errorf("trace must end with exactly one counter snapshot; got %d snapshot(s), last event kind %q",
			counters, last.Kind)
	}
}
