package main

import (
	"bufio"
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"encoding/json"

	"github.com/repro/snntest/internal/obs"
)

// TestRunSmoke executes the full quickstart tour and checks each of its
// report lines, so the example cannot silently rot as the public facade
// evolves.
func TestRunSmoke(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run(nil, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := stdout.String()
	for _, want := range []string{
		"network \"nmnist\":",
		"spike train under constant drive:",
		"generated test:",
		"compacted test:",
		"fault universe:",
		"FC = ",
		"campaign work:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q; got:\n%s", want, out)
		}
	}
}

// TestRunTrace runs the quickstart with -trace and validates the emitted
// JSONL end to end: every line parses, the span tree covers
// calibrate → generate (per restart) → compact → campaign, campaign spans
// nest under compaction, and the counter snapshot reconciles with the
// per-campaign span attributes.
func TestRunTrace(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "trace.jsonl")
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-quiet", "-trace", trace}, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v", err)
	}
	if stderr.Len() != 0 {
		t.Errorf("-quiet run wrote to stderr:\n%s", stderr.String())
	}
	if obs.On() {
		t.Error("run left the obs layer enabled")
	}

	f, err := os.Open(trace)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var events []obs.Event
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var e obs.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("trace line %q is not valid JSON: %v", sc.Text(), err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	spans := map[string][]obs.Event{}
	var counters map[string]int64
	for _, e := range events {
		switch e.Kind {
		case obs.KindSpan:
			spans[e.Name] = append(spans[e.Name], e)
		case obs.KindCounters:
			counters = e.Counters
		}
	}
	for _, name := range []string{
		"quickstart", "generate", "generate/calibrate", "generate/iteration",
		"generate/restart", "generate/stage2", "compact", "campaign/simulate",
	} {
		if len(spans[name]) == 0 {
			t.Errorf("span tree missing %q", name)
		}
	}
	if counters == nil {
		t.Fatal("trace has no counter snapshot")
	}

	// The serial quickstart path runs exactly one restart per iteration.
	if got, want := len(spans["generate/restart"]), len(spans["generate/iteration"]); got != want {
		t.Errorf("restart spans = %d, want %d (one per iteration)", got, want)
	}
	// Per-chunk compaction campaigns nest under the compact span.
	if len(spans["compact"]) == 1 {
		compID := spans["compact"][0].ID
		nested := 0
		for _, s := range spans["campaign/simulate"] {
			if s.Parent == compID {
				nested++
			}
		}
		if nested == 0 {
			t.Error("no campaign/simulate span nests under compact")
		}
	}

	// Reconciliation: the counter snapshot's campaign layer-steps must
	// equal the sum of the per-campaign span attributes.
	var attrSum int64
	for _, s := range spans["campaign/simulate"] {
		v, ok := s.Attrs["layer_steps"].(float64)
		if !ok {
			t.Fatalf("campaign span missing layer_steps attr: %v", s.Attrs)
		}
		attrSum += int64(v)
	}
	if counters["fault_layer_steps_total"] != attrSum {
		t.Errorf("fault_layer_steps_total counter = %d, span attrs sum to %d",
			counters["fault_layer_steps_total"], attrSum)
	}
	for _, name := range []string{
		"snn_forward_passes_total", "snn_layer_steps_total", "snn_spikes_total",
		"core_iterations_total", "core_restarts_run_total", "fault_simulated_total", "fault_detected_total",
		"fault_full_layer_steps_total",
	} {
		if counters[name] <= 0 {
			t.Errorf("counter %s = %d, want > 0", name, counters[name])
		}
	}
	if counters["snn_layer_steps_total"] < counters["fault_layer_steps_total"] {
		t.Errorf("snn_layer_steps_total (%d) < fault_layer_steps_total (%d)",
			counters["snn_layer_steps_total"], counters["fault_layer_steps_total"])
	}
}

// TestRunTraceMatchesDarkRun pins the zero-interference contract at the
// example level: stdout is byte-identical with and without -trace.
func TestRunTraceMatchesDarkRun(t *testing.T) {
	var dark, lit, stderr bytes.Buffer
	if err := run(nil, &dark, &stderr); err != nil {
		t.Fatal(err)
	}
	trace := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := run([]string{"-quiet", "-trace", trace}, &lit, &stderr); err != nil {
		t.Fatal(err)
	}
	stripRuntime := func(s string) string {
		// The "runtime …" suffix of the generated-test line is wall-clock
		// dependent; everything else must match byte for byte.
		var out []string
		for _, l := range strings.Split(s, "\n") {
			if i := strings.Index(l, ", runtime "); i >= 0 {
				l = l[:i]
			}
			out = append(out, l)
		}
		return strings.Join(out, "\n")
	}
	if stripRuntime(dark.String()) != stripRuntime(lit.String()) {
		t.Errorf("-trace changed the run's stdout:\n--- dark ---\n%s\n--- traced ---\n%s",
			dark.String(), lit.String())
	}
}
