package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunSmoke executes the full quickstart tour and checks each of its
// four report lines, so the example cannot silently rot as the public
// facade evolves.
func TestRunSmoke(t *testing.T) {
	var stdout bytes.Buffer
	if err := run(&stdout); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := stdout.String()
	for _, want := range []string{
		"network \"nmnist\":",
		"spike train under constant drive:",
		"generated test:",
		"fault universe:",
		"FC = ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q; got:\n%s", want, out)
		}
	}
}
