// Quickstart: build a small spiking network, run the paper's test
// generation, compact the result, and verify the fault coverage of the
// optimized stimulus — the minimal end-to-end tour of the public API.
//
//	go run ./examples/quickstart
//
// Pass -trace trace.jsonl to record the run's observability stream
// (span tree + counters), -serve :9090 to watch the run live
// (/metrics, /runs, /debug/pprof), -v / -quiet to tune narration, and
// -profile-dir (or -cpuprofile / -memprofile) to capture phase-labelled
// pprof profiles — `benchreport -profile` folds them by pipeline phase.
// -stall-timeout with -serve and -ledger arms the stall watchdog.
// SIGINT/SIGTERM cancel the run gracefully: the partial result is
// reported and the trace is flushed intact.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	snntest "github.com/repro/snntest"
	"github.com/repro/snntest/internal/obs"
	_ "github.com/repro/snntest/internal/obs/telemetry" // -serve support
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) (err error) {
	fs := flag.NewFlagSet("quickstart", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var ocli obs.CLI
	ocli.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	log, stop, err := ocli.Start(stderr)
	if err != nil {
		return err
	}
	defer func() {
		if serr := stop(); err == nil {
			err = serr
		}
	}()
	sctx, cancel := obs.SignalContext(context.Background())
	defer cancel()
	ctx, root := obs.Start(sctx, "quickstart")
	defer root.End()
	rng := rand.New(rand.NewSource(1))

	// 1. Build a tiny NMNIST-style convolutional SNN (untrained weights
	//    are fine for a first tour; see examples/nmnist_testgen for the
	//    trained pipeline).
	net, err := snntest.BuildNMNIST(rng, snntest.ScaleTiny)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "network %q: %d neurons, %d synapses, input %v\n",
		net.Name, net.NumNeurons(), net.NumSynapses(), net.InShape)

	// 2. Illustrate the LIF dynamics (the paper's Fig. 1): drive the
	//    network with a constant stimulus and look at one spike train.
	demo := net.ZeroInput(12)
	for t := 0; t < 12; t++ {
		demo.Step(t).Fill(1)
	}
	rec := net.Run(demo)
	fmt.Fprintf(stdout, "conv neuron 0 spike train under constant drive: %v\n",
		rec.NeuronTrain(0, 0).Data())

	// 3. Generate the optimized test stimulus (Section IV). The reduced
	//    budget keeps this run in the seconds range.
	cfg := snntest.TestGenConfig()
	cfg.Seed = 2
	cfg.Log = log.Writer(obs.LevelDebug)
	res, err := snntest.GenerateTestContext(ctx, net, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "generated test: %d chunks, %d steps total, %.1f%% neurons activated, runtime %v\n",
		len(res.Chunks), res.TotalSteps(), 100*res.ActivatedFraction, res.Runtime.Round(1e6))

	// 4. Compact the test: drop chunks whose detected faults are covered
	//    by the remaining chunks (coverage is preserved exactly).
	faults := snntest.EnumerateFaults(net)
	log.Debugf("fault universe enumerated: %d faults", len(faults))
	res, cstats, err := snntest.CompactTestContext(ctx, net, res, faults, 0)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "compacted test: %d -> %d chunks, %d -> %d steps\n",
		cstats.ChunksBefore, cstats.ChunksAfter, cstats.StepsBefore, cstats.StepsAfter)

	// 5. One final fault-simulation campaign verifies the coverage
	//    (Eq. 3/4) — the only fault simulation in the whole flow.
	sim, err := snntest.SimulateFaultsWith(net, faults, res.Stimulus,
		snntest.CampaignOptions{Context: ctx})
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "fault universe: %d faults; detected: %d (FC = %.2f%%)\n",
		len(faults), sim.NumDetected(), 100*float64(sim.NumDetected())/float64(len(faults)))
	fmt.Fprintf(stdout, "campaign work: %d of %d layer-steps simulated\n",
		sim.LayerSteps, sim.FullLayerSteps)
	return nil
}
