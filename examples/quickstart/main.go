// Quickstart: build a small spiking network, run the paper's test
// generation, and verify the fault coverage of the optimized stimulus —
// the minimal end-to-end tour of the public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"io"
	"math/rand"
	"os"

	snntest "github.com/repro/snntest"
)

func main() {
	if err := run(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run(stdout io.Writer) error {
	rng := rand.New(rand.NewSource(1))

	// 1. Build a tiny NMNIST-style convolutional SNN (untrained weights
	//    are fine for a first tour; see examples/nmnist_testgen for the
	//    trained pipeline).
	net, err := snntest.BuildNMNIST(rng, snntest.ScaleTiny)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "network %q: %d neurons, %d synapses, input %v\n",
		net.Name, net.NumNeurons(), net.NumSynapses(), net.InShape)

	// 2. Illustrate the LIF dynamics (the paper's Fig. 1): drive the
	//    network with a constant stimulus and look at one spike train.
	demo := net.ZeroInput(12)
	for t := 0; t < 12; t++ {
		demo.Step(t).Fill(1)
	}
	rec := net.Run(demo)
	fmt.Fprintf(stdout, "conv neuron 0 spike train under constant drive: %v\n",
		rec.NeuronTrain(0, 0).Data())

	// 3. Generate the optimized test stimulus (Section IV). The reduced
	//    budget keeps this run in the seconds range.
	cfg := snntest.TestGenConfig()
	cfg.Seed = 2
	res, err := snntest.GenerateTest(net, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "generated test: %d chunks, %d steps total, %.1f%% neurons activated, runtime %v\n",
		len(res.Chunks), res.TotalSteps(), 100*res.ActivatedFraction, res.Runtime.Round(1e6))

	// 4. One final fault-simulation campaign verifies the coverage
	//    (Eq. 3/4) — the only fault simulation in the whole flow.
	faults := snntest.EnumerateFaults(net)
	sim, err := snntest.SimulateFaults(net, faults, res.Stimulus, 0)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "fault universe: %d faults; detected: %d (FC = %.2f%%)\n",
		len(faults), sim.NumDetected(), 100*float64(sim.NumDetected())/float64(len(faults)))
	return nil
}
