// Benchmark harness: one benchmark per table and figure of the paper,
// plus ablation benches for the design choices called out in DESIGN.md §5
// and micro-benchmarks of the substrates.
//
// Run with:
//
//	go test -bench=. -benchmem
//
// Each TableN/FigN benchmark regenerates its artifact end-to-end on the
// tiny-scale models (the same pipelines cmd/benchreport runs at small or
// full scale) and reports the headline quantities as benchmark metrics,
// so who-wins relationships are visible directly in the bench output:
// fc%, duration-samples, faultsims, activated%.
package snntest

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/repro/snntest/internal/baseline"
	"github.com/repro/snntest/internal/core"
	"github.com/repro/snntest/internal/experiments"
	"github.com/repro/snntest/internal/fault"
	"github.com/repro/snntest/internal/lint"
	"github.com/repro/snntest/internal/obs"
	"github.com/repro/snntest/internal/snn"
	"github.com/repro/snntest/internal/tensor"
)

// appendTrajectory records one bench artifact's headline numbers in the
// cumulative BENCH_trajectory.json history (BENCH_TRAJECTORY_OUT
// overrides the path), keyed by git revision and timestamp.
func appendTrajectory(b *testing.B, source string, metrics map[string]float64) {
	b.Helper()
	out := os.Getenv("BENCH_TRAJECTORY_OUT")
	if out == "" {
		out = "BENCH_trajectory.json"
	}
	if err := obs.AppendTrajectory(out, obs.NewTrajectoryRecord(source, metrics)); err != nil {
		b.Fatal(err)
	}
	fmt.Printf("trajectory record (%s) appended to %s\n\n", source, out)
}

// benchOpts is the shared tiny-scale configuration of the bench harness.
func benchOpts() experiments.Options {
	// Budgets are sized so the whole harness (every table, figure,
	// ablation and micro-benchmark) finishes inside go test's default
	// 10-minute package timeout on one CPU core.
	o := experiments.ScaledOptions(snn.ScaleTiny, 7)
	o.TrainPerClass = 4
	o.TestPerClass = 2
	o.TrainEpochs = 5
	o.SampleSteps = 20
	o.GenConfig.Steps1 = 40
	o.GenConfig.MaxIterations = 5
	o.GenConfig.MaxGrowth = 1
	o.FaultStride = 5
	return o
}

var (
	pipeOnce sync.Once
	pipeMap  map[string]*experiments.Pipeline
)

// pipelines builds (once) the three trained benchmark pipelines.
func pipelines(b *testing.B) map[string]*experiments.Pipeline {
	b.Helper()
	pipeOnce.Do(func() {
		pipeMap = map[string]*experiments.Pipeline{}
		for _, name := range experiments.Benchmarks {
			p, err := experiments.NewPipeline(name, benchOpts())
			if err != nil {
				panic(err)
			}
			pipeMap[name] = p
		}
	})
	return pipeMap
}

var printOnce sync.Map

// printArtifact renders a table/figure once per process so bench output
// stays readable across b.N iterations.
func printArtifact(key string, render func()) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		render()
	}
}

// ---------------------------------------------------------------------------
// Table I — benchmark characteristics (model build + train + evaluate)

func benchmarkTable1(b *testing.B, name string) {
	var row experiments.Table1Row
	for i := 0; i < b.N; i++ {
		p, err := experiments.NewPipeline(name, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		row = experiments.Table1(p)
	}
	b.ReportMetric(100*row.Accuracy, "accuracy%")
	b.ReportMetric(float64(row.Neurons), "neurons")
	b.ReportMetric(float64(row.Synapses), "synapses")
	printArtifact("table1-"+name, func() {
		experiments.RenderTable1(os.Stdout, []experiments.Table1Row{row})
	})
}

func BenchmarkTable1_NMNIST(b *testing.B)     { benchmarkTable1(b, "nmnist") }
func BenchmarkTable1_IBMGesture(b *testing.B) { benchmarkTable1(b, "ibm-gesture") }
func BenchmarkTable1_SHD(b *testing.B)        { benchmarkTable1(b, "shd") }

// ---------------------------------------------------------------------------
// Table II — fault-simulation campaign (criticality labelling)

func benchmarkTable2(b *testing.B, name string) {
	p := pipelines(b)[name]
	faults := p.Faults()
	testIn, _ := p.Data.Inputs("test")
	var critical []bool
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		critical = must(fault.Classify(p.Net, faults, testIn, 0, nil))
	}
	b.StopTimer()
	crit := 0
	for _, c := range critical {
		if c {
			crit++
		}
	}
	b.ReportMetric(float64(len(faults)), "faults")
	b.ReportMetric(float64(crit), "critical")
	printArtifact("table2-"+name, func() {
		experiments.RenderTable2(os.Stdout, []experiments.Table2Row{must(experiments.Table2(p))})
	})
}

func BenchmarkTable2_NMNIST(b *testing.B)     { benchmarkTable2(b, "nmnist") }
func BenchmarkTable2_IBMGesture(b *testing.B) { benchmarkTable2(b, "ibm-gesture") }
func BenchmarkTable2_SHD(b *testing.B)        { benchmarkTable2(b, "shd") }

// ---------------------------------------------------------------------------
// Table III — test generation + verification campaign

func benchmarkTable3(b *testing.B, name string) {
	p := pipelines(b)[name]
	p.Critical() // label faults outside the timed region
	var gen *core.Result
	var fc fault.Coverage
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := p.Opts.GenConfig
		cfg.Seed = int64(i + 1)
		gen = must(core.Generate(p.Net, cfg))
		sim := must(fault.Simulate(p.Net, p.Faults(), gen.Stimulus, 0, nil))
		fc = must(fault.Compute(p.Faults(), sim.Detected, must(p.Critical())))
	}
	b.StopTimer()
	b.ReportMetric(100*fc.CriticalFC(), "critFC%")
	b.ReportMetric(100*gen.ActivatedFraction, "activated%")
	b.ReportMetric(gen.DurationSamples(p.SampleStepsUsed()), "dur-samples")
	printArtifact("table3-"+name, func() {
		experiments.RenderTable3(os.Stdout, []experiments.Table3Row{must(experiments.Table3(p))})
	})
}

func BenchmarkTable3_NMNIST(b *testing.B)     { benchmarkTable3(b, "nmnist") }
func BenchmarkTable3_IBMGesture(b *testing.B) { benchmarkTable3(b, "ibm-gesture") }
func BenchmarkTable3_SHD(b *testing.B)        { benchmarkTable3(b, "shd") }

// ---------------------------------------------------------------------------
// Table IV — comparison with previous works (all methods, NMNIST)

func BenchmarkTable4_Comparison(b *testing.B) {
	p := pipelines(b)["nmnist"]
	p.Critical()
	p.Generate()
	var rows []experiments.Table4Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = must(experiments.Table4(p))
	}
	b.StopTimer()
	for _, r := range rows {
		switch r.Method {
		case "This work":
			b.ReportMetric(r.DurationSamples, "ours-samples")
			b.ReportMetric(r.CriticalFC, "ours-critFC%")
		case "[18] dataset":
			b.ReportMetric(r.DurationSamples, "d18-samples")
			b.ReportMetric(float64(r.FaultSims), "d18-faultsims")
		}
	}
	printArtifact("table4", func() { experiments.RenderTable4(os.Stdout, rows) })
}

// ---------------------------------------------------------------------------
// Figures

func BenchmarkFig7_Snapshots(b *testing.B) {
	p := pipelines(b)["nmnist"]
	p.Generate()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Fig7(nopWriter{}, p, 4)
	}
	printArtifact("fig7", func() { experiments.Fig7(os.Stdout, p, 3) })
}

func BenchmarkFig8_Activation(b *testing.B) {
	// The paper illustrates Fig. 8 on the IBM SNN; same here.
	p := pipelines(b)["ibm-gesture"]
	p.Generate()
	var d experiments.Fig8Data
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d = must(experiments.Fig8(p))
	}
	b.StopTimer()
	b.ReportMetric(100*d.Optimized.Overall, "optimized%")
	b.ReportMetric(100*d.Sample.Overall, "sample%")
	printArtifact("fig8", func() { experiments.RenderFig8(os.Stdout, p, d) })
}

func BenchmarkFig9_SpikeDiffs(b *testing.B) {
	p := pipelines(b)["ibm-gesture"]
	p.Generate()
	var d experiments.Fig9Data
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d = must(experiments.Fig9(p))
	}
	b.StopTimer()
	b.ReportMetric(float64(d.DetectedFaults), "detected")
	printArtifact("fig9", func() { experiments.RenderFig9(os.Stdout, p, d, 8) })
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §5)

func benchmarkAblation(b *testing.B, name string, mutate func(*core.Config)) {
	p := pipelines(b)["shd"]
	p.Critical()
	p.Generate()
	var r experiments.AblationResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r = must(experiments.Ablate(p, name, mutate))
	}
	b.StopTimer()
	b.ReportMetric(r.FullFC, "fullFC%")
	b.ReportMetric(r.VariantFC, "ablatedFC%")
	printArtifact("ablation-"+name, func() {
		experiments.RenderAblations(os.Stdout, []experiments.AblationResult{r})
	})
}

func BenchmarkAblationStage2(b *testing.B) {
	benchmarkAblation(b, "no-stage2", func(c *core.Config) { c.DisableStage2 = true })
}

func BenchmarkAblationL3(b *testing.B) {
	benchmarkAblation(b, "no-L3", func(c *core.Config) { c.DisableL3 = true })
}

func BenchmarkAblationL4(b *testing.B) {
	benchmarkAblation(b, "no-L4", func(c *core.Config) { c.DisableL4 = true })
}

func BenchmarkAblationGumbel(b *testing.B) {
	benchmarkAblation(b, "plain-sigmoid", func(c *core.Config) { c.PlainSigmoid = true })
}

// BenchmarkAblationDirectFC contrasts the paper's loss-proxy generation
// (no fault simulation in the loop) against direct FC-driven greedy
// selection: the faultsims metric exposes the O(M·T_FS) vs O(M+T_FS)
// asymmetry of Section IV-B.
func BenchmarkAblationDirectFC(b *testing.B) {
	p := pipelines(b)["shd"]
	faults := p.Faults()
	rng := rand.New(rand.NewSource(11))
	var direct *baseline.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		direct = must(baseline.Random20(p.Net, faults, 8, p.SampleStepsUsed(), 0.3, rng, baseline.DefaultConfig()))
	}
	b.StopTimer()
	b.ReportMetric(float64(direct.FaultSims), "direct-faultsims")
	b.ReportMetric(0, "proxy-faultsims")
	printArtifact("ablation-directfc", func() {
		fmt.Printf("Direct-FC greedy paid %d fault simulations during generation; the loss-proxy algorithm pays 0 (one verification campaign at the end).\n\n", direct.FaultSims)
	})
}

// ---------------------------------------------------------------------------
// Substrate micro-benchmarks

func BenchmarkForwardFast(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	net := must(snn.BuildNMNIST(rng, snn.ScaleTiny))
	stim := tensor.RandBernoulli(rng, 0.3, append([]int{50}, net.InShape...)...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Run(stim)
	}
}

// forwardBenchRow is one fixture's entry in BENCH_forward.json.
type forwardBenchRow struct {
	Benchmark         string  `json:"benchmark"`
	Steps             int     `json:"steps"`
	FusedUS           float64 `json:"fused_us"`
	ReferenceUS       float64 `json:"reference_us"`
	SpeedupX          float64 `json:"speedup_x"`
	FusedAllocsPerRun float64 `json:"fused_allocs_per_run"`
	BitIdentical      bool    `json:"bit_identical"`
}

// interleavedPair times fused and ref strictly alternately for the given
// wall-clock window and returns each side's total divided by the pair
// count. Alternating at single-run granularity makes the ratio robust to
// the slow phases shared CI machines drift through: a throttled stretch
// inflates both sums nearly proportionally, where timing the two sides in
// separate phases lets it land on only one of them.
func interleavedPair(window time.Duration, fused, ref func()) (tFused, tRef time.Duration, pairs int) {
	deadline := time.Now().Add(window)
	for time.Now().Before(deadline) {
		s0 := time.Now()
		fused()
		s1 := time.Now()
		ref()
		tRef += time.Since(s1)
		tFused += s1.Sub(s0)
		pairs++
	}
	return tFused / time.Duration(pairs), tRef / time.Duration(pairs), pairs
}

// BenchmarkForwardFused compares the fused per-layer forward kernels
// against the retained reference path (Scratch.SetReference) on every
// fixture network: per-pass wall clock, an AllocsPerRun gate pinning the
// fused full-pass at zero heap allocations, and bit-identity of the spike
// records. Asserts fused speedup ≥ 1.4× per fixture and writes
// BENCH_forward.json (override the path with BENCH_FORWARD_OUT).
func BenchmarkForwardFused(b *testing.B) {
	const steps = 50
	rng := rand.New(rand.NewSource(1))
	type fixture struct {
		name string
		net  *snn.Network
		stim *tensor.Tensor
	}
	fixtures := make([]fixture, 0, len(experiments.Benchmarks))
	for _, name := range experiments.Benchmarks {
		net := must(snn.Build(name, rng, snn.ScaleTiny))
		stim := tensor.RandBernoulli(rng, 0.3, append([]int{steps}, net.InShape...)...)
		fixtures = append(fixtures, fixture{name, net, stim})
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, fx := range fixtures {
			fx.net.Run(fx.stim)
		}
	}
	b.StopTimer()

	rows := make([]forwardBenchRow, 0, len(fixtures))
	for _, fx := range fixtures {
		fused, ref := fx.net.NewScratch(), fx.net.NewScratch()
		ref.SetReference(true)
		frec, _ := fused.RunFrom(0, nil, fx.stim)
		rrec, _ := ref.RunFrom(0, nil, fx.stim)
		identical := true
		for li := range fx.net.Layers {
			if !tensor.Equal(frec.Layers[li], rrec.Layers[li], 0) {
				identical = false
			}
		}
		if !identical {
			b.Fatalf("%s: fused record differs from reference", fx.name)
		}
		allocs := testing.AllocsPerRun(10, func() { fused.RunFrom(0, nil, fx.stim) })
		if allocs != 0 {
			b.Fatalf("%s: fused full forward pass allocates (%.1f allocs/run), want 0", fx.name, allocs)
		}
		// Best of up to three interleaved windows: a single window can
		// land entirely inside a host throttle phase, which compresses
		// the ratio even with interleaving; a clean window reports the
		// machine-independent kernel speedup.
		var tFused, tRef time.Duration
		speedup := 0.0
		for w := 0; w < 3 && speedup < 1.5; w++ {
			tF, tR, _ := interleavedPair(300*time.Millisecond,
				func() { fused.RunFrom(0, nil, fx.stim) },
				func() { ref.RunFrom(0, nil, fx.stim) })
			if s := float64(tR) / float64(tF); s > speedup {
				tFused, tRef, speedup = tF, tR, s
			}
		}
		if speedup < 1.4 {
			b.Fatalf("%s: fused forward speedup %.2fx, want >= 1.4x (fused %v, reference %v)",
				fx.name, speedup, tFused, tRef)
		}
		rows = append(rows, forwardBenchRow{
			Benchmark:         fx.name,
			Steps:             steps,
			FusedUS:           float64(tFused.Nanoseconds()) / 1e3,
			ReferenceUS:       float64(tRef.Nanoseconds()) / 1e3,
			SpeedupX:          speedup,
			FusedAllocsPerRun: allocs,
			BitIdentical:      identical,
		})
	}
	printArtifact("forward-json", func() {
		out := os.Getenv("BENCH_FORWARD_OUT")
		if out == "" {
			out = "BENCH_forward.json"
		}
		data, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
		metrics := map[string]float64{}
		for _, row := range rows {
			metrics[row.Benchmark+"_speedup_x"] = row.SpeedupX
			metrics[row.Benchmark+"_fused_us"] = row.FusedUS
		}
		fmt.Printf("fused forward timing written to %s\n\n", out)
		appendTrajectory(b, "bench:forward", metrics)
	})
}

func BenchmarkForwardGraphBPTT(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	net := must(snn.BuildNMNIST(rng, snn.ScaleTiny))
	cfg := core.TestConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// One full optimization step: forward graph + one loss backward.
		core.CalibrateTInMin(net, &cfg, rand.New(rand.NewSource(int64(i))))
	}
}

func BenchmarkFaultSimulationCampaign(b *testing.B) {
	p := pipelines(b)["shd"]
	faults := p.Faults()
	stim := tensor.RandBernoulli(rand.New(rand.NewSource(3)), 0.3,
		append([]int{30}, p.Net.InShape...)...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fault.Simulate(p.Net, faults, stim, 0, nil)
	}
	b.ReportMetric(float64(len(faults)), "faults")
}

// campaignBenchRow is one benchmark's entry in BENCH_campaign.json.
type campaignBenchRow struct {
	Benchmark              string  `json:"benchmark"`
	Faults                 int     `json:"faults"`
	SimLayerSteps          int64   `json:"sim_layer_steps"`
	SimFullLayerSteps      int64   `json:"sim_full_layer_steps"`
	SimSavingsX            float64 `json:"sim_savings_x"`
	ClassifyLayerSteps     int64   `json:"classify_layer_steps"`
	ClassifyFullLayerSteps int64   `json:"classify_full_layer_steps"`
	ClassifySavingsX       float64 `json:"classify_savings_x"`
}

// BenchmarkCampaignIncremental times the incremental (golden-trace
// replay + early exit) fault-simulation campaign across the three tiny
// pipelines and emits the simulated-layer-step counters — the work saved
// versus full re-simulation — to BENCH_campaign.json (override the path
// with BENCH_CAMPAIGN_OUT). The layerstep-x metric is the aggregate
// full/incremental work ratio.
func BenchmarkCampaignIncremental(b *testing.B) {
	ps := pipelines(b)
	stims := map[string]*tensor.Tensor{}
	for i, name := range experiments.Benchmarks {
		stims[name] = tensor.RandBernoulli(rand.New(rand.NewSource(int64(20+i))), 0.3,
			append([]int{30}, ps[name].Net.InShape...)...)
	}
	var results map[string]*fault.SimResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results = map[string]*fault.SimResult{}
		for _, name := range experiments.Benchmarks {
			results[name] = must(fault.Simulate(ps[name].Net, ps[name].Faults(), stims[name], 0, nil))
		}
	}
	b.StopTimer()
	var steps, fullSteps int64
	for _, r := range results {
		steps += r.LayerSteps
		fullSteps += r.FullLayerSteps
	}
	b.ReportMetric(float64(fullSteps)/float64(steps), "layerstep-x")
	printArtifact("campaign-json", func() {
		rows := make([]campaignBenchRow, 0, len(experiments.Benchmarks))
		for _, name := range experiments.Benchmarks {
			p, r := ps[name], results[name]
			testIn, _ := p.Data.Inputs("test")
			cls := must(fault.ClassifyWith(p.Net, p.Faults(), testIn, fault.CampaignOptions{}))
			rows = append(rows, campaignBenchRow{
				Benchmark:              name,
				Faults:                 len(p.Faults()),
				SimLayerSteps:          r.LayerSteps,
				SimFullLayerSteps:      r.FullLayerSteps,
				SimSavingsX:            float64(r.FullLayerSteps) / float64(r.LayerSteps),
				ClassifyLayerSteps:     cls.LayerSteps,
				ClassifyFullLayerSteps: cls.FullLayerSteps,
				ClassifySavingsX:       float64(cls.FullLayerSteps) / float64(cls.LayerSteps),
			})
		}
		out := os.Getenv("BENCH_CAMPAIGN_OUT")
		if out == "" {
			out = "BENCH_campaign.json"
		}
		data, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
		fmt.Printf("campaign layer-step counters written to %s\n\n", out)
		metrics := map[string]float64{
			"layerstep_x": float64(fullSteps) / float64(steps),
		}
		for _, row := range rows {
			metrics[row.Benchmark+"_sim_savings_x"] = row.SimSavingsX
			metrics[row.Benchmark+"_classify_savings_x"] = row.ClassifySavingsX
		}
		appendTrajectory(b, "bench:campaign", metrics)
	})
}

// generateBenchRow is one BENCH_generate.json record comparing the
// reference engine at one worker against the fast engine at four.
type generateBenchRow struct {
	Benchmark     string  `json:"benchmark"`
	Restarts      int     `json:"restarts"`
	Cores         int     `json:"cores"`
	ReferenceW1MS float64 `json:"reference_w1_ms"`
	FastW4MS      float64 `json:"fast_w4_ms"`
	SpeedupX      float64 `json:"speedup_x"`
	BitIdentical  bool    `json:"bit_identical"`
}

// generateEngines runs one fixture's Restarts=4 generation on both
// engines — reference at one worker, fast at four — taking the faster of
// two timed runs each, asserts the stimuli and loss traces are
// bit-identical across engines and worker counts, and returns the row.
func generateEngines(b *testing.B, name string, p *experiments.Pipeline) generateBenchRow {
	b.Helper()
	gen := func(reference bool, workers int) (*core.Result, time.Duration) {
		cfg := p.Opts.GenConfig
		cfg.Seed = 17
		cfg.TInMin = 8 // pin the chunk duration: time the engines, not calibration
		cfg.Parallel = core.Parallel{Restarts: 4, Workers: workers}
		cfg.ReferenceEngine = reference
		start := time.Now()
		res := must(core.Generate(p.Net, cfg))
		return res, time.Since(start)
	}
	gen(false, 4) // warm caches and scratch pools
	fast, tFast := gen(false, 4)
	ref, tRef := gen(true, 1)
	if _, t := gen(false, 4); t < tFast {
		tFast = t
	}
	if _, t := gen(true, 1); t < tRef {
		tRef = t
	}
	fast1, _ := gen(false, 1)
	for tag, other := range map[string]*core.Result{"reference w1": ref, "fast w1": fast1} {
		if !tensor.Equal(fast.Stimulus, other.Stimulus, 0) {
			b.Fatalf("%s: fast w4 stimulus differs from %s", name, tag)
		}
		if len(fast.Trace) != len(other.Trace) {
			b.Fatalf("%s: fast w4 trace length differs from %s", name, tag)
		}
		for i := range fast.Trace {
			if fast.Trace[i] != other.Trace[i] {
				b.Fatalf("%s: fast w4 trace[%d] differs from %s", name, i, tag)
			}
		}
	}
	return generateBenchRow{
		Benchmark:     name,
		Restarts:      4,
		Cores:         runtime.GOMAXPROCS(0),
		ReferenceW1MS: float64(tRef.Microseconds()) / 1e3,
		FastW4MS:      float64(tFast.Microseconds()) / 1e3,
		SpeedupX:      float64(tRef) / float64(tFast),
		BitIdentical:  true,
	}
}

// BenchmarkGenerateRestarts compares the two generation engines on every
// fixture at Restarts=4: the reference engine (the faithful pre-overhaul
// baseline — per-iteration allocation, composed graph ops, naive kernels)
// at one worker against the fast engine (arena + fused ops + im2col) at
// four, asserting bit-identical stimuli and loss traces across engines
// and worker counts and an aggregate wall-clock speedup ≥ 2×. Rows per
// fixture plus the asserted aggregate go to BENCH_generate.json (override
// the path with BENCH_GENERATE_OUT).
func BenchmarkGenerateRestarts(b *testing.B) {
	ps := pipelines(b)
	nm := ps["nmnist"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := nm.Opts.GenConfig
		cfg.Seed = 17
		cfg.TInMin = 8
		cfg.Parallel = core.Parallel{Restarts: 4, Workers: 4}
		must(core.Generate(nm.Net, cfg))
	}
	b.StopTimer()

	rows := make([]generateBenchRow, 0, len(experiments.Benchmarks)+1)
	var refMS, fastMS float64
	for _, name := range experiments.Benchmarks {
		row := generateEngines(b, name, ps[name])
		refMS += row.ReferenceW1MS
		fastMS += row.FastW4MS
		rows = append(rows, row)
	}
	aggregate := refMS / fastMS
	rows = append(rows, generateBenchRow{
		Benchmark:     "aggregate",
		Restarts:      4,
		Cores:         runtime.GOMAXPROCS(0),
		ReferenceW1MS: refMS,
		FastW4MS:      fastMS,
		SpeedupX:      aggregate,
		BitIdentical:  true,
	})
	if aggregate < 2 {
		b.Fatalf("fast engine speedup %.2fx across fixtures, want >= 2x (reference %.0fms, fast %.0fms)",
			aggregate, refMS, fastMS)
	}
	b.ReportMetric(aggregate, "speedup-x")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "cores")
	printArtifact("generate-json", func() {
		out := os.Getenv("BENCH_GENERATE_OUT")
		if out == "" {
			out = "BENCH_generate.json"
		}
		data, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
		fmt.Printf("engine timing written to %s (aggregate speedup %.2fx on %d core(s))\n\n",
			out, aggregate, runtime.GOMAXPROCS(0))
		metrics := map[string]float64{
			"reference_w1_ms": refMS,
			"fast_w4_ms":      fastMS,
			"speedup_x":       aggregate,
			"cores":           float64(runtime.GOMAXPROCS(0)),
		}
		for _, row := range rows[:len(rows)-1] {
			metrics[row.Benchmark+"_speedup_x"] = row.SpeedupX
		}
		appendTrajectory(b, "bench:generate", metrics)
	})
}

// nopWriter discards figure output in timed loops.
type nopWriter struct{}

func (nopWriter) Write(p []byte) (int, error) { return len(p), nil }

// BenchmarkCompaction measures the future-work chunk-compaction post-pass
// and reports how much test length it recovers without losing coverage.
func BenchmarkCompaction(b *testing.B) {
	p := pipelines(b)["shd"]
	gen := must(p.Generate())
	faults := p.Faults()
	var stats core.CompactionStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		_, stats, err = core.Compact(p.Net, gen, faults, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(stats.StepsBefore), "steps-before")
	b.ReportMetric(float64(stats.StepsAfter), "steps-after")
	printArtifact("compaction", func() {
		fmt.Printf("Compaction: %d → %d chunks, %d → %d steps, %d faults still detected\n\n",
			stats.ChunksBefore, stats.ChunksAfter, stats.StepsBefore, stats.StepsAfter, stats.Detected)
	})
}

// BenchmarkExtendedFaultModel verifies the optimized stimulus against the
// Section III extension faults (parametric timing variation, bit-flips).
func BenchmarkExtendedFaultModel(b *testing.B) {
	p := pipelines(b)["shd"]
	gen := must(p.Generate())
	extended := fault.SampleUniverse(p.Net, fault.ExtendedOptions(), 5)
	var detected int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		detected = must(fault.Simulate(p.Net, extended, gen.Stimulus, 0, nil)).NumDetected()
	}
	b.StopTimer()
	b.ReportMetric(float64(len(extended)), "faults")
	b.ReportMetric(100*float64(detected)/float64(len(extended)), "fc%")
}

// lintBenchRow is the BENCH_lint.json record of the snnlint driver's
// wall-clock at each operating point: serial cold, parallel cold, and
// parallel with a warm content-hash cache.
type lintBenchRow struct {
	Packages       int     `json:"packages"`
	Analyzers      int     `json:"analyzers"`
	Workers        int     `json:"workers"`
	SerialColdMS   float64 `json:"serial_cold_ms"`
	ParallelColdMS float64 `json:"parallel_cold_ms"`
	WarmCachedMS   float64 `json:"warm_cached_ms"`
	ParallelX      float64 `json:"parallel_x"`
	CachedX        float64 `json:"cached_x"`
}

// BenchmarkLintDriver times the static-analysis driver over the whole
// module: the timed loop is the warm-cache incremental path (the
// editor/CI steady state), and the one-shot serial-cold versus
// parallel-cold versus warm comparison is written to BENCH_lint.json
// (override the path with BENCH_LINT_OUT). cached_x is the headline the
// driver exists for: warm incremental runs versus a from-scratch serial
// walk.
func BenchmarkLintDriver(b *testing.B) {
	workers := runtime.GOMAXPROCS(0)
	time1 := func(opts lint.Options) (*lint.Result, time.Duration) {
		start := time.Now()
		res, err := lint.AnalyzeModule(".", lint.All(), opts)
		if err != nil {
			b.Fatal(err)
		}
		return res, time.Since(start)
	}
	cache := b.TempDir() + "/lint-cache.json"
	resSerial, tSerial := time1(lint.Options{Workers: 1})
	_, tParallel := time1(lint.Options{Workers: workers, CachePath: cache})

	var resWarm *lint.Result
	var tWarm time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resWarm, tWarm = time1(lint.Options{Workers: workers, CachePath: cache})
	}
	b.StopTimer()
	if resWarm.Stats.Cached != resWarm.Stats.Packages {
		b.Fatalf("warm run missed the cache: %+v", resWarm.Stats)
	}
	if len(resWarm.Diagnostics) != len(resSerial.Diagnostics) {
		b.Fatalf("warm diagnostics diverge from serial: %d vs %d",
			len(resWarm.Diagnostics), len(resSerial.Diagnostics))
	}
	row := lintBenchRow{
		Packages:       resWarm.Stats.Packages,
		Analyzers:      len(lint.All()),
		Workers:        workers,
		SerialColdMS:   float64(tSerial.Microseconds()) / 1e3,
		ParallelColdMS: float64(tParallel.Microseconds()) / 1e3,
		WarmCachedMS:   float64(tWarm.Microseconds()) / 1e3,
		ParallelX:      float64(tSerial) / float64(tParallel),
		CachedX:        float64(tSerial) / float64(tWarm),
	}
	b.ReportMetric(row.ParallelX, "parallel-x")
	b.ReportMetric(row.CachedX, "cached-x")
	printArtifact("lint-json", func() {
		out := os.Getenv("BENCH_LINT_OUT")
		if out == "" {
			out = "BENCH_lint.json"
		}
		data, err := json.MarshalIndent(row, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
		fmt.Printf("lint driver timing written to %s (parallel %.2fx, warm cache %.2fx over serial cold)\n\n",
			out, row.ParallelX, row.CachedX)
		appendTrajectory(b, "bench:lint", map[string]float64{
			"packages":         float64(row.Packages),
			"serial_cold_ms":   row.SerialColdMS,
			"parallel_cold_ms": row.ParallelColdMS,
			"warm_cached_ms":   row.WarmCachedMS,
			"parallel_x":       row.ParallelX,
			"cached_x":         row.CachedX,
		})
	})
}
