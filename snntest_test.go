package snntest

import (
	"math/rand"
	"testing"
)

// TestFacadeEndToEnd drives the public API exactly as the README
// quickstart does: build → generate → enumerate → simulate → coverage.
func TestFacadeEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := must(BuildSHD(rng, ScaleTiny))
	if net.NumNeurons() == 0 || net.NumSynapses() == 0 {
		t.Fatal("degenerate network")
	}

	cfg := TestGenConfig()
	cfg.Seed = 2
	cfg.Steps1 = 30
	cfg.MaxIterations = 3
	res := must(GenerateTest(net, cfg))
	if res.TotalSteps() < 1 {
		t.Fatal("no stimulus")
	}

	universe := EnumerateFaults(net)
	if len(universe) != 2*net.NumNeurons()+3*net.NumSynapses() {
		t.Fatalf("universe size %d", len(universe))
	}
	// Subsample the universe so the facade round-trip stays fast.
	var faults []Fault
	for i := 0; i < len(universe); i += 11 {
		faults = append(faults, universe[i])
	}
	sim := must(SimulateFaults(net, faults, res.Stimulus, 0))
	if sim.NumDetected() == 0 {
		t.Error("optimized stimulus detected nothing")
	}

	// Classify against two random stimuli acting as dataset samples.
	samples := []*Tensor{res.Stimulus}
	critical := must(ClassifyFaults(net, faults, samples, 0))
	cov := must(FaultCoverage(faults, sim.Detected, critical))
	if cov.TotalFaults != len(faults) {
		t.Error("coverage partition mismatch")
	}
	if cov.OverallFC() < 0 || cov.OverallFC() > 1 {
		t.Errorf("overall FC out of range: %g", cov.OverallFC())
	}
}

func TestFacadeBuilders(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if must(BuildNMNIST(rng, ScaleTiny)).Name != "nmnist" {
		t.Error("BuildNMNIST name")
	}
	if must(BuildIBMGesture(rng, ScaleTiny)).Name != "ibm-gesture" {
		t.Error("BuildIBMGesture name")
	}
	if DefaultGenConfig().Steps1 != 2000 {
		t.Error("DefaultGenConfig must carry the paper's 2000 steps")
	}
}
