package snn

import (
	"math/rand"
	"testing"
)

// Zero-allocation gates for the fused simulation path, pinned with the
// runtime's own accounting. The static side of the same contract is
// enforced by snnlint's hotpathalloc analyzer; these tests catch what
// escape analysis decides at compile time, which no AST walk can. The
// gate covers the full forward pass — not just the LIF step kernel —
// for every fixture architecture, so a regression in any fused kernel
// (dense, conv/im2col, pool, recurrent) trips it.

// TestStepLayerZeroAlloc pins the reference LIF step kernel in isolation:
// one layer step on prebuilt Scratch state must not allocate.
func TestStepLayerZeroAlloc(t *testing.T) {
	net := must(BuildNMNIST(rand.New(rand.NewSource(7)), ScaleTiny))
	sc := net.NewScratch()
	l := net.Layers[0]
	nn := l.NumNeurons()
	st := sc.states[0]
	cd := make([]float64, nn)
	out := make([]float64, nn)
	for i := range cd {
		cd[i] = float64(i%3) * 0.4
	}

	allocs := testing.AllocsPerRun(100, func() {
		stepLayer(l, st, cd, out)
	})
	if allocs != 0 {
		t.Errorf("stepLayer allocated %v times per step; the //snn:hotpath contract requires 0", allocs)
	}
}

// TestRunFromZeroAlloc asserts a full fused RunFrom pass over a prewarmed
// Scratch allocates nothing, for every fixture architecture.
func TestRunFromZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, b := range []string{"nmnist", "ibm-gesture", "shd"} {
		net := must(Build(b, rng, ScaleTiny))
		sc := net.NewScratch()
		stim := benchStimulus(net, 10)
		sc.RunFrom(0, nil, stim) // prewarm: size the record buffers

		allocs := testing.AllocsPerRun(10, func() {
			sc.RunFrom(0, nil, stim)
		})
		if allocs != 0 {
			t.Errorf("%s: full fused RunFrom pass allocated %v times per run; want 0", b, allocs)
		}
	}
}

// TestReplayAndDivergenceZeroAlloc asserts the campaign hot paths —
// golden-replay RunFrom from a mid-network start layer and the
// early-exit DivergesFrom detector — are also allocation-free, including
// across a Bind to a faulty clone.
func TestReplayAndDivergenceZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, b := range []string{"nmnist", "ibm-gesture", "shd"} {
		net := must(Build(b, rng, ScaleTiny))
		stim := benchStimulus(net, 10)
		golden := net.Run(stim)

		faulty := net.Clone()
		start := len(net.Layers) / 2
		faulty.Layers[start].SetNeuronMode(0, NeuronSaturated)
		sc := net.NewScratch()
		if err := sc.Bind(faulty); err != nil {
			t.Fatalf("%s: bind: %v", b, err)
		}
		sc.RunFrom(start, golden, stim) // prewarm

		if allocs := testing.AllocsPerRun(10, func() {
			sc.RunFrom(start, golden, stim)
		}); allocs != 0 {
			t.Errorf("%s: golden-replay RunFrom allocated %v times per run; want 0", b, allocs)
		}
		if allocs := testing.AllocsPerRun(10, func() {
			sc.DivergesFrom(start, golden, stim)
		}); allocs != 0 {
			t.Errorf("%s: DivergesFrom allocated %v times per run; want 0", b, allocs)
		}
	}
}
