package snn

import (
	"math/rand"
	"testing"
)

// TestStepLayerZeroAlloc pins the //snn:hotpath contract of the LIF step
// kernel with the runtime's own accounting: one layer step on prebuilt
// Scratch state must not allocate. The static side of the same contract
// is enforced by snnlint's hotpathalloc analyzer; this test catches what
// escape analysis decides at compile time, which no AST walk can.
func TestStepLayerZeroAlloc(t *testing.T) {
	net := must(BuildNMNIST(rand.New(rand.NewSource(7)), ScaleTiny))
	sc := net.NewScratch()
	l := net.Layers[0]
	nn := l.NumNeurons()
	st := sc.states[0]
	cd := make([]float64, nn)
	out := make([]float64, nn)
	for i := range cd {
		cd[i] = float64(i%3) * 0.4
	}

	allocs := testing.AllocsPerRun(100, func() {
		stepLayer(l, st, cd, out)
	})
	if allocs != 0 {
		t.Errorf("stepLayer allocated %v times per step; the //snn:hotpath contract requires 0", allocs)
	}
}

// TestRunFromAllocBaseline measures the full replay pass. It is not yet
// zero-alloc — Projection.Forward materializes a fresh current tensor
// per (layer, step) (ROADMAP: buffer-reusing forward path) — so the test
// skips with the measured number rather than asserting, keeping the
// measurement visible in -v runs until the kernel gets there.
func TestRunFromAllocBaseline(t *testing.T) {
	net := must(BuildNMNIST(rand.New(rand.NewSource(8)), ScaleTiny))
	sc := net.NewScratch()
	stim := benchStimulus(net, 10)
	golden, _ := sc.RunFrom(0, nil, stim)
	_ = golden

	allocs := testing.AllocsPerRun(10, func() {
		sc.RunFrom(0, nil, stim)
	})
	if allocs > 0 {
		t.Skipf("full RunFrom pass allocates %v times per run (Projection.Forward materializes per-step tensors); not yet subject to the zero-alloc gate", allocs)
	}
}
