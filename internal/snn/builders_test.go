package snn

import (
	"math/rand"
	"testing"

	"github.com/repro/snntest/internal/tensor"
)

func TestBuildersProduceRunnableNetworks(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	builders := map[string]func(*rand.Rand, ModelScale) (*Network, error){
		"nmnist": BuildNMNIST, "ibm-gesture": BuildIBMGesture, "shd": BuildSHD,
	}
	for name, build := range builders {
		for _, sc := range []ModelScale{ScaleTiny, ScaleSmall} {
			n := must(build(rng, sc))
			if n.Name != name {
				t.Errorf("%s/%v: name = %q", name, sc, n.Name)
			}
			in := tensor.RandBernoulli(rng, 0.3, append([]int{8}, n.InShape...)...)
			rec := n.Run(in)
			if rec.Steps != 8 {
				t.Errorf("%s/%v: record steps = %d", name, sc, rec.Steps)
			}
			if n.NumNeurons() <= n.OutputLen() {
				t.Errorf("%s/%v: implausible neuron count %d", name, sc, n.NumNeurons())
			}
			if n.NumSynapses() == 0 {
				t.Errorf("%s/%v: no synapses", name, sc)
			}
		}
	}
}

func TestBuildersOutputClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if got := must(BuildNMNIST(rng, ScaleTiny)).OutputLen(); got != 10 {
		t.Errorf("NMNIST classes = %d, want 10", got)
	}
	if got := must(BuildIBMGesture(rng, ScaleTiny)).OutputLen(); got != 11 {
		t.Errorf("IBM classes = %d, want 11", got)
	}
	if got := must(BuildSHD(rng, ScaleTiny)).OutputLen(); got != 20 {
		t.Errorf("SHD classes = %d, want 20", got)
	}
}

func TestBuildFullScaleGeometry(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := must(BuildNMNIST(rng, ScaleFull))
	if n.InShape[0] != 2 || n.InShape[1] != 34 || n.InShape[2] != 34 {
		t.Errorf("NMNIST full input shape = %v, want [2 34 34]", n.InShape)
	}
	g := must(BuildIBMGesture(rng, ScaleFull))
	if g.InShape[1] != 128 {
		t.Errorf("IBM full input = %v, want 2×128×128", g.InShape)
	}
	s := must(BuildSHD(rng, ScaleFull))
	if s.InShape[0] != 700 {
		t.Errorf("SHD full input = %v, want [700]", s.InShape)
	}
}

func TestSHDIsRecurrent(t *testing.T) {
	n := must(BuildSHD(rand.New(rand.NewSource(4)), ScaleTiny))
	if _, ok := n.Layers[0].Proj.(*RecurrentProj); !ok {
		t.Error("SHD hidden layer must be recurrent")
	}
}

func TestSampleSteps(t *testing.T) {
	if got := must(SampleSteps("nmnist", ScaleFull)); got != 300 {
		t.Errorf("nmnist full = %d, want 300 (300 ms at 1 kHz)", got)
	}
	if got := must(SampleSteps("ibm-gesture", ScaleFull)); got != 1450 {
		t.Errorf("ibm full = %d, want 1450", got)
	}
	if got := must(SampleSteps("shd", ScaleTiny)); got != 100 {
		t.Errorf("shd tiny = %d, want 100", got)
	}
	if _, err := SampleSteps("nope", ScaleTiny); err == nil {
		t.Error("unknown benchmark must error")
	}
}

func TestModelScaleString(t *testing.T) {
	for sc, want := range map[ModelScale]string{ScaleTiny: "tiny", ScaleSmall: "small", ScaleFull: "full"} {
		if sc.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(sc), sc.String(), want)
		}
	}
}

func TestRecordHelpers(t *testing.T) {
	n := testNet(30)
	rng := rand.New(rand.NewSource(31))
	in := tensor.RandBernoulli(rng, 0.5, append([]int{10}, n.InShape...)...)
	rec := n.Run(in)

	// Counts must equal per-neuron sums of trains.
	c := rec.Counts(0)
	for i := 0; i < 3; i++ {
		if got := tensor.Sum(rec.NeuronTrain(0, i)); got != c.At(i) {
			t.Errorf("neuron %d count = %g, train sum = %g", i, c.At(i), got)
		}
	}

	// Temporal diversity of an alternating train is steps-1.
	r2 := NewRecord(n, 4)
	for s := 0; s < 4; s++ {
		r2.Layers[0].Set(float64(s%2), s, 0)
	}
	if td := r2.TemporalDiversity(0); td.At(0) != 3 {
		t.Errorf("TD of 0101 = %g, want 3", td.At(0))
	}

	// ActivatedNeurons respects the threshold and offsets.
	act := rec.ActivatedNeurons(n.LayerOffsets(), 1)
	for g := range act {
		if g < 0 || g >= n.NumNeurons() {
			t.Errorf("activated neuron id %d out of range", g)
		}
	}

	// OutputDiffL1 of a record with itself is 0.
	if rec.OutputDiffL1(rec) != 0 {
		t.Error("self L1 diff must be 0")
	}
}
