package snn

import (
	ag "github.com/repro/snntest/internal/autograd"
	"github.com/repro/snntest/internal/tensor"
)

// GraphResult holds the differentiable spike nodes of one RunGraph call:
// Spikes[ℓ][t] is the autograd node of layer ℓ's binary output frame at
// step t. Its Value tensors are exactly the spike trains the fast path
// would produce for the same stimulus.
type GraphResult struct {
	Steps  int
	Spikes [][]*ag.Node
}

// LayerCounts returns the differentiable per-neuron spike counts
// |O^{ℓi}| of layer ℓ, flattened to a vector node.
func (g *GraphResult) LayerCounts(layer int) *ag.Node {
	nodes := make([]*ag.Node, g.Steps)
	for t, s := range g.Spikes[layer] {
		nodes[t] = s
	}
	sum := ag.AddN(nodes...)
	return ag.Reshape(sum, sum.Value.Len())
}

// OutputLayer returns the index of the last layer.
func (g *GraphResult) OutputLayer() int { return len(g.Spikes) - 1 }

// ToRecord copies the forward spike values into a plain Record so that
// the fast-path metrics can be reused on graph results.
func (g *GraphResult) ToRecord(n *Network) *Record {
	return g.ToRecordInto(n, nil)
}

// ToRecordInto is the buffer-reusing variant of ToRecord: when rec is
// non-nil and already shaped for (n, g.Steps) it is overwritten in place
// and returned; otherwise a fresh record is allocated. Iterating
// optimizers pass their previous record back in, so the per-iteration
// copy allocates nothing.
func (g *GraphResult) ToRecordInto(n *Network, rec *Record) *Record {
	if rec == nil || !rec.Matches(n, g.Steps) {
		rec = NewRecord(n, g.Steps)
	}
	for li := range g.Spikes {
		nn := n.Layers[li].NumNeurons()
		for t, node := range g.Spikes[li] {
			copy(rec.Layers[li].RawRange(t*nn, nn), node.Value.Data())
		}
	}
	return rec
}

// RunGraph simulates the network differentiably on per-step input nodes
// (each shaped like one input frame, typically the output of the
// Gumbel-Softmax → STE pipeline). Gradients of any scalar loss over the
// returned spike nodes flow back to the input through the fast-sigmoid
// surrogate, mirroring SLAYER's training backward pass.
//
// The network must be fault-free: test generation and training always run
// on the golden model.
func (n *Network) RunGraph(inputSteps []*ag.Node) *GraphResult {
	return n.runGraph(inputSteps, false)
}

// RunGraphFused is RunGraph with the membrane update built from the
// fused autograd LIF kernels (ag.OneMinusSpike, ag.LIFStep) instead of
// the composed Scale/Mul/Add chain. Spike values and every gradient are
// bit-identical to RunGraph — the fused ops replay the same float
// sequence — so the fast generation engine uses it as a drop-in graph
// builder; RunGraph remains the reference form the equivalence suite
// pins it against.
func (n *Network) RunGraphFused(inputSteps []*ag.Node) *GraphResult {
	return n.runGraph(inputSteps, true)
}

func (n *Network) runGraph(inputSteps []*ag.Node, fused bool) *GraphResult {
	if n.HasFaultOverrides() {
		// Hot-path invariant: Generate and Train validate fault-freedom
		// once at entry before their per-iteration RunGraph loops.
		failf("snn: RunGraph requires a fault-free network")
	}
	steps := len(inputSteps)
	if steps == 0 {
		failf("snn: RunGraph needs at least one input step")
	}
	type graphLayerState struct {
		u         *ag.Node
		lastSpike *ag.Node
		refrac    []int
		inRefrac  int // neurons with refrac > 0; gate is all-ones when 0
	}
	states := make([]*graphLayerState, len(n.Layers))
	for i, l := range n.Layers {
		states[i] = &graphLayerState{refrac: make([]int, l.NumNeurons())}
	}
	res := &GraphResult{Steps: steps, Spikes: make([][]*ag.Node, len(n.Layers))}
	for li := range n.Layers {
		res.Spikes[li] = make([]*ag.Node, steps)
	}
	for t := 0; t < steps; t++ {
		in := inputSteps[t]
		for li, l := range n.Layers {
			st := states[li]
			var lastOut *ag.Node
			if _, ok := l.Proj.(*RecurrentProj); ok {
				lastOut = st.lastSpike
			}
			cur := l.Proj.ForwardGraph(in, lastOut)

			// gate: 0 while refractory, 1 otherwise (non-differentiable,
			// computed from recorded binary spikes, hence constant). It
			// inherits the current's arena, if any: the gate is only read
			// within this graph's lifetime. The fused path elides an
			// all-ones gate outright — multiplying by exactly 1.0 is the
			// identity in every float, so the elision is bit-invisible.
			var gate *tensor.Tensor
			if !fused || st.inRefrac > 0 {
				gate = tensor.NewLike(cur.Value, cur.Value.Shape()...)
				gd := gate.Data()
				for i := range gd {
					if st.refrac[i] == 0 {
						gd[i] = 1
					}
				}
			}

			// u_t = gate ⊙ (leak·u_{t-1}·(1 − s_{t-1}) + I_t)
			var u *ag.Node
			switch {
			case st.u == nil && gate == nil:
				u = cur
			case st.u == nil:
				u = ag.Mul(cur, ag.Const(gate))
			case fused:
				u = ag.LIFStep(st.u, ag.OneMinusSpike(st.lastSpike), cur, gate, l.LIF.Leak)
			default:
				keep := ag.Scale(st.u, l.LIF.Leak)
				if st.lastSpike != nil {
					oneMinus := ag.AddScalar(ag.Neg(st.lastSpike), 1)
					keep = ag.Mul(keep, oneMinus)
				}
				u = ag.Mul(ag.Add(keep, cur), ag.Const(gate))
			}

			s := ag.Spike(u, l.LIF.Threshold, ag.SurrogateScale)

			// Refractory bookkeeping from the realized binary spikes.
			sv := s.Value.Data()
			st.inRefrac = 0
			for i := range st.refrac {
				if st.refrac[i] > 0 {
					st.refrac[i]--
				} else if sv[i] == 1 { //lint:ignore floateq realized spikes are exactly 0 or 1
					st.refrac[i] = l.LIF.Refractory
				}
				if st.refrac[i] > 0 {
					st.inRefrac++
				}
			}

			st.u = u
			st.lastSpike = s
			res.Spikes[li][t] = s
			in = s
		}
	}
	return res
}
