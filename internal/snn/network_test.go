package snn

import (
	"bytes"
	"math/rand"
	"testing"

	ag "github.com/repro/snntest/internal/autograd"
	"github.com/repro/snntest/internal/tensor"
)

// testNet builds a small 3-layer mixed network (conv → pool → dense) for
// structural tests.
func testNet(seed int64) *Network {
	rng := rand.New(rand.NewSource(seed))
	in := []int{2, 6, 6}
	conv := must(NewConvProj(tensor.RandNormal(rng, 0, 0.6, 4, 2, 3, 3), in, tensor.ConvSpec{Stride: 1}))
	pool := must(NewPoolProj(conv.OutShape(), 2, PoolWeight))
	dense := must(NewDenseProj(tensor.RandNormal(rng, 0, 0.6, 5, flatLen(pool.OutShape()))))
	lif := DefaultLIF()
	return must(NewNetwork("test", in, 1.0,
		must(NewLayer("conv", conv, lif)),
		must(NewLayer("pool", pool, lif)),
		must(NewLayer("out", dense, lif))))
}

// recurrentNet builds a small recurrent network.
func recurrentNet(seed int64) *Network {
	rng := rand.New(rand.NewSource(seed))
	w := tensor.RandNormal(rng, 0, 0.5, 8, 6)
	r := tensor.RandNormal(rng, 0, 0.2, 8, 8)
	dense := must(NewDenseProj(tensor.RandNormal(rng, 0, 0.5, 4, 8)))
	lif := DefaultLIF()
	return must(NewNetwork("rec", []int{6}, 1.0,
		must(NewLayer("rec", must(NewRecurrentProj(w, r)), lif)),
		must(NewLayer("out", dense, lif))))
}

func randomStimulus(rng *rand.Rand, n *Network, steps int, p float64) *tensor.Tensor {
	return tensor.RandBernoulli(rng, p, append([]int{steps}, n.InShape...)...)
}

func TestNetworkCounts(t *testing.T) {
	n := testNet(1)
	// conv: 4×4×4 = 64, pool: 4×2×2 = 16, out: 5 → 85 neurons.
	if got := n.NumNeurons(); got != 85 {
		t.Errorf("NumNeurons = %d, want 85", got)
	}
	// conv params 4·2·3·3 = 72, pool 0, dense 5·16 = 80 → 152.
	if got := n.NumSynapses(); got != 152 {
		t.Errorf("NumSynapses = %d, want 152", got)
	}
	offs := n.LayerOffsets()
	if offs[0] != 0 || offs[1] != 64 || offs[2] != 80 {
		t.Errorf("LayerOffsets = %v", offs)
	}
	if n.InputLen() != 72 || n.OutputLen() != 5 {
		t.Errorf("InputLen/OutputLen = %d/%d", n.InputLen(), n.OutputLen())
	}
}

func TestNetworkShapeMismatchErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if _, err := NewNetwork("bad", []int{3}, 1.0,
		must(NewLayer("d", must(NewDenseProj(tensor.RandNormal(rng, 0, 1, 4, 5))), DefaultLIF()))); err == nil {
		t.Error("expected error for incompatible layers")
	}
}

func TestRunDeterministic(t *testing.T) {
	n := testNet(3)
	in := randomStimulus(rand.New(rand.NewSource(4)), n, 12, 0.3)
	a := n.Run(in)
	b := n.Run(in)
	for li := range a.Layers {
		if !tensor.Equal(a.Layers[li], b.Layers[li], 0) {
			t.Fatalf("layer %d: repeated Run differs", li)
		}
	}
}

func TestRunOutputsAreBinary(t *testing.T) {
	n := testNet(5)
	rec := n.Run(randomStimulus(rand.New(rand.NewSource(6)), n, 10, 0.4))
	for li, lt := range rec.Layers {
		for _, v := range lt.Data() {
			if v != 0 && v != 1 {
				t.Fatalf("layer %d emitted non-binary value %g", li, v)
			}
		}
	}
}

func TestRunStateIsFresh(t *testing.T) {
	// Running a strong stimulus then a zero stimulus must give zero
	// output for the zero stimulus (no state leaks across Run calls).
	n := testNet(7)
	n.Run(randomStimulus(rand.New(rand.NewSource(8)), n, 10, 0.8))
	rec := n.Run(n.ZeroInput(10))
	if rec.TotalSpikes() != 0 {
		t.Error("zero stimulus on fresh state must produce no spikes")
	}
}

func TestCheckInputRejectsWrongShape(t *testing.T) {
	n := testNet(9)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for wrong input shape")
		}
	}()
	n.Run(tensor.New(10, 2, 6, 5))
}

func TestCloneIsIndependent(t *testing.T) {
	n := testNet(10)
	in := randomStimulus(rand.New(rand.NewSource(11)), n, 10, 0.4)
	before := n.Run(in)

	c := n.Clone()
	// Mutate the clone: kill a weight and a neuron.
	*c.Layers[0].SynapseWeightAt(0) = 0
	c.Layers[2].SetNeuronMode(0, NeuronDead)

	after := n.Run(in)
	for li := range before.Layers {
		if !tensor.Equal(before.Layers[li], after.Layers[li], 0) {
			t.Fatalf("mutating clone changed original network (layer %d)", li)
		}
	}
	if !c.HasFaultOverrides() || n.HasFaultOverrides() {
		t.Error("fault overrides must live on the clone only")
	}
}

// The central simulator invariant: the differentiable graph path and the
// fast path produce bit-identical spike trains for the same stimulus.
func TestGraphMatchesFastPath(t *testing.T) {
	nets := map[string]*Network{
		"conv-pool-dense": testNet(12),
		"recurrent":       recurrentNet(13),
	}
	for name, n := range nets {
		rng := rand.New(rand.NewSource(14))
		in := randomStimulus(rng, n, 15, 0.35)
		fast := n.Run(in)

		steps := make([]*ag.Node, 15)
		frame := n.InputLen()
		for t2 := 0; t2 < 15; t2++ {
			steps[t2] = ag.Const(tensor.FromSlice(in.Data()[t2*frame:(t2+1)*frame], n.InShape...))
		}
		graph := n.RunGraph(steps).ToRecord(n)

		for li := range fast.Layers {
			if !tensor.Equal(fast.Layers[li], graph.Layers[li], 0) {
				t.Fatalf("%s: graph and fast paths diverge at layer %d", name, li)
			}
		}
	}
}

func TestRunGraphRejectsFaultyNetwork(t *testing.T) {
	n := testNet(15)
	n.Layers[0].SetNeuronMode(0, NeuronDead)
	defer func() {
		if recover() == nil {
			t.Error("RunGraph must reject networks with fault overrides")
		}
	}()
	n.RunGraph([]*ag.Node{ag.Const(tensor.New(n.InShape...))})
}

func TestRunGraphGradientReachesInput(t *testing.T) {
	n := testNet(16)
	rng := rand.New(rand.NewSource(17))
	steps := make([]*ag.Node, 8)
	leaves := make([]*ag.Node, 8)
	for t2 := range steps {
		leaf := ag.Leaf(tensor.RandUniform(rng, 0, 1, n.InShape...))
		leaves[t2] = leaf
		steps[t2] = ag.STE(leaf, 0.5)
	}
	res := n.RunGraph(steps)
	loss := ag.Sum(res.LayerCounts(res.OutputLayer()))
	if loss.Value.Data()[0] == 0 {
		t.Skip("stimulus produced no output spikes; gradient necessarily zero")
	}
	ag.Backward(loss)
	total := 0.0
	for _, l := range leaves {
		total += tensor.L1Norm(l.Grad)
	}
	if total == 0 {
		t.Error("no gradient reached the input through the surrogate pipeline")
	}
}

func TestPredictReturnsArgmaxClass(t *testing.T) {
	n := testNet(18)
	in := randomStimulus(rand.New(rand.NewSource(19)), n, 12, 0.5)
	rec := n.Run(in)
	want := tensor.ArgMax(rec.OutputCounts())
	if got := n.Predict(in); got != want {
		t.Errorf("Predict = %d, want %d", got, want)
	}
}

func TestSynapseWeightAtRecurrentIndexing(t *testing.T) {
	n := recurrentNet(20)
	rec := n.Layers[0].Proj.(*RecurrentProj)
	wLen := rec.W.Len()
	// First range addresses W, second addresses R.
	*n.Layers[0].SynapseWeightAt(0) = 42
	*n.Layers[0].SynapseWeightAt(wLen) = 43
	if rec.W.Data()[0] != 42 || rec.R.Data()[0] != 43 {
		t.Error("SynapseWeightAt recurrent indexing is wrong")
	}
}

func TestSynapseWeightAtPanicsForPool(t *testing.T) {
	n := testNet(21)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for pool layer synapse access")
		}
	}()
	n.Layers[1].SynapseWeightAt(0)
}

func TestMaxAbsWeight(t *testing.T) {
	proj := must(NewDenseProj(tensor.FromSlice([]float64{0.5, -2, 1}, 3, 1)))
	l := must(NewLayer("d", proj, DefaultLIF()))
	if got := l.MaxAbsWeight(); got != 2 {
		t.Errorf("MaxAbsWeight = %g, want 2", got)
	}
	pool := must(NewLayer("p", must(NewPoolProj([]int{1, 2, 2}, 2, 1)), DefaultLIF()))
	if pool.MaxAbsWeight() != 0 {
		t.Error("weightless layer MaxAbsWeight should be 0")
	}
}

func TestSaveLoadWeightsRoundTrip(t *testing.T) {
	a := recurrentNet(22)
	b := recurrentNet(99) // same architecture, different weights
	in := randomStimulus(rand.New(rand.NewSource(23)), a, 10, 0.4)

	var buf bytes.Buffer
	if err := a.SaveWeights(&buf); err != nil {
		t.Fatal(err)
	}
	if err := b.LoadWeights(&buf); err != nil {
		t.Fatal(err)
	}
	ra, rb := a.Run(in), b.Run(in)
	for li := range ra.Layers {
		if !tensor.Equal(ra.Layers[li], rb.Layers[li], 0) {
			t.Fatal("loaded network behaves differently from saved one")
		}
	}
}

func TestLoadWeightsRejectsMismatch(t *testing.T) {
	a := recurrentNet(24)
	other := testNet(25)
	var buf bytes.Buffer
	if err := other.SaveWeights(&buf); err != nil {
		t.Fatal(err)
	}
	if err := a.LoadWeights(&buf); err == nil {
		t.Error("loading mismatched weights must fail")
	}
}
