package snn

import (
	"math/rand"
	"testing"
	"testing/quick"

	ag "github.com/repro/snntest/internal/autograd"
	"github.com/repro/snntest/internal/tensor"
)

// quickNet builds a small random dense network from a seed.
func quickNet(seed int64) *Network {
	rng := rand.New(rand.NewSource(seed))
	l1 := must(NewLayer("h", must(NewDenseProj(tensor.RandNormal(rng, 0.2, 0.5, 6, 5))), DefaultLIF()))
	l2 := must(NewLayer("out", must(NewDenseProj(tensor.RandNormal(rng, 0.2, 0.5, 4, 6))), DefaultLIF()))
	return must(NewNetwork("quick", []int{5}, 1.0, l1, l2))
}

// Property: for any seed and stimulus density, every recorded spike value
// is binary and the refractory period is respected (no neuron fires twice
// within Refractory+1 steps).
func TestRefractoryIntervalProperty(t *testing.T) {
	prop := func(seed int64, density uint8) bool {
		net := quickNet(seed)
		p := 0.1 + float64(density%80)/100
		stim := tensor.RandBernoulli(rand.New(rand.NewSource(seed+1)), p,
			append([]int{25}, net.InShape...)...)
		rec := net.Run(stim)
		for li, l := range net.Layers {
			minGap := l.LIF.Refractory + 1
			for i := 0; i < l.NumNeurons(); i++ {
				last := -minGap
				train := rec.NeuronTrain(li, i)
				for s, v := range train.Data() {
					if v != 0 && v != 1 {
						return false
					}
					if v == 1 {
						if s-last < minGap {
							return false
						}
						last = s
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: graph and fast paths agree for arbitrary seeds and densities.
func TestGraphFastEquivalenceProperty(t *testing.T) {
	prop := func(seed int64, density uint8) bool {
		net := quickNet(seed)
		p := 0.1 + float64(density%80)/100
		steps := 12
		stim := tensor.RandBernoulli(rand.New(rand.NewSource(seed+2)), p,
			append([]int{steps}, net.InShape...)...)
		fast := net.Run(stim)
		frame := net.InputLen()
		nodes := make([]*ag.Node, steps)
		for s := 0; s < steps; s++ {
			nodes[s] = ag.Const(tensor.FromSlice(stim.Data()[s*frame:(s+1)*frame], net.InShape...))
		}
		graph := net.RunGraph(nodes).ToRecord(net)
		for li := range fast.Layers {
			if !tensor.Equal(fast.Layers[li], graph.Layers[li], 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: a zero stimulus never elicits spikes from a healthy network.
func TestZeroStimulusSilenceProperty(t *testing.T) {
	prop := func(seed int64) bool {
		net := quickNet(seed)
		return net.Run(net.ZeroInput(20)).TotalSpikes() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: Clone produces behaviourally identical networks.
func TestCloneEquivalenceProperty(t *testing.T) {
	prop := func(seed int64) bool {
		net := quickNet(seed)
		c := net.Clone()
		stim := tensor.RandBernoulli(rand.New(rand.NewSource(seed+3)), 0.4,
			append([]int{15}, net.InShape...)...)
		a, b := net.Run(stim), c.Run(stim)
		for li := range a.Layers {
			if !tensor.Equal(a.Layers[li], b.Layers[li], 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: a dead neuron is silent and a saturated neuron fires at every
// step, for any neuron position and stimulus.
func TestFaultModeProperty(t *testing.T) {
	prop := func(seed int64, which uint8) bool {
		net := quickNet(seed)
		li := int(which) % 2
		ni := int(which/2) % net.Layers[li].NumNeurons()
		steps := 15
		stim := tensor.RandBernoulli(rand.New(rand.NewSource(seed+4)), 0.5,
			append([]int{steps}, net.InShape...)...)

		dead := net.Clone()
		dead.Layers[li].SetNeuronMode(ni, NeuronDead)
		if tensor.Sum(dead.Run(stim).NeuronTrain(li, ni)) != 0 {
			return false
		}
		sat := net.Clone()
		sat.Layers[li].SetNeuronMode(ni, NeuronSaturated)
		return tensor.Sum(sat.Run(stim).NeuronTrain(li, ni)) == float64(steps)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
