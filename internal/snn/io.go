package snn

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// weightsFile is the serialized form of a network's trainable state: one
// flat float64 slice per weight tensor, in layer order (recurrent layers
// contribute W then R).
type weightsFile struct {
	Name    string
	Tensors [][]float64
}

// weightTensors lists the network's weight tensors in canonical order.
func (n *Network) weightTensors() [][]float64 {
	var out [][]float64
	for _, l := range n.Layers {
		if w := l.Proj.Weights(); w != nil {
			out = append(out, w.Data())
		}
		if r, ok := l.Proj.(*RecurrentProj); ok {
			out = append(out, r.R.Data())
		}
	}
	return out
}

// SaveWeights writes the network's weights to w with encoding/gob.
func (n *Network) SaveWeights(w io.Writer) error {
	f := weightsFile{Name: n.Name}
	for _, t := range n.weightTensors() {
		f.Tensors = append(f.Tensors, t)
	}
	return gob.NewEncoder(w).Encode(&f)
}

// LoadWeights reads weights previously written by SaveWeights into the
// network, which must have the identical architecture.
func (n *Network) LoadWeights(r io.Reader) error {
	var f weightsFile
	if err := gob.NewDecoder(r).Decode(&f); err != nil {
		return fmt.Errorf("snn: decoding weights: %w", err)
	}
	ts := n.weightTensors()
	if len(f.Tensors) != len(ts) {
		return fmt.Errorf("snn: weight file has %d tensors, network %q expects %d", len(f.Tensors), n.Name, len(ts))
	}
	for i, dst := range ts {
		if len(f.Tensors[i]) != len(dst) {
			return fmt.Errorf("snn: weight tensor %d has %d elements, expected %d", i, len(f.Tensors[i]), len(dst))
		}
		copy(dst, f.Tensors[i])
	}
	return nil
}

// SaveWeightsFile writes the network's weights to the named file.
func (n *Network) SaveWeightsFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := n.SaveWeights(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadWeightsFile reads weights from the named file.
func (n *Network) LoadWeightsFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return n.LoadWeights(f)
}
