package snn

import (
	"fmt"
	"math/rand"

	"github.com/repro/snntest/internal/tensor"
)

// ModelScale selects how large a benchmark model to build. The paper's
// full-size models (Table I) run on an A100; this reproduction exposes the
// same architectures at three sizes so the full pipeline stays runnable on
// one CPU core.
type ModelScale int

const (
	// ScaleTiny is for unit tests: seconds per experiment.
	ScaleTiny ModelScale = iota
	// ScaleSmall is for examples and benchmark tables: minutes end-to-end.
	ScaleSmall
	// ScaleFull mirrors the paper's input geometry (2×34×34, 2×128×128,
	// 700 channels). Building it is cheap; simulating it is not.
	ScaleFull
)

func (s ModelScale) String() string {
	switch s {
	case ScaleTiny:
		return "tiny"
	case ScaleSmall:
		return "small"
	case ScaleFull:
		return "full"
	default:
		return fmt.Sprintf("ModelScale(%d)", int(s))
	}
}

// PoolWeight is the fixed synaptic weight of spiking pooling layers: large
// enough that a modestly active window drives the pooled LIF neuron past
// threshold, as in SLAYER's spiking aggregation layers.
const PoolWeight = 0.9

// BuildNMNIST constructs the NMNIST-style convolutional SNN of Fig. 4:
// a DVS frame [2,H,H] → strided 5×5 convolution → 3×3 spiking sum-pool →
// dense readout over 10 digit classes.
func BuildNMNIST(rng *rand.Rand, sc ModelScale) (*Network, error) {
	var h, ch, k, stride, pool int
	switch sc {
	case ScaleTiny:
		h, ch, k, stride, pool = 11, 3, 3, 2, 1 // conv → 3×5×5
	case ScaleSmall:
		h, ch, k, stride, pool = 17, 6, 5, 2, 1 // conv → 6×7×7
	default:
		h, ch, k, stride, pool = 34, 8, 5, 2, 3 // conv → 8×15×15, pool → 8×5×5
	}
	inShape := []int{2, h, h}
	lif := DefaultLIF()
	b := &layerBuilder{lif: lif}

	kernel := tensor.KaimingNormal(rng, 2*k*k, ch, 2, k, k)
	conv := b.conv("conv1", kernel, inShape, tensor.ConvSpec{Stride: stride})

	cur := conv.OutShape()
	if pool > 1 {
		pp := b.pool("pool1", cur, pool)
		cur = pp.OutShape()
	}
	hidden := flatLen(cur)
	b.dense("out", tensor.KaimingNormal(rng, hidden, 10, hidden))

	return b.network("nmnist", inShape, 1.0)
}

// BuildIBMGesture constructs the DVS128-Gesture-style SNN of Fig. 5:
// [2,H,H] DVS frames → spiking sum-pool (spatial downsampling) → strided
// convolution → sum-pool → dense readout over 11 gesture classes.
func BuildIBMGesture(rng *rand.Rand, sc ModelScale) (*Network, error) {
	var h, pre, ch, k, stride, post int
	switch sc {
	case ScaleTiny:
		h, pre, ch, k, stride, post = 16, 2, 3, 3, 1, 2 // pool→2×8×8, conv→3×6×6, pool→3×3×3
	case ScaleSmall:
		h, pre, ch, k, stride, post = 32, 2, 6, 5, 1, 2 // pool→2×16×16, conv→6×12×12, pool→6×6×6
	default:
		h, pre, ch, k, stride, post = 128, 4, 16, 5, 2, 2 // pool→2×32×32, conv→16×14×14, pool→16×7×7
	}
	inShape := []int{2, h, h}
	b := &layerBuilder{lif: DefaultLIF()}

	pool1 := b.pool("pool1", inShape, pre)

	kernel := tensor.KaimingNormal(rng, 2*k*k, ch, 2, k, k)
	conv := b.conv("conv1", kernel, pool1.OutShape(), tensor.ConvSpec{Stride: stride})

	pool2 := b.pool("pool2", conv.OutShape(), post)

	hidden := flatLen(pool2.OutShape())
	b.dense("out", tensor.KaimingNormal(rng, hidden, 11, hidden))

	return b.network("ibm-gesture", inShape, 1.0)
}

// BuildSHD constructs the Spiking-Heidelberg-Digits-style SNN of Fig. 6:
// 700 audio channels → recurrently connected hidden LIF population →
// dense readout over 20 spoken-digit classes.
func BuildSHD(rng *rand.Rand, sc ModelScale) (*Network, error) {
	var in, hidden int
	switch sc {
	case ScaleTiny:
		in, hidden = 40, 24
	case ScaleSmall:
		in, hidden = 140, 64
	default:
		in, hidden = 700, 384
	}
	b := &layerBuilder{lif: DefaultLIF()}

	w := tensor.KaimingNormal(rng, in, hidden, in)
	// Recurrent weights start small so the untrained network is stable.
	r := tensor.RandNormal(rng, 0, 0.3/float64(hidden), hidden, hidden)
	b.recurrent("recurrent1", w, r)

	b.dense("out", tensor.KaimingNormal(rng, hidden, 20, hidden))

	return b.network("shd", []int{in}, 1.0)
}

// Build constructs the named benchmark model ("nmnist", "ibm-gesture"
// or "shd") at the given scale — the single dispatch point shared by the
// CLIs and the experiment pipeline.
func Build(benchmark string, rng *rand.Rand, sc ModelScale) (*Network, error) {
	switch benchmark {
	case "nmnist":
		return BuildNMNIST(rng, sc)
	case "ibm-gesture":
		return BuildIBMGesture(rng, sc)
	case "shd":
		return BuildSHD(rng, sc)
	default:
		return nil, fmt.Errorf("snn: unknown benchmark %q (want nmnist, ibm-gesture or shd)", benchmark)
	}
}

// layerBuilder accumulates layers and defers error handling to the
// final network() call, keeping the Build* bodies linear.
type layerBuilder struct {
	lif    LIFParams
	layers []*Layer
	err    error
}

func (b *layerBuilder) add(name string, proj Projection, err error) {
	if b.err != nil {
		return
	}
	if err != nil {
		b.err = err
		return
	}
	l, err := NewLayer(name, proj, b.lif)
	if err != nil {
		b.err = err
		return
	}
	b.layers = append(b.layers, l)
}

func (b *layerBuilder) conv(name string, kernel *tensor.Tensor, inShape []int, spec tensor.ConvSpec) *ConvProj {
	p, err := NewConvProj(kernel, inShape, spec)
	b.add(name, p, err)
	if p == nil {
		return &ConvProj{}
	}
	return p
}

func (b *layerBuilder) pool(name string, inShape []int, k int) *PoolProj {
	p, err := NewPoolProj(inShape, k, PoolWeight)
	b.add(name, p, err)
	if p == nil {
		return &PoolProj{}
	}
	return p
}

func (b *layerBuilder) dense(name string, w *tensor.Tensor) {
	p, err := NewDenseProj(w)
	b.add(name, p, err)
}

func (b *layerBuilder) recurrent(name string, w, r *tensor.Tensor) {
	p, err := NewRecurrentProj(w, r)
	b.add(name, p, err)
}

func (b *layerBuilder) network(name string, inShape []int, stepMS float64) (*Network, error) {
	if b.err != nil {
		return nil, fmt.Errorf("snn: building %q: %w", name, b.err)
	}
	return NewNetwork(name, inShape, stepMS, b.layers...)
}

// SampleSteps returns the per-benchmark duration, in simulation steps, of
// one dataset sample at the given scale; the paper's sample durations
// (300 ms, 1.45 s, 1 s at 1 kHz) apply at full scale.
func SampleSteps(benchmark string, sc ModelScale) (int, error) {
	full := map[string]int{"nmnist": 300, "ibm-gesture": 1450, "shd": 1000}
	f, ok := full[benchmark]
	if !ok {
		return 0, fmt.Errorf("snn: unknown benchmark %q (want nmnist, ibm-gesture or shd)", benchmark)
	}
	switch sc {
	case ScaleTiny:
		return f / 10, nil
	case ScaleSmall:
		return f / 5, nil
	default:
		return f, nil
	}
}
