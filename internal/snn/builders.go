package snn

import (
	"fmt"
	"math/rand"

	"github.com/repro/snntest/internal/tensor"
)

// ModelScale selects how large a benchmark model to build. The paper's
// full-size models (Table I) run on an A100; this reproduction exposes the
// same architectures at three sizes so the full pipeline stays runnable on
// one CPU core.
type ModelScale int

const (
	// ScaleTiny is for unit tests: seconds per experiment.
	ScaleTiny ModelScale = iota
	// ScaleSmall is for examples and benchmark tables: minutes end-to-end.
	ScaleSmall
	// ScaleFull mirrors the paper's input geometry (2×34×34, 2×128×128,
	// 700 channels). Building it is cheap; simulating it is not.
	ScaleFull
)

func (s ModelScale) String() string {
	switch s {
	case ScaleTiny:
		return "tiny"
	case ScaleSmall:
		return "small"
	case ScaleFull:
		return "full"
	default:
		return fmt.Sprintf("ModelScale(%d)", int(s))
	}
}

// PoolWeight is the fixed synaptic weight of spiking pooling layers: large
// enough that a modestly active window drives the pooled LIF neuron past
// threshold, as in SLAYER's spiking aggregation layers.
const PoolWeight = 0.9

// BuildNMNIST constructs the NMNIST-style convolutional SNN of Fig. 4:
// a DVS frame [2,H,H] → strided 5×5 convolution → 3×3 spiking sum-pool →
// dense readout over 10 digit classes.
func BuildNMNIST(rng *rand.Rand, sc ModelScale) *Network {
	var h, ch, k, stride, pool int
	switch sc {
	case ScaleTiny:
		h, ch, k, stride, pool = 11, 3, 3, 2, 1 // conv → 3×5×5
	case ScaleSmall:
		h, ch, k, stride, pool = 17, 6, 5, 2, 1 // conv → 6×7×7
	default:
		h, ch, k, stride, pool = 34, 8, 5, 2, 3 // conv → 8×15×15, pool → 8×5×5
	}
	inShape := []int{2, h, h}
	lif := DefaultLIF()

	kernel := tensor.KaimingNormal(rng, 2*k*k, ch, 2, k, k)
	conv := NewConvProj(kernel, inShape, tensor.ConvSpec{Stride: stride})
	layers := []*Layer{NewLayer("conv1", conv, lif)}

	cur := conv.OutShape()
	if pool > 1 {
		pp := NewPoolProj(cur, pool, PoolWeight)
		layers = append(layers, NewLayer("pool1", pp, lif))
		cur = pp.OutShape()
	}
	hidden := flatLen(cur)
	dense := NewDenseProj(tensor.KaimingNormal(rng, hidden, 10, hidden))
	layers = append(layers, NewLayer("out", dense, lif))

	return NewNetwork("nmnist", inShape, 1.0, layers...)
}

// BuildIBMGesture constructs the DVS128-Gesture-style SNN of Fig. 5:
// [2,H,H] DVS frames → spiking sum-pool (spatial downsampling) → strided
// convolution → sum-pool → dense readout over 11 gesture classes.
func BuildIBMGesture(rng *rand.Rand, sc ModelScale) *Network {
	var h, pre, ch, k, stride, post int
	switch sc {
	case ScaleTiny:
		h, pre, ch, k, stride, post = 16, 2, 3, 3, 1, 2 // pool→2×8×8, conv→3×6×6, pool→3×3×3
	case ScaleSmall:
		h, pre, ch, k, stride, post = 32, 2, 6, 5, 1, 2 // pool→2×16×16, conv→6×12×12, pool→6×6×6
	default:
		h, pre, ch, k, stride, post = 128, 4, 16, 5, 2, 2 // pool→2×32×32, conv→16×14×14, pool→16×7×7
	}
	inShape := []int{2, h, h}
	lif := DefaultLIF()

	pool1 := NewPoolProj(inShape, pre, PoolWeight)
	l1 := NewLayer("pool1", pool1, lif)

	kernel := tensor.KaimingNormal(rng, 2*k*k, ch, 2, k, k)
	conv := NewConvProj(kernel, pool1.OutShape(), tensor.ConvSpec{Stride: stride})
	l2 := NewLayer("conv1", conv, lif)

	pool2 := NewPoolProj(conv.OutShape(), post, PoolWeight)
	l3 := NewLayer("pool2", pool2, lif)

	hidden := flatLen(pool2.OutShape())
	dense := NewDenseProj(tensor.KaimingNormal(rng, hidden, 11, hidden))
	l4 := NewLayer("out", dense, lif)

	return NewNetwork("ibm-gesture", inShape, 1.0, l1, l2, l3, l4)
}

// BuildSHD constructs the Spiking-Heidelberg-Digits-style SNN of Fig. 6:
// 700 audio channels → recurrently connected hidden LIF population →
// dense readout over 20 spoken-digit classes.
func BuildSHD(rng *rand.Rand, sc ModelScale) *Network {
	var in, hidden int
	switch sc {
	case ScaleTiny:
		in, hidden = 40, 24
	case ScaleSmall:
		in, hidden = 140, 64
	default:
		in, hidden = 700, 384
	}
	lif := DefaultLIF()

	w := tensor.KaimingNormal(rng, in, hidden, in)
	// Recurrent weights start small so the untrained network is stable.
	r := tensor.RandNormal(rng, 0, 0.3/float64(hidden), hidden, hidden)
	rec := NewRecurrentProj(w, r)
	l1 := NewLayer("recurrent1", rec, lif)

	dense := NewDenseProj(tensor.KaimingNormal(rng, hidden, 20, hidden))
	l2 := NewLayer("out", dense, lif)

	return NewNetwork("shd", []int{in}, 1.0, l1, l2)
}

// SampleSteps returns the per-benchmark duration, in simulation steps, of
// one dataset sample at the given scale; the paper's sample durations
// (300 ms, 1.45 s, 1 s at 1 kHz) apply at full scale.
func SampleSteps(benchmark string, sc ModelScale) int {
	full := map[string]int{"nmnist": 300, "ibm-gesture": 1450, "shd": 1000}
	f, ok := full[benchmark]
	if !ok {
		panic(fmt.Sprintf("snn: unknown benchmark %q", benchmark))
	}
	switch sc {
	case ScaleTiny:
		return f / 10
	case ScaleSmall:
		return f / 5
	default:
		return f
	}
}
