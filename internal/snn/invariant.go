package snn

import "fmt"

// failf is the package's invariant-check chokepoint for hot-path
// programmer errors (shape violations inside Run/RunGraph, faults on
// weightless layers). Constructors and boundary APIs return errors
// instead; failf is reserved for conditions the boundary validation has
// already excluded.
func failf(format string, args ...any) {
	panic(fmt.Sprintf(format, args...))
}
