package snn

import (
	"github.com/repro/snntest/internal/tensor"
)

// Fused LIF step kernels: one pass per (layer, time step) that computes
// the synaptic currents and the leak→threshold→reset→refractory update,
// writing spikes straight into the record row. No intermediate tensor is
// materialized — the per-layer scratch (membrane state, current row,
// im2col column buffer) is preallocated in NewScratch — so a full
// Run/RunFrom pass performs zero heap allocations.
//
// Every kernel reproduces the reference path (Projection.Forward +
// stepLayer) bit for bit: per-neuron currents accumulate in the exact
// floating-point order of MatVec / Conv2D / SumPool2D (see the im2col
// numerical contract in internal/tensor for the padding zero-sign
// caveat), and the LIF sweep is the very same stepLayer the reference
// path runs, so the two paths cannot drift. The equivalence suite and
// fuzz targets in this package pin the contract.

// fusedKind selects a layer's kernel without interface dispatch in the
// hot loop.
type fusedKind uint8

const (
	fusedDense fusedKind = iota
	fusedConv
	fusedPool
	fusedRecurrent
)

// layerKernel is the preallocated fused forward kernel of one layer.
type layerKernel struct {
	kind fusedKind
	nn   int // neuron count
	fan  int // flattened fan-in (dense/recurrent)

	// cur is the preallocated synaptic-current scratch row. The current
	// loops write it with no function calls in flight, so the compiler
	// keeps the dot-product state in registers (calling lifUpdate from
	// inside the accumulation loop forces a spill/reload per neuron —
	// measurably slower than the reference MatVec on small layers).
	cur []float64

	// Weight data views, re-captured from the bound network at every pass
	// entry: Scratch.Bind may re-point the scratch at a clone whose weight
	// arrays differ, and fault injection lazily allocates override slices,
	// so nothing weight- or fault-shaped is cached across passes.
	w, r []float64

	// Convolution geometry and column scratch.
	inC, inH, inW int
	outC, kh, kw  int
	np, patch     int
	spec          tensor.ConvSpec
	col           []float64

	// Pooling geometry.
	pk     int
	weight float64
}

// newLayerKernel sizes the fused kernel and its scratch for one layer.
func newLayerKernel(l *Layer) *layerKernel {
	k := &layerKernel{nn: l.NumNeurons()}
	k.cur = make([]float64, k.nn)
	switch p := l.Proj.(type) {
	case *DenseProj:
		k.kind = fusedDense
		k.fan = p.W.Dim(1)
	case *RecurrentProj:
		k.kind = fusedRecurrent
		k.fan = p.W.Dim(1)
	case *ConvProj:
		k.kind = fusedConv
		in := p.InShape()
		k.inC, k.inH, k.inW = in[0], in[1], in[2]
		k.outC, k.kh, k.kw = p.K.Dim(0), p.K.Dim(2), p.K.Dim(3)
		k.spec = p.Spec
		out := p.OutShape()
		k.np = out[1] * out[2]
		k.patch = k.inC * k.kh * k.kw
		k.col = make([]float64, tensor.Im2ColLen(k.inC, k.inH, k.inW, k.kh, k.kw, p.Spec))
	case *PoolProj:
		k.kind = fusedPool
		in := p.InShape()
		k.inC, k.inH, k.inW = in[0], in[1], in[2]
		k.pk = p.KSize
	default:
		failf("snn: no fused kernel for projection kind %q", l.Proj.Kind())
	}
	return k
}

// bind re-captures the layer's weight storage for one pass.
//
//snn:hotpath
func (k *layerKernel) bind(l *Layer) {
	switch p := l.Proj.(type) {
	case *DenseProj:
		k.w = p.W.Data()
	case *RecurrentProj:
		k.w = p.W.Data()
		k.r = p.R.Data()
	case *ConvProj:
		k.w = p.K.Data()
	case *PoolProj:
		k.weight = p.Weight
	}
}

// step advances the layer by one time step: the synaptic currents are
// accumulated into the preallocated k.cur scratch row by call-free loops,
// then the shared stepLayer sweep applies the LIF update and writes the
// spikes to out. The recurrent kernel reads st.lastSpike while computing
// currents, and stepLayer only mutates it after every current is already
// in k.cur — the same ordering the reference path gets by materializing
// the current tensor before its stepLayer call.
//
//snn:hotpath
func (k *layerKernel) step(l *Layer, st *fastLayerState, in, out []float64) {
	cur := k.cur
	switch k.kind {
	case fusedDense:
		// Slicing each weight row to exactly len(in) lets the compiler
		// prove wrow[j] in bounds for every range index — no per-tap
		// bounds check (the same trick recurs in the other kernels).
		for i := 0; i < k.nn; i++ {
			o := i * k.fan
			wrow := k.w[o : o+len(in)]
			c := 0.0
			for j, xv := range in {
				c += wrow[j] * xv
			}
			cur[i] = c
		}
	case fusedRecurrent:
		last := st.lastSpike
		for i := 0; i < k.nn; i++ {
			o := i * k.fan
			wrow := k.w[o : o+len(in)]
			cW := 0.0
			for j, xv := range in {
				cW += wrow[j] * xv
			}
			o = i * k.nn
			rrow := k.r[o : o+len(last)]
			cR := 0.0
			for j, lv := range last {
				cR += rrow[j] * lv
			}
			cur[i] = cW + cR
		}
	case fusedConv:
		tensor.Im2Col(k.col, in, k.inC, k.inH, k.inW, k.kh, k.kw, k.spec)
		// Position-outer, channel-inner: each column row is read once and
		// dotted against every kernel row while it is cache-hot (the whole
		// kernel fits in L1; the column matrix does not), instead of
		// re-streaming the column matrix per output channel. Each output
		// element's accumulation order is unchanged.
		for p := 0; p < k.np; p++ {
			co := p * k.patch
			crow := k.col[co : co+k.patch]
			for oc := 0; oc < k.outC; oc++ {
				wo := oc * k.patch
				wrow := k.w[wo : wo+len(crow)]
				c := 0.0
				for j, cv := range crow {
					c += wrow[j] * cv
				}
				cur[oc*k.np+p] = c
			}
		}
	case fusedPool:
		oh, ow := k.inH/k.pk, k.inW/k.pk
		for ci := 0; ci < k.inC; ci++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					c := 0.0
					for ky := 0; ky < k.pk; ky++ {
						row := in[(ci*k.inH+oy*k.pk+ky)*k.inW : (ci*k.inH+oy*k.pk+ky+1)*k.inW]
						for kx := 0; kx < k.pk; kx++ {
							c += row[ox*k.pk+kx]
						}
					}
					cur[(ci*oh+oy)*ow+ox] = c * k.weight
				}
			}
		}
	}
	stepLayer(l, st, cur, out)
}
