// Package snn implements a discrete-time spiking neural network simulator
// built around the Leaky Integrate-and-Fire (LIF) neuron model, with two
// interchangeable execution paths:
//
//   - a fast inference path over plain tensors, used for dataset
//     evaluation and for the fault-simulation campaigns whose cost the
//     paper's algorithm is designed to avoid, and
//   - a differentiable path over autograd nodes using surrogate spike
//     gradients (SLAYER-style), used for training and for the paper's
//     input-optimization test generation.
//
// Both paths implement the exact same forward dynamics, so the spike
// trains they produce are bit-identical; a test asserts this invariant.
//
// The membrane update per step t for neuron i is
//
//	u[t] = gate·(leak·u[t-1]·(1 − s[t-1]) + I[t])
//	s[t] = 1 if u[t] > threshold else 0
//
// where gate is 0 while the neuron is refractory (it then integrates
// nothing and emits nothing) and the (1 − s[t-1]) factor implements
// reset-to-zero after a spike.
package snn

import "fmt"

// LIFParams are the layer-default Leaky Integrate-and-Fire neuron
// parameters. Individual neurons may override them (see Layer), which is
// how parametric "timing variation" faults are injected.
type LIFParams struct {
	Threshold  float64 // firing threshold θ (> 0)
	Leak       float64 // membrane retention per step, in (0, 1]
	Refractory int     // refractory period in steps after a spike, ≥ 0
}

// Validate reports whether the parameters are physically meaningful.
func (p LIFParams) Validate() error {
	if p.Threshold <= 0 {
		return fmt.Errorf("snn: threshold must be positive, got %g", p.Threshold)
	}
	if p.Leak <= 0 || p.Leak > 1 {
		return fmt.Errorf("snn: leak must be in (0,1], got %g", p.Leak)
	}
	if p.Refractory < 0 {
		return fmt.Errorf("snn: refractory must be ≥ 0, got %d", p.Refractory)
	}
	return nil
}

// DefaultLIF returns the parameter set used by the benchmark models.
func DefaultLIF() LIFParams {
	return LIFParams{Threshold: 1.0, Leak: 0.9, Refractory: 1}
}

// NeuronMode selects the behavioural state of a neuron, used to model the
// extreme neuron faults of Section III.
type NeuronMode uint8

const (
	// NeuronNormal is fault-free LIF behaviour.
	NeuronNormal NeuronMode = iota
	// NeuronDead halts spike propagation: the neuron never fires.
	NeuronDead
	// NeuronSaturated fires non-stop, at every time step, regardless of
	// input activity or refractoriness.
	NeuronSaturated
)

func (m NeuronMode) String() string {
	switch m {
	case NeuronNormal:
		return "normal"
	case NeuronDead:
		return "dead"
	case NeuronSaturated:
		return "saturated"
	default:
		return fmt.Sprintf("NeuronMode(%d)", uint8(m))
	}
}
