package snn

import (
	"github.com/repro/snntest/internal/tensor"
)

// Record holds the output spike trains of every neuron in every layer for
// one simulation run: Layers[ℓ] has shape [T, Nℓ] with binary entries —
// the O^{ℓi} trains of the paper, stored step-major.
type Record struct {
	Steps  int
	Layers []*tensor.Tensor
}

// NewRecord allocates an all-zero record for the network over the given
// number of steps.
func NewRecord(n *Network, steps int) *Record {
	r := &Record{Steps: steps, Layers: make([]*tensor.Tensor, len(n.Layers))}
	for i, l := range n.Layers {
		r.Layers[i] = tensor.New(steps, l.NumNeurons())
	}
	return r
}

// ReplayInput returns the recorded spike frame that feeds layer `layer`
// at step t when this record is replayed as the input of an incremental
// re-simulation: layer ℓ ≥ 1 is driven by layer ℓ−1's recorded output
// row, returned as a length-N view sharing the record's storage (layer 0
// is driven by the raw stimulus, which the record does not hold).
func (r *Record) ReplayInput(layer, t int) *tensor.Tensor {
	return r.Layers[layer-1].Step(t)
}

// Matches reports whether the record can serve as the golden replay trace
// for the network over the given step count: same layer count, same step
// count, and per-layer widths equal to the network's neuron counts.
func (r *Record) Matches(n *Network, steps int) bool {
	if r.Steps != steps || len(r.Layers) != len(n.Layers) {
		return false
	}
	for i, l := range n.Layers {
		if r.Layers[i].Dim(1) != l.NumNeurons() {
			return false
		}
	}
	return true
}

// Counts returns the per-neuron spike counts |O^{ℓi}| of layer ℓ.
func (r *Record) Counts(layer int) *tensor.Tensor {
	return tensor.SumCols(r.Layers[layer])
}

// Output returns the output layer's spike trains, shape [T, N^L].
func (r *Record) Output() *tensor.Tensor {
	return r.Layers[len(r.Layers)-1]
}

// OutputCounts returns the output layer's per-class spike counts.
func (r *Record) OutputCounts() *tensor.Tensor {
	return r.Counts(len(r.Layers) - 1)
}

// NeuronTrain returns a copy of neuron i's spike train in layer ℓ as a
// length-T vector.
func (r *Record) NeuronTrain(layer, i int) *tensor.Tensor {
	lt := r.Layers[layer]
	t := tensor.New(r.Steps)
	for s := 0; s < r.Steps; s++ {
		t.Data()[s] = lt.At(s, i)
	}
	return t
}

// ActivatedNeurons returns the set of globally indexed neurons that fired
// at least minSpikes spikes, using the network's layer offsets.
func (r *Record) ActivatedNeurons(offsets []int, minSpikes float64) map[int]bool {
	act := make(map[int]bool)
	for li, lt := range r.Layers {
		counts := tensor.SumCols(lt)
		for i, c := range counts.Data() {
			if c >= minSpikes {
				act[offsets[li]+i] = true
			}
		}
	}
	return act
}

// TotalSpikes returns the total number of spikes across all layers.
func (r *Record) TotalSpikes() float64 {
	s := 0.0
	for _, lt := range r.Layers {
		s += tensor.Sum(lt)
	}
	return s
}

// OutputDiffL1 returns ‖O^L − other.O^L‖₁, the paper's fault-detection
// statistic (Eq. 3). The records must cover the same step count and
// output width.
func (r *Record) OutputDiffL1(other *Record) float64 {
	return tensor.L1Diff(r.Output(), other.Output())
}

// TemporalDiversity returns, for each neuron of layer ℓ, the number of
// state changes of its output train (Eq. 11).
func (r *Record) TemporalDiversity(layer int) *tensor.Tensor {
	lt := r.Layers[layer]
	n := lt.Dim(1)
	td := tensor.New(n)
	for s := 1; s < r.Steps; s++ {
		prev := lt.RawRange((s-1)*n, n)
		cur := lt.RawRange(s*n, n)
		for i := 0; i < n; i++ {
			d := cur[i] - prev[i]
			if d < 0 {
				d = -d
			}
			td.Data()[i] += d
		}
	}
	return td
}
