package snn

import (
	"fmt"

	ag "github.com/repro/snntest/internal/autograd"
	"github.com/repro/snntest/internal/tensor"
)

// Projection computes the synaptic current entering a layer's neurons from
// the presynaptic spike tensor (and, for recurrent projections, the
// layer's own previous output). Implementations provide both a plain
// tensor path and a differentiable graph path with identical semantics.
type Projection interface {
	// Kind is a short stable identifier ("dense", "conv", "pool", "recurrent").
	Kind() string
	// InShape and OutShape are the spike-tensor shapes consumed/produced
	// per time step.
	InShape() []int
	OutShape() []int
	// NumSynapses counts the independently faultable weights. Convolution
	// weights are shared across positions in hardware, so each kernel
	// element counts once (the convention of per-parameter fault
	// injection); dense and recurrent weights count each connection.
	NumSynapses() int
	// Weights returns the mutable weight tensor, or nil if the projection
	// has no trainable/faultable weights (sum pooling).
	Weights() *tensor.Tensor
	// Forward computes the synaptic current from input spikes in and the
	// layer's previous output spikes lastOut (used only by recurrent
	// projections; may be nil otherwise).
	Forward(in, lastOut *tensor.Tensor) *tensor.Tensor
	// ForwardGraph is the differentiable equivalent of Forward.
	ForwardGraph(in, lastOut *ag.Node) *ag.Node
	// FanIn returns the effective fan-in weight matrix [numNeurons × fanIn]
	// and, given presynaptic spike counts, the matching contribution input
	// vector, for the paper's synapse-uniformity loss L4. Projections for
	// which L4 is not defined (pooling) return nil.
	FanIn() *tensor.Tensor
	// ContributionCounts maps presynaptic spike counts (shape InShape
	// flattened; plus own counts for recurrent) to the vector matching
	// FanIn's columns. Returns nil when FanIn is nil.
	ContributionCounts(preCounts, ownCounts *ag.Node) *ag.Node
	// ParamLeaves switches the projection into training mode on first
	// call: ForwardGraph thereafter routes through autograd leaf nodes
	// wrapping the weight tensors, so Backward accumulates weight
	// gradients into the returned leaves. Weightless projections return
	// nil and stay in inference mode.
	ParamLeaves() []*ag.Node
	// Clone deep-copies the projection's weight storage. The clone is
	// always in inference mode (training leaves are not carried over).
	Clone() Projection
}

// weightNode wraps a weight tensor for the graph path: as a gradient leaf
// when training mode is enabled, as a constant otherwise.
func weightNode(leaf **ag.Node, w *tensor.Tensor) *ag.Node {
	if *leaf != nil {
		return *leaf
	}
	return ag.Const(w)
}

// ---------------------------------------------------------------------------
// Dense projection

// DenseProj is a fully connected projection: current = W·in.
type DenseProj struct {
	W     *tensor.Tensor // [out, in]
	out   int
	in    int
	wLeaf *ag.Node
	// inShape/outShape are cached so shape accessors stay allocation-free
	// (NumNeurons runs on the simulation hot path).
	inShape, outShape []int
}

// NewDenseProj creates a dense projection with the given weight matrix.
func NewDenseProj(w *tensor.Tensor) (*DenseProj, error) {
	if w.Rank() != 2 {
		return nil, fmt.Errorf("snn: dense weights must be rank 2, got %v", w.Shape())
	}
	p := &DenseProj{W: w, out: w.Dim(0), in: w.Dim(1)}
	p.inShape, p.outShape = []int{p.in}, []int{p.out}
	return p, nil
}

func (p *DenseProj) Kind() string            { return "dense" }
func (p *DenseProj) InShape() []int          { return p.inShape }
func (p *DenseProj) OutShape() []int         { return p.outShape }
func (p *DenseProj) NumSynapses() int        { return p.W.Len() }
func (p *DenseProj) Weights() *tensor.Tensor { return p.W }

func (p *DenseProj) Forward(in, _ *tensor.Tensor) *tensor.Tensor {
	return tensor.MatVec(p.W, in.Reshape(p.in))
}

func (p *DenseProj) ForwardGraph(in, _ *ag.Node) *ag.Node {
	return ag.MatVec(weightNode(&p.wLeaf, p.W), ag.Reshape(in, p.in))
}

func (p *DenseProj) ParamLeaves() []*ag.Node {
	if p.wLeaf == nil {
		p.wLeaf = ag.Leaf(p.W)
	}
	return []*ag.Node{p.wLeaf}
}

func (p *DenseProj) Clone() Projection {
	c := &DenseProj{W: p.W.Clone(), out: p.out, in: p.in}
	c.inShape, c.outShape = []int{c.in}, []int{c.out}
	return c
}

func (p *DenseProj) FanIn() *tensor.Tensor { return p.W }

func (p *DenseProj) ContributionCounts(preCounts, _ *ag.Node) *ag.Node {
	return ag.Reshape(preCounts, p.in)
}

// ---------------------------------------------------------------------------
// Convolutional projection

// ConvProj is a 2-D convolutional projection over [C,H,W] spike frames.
type ConvProj struct {
	K        *tensor.Tensor // [outC, inC, kH, kW]
	Spec     tensor.ConvSpec
	inShape  []int
	outShape []int
	kLeaf    *ag.Node
}

// NewConvProj creates a convolutional projection for the given input shape.
func NewConvProj(kernel *tensor.Tensor, inShape []int, spec tensor.ConvSpec) (*ConvProj, error) {
	if kernel.Rank() != 4 || len(inShape) != 3 {
		return nil, fmt.Errorf("snn: conv projection requires rank-4 kernel and [C,H,W] input, got %v and %v", kernel.Shape(), inShape)
	}
	if kernel.Dim(1) != inShape[0] {
		return nil, fmt.Errorf("snn: conv kernel channels %d do not match input channels %d", kernel.Dim(1), inShape[0])
	}
	oh := tensor.ConvOutDim(inShape[1], kernel.Dim(2), spec.Stride, spec.Pad)
	ow := tensor.ConvOutDim(inShape[2], kernel.Dim(3), spec.Stride, spec.Pad)
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("snn: conv projection produces empty output for input %v kernel %v", inShape, kernel.Shape())
	}
	return &ConvProj{
		K:        kernel,
		Spec:     spec,
		inShape:  append([]int(nil), inShape...),
		outShape: []int{kernel.Dim(0), oh, ow},
	}, nil
}

func (p *ConvProj) Kind() string            { return "conv" }
func (p *ConvProj) InShape() []int          { return p.inShape }
func (p *ConvProj) OutShape() []int         { return p.outShape }
func (p *ConvProj) NumSynapses() int        { return p.K.Len() }
func (p *ConvProj) Weights() *tensor.Tensor { return p.K }

func (p *ConvProj) Forward(in, _ *tensor.Tensor) *tensor.Tensor {
	return tensor.Conv2D(in.Reshape(p.inShape...), p.K, p.Spec)
}

func (p *ConvProj) ForwardGraph(in, _ *ag.Node) *ag.Node {
	return ag.Conv2D(ag.Reshape(in, p.inShape...), weightNode(&p.kLeaf, p.K), p.Spec)
}

func (p *ConvProj) ParamLeaves() []*ag.Node {
	if p.kLeaf == nil {
		p.kLeaf = ag.Leaf(p.K)
	}
	return []*ag.Node{p.kLeaf}
}

func (p *ConvProj) Clone() Projection {
	return &ConvProj{
		K:        p.K.Clone(),
		Spec:     p.Spec,
		inShape:  append([]int(nil), p.inShape...),
		outShape: append([]int(nil), p.outShape...),
	}
}

// FanIn views the kernel as [outC, inC·kH·kW]: each output channel's
// neurons share one fan-in weight vector, matching the per-parameter
// synapse fault convention.
func (p *ConvProj) FanIn() *tensor.Tensor {
	return p.K.Reshape(p.K.Dim(0), p.K.Dim(1)*p.K.Dim(2)*p.K.Dim(3))
}

// ContributionCounts approximates each kernel element's traffic by the
// mean spike count of its presynaptic channel, replicated across the
// kernel window (exact per-position counts would need one entry per
// connection, which explodes for shared conv weights).
func (p *ConvProj) ContributionCounts(preCounts, _ *ag.Node) *ag.Node {
	inC := p.inShape[0]
	per := p.inShape[1] * p.inShape[2]
	kk := p.K.Dim(2) * p.K.Dim(3)
	// Mean count per channel: pool spatial positions with a constant
	// averaging matrix so gradients flow back to every position.
	m := tensor.New(inC*kk, inC*per)
	for c := 0; c < inC; c++ {
		for k := 0; k < kk; k++ {
			row := c*kk + k
			for j := 0; j < per; j++ {
				m.Set(1/float64(per), row, c*per+j)
			}
		}
	}
	return ag.MatVec(ag.Const(m), ag.Reshape(preCounts, inC*per))
}

// ---------------------------------------------------------------------------
// Sum-pooling projection

// PoolProj aggregates non-overlapping k×k windows with a fixed synaptic
// weight. The pooled units are LIF neurons (as in SLAYER's spiking
// pooling layers), so they appear in the neuron fault universe, but the
// fixed weight is not a faultable synapse.
type PoolProj struct {
	KSize    int
	Weight   float64
	inShape  []int
	outShape []int
}

// NewPoolProj creates a k×k sum-pooling projection with the given fixed
// synapse weight.
func NewPoolProj(inShape []int, k int, weight float64) (*PoolProj, error) {
	if len(inShape) != 3 {
		return nil, fmt.Errorf("snn: pool projection requires [C,H,W] input, got %v", inShape)
	}
	if k <= 0 || inShape[1]%k != 0 || inShape[2]%k != 0 {
		return nil, fmt.Errorf("snn: pool window %d does not divide input %v", k, inShape)
	}
	return &PoolProj{
		KSize:    k,
		Weight:   weight,
		inShape:  append([]int(nil), inShape...),
		outShape: []int{inShape[0], inShape[1] / k, inShape[2] / k},
	}, nil
}

func (p *PoolProj) Kind() string            { return "pool" }
func (p *PoolProj) InShape() []int          { return p.inShape }
func (p *PoolProj) OutShape() []int         { return p.outShape }
func (p *PoolProj) NumSynapses() int        { return 0 }
func (p *PoolProj) Weights() *tensor.Tensor { return nil }

func (p *PoolProj) Forward(in, _ *tensor.Tensor) *tensor.Tensor {
	out := tensor.SumPool2D(in.Reshape(p.inShape...), p.KSize)
	tensor.ScaleInPlace(out, p.Weight)
	return out
}

func (p *PoolProj) ForwardGraph(in, _ *ag.Node) *ag.Node {
	return ag.Scale(ag.SumPool2D(ag.Reshape(in, p.inShape...), p.KSize), p.Weight)
}

func (p *PoolProj) Clone() Projection {
	cp := *p
	return &cp
}

func (p *PoolProj) FanIn() *tensor.Tensor                     { return nil }
func (p *PoolProj) ContributionCounts(_, _ *ag.Node) *ag.Node { return nil }
func (p *PoolProj) ParamLeaves() []*ag.Node                   { return nil }

// ---------------------------------------------------------------------------
// Recurrent projection

// RecurrentProj combines a feedforward input matrix with a recurrent
// matrix applied to the layer's own previous spikes:
// current = W·in + R·lastOut.
type RecurrentProj struct {
	W     *tensor.Tensor // [out, in]
	R     *tensor.Tensor // [out, out]
	wLeaf *ag.Node
	rLeaf *ag.Node
	// inShape/outShape are cached so shape accessors stay allocation-free
	// (NumNeurons runs on the simulation hot path).
	inShape, outShape []int
}

// NewRecurrentProj creates a recurrent projection from feedforward and
// recurrent weight matrices.
func NewRecurrentProj(w, r *tensor.Tensor) (*RecurrentProj, error) {
	if w.Rank() != 2 || r.Rank() != 2 || r.Dim(0) != r.Dim(1) || r.Dim(0) != w.Dim(0) {
		return nil, fmt.Errorf("snn: recurrent projection shapes invalid: W %v, R %v", w.Shape(), r.Shape())
	}
	return &RecurrentProj{W: w, R: r, inShape: []int{w.Dim(1)}, outShape: []int{w.Dim(0)}}, nil
}

func (p *RecurrentProj) Kind() string    { return "recurrent" }
func (p *RecurrentProj) InShape() []int  { return p.inShape }
func (p *RecurrentProj) OutShape() []int { return p.outShape }

// NumSynapses counts both feedforward and recurrent connections.
func (p *RecurrentProj) NumSynapses() int { return p.W.Len() + p.R.Len() }

// Weights returns the feedforward matrix; the recurrent matrix is reached
// through RecurrentWeights. Fault enumeration indexes the two ranges
// contiguously: [0, len(W)) then [len(W), len(W)+len(R)).
func (p *RecurrentProj) Weights() *tensor.Tensor { return p.W }

// RecurrentWeights returns the recurrent weight matrix R.
func (p *RecurrentProj) RecurrentWeights() *tensor.Tensor { return p.R }

func (p *RecurrentProj) Forward(in, lastOut *tensor.Tensor) *tensor.Tensor {
	cur := tensor.MatVec(p.W, in.Reshape(p.W.Dim(1)))
	if lastOut != nil {
		tensor.AddInPlace(cur, tensor.MatVec(p.R, lastOut.Reshape(p.R.Dim(1))))
	}
	return cur
}

func (p *RecurrentProj) ForwardGraph(in, lastOut *ag.Node) *ag.Node {
	cur := ag.MatVec(weightNode(&p.wLeaf, p.W), ag.Reshape(in, p.W.Dim(1)))
	if lastOut != nil {
		cur = ag.Add(cur, ag.MatVec(weightNode(&p.rLeaf, p.R), ag.Reshape(lastOut, p.R.Dim(1))))
	}
	return cur
}

func (p *RecurrentProj) ParamLeaves() []*ag.Node {
	if p.wLeaf == nil {
		p.wLeaf = ag.Leaf(p.W)
		p.rLeaf = ag.Leaf(p.R)
	}
	return []*ag.Node{p.wLeaf, p.rLeaf}
}

func (p *RecurrentProj) Clone() Projection {
	w := p.W.Clone()
	return &RecurrentProj{W: w, R: p.R.Clone(), inShape: []int{w.Dim(1)}, outShape: []int{w.Dim(0)}}
}

// FanIn concatenates W and R column-wise: each neuron's fan-in covers its
// feedforward and recurrent synapses.
func (p *RecurrentProj) FanIn() *tensor.Tensor {
	out, in, n := p.W.Dim(0), p.W.Dim(1), p.R.Dim(1)
	m := tensor.New(out, in+n)
	for i := 0; i < out; i++ {
		for j := 0; j < in; j++ {
			m.Set(p.W.At(i, j), i, j)
		}
		for j := 0; j < n; j++ {
			m.Set(p.R.At(i, j), i, in+j)
		}
	}
	return m
}

func (p *RecurrentProj) ContributionCounts(preCounts, ownCounts *ag.Node) *ag.Node {
	in, n := p.W.Dim(1), p.R.Dim(1)
	// Concatenate [preCounts ; ownCounts] with constant selection matrices.
	sel := tensor.New(in+n, in)
	for j := 0; j < in; j++ {
		sel.Set(1, j, j)
	}
	top := ag.MatVec(ag.Const(sel), ag.Reshape(preCounts, in))
	if ownCounts == nil {
		return top
	}
	sel2 := tensor.New(in+n, n)
	for j := 0; j < n; j++ {
		sel2.Set(1, in+j, j)
	}
	return ag.Add(top, ag.MatVec(ag.Const(sel2), ag.Reshape(ownCounts, n)))
}
