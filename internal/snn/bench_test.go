package snn

import (
	"math/rand"
	"testing"

	ag "github.com/repro/snntest/internal/autograd"
	"github.com/repro/snntest/internal/tensor"
)

func benchStimulus(net *Network, steps int) *tensor.Tensor {
	return tensor.RandBernoulli(rand.New(rand.NewSource(1)), 0.2,
		append([]int{steps}, net.InShape...)...)
}

func BenchmarkRunFastNMNISTTiny(b *testing.B) {
	net := must(BuildNMNIST(rand.New(rand.NewSource(1)), ScaleTiny))
	stim := benchStimulus(net, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Run(stim)
	}
}

func BenchmarkRunFastIBMSmall(b *testing.B) {
	net := must(BuildIBMGesture(rand.New(rand.NewSource(2)), ScaleSmall))
	stim := benchStimulus(net, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Run(stim)
	}
}

func BenchmarkRunGraphBPTT(b *testing.B) {
	net := must(BuildSHD(rand.New(rand.NewSource(3)), ScaleTiny))
	stim := benchStimulus(net, 30)
	frame := net.InputLen()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		leaf := ag.Leaf(stim.Clone().Reshape(30 * frame))
		steps := make([]*ag.Node, 30)
		for t := 0; t < 30; t++ {
			steps[t] = ag.STE(ag.Slice(leaf, t*frame, frame, net.InShape...), 0.5)
		}
		res := net.RunGraph(steps)
		ag.Backward(ag.Sum(res.LayerCounts(res.OutputLayer())))
	}
}

func BenchmarkCloneIBMSmall(b *testing.B) {
	net := must(BuildIBMGesture(rand.New(rand.NewSource(4)), ScaleSmall))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Clone()
	}
}
