package snn

import (
	"fmt"
	"time"

	ag "github.com/repro/snntest/internal/autograd"
	"github.com/repro/snntest/internal/obs"
	"github.com/repro/snntest/internal/tensor"
)

// Hot-path counters of the fast simulation loop. Every update is guarded
// by a single obs.On() branch so the disabled (default) layer leaves the
// simulator's cost model untouched; see DESIGN.md §6 for the taxonomy.
// The latency histograms are flushed once per forward pass alongside the
// counters: the per-layer-step distribution is derived as pass duration
// over executed layer-steps, so the inner simulation loop never reads
// the clock.
var (
	obsForwardPasses = obs.NewCounter("snn_forward_passes_total")
	obsLayerSteps    = obs.NewCounter("snn_layer_steps_total")
	obsSpikes        = obs.NewCounter("snn_spikes_total")
	obsForwardHist   = obs.NewTimingHistogram("snn_forward_pass_seconds")
	obsLayerStepHist = obs.NewTimingHistogram("snn_layer_step_seconds")
)

// Network is a feedforward stack of spiking layers (recurrent projections
// loop within a layer). The input is a spatio-temporal binary tensor of
// shape [T, InShape...]; each step's frame propagates through every layer
// before the next step begins, matching the synchronous time-stepped
// semantics of SLAYER-style simulators.
type Network struct {
	Name   string
	Layers []*Layer
	// InShape is the spatial shape of one input frame, e.g. [2,34,34] for
	// a DVS sensor or [700] for audio channels.
	InShape []int
	// StepMS is the real time represented by one simulation step, in
	// milliseconds; it converts step counts into the paper's test-duration
	// seconds.
	StepMS float64
}

// NewNetwork validates layer shape compatibility and returns the network.
func NewNetwork(name string, inShape []int, stepMS float64, layers ...*Layer) (*Network, error) {
	if len(layers) == 0 {
		return nil, fmt.Errorf("snn: network %q needs at least one layer", name)
	}
	prev := inShape
	for _, l := range layers {
		in := l.Proj.InShape()
		if flatLen(in) != flatLen(prev) {
			return nil, fmt.Errorf("snn: network %q: layer %q expects input %v but receives %v", name, l.Name, in, prev)
		}
		prev = l.Proj.OutShape()
	}
	return &Network{Name: name, Layers: layers, InShape: append([]int(nil), inShape...), StepMS: stepMS}, nil
}

func flatLen(shape []int) int {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return n
}

// InputLen returns the flattened size of one input frame.
func (n *Network) InputLen() int { return flatLen(n.InShape) }

// OutputLen returns the number of output-layer neurons (classes).
func (n *Network) OutputLen() int { return n.Layers[len(n.Layers)-1].NumNeurons() }

// NumNeurons returns the total neuron count across layers.
func (n *Network) NumNeurons() int {
	total := 0
	for _, l := range n.Layers {
		total += l.NumNeurons()
	}
	return total
}

// NumSynapses returns the total faultable synapse count across layers.
func (n *Network) NumSynapses() int {
	total := 0
	for _, l := range n.Layers {
		total += l.NumSynapses()
	}
	return total
}

// LayerOffsets returns, per layer, the global index of its first neuron;
// fault enumeration and the activated-neuron bookkeeping use these global
// neuron ids.
func (n *Network) LayerOffsets() []int {
	offs := make([]int, len(n.Layers))
	off := 0
	for i, l := range n.Layers {
		offs[i] = off
		off += l.NumNeurons()
	}
	return offs
}

// Clone deep-copies the network (weights and fault overrides included).
func (n *Network) Clone() *Network {
	layers := make([]*Layer, len(n.Layers))
	for i, l := range n.Layers {
		layers[i] = l.Clone()
	}
	return &Network{
		Name:    n.Name,
		Layers:  layers,
		InShape: append([]int(nil), n.InShape...),
		StepMS:  n.StepMS,
	}
}

// HasFaultOverrides reports whether any layer carries per-neuron fault
// overrides.
func (n *Network) HasFaultOverrides() bool {
	for _, l := range n.Layers {
		if l.HasFaultOverrides() {
			return true
		}
	}
	return false
}

// ParamLeaves switches every weighted projection into training mode and
// returns all weight leaf nodes, ready for an optimizer.
func (n *Network) ParamLeaves() []*ag.Node {
	var leaves []*ag.Node
	for _, l := range n.Layers {
		leaves = append(leaves, l.Proj.ParamLeaves()...)
	}
	return leaves
}

// ZeroInput returns an all-zero stimulus of t steps, the "sleep" input the
// paper inserts between optimized chunks (Eq. 7).
func (n *Network) ZeroInput(t int) *tensor.Tensor {
	return tensor.New(append([]int{t}, n.InShape...)...)
}

// CheckInput verifies that input has shape [T, InShape...] with T ≥ 1
// and returns T. Binary entries are not verified (callers own that
// invariant).
func (n *Network) CheckInput(input *tensor.Tensor) (int, error) {
	shape := input.Shape()
	if len(shape) != len(n.InShape)+1 || shape[0] < 1 {
		return 0, fmt.Errorf("snn: input shape %v does not match [T, %v]", shape, n.InShape)
	}
	for i, d := range n.InShape {
		if shape[i+1] != d {
			return 0, fmt.Errorf("snn: input shape %v does not match [T, %v]", shape, n.InShape)
		}
	}
	return shape[0], nil
}

// fastLayerState is the mutable per-layer simulation state of the fast path.
type fastLayerState struct {
	u         []float64 // membrane potentials
	lastSpike []float64 // previous step's output spikes
	refrac    []int     // remaining refractory steps
	outShape  []int
	// lastSpikeT persistently wraps lastSpike for recurrent projections,
	// so the hot loop does not re-wrap the slice every step.
	lastSpikeT *tensor.Tensor
	recurrent  bool
}

// reset clears the state to the fresh-network condition.
//
//snn:hotpath
func (st *fastLayerState) reset() {
	for i := range st.u {
		st.u[i] = 0
		st.lastSpike[i] = 0
		st.refrac[i] = 0
	}
}

// Scratch holds reusable simulation state — per-layer membrane/refractory
// buffers, fused kernels with their column scratch, and spike-record
// storage — so repeated Run/RunFrom calls (a fault-simulation campaign
// simulates one run per fault) allocate nothing per run. A Scratch belongs
// to one goroutine; the record returned by its RunFrom is overwritten by
// the next call.
type Scratch struct {
	net    *Network
	states []*fastLayerState
	// own[li] is the scratch-owned spike buffer of layer li, lazily sized
	// to the current step count. Record layers below the replay start
	// alias the golden record instead, so the two sets are kept separate.
	own     []*tensor.Tensor
	kernels []*layerKernel
	// rec is the reusable result record; every runFrom call rewrites its
	// Steps and Layers in place.
	rec *Record
	// frame is the flattened length of one stimulus frame.
	frame int
	// reference selects the allocating reference path (Projection.Forward
	// + stepLayer) over the fused kernels; see SetReference.
	reference bool
	// lastSimSteps records how many stimulus timesteps the most recent
	// runFrom simulated (the early-exit point of DivergesFrom); see
	// LastSimSteps.
	lastSimSteps int
}

// NewScratch allocates reusable simulation state for this network. The
// scratch is tied to the network's geometry; use Bind to re-point it at a
// geometry-identical clone (fault injectors simulate on clones).
func (n *Network) NewScratch() *Scratch {
	states := make([]*fastLayerState, len(n.Layers))
	kernels := make([]*layerKernel, len(n.Layers))
	for i, l := range n.Layers {
		nn := l.NumNeurons()
		st := &fastLayerState{
			u:         make([]float64, nn),
			lastSpike: make([]float64, nn),
			refrac:    make([]int, nn),
			outShape:  l.Proj.OutShape(),
		}
		if _, ok := l.Proj.(*RecurrentProj); ok {
			st.recurrent = true
			st.lastSpikeT = tensor.FromSlice(st.lastSpike, nn)
		}
		states[i] = st
		kernels[i] = newLayerKernel(l)
	}
	return &Scratch{
		net:     n,
		states:  states,
		own:     make([]*tensor.Tensor, len(n.Layers)),
		kernels: kernels,
		rec:     &Record{Layers: make([]*tensor.Tensor, len(n.Layers))},
		frame:   n.InputLen(),
	}
}

// SetReference switches the scratch onto the reference simulation path:
// per-step Projection.Forward tensor materialization followed by the
// plain stepLayer kernel. The fused path (the default) is bit-identical
// to it; the reference path is kept as the differential baseline for the
// equivalence/fuzz harness and the BENCH_forward comparison.
func (s *Scratch) SetReference(on bool) { s.reference = on }

// Bind re-points the scratch at net, which must be geometry-identical to
// the network the scratch was built for (layer kinds, shapes, synapse
// counts, conv/pool window parameters). Fault injectors bind one scratch
// to each faulty clone instead of re-allocating; binding an incompatible
// network is an error rather than a silent read of stale-shaped buffers.
func (s *Scratch) Bind(net *Network) error {
	if err := compatibleGeometry(s.net, net); err != nil {
		return err
	}
	s.net = net
	return nil
}

// compatibleGeometry reports whether a scratch built for network a can
// simulate network b without resizing any buffer.
func compatibleGeometry(a, b *Network) error {
	if len(a.Layers) != len(b.Layers) {
		return fmt.Errorf("snn: scratch bind: %d layers vs %d", len(a.Layers), len(b.Layers))
	}
	if !intsEq(a.InShape, b.InShape) {
		return fmt.Errorf("snn: scratch bind: input shape %v vs %v", a.InShape, b.InShape)
	}
	for i := range a.Layers {
		pa, pb := a.Layers[i].Proj, b.Layers[i].Proj
		if pa.Kind() != pb.Kind() ||
			!intsEq(pa.InShape(), pb.InShape()) ||
			!intsEq(pa.OutShape(), pb.OutShape()) ||
			pa.NumSynapses() != pb.NumSynapses() {
			return fmt.Errorf("snn: scratch bind: layer %d %s %v→%v incompatible with %s %v→%v",
				i, pa.Kind(), pa.InShape(), pa.OutShape(), pb.Kind(), pb.InShape(), pb.OutShape())
		}
		switch ca := pa.(type) {
		case *ConvProj:
			cb := pb.(*ConvProj)
			if !intsEq(ca.K.Shape(), cb.K.Shape()) || ca.Spec != cb.Spec {
				return fmt.Errorf("snn: scratch bind: layer %d conv kernel %v %+v vs %v %+v",
					i, ca.K.Shape(), ca.Spec, cb.K.Shape(), cb.Spec)
			}
		case *PoolProj:
			kb := pb.(*PoolProj)
			if ca.KSize != kb.KSize {
				return fmt.Errorf("snn: scratch bind: layer %d pool window %d vs %d", i, ca.KSize, kb.KSize)
			}
		}
	}
	return nil
}

func intsEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// runFrom is the single simulation loop behind Run, RunFrom and
// DivergesFrom. It simulates layers [start, L) over the stimulus: layer
// start receives the raw stimulus when start == 0, and the golden record's
// layer start-1 spike trains otherwise (a fault at layer start cannot
// perturb layers below it, so their golden outputs are exact). When
// stopOnDiverge is set, the loop compares the output row against golden
// after each step and returns at the first divergence. It returns the
// record (layers < start alias golden, read-only), the number of simulated
// layer-steps, and the divergence flag.
func (s *Scratch) runFrom(start int, golden *Record, stimulus *tensor.Tensor, stopOnDiverge bool) (*Record, int, bool) {
	n := s.net
	steps, err := n.CheckInput(stimulus)
	if err != nil {
		// Hot-path boundary: a bad stimulus shape here is a programmer
		// error — campaign entry points validate before their loops.
		failf("%v", err)
	}
	last := len(n.Layers) - 1
	if start < 0 || start > last {
		failf("snn: RunFrom start layer %d out of range [0, %d]", start, last)
	}
	if start > 0 || stopOnDiverge {
		if golden == nil {
			failf("snn: RunFrom start layer %d requires a golden record", start)
		}
		if !golden.Matches(n, steps) {
			failf("snn: golden record (%d steps, %d layers) does not match stimulus %d steps, network %d layers",
				golden.Steps, len(golden.Layers), steps, len(n.Layers))
		}
	}
	if golden != nil {
		for li := start; li < len(n.Layers); li++ {
			if s.own[li] != nil && golden.Layers[li] == s.own[li] {
				failf("snn: golden record aliases this scratch's buffers at layer %d; produce the golden record with a separate scratch", li)
			}
		}
	}
	rec := s.rec
	rec.Steps = steps
	for li := 0; li < start; li++ {
		rec.Layers[li] = golden.Layers[li]
	}
	for li := start; li < len(n.Layers); li++ {
		if s.own[li] == nil || s.own[li].Dim(0) != steps {
			s.own[li] = tensor.New(steps, n.Layers[li].NumNeurons())
		}
		rec.Layers[li] = s.own[li]
		s.states[li].reset()
	}
	if !s.reference {
		for li := start; li < len(n.Layers); li++ {
			s.kernels[li].bind(n.Layers[li])
		}
	}
	var outRow, goldenRow *tensor.Tensor
	if stopOnDiverge {
		outRow, goldenRow = rec.Layers[last], golden.Layers[last]
	}
	var t0 time.Time
	if obs.On() {
		t0 = time.Now()
	}
	layerSteps := 0
	for t := 0; t < steps; t++ {
		if s.reference {
			s.referenceStep(start, t, stimulus, golden, rec)
		} else {
			s.fusedStep(start, t, stimulus, golden, rec)
		}
		layerSteps += len(n.Layers) - start
		if stopOnDiverge && !tensor.RowEqual(outRow, goldenRow, t) {
			s.lastSimSteps = t + 1
			if obs.On() {
				s.observe(rec, start, t+1, layerSteps, time.Since(t0))
			}
			return rec, layerSteps, true
		}
	}
	s.lastSimSteps = steps
	if obs.On() {
		s.observe(rec, start, steps, layerSteps, time.Since(t0))
	}
	return rec, layerSteps, false
}

// observe flushes one run's hot-path counters and latency histograms: a
// forward pass, the simulated layer-steps, the spikes emitted in the
// simulated region (layers ≥ start over the first simSteps steps;
// replayed golden layers below start are not re-counted), the pass
// duration, and the mean per-layer-step latency of the pass. Callers
// gate it behind obs.On(), so the disabled layer costs the simulation
// loop exactly one branch.
func (s *Scratch) observe(rec *Record, start, simSteps, layerSteps int, elapsed time.Duration) {
	obsForwardPasses.Add(1)
	obsLayerSteps.Add(int64(layerSteps))
	obsForwardHist.Observe(elapsed)
	if layerSteps > 0 {
		obsLayerStepHist.Observe(elapsed / time.Duration(layerSteps))
	}
	spikes := int64(0)
	for li := start; li < len(s.net.Layers); li++ {
		nn := s.net.Layers[li].NumNeurons()
		for _, v := range rec.Layers[li].RawRange(0, simSteps*nn) {
			// Spikes are exactly 0 or 1 by construction; truncation counts
			// them without a float comparison.
			spikes += int64(v)
		}
	}
	obsSpikes.Add(spikes)
}

// fusedStep advances every simulated layer by one time step on the fused
// zero-allocation path: raw stimulus/golden/record rows flow between the
// layer kernels as plain slices, with no tensor headers materialized.
//
//snn:hotpath
func (s *Scratch) fusedStep(start, t int, stimulus *tensor.Tensor, golden *Record, rec *Record) {
	n := s.net
	var in []float64
	if start == 0 {
		in = stimulus.RawRange(t*s.frame, s.frame)
	} else {
		w := n.Layers[start-1].NumNeurons()
		in = golden.Layers[start-1].RawRange(t*w, w)
	}
	for li := start; li < len(n.Layers); li++ {
		k := s.kernels[li]
		out := rec.Layers[li].RawRange(t*k.nn, k.nn)
		k.step(n.Layers[li], s.states[li], in, out)
		in = out
	}
}

// referenceStep advances every simulated layer by one time step on the
// reference path: per-layer Projection.Forward materializes the synaptic
// current tensor, then stepLayer applies the LIF update. It allocates per
// (layer, step) by design — this is the differential baseline the fused
// kernels are pinned against.
func (s *Scratch) referenceStep(start, t int, stimulus *tensor.Tensor, golden *Record, rec *Record) {
	n := s.net
	var in *tensor.Tensor
	if start == 0 {
		in = stimulus.Step(t)
	} else {
		in = golden.ReplayInput(start, t)
	}
	for li := start; li < len(n.Layers); li++ {
		l := n.Layers[li]
		st := s.states[li]
		var lastOut *tensor.Tensor
		if st.recurrent {
			lastOut = st.lastSpikeT
		}
		cur := l.Proj.Forward(in, lastOut)
		cd := cur.Data()
		out := rec.Layers[li].RawRange(t*len(cd), len(cd))
		stepLayer(l, st, cd, out)
		in = tensor.FromSlice(out, st.outShape...)
	}
}

// lifUpdate applies one LIF update to neuron i given its synaptic current
// c, returning the emitted spike (0 or 1). It is the single source of
// truth for the membrane dynamics: the reference stepLayer and every
// fused kernel call it, so the two simulation paths cannot drift.
//
//snn:hotpath
func lifUpdate(l *Layer, st *fastLayerState, i int, c float64) float64 {
	switch l.mode(i) {
	case NeuronDead:
		// Halts propagation: never fires. Membrane bookkeeping
		// is irrelevant downstream; keep it reset.
		st.u[i] = 0
		return 0
	case NeuronSaturated:
		// Fires non-stop regardless of input or refractoriness.
		st.u[i] = 0
		return 1
	}
	gate := 1.0
	if st.refrac[i] > 0 {
		gate = 0
	}
	u := gate * (l.leak(i)*st.u[i]*(1-st.lastSpike[i]) + c)
	fired := u > l.threshold(i)
	st.u[i] = u
	if st.refrac[i] > 0 {
		st.refrac[i]--
	} else if fired {
		st.refrac[i] = l.refractory(i)
	}
	if fired {
		return 1
	}
	return 0
}

// stepLayer advances one layer by one time step: cd is the synaptic
// current, out receives the output spikes, st carries the LIF state.
// Both engines run their LIF sweep through this function — the reference
// path from referenceStep, the fused kernels from layerKernel.step — so
// the membrane dynamics cannot drift between them.
//
// A layer with no fault overrides takes a specialized loop with the
// layer-wide LIF parameters hoisted out: it evaluates the exact
// expression lifUpdate evaluates with the exact values the per-neuron
// accessors would return, just without re-checking the override slices
// for every neuron. TestStepLayerHealthyMatchesOverrides pins the two
// loops against each other bit for bit.
//
//snn:hotpath
func stepLayer(l *Layer, st *fastLayerState, cd, out []float64) {
	if l.HasFaultOverrides() {
		for i := range cd {
			s := lifUpdate(l, st, i, cd[i])
			out[i] = s
			st.lastSpike[i] = s
		}
		return
	}
	leak, th := l.LIF.Leak, l.LIF.Threshold
	refr := l.LIF.Refractory
	u := st.u[:len(cd)]
	last := st.lastSpike[:len(cd)]
	refrac := st.refrac[:len(cd)]
	out = out[:len(cd)]
	for i, c := range cd {
		gate := 1.0
		if refrac[i] > 0 {
			gate = 0
		}
		v := gate * (leak*u[i]*(1-last[i]) + c)
		fired := v > th
		u[i] = v
		if refrac[i] > 0 {
			refrac[i]--
		} else if fired {
			refrac[i] = refr
		}
		s := 0.0
		if fired {
			s = 1
		}
		out[i] = s
		last[i] = s
	}
}

// Run simulates the network on the stimulus (shape [T, InShape...]) from a
// fresh state and records every neuron's output spike train. This is the
// fast, non-differentiable path used for inference and fault simulation.
func (n *Network) Run(input *tensor.Tensor) *Record {
	rec, _, _ := n.NewScratch().runFrom(0, nil, input, false)
	return rec
}

// RunFrom simulates only layers ≥ start, replaying the golden record's
// layer start-1 spike trains as layer start's input (the stimulus when
// start == 0). It is exact whenever the network differs from the golden
// network only at layers ≥ start — the incremental fault-simulation fast
// path. Layers < start of the returned record alias the golden record and
// must be treated as read-only.
func (n *Network) RunFrom(start int, golden *Record, stimulus *tensor.Tensor) *Record {
	rec, _, _ := n.NewScratch().runFrom(start, golden, stimulus, false)
	return rec
}

// RunFrom is the scratch-reusing variant of Network.RunFrom; it also
// reports the number of simulated layer-steps. The returned record's
// layers ≥ start are owned by the scratch and overwritten by the next
// call; layers < start alias golden.
func (s *Scratch) RunFrom(start int, golden *Record, stimulus *tensor.Tensor) (*Record, int) {
	rec, layerSteps, _ := s.runFrom(start, golden, stimulus, false)
	return rec, layerSteps
}

// LastSimSteps reports how many stimulus timesteps the scratch's most
// recent RunFrom/DivergesFrom call simulated: the full duration for a
// completed run, or the early-exit point — first divergence step + 1 —
// when DivergesFrom stopped short. The flight recorder derives the
// per-fault first-divergence timestep from it without the simulation
// loop carrying any event plumbing.
func (s *Scratch) LastSimSteps() int { return s.lastSimSteps }

// DivergesFrom simulates layers ≥ start with golden-trace replay and
// early exit: it returns true at the first time step whose output row
// differs from the golden record (the Eq. 3 any-L1-difference detection
// criterion), without simulating the remaining steps. The second result
// is the number of layer-steps actually simulated.
func (s *Scratch) DivergesFrom(start int, golden *Record, stimulus *tensor.Tensor) (bool, int) {
	_, layerSteps, diverged := s.runFrom(start, golden, stimulus, true)
	return diverged, layerSteps
}

// Predict runs the network on the stimulus and returns the rate-decoded
// class: the output neuron with the highest spike count (ties break to the
// lowest index).
func (n *Network) Predict(input *tensor.Tensor) int {
	rec := n.Run(input)
	return tensor.ArgMax(rec.Counts(len(n.Layers) - 1))
}
