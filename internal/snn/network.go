package snn

import (
	"fmt"

	ag "github.com/repro/snntest/internal/autograd"
	"github.com/repro/snntest/internal/tensor"
)

// Network is a feedforward stack of spiking layers (recurrent projections
// loop within a layer). The input is a spatio-temporal binary tensor of
// shape [T, InShape...]; each step's frame propagates through every layer
// before the next step begins, matching the synchronous time-stepped
// semantics of SLAYER-style simulators.
type Network struct {
	Name   string
	Layers []*Layer
	// InShape is the spatial shape of one input frame, e.g. [2,34,34] for
	// a DVS sensor or [700] for audio channels.
	InShape []int
	// StepMS is the real time represented by one simulation step, in
	// milliseconds; it converts step counts into the paper's test-duration
	// seconds.
	StepMS float64
}

// NewNetwork validates layer shape compatibility and returns the network.
func NewNetwork(name string, inShape []int, stepMS float64, layers ...*Layer) (*Network, error) {
	if len(layers) == 0 {
		return nil, fmt.Errorf("snn: network %q needs at least one layer", name)
	}
	prev := inShape
	for _, l := range layers {
		in := l.Proj.InShape()
		if flatLen(in) != flatLen(prev) {
			return nil, fmt.Errorf("snn: network %q: layer %q expects input %v but receives %v", name, l.Name, in, prev)
		}
		prev = l.Proj.OutShape()
	}
	return &Network{Name: name, Layers: layers, InShape: append([]int(nil), inShape...), StepMS: stepMS}, nil
}

func flatLen(shape []int) int {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return n
}

// InputLen returns the flattened size of one input frame.
func (n *Network) InputLen() int { return flatLen(n.InShape) }

// OutputLen returns the number of output-layer neurons (classes).
func (n *Network) OutputLen() int { return n.Layers[len(n.Layers)-1].NumNeurons() }

// NumNeurons returns the total neuron count across layers.
func (n *Network) NumNeurons() int {
	total := 0
	for _, l := range n.Layers {
		total += l.NumNeurons()
	}
	return total
}

// NumSynapses returns the total faultable synapse count across layers.
func (n *Network) NumSynapses() int {
	total := 0
	for _, l := range n.Layers {
		total += l.NumSynapses()
	}
	return total
}

// LayerOffsets returns, per layer, the global index of its first neuron;
// fault enumeration and the activated-neuron bookkeeping use these global
// neuron ids.
func (n *Network) LayerOffsets() []int {
	offs := make([]int, len(n.Layers))
	off := 0
	for i, l := range n.Layers {
		offs[i] = off
		off += l.NumNeurons()
	}
	return offs
}

// Clone deep-copies the network (weights and fault overrides included).
func (n *Network) Clone() *Network {
	layers := make([]*Layer, len(n.Layers))
	for i, l := range n.Layers {
		layers[i] = l.Clone()
	}
	return &Network{
		Name:    n.Name,
		Layers:  layers,
		InShape: append([]int(nil), n.InShape...),
		StepMS:  n.StepMS,
	}
}

// HasFaultOverrides reports whether any layer carries per-neuron fault
// overrides.
func (n *Network) HasFaultOverrides() bool {
	for _, l := range n.Layers {
		if l.HasFaultOverrides() {
			return true
		}
	}
	return false
}

// ParamLeaves switches every weighted projection into training mode and
// returns all weight leaf nodes, ready for an optimizer.
func (n *Network) ParamLeaves() []*ag.Node {
	var leaves []*ag.Node
	for _, l := range n.Layers {
		leaves = append(leaves, l.Proj.ParamLeaves()...)
	}
	return leaves
}

// ZeroInput returns an all-zero stimulus of t steps, the "sleep" input the
// paper inserts between optimized chunks (Eq. 7).
func (n *Network) ZeroInput(t int) *tensor.Tensor {
	return tensor.New(append([]int{t}, n.InShape...)...)
}

// CheckInput verifies that input has shape [T, InShape...] with T ≥ 1
// and returns T. Binary entries are not verified (callers own that
// invariant).
func (n *Network) CheckInput(input *tensor.Tensor) (int, error) {
	shape := input.Shape()
	if len(shape) != len(n.InShape)+1 || shape[0] < 1 {
		return 0, fmt.Errorf("snn: input shape %v does not match [T, %v]", shape, n.InShape)
	}
	for i, d := range n.InShape {
		if shape[i+1] != d {
			return 0, fmt.Errorf("snn: input shape %v does not match [T, %v]", shape, n.InShape)
		}
	}
	return shape[0], nil
}

// fastLayerState is the mutable per-layer simulation state of the fast path.
type fastLayerState struct {
	u         []float64 // membrane potentials
	lastSpike []float64 // previous step's output spikes
	refrac    []int     // remaining refractory steps
	outShape  []int
}

// Run simulates the network on the stimulus (shape [T, InShape...]) from a
// fresh state and records every neuron's output spike train. This is the
// fast, non-differentiable path used for inference and fault simulation.
func (n *Network) Run(input *tensor.Tensor) *Record {
	steps, err := n.CheckInput(input)
	if err != nil {
		// Hot-path boundary: a bad stimulus shape here is a programmer
		// error — campaign entry points validate before their loops.
		failf("%v", err)
	}
	states := make([]*fastLayerState, len(n.Layers))
	for i, l := range n.Layers {
		nn := l.NumNeurons()
		states[i] = &fastLayerState{
			u:         make([]float64, nn),
			lastSpike: make([]float64, nn),
			refrac:    make([]int, nn),
			outShape:  l.Proj.OutShape(),
		}
	}
	rec := NewRecord(n, steps)
	for t := 0; t < steps; t++ {
		in := input.Step(t)
		for li, l := range n.Layers {
			st := states[li]
			var lastOut *tensor.Tensor
			if _, ok := l.Proj.(*RecurrentProj); ok {
				lastOut = tensor.FromSlice(st.lastSpike, l.NumNeurons())
			}
			cur := l.Proj.Forward(in, lastOut)
			cd := cur.Data()
			out := rec.Layers[li].RawRange(t*len(cd), len(cd))
			for i := range cd {
				var s float64
				switch l.mode(i) {
				case NeuronDead:
					// Halts propagation: never fires. Membrane bookkeeping
					// is irrelevant downstream; keep it reset.
					st.u[i] = 0
				case NeuronSaturated:
					// Fires non-stop regardless of input or refractoriness.
					s = 1
					st.u[i] = 0
				default:
					gate := 1.0
					if st.refrac[i] > 0 {
						gate = 0
					}
					u := gate * (l.leak(i)*st.u[i]*(1-st.lastSpike[i]) + cd[i])
					if u > l.threshold(i) {
						s = 1
					}
					st.u[i] = u
					if st.refrac[i] > 0 {
						st.refrac[i]--
					} else if s == 1 {
						st.refrac[i] = l.refractory(i)
					}
				}
				out[i] = s
				st.lastSpike[i] = s
			}
			in = tensor.FromSlice(out, st.outShape...)
		}
	}
	return rec
}

// Predict runs the network on the stimulus and returns the rate-decoded
// class: the output neuron with the highest spike count (ties break to the
// lowest index).
func (n *Network) Predict(input *tensor.Tensor) int {
	rec := n.Run(input)
	return tensor.ArgMax(rec.Counts(len(n.Layers) - 1))
}
