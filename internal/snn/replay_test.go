package snn

import (
	"math/rand"
	"testing"

	"github.com/repro/snntest/internal/tensor"
)

// fixtureNets builds one tiny network per builder plus variants that
// exercise the state machinery: a recurrent net with dead/saturated
// neuron overrides.
func fixtureNets(t *testing.T) map[string]*Network {
	t.Helper()
	rng := rand.New(rand.NewSource(41))
	nets := map[string]*Network{
		"nmnist":      must(BuildNMNIST(rng, ScaleTiny)),
		"ibm-gesture": must(BuildIBMGesture(rng, ScaleTiny)),
		"shd":         must(BuildSHD(rng, ScaleTiny)),
	}
	faulty := must(BuildSHD(rng, ScaleTiny))
	faulty.Layers[0].SetNeuronMode(0, NeuronDead)
	faulty.Layers[0].SetNeuronMode(1, NeuronSaturated)
	faulty.Layers[1].SetNeuronMode(2, NeuronSaturated)
	nets["shd-faulty"] = faulty
	return nets
}

func fixtureStim(net *Network, steps int, seed int64) *tensor.Tensor {
	return tensor.RandBernoulli(rand.New(rand.NewSource(seed)), 0.4,
		append([]int{steps}, net.InShape...)...)
}

func recordsEqual(a, b *Record) bool {
	if a.Steps != b.Steps || len(a.Layers) != len(b.Layers) {
		return false
	}
	for i := range a.Layers {
		if !tensor.Equal(a.Layers[i], b.Layers[i], 0) {
			return false
		}
	}
	return true
}

// TestEquivRunDeterminism pins that repeated Run calls — including on
// recurrent networks and networks with dead/saturated neuron overrides —
// produce bit-identical records. verify.sh re-runs the Equiv tests with
// -count=2, so cross-process determinism is covered too.
func TestEquivRunDeterminism(t *testing.T) {
	for name, net := range fixtureNets(t) {
		stim := fixtureStim(net, 12, 51)
		first := net.Run(stim)
		for rep := 0; rep < 3; rep++ {
			if !recordsEqual(first, net.Run(stim)) {
				t.Errorf("%s: repeated Run produced a different record (rep %d)", name, rep)
			}
		}
	}
}

// TestEquivRunFromZeroMatchesRun pins RunFrom(0, …) to Run on every
// builder fixture: with no replay the incremental entry point must be the
// plain simulator.
func TestEquivRunFromZeroMatchesRun(t *testing.T) {
	for name, net := range fixtureNets(t) {
		stim := fixtureStim(net, 10, 52)
		golden := net.Run(stim)
		if !recordsEqual(golden, net.RunFrom(0, golden, stim)) {
			t.Errorf("%s: RunFrom(0) differs from Run", name)
		}
		// Scratch-reusing variant, repeated to catch stale state.
		sc := net.NewScratch()
		for rep := 0; rep < 2; rep++ {
			rec, steps := sc.RunFrom(0, golden, stim)
			if !recordsEqual(golden, rec) {
				t.Errorf("%s: Scratch.RunFrom(0) differs from Run (rep %d)", name, rep)
			}
			if want := len(net.Layers) * golden.Steps; steps != want {
				t.Errorf("%s: layer-steps = %d, want %d", name, steps, want)
			}
		}
	}
}

// TestEquivRunFromReplayMatchesFullRun is the core replay-correctness
// property: perturb one weight (or neuron) at layer s, then the faulty
// network's RunFrom(s, golden, stim) must match its full Run exactly on
// every layer ≥ s, for every start layer of every fixture.
func TestEquivRunFromReplayMatchesFullRun(t *testing.T) {
	for name, net := range fixtureNets(t) {
		stim := fixtureStim(net, 10, 53)
		golden := net.Run(stim)
		for s := 0; s < len(net.Layers); s++ {
			faulty := net.Clone()
			// Perturb layer s so downstream activity actually changes:
			// saturate a neuron (works for weightless pool layers too).
			faulty.Layers[s].SetNeuronMode(0, NeuronSaturated)
			full := faulty.Run(stim)
			inc := faulty.RunFrom(s, golden, stim)
			for li := s; li < len(net.Layers); li++ {
				if !tensor.Equal(full.Layers[li], inc.Layers[li], 0) {
					t.Errorf("%s: start %d: layer %d differs between full Run and RunFrom", name, s, li)
				}
			}
			for li := 0; li < s; li++ {
				if inc.Layers[li] != golden.Layers[li] {
					t.Errorf("%s: start %d: layer %d must alias the golden record", name, s, li)
				}
			}
		}
	}
}

// TestEquivDivergesFromMatchesL1 pins the early-exit detector to the
// full-record L1 criterion on perturbed and unperturbed networks.
func TestEquivDivergesFromMatchesL1(t *testing.T) {
	for name, net := range fixtureNets(t) {
		stim := fixtureStim(net, 10, 54)
		golden := net.Run(stim)
		sc := net.NewScratch()

		// Unperturbed network: must never diverge from its own golden run.
		if div, _ := sc.DivergesFrom(0, golden, stim); div {
			t.Errorf("%s: healthy network diverged from its own golden record", name)
		}
		for s := 0; s < len(net.Layers); s++ {
			faulty := net.Clone()
			faulty.Layers[s].SetNeuronMode(0, NeuronDead)
			want := tensor.L1Diff(faulty.Run(stim).Output(), golden.Output()) > 0
			fsc := faulty.NewScratch()
			div, steps := fsc.DivergesFrom(s, golden, stim)
			if div != want {
				t.Errorf("%s: start %d: DivergesFrom = %v, L1 criterion = %v", name, s, div, want)
			}
			if maxSteps := (len(net.Layers) - s) * golden.Steps; steps > maxSteps {
				t.Errorf("%s: start %d: simulated %d layer-steps, cap %d", name, s, steps, maxSteps)
			}
		}
	}
}

// TestScratchReuseAcrossStimuli catches stale-state bugs: one scratch
// driven with different stimuli, step counts and start layers must always
// match a fresh full run.
func TestScratchReuseAcrossStimuli(t *testing.T) {
	net := must(BuildSHD(rand.New(rand.NewSource(42)), ScaleTiny))
	sc := net.NewScratch()
	for i, steps := range []int{8, 14, 8, 5} {
		stim := fixtureStim(net, steps, int64(60+i))
		golden := net.Run(stim)
		rec, _ := sc.RunFrom(0, nil, stim)
		if !recordsEqual(golden, rec) {
			t.Errorf("run %d (steps %d): scratch run differs from fresh run", i, steps)
		}
		rec, _ = sc.RunFrom(1, golden, stim)
		if !tensor.Equal(golden.Output(), rec.Output(), 0) {
			t.Errorf("run %d: unperturbed replay from layer 1 differs from golden", i)
		}
	}
}

func TestRecordReplayHelpers(t *testing.T) {
	net := must(BuildSHD(rand.New(rand.NewSource(44)), ScaleTiny))
	stim := fixtureStim(net, 6, 72)
	rec := net.Run(stim)
	if !rec.Matches(net, 6) {
		t.Error("record must match the network it was recorded from")
	}
	if rec.Matches(net, 7) {
		t.Error("record must not match a different step count")
	}
	other := must(BuildNMNIST(rand.New(rand.NewSource(45)), ScaleTiny))
	if rec.Matches(other, 6) {
		t.Error("record must not match a different architecture")
	}
	// ReplayInput(ℓ, t) is layer ℓ−1's output row at step t, by view.
	in := rec.ReplayInput(1, 3)
	if in.Len() != net.Layers[0].NumNeurons() {
		t.Errorf("replay input length = %d, want %d", in.Len(), net.Layers[0].NumNeurons())
	}
	for i := 0; i < in.Len(); i++ {
		if in.Data()[i] != rec.Layers[0].At(3, i) {
			t.Fatalf("replay input element %d differs from recorded spike", i)
		}
	}
}

func TestRunFromValidation(t *testing.T) {
	net := must(BuildSHD(rand.New(rand.NewSource(43)), ScaleTiny))
	stim := fixtureStim(net, 6, 70)
	golden := net.Run(stim)
	for _, tc := range []struct {
		name string
		call func()
	}{
		{"start out of range", func() { net.RunFrom(len(net.Layers), golden, stim) }},
		{"negative start", func() { net.RunFrom(-1, golden, stim) }},
		{"nil golden", func() { net.RunFrom(1, nil, stim) }},
		{"step mismatch", func() { net.RunFrom(1, golden, fixtureStim(net, 7, 71)) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", tc.name)
				}
			}()
			tc.call()
		}()
	}
}
