package snn

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/repro/snntest/internal/tensor"
)

// Differential equivalence suite for the fused LIF kernels: every fixture
// (conv, pool, dense, recurrent), every fault mode, every replay start and
// 1..N step counts must produce bit-identical spike records and membrane
// traces on the fused and reference paths. Run under -race in CI, these
// tests are the contract that lets the fused path be the default.

// equivFixtures builds one tiny network per benchmark architecture, which
// together cover all four projection kernels.
func equivFixtures(t *testing.T, seed int64) map[string]*Network {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	nets := make(map[string]*Network)
	for _, b := range []string{"nmnist", "ibm-gesture", "shd"} {
		net, err := Build(b, rng, ScaleTiny)
		if err != nil {
			t.Fatalf("build %s: %v", b, err)
		}
		nets[b] = net
	}
	return nets
}

// runBoth simulates the network on both paths with independent scratches
// and returns them for record/state comparison.
func runBoth(start int, golden *Record, net *Network, stim *tensor.Tensor) (fused, ref *Scratch, frec, rrec *Record) {
	fused, ref = net.NewScratch(), net.NewScratch()
	ref.SetReference(true)
	frec, _ = fused.RunFrom(start, golden, stim)
	rrec, _ = ref.RunFrom(start, golden, stim)
	return fused, ref, frec, rrec
}

// requireBitIdentical asserts spike records and membrane traces agree
// elementwise under == (which treats -0.0 and +0.0 as equal — the only
// divergence the im2col contract permits, and only in membrane values).
func requireBitIdentical(t *testing.T, net *Network, fused, ref *Scratch, frec, rrec *Record, ctx string) {
	t.Helper()
	for li := range net.Layers {
		fd, rd := frec.Layers[li].Data(), rrec.Layers[li].Data()
		for i := range rd {
			if fd[i] != rd[i] {
				t.Fatalf("%s: layer %d spike[%d]: fused %g, reference %g", ctx, li, i, fd[i], rd[i])
			}
		}
		for i := range ref.states[li].u {
			if fused.states[li].u[i] != ref.states[li].u[i] {
				t.Fatalf("%s: layer %d membrane[%d]: fused %g, reference %g",
					ctx, li, i, fused.states[li].u[i], ref.states[li].u[i])
			}
			if fused.states[li].refrac[i] != ref.states[li].refrac[i] {
				t.Fatalf("%s: layer %d refrac[%d]: fused %d, reference %d",
					ctx, li, i, fused.states[li].refrac[i], ref.states[li].refrac[i])
			}
		}
	}
}

func stimFor(net *Network, seed int64, steps int, density float64) *tensor.Tensor {
	return tensor.RandBernoulli(rand.New(rand.NewSource(seed)), density,
		append([]int{steps}, net.InShape...)...)
}

// TestEquivFusedMatchesReference pins the tentpole contract on every
// fixture over a range of step counts and stimulus densities.
func TestEquivFusedMatchesReference(t *testing.T) {
	for name, net := range equivFixtures(t, 21) {
		for _, steps := range []int{1, 2, 7, 30} {
			for _, density := range []float64{0, 0.2, 0.8} {
				stim := stimFor(net, 100+int64(steps), steps, density)
				fused, ref, frec, rrec := runBoth(0, nil, net, stim)
				ctx := name
				requireBitIdentical(t, net, fused, ref, frec, rrec, ctx)
			}
		}
	}
}

// TestEquivFusedFaultModes drives every fault override through both
// paths: dead and saturated modes, threshold/leak/refractory parameter
// faults, and a stuck-at-zero synapse.
func TestEquivFusedFaultModes(t *testing.T) {
	for name, base := range equivFixtures(t, 22) {
		stim := stimFor(base, 31, 12, 0.4)
		for li := range base.Layers {
			nn := base.Layers[li].NumNeurons()
			mut := []struct {
				tag   string
				apply func(l *Layer)
			}{
				{"dead", func(l *Layer) { l.SetNeuronMode(nn/2, NeuronDead) }},
				{"saturated", func(l *Layer) { l.SetNeuronMode(0, NeuronSaturated) }},
				{"threshold", func(l *Layer) { l.SetNeuronThreshold(nn-1, 0.01) }},
				{"leak", func(l *Layer) { l.SetNeuronLeak(nn/3, 0.2) }},
				{"refractory", func(l *Layer) { l.SetNeuronRefractory(0, 5) }},
			}
			if base.Layers[li].NumSynapses() > 0 {
				mut = append(mut, struct {
					tag   string
					apply func(l *Layer)
				}{"synapse-stuck", func(l *Layer) { *l.SynapseWeightAt(0) = 0 }})
			}
			for _, m := range mut {
				net := base.Clone()
				m.apply(net.Layers[li])
				fused, ref, frec, rrec := runBoth(0, nil, net, stim)
				requireBitIdentical(t, net, fused, ref, frec, rrec, name+"/"+m.tag)
			}
		}
	}
}

// TestEquivFusedGoldenReplay pins the RunFrom fast path: for every replay
// start layer, the fused and reference paths agree given the same golden
// record, and both agree with a from-scratch run of the faulty network.
func TestEquivFusedGoldenReplay(t *testing.T) {
	for name, base := range equivFixtures(t, 23) {
		stim := stimFor(base, 41, 15, 0.3)
		golden := base.Run(stim)
		for start := range base.Layers {
			net := base.Clone()
			net.Layers[start].SetNeuronMode(0, NeuronSaturated)
			fused, ref, frec, rrec := runBoth(start, golden, net, stim)
			requireBitIdentical(t, net, fused, ref, frec, rrec, name)
			full := net.Run(stim)
			for li := range net.Layers {
				if !tensor.Equal(frec.Layers[li], full.Layers[li], 0) {
					t.Fatalf("%s: fused RunFrom(%d) diverges from full run at layer %d", name, start, li)
				}
			}
		}
	}
}

// TestEquivFusedDivergesFrom pins the early-exit detector: both paths
// must report the same divergence flag and simulate the same number of
// layer-steps before exiting.
func TestEquivFusedDivergesFrom(t *testing.T) {
	for name, base := range equivFixtures(t, 24) {
		stim := stimFor(base, 51, 15, 0.3)
		golden := base.Run(stim)
		for _, mode := range []NeuronMode{NeuronSaturated, NeuronDead} {
			for start := range base.Layers {
				net := base.Clone()
				net.Layers[start].SetNeuronMode(0, mode)
				fused, ref := net.NewScratch(), net.NewScratch()
				ref.SetReference(true)
				fd, fsteps := fused.DivergesFrom(start, golden, stim)
				rd, rsteps := ref.DivergesFrom(start, golden, stim)
				if fd != rd || fsteps != rsteps {
					t.Fatalf("%s start %d mode %v: fused (%v, %d) vs reference (%v, %d)",
						name, start, mode, fd, fsteps, rd, rsteps)
				}
			}
		}
	}
}

// TestScratchBindGeometry pins the stale-scratch hazard fix: a scratch
// re-binds to geometry-identical clones (and then simulates the bound
// network, not the original), while any geometry mismatch is an error.
func TestScratchBindGeometry(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	net := must(BuildNMNIST(rng, ScaleTiny))
	stim := stimFor(net, 61, 10, 0.3)

	sc := net.NewScratch()
	faulty := net.Clone()
	faulty.Layers[0].SetNeuronMode(1, NeuronSaturated)
	if err := sc.Bind(faulty); err != nil {
		t.Fatalf("bind to geometry-identical clone: %v", err)
	}
	got, _ := sc.RunFrom(0, nil, stim)
	want := faulty.Run(stim)
	for li := range faulty.Layers {
		if !tensor.Equal(got.Layers[li], want.Layers[li], 0) {
			t.Fatalf("bound scratch must simulate the bound clone (layer %d differs)", li)
		}
	}

	other := must(BuildSHD(rng, ScaleTiny))
	if err := sc.Bind(other); err == nil {
		t.Fatal("bind to a different architecture must fail")
	} else if !strings.Contains(err.Error(), "scratch bind") {
		t.Fatalf("unexpected bind error: %v", err)
	}

	// Same layer kinds and counts, different shapes.
	small := must(BuildNMNIST(rand.New(rand.NewSource(26)), ScaleSmall))
	if err := sc.Bind(small); err == nil {
		t.Fatal("bind across scales must fail")
	}
}

// TestScratchRejectsAliasedGolden pins the self-aliasing guard: feeding a
// scratch its own previous record as the golden baseline would silently
// compare buffers against themselves, so it must panic instead.
func TestScratchRejectsAliasedGolden(t *testing.T) {
	net := quickNet(27)
	stim := stimFor(net, 71, 8, 0.4)
	sc := net.NewScratch()
	g, _ := sc.RunFrom(0, nil, stim)
	defer func() {
		r := recover()
		s, ok := r.(string)
		if !ok || !strings.Contains(s, "aliases") {
			t.Fatalf("expected aliasing panic, got %v", r)
		}
	}()
	sc.DivergesFrom(0, g, stim)
}

// FuzzFusedLIF differentiates the fused kernels against the reference
// path over arbitrary seeds, densities, step counts and fault injections
// on a dense+recurrent network (the two kernels with cross-neuron state
// coupling, where an ordering bug would surface).
func FuzzFusedLIF(f *testing.F) {
	f.Add(int64(1), byte(40), byte(9), byte(0), byte(0))
	f.Add(int64(2), byte(10), byte(1), byte(1), byte(3))
	f.Add(int64(3), byte(75), byte(30), byte(2), byte(7))
	f.Add(int64(4), byte(0), byte(16), byte(3), byte(11))
	f.Fuzz(func(t *testing.T, seed int64, density, stepsB, faultKind, faultPos byte) {
		rng := rand.New(rand.NewSource(seed))
		hidden, classes := 7, 4
		w := tensor.RandNormal(rng, 0.2, 0.5, hidden, 5)
		r := tensor.RandNormal(rng, 0, 0.4, hidden, hidden)
		l1 := must(NewLayer("rec", must(NewRecurrentProj(w, r)), DefaultLIF()))
		l2 := must(NewLayer("out", must(NewDenseProj(tensor.RandNormal(rng, 0.2, 0.5, classes, hidden))), DefaultLIF()))
		net := must(NewNetwork("fuzz", []int{5}, 1.0, l1, l2))

		li := int(faultPos) % 2
		ni := int(faultPos) % net.Layers[li].NumNeurons()
		switch faultKind % 5 {
		case 1:
			net.Layers[li].SetNeuronMode(ni, NeuronDead)
		case 2:
			net.Layers[li].SetNeuronMode(ni, NeuronSaturated)
		case 3:
			net.Layers[li].SetNeuronThreshold(ni, float64(faultPos)/20)
		case 4:
			net.Layers[li].SetNeuronLeak(ni, float64(faultPos%10)/10)
		}

		steps := int(stepsB)%31 + 1
		stim := stimFor(net, seed+9, steps, float64(density%101)/100)
		fused, ref, frec, rrec := runBoth(0, nil, net, stim)
		requireBitIdentical(t, net, fused, ref, frec, rrec, "fuzz")
	})
}

// TestStepLayerHealthyMatchesOverrides pins stepLayer's two loops against
// each other: a healthy layer (no override slices, specialized hoisted
// loop) must produce bit-identical spike trains to the same layer carrying
// explicitly-allocated override slices whose every entry is the documented
// "unset" sentinel (all-normal modes, zero thresholds/leaks, -1 refracs),
// which forces the per-neuron lifUpdate loop with identical effective
// parameters. Both engines run both variants.
func TestStepLayerHealthyMatchesOverrides(t *testing.T) {
	for name, net := range equivFixtures(t, 41) {
		overridden := net.Clone()
		for _, l := range overridden.Layers {
			nn := l.NumNeurons()
			l.Modes = make([]NeuronMode, nn)
			l.Thresholds = make([]float64, nn)
			l.Leaks = make([]float64, nn)
			l.Refracs = make([]int, nn)
			for i := range l.Refracs {
				l.Refracs[i] = -1
			}
			if !l.HasFaultOverrides() {
				t.Fatalf("%s %s: override slices not detected", name, l.Name)
			}
		}
		stim := stimFor(net, 43, 20, 0.4)
		for _, reference := range []bool{false, true} {
			healthy, forced := net.NewScratch(), overridden.NewScratch()
			healthy.SetReference(reference)
			forced.SetReference(reference)
			hrec, _ := healthy.RunFrom(0, nil, stim)
			frec, _ := forced.RunFrom(0, nil, stim)
			for li := range net.Layers {
				hd, fd := hrec.Layers[li].Data(), frec.Layers[li].Data()
				for i := range hd {
					if hd[i] != fd[i] {
						t.Fatalf("%s layer %d reference=%v: healthy fast loop diverges from lifUpdate loop at %d: %v vs %v",
							name, li, reference, i, hd[i], fd[i])
					}
				}
			}
		}
	}
}
