package snn

import (
	"testing"

	"github.com/repro/snntest/internal/tensor"
)

// singleNeuron builds a 1-input → 1-neuron network with weight w and the
// given LIF parameters, the minimal rig for checking neuron dynamics.
func singleNeuron(w float64, lif LIFParams) *Network {
	proj := must(NewDenseProj(tensor.FromSlice([]float64{w}, 1, 1)))
	return must(NewNetwork("single", []int{1}, 1.0, must(NewLayer("n", proj, lif))))
}

// constantInput returns a stimulus of t steps with every input element 1.
func constantInput(n *Network, t int) *tensor.Tensor {
	return tensor.Full(1, append([]int{t}, n.InShape...)...)
}

func TestLIFIntegratesToThreshold(t *testing.T) {
	// w=0.4, leak=1, θ=1: membrane reaches 1.2 on step 3 → first spike at
	// step index 2 (potential must strictly exceed θ).
	net := singleNeuron(0.4, LIFParams{Threshold: 1, Leak: 1, Refractory: 0})
	rec := net.Run(constantInput(net, 4))
	train := rec.NeuronTrain(0, 0)
	want := []float64{0, 0, 1, 0} // reset after the spike, 0.4 on step 4
	for i, w := range want {
		if train.Data()[i] != w {
			t.Fatalf("spike train = %v, want %v", train.Data(), want)
		}
	}
}

func TestLIFStrictThreshold(t *testing.T) {
	// Potential exactly equal to θ must not fire.
	net := singleNeuron(1.0, LIFParams{Threshold: 1, Leak: 1, Refractory: 0})
	rec := net.Run(constantInput(net, 1))
	if rec.NeuronTrain(0, 0).Data()[0] != 0 {
		t.Error("neuron fired at u == θ; threshold must be strict")
	}
}

func TestLIFLeakDecay(t *testing.T) {
	// One strong pulse below threshold, then silence: membrane decays
	// geometrically and never fires.
	net := singleNeuron(0.9, LIFParams{Threshold: 1, Leak: 0.5, Refractory: 0})
	in := net.ZeroInput(5)
	in.Set(1, 0, 0) // single spike at t=0
	rec := net.Run(in)
	if tensor.Sum(rec.Layers[0]) != 0 {
		t.Error("sub-threshold input must not cause spikes")
	}
}

func TestLIFLeakAccumulationMatchesClosedForm(t *testing.T) {
	// With constant drive w and leak λ, u_t = w·(1−λ^{t+1})/(1−λ) until
	// the first spike; λ=0.5, w=0.6 converges to 1.2 > 1, so the neuron
	// fires when the partial sum exceeds 1: u_0=0.6, u_1=0.9, u_2=1.05 → spike at t=2.
	net := singleNeuron(0.6, LIFParams{Threshold: 1, Leak: 0.5, Refractory: 0})
	rec := net.Run(constantInput(net, 3))
	want := []float64{0, 0, 1}
	for i, w := range want {
		if rec.NeuronTrain(0, 0).Data()[i] != w {
			t.Fatalf("train = %v, want %v", rec.NeuronTrain(0, 0).Data(), want)
		}
	}
}

func TestLIFResetAfterSpike(t *testing.T) {
	// w=1.1 fires every step when refractory=0 (reset to zero, then the
	// next step's input alone crosses θ again).
	net := singleNeuron(1.1, LIFParams{Threshold: 1, Leak: 1, Refractory: 0})
	rec := net.Run(constantInput(net, 4))
	if got := tensor.Sum(rec.Layers[0]); got != 4 {
		t.Errorf("spike count = %g, want 4 (fire every step)", got)
	}
}

func TestLIFRefractoryPeriodSilences(t *testing.T) {
	// Refractory = 2: after each spike the neuron is silent for exactly 2
	// steps and integrates nothing during them.
	net := singleNeuron(1.1, LIFParams{Threshold: 1, Leak: 1, Refractory: 2})
	rec := net.Run(constantInput(net, 9))
	train := rec.NeuronTrain(0, 0).Data()
	want := []float64{1, 0, 0, 1, 0, 0, 1, 0, 0}
	for i, w := range want {
		if train[i] != w {
			t.Fatalf("train = %v, want %v", train, want)
		}
	}
}

func TestLIFRefractoryDropsInput(t *testing.T) {
	// Input arriving during refractoriness is lost, not buffered: after
	// the refractory window the membrane restarts from zero. This is the
	// information-loss mechanism stage 2 of the paper works around.
	net := singleNeuron(0.6, LIFParams{Threshold: 1, Leak: 1, Refractory: 1})
	// Drive: spikes at t=0..4. u: 0.6, spike at t=1 (1.2), refractory at
	// t=2 (input dropped), then 0.6 at t=3, 1.2 → spike at t=4.
	rec := net.Run(constantInput(net, 5))
	train := rec.NeuronTrain(0, 0).Data()
	want := []float64{0, 1, 0, 0, 1}
	for i, w := range want {
		if train[i] != w {
			t.Fatalf("train = %v, want %v", train, want)
		}
	}
}

func TestDeadNeuronNeverFires(t *testing.T) {
	net := singleNeuron(5, LIFParams{Threshold: 1, Leak: 1, Refractory: 0})
	net.Layers[0].SetNeuronMode(0, NeuronDead)
	rec := net.Run(constantInput(net, 10))
	if tensor.Sum(rec.Layers[0]) != 0 {
		t.Error("dead neuron fired")
	}
}

func TestSaturatedNeuronFiresNonStop(t *testing.T) {
	// Saturated neuron fires every step even with zero input.
	net := singleNeuron(0, LIFParams{Threshold: 1, Leak: 1, Refractory: 3})
	net.Layers[0].SetNeuronMode(0, NeuronSaturated)
	rec := net.Run(net.ZeroInput(10))
	if got := tensor.Sum(rec.Layers[0]); got != 10 {
		t.Errorf("saturated neuron spike count = %g, want 10", got)
	}
}

func TestPerNeuronThresholdOverride(t *testing.T) {
	// Two neurons share an input; raising one's threshold delays it.
	proj := must(NewDenseProj(tensor.FromSlice([]float64{0.6, 0.6}, 2, 1)))
	net := must(NewNetwork("two", []int{1}, 1.0,
		must(NewLayer("n", proj, LIFParams{Threshold: 1, Leak: 1, Refractory: 0}))))
	net.Layers[0].SetNeuronThreshold(1, 2.3)
	rec := net.Run(constantInput(net, 4))
	c := rec.Counts(0)
	if !(c.At(0) > c.At(1)) {
		t.Errorf("higher threshold should reduce spike count: counts %v", c)
	}
	if c.At(1) == 0 {
		t.Error("overridden neuron should still eventually fire (0.6·4 = 2.4 > 2.3)")
	}
}

func TestPerNeuronLeakOverride(t *testing.T) {
	proj := must(NewDenseProj(tensor.FromSlice([]float64{0.4, 0.4}, 2, 1)))
	net := must(NewNetwork("two", []int{1}, 1.0,
		must(NewLayer("n", proj, LIFParams{Threshold: 1, Leak: 1, Refractory: 0}))))
	net.Layers[0].SetNeuronLeak(1, 0.1) // heavy leak: 0.4/(1-0.1·...) stays below θ
	rec := net.Run(constantInput(net, 10))
	c := rec.Counts(0)
	if c.At(0) == 0 {
		t.Fatal("healthy neuron should fire")
	}
	if c.At(1) != 0 {
		t.Error("leaky neuron reaches at most 0.4/(1−0.1)·≈0.44 < θ and must stay silent")
	}
}

func TestPerNeuronRefractoryOverride(t *testing.T) {
	proj := must(NewDenseProj(tensor.FromSlice([]float64{1.1, 1.1}, 2, 1)))
	net := must(NewNetwork("two", []int{1}, 1.0,
		must(NewLayer("n", proj, LIFParams{Threshold: 1, Leak: 1, Refractory: 0}))))
	net.Layers[0].SetNeuronRefractory(1, 4)
	rec := net.Run(constantInput(net, 10))
	c := rec.Counts(0)
	if c.At(0) != 10 {
		t.Errorf("neuron 0 should fire every step, got %g", c.At(0))
	}
	if c.At(1) != 2 {
		t.Errorf("neuron 1 fires at t=0 and t=5 only, got %g", c.At(1))
	}
}

func TestLIFParamsValidate(t *testing.T) {
	bad := []LIFParams{
		{Threshold: 0, Leak: 0.9, Refractory: 1},
		{Threshold: -1, Leak: 0.9, Refractory: 1},
		{Threshold: 1, Leak: 0, Refractory: 1},
		{Threshold: 1, Leak: 1.5, Refractory: 1},
		{Threshold: 1, Leak: 0.9, Refractory: -1},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("case %d: %+v should fail validation", i, p)
		}
	}
	if DefaultLIF().Validate() != nil {
		t.Error("DefaultLIF must validate")
	}
}

func TestNeuronModeString(t *testing.T) {
	if NeuronNormal.String() != "normal" || NeuronDead.String() != "dead" || NeuronSaturated.String() != "saturated" {
		t.Error("NeuronMode.String mismatch")
	}
	if NeuronMode(99).String() == "" {
		t.Error("unknown mode should still render")
	}
}
