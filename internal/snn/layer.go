package snn

import (
	"fmt"

	"github.com/repro/snntest/internal/tensor"
)

// Layer is one spiking layer: a synaptic projection feeding a population
// of LIF neurons. The LIF parameters are layer-wide defaults; the optional
// per-neuron override slices exist to express injected faults (parameter
// "timing variation" faults and dead/saturated behavioural faults) and are
// nil on a healthy network.
type Layer struct {
	Name string
	Proj Projection
	LIF  LIFParams

	// Per-neuron fault overrides; nil means "no neuron in this layer is
	// overridden". When non-nil they have length NumNeurons().
	Modes      []NeuronMode
	Thresholds []float64 // 0 entries fall back to LIF.Threshold
	Leaks      []float64 // 0 entries fall back to LIF.Leak
	Refracs    []int     // -1 entries fall back to LIF.Refractory
}

// NewLayer wires a projection to a LIF population.
func NewLayer(name string, proj Projection, lif LIFParams) (*Layer, error) {
	if err := lif.Validate(); err != nil {
		return nil, fmt.Errorf("snn: layer %q: %w", name, err)
	}
	return &Layer{Name: name, Proj: proj, LIF: lif}, nil
}

// NumNeurons returns the neuron count of this layer.
func (l *Layer) NumNeurons() int {
	n := 1
	for _, d := range l.Proj.OutShape() {
		n *= d
	}
	return n
}

// NumSynapses returns the faultable synapse count of this layer.
func (l *Layer) NumSynapses() int { return l.Proj.NumSynapses() }

// HasFaultOverrides reports whether any per-neuron override slice is set.
func (l *Layer) HasFaultOverrides() bool {
	return l.Modes != nil || l.Thresholds != nil || l.Leaks != nil || l.Refracs != nil
}

// mode returns the behavioural mode of neuron i.
//
//snn:hotpath
func (l *Layer) mode(i int) NeuronMode {
	if l.Modes == nil {
		return NeuronNormal
	}
	return l.Modes[i]
}

// threshold returns the effective firing threshold of neuron i.
//
//snn:hotpath
func (l *Layer) threshold(i int) float64 {
	if l.Thresholds != nil && l.Thresholds[i] != 0 { //lint:ignore floateq 0 is the documented unset sentinel for per-neuron thresholds
		return l.Thresholds[i]
	}
	return l.LIF.Threshold
}

// leak returns the effective membrane retention of neuron i.
//
//snn:hotpath
func (l *Layer) leak(i int) float64 {
	if l.Leaks != nil && l.Leaks[i] != 0 { //lint:ignore floateq 0 is the documented unset sentinel for per-neuron leaks
		return l.Leaks[i]
	}
	return l.LIF.Leak
}

// refractory returns the effective refractory period of neuron i.
//
//snn:hotpath
func (l *Layer) refractory(i int) int {
	if l.Refracs != nil && l.Refracs[i] >= 0 {
		return l.Refracs[i]
	}
	return l.LIF.Refractory
}

// SetNeuronMode marks neuron i with a behavioural fault mode, allocating
// the override slice on first use.
func (l *Layer) SetNeuronMode(i int, m NeuronMode) {
	if l.Modes == nil {
		l.Modes = make([]NeuronMode, l.NumNeurons())
	}
	l.Modes[i] = m
}

// SetNeuronThreshold overrides neuron i's firing threshold.
func (l *Layer) SetNeuronThreshold(i int, th float64) {
	if l.Thresholds == nil {
		l.Thresholds = make([]float64, l.NumNeurons())
	}
	l.Thresholds[i] = th
}

// SetNeuronLeak overrides neuron i's membrane retention.
func (l *Layer) SetNeuronLeak(i int, leak float64) {
	if l.Leaks == nil {
		l.Leaks = make([]float64, l.NumNeurons())
	}
	l.Leaks[i] = leak
}

// SetNeuronRefractory overrides neuron i's refractory period.
func (l *Layer) SetNeuronRefractory(i int, r int) {
	if l.Refracs == nil {
		l.Refracs = make([]int, l.NumNeurons())
		for j := range l.Refracs {
			l.Refracs[j] = -1
		}
	}
	l.Refracs[i] = r
}

// Clone returns a deep copy of the layer: weights and override slices are
// copied so fault injection into the clone never touches the original.
func (l *Layer) Clone() *Layer {
	c := &Layer{Name: l.Name, Proj: l.Proj.Clone(), LIF: l.LIF}
	if l.Modes != nil {
		c.Modes = append([]NeuronMode(nil), l.Modes...)
	}
	if l.Thresholds != nil {
		c.Thresholds = append([]float64(nil), l.Thresholds...)
	}
	if l.Leaks != nil {
		c.Leaks = append([]float64(nil), l.Leaks...)
	}
	if l.Refracs != nil {
		c.Refracs = append([]int(nil), l.Refracs...)
	}
	return c
}

// SynapseWeightAt returns a pointer to the storage of synapse s of this
// layer under the contiguous indexing convention (feedforward weights
// first, then recurrent weights for recurrent projections). It panics for
// layers without synapses — fault.Validate excludes that before any
// injection loop starts.
func (l *Layer) SynapseWeightAt(s int) *float64 {
	switch q := l.Proj.(type) {
	case *RecurrentProj:
		if s < q.W.Len() {
			return q.W.ElemPtr(s)
		}
		return q.R.ElemPtr(s - q.W.Len())
	default:
		w := l.Proj.Weights()
		if w == nil {
			failf("snn: layer %q has no faultable synapses", l.Name)
		}
		return w.ElemPtr(s)
	}
}

// MaxAbsWeight returns the largest absolute synapse weight of the layer
// (0 for weightless layers); fault models use it to define saturation
// outliers relative to the layer's weight distribution.
func (l *Layer) MaxAbsWeight() float64 {
	maxAbs := 0.0
	scan := func(t *tensor.Tensor) {
		if t == nil {
			return
		}
		for _, v := range t.Data() {
			if v < 0 {
				v = -v
			}
			if v > maxAbs {
				maxAbs = v
			}
		}
	}
	scan(l.Proj.Weights())
	if r, ok := l.Proj.(*RecurrentProj); ok {
		scan(r.R)
	}
	return maxAbs
}
