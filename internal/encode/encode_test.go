package encode

import (
	"math"
	"math/rand"
	"testing"

	"github.com/repro/snntest/internal/tensor"
)

func TestRateEncodingStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	frame := tensor.FromSlice([]float64{0, 0.5, 1}, 3)
	stim := Rate(rng, frame, 2000, 0.8)
	counts := Counts(stim)
	if counts.At(0) != 0 {
		t.Errorf("zero intensity produced %g spikes", counts.At(0))
	}
	if r := counts.At(1) / 2000; math.Abs(r-0.4) > 0.05 {
		t.Errorf("rate for 0.5 intensity = %g, want ≈0.4", r)
	}
	if r := counts.At(2) / 2000; math.Abs(r-0.8) > 0.05 {
		t.Errorf("rate for full intensity = %g, want ≈0.8", r)
	}
}

func TestRateEncodingBinaryAndShape(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	frame := tensor.Full(0.7, 2, 3)
	stim := Rate(rng, frame, 5, 1)
	want := []int{5, 2, 3}
	for i, d := range want {
		if stim.Dim(i) != d {
			t.Fatalf("shape = %v, want %v", stim.Shape(), want)
		}
	}
	for _, v := range stim.Data() {
		if v != 0 && v != 1 {
			t.Fatal("rate encoding must be binary")
		}
	}
}

func TestRateBadMaxRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for maxRate > 1")
		}
	}()
	Rate(rand.New(rand.NewSource(3)), tensor.New(1), 1, 1.5)
}

func TestTTFSOrdering(t *testing.T) {
	frame := tensor.FromSlice([]float64{1.0, 0.5, 0.1, 0.0}, 4)
	stim := TTFS(frame, 10, 0.05)
	times := FirstSpikeTimes(stim)
	if times[0] != 0 {
		t.Errorf("strongest input should spike first (t=0), got %d", times[0])
	}
	if !(times[0] < times[1] && times[1] < times[2]) {
		t.Errorf("TTFS latency must decrease with intensity: %v", times)
	}
	if times[3] != -1 {
		t.Errorf("sub-threshold input must never spike, got t=%d", times[3])
	}
	// Each supra-threshold element spikes exactly once.
	counts := Counts(stim)
	for i := 0; i < 3; i++ {
		if counts.At(i) != 1 {
			t.Errorf("element %d spiked %g times, want 1", i, counts.At(i))
		}
	}
}

func TestTTFSClampsOverrange(t *testing.T) {
	stim := TTFS(tensor.FromSlice([]float64{2.0}, 1), 5, 0)
	if FirstSpikeTimes(stim)[0] != 0 {
		t.Error("over-range intensity should clamp to earliest spike")
	}
}

func TestCountsRoundTrip(t *testing.T) {
	stim := tensor.New(3, 2)
	stim.Set(1, 0, 0)
	stim.Set(1, 2, 0)
	stim.Set(1, 1, 1)
	c := Counts(stim)
	if c.At(0) != 2 || c.At(1) != 1 {
		t.Errorf("Counts = %v", c)
	}
}

func TestEventsFromMotion(t *testing.T) {
	prev := tensor.FromSlice([]float64{0, 1, 0.5, 0.5}, 2, 2)
	cur := tensor.FromSlice([]float64{1, 0, 0.5, 0.6}, 2, 2)
	ev := EventsFromMotion(prev, cur, 0.05)
	if ev.At(0, 0, 0) != 1 {
		t.Error("brightening pixel must fire ON")
	}
	if ev.At(1, 0, 1) != 1 {
		t.Error("darkening pixel must fire OFF")
	}
	if ev.At(0, 1, 0) != 0 || ev.At(1, 1, 0) != 0 {
		t.Error("unchanged pixel must stay silent")
	}
	if ev.At(0, 1, 1) != 1 {
		t.Error("small increase above eps must fire ON")
	}
}

func TestEventsFromMotionShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	EventsFromMotion(tensor.New(2, 2), tensor.New(2, 3), 0.1)
}
