// Package encode converts between analog frames and spike-train tensors.
// It implements the two information-coding schemes the paper declares
// independence from: rate coding (spike probability proportional to
// intensity) and time-to-first-spike (TTFS) coding (stronger intensity
// spikes earlier). Stimuli are binary tensors of shape [T, frame...].
package encode

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/repro/snntest/internal/tensor"
)

// Rate encodes an intensity frame (values in [0,1]) into T steps of
// Bernoulli spikes: P(spike at any step) = intensity · maxRate. The result
// has shape [T, frame...].
func Rate(rng *rand.Rand, frame *tensor.Tensor, steps int, maxRate float64) *tensor.Tensor {
	if maxRate < 0 || maxRate > 1 {
		failf("maxRate must be in [0,1], got %g", maxRate)
	}
	out := tensor.New(append([]int{steps}, frame.Shape()...)...)
	n := frame.Len()
	fd, od := frame.Data(), out.Data()
	for t := 0; t < steps; t++ {
		for i := 0; i < n; i++ {
			p := fd[i] * maxRate
			if p > 0 && rng.Float64() < p {
				od[t*n+i] = 1
			}
		}
	}
	return out
}

// TTFS encodes an intensity frame (values in [0,1]) into T steps where
// each element spikes exactly once, at a latency inversely related to its
// intensity: t = round((1 − v)·(T−1)). Elements at or below threshold
// never spike.
func TTFS(frame *tensor.Tensor, steps int, threshold float64) *tensor.Tensor {
	out := tensor.New(append([]int{steps}, frame.Shape()...)...)
	n := frame.Len()
	fd, od := frame.Data(), out.Data()
	for i := 0; i < n; i++ {
		v := fd[i]
		if v <= threshold {
			continue
		}
		if v > 1 {
			v = 1
		}
		t := int(math.Round((1 - v) * float64(steps-1)))
		od[t*n+i] = 1
	}
	return out
}

// Counts decodes a stimulus [T, frame...] into per-element spike counts
// with the frame's shape.
func Counts(stim *tensor.Tensor) *tensor.Tensor {
	shape := stim.Shape()
	if len(shape) < 2 {
		failf("stimulus must be [T, frame...], got %v", shape)
	}
	steps := shape[0]
	frame := stim.Len() / steps
	out := tensor.New(shape[1:]...)
	sd, od := stim.Data(), out.Data()
	for t := 0; t < steps; t++ {
		for i := 0; i < frame; i++ {
			od[i] += sd[t*frame+i]
		}
	}
	return out
}

// FirstSpikeTimes decodes a stimulus into each element's first spike step,
// or -1 if it never spikes.
func FirstSpikeTimes(stim *tensor.Tensor) []int {
	shape := stim.Shape()
	steps := shape[0]
	frame := stim.Len() / steps
	out := make([]int, frame)
	for i := range out {
		out[i] = -1
	}
	sd := stim.Data()
	for t := 0; t < steps; t++ {
		for i := 0; i < frame; i++ {
			if sd[t*frame+i] == 1 && out[i] == -1 { //lint:ignore floateq stimulus spikes are exactly 0 or 1
				out[i] = t
			}
		}
	}
	return out
}

// EventsFromMotion converts a pair of consecutive intensity frames into
// DVS-style polarity events: channel 0 (ON) fires where brightness
// increased by more than eps, channel 1 (OFF) where it decreased. The
// frames must share shape [H,W]; the result is [2,H,W].
func EventsFromMotion(prev, cur *tensor.Tensor, eps float64) *tensor.Tensor {
	if !tensor.SameShape(prev, cur) || prev.Rank() != 2 {
		failf("EventsFromMotion requires matching [H,W] frames, got %v and %v", prev.Shape(), cur.Shape())
	}
	h, w := prev.Dim(0), prev.Dim(1)
	out := tensor.New(2, h, w)
	pd, cd, od := prev.Data(), cur.Data(), out.Data()
	for i := range pd {
		d := cd[i] - pd[i]
		if d > eps {
			od[i] = 1 // ON channel
		} else if d < -eps {
			od[h*w+i] = 1 // OFF channel
		}
	}
	return out
}

// failf is the package's invariant-check chokepoint: encoders are
// hot-path kernels whose shape/parameter misuse is a programmer error.
func failf(format string, args ...any) {
	panic("encode: " + fmt.Sprintf(format, args...))
}
