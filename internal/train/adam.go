// Package train provides gradient-based optimization for spiking networks:
// the Adam optimizer (used both for SNN training and for the paper's
// test-input optimization), annealing schedules for the learning rate and
// Gumbel-Softmax temperature, and a surrogate-gradient BPTT training loop
// with rate-coded classification loss.
package train

import (
	"math"

	ag "github.com/repro/snntest/internal/autograd"
	"github.com/repro/snntest/internal/tensor"
)

// Adam is the Adam optimizer over a fixed set of autograd leaves. Leaves'
// Value tensors are updated in place; their Grad tensors supply the raw
// gradients and are cleared by ZeroGrad.
type Adam struct {
	LR    float64
	Beta1 float64
	Beta2 float64
	Eps   float64

	leaves []*ag.Node
	m, v   []*tensor.Tensor
	step   int
}

// NewAdam creates an Adam optimizer with the standard moment coefficients
// (β₁ = 0.9, β₂ = 0.999, ε = 1e-8).
func NewAdam(leaves []*ag.Node, lr float64) *Adam {
	a := &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, leaves: leaves}
	for _, l := range leaves {
		a.m = append(a.m, tensor.New(l.Value.Shape()...))
		a.v = append(a.v, tensor.New(l.Value.Shape()...))
	}
	return a
}

// Step applies one Adam update using each leaf's accumulated gradient.
func (a *Adam) Step() {
	a.step++
	c1 := 1 - math.Pow(a.Beta1, float64(a.step))
	c2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for i, l := range a.leaves {
		p, g := l.Value.Data(), l.Grad.Data()
		m, v := a.m[i].Data(), a.v[i].Data()
		for j := range p {
			m[j] = a.Beta1*m[j] + (1-a.Beta1)*g[j]
			v[j] = a.Beta2*v[j] + (1-a.Beta2)*g[j]*g[j]
			mHat := m[j] / c1
			vHat := v[j] / c2
			p[j] -= a.LR * mHat / (math.Sqrt(vHat) + a.Eps)
		}
	}
}

// ZeroGrad clears every leaf's accumulated gradient.
func (a *Adam) ZeroGrad() {
	for _, l := range a.leaves {
		l.ZeroGrad()
	}
}

// StepCount returns the number of updates applied so far.
func (a *Adam) StepCount() int { return a.step }

// GradNorm returns the L2 norm of all accumulated gradients, a cheap
// divergence check.
func (a *Adam) GradNorm() float64 {
	s := 0.0
	for _, l := range a.leaves {
		for _, g := range l.Grad.Data() {
			s += g * g
		}
	}
	return math.Sqrt(s)
}
