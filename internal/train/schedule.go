package train

import "math"

// Schedule maps an optimization step index to a scalar hyperparameter
// value; the paper anneals both the Adam learning rate (initial 0.1) and
// the Gumbel-Softmax temperature (maximum 0.9) over the course of each
// stage.
type Schedule interface {
	At(step int) float64
}

// ConstSchedule always returns the same value.
type ConstSchedule float64

// At implements Schedule.
func (c ConstSchedule) At(int) float64 { return float64(c) }

// ExpSchedule decays geometrically from Initial by Decay per step, never
// dropping below Floor.
type ExpSchedule struct {
	Initial float64
	Decay   float64 // per-step multiplier in (0, 1]
	Floor   float64
}

// At implements Schedule.
func (s ExpSchedule) At(step int) float64 {
	v := s.Initial * math.Pow(s.Decay, float64(step))
	if v < s.Floor {
		return s.Floor
	}
	return v
}

// CosineSchedule anneals from Initial to Floor over Period steps following
// a half cosine, then stays at Floor.
type CosineSchedule struct {
	Initial float64
	Floor   float64
	Period  int
}

// At implements Schedule.
func (s CosineSchedule) At(step int) float64 {
	if s.Period <= 0 || step >= s.Period {
		return s.Floor
	}
	frac := float64(step) / float64(s.Period)
	return s.Floor + (s.Initial-s.Floor)*0.5*(1+math.Cos(math.Pi*frac))
}

// DefaultLRSchedule is the paper's learning-rate annealing: initial 0.1
// decaying smoothly over the stage.
func DefaultLRSchedule(steps int) Schedule {
	return CosineSchedule{Initial: 0.1, Floor: 0.005, Period: steps}
}

// DefaultTauSchedule is the paper's Gumbel-Softmax temperature annealing
// with maximum value 0.9: the relaxation sharpens toward binary as the
// stage progresses.
func DefaultTauSchedule(steps int) Schedule {
	return CosineSchedule{Initial: 0.9, Floor: 0.1, Period: steps}
}
