package train

import (
	"math"
	"math/rand"
	"testing"

	ag "github.com/repro/snntest/internal/autograd"
	"github.com/repro/snntest/internal/dataset"
	"github.com/repro/snntest/internal/snn"
	"github.com/repro/snntest/internal/tensor"
)

func TestAdamMinimizesQuadratic(t *testing.T) {
	// minimize ‖x − target‖² from a distant start.
	target := tensor.FromSlice([]float64{3, -2, 0.5}, 3)
	x := ag.Leaf(tensor.FromSlice([]float64{-5, 5, 9}, 3))
	opt := NewAdam([]*ag.Node{x}, 0.2)
	for i := 0; i < 300; i++ {
		opt.ZeroGrad()
		loss := ag.Sum(ag.Square(ag.Sub(x, ag.Const(target))))
		ag.Backward(loss)
		opt.Step()
	}
	if !tensor.Equal(x.Value, target, 1e-2) {
		t.Errorf("Adam failed to converge: %v, want %v", x.Value, target)
	}
	if opt.StepCount() != 300 {
		t.Errorf("StepCount = %d", opt.StepCount())
	}
}

func TestAdamBiasCorrectionFirstStep(t *testing.T) {
	// With bias correction, the very first step moves by ≈ LR in the
	// gradient direction regardless of gradient magnitude.
	for _, g := range []float64{1e-4, 1.0, 1e4} {
		x := ag.Leaf(tensor.Scalar(0))
		opt := NewAdam([]*ag.Node{x}, 0.1)
		x.Grad.Data()[0] = g
		opt.Step()
		if got := math.Abs(x.Value.Data()[0]); math.Abs(got-0.1) > 1e-3 {
			t.Errorf("first step with grad %g moved %g, want ≈0.1", g, got)
		}
	}
}

func TestAdamZeroGradAndGradNorm(t *testing.T) {
	x := ag.Leaf(tensor.FromSlice([]float64{1, 1}, 2))
	opt := NewAdam([]*ag.Node{x}, 0.1)
	x.Grad.Data()[0] = 3
	x.Grad.Data()[1] = 4
	if n := opt.GradNorm(); math.Abs(n-5) > 1e-12 {
		t.Errorf("GradNorm = %g, want 5", n)
	}
	opt.ZeroGrad()
	if opt.GradNorm() != 0 {
		t.Error("ZeroGrad did not clear gradients")
	}
}

func TestSchedules(t *testing.T) {
	c := ConstSchedule(0.5)
	if c.At(0) != 0.5 || c.At(1000) != 0.5 {
		t.Error("ConstSchedule must be constant")
	}

	e := ExpSchedule{Initial: 1, Decay: 0.5, Floor: 0.1}
	if e.At(0) != 1 || e.At(1) != 0.5 || e.At(2) != 0.25 {
		t.Errorf("ExpSchedule values wrong: %g %g %g", e.At(0), e.At(1), e.At(2))
	}
	if e.At(100) != 0.1 {
		t.Errorf("ExpSchedule floor violated: %g", e.At(100))
	}

	cs := CosineSchedule{Initial: 1, Floor: 0, Period: 10}
	if cs.At(0) != 1 {
		t.Errorf("cosine start = %g, want 1", cs.At(0))
	}
	if math.Abs(cs.At(5)-0.5) > 1e-12 {
		t.Errorf("cosine midpoint = %g, want 0.5", cs.At(5))
	}
	if cs.At(10) != 0 || cs.At(20) != 0 {
		t.Error("cosine must clamp to floor after period")
	}
	// Monotone decrease within the period.
	for s := 1; s < 10; s++ {
		if cs.At(s) >= cs.At(s-1) {
			t.Fatalf("cosine not decreasing at step %d", s)
		}
	}

	if DefaultLRSchedule(100).At(0) != 0.1 {
		t.Error("paper LR schedule must start at 0.1")
	}
	if DefaultTauSchedule(100).At(0) != 0.9 {
		t.Error("paper τ schedule must start at its maximum 0.9")
	}
}

func TestTrainRejectsBadArgs(t *testing.T) {
	net := must(snn.BuildSHD(rand.New(rand.NewSource(1)), snn.ScaleTiny))
	if _, err := Train(net, nil, nil, DefaultConfig()); err == nil {
		t.Error("empty dataset must error")
	}
	if _, err := Train(net, []*tensor.Tensor{tensor.New(1, 40)}, []int{0, 1}, DefaultConfig()); err == nil {
		t.Error("mismatched lengths must error")
	}
}

func TestTrainingImprovesAccuracy(t *testing.T) {
	// End-to-end learning check: a tiny recurrent SNN must learn the
	// synthetic SHD classes far beyond chance (5% for 20 classes).
	rng := rand.New(rand.NewSource(2))
	net := must(snn.BuildSHD(rng, snn.ScaleTiny))
	ds := dataset.GenSHD(dataset.Config{TrainPerClass: 4, TestPerClass: 2, Steps: 25, Seed: 3}, net.InShape[0])
	trainIn, trainLab := ds.Inputs("train")
	testIn, testLab := ds.Inputs("test")

	before := Evaluate(net, testIn, testLab)
	hist, err := Train(net, trainIn, trainLab, Config{Epochs: 6, LR: 0.03, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	after := Evaluate(net, testIn, testLab)

	if len(hist.Loss) != 6 || len(hist.Accuracy) != 6 {
		t.Fatalf("history lengths %d/%d", len(hist.Loss), len(hist.Accuracy))
	}
	if hist.Loss[5] >= hist.Loss[0] {
		t.Errorf("training loss did not decrease: %v", hist.Loss)
	}
	if after < 0.4 {
		t.Errorf("test accuracy after training = %.2f (before %.2f); expected ≥ 0.40 on separable classes", after, before)
	}
}

func TestEvaluateEmpty(t *testing.T) {
	net := must(snn.BuildSHD(rand.New(rand.NewSource(5)), snn.ScaleTiny))
	if Evaluate(net, nil, nil) != 0 {
		t.Error("empty evaluation should be 0")
	}
}
