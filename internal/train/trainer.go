package train

import (
	"fmt"
	"io"
	"math/rand"

	ag "github.com/repro/snntest/internal/autograd"
	"github.com/repro/snntest/internal/snn"
	"github.com/repro/snntest/internal/tensor"
)

// Config controls a training run.
type Config struct {
	Epochs int
	LR     float64
	// Seed shuffles the sample order deterministically.
	Seed int64
	// Log, when non-nil, receives one progress line per epoch.
	Log io.Writer
}

// DefaultConfig returns settings that converge on the synthetic benchmark
// datasets in a few epochs.
func DefaultConfig() Config {
	return Config{Epochs: 4, LR: 0.02, Seed: 1}
}

// History records per-epoch training statistics.
type History struct {
	Loss     []float64 // mean cross-entropy per epoch
	Accuracy []float64 // training top-1 accuracy per epoch
}

// inputStepNodes splits a [T, frame...] stimulus into per-step constant
// nodes for RunGraph.
func inputStepNodes(net *snn.Network, input *tensor.Tensor) []*ag.Node {
	steps := input.Dim(0)
	nodes := make([]*ag.Node, steps)
	for t := 0; t < steps; t++ {
		nodes[t] = ag.Const(input.Step(t).Reshape(net.InShape...))
	}
	return nodes
}

// Train fits the network's weights on the labelled stimuli using
// surrogate-gradient BPTT and a rate-coded softmax cross-entropy loss on
// output spike counts, the training scheme SLAYER-style frameworks use.
// Inputs and labels must be parallel slices.
func Train(net *snn.Network, inputs []*tensor.Tensor, labels []int, cfg Config) (History, error) {
	if len(inputs) == 0 || len(inputs) != len(labels) {
		return History{}, fmt.Errorf("train: need parallel non-empty inputs/labels, got %d/%d", len(inputs), len(labels))
	}
	leaves := net.ParamLeaves()
	if len(leaves) == 0 {
		return History{}, fmt.Errorf("train: network %q has no trainable parameters", net.Name)
	}
	opt := NewAdam(leaves, cfg.LR)
	rng := rand.New(rand.NewSource(cfg.Seed))
	var hist History

	order := make([]int, len(inputs))
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		totalLoss, correct := 0.0, 0
		for _, idx := range order {
			res := net.RunGraph(inputStepNodes(net, inputs[idx]))
			counts := res.LayerCounts(res.OutputLayer())
			loss := ag.SoftmaxCrossEntropy(counts, labels[idx])
			totalLoss += loss.Value.Data()[0]
			if tensor.ArgMax(counts.Value) == labels[idx] {
				correct++
			}
			opt.ZeroGrad()
			if err := ag.Backward(loss); err != nil {
				return hist, err
			}
			opt.Step()
		}
		hist.Loss = append(hist.Loss, totalLoss/float64(len(inputs)))
		hist.Accuracy = append(hist.Accuracy, float64(correct)/float64(len(inputs)))
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "epoch %d/%d: loss %.4f, accuracy %.2f%%\n",
				epoch+1, cfg.Epochs, hist.Loss[epoch], 100*hist.Accuracy[epoch])
		}
	}
	return hist, nil
}

// Evaluate returns top-1 accuracy of the network on the labelled stimuli
// using the fast inference path.
func Evaluate(net *snn.Network, inputs []*tensor.Tensor, labels []int) float64 {
	if len(inputs) == 0 {
		return 0
	}
	correct := 0
	for i, in := range inputs {
		if net.Predict(in) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(inputs))
}
