// Package experiments orchestrates the end-to-end reproduction pipelines
// behind every table and figure of the paper: build a benchmark SNN,
// train it on the synthetic stand-in dataset, enumerate and classify the
// fault universe, generate the optimized test stimulus, and compute the
// reported metrics. The cmd/benchreport binary, the runnable examples and
// the root benchmark harness are all thin layers over this package.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"github.com/repro/snntest/internal/core"
	"github.com/repro/snntest/internal/dataset"
	"github.com/repro/snntest/internal/fault"
	"github.com/repro/snntest/internal/snn"
	"github.com/repro/snntest/internal/tensor"
	"github.com/repro/snntest/internal/train"
)

// Benchmarks lists the paper's three case studies in presentation order.
var Benchmarks = []string{"nmnist", "ibm-gesture", "shd"}

// Options sizes a pipeline run. The defaults in ScaledOptions keep the
// three benchmarks runnable on a single CPU core; the paper's full scale
// is reachable by raising Scale and the budgets.
type Options struct {
	Scale         snn.ModelScale
	Seed          int64
	TrainPerClass int
	TestPerClass  int
	SampleSteps   int // duration of one dataset sample; 0 = benchmark default
	TrainEpochs   int
	// TrainLR is the Adam learning rate; 0 auto-scales with the sample
	// duration (longer BPTT windows need smaller steps).
	TrainLR float64
	// FaultStride subsamples the fault universe (1 = exhaustive); large
	// models use a stride so campaigns finish in reasonable time, exactly
	// like statistical fault sampling in industrial flows.
	FaultStride int
	// Workers for fault campaigns (≤ 0: GOMAXPROCS).
	Workers int
	// GenConfig drives the test-generation algorithm.
	GenConfig core.Config
	// Log receives progress lines when non-nil.
	Log io.Writer
}

// ScaledOptions returns options tuned per scale: tiny for unit tests and
// CI, small for the reported tables, full for paper-scale geometry.
func ScaledOptions(scale snn.ModelScale, seed int64) Options {
	o := Options{
		Scale:         scale,
		Seed:          seed,
		TrainPerClass: 4,
		TestPerClass:  2,
		TrainEpochs:   5,
		FaultStride:   1,
		GenConfig:     core.TestConfig(),
	}
	switch scale {
	case snn.ScaleSmall:
		o.TrainPerClass = 6
		o.TestPerClass = 3
		o.GenConfig = core.TestConfig()
		o.GenConfig.Steps1 = 120
		o.GenConfig.MaxIterations = 8
		o.FaultStride = 7
	case snn.ScaleFull:
		o.TrainPerClass = 16
		o.TestPerClass = 8
		o.TrainEpochs = 8
		o.GenConfig = core.DefaultConfig()
		o.FaultStride = 101
	}
	o.GenConfig.Seed = seed
	return o
}

// Pipeline holds one benchmark's trained model, dataset and (lazily
// computed) experiment artifacts.
type Pipeline struct {
	Benchmark string
	Opts      Options
	Net       *snn.Network
	Data      *dataset.Dataset
	History   train.History
	TrainTime time.Duration
	// Accuracy is the post-training test-split top-1 accuracy.
	Accuracy float64

	faults   []fault.Fault
	critical []bool
	// ClassifyTime is the wall-clock time of the criticality campaign.
	ClassifyTime time.Duration
	gen          *core.Result
}

// NewPipeline builds, trains and evaluates one benchmark model.
func NewPipeline(benchmark string, opts Options) (*Pipeline, error) {
	rng := rand.New(rand.NewSource(opts.Seed))
	net, err := snn.Build(benchmark, rng, opts.Scale)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	steps := opts.SampleSteps
	if steps == 0 {
		steps, err = snn.SampleSteps(benchmark, opts.Scale)
		if err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
	}
	ds, err := dataset.ForBenchmark(net, dataset.Config{
		TrainPerClass: opts.TrainPerClass,
		TestPerClass:  opts.TestPerClass,
		Steps:         steps,
		Seed:          opts.Seed + 1,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	trainIn, trainLab := ds.Inputs("train")
	lr := opts.TrainLR
	if lr == 0 { //lint:ignore floateq 0 is the documented unset sentinel for TrainLR
		// Longer BPTT windows accumulate larger gradients; scale the step
		// size down with the sample duration.
		lr = 0.6 / float64(steps)
		if lr > 0.03 {
			lr = 0.03
		} else if lr < 0.005 {
			lr = 0.005
		}
	}
	start := time.Now()
	hist, err := train.Train(net, trainIn, trainLab, train.Config{
		Epochs: opts.TrainEpochs, LR: lr, Seed: opts.Seed + 2, Log: opts.Log,
	})
	if err != nil {
		return nil, err
	}
	testIn, testLab := ds.Inputs("test")
	return &Pipeline{
		Benchmark: benchmark,
		Opts:      opts,
		Net:       net,
		Data:      ds,
		History:   hist,
		TrainTime: time.Since(start),
		Accuracy:  train.Evaluate(net, testIn, testLab),
	}, nil
}

// Faults returns the (possibly strided) fault universe, computing it on
// first use.
func (p *Pipeline) Faults() []fault.Fault {
	if p.faults == nil {
		p.faults = fault.SampleUniverse(p.Net, fault.DefaultOptions(), p.Opts.FaultStride)
	}
	return p.faults
}

// Critical returns the per-fault criticality labels from the full
// classification campaign over the test split (the Table II labelling).
func (p *Pipeline) Critical() ([]bool, error) {
	if p.critical == nil {
		testIn, _ := p.Data.Inputs("test")
		start := time.Now()
		critical, err := fault.Classify(p.Net, p.Faults(), testIn, p.Opts.Workers, p.progress("classify"))
		if err != nil {
			return nil, err
		}
		p.critical = critical
		p.ClassifyTime = time.Since(start)
	}
	return p.critical, nil
}

// Generate runs the paper's test-generation algorithm, caching the result.
// When the multi-restart engine is enabled and its worker bound is unset,
// the pipeline's campaign worker count applies to generation too (results
// are worker-count-invariant, so this only affects wall-clock time).
func (p *Pipeline) Generate() (*core.Result, error) {
	if p.gen == nil {
		cfg := p.Opts.GenConfig
		cfg.Log = p.Opts.Log
		if cfg.Parallel.Workers == 0 {
			cfg.Parallel.Workers = p.Opts.Workers
		}
		gen, err := core.Generate(p.Net, cfg)
		if err != nil {
			return nil, err
		}
		p.gen = gen
	}
	return p.gen, nil
}

// SampleStepsUsed returns the dataset sample duration in steps.
func (p *Pipeline) SampleStepsUsed() int { return p.Data.SampleSteps }

// RandomSample returns a deterministic dataset sample for figure
// rendering.
func (p *Pipeline) RandomSample(seed int64) *tensor.Tensor {
	idx := int(seed) % len(p.Data.Test)
	return p.Data.Test[idx].Input
}

// progress wraps the log writer into a campaign progress callback.
func (p *Pipeline) progress(phase string) func(int) {
	if p.Opts.Log == nil {
		return nil
	}
	total := len(p.Faults())
	return func(done int) {
		if done == total {
			fmt.Fprintf(p.Opts.Log, "%s/%s: %d/%d faults\n", p.Benchmark, phase, done, total)
		}
	}
}

// BuildAll constructs pipelines for all three benchmarks.
func BuildAll(opts Options) ([]*Pipeline, error) {
	var out []*Pipeline
	for _, b := range Benchmarks {
		p, err := NewPipeline(b, opts)
		if err != nil {
			return nil, err
		}
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, "%s: trained, accuracy %.1f%%\n", b, 100*p.Accuracy)
		}
		out = append(out, p)
	}
	return out, nil
}
