package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"github.com/repro/snntest/internal/baseline"
	"github.com/repro/snntest/internal/fault"
	"github.com/repro/snntest/internal/metrics"
	"github.com/repro/snntest/internal/report"
)

// ---------------------------------------------------------------------------
// Table I — benchmark SNN characteristics

// Table1Row is one column of the paper's Table I.
type Table1Row struct {
	Benchmark   string
	Accuracy    float64
	Classes     int
	Neurons     int
	Synapses    int
	InShape     []int
	SampleSteps int
	TrainSize   int
	TestSize    int
}

// Table1 computes the characteristics row of one pipeline.
func Table1(p *Pipeline) Table1Row {
	return Table1Row{
		Benchmark:   p.Benchmark,
		Accuracy:    p.Accuracy,
		Classes:     p.Net.OutputLen(),
		Neurons:     p.Net.NumNeurons(),
		Synapses:    p.Net.NumSynapses(),
		InShape:     p.Net.InShape,
		SampleSteps: p.SampleStepsUsed(),
		TrainSize:   len(p.Data.Train),
		TestSize:    len(p.Data.Test),
	}
}

// RenderTable1 prints Table I for the given rows.
func RenderTable1(w io.Writer, rows []Table1Row) error {
	headers := []string{"Metric"}
	for _, r := range rows {
		headers = append(headers, r.Benchmark)
	}
	line := func(name string, f func(Table1Row) string) []string {
		cells := []string{name}
		for _, r := range rows {
			cells = append(cells, f(r))
		}
		return cells
	}
	return report.Table(w, "Table I: Benchmark SNN characteristics", headers, [][]string{
		line("Prediction accuracy", func(r Table1Row) string { return fmt.Sprintf("%.2f%%", 100*r.Accuracy) }),
		line("# Output classes", func(r Table1Row) string { return fmt.Sprint(r.Classes) }),
		line("# Neurons", func(r Table1Row) string { return fmt.Sprint(r.Neurons) }),
		line("# Synapses", func(r Table1Row) string { return fmt.Sprint(r.Synapses) }),
		line("Input spatial dim", func(r Table1Row) string { return fmt.Sprint(r.InShape) }),
		line("Input temporal dim", func(r Table1Row) string { return fmt.Sprintf("%d ms", r.SampleSteps) }),
		line("Size training set", func(r Table1Row) string { return fmt.Sprint(r.TrainSize) }),
		line("Size testing set", func(r Table1Row) string { return fmt.Sprint(r.TestSize) }),
	})
}

// ---------------------------------------------------------------------------
// Table II — fault simulation results

// Table2Row is one column of the paper's Table II.
type Table2Row struct {
	Benchmark       string
	CriticalNeuron  int
	BenignNeuron    int
	CriticalSynapse int
	BenignSynapse   int
	UniverseSize    int // full universe (before any stride)
	SimTime         time.Duration
}

// Table2 runs the criticality-labelling campaign of one pipeline.
func Table2(p *Pipeline) (Table2Row, error) {
	critical, err := p.Critical()
	if err != nil {
		return Table2Row{}, err
	}
	row := Table2Row{
		Benchmark:    p.Benchmark,
		UniverseSize: fault.UniverseSize(p.Net, fault.DefaultOptions()),
		SimTime:      p.ClassifyTime,
	}
	for i, f := range p.Faults() {
		switch {
		case f.Kind.IsNeuron() && critical[i]:
			row.CriticalNeuron++
		case f.Kind.IsNeuron():
			row.BenignNeuron++
		case critical[i]:
			row.CriticalSynapse++
		default:
			row.BenignSynapse++
		}
	}
	return row, nil
}

// RenderTable2 prints Table II for the given rows.
func RenderTable2(w io.Writer, rows []Table2Row) error {
	headers := []string{"Metric"}
	for _, r := range rows {
		headers = append(headers, r.Benchmark)
	}
	line := func(name string, f func(Table2Row) string) []string {
		cells := []string{name}
		for _, r := range rows {
			cells = append(cells, f(r))
		}
		return cells
	}
	return report.Table(w, "Table II: Fault simulation results", headers, [][]string{
		line("# Critical neuron faults", func(r Table2Row) string { return fmt.Sprint(r.CriticalNeuron) }),
		line("# Benign neuron faults", func(r Table2Row) string { return fmt.Sprint(r.BenignNeuron) }),
		line("# Critical synapse faults", func(r Table2Row) string { return fmt.Sprint(r.CriticalSynapse) }),
		line("# Benign synapse faults", func(r Table2Row) string { return fmt.Sprint(r.BenignSynapse) }),
		line("Full universe size", func(r Table2Row) string { return fmt.Sprint(r.UniverseSize) }),
		line("Fault simulation time", func(r Table2Row) string { return r.SimTime.Round(time.Millisecond).String() }),
	})
}

// ---------------------------------------------------------------------------
// Table III — test generation efficiency metrics

// Table3Row is one column of the paper's Table III.
type Table3Row struct {
	Benchmark       string
	GenRuntime      time.Duration
	DurationSamples float64
	DurationSec     float64
	ActivatedPct    float64
	FCCritNeuron    float64
	FCCritSynapse   float64
	FCBenNeuron     float64
	FCBenSynapse    float64
	MaxDropNeuron   float64
	MaxDropSynapse  float64
}

// Table3 generates the optimized test for one pipeline, verifies it with
// a single final fault-simulation campaign, and assembles the efficiency
// metrics.
func Table3(p *Pipeline) (Table3Row, error) {
	gen, err := p.Generate()
	if err != nil {
		return Table3Row{}, err
	}
	faults := p.Faults()
	critical, err := p.Critical()
	if err != nil {
		return Table3Row{}, err
	}
	sim, err := fault.Simulate(p.Net, faults, gen.Stimulus, p.Opts.Workers, p.progress("verify"))
	if err != nil {
		return Table3Row{}, err
	}
	cov, err := fault.Compute(faults, sim.Detected, critical)
	if err != nil {
		return Table3Row{}, err
	}
	testIn, testLab := p.Data.Inputs("test")
	nDrop, sDrop := fault.MaxEscapeDrop(p.Net, faults, sim.Detected, critical, testIn, testLab)
	return Table3Row{
		Benchmark:       p.Benchmark,
		GenRuntime:      gen.Runtime,
		DurationSamples: gen.DurationSamples(p.SampleStepsUsed()),
		DurationSec:     metrics.DurationSeconds(p.Net, gen.TotalSteps()),
		ActivatedPct:    100 * gen.ActivatedFraction,
		FCCritNeuron:    100 * cov.CriticalNeuron.FC(),
		FCCritSynapse:   100 * cov.CriticalSynapse.FC(),
		FCBenNeuron:     100 * cov.BenignNeuron.FC(),
		FCBenSynapse:    100 * cov.BenignSynapse.FC(),
		MaxDropNeuron:   100 * nDrop,
		MaxDropSynapse:  100 * sDrop,
	}, nil
}

// RenderTable3 prints Table III for the given rows.
func RenderTable3(w io.Writer, rows []Table3Row) error {
	headers := []string{"Metric"}
	for _, r := range rows {
		headers = append(headers, r.Benchmark)
	}
	line := func(name string, f func(Table3Row) string) []string {
		cells := []string{name}
		for _, r := range rows {
			cells = append(cells, f(r))
		}
		return cells
	}
	return report.Table(w, "Table III: Test generation efficiency metrics", headers, [][]string{
		line("Test generation runtime", func(r Table3Row) string { return r.GenRuntime.Round(time.Millisecond).String() }),
		line("Test duration (samples)", func(r Table3Row) string { return fmt.Sprintf("%.2f", r.DurationSamples) }),
		line("Test duration (time)", func(r Table3Row) string { return fmt.Sprintf("%.3fs", r.DurationSec) }),
		line("Activated neurons", func(r Table3Row) string { return fmt.Sprintf("%.2f%%", r.ActivatedPct) }),
		line("FC critical neuron faults", func(r Table3Row) string { return fmt.Sprintf("%.2f%%", r.FCCritNeuron) }),
		line("FC critical synapse faults", func(r Table3Row) string { return fmt.Sprintf("%.2f%%", r.FCCritSynapse) }),
		line("FC benign neuron faults", func(r Table3Row) string { return fmt.Sprintf("%.2f%%", r.FCBenNeuron) }),
		line("FC benign synapse faults", func(r Table3Row) string { return fmt.Sprintf("%.2f%%", r.FCBenSynapse) }),
		line("Max accuracy drop neuron(synapse)", func(r Table3Row) string {
			return fmt.Sprintf("%.1f%%(%.1f%%)", r.MaxDropNeuron, r.MaxDropSynapse)
		}),
	})
}

// ---------------------------------------------------------------------------
// Table IV — comparison with previous works (NMNIST)

// Table4Row is one column of the paper's Table IV: one test-generation
// method on the NMNIST benchmark.
type Table4Row struct {
	Method          string
	StimulusType    string
	GenTime         time.Duration
	FaultSims       int
	Configs         int
	DurationSamples float64
	DurationSec     float64
	CriticalFC      float64
}

// Table4 runs every method on the pipeline's model and fault universe.
// The pipeline should be the NMNIST one, the only benchmark shared by all
// prior works.
func Table4(p *Pipeline) ([]Table4Row, error) {
	faults := p.Faults()
	critical, err := p.Critical()
	if err != nil {
		return nil, err
	}
	sampleSteps := p.SampleStepsUsed()
	trainIn, trainLab := p.Data.Inputs("train")

	evalRow := func(method, stype string, genTime time.Duration, sims, configs, steps int, detected []bool) (Table4Row, error) {
		cov, err := fault.Compute(faults, detected, critical)
		if err != nil {
			return Table4Row{}, err
		}
		return Table4Row{
			Method:          method,
			StimulusType:    stype,
			GenTime:         genTime,
			FaultSims:       sims,
			Configs:         configs,
			DurationSamples: float64(steps) / float64(sampleSteps),
			DurationSec:     metrics.DurationSeconds(p.Net, steps),
			CriticalFC:      100 * cov.CriticalFC(),
		}, nil
	}

	var rows []Table4Row
	addRow := func(method, stype string, genTime time.Duration, sims, configs, steps int, detected []bool) error {
		row, err := evalRow(method, stype, genTime, sims, configs, steps, detected)
		if err != nil {
			return err
		}
		rows = append(rows, row)
		return nil
	}
	cfg := baseline.DefaultConfig()
	cfg.Workers = p.Opts.Workers

	// [17]/[19]-style adversarial greedy.
	adv, err := baseline.Adversarial17(p.Net, faults, trainIn, trainLab, 0.05, cfg)
	if err != nil {
		return nil, err
	}
	advSim, err := fault.Simulate(p.Net, faults, adv.Stimulus, p.Opts.Workers, nil)
	if err != nil {
		return nil, err
	}
	if err := addRow("[17] adversarial", "Adversarial", adv.Runtime,
		adv.FaultSims, 1, adv.TotalSteps(), advSim.Detected); err != nil {
		return nil, err
	}

	// [18]-style dataset greedy.
	d18, err := baseline.Dataset18(p.Net, faults, trainIn, cfg)
	if err != nil {
		return nil, err
	}
	d18Sim, err := fault.Simulate(p.Net, faults, d18.Stimulus, p.Opts.Workers, nil)
	if err != nil {
		return nil, err
	}
	if err := addRow("[18] dataset", "Dataset", d18.Runtime,
		d18.FaultSims, 1, d18.TotalSteps(), d18Sim.Detected); err != nil {
		return nil, err
	}

	// [20]-style random greedy.
	rng := rand.New(rand.NewSource(p.Opts.Seed + 7))
	r20, err := baseline.Random20(p.Net, faults, len(trainIn), sampleSteps, 0.3, rng, cfg)
	if err != nil {
		return nil, err
	}
	r20Sim, err := fault.Simulate(p.Net, faults, r20.Stimulus, p.Opts.Workers, nil)
	if err != nil {
		return nil, err
	}
	if err := addRow("[20] random", "Random", r20.Runtime,
		r20.FaultSims, 1, r20.TotalSteps(), r20Sim.Detected); err != nil {
		return nil, err
	}

	// This work: optimized stimulus, no fault simulation during
	// generation — one verification campaign at the end.
	gen, err := p.Generate()
	if err != nil {
		return nil, err
	}
	genSim, err := fault.Simulate(p.Net, faults, gen.Stimulus, p.Opts.Workers, nil)
	if err != nil {
		return nil, err
	}
	if err := addRow("This work", "Optimized", gen.Runtime,
		0, 1, gen.TotalSteps(), genSim.Detected); err != nil {
		return nil, err
	}

	return rows, nil
}

// RenderTable4 prints Table IV for the given rows.
func RenderTable4(w io.Writer, rows []Table4Row) error {
	headers := []string{"Metric"}
	for _, r := range rows {
		headers = append(headers, r.Method)
	}
	line := func(name string, f func(Table4Row) string) []string {
		cells := []string{name}
		for _, r := range rows {
			cells = append(cells, f(r))
		}
		return cells
	}
	return report.Table(w, "Table IV: Comparison with previous works (NMNIST)", headers, [][]string{
		line("Test stimulus type", func(r Table4Row) string { return r.StimulusType }),
		line("Test generation time", func(r Table4Row) string { return r.GenTime.Round(time.Millisecond).String() }),
		line("Fault sims during generation", func(r Table4Row) string { return fmt.Sprint(r.FaultSims) }),
		line("# Test configurations", func(r Table4Row) string { return fmt.Sprint(r.Configs) }),
		line("Test duration (samples)", func(r Table4Row) string { return fmt.Sprintf("%.2f", r.DurationSamples) }),
		line("Test duration (time)", func(r Table4Row) string { return fmt.Sprintf("%.3fs", r.DurationSec) }),
		line("Critical fault coverage", func(r Table4Row) string { return fmt.Sprintf("%.2f%%", r.CriticalFC) }),
	})
}
