package experiments

import (
	"fmt"
	"io"

	"github.com/repro/snntest/internal/core"
	"github.com/repro/snntest/internal/fault"
	"github.com/repro/snntest/internal/metrics"
	"github.com/repro/snntest/internal/report"
)

// Fig7 renders snapshots of the optimized test stimulus at evenly spaced
// time stamps (the paper's Fig. 7: blue/red polarity dots become '+'/'-').
func Fig7(w io.Writer, p *Pipeline, snapshots int) error {
	gen, err := p.Generate()
	if err != nil {
		return err
	}
	stim := gen.Stimulus
	steps := stim.Dim(0)
	if snapshots < 1 {
		snapshots = 4
	}
	if _, err := fmt.Fprintf(w, "Fig. 7: Snapshots of the optimized test stimulus (%s, %d steps)\n\n", p.Benchmark, steps); err != nil {
		return err
	}
	for s := 0; s < snapshots; s++ {
		t := s * (steps - 1) / max(1, snapshots-1)
		f := stim.Step(t).Reshape(p.Net.InShape...)
		if err := report.FrameSnapshot(w, f, fmt.Sprintf("t = %d ms", int(float64(t)*p.Net.StepMS))); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// Fig8Data is the quantitative content of the paper's Fig. 8: neuron
// activation under the optimized test versus a random dataset sample.
type Fig8Data struct {
	Optimized metrics.ActivationMap
	Sample    metrics.ActivationMap
}

// Fig8 computes both activation maps.
func Fig8(p *Pipeline) (Fig8Data, error) {
	gen, err := p.Generate()
	if err != nil {
		return Fig8Data{}, err
	}
	opt, err := metrics.Activation(p.Net, gen.Stimulus)
	if err != nil {
		return Fig8Data{}, err
	}
	sample, err := metrics.Activation(p.Net, p.RandomSample(3))
	if err != nil {
		return Fig8Data{}, err
	}
	return Fig8Data{Optimized: opt, Sample: sample}, nil
}

// RenderFig8 prints the per-layer activation grids side by side.
func RenderFig8(w io.Writer, p *Pipeline, d Fig8Data) error {
	fmt.Fprintf(w, "Fig. 8: Neuron activity, optimized test vs. random dataset sample (%s)\n\n", p.Benchmark)
	fmt.Fprintf(w, "(a) Optimized test input: %.2f%% of neurons activated\n", 100*d.Optimized.Overall)
	for li, name := range d.Optimized.LayerNames {
		if err := report.ActivationGrid(w, name, d.Optimized.Activated[li], 48); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "\n(b) Random dataset sample: %.2f%% of neurons activated\n", 100*d.Sample.Overall)
	for li, name := range d.Sample.LayerNames {
		if err := report.ActivationGrid(w, name, d.Sample.Activated[li], 48); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Fig9Data is the content of the paper's Fig. 9: per-class distributions
// of the output spike-count difference over detected faults.
type Fig9Data struct {
	Diffs metrics.ClassDiffs
	// DetectedFaults is the number of faults contributing to each class
	// distribution.
	DetectedFaults int
}

// Fig9 simulates the fault universe against the optimized stimulus and
// collects the per-class output corruption distributions.
func Fig9(p *Pipeline) (Fig9Data, error) {
	gen, err := p.Generate()
	if err != nil {
		return Fig9Data{}, err
	}
	cd, err := metrics.OutputSpikeDiffs(p.Net, p.Faults(), gen.Stimulus)
	if err != nil {
		return Fig9Data{}, err
	}
	n := 0
	if len(cd.Diffs) > 0 {
		n = len(cd.Diffs[0])
	}
	return Fig9Data{Diffs: cd, DetectedFaults: n}, nil
}

// RenderFig9 prints one histogram per output class.
func RenderFig9(w io.Writer, p *Pipeline, d Fig9Data, bins int) error {
	fmt.Fprintf(w, "Fig. 9: Per-class output spike-count difference over %d detected faults (%s)\n\n",
		d.DetectedFaults, p.Benchmark)
	maxDiff := 0.0
	for _, diffs := range d.Diffs.Diffs {
		for _, v := range diffs {
			if v > maxDiff {
				maxDiff = v
			}
		}
	}
	if maxDiff == 0 { //lint:ignore floateq max of spike-count differences; exact zero means no fault detected anywhere
		_, err := fmt.Fprintln(w, "(no detected faults)")
		return err
	}
	for c, diffs := range d.Diffs.Diffs {
		counts, width := metrics.Histogram(diffs, bins, maxDiff)
		if err := report.HistogramChart(w, fmt.Sprintf("class %d (p50 %.1f, p95 %.1f)",
			c, metrics.Percentile(diffs, 0.5), metrics.Percentile(diffs, 0.95)), counts, width); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §5)

// AblationResult compares a full algorithm run against a variant with one
// design element removed.
type AblationResult struct {
	Name       string
	FullFC     float64 // overall FC of the full algorithm, percent
	VariantFC  float64 // overall FC of the ablated variant, percent
	FullSteps  int
	VariantVar int // variant stimulus duration in steps
}

// Ablate runs the generator with a mutated config and reports coverage
// against the pipeline's fault universe.
func Ablate(p *Pipeline, name string, mutate func(*core.Config)) (AblationResult, error) {
	faults := p.Faults()

	full, err := p.Generate()
	if err != nil {
		return AblationResult{}, err
	}
	fullSim, err := fault.Simulate(p.Net, faults, full.Stimulus, p.Opts.Workers, nil)
	if err != nil {
		return AblationResult{}, err
	}

	cfg := p.Opts.GenConfig
	mutate(&cfg)
	variant, err := core.Generate(p.Net, cfg)
	if err != nil {
		return AblationResult{}, err
	}
	varSim, err := fault.Simulate(p.Net, faults, variant.Stimulus, p.Opts.Workers, nil)
	if err != nil {
		return AblationResult{}, err
	}

	return AblationResult{
		Name:       name,
		FullFC:     100 * float64(fullSim.NumDetected()) / float64(len(faults)),
		VariantFC:  100 * float64(varSim.NumDetected()) / float64(len(faults)),
		FullSteps:  full.TotalSteps(),
		VariantVar: variant.TotalSteps(),
	}, nil
}

// RenderAblations prints the ablation comparison table.
func RenderAblations(w io.Writer, rows []AblationResult) error {
	table := make([][]string, len(rows))
	for i, r := range rows {
		table[i] = []string{
			r.Name,
			fmt.Sprintf("%.2f%%", r.FullFC),
			fmt.Sprintf("%.2f%%", r.VariantFC),
			fmt.Sprintf("%+.2f%%", r.VariantFC-r.FullFC),
		}
	}
	return report.Table(w, "Ablation study (overall FC)", []string{"Variant", "Full", "Ablated", "Δ"}, table)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
