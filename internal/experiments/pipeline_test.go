package experiments

import (
	"strings"
	"testing"

	"github.com/repro/snntest/internal/core"
	"github.com/repro/snntest/internal/snn"
)

// tinyOpts returns a minimal configuration for fast end-to-end tests.
func tinyOpts() Options {
	o := ScaledOptions(snn.ScaleTiny, 1)
	o.TrainPerClass = 2
	o.TestPerClass = 1
	o.TrainEpochs = 2
	o.SampleSteps = 15
	o.GenConfig.Steps1 = 40
	o.GenConfig.MaxIterations = 6
	o.GenConfig.MaxGrowth = 1
	o.FaultStride = 9
	return o
}

// shdPipeline builds the cheapest benchmark pipeline once per test run.
func shdPipeline(t *testing.T) *Pipeline {
	t.Helper()
	p, err := NewPipeline("shd", tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewPipelineUnknownBenchmark(t *testing.T) {
	if _, err := NewPipeline("nope", tinyOpts()); err == nil {
		t.Error("unknown benchmark must error")
	}
}

func TestPipelineEndToEndSHD(t *testing.T) {
	p := shdPipeline(t)
	if p.Accuracy < 0.10 {
		t.Errorf("trained accuracy %.2f below sanity floor (chance = 0.05)", p.Accuracy)
	}
	if len(p.History.Loss) != 2 {
		t.Errorf("history epochs = %d", len(p.History.Loss))
	}

	// Table I.
	t1 := Table1(p)
	if t1.Neurons != p.Net.NumNeurons() || t1.Classes != 20 {
		t.Errorf("Table1 row wrong: %+v", t1)
	}

	// Table II: partition must cover the strided universe.
	t2 := must(Table2(p))
	got := t2.CriticalNeuron + t2.BenignNeuron + t2.CriticalSynapse + t2.BenignSynapse
	if got != len(p.Faults()) {
		t.Errorf("Table2 partition %d faults, universe %d", got, len(p.Faults()))
	}
	if t2.UniverseSize != 2*p.Net.NumNeurons()+3*p.Net.NumSynapses() {
		t.Errorf("full universe size %d", t2.UniverseSize)
	}

	// Table III: percentages must be sane and activation should be high.
	t3 := must(Table3(p))
	for name, v := range map[string]float64{
		"activated": t3.ActivatedPct, "fc-cn": t3.FCCritNeuron, "fc-cs": t3.FCCritSynapse,
		"fc-bn": t3.FCBenNeuron, "fc-bs": t3.FCBenSynapse,
	} {
		if v < 0 || v > 100 {
			t.Errorf("Table3 %s = %.2f out of range", name, v)
		}
	}
	if t3.ActivatedPct < 20 {
		t.Errorf("activated neurons %.1f%%; expected the optimizer to reach a fair share of a tiny net", t3.ActivatedPct)
	}
	if t3.FCCritNeuron < 50 {
		t.Errorf("critical neuron FC %.1f%%; the optimized test should catch most critical neuron faults", t3.FCCritNeuron)
	}
	if t3.DurationSamples <= 0 {
		t.Error("test duration must be positive")
	}

	// Figures.
	d8 := must(Fig8(p))
	if d8.Optimized.Overall < d8.Sample.Overall-0.05 {
		t.Errorf("optimized activation %.2f clearly below sample activation %.2f (paper's Fig. 8 shape)",
			d8.Optimized.Overall, d8.Sample.Overall)
	}
	d9 := must(Fig9(p))
	if len(d9.Diffs.Diffs) != 20 {
		t.Errorf("Fig9 classes = %d", len(d9.Diffs.Diffs))
	}
	if d9.DetectedFaults == 0 {
		t.Error("Fig9 found no detected faults")
	}

	// Renderers must produce non-trivial text.
	var b strings.Builder
	RenderTable1(&b, []Table1Row{t1})
	RenderTable2(&b, []Table2Row{t2})
	RenderTable3(&b, []Table3Row{t3})
	RenderFig8(&b, p, d8)
	RenderFig9(&b, p, d9, 5)
	Fig7(&b, p, 3)
	out := b.String()
	for _, want := range []string{"Table I", "Table II", "Table III", "Fig. 7", "Fig. 8", "Fig. 9", "shd"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered report missing %q", want)
		}
	}
}

func TestTable4ComparisonShape(t *testing.T) {
	// Run Table IV on the cheapest benchmark (the paper uses NMNIST; the
	// method set is identical and SHD is far cheaper at tiny scale).
	p := shdPipeline(t)
	rows := must(Table4(p))
	if len(rows) != 4 {
		t.Fatalf("Table4 rows = %d, want 4 methods", len(rows))
	}
	byName := map[string]Table4Row{}
	for _, r := range rows {
		byName[r.Method] = r
	}
	ours := byName["This work"]
	if ours.FaultSims != 0 {
		t.Errorf("the proposed method must not fault-simulate during generation (%d sims)", ours.FaultSims)
	}
	for _, m := range []string{"[17] adversarial", "[18] dataset", "[20] random"} {
		r := byName[m]
		if r.FaultSims == 0 {
			t.Errorf("%s: greedy baselines pay fault simulations during generation", m)
		}
	}
	var b strings.Builder
	RenderTable4(&b, rows)
	if !strings.Contains(b.String(), "This work") {
		t.Error("Table IV render missing method column")
	}
}

func TestAblationRuns(t *testing.T) {
	p := shdPipeline(t)
	r := must(Ablate(p, "no-stage2", func(c *core.Config) { c.DisableStage2 = true }))
	if r.FullFC < 0 || r.FullFC > 100 || r.VariantFC < 0 || r.VariantFC > 100 {
		t.Errorf("ablation FCs out of range: %+v", r)
	}
	var b strings.Builder
	RenderAblations(&b, []AblationResult{r})
	if !strings.Contains(b.String(), "no-stage2") {
		t.Error("ablation table missing row")
	}
}

func TestScaledOptionsPresets(t *testing.T) {
	tiny := ScaledOptions(snn.ScaleTiny, 1)
	small := ScaledOptions(snn.ScaleSmall, 1)
	full := ScaledOptions(snn.ScaleFull, 1)
	if tiny.FaultStride != 1 {
		t.Error("tiny scale should be exhaustive")
	}
	if small.FaultStride <= 1 || full.FaultStride <= small.FaultStride {
		t.Error("stride must grow with scale")
	}
	if full.GenConfig.Steps1 != 2000 {
		t.Errorf("full scale must use the paper's 2000 steps, got %d", full.GenConfig.Steps1)
	}
}
