// Package report renders the experiment artifacts as text: aligned
// tables (Tables I–IV), ASCII activation heatmaps (Fig. 8), stimulus
// snapshots (Fig. 7) and spike-count-difference histograms (Fig. 9), plus
// CSV output for downstream plotting.
//
// Every renderer returns the first error of the underlying writer, so a
// full report pipeline writing to a file surfaces disk failures instead
// of silently truncating artifacts.
package report

import (
	"fmt"
	"io"
	"strings"

	"github.com/repro/snntest/internal/tensor"
)

// errWriter tracks the first error of a sequence of writes; all later
// writes become no-ops. It lets the renderers stay linear instead of
// threading `if err != nil` through every Fprintf.
type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) printf(format string, args ...any) {
	if ew.err == nil {
		_, ew.err = fmt.Fprintf(ew.w, format, args...)
	}
}

func (ew *errWriter) println(args ...any) {
	if ew.err == nil {
		_, ew.err = fmt.Fprintln(ew.w, args...)
	}
}

func (ew *errWriter) print(args ...any) {
	if ew.err == nil {
		_, ew.err = fmt.Fprint(ew.w, args...)
	}
}

// Table writes an aligned text table with a title, header row and data
// rows.
func Table(w io.Writer, title string, headers []string, rows [][]string) error {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		return strings.TrimRight(b.String(), " ")
	}
	ew := &errWriter{w: w}
	if title != "" {
		ew.printf("%s\n%s\n", title, strings.Repeat("=", len(title)))
	}
	ew.println(line(headers))
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	ew.println(strings.Repeat("-", total-2))
	for _, r := range rows {
		ew.println(line(r))
	}
	ew.println()
	return ew.err
}

// CSV writes headers and rows in comma-separated form, quoting cells that
// contain commas.
func CSV(w io.Writer, headers []string, rows [][]string) error {
	ew := &errWriter{w: w}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				ew.print(",")
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			ew.print(c)
		}
		ew.println()
	}
	writeRow(headers)
	for _, r := range rows {
		writeRow(r)
	}
	return ew.err
}

// shades maps an intensity in [0,1] to an ASCII shade.
var shades = []byte(" .:-=+*#%@")

// shade returns the ASCII character for intensity v ∈ [0,1].
func shade(v float64) byte {
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	i := int(v * float64(len(shades)-1))
	return shades[i]
}

// ActivationGrid renders a boolean activation vector as a rectangular
// ASCII grid of the given width ('#' activated, '.' silent) — one layer
// of the paper's Fig. 8 custom grid layout.
func ActivationGrid(w io.Writer, name string, activated []bool, width int) error {
	if width <= 0 {
		width = 32
	}
	act := 0
	for _, a := range activated {
		if a {
			act++
		}
	}
	ew := &errWriter{w: w}
	ew.printf("%s: %d/%d activated (%.1f%%)\n", name, act, len(activated), 100*float64(act)/float64(max(1, len(activated))))
	for i := 0; i < len(activated); i += width {
		var b strings.Builder
		for j := i; j < i+width && j < len(activated); j++ {
			if activated[j] {
				b.WriteByte('#')
			} else {
				b.WriteByte('.')
			}
		}
		ew.println(b.String())
	}
	return ew.err
}

// FrameSnapshot renders one [2,H,W] polarity event frame: '+' for ON
// events, '-' for OFF events, '*' where both fire — the paper's Fig. 7
// stimulus snapshots (blue/red dots in the original).
func FrameSnapshot(w io.Writer, frame *tensor.Tensor, label string) error {
	ew := &errWriter{w: w}
	if frame.Rank() != 3 || frame.Dim(0) != 2 {
		// Non-DVS frames render as a single-row intensity strip.
		ew.printf("%s\n", label)
		var b strings.Builder
		for _, v := range frame.Data() {
			b.WriteByte(shade(v))
		}
		ew.println(b.String())
		return ew.err
	}
	h, wd := frame.Dim(1), frame.Dim(2)
	ew.printf("%s\n", label)
	for y := 0; y < h; y++ {
		var b strings.Builder
		for x := 0; x < wd; x++ {
			on := frame.At(0, y, x) == 1  //lint:ignore floateq event frames hold exactly 0 or 1
			off := frame.At(1, y, x) == 1 //lint:ignore floateq event frames hold exactly 0 or 1
			switch {
			case on && off:
				b.WriteByte('*')
			case on:
				b.WriteByte('+')
			case off:
				b.WriteByte('-')
			default:
				b.WriteByte('.')
			}
		}
		ew.println(b.String())
	}
	return ew.err
}

// HistogramChart renders bin counts as a horizontal ASCII bar chart with
// bin-range labels.
func HistogramChart(w io.Writer, title string, counts []int, binWidth float64) error {
	ew := &errWriter{w: w}
	ew.println(title)
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	if maxCount == 0 {
		ew.println("  (empty)")
		return ew.err
	}
	const barMax = 50
	for i, c := range counts {
		bar := c * barMax / maxCount
		ew.printf("  [%6.1f,%6.1f) %s %d\n",
			float64(i)*binWidth, float64(i+1)*binWidth, strings.Repeat("█", bar), c)
	}
	return ew.err
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
