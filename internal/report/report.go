// Package report renders the experiment artifacts as text: aligned
// tables (Tables I–IV), ASCII activation heatmaps (Fig. 8), stimulus
// snapshots (Fig. 7) and spike-count-difference histograms (Fig. 9), plus
// CSV output for downstream plotting.
package report

import (
	"fmt"
	"io"
	"strings"

	"github.com/repro/snntest/internal/tensor"
)

// Table writes an aligned text table with a title, header row and data
// rows.
func Table(w io.Writer, title string, headers []string, rows [][]string) {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		return strings.TrimRight(b.String(), " ")
	}
	if title != "" {
		fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	}
	fmt.Fprintln(w, line(headers))
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	fmt.Fprintln(w, strings.Repeat("-", total-2))
	for _, r := range rows {
		fmt.Fprintln(w, line(r))
	}
	fmt.Fprintln(w)
}

// CSV writes headers and rows in comma-separated form, quoting cells that
// contain commas.
func CSV(w io.Writer, headers []string, rows [][]string) {
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, ",")
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			fmt.Fprint(w, c)
		}
		fmt.Fprintln(w)
	}
	writeRow(headers)
	for _, r := range rows {
		writeRow(r)
	}
}

// shades maps an intensity in [0,1] to an ASCII shade.
var shades = []byte(" .:-=+*#%@")

// shade returns the ASCII character for intensity v ∈ [0,1].
func shade(v float64) byte {
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	i := int(v * float64(len(shades)-1))
	return shades[i]
}

// ActivationGrid renders a boolean activation vector as a rectangular
// ASCII grid of the given width ('#' activated, '.' silent) — one layer
// of the paper's Fig. 8 custom grid layout.
func ActivationGrid(w io.Writer, name string, activated []bool, width int) {
	if width <= 0 {
		width = 32
	}
	act := 0
	for _, a := range activated {
		if a {
			act++
		}
	}
	fmt.Fprintf(w, "%s: %d/%d activated (%.1f%%)\n", name, act, len(activated), 100*float64(act)/float64(max(1, len(activated))))
	for i := 0; i < len(activated); i += width {
		var b strings.Builder
		for j := i; j < i+width && j < len(activated); j++ {
			if activated[j] {
				b.WriteByte('#')
			} else {
				b.WriteByte('.')
			}
		}
		fmt.Fprintln(w, b.String())
	}
}

// FrameSnapshot renders one [2,H,W] polarity event frame: '+' for ON
// events, '-' for OFF events, '*' where both fire — the paper's Fig. 7
// stimulus snapshots (blue/red dots in the original).
func FrameSnapshot(w io.Writer, frame *tensor.Tensor, label string) {
	if frame.Rank() != 3 || frame.Dim(0) != 2 {
		// Non-DVS frames render as a single-row intensity strip.
		fmt.Fprintf(w, "%s\n", label)
		var b strings.Builder
		for _, v := range frame.Data() {
			b.WriteByte(shade(v))
		}
		fmt.Fprintln(w, b.String())
		return
	}
	h, wd := frame.Dim(1), frame.Dim(2)
	fmt.Fprintf(w, "%s\n", label)
	for y := 0; y < h; y++ {
		var b strings.Builder
		for x := 0; x < wd; x++ {
			on := frame.At(0, y, x) == 1
			off := frame.At(1, y, x) == 1
			switch {
			case on && off:
				b.WriteByte('*')
			case on:
				b.WriteByte('+')
			case off:
				b.WriteByte('-')
			default:
				b.WriteByte('.')
			}
		}
		fmt.Fprintln(w, b.String())
	}
}

// HistogramChart renders bin counts as a horizontal ASCII bar chart with
// bin-range labels.
func HistogramChart(w io.Writer, title string, counts []int, binWidth float64) {
	fmt.Fprintln(w, title)
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	if maxCount == 0 {
		fmt.Fprintln(w, "  (empty)")
		return
	}
	const barMax = 50
	for i, c := range counts {
		bar := c * barMax / maxCount
		fmt.Fprintf(w, "  [%6.1f,%6.1f) %s %d\n",
			float64(i)*binWidth, float64(i+1)*binWidth, strings.Repeat("█", bar), c)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
