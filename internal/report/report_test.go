package report

import (
	"strings"
	"testing"

	"github.com/repro/snntest/internal/tensor"
)

func TestTableAlignment(t *testing.T) {
	var b strings.Builder
	Table(&b, "Demo", []string{"name", "value"}, [][]string{
		{"alpha", "1"},
		{"beta-longer", "22"},
	})
	out := b.String()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "====") {
		t.Error("missing title/underline")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "beta-longer") {
		t.Error("missing rows")
	}
	lines := strings.Split(out, "\n")
	// Header and data rows begin at aligned columns: "value"/"1"/"22"
	// all start at the same offset.
	var headerIdx int
	for i, l := range lines {
		if strings.HasPrefix(l, "name") {
			headerIdx = i
		}
	}
	col := strings.Index(lines[headerIdx], "value")
	if !strings.HasPrefix(lines[headerIdx+2][col:], "1") {
		t.Errorf("column misaligned:\n%s", out)
	}
}

func TestTableNoTitle(t *testing.T) {
	var b strings.Builder
	Table(&b, "", []string{"h"}, [][]string{{"x"}})
	if strings.Contains(b.String(), "=") {
		t.Error("untitled table must not render an underline")
	}
}

func TestCSVQuoting(t *testing.T) {
	var b strings.Builder
	CSV(&b, []string{"a", "b"}, [][]string{{"1,5", `say "hi"`}})
	out := b.String()
	if !strings.Contains(out, `"1,5"`) {
		t.Error("comma cell must be quoted")
	}
	if !strings.Contains(out, `"say ""hi"""`) {
		t.Error("quote cell must be escaped")
	}
	if !strings.HasPrefix(out, "a,b\n") {
		t.Error("header row wrong")
	}
}

func TestActivationGrid(t *testing.T) {
	var b strings.Builder
	ActivationGrid(&b, "layer1", []bool{true, false, true, true, false, false}, 3)
	out := b.String()
	if !strings.Contains(out, "3/6 activated (50.0%)") {
		t.Errorf("summary wrong:\n%s", out)
	}
	if !strings.Contains(out, "#.#") || !strings.Contains(out, "#..") {
		t.Errorf("grid rows wrong:\n%s", out)
	}
}

func TestActivationGridDefaultWidth(t *testing.T) {
	var b strings.Builder
	ActivationGrid(&b, "l", make([]bool, 40), 0)
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	// 40 neurons at default width 32 → 2 grid rows + 1 summary.
	if len(lines) != 3 {
		t.Errorf("lines = %d, want 3:\n%s", len(lines), b.String())
	}
}

func TestFrameSnapshotPolarity(t *testing.T) {
	f := tensor.New(2, 2, 2)
	f.Set(1, 0, 0, 0) // ON at (0,0)
	f.Set(1, 1, 0, 1) // OFF at (0,1)
	f.Set(1, 0, 1, 0) // both at (1,0)
	f.Set(1, 1, 1, 0)
	var b strings.Builder
	FrameSnapshot(&b, f, "t=0")
	out := b.String()
	if !strings.Contains(out, "+-") {
		t.Errorf("row 0 should be \"+-\":\n%s", out)
	}
	if !strings.Contains(out, "*.") {
		t.Errorf("row 1 should be \"*.\":\n%s", out)
	}
}

func TestFrameSnapshotNonDVS(t *testing.T) {
	var b strings.Builder
	FrameSnapshot(&b, tensor.FromSlice([]float64{0, 0.5, 1}, 3), "audio")
	out := b.String()
	if !strings.Contains(out, "audio") || len(strings.Split(strings.TrimSpace(out), "\n")) != 2 {
		t.Errorf("non-DVS snapshot should render one strip:\n%s", out)
	}
}

func TestHistogramChart(t *testing.T) {
	var b strings.Builder
	HistogramChart(&b, "diffs", []int{4, 0, 2}, 1.5)
	out := b.String()
	if !strings.Contains(out, "diffs") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "[   0.0,   1.5)") {
		t.Errorf("bin labels wrong:\n%s", out)
	}
	// Tallest bin renders 50 blocks; count 2 renders 25.
	if strings.Count(out, "█") != 75 {
		t.Errorf("bar lengths wrong (%d blocks):\n%s", strings.Count(out, "█"), out)
	}
}

func TestHistogramChartEmpty(t *testing.T) {
	var b strings.Builder
	HistogramChart(&b, "none", []int{0, 0}, 1)
	if !strings.Contains(b.String(), "(empty)") {
		t.Error("empty histogram should say so")
	}
}

func TestShadeBounds(t *testing.T) {
	if shade(-1) != ' ' || shade(0) != ' ' {
		t.Error("low intensities must map to blank")
	}
	if shade(1) != '@' || shade(2) != '@' {
		t.Error("high intensities must map to densest shade")
	}
}
