package lint

import (
	"runtime"
	"sort"
	"sync"
	"time"
)

// Options configures an AnalyzeModule run.
type Options struct {
	// Workers bounds the type-checking and analysis concurrency;
	// <= 0 means GOMAXPROCS. Results are identical for every value.
	Workers int
	// CachePath names the persistent diagnostics cache file; empty
	// disables caching.
	CachePath string
	// Baseline, when non-nil, filters accepted pre-existing findings
	// from the output (see LoadBaseline).
	Baseline *Baseline
}

// Stats summarizes one driver run.
type Stats struct {
	// Packages is the number of packages in the module.
	Packages int
	// Analyzed is how many packages had their analyzers run this time.
	Analyzed int
	// Cached is how many packages were served from the cache.
	Cached int
	// Suppressed counts findings dropped by //lint:ignore directives
	// (including inside cached packages).
	Suppressed int
	// Baselined counts findings absorbed by the -baseline file.
	Baselined int
	// Wall is the end-to-end driver time, scan to sorted output.
	Wall time.Duration
}

// Result is a driver run's sorted diagnostics plus its statistics.
type Result struct {
	Diagnostics []Diagnostic
	Stats       Stats
}

// AnalyzeModule is the incremental parallel driver: it scans the module
// rooted at (or above) dir, serves unchanged packages from the cache,
// type-checks and analyzes the rest concurrently, applies //lint:ignore
// suppressions and the baseline, and returns globally sorted
// diagnostics. The output is bit-identical for any worker count and for
// warm versus cold caches.
func AnalyzeModule(dir string, analyzers []*Analyzer, opts Options) (*Result, error) {
	start := time.Now()
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	mod, err := ScanModule(dir)
	if err != nil {
		return nil, err
	}

	var cache *Cache
	if opts.CachePath != "" {
		cache = OpenCache(opts.CachePath)
	}
	fingerprint := suiteFingerprint(mod, analyzers)
	actions := actionIDs(mod, fingerprint)

	res := &Result{Stats: Stats{Packages: len(mod.Pkgs)}}
	perPkg := make(map[*Package][]Diagnostic, len(mod.Pkgs))
	var misses []*Package
	for _, pkg := range mod.Pkgs {
		if diags, suppressed, ok := cache.get(mod.Dir, pkg.Path, actions[pkg]); ok {
			perPkg[pkg] = diags
			res.Stats.Cached++
			res.Stats.Suppressed += suppressed
			continue
		}
		misses = append(misses, pkg)
	}

	if len(misses) > 0 {
		if err := mod.EnsureChecked(misses, workers); err != nil {
			return nil, err
		}
		var mu sync.Mutex
		err := runLimited(misses, workers, func(pkg *Package) error {
			diags := analyzePackage(mod, pkg, analyzers)
			kept, suppressed := applySuppressions(mod, pkg, diags)
			cachePut(&mu, cache, mod.Dir, pkg.Path, actions[pkg], kept, suppressed)
			mu.Lock()
			perPkg[pkg] = kept
			res.Stats.Analyzed++
			res.Stats.Suppressed += suppressed
			mu.Unlock()
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	var diags []Diagnostic
	for _, pkg := range mod.Pkgs {
		diags = append(diags, perPkg[pkg]...)
	}
	// The go.mod dependency policy is module-level, not per-package, so
	// it runs outside the per-package cache (it is trivially cheap).
	for _, a := range analyzers {
		if a == StdlibOnly {
			diags = append(diags, goModDiagnostics(mod)...)
		}
	}
	sort.Slice(diags, func(i, j int) bool { return diagLess(diags[i], diags[j]) })
	diags, res.Stats.Baselined = opts.Baseline.apply(mod.Dir, diags)
	res.Diagnostics = diags

	if err := cache.Save(); err != nil {
		return nil, err
	}
	res.Stats.Wall = time.Since(start)
	return res, nil
}

// cachePut serializes cache writes from the analysis workers.
func cachePut(mu *sync.Mutex, cache *Cache, modDir, pkgPath, action string, diags []Diagnostic, suppressed int) {
	if cache == nil {
		return
	}
	mu.Lock()
	defer mu.Unlock()
	cache.put(modDir, pkgPath, action, diags, suppressed)
}

// analyzePackage runs every analyzer over one type-checked package and
// returns the raw (pre-suppression) diagnostics.
func analyzePackage(mod *Module, pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		a.Run(&Pass{
			Fset:     mod.Fset,
			Path:     pkg.Path,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Module:   mod,
			analyzer: a,
			diags:    &diags,
		})
	}
	return diags
}
