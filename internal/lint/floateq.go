package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Floateq bans == and != on floating-point operands outside the tensor
// package: exact float equality is how nondeterminism sneaks past the
// Equiv gates — a value that is bit-identical on one code path can
// differ in the last ulp after an algebraically equivalent refactor, so
// comparisons must go through the tensor equality helpers
// (tensor.Equal, tensor.RowEqual) or an explicit epsilon. The tensor
// package itself is exempt: it is where the repo's equality semantics
// (including the deliberate bit-exact golden-trace comparisons) are
// defined and audited. Test files are never loaded by the module walk.
// Comparisons that are genuinely exact (spike trains are 0/1 by
// construction, 0 as a documented unset sentinel) carry a
// //lint:ignore floateq directive with the justification.
var Floateq = &Analyzer{
	Name: "floateq",
	Doc:  "flags ==/!= on float operands outside internal/tensor's audited equality helpers",
	Run:  runFloateq,
}

func runFloateq(p *Pass) {
	if strings.HasSuffix(p.Path, "/internal/tensor") {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if isFloatType(typeOf(p.Info, be.X)) || isFloatType(typeOf(p.Info, be.Y)) {
				p.Reportf(be.Pos(), "float %s comparison; use tensor.Equal/RowEqual or an explicit epsilon (exact float equality breaks determinism hygiene)", be.Op)
			}
			return true
		})
	}
}

// isFloatType reports whether t's underlying type is a floating-point
// (or complex) basic type.
func isFloatType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}
