package lint

import (
	"go/ast"
)

// Deferloop flags defer statements lexically inside for/range loops:
// deferred calls run at function exit, not loop-iteration exit, so a
// defer in a loop accumulates one pending call per iteration — in the
// campaign and replay loops that means thousands of pending reverts and
// unbounded memory growth before a single one runs. A defer inside a
// func literal defined in the loop is fine (it runs when the closure
// returns), and is not flagged.
var Deferloop = &Analyzer{
	Name: "deferloop",
	Doc:  "flags defer statements inside for/range loops (they run at function exit, not per iteration)",
	Run:  runDeferloop,
}

func runDeferloop(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch l := n.(type) {
			case *ast.ForStmt:
				body = l.Body
			case *ast.RangeStmt:
				body = l.Body
			default:
				return true
			}
			reportLoopDefers(p, body)
			return true
		})
	}
}

// reportLoopDefers walks one loop body, flagging defers but not
// descending into nested function literals (their defers are scoped to
// the closure) or nested loops (each loop is visited by the outer
// Inspect in its own right, so descending would double-report).
func reportLoopDefers(p *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if n == ast.Node(body) {
			return true
		}
		switch d := n.(type) {
		case *ast.FuncLit, *ast.ForStmt, *ast.RangeStmt:
			return false
		case *ast.DeferStmt:
			p.Reportf(d.Pos(), "defer inside a loop runs at function exit, not per iteration; call the cleanup directly or wrap the body in a function")
		}
		return true
	})
}
