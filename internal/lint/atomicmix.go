package lint

import (
	"go/ast"
	"go/types"
)

// Atomicmix guards the lock-free observability registry and the
// campaign progress counters: a variable or struct field whose address
// is passed to a sync/atomic function anywhere in the package must never
// be read or written plainly elsewhere in the package. Mixing atomic and
// plain accesses to the same word is a data race even when each access
// looks innocent in isolation — the plain access carries no
// happens-before edge, so the race detector (and weaker hardware) can
// observe torn or stale values. Fields of the atomic.Int64-style wrapper
// types are immune by construction (the raw word is unexported) and are
// not tracked. The check is per-package: an unexported field cannot be
// accessed from outside its package, and the repo keeps exported state
// behind accessor methods.
var Atomicmix = &Analyzer{
	Name: "atomicmix",
	Doc:  "flags plain reads/writes of variables that are accessed via sync/atomic elsewhere",
	Run:  runAtomicmix,
}

func runAtomicmix(p *Pass) {
	// Phase 1: collect every object whose address flows into a
	// sync/atomic call, and the identifier nodes appearing inside those
	// calls (excluded from the plain-access scan).
	atomicObjs := make(map[types.Object]bool)
	inAtomic := make(map[*ast.Ident]bool)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				ue, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok {
					continue
				}
				if obj := addrTarget(p, ue.X); obj != nil {
					atomicObjs[obj] = true
				}
				markIdents(arg, inAtomic)
			}
			return true
		})
	}
	if len(atomicObjs) == 0 {
		return
	}
	// Phase 2: any other use of those objects is a plain access.
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || inAtomic[id] {
				return true
			}
			obj := p.Info.Uses[id]
			if obj == nil || !atomicObjs[obj] {
				return true
			}
			p.Reportf(id.Pos(), "%s is accessed via sync/atomic elsewhere in this package; a plain read/write races with the atomic accesses — use the atomic API (or an atomic.* typed field) consistently", id.Name)
			return true
		})
	}
}

// addrTarget resolves the object whose address is being taken: the field
// object for selector expressions (x.f, possibly nested), the variable
// object for plain identifiers; nil for anything else (index
// expressions, temporaries).
func addrTarget(p *Pass, e ast.Expr) types.Object {
	switch t := ast.Unparen(e).(type) {
	case *ast.Ident:
		return p.Info.Uses[t]
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[t]; ok {
			return sel.Obj()
		}
		return p.Info.Uses[t.Sel]
	}
	return nil
}

// markIdents records every identifier under e.
func markIdents(e ast.Expr, set map[*ast.Ident]bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			set[id] = true
		}
		return true
	})
}
