package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"regexp"
	"strings"
)

// Metricname enforces the repo's metric naming convention at every obs
// registration site (NewCounter, NewGauge, NewTimingHistogram). Names
// are Prometheus series names, so they must be valid exposition
// identifiers and self-describing: snake_case `subsystem_noun_unit`
// with at least two segments (e.g. snn_layer_steps_total). Unit
// suffixes are tied to the metric kind — counters end in _total,
// timing histograms in _seconds, and gauges carry neither (a gauge
// named like a counter or histogram lies about its semantics). The
// name must also be a compile-time constant: /metrics renders names
// unescaped, so dynamic names would bypass this check entirely.
var Metricname = &Analyzer{
	Name: "metricname",
	Doc:  "enforces the subsystem_noun_unit naming convention at obs metric registration sites",
	Run:  runMetricname,
}

// metricRegisterFuncs maps each registration entry point to its metric
// kind.
var metricRegisterFuncs = map[string]string{
	"github.com/repro/snntest/internal/obs.NewCounter":         "counter",
	"github.com/repro/snntest/internal/obs.NewGauge":           "gauge",
	"github.com/repro/snntest/internal/obs.NewTimingHistogram": "histogram",
}

// metricNameRe is the shape rule: lowercase snake_case, two or more
// segments, each starting alphanumeric.
var metricNameRe = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)+$`)

func runMetricname(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			var kind string
			for fullName, k := range metricRegisterFuncs {
				if isCallTo(p, call, fullName) {
					kind = k
					break
				}
			}
			if kind == "" {
				return true
			}
			tv, ok := p.Info.Types[call.Args[0]]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				p.Reportf(call.Args[0].Pos(),
					"metric name must be a compile-time string constant, not a computed value")
				return true
			}
			checkMetricName(p, call.Args[0].Pos(), kind, constant.StringVal(tv.Value))
			return true
		})
	}
}

// checkMetricName applies the shape and unit-suffix rules to one
// registered name.
func checkMetricName(p *Pass, pos token.Pos, kind, name string) {
	if !metricNameRe.MatchString(name) {
		p.Reportf(pos, "metric name %q is not subsystem_noun_unit snake_case (want %s)", name, metricNameRe)
		return
	}
	switch kind {
	case "counter":
		if !strings.HasSuffix(name, "_total") {
			p.Reportf(pos, "counter name %q must end in _total", name)
		}
	case "histogram":
		if !strings.HasSuffix(name, "_seconds") {
			p.Reportf(pos, "timing histogram name %q must end in _seconds", name)
		}
	case "gauge":
		if strings.HasSuffix(name, "_total") || strings.HasSuffix(name, "_seconds") {
			p.Reportf(pos, "gauge name %q must not use the counter/histogram unit suffixes _total and _seconds", name)
		}
	}
}
