package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Determinism flags two sources of run-to-run nondeterminism that would
// silently invalidate the repo's bit-reproducible fault-coverage
// numbers:
//
//  1. calls to math/rand's package-level functions, which draw from the
//     shared globally-seeded source (constructors like rand.New and
//     rand.NewSource are fine — they are how seeded *rand.Rand values
//     are made);
//  2. range statements over maps whose body accumulates into floats
//     (iteration order changes floating-point rounding) or appends to a
//     slice (iteration order becomes data) — unless the enclosing
//     function visibly sorts, which is the canonical
//     collect-keys-then-sort fix.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "flags global math/rand use and order-sensitive map iteration",
	Run:  runDeterminism,
}

// globalRandFuncs are the math/rand package-level functions backed by
// the shared global source.
var globalRandFuncs = map[string]bool{
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
}

func runDeterminism(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			sorts := callsSort(p, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch e := n.(type) {
				case *ast.SelectorExpr:
					if fn, ok := p.Info.Uses[e.Sel].(*types.Func); ok &&
						fn.Pkg() != nil && fn.Pkg().Path() == "math/rand" &&
						fn.Type().(*types.Signature).Recv() == nil &&
						globalRandFuncs[fn.Name()] {
						p.Reportf(e.Pos(), "rand.%s draws from the shared global source; thread a seeded *rand.Rand instead", fn.Name())
					}
				case *ast.RangeStmt:
					if t := p.Info.TypeOf(e.X); t != nil {
						if _, isMap := t.Underlying().(*types.Map); isMap {
							if reason := orderSensitive(p, e.Body, sorts); reason != "" {
								p.Reportf(e.Pos(), "map iteration order is random and the body %s; iterate over sorted keys", reason)
							}
						}
					}
				}
				return true
			})
		}
	}
}

// orderSensitive reports why a map-range body leaks iteration order into
// its results, or "" if it does not. sorted suppresses the append check:
// collecting keys for a subsequent sort is the canonical fix.
func orderSensitive(p *Pass, body *ast.BlockStmt, sorted bool) string {
	reason := ""
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			for _, lhs := range as.Lhs {
				if isFloat(p.Info.TypeOf(lhs)) {
					reason = "accumulates into a float (rounding depends on order)"
					return false
				}
			}
		case token.ASSIGN, token.DEFINE:
			if sorted {
				return true
			}
			for _, rhs := range as.Rhs {
				if call, ok := rhs.(*ast.CallExpr); ok && isBuiltinAppend(p, call) {
					reason = "appends in map order"
					return false
				}
			}
		}
		return true
	})
	return reason
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isBuiltinAppend(p *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, ok = p.Info.Uses[id].(*types.Builtin)
	return ok
}

// callsSort reports whether the function body calls anything from
// package sort or slices (a visible "results are re-ordered" signal).
func callsSort(p *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if fn, ok := p.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil {
			if path := fn.Pkg().Path(); path == "sort" || path == "slices" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
