package lint

import (
	"go/ast"
	"go/types"
)

// Ctxflow catches the span-parenting and cancellation bugs the
// observability layer is prone to: a function that receives a
// context.Context must thread that context into its module-internal
// callees — passing context.Background() or context.TODO() (or a nil
// context) instead silently detaches the callee from the caller's span
// tree and cancellation, which is exactly the class of bug PRs 3–5
// fixed by hand in the generator and campaign plumbing. Calls into
// other modules (stdlib included) are not checked: detaching is
// sometimes the point at a process boundary, and the repo's invariant
// is about its own span tree.
var Ctxflow = &Analyzer{
	Name: "ctxflow",
	Doc:  "flags ctx-receiving functions that pass context.Background/TODO/nil to module-internal callees",
	Run:  runCtxflow,
}

func runCtxflow(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasCtxParam(p, fd) {
				continue
			}
			checkCtxFlow(p, fd)
		}
	}
}

// hasCtxParam reports whether the function declares a context.Context
// parameter (named, blank or unnamed).
func hasCtxParam(p *Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		if isContextType(typeOf(p.Info, field.Type)) {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

func checkCtxFlow(p *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(p.Info, call)
		if fn == nil || !moduleInternalFunc(p, fn) {
			return true
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			return true
		}
		for i, arg := range call.Args {
			if i >= sig.Params().Len() || !isContextType(sig.Params().At(i).Type()) {
				continue
			}
			switch c := callOrNil(arg); {
			case c != nil && (isCallTo(p, c, "context.Background") || isCallTo(p, c, "context.TODO")):
				p.Reportf(arg.Pos(), "%s receives a context but passes a fresh %s to %s; thread the incoming context so spans parent and cancellation propagates", fd.Name.Name, ctxCallString(arg), fn.Name())
			case isNilExpr(p, arg):
				p.Reportf(arg.Pos(), "%s receives a context but passes nil to %s; thread the incoming context", fd.Name.Name, fn.Name())
			}
		}
		return true
	})
}

// callOrNil returns e as a call expression, or nil (isCallTo tolerates
// nil).
func callOrNil(e ast.Expr) *ast.CallExpr {
	call, _ := ast.Unparen(e).(*ast.CallExpr)
	return call
}

// isNilExpr reports whether e is the untyped nil.
func isNilExpr(p *Pass, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	return ok && tv.IsNil()
}

// ctxCallString renders short call expressions like context.Background().
func ctxCallString(e ast.Expr) string {
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if x, ok := sel.X.(*ast.Ident); ok {
				return x.Name + "." + sel.Sel.Name + "()"
			}
		}
	}
	return "context"
}
