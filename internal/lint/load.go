package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package of the module.
type Package struct {
	Path  string // import path
	Dir   string
	Files []*ast.File // non-test files only
	Types *types.Package
	Info  *types.Info

	deps []string // module-internal imports
}

// Module is the fully loaded Go module under analysis.
type Module struct {
	Path  string // module path from go.mod
	Dir   string // directory containing go.mod
	GoMod string // raw go.mod contents
	Fset  *token.FileSet
	Pkgs  []*Package // topologically sorted, dependencies first

	byPath   map[string]*Package
	importer types.Importer
}

// LoadModule locates the go.mod at or above dir, then parses and
// type-checks every non-test, non-testdata package of the module.
func LoadModule(dir string) (*Module, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, modPath, goMod, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	mod := &Module{
		Path:   modPath,
		Dir:    root,
		GoMod:  goMod,
		Fset:   token.NewFileSet(),
		byPath: make(map[string]*Package),
	}
	mod.importer = &moduleImporter{
		mod: mod,
		std: importer.ForCompiler(mod.Fset, "source", nil),
	}

	if err := mod.parseAll(); err != nil {
		return nil, err
	}
	ordered, err := mod.topoSort()
	if err != nil {
		return nil, err
	}
	for _, pkg := range ordered {
		if err := mod.check(pkg); err != nil {
			return nil, err
		}
	}
	mod.Pkgs = ordered
	return mod, nil
}

// findModule walks upward from dir to the nearest go.mod.
func findModule(dir string) (root, modPath, goMod string, err error) {
	for d := dir; ; {
		data, rerr := os.ReadFile(filepath.Join(d, "go.mod"))
		if rerr == nil {
			mp := parseModulePath(string(data))
			if mp == "" {
				return "", "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
			}
			return d, mp, string(data), nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", "", fmt.Errorf("lint: no go.mod found at or above %s", dir)
		}
		d = parent
	}
}

func parseModulePath(goMod string) string {
	for _, line := range strings.Split(goMod, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// parseAll discovers every package directory (skipping testdata, hidden
// and underscore-prefixed directories) and parses its non-test files.
func (m *Module) parseAll() error {
	return filepath.WalkDir(m.Dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != m.Dir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		var files []*ast.File
		for _, e := range entries {
			fn := e.Name()
			if e.IsDir() || !strings.HasSuffix(fn, ".go") || strings.HasSuffix(fn, "_test.go") {
				continue
			}
			f, perr := parser.ParseFile(m.Fset, filepath.Join(path, fn), nil, parser.ParseComments)
			if perr != nil {
				return fmt.Errorf("lint: %w", perr)
			}
			files = append(files, f)
		}
		if len(files) == 0 {
			return nil
		}
		rel, err := filepath.Rel(m.Dir, path)
		if err != nil {
			return err
		}
		importPath := m.Path
		if rel != "." {
			importPath = m.Path + "/" + filepath.ToSlash(rel)
		}
		pkg := &Package{Path: importPath, Dir: path, Files: files}
		for _, f := range files {
			for _, spec := range f.Imports {
				ip := strings.Trim(spec.Path.Value, `"`)
				if ip == m.Path || strings.HasPrefix(ip, m.Path+"/") {
					pkg.deps = append(pkg.deps, ip)
				}
			}
		}
		m.byPath[importPath] = pkg
		return nil
	})
}

// topoSort orders packages dependencies-first so type-checking can
// resolve module-internal imports from already-checked packages.
func (m *Module) topoSort() ([]*Package, error) {
	paths := make([]string, 0, len(m.byPath))
	for p := range m.byPath {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make(map[string]int, len(paths))
	var ordered []*Package
	var visit func(path string) error
	visit = func(path string) error {
		pkg, ok := m.byPath[path]
		if !ok {
			return fmt.Errorf("lint: import %q not found in module", path)
		}
		switch state[path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("lint: import cycle through %q", path)
		}
		state[path] = visiting
		deps := append([]string(nil), pkg.deps...)
		sort.Strings(deps)
		for _, dep := range deps {
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[path] = done
		ordered = append(ordered, pkg)
		return nil
	}
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return ordered, nil
}

// check type-checks pkg with full info recording.
func (m *Module) check(pkg *Package) error {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: m.importer}
	tpkg, err := conf.Check(pkg.Path, m.Fset, pkg.Files, info)
	if err != nil {
		return fmt.Errorf("lint: type-checking %s: %w", pkg.Path, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
	return nil
}

// CheckPackage parses and type-checks the given source files as a
// standalone package with the given import path, resolving imports
// against this module. Golden-fixture tests use it to lint testdata
// files that the module walk deliberately skips. With typecheck false
// the files are only parsed (for fixtures that import unresolvable
// paths on purpose); analyzers run on such a package must not consult
// type info.
func (m *Module) CheckPackage(path string, filenames []string, typecheck bool) (*Package, error) {
	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(m.Fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	pkg := &Package{Path: path, Files: files}
	if !typecheck {
		pkg.Info = &types.Info{}
		return pkg, nil
	}
	if err := m.check(pkg); err != nil {
		return nil, err
	}
	return pkg, nil
}

// moduleImporter resolves module-internal imports from the already
// type-checked packages and everything else from GOROOT source.
type moduleImporter struct {
	mod *Module
	std types.Importer
}

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	return mi.ImportFrom(path, "", 0)
}

func (mi *moduleImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if pkg, ok := mi.mod.byPath[path]; ok {
		if pkg.Types == nil {
			return nil, fmt.Errorf("lint: %s imported before it was checked (cycle?)", path)
		}
		return pkg.Types, nil
	}
	if path == mi.mod.Path || strings.HasPrefix(path, mi.mod.Path+"/") {
		return nil, fmt.Errorf("lint: module package %s not found", path)
	}
	if from, ok := mi.std.(types.ImporterFrom); ok {
		return from.ImportFrom(path, dir, mode)
	}
	return mi.std.Import(path)
}
