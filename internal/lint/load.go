package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Package is one package of the module. ScanModule populates the cheap
// metadata (directory, file bytes, import graph, content hash); the full
// ASTs and type information are filled in lazily by EnsureChecked, so a
// cache-hit run never pays for parsing bodies or type-checking.
type Package struct {
	Path  string // import path
	Dir   string
	Files []*ast.File // non-test files; nil until parsed by EnsureChecked
	Types *types.Package
	Info  *types.Info

	fileNames []string          // sorted absolute paths of the non-test .go files
	srcs      map[string][]byte // file path → raw bytes (from the scan)
	deps      []string          // module-internal imports
	hash      string            // content hash over fileNames+srcs
	parsed    bool
	checked   bool
}

// Hash returns the hex content hash of the package's non-test sources.
func (p *Package) Hash() string { return p.hash }

// Module is the scanned Go module under analysis.
type Module struct {
	Path  string // module path from go.mod
	Dir   string // directory containing go.mod
	GoMod string // raw go.mod contents
	Fset  *token.FileSet
	Pkgs  []*Package // topologically sorted, dependencies first

	byPath   map[string]*Package
	importer types.Importer
	impMu    sync.Mutex // serializes the shared (GOROOT source) importer
}

// LoadModule scans the module and parses + type-checks every package —
// the full, non-incremental load used by the golden-fixture tests and by
// callers that need every package's type information up front.
func LoadModule(dir string) (*Module, error) {
	mod, err := ScanModule(dir)
	if err != nil {
		return nil, err
	}
	if err := mod.EnsureChecked(mod.Pkgs, runtime.GOMAXPROCS(0)); err != nil {
		return nil, err
	}
	return mod, nil
}

// ScanModule locates the go.mod at or above dir and performs the cheap
// discovery pass: it reads every non-test .go file of the module, parses
// import clauses only, builds the dependency graph in topological order
// and computes per-package content hashes. No function bodies are parsed
// and nothing is type-checked.
func ScanModule(dir string) (*Module, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, modPath, goMod, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	mod := &Module{
		Path:   modPath,
		Dir:    root,
		GoMod:  goMod,
		Fset:   token.NewFileSet(),
		byPath: make(map[string]*Package),
	}
	mod.importer = &moduleImporter{
		mod: mod,
		std: importer.ForCompiler(mod.Fset, "source", nil),
	}

	if err := mod.scanAll(); err != nil {
		return nil, err
	}
	ordered, err := mod.topoSort()
	if err != nil {
		return nil, err
	}
	mod.Pkgs = ordered
	for _, pkg := range ordered {
		pkg.hash = contentHash(pkg)
	}
	return mod, nil
}

// findModule walks upward from dir to the nearest go.mod.
func findModule(dir string) (root, modPath, goMod string, err error) {
	for d := dir; ; {
		data, rerr := os.ReadFile(filepath.Join(d, "go.mod"))
		if rerr == nil {
			mp := parseModulePath(string(data))
			if mp == "" {
				return "", "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
			}
			return d, mp, string(data), nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", "", fmt.Errorf("lint: no go.mod found at or above %s", dir)
		}
		d = parent
	}
}

func parseModulePath(goMod string) string {
	for _, line := range strings.Split(goMod, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// scanAll discovers every package directory (skipping testdata, hidden
// and underscore-prefixed directories), reads its non-test files and
// parses their import clauses.
func (m *Module) scanAll() error {
	return filepath.WalkDir(m.Dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != m.Dir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		pkg := &Package{Dir: path, srcs: make(map[string][]byte)}
		depSet := make(map[string]bool)
		for _, e := range entries {
			fn := e.Name()
			if e.IsDir() || !strings.HasSuffix(fn, ".go") || strings.HasSuffix(fn, "_test.go") {
				continue
			}
			full := filepath.Join(path, fn)
			src, rerr := os.ReadFile(full)
			if rerr != nil {
				return rerr
			}
			// Imports-only parse: enough for the dependency graph; full
			// ASTs are built lazily for the packages that need analysis.
			f, perr := parser.ParseFile(token.NewFileSet(), full, src, parser.ImportsOnly)
			if perr != nil {
				return fmt.Errorf("lint: %w", perr)
			}
			pkg.fileNames = append(pkg.fileNames, full)
			pkg.srcs[full] = src
			for _, spec := range f.Imports {
				ip := strings.Trim(spec.Path.Value, `"`)
				if ip == m.Path || strings.HasPrefix(ip, m.Path+"/") {
					depSet[ip] = true
				}
			}
		}
		if len(pkg.fileNames) == 0 {
			return nil
		}
		sort.Strings(pkg.fileNames)
		rel, err := filepath.Rel(m.Dir, path)
		if err != nil {
			return err
		}
		pkg.Path = m.Path
		if rel != "." {
			pkg.Path = m.Path + "/" + filepath.ToSlash(rel)
		}
		for dep := range depSet {
			pkg.deps = append(pkg.deps, dep)
		}
		sort.Strings(pkg.deps)
		m.byPath[pkg.Path] = pkg
		return nil
	})
}

// contentHash digests the package's file names and bytes.
func contentHash(pkg *Package) string {
	h := sha256.New()
	for _, fn := range pkg.fileNames {
		fmt.Fprintf(h, "%s\x00%d\x00", filepath.Base(fn), len(pkg.srcs[fn]))
		h.Write(pkg.srcs[fn])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// topoSort orders packages dependencies-first so type-checking can
// resolve module-internal imports from already-checked packages.
func (m *Module) topoSort() ([]*Package, error) {
	paths := make([]string, 0, len(m.byPath))
	for p := range m.byPath {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make(map[string]int, len(paths))
	var ordered []*Package
	var visit func(path string) error
	visit = func(path string) error {
		pkg, ok := m.byPath[path]
		if !ok {
			return fmt.Errorf("lint: import %q not found in module", path)
		}
		switch state[path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("lint: import cycle through %q", path)
		}
		state[path] = visiting
		for _, dep := range pkg.deps {
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[path] = done
		ordered = append(ordered, pkg)
		return nil
	}
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return ordered, nil
}

// closure returns targets plus all their transitive module-internal
// dependencies, in the module's topological order.
func (m *Module) closure(targets []*Package) []*Package {
	need := make(map[*Package]bool)
	var add func(p *Package)
	add = func(p *Package) {
		if need[p] {
			return
		}
		need[p] = true
		for _, dep := range p.deps {
			add(m.byPath[dep])
		}
	}
	for _, p := range targets {
		add(p)
	}
	out := make([]*Package, 0, len(need))
	for _, p := range m.Pkgs {
		if need[p] {
			out = append(out, p)
		}
	}
	return out
}

// parse builds the package's full ASTs (with comments) from the bytes
// captured at scan time.
func (m *Module) parse(pkg *Package) error {
	if pkg.parsed {
		return nil
	}
	for _, fn := range pkg.fileNames {
		f, err := parser.ParseFile(m.Fset, fn, pkg.srcs[fn], parser.ParseComments)
		if err != nil {
			return fmt.Errorf("lint: %w", err)
		}
		pkg.Files = append(pkg.Files, f)
	}
	pkg.parsed = true
	return nil
}

// EnsureChecked parses and type-checks the given packages plus their
// transitive module-internal dependencies, running up to workers
// type-checks concurrently. Packages are scheduled dependencies-first:
// a package starts checking only after every dependency has finished,
// so the shared module importer always resolves internal imports from
// completed packages. Already-checked packages are skipped, making the
// call idempotent and incremental.
func (m *Module) EnsureChecked(targets []*Package, workers int) error {
	if workers < 1 {
		workers = 1
	}
	need := m.closure(targets)
	var todo []*Package
	for _, pkg := range need {
		if !pkg.checked {
			todo = append(todo, pkg)
		}
	}
	if len(todo) == 0 {
		return nil
	}
	// token.FileSet is internally synchronized, so the full parses can
	// proceed concurrently before any type-checking starts.
	if err := runLimited(todo, workers, m.parse); err != nil {
		return err
	}

	done := make(map[*Package]chan struct{}, len(todo))
	for _, pkg := range todo {
		done[pkg] = make(chan struct{})
	}
	errs := make([]error, len(todo))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, pkg := range todo {
		wg.Add(1)
		go func(i int, pkg *Package) {
			defer wg.Done()
			defer close(done[pkg])
			// Wait for module-internal dependencies being checked in
			// this round; dependencies outside todo are already checked.
			for _, dep := range pkg.deps {
				if ch, ok := done[m.byPath[dep]]; ok {
					<-ch
				}
			}
			sem <- struct{}{}
			defer func() { <-sem }()
			errs[i] = m.check(pkg)
		}(i, pkg)
	}
	wg.Wait()
	// Report the first error in topological order so the message is
	// deterministic and names the root cause, not a dependent's
	// importer failure.
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runLimited applies fn to every package with at most workers running
// concurrently, returning the first error in slice order.
func runLimited(pkgs []*Package, workers int, fn func(*Package) error) error {
	errs := make([]error, len(pkgs))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, pkg := range pkgs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, pkg *Package) {
			defer wg.Done()
			defer func() { <-sem }()
			errs[i] = fn(pkg)
		}(i, pkg)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// check type-checks pkg with full info recording. Dependencies must be
// checked already (EnsureChecked's scheduler guarantees it).
func (m *Module) check(pkg *Package) error {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: m.importer}
	tpkg, err := conf.Check(pkg.Path, m.Fset, pkg.Files, info)
	if err != nil {
		return fmt.Errorf("lint: type-checking %s: %w", pkg.Path, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
	pkg.checked = true
	return nil
}

// CheckPackage parses and type-checks the given source files as a
// standalone package with the given import path, resolving imports
// against this module. Golden-fixture tests use it to lint testdata
// files that the module walk deliberately skips. With typecheck false
// the files are only parsed (for fixtures that import unresolvable
// paths on purpose); analyzers run on such a package must not consult
// type info.
func (m *Module) CheckPackage(path string, filenames []string, typecheck bool) (*Package, error) {
	pkg := &Package{Path: path, srcs: make(map[string][]byte)}
	for _, fn := range filenames {
		src, err := os.ReadFile(fn)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		f, perr := parser.ParseFile(m.Fset, fn, src, parser.ParseComments)
		if perr != nil {
			return nil, fmt.Errorf("lint: %w", perr)
		}
		pkg.Files = append(pkg.Files, f)
		pkg.fileNames = append(pkg.fileNames, fn)
		pkg.srcs[fn] = src
	}
	pkg.parsed = true
	if !typecheck {
		pkg.Info = &types.Info{}
		return pkg, nil
	}
	if err := m.check(pkg); err != nil {
		return nil, err
	}
	return pkg, nil
}

// moduleImporter resolves module-internal imports from the already
// type-checked packages and everything else from GOROOT source. The
// GOROOT source importer is not safe for concurrent use, so ImportFrom
// serializes on the module's importer lock; its internal package cache
// keeps repeat imports cheap.
type moduleImporter struct {
	mod *Module
	std types.Importer
}

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	return mi.ImportFrom(path, "", 0)
}

func (mi *moduleImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if pkg, ok := mi.mod.byPath[path]; ok {
		if pkg.Types == nil {
			return nil, fmt.Errorf("lint: %s imported before it was checked (cycle?)", path)
		}
		return pkg.Types, nil
	}
	if path == mi.mod.Path || strings.HasPrefix(path, mi.mod.Path+"/") {
		return nil, fmt.Errorf("lint: module package %s not found", path)
	}
	mi.mod.impMu.Lock()
	defer mi.mod.impMu.Unlock()
	if from, ok := mi.std.(types.ImporterFrom); ok {
		return from.ImportFrom(path, dir, mode)
	}
	return mi.std.Import(path)
}
