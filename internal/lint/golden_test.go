package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// Golden-fixture tests: each analyzer runs over a fixture package in
// testdata/<name>/ whose flagged lines carry a // want "substr" comment.
// The test fails both ways — a want line with no matching diagnostic is
// a false negative, a diagnostic with no want line a false positive —
// so every fixture exercises true positives and true negatives at once.

var (
	goldenOnce sync.Once
	goldenMod  *Module
	goldenErr  error
)

// loadGoldenModule loads (and caches) the real module: fixtures that
// need type-checking resolve module-internal imports against it.
func loadGoldenModule(t *testing.T) *Module {
	t.Helper()
	goldenOnce.Do(func() {
		goldenMod, goldenErr = LoadModule(".")
	})
	if goldenErr != nil {
		t.Fatalf("LoadModule: %v", goldenErr)
	}
	return goldenMod
}

// goldenCases pins, per analyzer, the fixture package's import path —
// chosen to land inside the analyzer's scope rules — and whether the
// fixture can be type-checked (stdlibonly's deliberately-unresolvable
// imports force a parse-only package).
var goldenCases = []struct {
	analyzer  *Analyzer
	path      string
	typecheck bool
}{
	{Rawdata, "github.com/repro/snntest/lintfixture/rawdatafix", true},
	{Panicfree, "github.com/repro/snntest/internal/lintfixture/panicfreefix", true},
	{Determinism, "github.com/repro/snntest/lintfixture/determinismfix", true},
	{Goroutinejoin, "github.com/repro/snntest/lintfixture/goroutinejoinfix", true},
	{ErrcheckLite, "github.com/repro/snntest/cmd/lintfixture", true},
	{StdlibOnly, "github.com/repro/snntest/lintfixture/stdlibonlyfix", false},
	{Spanend, "github.com/repro/snntest/lintfixture/spanendfix", true},
	{Metricname, "github.com/repro/snntest/lintfixture/metricnamefix", true},
	{Hotpathalloc, "github.com/repro/snntest/lintfixture/hotpathallocfix", true},
	{Atomicmix, "github.com/repro/snntest/lintfixture/atomicmixfix", true},
	{Ctxflow, "github.com/repro/snntest/lintfixture/ctxflowfix", true},
	{Floateq, "github.com/repro/snntest/lintfixture/floateqfix", true},
	{Deferloop, "github.com/repro/snntest/lintfixture/deferloopfix", true},
}

var wantRe = regexp.MustCompile(`// want "([^"]*)"`)

// wantKey identifies one expected-diagnostic site.
type wantKey struct {
	file string
	line int
}

// parseWants scans fixture sources for // want "substr" comments.
func parseWants(t *testing.T, filenames []string) map[wantKey][]string {
	t.Helper()
	wants := make(map[wantKey][]string)
	for _, fn := range filenames {
		data, err := os.ReadFile(fn)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				k := wantKey{fn, i + 1}
				wants[k] = append(wants[k], m[1])
			}
		}
	}
	return wants
}

func TestGoldenFixtures(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.analyzer.Name, func(t *testing.T) {
			mod := loadGoldenModule(t)
			dir := filepath.Join("testdata", tc.analyzer.Name)
			entries, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			var files []string
			for _, e := range entries {
				if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
					files = append(files, filepath.Join(dir, e.Name()))
				}
			}
			if len(files) == 0 {
				t.Fatalf("no fixture files in %s", dir)
			}

			pkg, err := mod.CheckPackage(tc.path, files, tc.typecheck)
			if err != nil {
				t.Fatalf("CheckPackage: %v", err)
			}
			diags := RunPackage(mod, pkg, tc.analyzer)

			wants := parseWants(t, files)
			for _, d := range diags {
				k := wantKey{d.File, d.Line}
				idx := -1
				for i, w := range wants[k] {
					if strings.Contains(d.Message, w) {
						idx = i
						break
					}
				}
				if idx < 0 {
					t.Errorf("unexpected diagnostic (false positive): %s", d)
					continue
				}
				wants[k] = append(wants[k][:idx], wants[k][idx+1:]...)
				if len(wants[k]) == 0 {
					delete(wants, k)
				}
			}
			for k, subs := range wants {
				for _, w := range subs {
					t.Errorf("missing diagnostic (false negative) at %s:%d: want message containing %q", k.file, k.line, w)
				}
			}
		})
	}
}

// TestGoldenFixturesCoverEveryAnalyzer keeps the fixture table in lock
// step with the registered suite: adding an analyzer without a golden
// fixture is itself a test failure.
func TestGoldenFixturesCoverEveryAnalyzer(t *testing.T) {
	covered := make(map[string]bool)
	for _, tc := range goldenCases {
		covered[tc.analyzer.Name] = true
	}
	for _, a := range All() {
		if !covered[a.Name] {
			t.Errorf("analyzer %s has no golden fixture", a.Name)
		}
	}
}

// TestGoModPolicy exercises the module-level half of stdlibonly: a
// require directive is a diagnostic, and the real go.mod has none.
func TestGoModPolicy(t *testing.T) {
	if diags := goModDiagnostics(&Module{Dir: "x", GoMod: "module m\n\ngo 1.22\n"}); len(diags) != 0 {
		t.Errorf("clean go.mod produced diagnostics: %v", diags)
	}
	bad := "module m\n\nrequire example.com/dep v1.0.0\n\nrequire (\n\texample.com/other v0.2.0\n)\n"
	diags := goModDiagnostics(&Module{Dir: "x", GoMod: bad})
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics for two requires: %v", len(diags), diags)
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "stdlib-only by policy") {
			t.Errorf("unexpected message: %s", d.Message)
		}
	}
	mod := loadGoldenModule(t)
	if diags := goModDiagnostics(mod); len(diags) != 0 {
		t.Errorf("repo go.mod violates the stdlib-only policy: %v", diags)
	}
}

// TestRunModuleClean is the self-gate: the full suite over the real
// module must report zero findings, mirroring verify.sh.
func TestRunModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("module-wide lint run is slow")
	}
	mod := loadGoldenModule(t)
	diags := Run(mod, All())
	for _, d := range diags {
		t.Error(fmt.Sprintf("unexpected finding: %s", d))
	}
}
