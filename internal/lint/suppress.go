package lint

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
)

// SuppressAnalyzer is the analyzer name attached to diagnostics produced
// by the suppression machinery itself (malformed and unused directives).
// It is driver-level, not part of All(): directives are a property of
// the finding pipeline, not of any one analysis.
const SuppressAnalyzer = "suppress"

// directive is one parsed //lint:ignore comment.
type directive struct {
	file     string
	line     int // line the directive appears on
	target   int // line whose diagnostics it suppresses
	analyzer string
	reason   string
	used     bool
}

const directivePrefix = "lint:ignore"

// parseDirectives scans the package's comments for
//
//	//lint:ignore <analyzer> <reason>
//
// directives. A trailing directive (code before it on the same line)
// suppresses matching diagnostics on its own line; a directive alone on
// a line suppresses the line below it. Malformed directives (missing
// analyzer or reason) are reported as findings — a suppression without a
// recorded reason defeats the audit trail the mechanism exists for.
func parseDirectives(mod *Module, pkg *Package, report func(Diagnostic)) []*directive {
	var dirs []*directive
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+directivePrefix)
				if !ok {
					continue
				}
				pos := mod.Fset.Position(c.Pos())
				d := &directive{file: pos.Filename, line: pos.Line}
				fields := strings.Fields(text)
				if len(fields) < 2 {
					report(Diagnostic{
						Analyzer: SuppressAnalyzer,
						File:     pos.Filename,
						Line:     pos.Line,
						Col:      pos.Column,
						Message:  "malformed //lint:ignore directive: want \"//lint:ignore <analyzer> <reason>\"",
					})
					continue
				}
				d.analyzer = fields[0]
				d.reason = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(text), fields[0]))
				d.target = d.line
				if ownLine(pkg, pos.Filename, pos.Line, pos.Column) {
					d.target = d.line + 1
				}
				dirs = append(dirs, d)
			}
		}
	}
	return dirs
}

// ownLine reports whether the directive at (file, line, col) has only
// whitespace before it on its line, i.e. it is not trailing code.
func ownLine(pkg *Package, file string, line, col int) bool {
	src, ok := pkg.srcs[file]
	if !ok {
		return false
	}
	// Find the start of the directive's line.
	lines := bytes.Split(src, []byte("\n"))
	if line-1 >= len(lines) {
		return false
	}
	prefix := lines[line-1]
	if col-1 <= len(prefix) {
		prefix = prefix[:col-1]
	}
	return len(bytes.TrimSpace(prefix)) == 0
}

// applySuppressions filters diags through the package's //lint:ignore
// directives: a diagnostic whose analyzer and line match a directive is
// dropped (and the directive marked used). It returns the surviving
// diagnostics, appending one finding per unused directive — a directive
// that suppresses nothing is dead weight that would silently mask a
// future regression at a different line, so it must be deleted or
// updated. The returned count is the number of suppressed findings.
func applySuppressions(mod *Module, pkg *Package, diags []Diagnostic) (kept []Diagnostic, suppressed int) {
	var dirDiags []Diagnostic
	dirs := parseDirectives(mod, pkg, func(d Diagnostic) { dirDiags = append(dirDiags, d) })
	if len(dirs) == 0 && len(dirDiags) == 0 {
		return diags, 0
	}
	byKey := make(map[string][]*directive)
	for _, d := range dirs {
		key := fmt.Sprintf("%s\x00%d\x00%s", d.file, d.target, d.analyzer)
		byKey[key] = append(byKey[key], d)
	}
	kept = diags[:0:0]
	for _, dg := range diags {
		key := fmt.Sprintf("%s\x00%d\x00%s", dg.File, dg.Line, dg.Analyzer)
		if ds := byKey[key]; len(ds) > 0 {
			for _, d := range ds {
				d.used = true
			}
			suppressed++
			continue
		}
		kept = append(kept, dg)
	}
	for _, d := range dirs {
		if !d.used {
			kept = append(kept, Diagnostic{
				Analyzer: SuppressAnalyzer,
				File:     d.file,
				Line:     d.line,
				Message:  fmt.Sprintf("unused //lint:ignore directive for %s (no matching finding on line %d)", d.analyzer, d.target),
			})
		}
	}
	kept = append(kept, dirDiags...)
	sort.Slice(kept, func(i, j int) bool { return diagLess(kept[i], kept[j]) })
	return kept, suppressed
}
