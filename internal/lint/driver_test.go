package lint

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// writeModule lays out a temp module from a map of relative path →
// contents and returns its root.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for rel, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// dirtyModule is a three-package module (c → b → a) with deliberate
// deferloop and floateq findings spread across packages, so driver tests
// exercise real multi-package output rather than an empty slice.
func dirtyModule(t *testing.T) string {
	return writeModule(t, map[string]string{
		"go.mod": "module example.com/dirty\n\ngo 1.22\n",
		"a/a.go": `package a

func Close(fns []func()) {
	for _, f := range fns {
		defer f()
	}
}

func Same(x, y float64) bool { return x == y }
`,
		"b/b.go": `package b

import "example.com/dirty/a"

func Both(x float64, fns []func()) bool {
	a.Close(fns)
	return x != 0
}
`,
		"c/c.go": `package c

import "example.com/dirty/b"

func Run(fns []func()) {
	for range fns {
		defer b.Both(0, fns)
	}
}
`,
	})
}

// TestDriverDeterministicAcrossWorkerCounts is the parallel-determinism
// gate (run under -race by verify.sh): the same module analyzed with
// 1, 2 and 8 workers, cold and repeated, must produce bit-identical
// sorted diagnostics.
func TestDriverDeterministicAcrossWorkerCounts(t *testing.T) {
	dir := dirtyModule(t)
	var want []Diagnostic
	for run, workers := range []int{1, 2, 8, 8} {
		res, err := AnalyzeModule(dir, All(), Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(res.Diagnostics) == 0 {
			t.Fatalf("workers=%d: no diagnostics from the dirty module", workers)
		}
		if run == 0 {
			want = res.Diagnostics
			continue
		}
		if !reflect.DeepEqual(res.Diagnostics, want) {
			t.Errorf("workers=%d diagnostics differ from workers=1:\n got %v\nwant %v", workers, res.Diagnostics, want)
		}
	}
}

// TestDriverDeterministicOnRealModule repeats the gate on the enclosing
// repo (zero findings, many packages, real dependency fan-in).
func TestDriverDeterministicOnRealModule(t *testing.T) {
	if testing.Short() {
		t.Skip("module-wide driver run is slow")
	}
	a, err := AnalyzeModule(".", All(), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := AnalyzeModule(".", All(), Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Diagnostics, b.Diagnostics) {
		t.Errorf("worker count changed module diagnostics:\n1: %v\n8: %v", a.Diagnostics, b.Diagnostics)
	}
}

// TestDriverCacheWarmAndInvalidation checks the three cache regimes:
// cold (everything analyzed), warm (everything cached, identical
// output), and after editing one package (only it and its dependents
// re-analyzed, output reflecting the edit).
func TestDriverCacheWarmAndInvalidation(t *testing.T) {
	dir := dirtyModule(t)
	cache := filepath.Join(dir, "cache.json")
	opts := Options{CachePath: cache}

	cold, err := AnalyzeModule(dir, All(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stats.Cached != 0 || cold.Stats.Analyzed != cold.Stats.Packages {
		t.Fatalf("cold run: %+v", cold.Stats)
	}

	warm, err := AnalyzeModule(dir, All(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.Analyzed != 0 || warm.Stats.Cached != warm.Stats.Packages {
		t.Fatalf("warm run did not serve everything from cache: %+v", warm.Stats)
	}
	if !reflect.DeepEqual(warm.Diagnostics, cold.Diagnostics) {
		t.Errorf("warm diagnostics differ:\ncold %v\nwarm %v", cold.Diagnostics, warm.Diagnostics)
	}

	// Fix package a's float comparison: a and its dependents (b, c) get
	// new action IDs; nothing else must be re-analyzed.
	src, err := os.ReadFile(filepath.Join(dir, "a/a.go"))
	if err != nil {
		t.Fatal(err)
	}
	fixed := strings.Replace(string(src), "return x == y", "return x < y || x > y", 1)
	if fixed == string(src) {
		t.Fatal("edit did not apply")
	}
	if err := os.WriteFile(filepath.Join(dir, "a/a.go"), []byte(fixed), 0o644); err != nil {
		t.Fatal(err)
	}

	edited, err := AnalyzeModule(dir, All(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if edited.Stats.Analyzed != 3 {
		t.Errorf("edit should re-analyze a, b and c, got %+v", edited.Stats)
	}
	if len(edited.Diagnostics) != len(cold.Diagnostics)-1 {
		t.Errorf("fixed finding still reported: %v", edited.Diagnostics)
	}
	for _, d := range edited.Diagnostics {
		if strings.Contains(d.File, "a.go") && d.Analyzer == "floateq" {
			t.Errorf("stale floateq finding survived the edit: %v", d)
		}
	}
}

// TestDriverCacheCorruptionIsCold asserts corruption downgrades to a
// cold run instead of failing.
func TestDriverCacheCorruptionIsCold(t *testing.T) {
	dir := dirtyModule(t)
	cache := filepath.Join(dir, "cache.json")
	if err := os.WriteFile(cache, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := AnalyzeModule(dir, All(), Options{CachePath: cache})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Cached != 0 || res.Stats.Analyzed != res.Stats.Packages {
		t.Errorf("corrupt cache was not treated as cold: %+v", res.Stats)
	}
}

// TestSuppressDirectives covers the directive pipeline: trailing and
// own-line directives suppress, unused and malformed directives are
// themselves findings.
func TestSuppressDirectives(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module example.com/sup\n\ngo 1.22\n",
		"p/p.go": `package p

func Trailing(x, y float64) bool {
	return x == y //lint:ignore floateq exact by construction in this test
}

func OwnLine(x, y float64) bool {
	//lint:ignore floateq exact by construction in this test
	return x == y
}

//lint:ignore floateq nothing to suppress here
func Unused() {}

func Malformed(x, y float64) bool {
	return x == y //lint:ignore floateq
}
`,
	})
	res, err := AnalyzeModule(dir, All(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Suppressed != 2 {
		t.Errorf("suppressed = %d, want 2 (trailing + own-line)", res.Stats.Suppressed)
	}
	var unused, malformed, floateq int
	for _, d := range res.Diagnostics {
		switch {
		case d.Analyzer == SuppressAnalyzer && strings.Contains(d.Message, "unused"):
			unused++
		case d.Analyzer == SuppressAnalyzer && strings.Contains(d.Message, "malformed"):
			malformed++
		case d.Analyzer == "floateq":
			floateq++
		}
	}
	if unused != 1 || malformed != 1 {
		t.Errorf("got %d unused and %d malformed directive findings, want 1 and 1: %v", unused, malformed, res.Diagnostics)
	}
	// Malformed directive must not suppress: its line's finding survives.
	if floateq != 1 {
		t.Errorf("got %d surviving floateq findings, want 1 (under the malformed directive): %v", floateq, res.Diagnostics)
	}
}

// TestBaselineBudget checks count-budget semantics: a baseline entry
// absorbs exactly as many matching findings as were recorded.
func TestBaselineBudget(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module example.com/bl\n\ngo 1.22\n",
		"p/p.go": `package p

func A(x, y float64) bool { return x == y }

func B(x, y float64) bool { return x == y }
`,
	})
	first, err := AnalyzeModule(dir, All(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Diagnostics) != 2 {
		t.Fatalf("want 2 findings to baseline, got %v", first.Diagnostics)
	}
	blPath := filepath.Join(dir, "baseline.json")
	// Record only ONE of the two identical findings.
	if err := WriteBaseline(blPath, dir, first.Diagnostics[:1]); err != nil {
		t.Fatal(err)
	}
	bl, err := LoadBaseline(blPath)
	if err != nil {
		t.Fatal(err)
	}
	res, err := AnalyzeModule(dir, All(), Options{Baseline: bl})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Baselined != 1 || len(res.Diagnostics) != 1 {
		t.Errorf("budget of 1 should absorb exactly one finding: baselined=%d kept=%v", res.Stats.Baselined, res.Diagnostics)
	}
	if _, err := LoadBaseline(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing baseline file must be an error")
	}
}
