package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
)

// cacheSchema versions the on-disk cache format; bump it when the entry
// layout or diagnostic semantics change incompatibly.
const cacheSchema = "snnlint-cache-v1"

// cacheEntry is one package's analysis outcome, keyed by the action ID
// that produced it. Diagnostics are stored with module-relative paths so
// the cache survives a checkout move.
type cacheEntry struct {
	Action     string       `json:"action"`
	Diags      []Diagnostic `json:"diags"`
	Suppressed int          `json:"suppressed"`
}

// Cache is the persistent per-package diagnostics cache. It maps package
// import paths to the action ID (content hash of the package, its
// transitive module-internal dependencies, the analyzer suite and the
// toolchain) that produced the stored diagnostics, so a package whose
// action ID is unchanged is served without parsing bodies, type-checking
// or running analyzers.
type Cache struct {
	path    string
	entries map[string]cacheEntry
	dirty   bool
}

// cacheFile is the on-disk representation.
type cacheFile struct {
	Schema  string                `json:"schema"`
	Entries map[string]cacheEntry `json:"entries"`
}

// OpenCache loads the cache at path; a missing, unreadable or
// schema-mismatched file yields an empty cache (the cache is a pure
// accelerator — corruption means a cold run, never an error).
func OpenCache(path string) *Cache {
	c := &Cache{path: path, entries: make(map[string]cacheEntry)}
	data, err := os.ReadFile(path)
	if err != nil {
		return c
	}
	var f cacheFile
	if json.Unmarshal(data, &f) != nil || f.Schema != cacheSchema {
		return c
	}
	if f.Entries != nil {
		c.entries = f.Entries
	}
	return c
}

// get returns the cached diagnostics for pkgPath when the stored action
// ID matches, with file paths re-anchored at modDir.
func (c *Cache) get(modDir, pkgPath, action string) (diags []Diagnostic, suppressed int, ok bool) {
	if c == nil {
		return nil, 0, false
	}
	e, found := c.entries[pkgPath]
	if !found || e.Action != action {
		return nil, 0, false
	}
	diags = make([]Diagnostic, len(e.Diags))
	for i, d := range e.Diags {
		d.File = filepath.Join(modDir, filepath.FromSlash(d.File))
		diags[i] = d
	}
	return diags, e.Suppressed, true
}

// put stores a package's freshly computed diagnostics, relativizing file
// paths against modDir.
func (c *Cache) put(modDir, pkgPath, action string, diags []Diagnostic, suppressed int) {
	if c == nil {
		return
	}
	stored := make([]Diagnostic, len(diags))
	for i, d := range diags {
		if rel, err := filepath.Rel(modDir, d.File); err == nil {
			d.File = filepath.ToSlash(rel)
		}
		stored[i] = d
	}
	c.entries[pkgPath] = cacheEntry{Action: action, Diags: stored, Suppressed: suppressed}
	c.dirty = true
}

// Save writes the cache back to disk atomically (temp file + rename).
// A clean cache is not rewritten.
func (c *Cache) Save() error {
	if c == nil || !c.dirty {
		return nil
	}
	out, err := json.MarshalIndent(cacheFile{Schema: cacheSchema, Entries: c.entries}, "", "  ")
	if err != nil {
		return err
	}
	tmp := c.path + ".tmp"
	if err := os.WriteFile(tmp, append(out, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, c.path)
}

// suiteFingerprint digests everything besides package content that can
// change analysis results: the cache schema, the Go toolchain, the
// analyzer names in order, and — crucially — the content hash of the
// lint package itself, so editing any analyzer invalidates every cached
// entry without manual version bumps.
func suiteFingerprint(mod *Module, analyzers []*Analyzer) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00", cacheSchema, runtime.Version())
	for _, a := range analyzers {
		fmt.Fprintf(h, "%s\x00", a.Name)
	}
	if self, ok := mod.byPath[mod.Path+"/internal/lint"]; ok {
		fmt.Fprintf(h, "self:%s\x00", self.hash)
	}
	fmt.Fprintf(h, "gomod:%x\x00", sha256.Sum256([]byte(mod.GoMod)))
	return hex.EncodeToString(h.Sum(nil))
}

// actionIDs computes, for every package of the module, the hash of its
// content, its transitive module-internal dependencies' content and the
// suite fingerprint. Packages are visited in topological order so each
// dependency's action ID exists before its dependents'.
func actionIDs(mod *Module, fingerprint string) map[*Package]string {
	ids := make(map[*Package]string, len(mod.Pkgs))
	for _, pkg := range mod.Pkgs {
		h := sha256.New()
		fmt.Fprintf(h, "%s\x00%s\x00%s\x00", fingerprint, pkg.Path, pkg.hash)
		deps := append([]string(nil), pkg.deps...)
		sort.Strings(deps)
		for _, dep := range deps {
			fmt.Fprintf(h, "%s\x00", ids[mod.byPath[dep]])
		}
		ids[pkg] = hex.EncodeToString(h.Sum(nil))
	}
	return ids
}
