package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// Hotpathalloc enforces the zero-allocation contract of functions marked
// with a //snn:hotpath directive comment (the LIF step kernel, in-place
// tensor kernels, replay inner loops, lock-free metric updates): inside
// such a function no heap allocation may appear — make/new/append
// builtins, composite literals, closures (func literals), interface
// conversions (including variadic ...any boxing) and variadic calls that
// materialize their argument slice are all flagged. The analysis is a
// conservative intra-procedural alloc lattice over go/types, with callee
// propagation one level deep: a hot-path function calling a
// module-internal function whose body allocates is flagged at the call
// site (callees that are themselves marked //snn:hotpath are checked in
// their own right and not re-analyzed).
//
// Error paths are exempt: allocations inside an if-branch that ends by
// calling panic or an allowlisted invariant helper (failf, checkf,
// must*, assertSameShape — the panicfree allowlist) do not count against
// the steady-state hot path.
var Hotpathalloc = &Analyzer{
	Name: "hotpathalloc",
	Doc:  "flags heap allocations (direct or one call deep) in //snn:hotpath functions",
	Run:  runHotpathalloc,
}

const hotpathDirective = "//snn:hotpath"

// isHotpath reports whether the function declaration carries the
// //snn:hotpath directive in its doc comment.
func isHotpath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == hotpathDirective || strings.HasPrefix(c.Text, hotpathDirective+" ") {
			return true
		}
	}
	return false
}

func runHotpathalloc(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpath(fd) {
				continue
			}
			checkHotpathFunc(p, fd)
		}
	}
}

func checkHotpathFunc(p *Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	// Direct allocation sites in the hot-path body.
	forEachAlloc(p.Info, fd.Body, func(n ast.Node, kind string) {
		p.Reportf(n.Pos(), "snn:hotpath function %s contains %s; hot-path code must not allocate", name, kind)
	})
	// One-level propagation through module-internal callees.
	skip := failBranches(fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if skip[n] {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(p.Info, call)
		if fn == nil || !moduleInternalFunc(p, fn) {
			return true
		}
		decl, info := findFuncDecl(p, fn)
		if decl == nil || decl.Body == nil || isHotpath(decl) {
			return true
		}
		var first string
		forEachAlloc(info, decl.Body, func(an ast.Node, kind string) {
			if first == "" {
				first = kind
			}
		})
		if first != "" {
			p.Reportf(call.Pos(), "snn:hotpath function %s calls %s, which contains %s; mark the callee //snn:hotpath or make it allocation-free", name, fn.Name(), first)
		}
		return true
	})
}

// forEachAlloc invokes report for every conservative allocation site in
// body, pruning error branches that terminate in a panic helper.
func forEachAlloc(info *types.Info, body *ast.BlockStmt, report func(ast.Node, string)) {
	skip := failBranches(body)
	ast.Inspect(body, func(n ast.Node) bool {
		if skip[n] {
			return false
		}
		switch e := n.(type) {
		case *ast.CompositeLit:
			report(e, "a composite literal")
			return true
		case *ast.FuncLit:
			report(e, "a closure (func literal)")
			// The closure's own body runs under the closure's lifetime;
			// the capture itself is the allocation flagged here.
			return false
		case *ast.CallExpr:
			if b, ok := info.Uses[calleeIdent(e)].(*types.Builtin); ok {
				switch b.Name() {
				case "make", "new":
					report(e, fmt.Sprintf("a %s call", b.Name()))
				case "append":
					report(e, "an append (growth may reallocate)")
				}
				return true
			}
			checkCallAllocs(info, e, report)
			return true
		case *ast.AssignStmt:
			for i, rhs := range e.Rhs {
				if len(e.Lhs) != len(e.Rhs) {
					break
				}
				checkInterfaceConversion(info, typeOf(info, e.Lhs[i]), rhs, report)
			}
			return true
		case *ast.ValueSpec:
			for i, v := range e.Values {
				if i >= len(e.Names) {
					break
				}
				// Declared names live in Defs, not Types.
				if obj := info.Defs[e.Names[i]]; obj != nil {
					checkInterfaceConversion(info, obj.Type(), v, report)
				}
			}
			return true
		}
		return true
	})
}

// checkCallAllocs flags interface conversions and variadic slice
// materialization in one (non-builtin) call's arguments, and explicit
// conversions to interface types.
func checkCallAllocs(info *types.Info, call *ast.CallExpr, report func(ast.Node, string)) {
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		// Explicit conversion T(x).
		if len(call.Args) == 1 {
			checkInterfaceConversion(info, tv.Type, call.Args[0], report)
		}
		return
	}
	sig, ok := typeOf(info, call.Fun).(*types.Signature)
	if !ok || sig == nil {
		return
	}
	params := sig.Params()
	np := params.Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis.IsValid() {
				// Spreading an existing slice does not allocate.
				continue
			}
			slice, ok := params.At(np - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			pt = slice.Elem()
			if i == np-1 {
				report(arg, "a variadic call (argument slice is materialized)")
			}
		case i < np:
			pt = params.At(i).Type()
		default:
			continue
		}
		checkInterfaceConversion(info, pt, arg, report)
	}
}

// checkInterfaceConversion reports when a concrete-typed expression is
// converted to an interface type (boxing allocates when the value
// escapes; the lattice is conservative and flags the conversion itself).
func checkInterfaceConversion(info *types.Info, dst types.Type, src ast.Expr, report func(ast.Node, string)) {
	if dst == nil || !types.IsInterface(dst) {
		return
	}
	tv, ok := info.Types[src]
	if !ok || tv.Type == nil || tv.IsNil() || types.IsInterface(tv.Type) {
		return
	}
	report(src, fmt.Sprintf("an interface conversion (%s boxed into %s)", tv.Type, dst))
}

// failBranches marks the bodies of if-statements that terminate by
// panicking (directly or through an allowlisted invariant helper):
// error-path allocations do not count against the hot path.
func failBranches(body *ast.BlockStmt) map[ast.Node]bool {
	skip := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		if blockPanics(ifs.Body) {
			skip[ifs.Body] = true
		}
		return true
	})
	return skip
}

// blockPanics reports whether the block's final statement is a call to
// panic or to an allowlisted invariant helper (see panicfree).
func blockPanics(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	es, ok := b.List[len(b.List)-1].(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id := calleeIdent(call)
	if id == nil {
		return false
	}
	return id.Name == "panic" || allowedPanicker(id.Name)
}

// calleeIdent returns the identifier a call expression invokes (the
// function name for plain calls, the selector name for method or
// package-qualified calls), or nil.
func calleeIdent(call *ast.CallExpr) *ast.Ident {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f
	case *ast.SelectorExpr:
		return f.Sel
	}
	return nil
}

// calleeFunc resolves the called function or method object, or nil for
// builtins, conversions and indirect calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	id := calleeIdent(call)
	if id == nil {
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// moduleInternalFunc reports whether fn is declared in this module
// (including the package under analysis itself).
func moduleInternalFunc(p *Pass, fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	mod := p.Module
	return pkg.Path() == p.Path || pkg.Path() == mod.Path || strings.HasPrefix(pkg.Path(), mod.Path+"/")
}

// findFuncDecl locates fn's declaration and the types.Info of its
// package: the analyzed package itself, or any loaded module package.
// Positions are comparable because the whole module shares one FileSet.
func findFuncDecl(p *Pass, fn *types.Func) (*ast.FuncDecl, *types.Info) {
	search := func(files []*ast.File, info *types.Info) *ast.FuncDecl {
		for _, f := range files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Pos() == fn.Pos() {
					return fd
				}
			}
		}
		return nil
	}
	if fd := search(p.Files, p.Info); fd != nil {
		return fd, p.Info
	}
	if pkg, ok := p.Module.byPath[fn.Pkg().Path()]; ok && pkg.parsed && pkg.Info != nil {
		if fd := search(pkg.Files, pkg.Info); fd != nil {
			return fd, pkg.Info
		}
	}
	return nil, nil
}

// typeOf returns the static type of e, or nil.
func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}
