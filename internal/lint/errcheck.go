package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/types"
	"strings"
)

// ErrcheckLite flags silently discarded error results in the binaries
// (cmd/...), in internal/experiments, and in internal/core — the places
// whose output IS the deliverable (a swallowed write error means a
// silently truncated table, a swallowed optimizer error a silently wrong
// stimulus). Two discard forms are flagged: call statements that drop
// every result, and mixed multi-assignments that keep some results while
// blanking an error-typed one (`res, _ := f()`). Deliberate discards stay
// available: deferred calls are skipped (the close-on-cleanup idiom), an
// all-blank assignment like `_ = f()` is an explicit marker, and package
// fmt is exempt (terminal-print best effort).
var ErrcheckLite = &Analyzer{
	Name: "errchecklite",
	Doc:  "flags discarded error returns in cmd/, internal/experiments and internal/core",
	Run:  runErrcheckLite,
}

func runErrcheckLite(p *Pass) {
	rel := strings.TrimPrefix(p.Path, p.Module.Path+"/")
	if !strings.HasPrefix(rel, "cmd/") && rel != "internal/experiments" && rel != "internal/core" {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				call, ok := stmt.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				if returnsError(p, call) && !isFmtCall(p, call) {
					p.Reportf(call.Pos(), "result of %s includes an error that is discarded; handle it or assign to _ explicitly", exprString(p, call.Fun))
				}
			case *ast.AssignStmt:
				checkBlankErrorAssign(p, stmt)
			}
			return true
		})
	}
}

// checkBlankErrorAssign flags `res, _ := f()`-style assignments: the
// statement keeps some results of a call while discarding an error-typed
// one through the blank identifier. All-blank assignments are the
// explicit-discard idiom and stay exempt.
func checkBlankErrorAssign(p *Pass, stmt *ast.AssignStmt) {
	if len(stmt.Rhs) != 1 || len(stmt.Lhs) < 2 {
		return
	}
	call, ok := stmt.Rhs[0].(*ast.CallExpr)
	if !ok || isFmtCall(p, call) {
		return
	}
	tuple, ok := p.Info.TypeOf(call).(*types.Tuple)
	if !ok || tuple.Len() != len(stmt.Lhs) {
		return
	}
	keepsAny := false
	for _, lhs := range stmt.Lhs {
		if !isBlank(lhs) {
			keepsAny = true
			break
		}
	}
	if !keepsAny {
		return
	}
	for i, lhs := range stmt.Lhs {
		if isBlank(lhs) && isErrorType(tuple.At(i).Type()) {
			p.Reportf(lhs.Pos(), "assignment blanks the error result of %s while keeping other results; handle it", exprString(p, call.Fun))
		}
	}
}

// isBlank reports whether e is the blank identifier.
func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// returnsError reports whether the call's result type is or contains
// error.
func returnsError(p *Pass, call *ast.CallExpr) bool {
	t := p.Info.TypeOf(call)
	if t == nil {
		return false
	}
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return types.Identical(t, errorType) || types.AssignableTo(t, errorType)
}

// isFmtCall reports whether the called function belongs to package fmt.
func isFmtCall(p *Pass, call *ast.CallExpr) bool {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return false
	}
	fn, ok := p.Info.Uses[id].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt"
}

func exprString(p *Pass, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, p.Fset, e); err != nil {
		return "call"
	}
	return buf.String()
}
