package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/types"
	"strings"
)

// ErrcheckLite flags call statements that silently discard an error
// result in the binaries (cmd/...) and in internal/experiments — the
// two places whose output IS the deliverable, so a swallowed write
// error means a silently truncated table. Deliberate discards stay
// available: deferred calls are skipped (the close-on-cleanup idiom),
// `_ = f()` is an explicit marker, and package fmt is exempt
// (terminal-print best effort).
var ErrcheckLite = &Analyzer{
	Name: "errchecklite",
	Doc:  "flags discarded error returns in cmd/ and internal/experiments",
	Run:  runErrcheckLite,
}

func runErrcheckLite(p *Pass) {
	rel := strings.TrimPrefix(p.Path, p.Module.Path+"/")
	if !strings.HasPrefix(rel, "cmd/") && rel != "internal/experiments" {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if returnsError(p, call) && !isFmtCall(p, call) {
				p.Reportf(call.Pos(), "result of %s includes an error that is discarded; handle it or assign to _ explicitly", exprString(p, call.Fun))
			}
			return true
		})
	}
}

// returnsError reports whether the call's result type is or contains
// error.
func returnsError(p *Pass, call *ast.CallExpr) bool {
	t := p.Info.TypeOf(call)
	if t == nil {
		return false
	}
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return types.Identical(t, errorType) || types.AssignableTo(t, errorType)
}

// isFmtCall reports whether the called function belongs to package fmt.
func isFmtCall(p *Pass, call *ast.CallExpr) bool {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return false
	}
	fn, ok := p.Info.Uses[id].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt"
}

func exprString(p *Pass, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, p.Fset, e); err != nil {
		return "call"
	}
	return buf.String()
}
