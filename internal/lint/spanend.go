package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Spanend flags obs.Start calls whose span is leaked: the span result is
// discarded, bound to the blank identifier, or never reaches an End call
// or a return statement in the enclosing function declaration. A leaked
// span stays open forever, so the trace tree shows it as still running
// and its duration is garbage. Both `defer sp.End()` and explicit
// `sp.End()` calls on any path count (the generator's per-iteration span
// must end before the loop's next pass, so it cannot defer), as does
// returning the span to a caller that owns its lifetime (the campaign
// span helper).
var Spanend = &Analyzer{
	Name: "spanend",
	Doc:  "flags obs.Start spans that are never ended and never returned",
	Run:  runSpanend,
}

const (
	obsStartFunc   = "github.com/repro/snntest/internal/obs.Start"
	obsSpanEndFunc = "(*github.com/repro/snntest/internal/obs.Span).End"
)

func runSpanend(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkSpanEnds(p, fd)
		}
	}
}

// spanBinding is one obs.Start call site and the object its span result
// was bound to (nil for the blank identifier).
type spanBinding struct {
	pos token.Pos
	obj types.Object
}

func checkSpanEnds(p *Pass, fd *ast.FuncDecl) {
	var bindings []spanBinding
	bound := make(map[*ast.CallExpr]bool)      // obs.Start calls whose results are captured or returned
	ended := make(map[types.Object]bool)       // objects with a .End() call, deferred or not
	returnedObj := make(map[types.Object]bool) // objects appearing in a return statement
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.AssignStmt:
			if len(e.Rhs) == 1 && len(e.Lhs) == 2 {
				if call, ok := e.Rhs[0].(*ast.CallExpr); ok && isCallTo(p, call, obsStartFunc) {
					bound[call] = true
					bindings = append(bindings, spanBinding{call.Pos(), lhsObject(p, e.Lhs[1])})
				}
			}
		case *ast.ValueSpec:
			if len(e.Values) == 1 && len(e.Names) == 2 {
				if call, ok := e.Values[0].(*ast.CallExpr); ok && isCallTo(p, call, obsStartFunc) {
					bound[call] = true
					bindings = append(bindings, spanBinding{call.Pos(), lhsObject(p, e.Names[1])})
				}
			}
		case *ast.CallExpr:
			if isCallTo(p, e, obsSpanEndFunc) {
				if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
					if id, ok := sel.X.(*ast.Ident); ok {
						if obj := p.Info.Uses[id]; obj != nil {
							ended[obj] = true
						}
					}
				}
			}
		case *ast.ReturnStmt:
			for _, r := range e.Results {
				switch v := r.(type) {
				case *ast.Ident:
					if obj := p.Info.Uses[v]; obj != nil {
						returnedObj[obj] = true
					}
				case *ast.CallExpr:
					// `return obs.Start(...)` hands both results to the
					// caller, which then owns the span's lifetime.
					if isCallTo(p, v, obsStartFunc) {
						bound[v] = true
					}
				}
			}
		}
		return true
	})
	// Any obs.Start call not captured above has both results discarded.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && !bound[call] && isCallTo(p, call, obsStartFunc) {
			p.Reportf(call.Pos(), "obs.Start span in %s is discarded; bind it and call End, or return it", fd.Name.Name)
		}
		return true
	})
	for _, b := range bindings {
		switch {
		case b.obj == nil:
			p.Reportf(b.pos, "obs.Start span in %s is bound to the blank identifier and can never be ended", fd.Name.Name)
		case !ended[b.obj] && !returnedObj[b.obj]:
			p.Reportf(b.pos, "obs.Start span %q in %s has no End call and is not returned", b.obj.Name(), fd.Name.Name)
		}
	}
}

// isCallTo reports whether call resolves to the package function or
// method with the given types.Func full name.
func isCallTo(p *Pass, call *ast.CallExpr, fullName string) bool {
	var id *ast.Ident
	switch f := call.Fun.(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return false
	}
	fn, ok := p.Info.Uses[id].(*types.Func)
	return ok && fn.FullName() == fullName
}

// lhsObject resolves an assignment left-hand side to its object; the
// blank identifier (and non-identifier expressions) yield nil.
func lhsObject(p *Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := p.Info.Defs[id]; obj != nil {
		return obj
	}
	return p.Info.Uses[id]
}
