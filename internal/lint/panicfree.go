package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Panicfree flags naked panic(...) calls in library packages
// (internal/...). Library code reports failures as errors; the only
// exception is the per-package invariant-check helpers (failf, checkf,
// assertSameShape, must*-prefixed functions), which document hot-path
// programmer-error chokepoints. A panic inside any other function —
// including closures it contains — is a finding.
var Panicfree = &Analyzer{
	Name: "panicfree",
	Doc:  "flags naked panics in internal/ packages outside allowlisted invariant helpers",
	Run:  runPanicfree,
}

// panicAllowlist names the invariant-helper functions that may contain
// panic calls. must*/Must* prefixed functions are also allowed.
var panicAllowlist = map[string]bool{
	"failf":           true,
	"checkf":          true,
	"invariantf":      true,
	"assertSameShape": true,
}

func allowedPanicker(name string) bool {
	return panicAllowlist[name] ||
		strings.HasPrefix(name, "must") || strings.HasPrefix(name, "Must")
}

func runPanicfree(p *Pass) {
	if !strings.Contains("/"+p.Path+"/", "/internal/") {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || allowedPanicker(fd.Name.Name) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "panic" {
					return true
				}
				if _, ok := p.Info.Uses[id].(*types.Builtin); !ok {
					return true
				}
				p.Reportf(call.Pos(), "naked panic in library function %s; return an error or route through an invariant helper (failf)", fd.Name.Name)
				return true
			})
		}
	}
}
