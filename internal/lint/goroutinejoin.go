package lint

import (
	"go/ast"
	"go/types"
)

// Goroutinejoin flags functions that start goroutines without a visible
// join in the same function body: a (*sync.WaitGroup).Wait call, a
// channel send/receive, a select statement, or a range over a channel.
// Fire-and-forget goroutines make fault-simulation campaigns
// nondeterministic and leak under load; the parallel-simulator PRs this
// gate prepares for must keep every worker pool joined.
var Goroutinejoin = &Analyzer{
	Name: "goroutinejoin",
	Doc:  "flags go statements with no visible join in the enclosing function",
	Run:  runGoroutinejoin,
}

func runGoroutinejoin(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var goStmts []*ast.GoStmt
			joined := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch e := n.(type) {
				case *ast.GoStmt:
					goStmts = append(goStmts, e)
				case *ast.SendStmt, *ast.SelectStmt:
					joined = true
				case *ast.UnaryExpr:
					if e.Op.String() == "<-" {
						joined = true
					}
				case *ast.RangeStmt:
					if t := p.Info.TypeOf(e.X); t != nil {
						if _, isChan := t.Underlying().(*types.Chan); isChan {
							joined = true
						}
					}
				case *ast.SelectorExpr:
					if fn, ok := p.Info.Uses[e.Sel].(*types.Func); ok && fn.FullName() == "(*sync.WaitGroup).Wait" {
						joined = true
					}
				}
				return true
			})
			if joined {
				continue
			}
			for _, g := range goStmts {
				p.Reportf(g.Pos(), "goroutine started in %s has no visible join; add a WaitGroup.Wait or channel synchronization in the same function", fd.Name.Name)
			}
		}
	}
}
