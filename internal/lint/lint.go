// Package lint is a small, dependency-free static-analysis framework
// built on the standard library's go/parser, go/ast and go/types, plus
// the repo-specific analyzers that guard this reproduction's invariants:
//
//   - rawdata: arithmetic indexing into raw tensor Data() slices must
//     stay inside internal/tensor (shape-safety boundary),
//   - panicfree: library packages return errors; naked panics are only
//     allowed inside named invariant-check helpers,
//   - determinism: no global math/rand state, no map-iteration-order
//     leaking into numeric results,
//   - goroutinejoin: every go statement needs a visible join,
//   - errchecklite: cmd/ and internal/experiments must not discard
//     error returns,
//   - stdlibonly: imports stay standard-library or module-internal,
//   - spanend: every obs.Start span is ended or returned in its
//     enclosing function (leaked spans corrupt trace trees),
//   - metricname: obs metric registrations use constant snake_case
//     subsystem_noun_unit names with the kind's unit suffix, so the
//     /metrics exposition stays valid and self-describing,
//   - hotpathalloc: //snn:hotpath functions contain no heap
//     allocations, directly or one module-internal call deep,
//   - atomicmix: a variable accessed via sync/atomic is never read or
//     written plainly elsewhere in its package,
//   - ctxflow: a ctx-receiving function threads its context into
//     module-internal callees instead of minting Background/TODO,
//   - floateq: no ==/!= on float operands outside internal/tensor's
//     audited equality helpers,
//   - deferloop: no defer statements inside for/range loops.
//
// The cmd/snnlint CLI drives these over the whole module through the
// incremental parallel driver (AnalyzeModule): per-package diagnostics
// are cached keyed by a content-hash action ID, unchanged packages skip
// parsing and type-checking entirely, and the rest are type-checked and
// analyzed concurrently with deterministic, worker-count-independent
// output. Findings are filtered through //lint:ignore suppression
// directives (with an unused-directive check) and an optional accepted-
// findings baseline. verify.sh wires the suite into the tier-1+ gate.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"sort"
	"sync"
)

// Diagnostic is one analyzer finding at a source position.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Fset   *token.FileSet
	Path   string // package import path
	Files  []*ast.File
	Pkg    *types.Package
	Info   *types.Info
	Module *Module

	analyzer *Analyzer
	diags    *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one named check over a package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		Rawdata, Panicfree, Determinism, Goroutinejoin, ErrcheckLite, StdlibOnly, Spanend, Metricname,
		Hotpathalloc, Atomicmix, Ctxflow, Floateq, Deferloop,
	}
}

// Run applies the analyzers to every package of a fully loaded module
// (see LoadModule) plus the module-level go.mod dependency check,
// honoring //lint:ignore suppressions, and returns diagnostics sorted by
// file, line and column. Packages are analyzed concurrently; the output
// is identical to a serial run. Incremental callers with a cache use
// AnalyzeModule instead.
func Run(mod *Module, analyzers []*Analyzer) []Diagnostic {
	workers := runtime.GOMAXPROCS(0)
	perPkg := make([][]Diagnostic, len(mod.Pkgs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, pkg := range mod.Pkgs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, pkg *Package) {
			defer wg.Done()
			defer func() { <-sem }()
			raw := analyzePackage(mod, pkg, analyzers)
			perPkg[i], _ = applySuppressions(mod, pkg, raw)
		}(i, pkg)
	}
	wg.Wait()
	var diags []Diagnostic
	for _, d := range perPkg {
		diags = append(diags, d...)
	}
	for _, a := range analyzers {
		if a == StdlibOnly {
			diags = append(diags, goModDiagnostics(mod)...)
		}
	}
	sort.Slice(diags, func(i, j int) bool { return diagLess(diags[i], diags[j]) })
	return diags
}

// diagLess is the canonical diagnostic order: file, line, column,
// analyzer, message — a total order, so sorted output is deterministic
// even when two analyzers flag the same position.
func diagLess(a, b Diagnostic) bool {
	if a.File != b.File {
		return a.File < b.File
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	if a.Col != b.Col {
		return a.Col < b.Col
	}
	if a.Analyzer != b.Analyzer {
		return a.Analyzer < b.Analyzer
	}
	return a.Message < b.Message
}

// RunPackage applies one analyzer to a single package — the golden-test
// entry point.
func RunPackage(mod *Module, pkg *Package, a *Analyzer) []Diagnostic {
	var diags []Diagnostic
	a.Run(&Pass{
		Fset:     mod.Fset,
		Path:     pkg.Path,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		Module:   mod,
		analyzer: a,
		diags:    &diags,
	})
	return diags
}
