// Package lint is a small, dependency-free static-analysis framework
// built on the standard library's go/parser, go/ast and go/types, plus
// the repo-specific analyzers that guard this reproduction's invariants:
//
//   - rawdata: arithmetic indexing into raw tensor Data() slices must
//     stay inside internal/tensor (shape-safety boundary),
//   - panicfree: library packages return errors; naked panics are only
//     allowed inside named invariant-check helpers,
//   - determinism: no global math/rand state, no map-iteration-order
//     leaking into numeric results,
//   - goroutinejoin: every go statement needs a visible join,
//   - errchecklite: cmd/ and internal/experiments must not discard
//     error returns,
//   - stdlibonly: imports stay standard-library or module-internal,
//   - spanend: every obs.Start span is ended or returned in its
//     enclosing function (leaked spans corrupt trace trees),
//   - metricname: obs metric registrations use constant snake_case
//     subsystem_noun_unit names with the kind's unit suffix, so the
//     /metrics exposition stays valid and self-describing.
//
// The cmd/snnlint CLI drives these over the whole module; verify.sh
// wires them into the tier-1+ gate.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one analyzer finding at a source position.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Fset   *token.FileSet
	Path   string // package import path
	Files  []*ast.File
	Pkg    *types.Package
	Info   *types.Info
	Module *Module

	analyzer *Analyzer
	diags    *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one named check over a package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{Rawdata, Panicfree, Determinism, Goroutinejoin, ErrcheckLite, StdlibOnly, Spanend, Metricname}
}

// Run applies the analyzers to every package of the module plus the
// module-level go.mod dependency check, returning diagnostics sorted by
// file, line and column.
func Run(mod *Module, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range mod.Pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Fset:     mod.Fset,
				Path:     pkg.Path,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Module:   mod,
				analyzer: a,
				diags:    &diags,
			}
			a.Run(pass)
		}
	}
	for _, a := range analyzers {
		if a == StdlibOnly {
			diags = append(diags, goModDiagnostics(mod)...)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// RunPackage applies one analyzer to a single package — the golden-test
// entry point.
func RunPackage(mod *Module, pkg *Package, a *Analyzer) []Diagnostic {
	var diags []Diagnostic
	a.Run(&Pass{
		Fset:     mod.Fset,
		Path:     pkg.Path,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		Module:   mod,
		analyzer: a,
		diags:    &diags,
	})
	return diags
}
