// Golden fixture for the errchecklite analyzer: call statements in
// cmd/ packages that discard an error result are flagged; explicit
// `_ =` discards, deferred calls and package fmt are exempt.
package main

import (
	"fmt"
	"os"
)

func work() error { return nil }

func pair() (int, error) { return 0, nil }

func badDiscards(path string) {
	work()          // want "result of work includes an error that is discarded"
	os.Remove(path) // want "result of os.Remove includes an error that is discarded"
	pair()          // want "result of pair includes an error that is discarded"
}

func okHandled(path string) {
	if err := work(); err != nil {
		fmt.Println(err)
	}
	_ = os.Remove(path)
	fmt.Println("best-effort terminal print")
	f, err := os.Open(path)
	if err != nil {
		return
	}
	defer f.Close()
}
