// Golden fixture for the errchecklite analyzer: call statements in
// cmd/ packages that discard an error result are flagged, as are mixed
// multi-assignments that blank an error-typed result while keeping the
// others; all-blank `_ =` discards, deferred calls and package fmt are
// exempt.
package main

import (
	"fmt"
	"os"
)

func work() error { return nil }

func pair() (int, error) { return 0, nil }

func badDiscards(path string) {
	work()          // want "result of work includes an error that is discarded"
	os.Remove(path) // want "result of os.Remove includes an error that is discarded"
	pair()          // want "result of pair includes an error that is discarded"
}

func triple() (int, string, error) { return 0, "", nil }

func badBlankAssigns() int {
	n, _ := pair()      // want "assignment blanks the error result of pair while keeping other results"
	m, _, _ := triple() // want "assignment blanks the error result of triple while keeping other results"
	return n + m
}

func okHandled(path string) {
	if err := work(); err != nil {
		fmt.Println(err)
	}
	_ = os.Remove(path)
	_, _ = pair() // all-blank: the explicit-discard idiom
	fmt.Println("best-effort terminal print")
	f, err := os.Open(path)
	if err != nil {
		return
	}
	defer f.Close()
}
