// Golden fixture for the stdlibonly analyzer: third-party and cgo
// imports are flagged; standard-library and module-internal imports are
// clean. This fixture is parsed without type-checking (the flagged
// imports cannot resolve), which also proves the analyzer is purely
// syntactic.
package stdlibonlyfix

import (
	"fmt"
	"math/rand"

	"github.com/repro/snntest/internal/tensor"

	"example.com/outside/dep" // want "non-stdlib import"
)

import "C" // want "cgo"

var _ = fmt.Sprintf
var _ = rand.New
var _ tensor.Tensor
var _ = dep.Thing
