// Golden fixture for the panicfree analyzer: naked panics in library
// (internal/...) functions are flagged; the allowlisted invariant
// helpers (failf, checkf, assertSameShape, must*/Must* prefixes) may
// panic freely.
package panicfreefix

import "fmt"

func badNakedPanic(x int) int {
	if x < 0 {
		panic("negative input") // want "naked panic in library function badNakedPanic"
	}
	return x
}

func badPanicInClosure() func() {
	return func() {
		panic("inner") // want "naked panic in library function badPanicInClosure"
	}
}

// failf is an allowlisted invariant helper: its panic is the documented
// chokepoint for programmer errors.
func failf(format string, args ...any) {
	panic(fmt.Sprintf(format, args...))
}

func mustPositive(x int) int {
	if x <= 0 {
		panic("not positive")
	}
	return x
}

func okUsesHelper(x int) int {
	if x < 0 {
		failf("bad x %d", x)
	}
	return mustPositive(x)
}
