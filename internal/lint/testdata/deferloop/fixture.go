// Golden fixture for the deferloop analyzer: a defer inside a for or
// range loop only fires when the enclosing function returns, so
// per-iteration resources pile up. Defers at function scope or inside a
// per-iteration closure are the clean patterns.
package deferloopfix

import "sync"

func badForLoop(mus []*sync.Mutex) {
	for i := 0; i < len(mus); i++ {
		mus[i].Lock()
		defer mus[i].Unlock() // want "defer inside a loop"
	}
}

func badRangeLoop(mus []*sync.Mutex) {
	for _, mu := range mus {
		mu.Lock()
		defer mu.Unlock() // want "defer inside a loop"
	}
}

func badNestedLoop(grid [][]*sync.Mutex) {
	for _, row := range grid {
		for _, mu := range row {
			mu.Lock()
			defer mu.Unlock() // want "defer inside a loop"
		}
	}
}

func okFunctionScope(mu *sync.Mutex) {
	mu.Lock()
	defer mu.Unlock()
}

// okClosurePerIteration scopes each defer to one iteration's closure —
// the canonical fix.
func okClosurePerIteration(mus []*sync.Mutex) {
	for _, mu := range mus {
		func() {
			mu.Lock()
			defer mu.Unlock()
		}()
	}
}
