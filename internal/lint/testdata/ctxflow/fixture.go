// Golden fixture for the ctxflow analyzer: a function that receives a
// context.Context must thread it into module-internal callees — minting
// context.Background()/TODO() or passing nil detaches spans and
// cancellation. Functions without a ctx parameter may mint roots freely.
package ctxflowfix

import "context"

func step(ctx context.Context, n int) int {
	if ctx == nil {
		return 0
	}
	return n + 1
}

func run(ctx context.Context, n int) int {
	return step(ctx, n) // threaded: clean
}

func badBackground(ctx context.Context, n int) int {
	return step(context.Background(), n) // want "passes a fresh context.Background()"
}

func badTODO(ctx context.Context, n int) int {
	return step(context.TODO(), n) // want "passes a fresh context.TODO()"
}

func badNil(ctx context.Context, n int) int {
	return step(nil, n) // want "passes nil"
}

func badDerivedElsewhere(ctx context.Context, n int) int {
	a := step(ctx, n)
	b := step(context.Background(), n) // want "passes a fresh context.Background()"
	return a + b
}

// okRoot has no incoming context, so minting a root is the only option.
func okRoot(n int) int {
	return step(context.Background(), n)
}

// okDerived passes a child of the incoming context: clean.
func okDerived(ctx context.Context, n int) int {
	child, cancel := context.WithCancel(ctx)
	defer cancel()
	return step(child, n)
}
