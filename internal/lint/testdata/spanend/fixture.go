// Golden fixture for the spanend analyzer: an obs.Start span must reach
// an End call (deferred or explicit, on any path) or a return statement
// within its enclosing function declaration; discarded and blank-bound
// spans are always flagged.
package spanendfix

import (
	"context"

	"github.com/repro/snntest/internal/obs"
)

func badLeaked(ctx context.Context) {
	_, sp := obs.Start(ctx, "leaked") // want "has no End call and is not returned"
	sp.SetAttr("k", 1)
}

func badBlank(ctx context.Context) context.Context {
	ctx, _ = obs.Start(ctx, "blank") // want "bound to the blank identifier"
	return ctx
}

func badDiscarded(ctx context.Context) {
	obs.Start(ctx, "discarded") // want "is discarded"
}

func badOneOfTwo(ctx context.Context) {
	_, a := obs.Start(ctx, "ended")
	defer a.End()
	_, b := obs.Start(ctx, "leaked") // want "has no End call and is not returned"
	b.SetAttr("k", 2)
}

func okDeferEnd(ctx context.Context) {
	_, sp := obs.Start(ctx, "deferred")
	defer sp.End()
}

func okExplicitMultiPath(ctx context.Context, stop bool) {
	for i := 0; i < 3; i++ {
		// Per-iteration spans cannot defer: the span must close before
		// the loop's next pass.
		_, sp := obs.Start(ctx, "iteration")
		if stop {
			sp.End()
			return
		}
		sp.End()
	}
}

func okReturnedSpan(ctx context.Context) *obs.Span {
	_, sp := obs.Start(ctx, "handed-off")
	return sp
}

func okReturnedCall(ctx context.Context) (context.Context, *obs.Span) {
	return obs.Start(ctx, "handed-off-pair")
}

func okEndInClosure(ctx context.Context) {
	_, sp := obs.Start(ctx, "worker")
	done := make(chan struct{})
	go func() {
		sp.End()
		close(done)
	}()
	<-done
}
