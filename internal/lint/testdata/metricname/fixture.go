// Golden fixture for the metricname analyzer: obs metric registrations
// must use constant, snake_case subsystem_noun_unit names with the
// kind's unit suffix — _total for counters, _seconds for timing
// histograms, neither for gauges.
package metricnamefix

import "github.com/repro/snntest/internal/obs"

const constName = "fixture_events_total"

var (
	okCounter      = obs.NewCounter("fixture_events_total")
	okCounterConst = obs.NewCounter(constName)
	okGauge        = obs.NewGauge("fixture_queue_depth")
	okHistogram    = obs.NewTimingHistogram("fixture_step_seconds")

	// The PR 9 flight-recorder names are part of the conforming corpus:
	// any rename that breaks the convention fails here first.
	okLedgerRuns    = obs.NewCounter("ledger_runs_total")
	okLedgerEntries = obs.NewCounter("ledger_entries_total")
	okLedgerErrors  = obs.NewCounter("ledger_write_errors_total")
	okRunsTracked   = obs.NewGauge("telemetry_runs_tracked")

	badShapeCamel  = obs.NewCounter("fixtureEventsTotal")      // want "not subsystem_noun_unit"
	badShapeDotted = obs.NewCounter("fixture.events_total")    // want "not subsystem_noun_unit"
	badShapeSingle = obs.NewCounter("fixture")                 // want "not subsystem_noun_unit"
	badShapeUpper  = obs.NewGauge("Fixture_queue_depth")       // want "not subsystem_noun_unit"
	badCounterUnit = obs.NewCounter("fixture_events")          // want "must end in _total"
	badHistUnit    = obs.NewTimingHistogram("fixture_step_ms") // want "must end in _seconds"
	badGaugeTotal  = obs.NewGauge("fixture_queue_total")       // want "must not use the counter/histogram unit suffixes"
	badGaugeSec    = obs.NewGauge("fixture_wait_seconds")      // want "must not use the counter/histogram unit suffixes"
)

func dynamic(prefix string) *obs.Counter {
	return obs.NewCounter(prefix + "_events_total") // want "compile-time string constant"
}
