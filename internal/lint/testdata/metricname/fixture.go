// Golden fixture for the metricname analyzer: obs metric registrations
// must use constant, snake_case subsystem_noun_unit names with the
// kind's unit suffix — _total for counters, _seconds for timing
// histograms, neither for gauges.
package metricnamefix

import "github.com/repro/snntest/internal/obs"

const constName = "fixture_events_total"

var (
	okCounter      = obs.NewCounter("fixture_events_total")
	okCounterConst = obs.NewCounter(constName)
	okGauge        = obs.NewGauge("fixture_queue_depth")
	okHistogram    = obs.NewTimingHistogram("fixture_step_seconds")

	// The PR 9 flight-recorder names are part of the conforming corpus:
	// any rename that breaks the convention fails here first.
	okLedgerRuns    = obs.NewCounter("ledger_runs_total")
	okLedgerEntries = obs.NewCounter("ledger_entries_total")
	okLedgerErrors  = obs.NewCounter("ledger_write_errors_total")
	okRunsTracked   = obs.NewGauge("telemetry_runs_tracked")

	// The PR 10 runtime-telemetry and worker-pool names: runtime gauges
	// are levels, so counts end _count (not the counter suffix _total),
	// and the one true counter in the set keeps _total.
	okRuntimeGoroutines = obs.NewGauge("runtime_goroutines_count")
	okRuntimeHeapLive   = obs.NewGauge("runtime_heap_live_bytes")
	okRuntimeGCCycles   = obs.NewGauge("runtime_gc_cycles_count")
	okRuntimeGCPause    = obs.NewGauge("runtime_gc_pause_p50_micros")
	okRuntimeSchedLat   = obs.NewGauge("runtime_sched_latency_p99_micros")
	okWorkerPool        = obs.NewGauge("worker_pool_size_workers")
	okWorkerUtil        = obs.NewGauge("worker_utilization_percent")
	okWorkerBusy        = obs.NewCounter("worker_busy_micros_total")
	okRestartQueue      = obs.NewGauge("core_restart_queue_depth")
	okTornLines         = obs.NewCounter("ledger_torn_lines_total")
	okStallSnapshots    = obs.NewCounter("telemetry_stall_snapshots_total")

	badShapeCamel  = obs.NewCounter("fixtureEventsTotal")      // want "not subsystem_noun_unit"
	badShapeDotted = obs.NewCounter("fixture.events_total")    // want "not subsystem_noun_unit"
	badShapeSingle = obs.NewCounter("fixture")                 // want "not subsystem_noun_unit"
	badShapeUpper  = obs.NewGauge("Fixture_queue_depth")       // want "not subsystem_noun_unit"
	badCounterUnit = obs.NewCounter("fixture_events")          // want "must end in _total"
	badHistUnit    = obs.NewTimingHistogram("fixture_step_ms") // want "must end in _seconds"
	badGaugeTotal  = obs.NewGauge("fixture_queue_total")       // want "must not use the counter/histogram unit suffixes"
	badGaugeSec    = obs.NewGauge("fixture_wait_seconds")      // want "must not use the counter/histogram unit suffixes"
)

func dynamic(prefix string) *obs.Counter {
	return obs.NewCounter(prefix + "_events_total") // want "compile-time string constant"
}
