// Golden fixture for the goroutinejoin analyzer: a go statement with no
// visible join in the enclosing function is flagged; WaitGroup.Wait and
// channel synchronization count as joins.
package goroutinejoinfix

import "sync"

func badFireAndForget(work func()) {
	go work() // want "goroutine started in badFireAndForget has no visible join"
}

func badDoubleLaunch(work func()) {
	go work() // want "goroutine started in badDoubleLaunch has no visible join"
	go work() // want "goroutine started in badDoubleLaunch has no visible join"
}

func okWaitGroupJoin(work func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

func okChannelJoin(work func() int) int {
	ch := make(chan int, 1)
	go func() { ch <- work() }()
	return <-ch
}

func okNoGoroutines(work func()) {
	work()
}
