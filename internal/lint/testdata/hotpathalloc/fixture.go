// Golden fixture for the hotpathalloc analyzer: //snn:hotpath functions
// must not allocate — make/new/append, composite literals, closures,
// interface boxing and variadic materialization are flagged, one
// module-internal call deep; error branches ending in panic helpers are
// exempt, and unannotated functions are never checked.
package hotpathallocfix

type state struct {
	u []float64
}

func failf(format string, args ...any) {
	panic(format)
}

// helperAllocates is module-internal and not a hot path itself, but a
// hot-path caller inherits its allocation one level deep.
func helperAllocates(n int) []float64 {
	return make([]float64, n) // no direct finding: not annotated
}

// helperClean is safe to call from hot paths.
func helperClean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

//snn:hotpath
func badMake(n int) []float64 {
	return make([]float64, n) // want "a make call"
}

//snn:hotpath
func badNewAndLit() *state {
	s := new(state)    // want "a new call"
	s.u = []float64{1} // want "a composite literal"
	return s
}

//snn:hotpath
func badAppend(xs []float64, v float64) []float64 {
	return append(xs, v) // want "an append"
}

//snn:hotpath
func badClosure(xs []float64) float64 {
	f := func() float64 { return xs[0] } // want "a closure"
	return f()
}

//snn:hotpath
func badBoxing(v float64) any {
	var out any = v // want "an interface conversion"
	return out
}

//snn:hotpath
func badVariadic(xs []float64) {
	failf("oops %v", xs) // want "a variadic call" // want "an interface conversion"
}

//snn:hotpath
func badCallsAllocator(n int) float64 {
	xs := helperAllocates(n) // want "calls helperAllocates, which contains a make call"
	return xs[0]
}

//snn:hotpath
func okCleanKernel(st *state, cd []float64) float64 {
	acc := 0.0
	for i := range cd {
		st.u[i] += cd[i]
		acc += st.u[i]
	}
	return acc + helperClean(cd)
}

//snn:hotpath
func okFailBranch(xs []float64) float64 {
	if len(xs) == 0 {
		failf("empty input %v", xs) // exempt: error branch terminates in a panic helper
	}
	return xs[0]
}

//snn:hotpath
func okSpreadVariadic(args []any) {
	if len(args) > 99 {
		failf("too many: %v", args...) // exempt error branch; spread does not materialize
	}
}

// notAnnotated allocates freely without findings.
func notAnnotated(n int) []float64 {
	out := make([]float64, n)
	return append(out, 1)
}
