// Golden fixture for the rawdata analyzer: arithmetic indexing into a
// raw tensor Data() slice is flagged outside internal/tensor; simple
// indexing, whole-slice iteration and the bounds-checked accessors are
// tolerated.
package rawdatafix

import "github.com/repro/snntest/internal/tensor"

func badStrideIndex(t *tensor.Tensor, i int) float64 {
	return t.Data()[i*3+1] // want "arithmetic index into raw tensor Data() slice"
}

func badSliceBounds(t *tensor.Tensor, off, n int) []float64 {
	return t.Data()[off*2 : off*2+n] // want "arithmetic slice bounds on raw tensor Data() slice"
}

func okConstantIndex(t *tensor.Tensor) float64 {
	return t.Data()[0]
}

func okPlainIndex(t *tensor.Tensor, i int) float64 {
	return t.Data()[i]
}

func okWholeSliceIteration(t *tensor.Tensor) float64 {
	total := 0.0
	for _, v := range t.Data() {
		total += v
	}
	return total
}

func okBoundsCheckedAccessors(t *tensor.Tensor, off, n int) []float64 {
	_ = t.At(0)
	return t.RawRange(off*2, n)
}
