// Golden fixture for the determinism analyzer: global math/rand use and
// order-sensitive map iteration are flagged; seeded *rand.Rand values
// and the collect-keys-then-sort idiom are clean.
package determinismfix

import (
	"math/rand"
	"sort"
)

func badGlobalRand() float64 {
	return rand.Float64() // want "rand.Float64 draws from the shared global source"
}

func badGlobalIntn(n int) int {
	return rand.Intn(n) // want "rand.Intn draws from the shared global source"
}

func badFloatAccumulation(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { // want "accumulates into a float"
		total += v
	}
	return total
}

func badAppendInMapOrder(m map[string]int) []string {
	var keys []string
	for k := range m { // want "appends in map order"
		keys = append(keys, k)
	}
	return keys
}

func okSeededRand(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

func okSortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func okIntAccumulation(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
