// Golden fixture for the atomicmix analyzer: a variable or field whose
// address is passed to a sync/atomic function must never be read or
// written plainly in the same package. Fields wrapped in atomic.Int64
// style types and mutex-guarded plain fields are clean.
package atomicmixfix

import (
	"sync"
	"sync/atomic"
)

type progress struct {
	done  int64
	total int64
}

func (p *progress) bump() {
	atomic.AddInt64(&p.done, 1)
}

func (p *progress) read() int64 {
	return atomic.LoadInt64(&p.done)
}

func (p *progress) badPlainRead() int64 {
	return p.done // want "accessed via sync/atomic elsewhere"
}

func (p *progress) badPlainWrite() {
	p.done = 0 // want "accessed via sync/atomic elsewhere"
}

// total is only ever accessed plainly; no findings.
func (p *progress) setTotal(n int64) {
	p.total = n
}

var sharedFlag uint32

func setShared() {
	atomic.StoreUint32(&sharedFlag, 1)
}

func badPlainPackageVar() bool {
	return sharedFlag == 1 // want "accessed via sync/atomic elsewhere"
}

// wrapped uses the typed atomic API; the raw word is unexported inside
// atomic.Int64, so mixing is impossible by construction.
type wrapped struct {
	n  atomic.Int64
	mu sync.Mutex
	m  int64
}

func (w *wrapped) okTyped() int64 {
	w.n.Add(1)
	return w.n.Load()
}

func (w *wrapped) okMutexGuarded() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.m++
	return w.m
}
