// Golden fixture for the floateq analyzer: == and != on floating-point
// (or complex) operands are flagged everywhere outside internal/tensor.
// Ordered comparisons, integer equality and epsilon-band checks stay
// clean.
package floateqfix

import "math"

const eps = 1e-9

func badEq(a, b float64) bool {
	return a == b // want "float == comparison"
}

func badNeq(a, b float32) bool {
	return a != b // want "float != comparison"
}

func badLiteral(x float64) bool {
	return x == 0.5 // want "float == comparison"
}

func badComplex(a, b complex128) bool {
	return a == b // want "float == comparison"
}

func badInRange(xs []float64) int {
	n := 0
	for _, x := range xs {
		if x != 0 { // want "float != comparison"
			n++
		}
	}
	return n
}

func okEpsilon(a, b float64) bool {
	return math.Abs(a-b) <= eps
}

func okOrdered(a, b float64) bool {
	return a < b || a > b
}

func okInt(a, b int) bool {
	return a == b
}

func okNaNCheck(x float64) bool {
	return math.IsNaN(x)
}
