package lint

import (
	"strconv"
	"strings"
)

// StdlibOnly enforces the repo's dependency policy: every import is
// either standard library (first path element has no dot) or
// module-internal. The paired module-level check (goModDiagnostics)
// flags any require directive in go.mod, so the policy holds even for
// dependencies that no file imports yet. This analyzer is purely
// syntactic — it must not consult type info, so it also runs on
// parse-only fixture packages.
var StdlibOnly = &Analyzer{
	Name: "stdlibonly",
	Doc:  "flags non-stdlib, non-module imports (dependency-free policy)",
	Run:  runStdlibOnly,
}

func runStdlibOnly(p *Pass) {
	for _, f := range p.Files {
		for _, spec := range f.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				continue
			}
			if path == "C" {
				p.Reportf(spec.Pos(), `import "C" (cgo) violates the stdlib-only policy`)
				continue
			}
			if path == p.Module.Path || strings.HasPrefix(path, p.Module.Path+"/") {
				continue
			}
			first := path
			if i := strings.IndexByte(path, '/'); i >= 0 {
				first = path[:i]
			}
			if strings.Contains(first, ".") {
				p.Reportf(spec.Pos(), "non-stdlib import %q; this module is stdlib-only by policy", path)
			}
		}
	}
}

// goModDiagnostics flags require directives in go.mod under the same
// stdlib-only policy.
func goModDiagnostics(mod *Module) []Diagnostic {
	var diags []Diagnostic
	inBlock := false
	for i, raw := range strings.Split(mod.GoMod, "\n") {
		line := strings.TrimSpace(raw)
		if i := strings.Index(line, "//"); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		report := func(dep string) {
			diags = append(diags, Diagnostic{
				Analyzer: StdlibOnly.Name,
				File:     mod.Dir + "/go.mod",
				Line:     i + 1,
				Col:      1,
				Message:  "go.mod requires " + dep + "; this module is stdlib-only by policy",
			})
		}
		switch {
		case inBlock:
			if line == ")" {
				inBlock = false
			} else if line != "" {
				report(strings.Fields(line)[0])
			}
		case line == "require (":
			inBlock = true
		case strings.HasPrefix(line, "require "):
			fields := strings.Fields(line)
			if len(fields) >= 2 {
				report(fields[1])
			}
		}
	}
	return diags
}
