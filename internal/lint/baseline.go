package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// BaselineEntry identifies one accepted pre-existing finding. Line and
// column are deliberately omitted: baselines must survive unrelated
// edits shifting code around, so a finding is matched by analyzer,
// module-relative file and exact message.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"` // module-relative, slash-separated
	Message  string `json:"message"`
}

// Baseline is a set of accepted findings loaded from a -baseline file.
// It lets a new analyzer land strict (enforced for all new code) while
// the recorded debt is burned down separately: matching findings are
// filtered from the run's output and counted in Stats.Baselined.
type Baseline struct {
	entries map[BaselineEntry]int // entry → allowed count
}

// LoadBaseline reads a baseline file (a JSON array of entries). A
// missing file is an error: passing -baseline means the caller relies on
// it, and silently running without one would hide every baselined
// finding as a new regression.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("lint: baseline: %w", err)
	}
	var entries []BaselineEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("lint: baseline %s: %w", path, err)
	}
	b := &Baseline{entries: make(map[BaselineEntry]int, len(entries))}
	for _, e := range entries {
		b.entries[e]++
	}
	return b, nil
}

// apply filters diags through the baseline: each baseline entry absorbs
// up to its recorded count of matching findings. It returns the
// survivors and the number filtered.
func (b *Baseline) apply(modDir string, diags []Diagnostic) (kept []Diagnostic, baselined int) {
	if b == nil || len(b.entries) == 0 {
		return diags, 0
	}
	budget := make(map[BaselineEntry]int, len(b.entries))
	for e, n := range b.entries {
		budget[e] = n
	}
	kept = diags[:0:0]
	for _, d := range diags {
		e := BaselineEntry{Analyzer: d.Analyzer, File: relPath(modDir, d.File), Message: d.Message}
		if budget[e] > 0 {
			budget[e]--
			baselined++
			continue
		}
		kept = append(kept, d)
	}
	return kept, baselined
}

// WriteBaseline records the given findings as the accepted baseline at
// path, with module-relative file paths.
func WriteBaseline(path, modDir string, diags []Diagnostic) error {
	entries := make([]BaselineEntry, 0, len(diags))
	for _, d := range diags {
		entries = append(entries, BaselineEntry{Analyzer: d.Analyzer, File: relPath(modDir, d.File), Message: d.Message})
	}
	out, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// relPath relativizes file against modDir, returning a slash-separated
// path (file unchanged when not below modDir).
func relPath(modDir, file string) string {
	if rel, err := filepath.Rel(modDir, file); err == nil {
		return filepath.ToSlash(rel)
	}
	return file
}
