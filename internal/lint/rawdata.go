package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// tensorPkgSuffix identifies the package that owns raw layout math.
const tensorPkgSuffix = "/internal/tensor"

// Rawdata flags index or slice expressions applied directly to a tensor
// Data() call with arithmetic in the index/bounds, outside
// internal/tensor. Stride arithmetic on the raw backing slice bypasses
// every shape check; such code must go through the bounds-checked
// accessors (At, Step, RawRange, ElemPtr) or move into internal/tensor.
// Simple indexing (Data()[i], Data()[0]) and whole-slice iteration are
// tolerated.
var Rawdata = &Analyzer{
	Name: "rawdata",
	Doc:  "flags arithmetic indexing into raw tensor Data() slices outside internal/tensor",
	Run:  runRawdata,
}

func runRawdata(p *Pass) {
	if strings.HasSuffix(p.Path, tensorPkgSuffix) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.IndexExpr:
				if isTensorDataCall(p, e.X) && containsArith(e.Index) {
					p.Reportf(e.Pos(), "arithmetic index into raw tensor Data() slice; use a bounds-checked accessor (At/Step/RawRange/ElemPtr) or move the kernel into internal/tensor")
				}
			case *ast.SliceExpr:
				if isTensorDataCall(p, e.X) && (containsArith(e.Low) || containsArith(e.High)) {
					p.Reportf(e.Pos(), "arithmetic slice bounds on raw tensor Data() slice; use Step or RawRange instead")
				}
			}
			return true
		})
	}
}

// isTensorDataCall reports whether x is a call to (*tensor.Tensor).Data.
func isTensorDataCall(p *Pass, x ast.Expr) bool {
	call, ok := x.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != "Data" || fn.Pkg() == nil {
		return false
	}
	return strings.HasSuffix(fn.Pkg().Path(), tensorPkgSuffix)
}

// containsArith reports whether the expression contains any binary
// arithmetic (the signature of hand-rolled stride math).
func containsArith(e ast.Expr) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.BinaryExpr); ok {
			found = true
			return false
		}
		return true
	})
	return found
}
