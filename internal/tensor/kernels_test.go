package tensor

import (
	"math/rand"
	"testing"
)

// bitEqual compares two tensors elementwise with ==, which treats -0.0
// and +0.0 as equal — exactly the guarantee the fast kernels make (see
// the im2col numerical contract).
func bitEqual(a, b *Tensor) bool {
	if !SameShape(a, b) {
		return false
	}
	for i := range a.data {
		if a.data[i] != b.data[i] {
			return false
		}
	}
	return true
}

func TestEquivMatMulBlockedMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, dims := range [][3]int{{1, 1, 1}, {3, 5, 2}, {64, 64, 64}, {65, 3, 130}, {100, 70, 33}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := RandNormal(rng, 0, 1, m, k)
		b := RandNormal(rng, 0, 1, k, n)
		// Sprinkle exact zeros so the skip path is exercised.
		for i := 0; i < a.Len(); i += 3 {
			a.Data()[i] = 0
		}
		if !bitEqual(MatMulBlocked(a, b), MatMul(a, b)) {
			t.Errorf("MatMulBlocked diverges from MatMul at %d×%d×%d", m, k, n)
		}
	}
}

func TestEquivConv2DIm2ColMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	cases := []struct {
		inC, h, w, outC, kh, kw int
		spec                    ConvSpec
	}{
		{1, 5, 5, 1, 3, 3, ConvSpec{Stride: 1, Pad: 0}},
		{2, 11, 11, 3, 3, 3, ConvSpec{Stride: 2, Pad: 0}},
		{3, 8, 6, 2, 3, 2, ConvSpec{Stride: 1, Pad: 2}},
		{2, 16, 16, 4, 5, 5, ConvSpec{Stride: 3, Pad: 1}},
		{1, 4, 4, 1, 1, 1, ConvSpec{Stride: 1, Pad: 0}},
	}
	for _, c := range cases {
		x := RandNormal(rng, 0, 1, c.inC, c.h, c.w)
		w := RandNormal(rng, 0, 1, c.outC, c.inC, c.kh, c.kw)
		if !bitEqual(Conv2DIm2Col(x, w, c.spec), Conv2D(x, w, c.spec)) {
			t.Errorf("Conv2DIm2Col diverges from Conv2D for %+v", c)
		}
	}
}

func TestConv2DColIntoReusedBufferNeedsNoClearing(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	spec := ConvSpec{Stride: 1, Pad: 1}
	w := RandNormal(rng, 0, 1, 2, 1, 3, 3)
	col := make([]float64, Im2ColLen(1, 4, 4, 3, 3, spec))
	for i := range col {
		col[i] = 99 // dirty buffer
	}
	x := RandNormal(rng, 0, 1, 1, 4, 4)
	out := make([]float64, 2*4*4)
	Im2Col(col, x.Data(), 1, 4, 4, 3, 3, spec)
	Conv2DColInto(out, col, w)
	want := Conv2D(x, w, spec)
	for i, v := range out {
		if v != want.Data()[i] {
			t.Fatalf("dirty-buffer conv output[%d] = %g, want %g", i, v, want.Data()[i])
		}
	}
}

func TestBlockedAndIm2ColShapePanics(t *testing.T) {
	checkPanic(t, true, func() { MatMulBlocked(New(2, 3), New(2, 2)) })
	checkPanic(t, true, func() { MatMulBlocked(New(2), New(2, 2)) })
	checkPanic(t, true, func() { Conv2DIm2Col(New(2, 4, 4), New(1, 3, 3, 3), ConvSpec{Stride: 1}) })
	checkPanic(t, true, func() { Conv2DColInto(make([]float64, 3), make([]float64, 5), New(1, 1, 2, 2)) })
	checkPanic(t, true, func() { Im2Col(make([]float64, 1), make([]float64, 4), 1, 2, 2, 1, 1, ConvSpec{Stride: 1}) })
}
