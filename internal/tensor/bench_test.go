package tensor

import (
	"math/rand"
	"testing"
)

func BenchmarkMatVec(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	w := RandNormal(rng, 0, 1, 256, 256)
	x := RandNormal(rng, 0, 1, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatVec(w, x)
	}
}

func BenchmarkMatMul(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x := RandNormal(rng, 0, 1, 64, 64)
	y := RandNormal(rng, 0, 1, 64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}

func BenchmarkConv2D(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := RandNormal(rng, 0, 1, 2, 34, 34)
	w := RandNormal(rng, 0, 1, 8, 2, 5, 5)
	spec := ConvSpec{Stride: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Conv2D(x, w, spec)
	}
}

func BenchmarkConv2DBackwardInput(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	x := RandNormal(rng, 0, 1, 2, 34, 34)
	w := RandNormal(rng, 0, 1, 8, 2, 5, 5)
	spec := ConvSpec{Stride: 2}
	g := RandNormal(rng, 0, 1, Conv2D(x, w, spec).Shape()...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Conv2DBackwardInput(g, w, x.Shape(), spec)
	}
}

func BenchmarkSumPool2D(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	x := RandNormal(rng, 0, 1, 16, 32, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SumPool2D(x, 2)
	}
}

func BenchmarkL1Diff(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	x := RandNormal(rng, 0, 1, 1<<14)
	y := RandNormal(rng, 0, 1, 1<<14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		L1Diff(x, y)
	}
}
