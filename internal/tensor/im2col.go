package tensor

// im2col-backed convolution. The column matrix unrolls every receptive
// field of the input into one contiguous row, so the convolution itself
// becomes a row-by-row dot product against the (already contiguous)
// kernel rows — branch-free and cache-linear, where the naive kernel
// bounds-checks every tap.
//
// Numerical contract: column row p lists the taps of output position p in
// exactly the (ic, ky, kx) order the naive Conv2D accumulates them, with
// out-of-bounds (padding) taps stored as 0. The dot product therefore
// performs the same additions in the same order, interleaved with exact
// +0.0 terms for padding; results equal the naive kernel's except, at
// most, the sign of a zero output (x + (+0.0) == x for every x except
// -0.0, which padding can flip to +0.0). Spike trains downstream are
// re-derived through comparisons and literal stores, so recorded traces
// stay bitwise identical — the equivalence suite pins this.

// Im2ColLen returns the required column-buffer length for an [inC, h, w]
// input under a kh×kw kernel with the given spec.
func Im2ColLen(inC, h, w, kh, kw int, spec ConvSpec) int {
	oh := ConvOutDim(h, kh, spec.Stride, spec.Pad)
	ow := ConvOutDim(w, kw, spec.Stride, spec.Pad)
	return oh * ow * inC * kh * kw
}

// Im2Col unrolls the raw [inC, h, w] input x into the column buffer col
// (length Im2ColLen): row p = oy·ow + ox holds output position (oy, ox)'s
// receptive field in (ic, ky, kx) order, with zeros for padding taps.
// Every cell of col is written, so a reused buffer needs no clearing.
//
//snn:hotpath
func Im2Col(col, x []float64, inC, h, w, kh, kw int, spec ConvSpec) {
	oh := ConvOutDim(h, kh, spec.Stride, spec.Pad)
	ow := ConvOutDim(w, kw, spec.Stride, spec.Pad)
	patch := inC * kh * kw
	if len(col) != oh*ow*patch {
		failf("Im2Col buffer length %d does not match %d positions × %d taps", len(col), oh*ow, patch)
	}
	if len(x) != inC*h*w {
		failf("Im2Col input length %d does not match [%d,%d,%d]", len(x), inC, h, w)
	}
	for oy := 0; oy < oh; oy++ {
		iy0 := oy*spec.Stride - spec.Pad
		for ox := 0; ox < ow; ox++ {
			ix0 := ox*spec.Stride - spec.Pad
			// In-bounds kernel-column span for this window; taps outside
			// it are padding and stored as literal zeros, so each kw-wide
			// segment is zero prefix + bulk copy + zero suffix instead of
			// a bounds branch per tap. Large padding can push the window
			// entirely off the input, so both ends are clamped to [0, kw]
			// and an empty span means the whole segment is zeros.
			kx0, kx1 := 0, kw
			if ix0 < 0 {
				kx0 = -ix0
				if kx0 > kw {
					kx0 = kw
				}
			}
			if ix0+kx1 > w {
				kx1 = w - ix0
			}
			if kx1 < kx0 {
				kx1 = kx0
			}
			row := col[(oy*ow+ox)*patch : (oy*ow+ox+1)*patch]
			idx := 0
			for ic := 0; ic < inC; ic++ {
				for ky := 0; ky < kh; ky++ {
					iy := iy0 + ky
					seg := row[idx : idx+kw]
					idx += kw
					if iy < 0 || iy >= h {
						for kx := range seg {
							seg[kx] = 0
						}
						continue
					}
					for kx := 0; kx < kx0; kx++ {
						seg[kx] = 0
					}
					if kx0 < kx1 {
						xrow := x[(ic*h+iy)*w : (ic*h+iy+1)*w]
						copy(seg[kx0:kx1], xrow[ix0+kx0:ix0+kx1])
					}
					for kx := kx1; kx < kw; kx++ {
						seg[kx] = 0
					}
				}
			}
		}
	}
}

// Conv2DColInto computes the convolution output (flattened
// [outC, outH·outW]) from a column buffer filled by Im2Col and the rank-4
// kernel w, writing into out without allocating: out[oc·np+p] is the dot
// product of kernel row oc with column row p, accumulated in the naive
// kernel's (ic, ky, kx) order.
//
//snn:hotpath
func Conv2DColInto(out, col []float64, w *Tensor) {
	if w.Rank() != 4 {
		failf("Conv2DColInto requires rank-4 kernel, got %v", w.shape)
	}
	outC := w.shape[0]
	patch := w.shape[1] * w.shape[2] * w.shape[3]
	if patch == 0 || len(col)%patch != 0 {
		failf("Conv2DColInto column length %d not divisible by patch %d", len(col), patch)
	}
	np := len(col) / patch
	if len(out) != outC*np {
		failf("Conv2DColInto output length %d does not match %d×%d", len(out), outC, np)
	}
	for oc := 0; oc < outC; oc++ {
		wrow := w.data[oc*patch : (oc+1)*patch]
		orow := out[oc*np : (oc+1)*np]
		for p := 0; p < np; p++ {
			crow := col[p*patch : (p+1)*patch]
			s := 0.0
			for j, cv := range crow {
				s += wrow[j] * cv
			}
			orow[p] = s
		}
	}
}

// Conv2DIm2Col computes the same cross-correlation as Conv2D through an
// explicit column matrix. It allocates its own buffers and exists as the
// self-contained, reference-comparable form of the im2col path (the fuzz
// harness differentiates it against the naive Conv2D); the simulator's
// zero-alloc hot path calls Im2Col + Conv2DColInto over reused scratch.
func Conv2DIm2Col(x, w *Tensor, spec ConvSpec) *Tensor {
	if x.Rank() != 3 || w.Rank() != 4 {
		failf("Conv2DIm2Col requires input rank 3 and kernel rank 4, got %v and %v", x.shape, w.shape)
	}
	inC, h, wd := x.shape[0], x.shape[1], x.shape[2]
	if w.shape[1] != inC {
		failf("Conv2DIm2Col channel mismatch input %v kernel %v", x.shape, w.shape)
	}
	kh, kw := w.shape[2], w.shape[3]
	oh := ConvOutDim(h, kh, spec.Stride, spec.Pad)
	ow := ConvOutDim(wd, kw, spec.Stride, spec.Pad)
	if oh <= 0 || ow <= 0 {
		failf("Conv2DIm2Col produces empty output for input %v kernel %v spec %+v", x.shape, w.shape, spec)
	}
	col := make([]float64, Im2ColLen(inC, h, wd, kh, kw, spec))
	Im2Col(col, x.data, inC, h, wd, kh, kw, spec)
	out := newResult(x, w, w.shape[0], oh, ow)
	Conv2DColInto(out.data, col, w)
	return out
}
