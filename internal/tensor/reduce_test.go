package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSumMeanVariance(t *testing.T) {
	x := vec(1, 2, 3, 4)
	if Sum(x) != 10 {
		t.Errorf("Sum = %g", Sum(x))
	}
	if Mean(x) != 2.5 {
		t.Errorf("Mean = %g", Mean(x))
	}
	if math.Abs(Variance(x)-1.25) > 1e-12 {
		t.Errorf("Variance = %g, want 1.25", Variance(x))
	}
}

func TestEmptyReductions(t *testing.T) {
	e := New(0)
	if Mean(e) != 0 || Variance(e) != 0 {
		t.Error("empty Mean/Variance should be 0")
	}
	if !math.IsInf(Min(e), 1) || !math.IsInf(Max(e), -1) {
		t.Error("empty Min/Max should be ±Inf")
	}
	if ArgMax(e) != -1 {
		t.Error("empty ArgMax should be -1")
	}
}

func TestMinMaxArgMax(t *testing.T) {
	x := vec(3, -1, 7, 7, 2)
	if Min(x) != -1 || Max(x) != 7 {
		t.Errorf("Min/Max = %g/%g", Min(x), Max(x))
	}
	if ArgMax(x) != 2 {
		t.Errorf("ArgMax = %d, want first maximum (2)", ArgMax(x))
	}
}

func TestNorms(t *testing.T) {
	x := vec(3, -4)
	if L1Norm(x) != 7 {
		t.Errorf("L1Norm = %g", L1Norm(x))
	}
	if L2Norm(x) != 5 {
		t.Errorf("L2Norm = %g", L2Norm(x))
	}
	if L1Diff(x, vec(1, -1)) != 5 {
		t.Errorf("L1Diff = %g", L1Diff(x, vec(1, -1)))
	}
}

func TestRowEqual(t *testing.T) {
	a := FromSlice([]float64{1, 0, 1, 1, 0, 0}, 3, 2)
	b := FromSlice([]float64{1, 0, 0, 1, 0, 0}, 3, 2)
	for r, want := range []bool{true, false, true} {
		if got := RowEqual(a, b, r); got != want {
			t.Errorf("RowEqual row %d = %v, want %v", r, got, want)
		}
	}
	if !RowEqual(a, a, 1) {
		t.Error("tensor must row-equal itself")
	}
	for _, bad := range []func(){
		func() { RowEqual(a, b, 3) },
		func() { RowEqual(a, b, -1) },
		func() { RowEqual(a, vec(1, 2), 0) },
		func() { RowEqual(Scalar(1), Scalar(1), 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on invalid RowEqual call")
				}
			}()
			bad()
		}()
	}
}

func TestCountNonZero(t *testing.T) {
	x := vec(0, 1e-12, 0.5, -2)
	if n := CountNonZero(x, 1e-9); n != 2 {
		t.Errorf("CountNonZero = %d, want 2", n)
	}
}

func TestSumRowsCols(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	if got := SumRows(x); !Equal(got, vec(6, 15), 0) {
		t.Errorf("SumRows = %v", got)
	}
	if got := SumCols(x); !Equal(got, vec(5, 7, 9), 0) {
		t.Errorf("SumCols = %v", got)
	}
}

func TestSoftmax(t *testing.T) {
	s := Softmax(vec(1, 1, 1))
	for _, v := range s.Data() {
		if math.Abs(v-1.0/3) > 1e-12 {
			t.Errorf("uniform softmax = %v", s)
		}
	}
	// Stability for large logits: must not produce NaN.
	s = Softmax(vec(1000, 1001))
	if !s.AllFinite() {
		t.Error("softmax overflowed")
	}
	if math.Abs(Sum(s)-1) > 1e-12 {
		t.Errorf("softmax sum = %g", Sum(s))
	}
}

// quick-check property: L1 and L2 norms satisfy the triangle inequality and
// absolute homogeneity on random vectors.
func TestNormPropertiesQuick(t *testing.T) {
	triangle := func(a, b [8]float64) bool {
		x := FromSlice(a[:], 8)
		y := FromSlice(b[:], 8)
		if !x.AllFinite() || !y.AllFinite() {
			return true
		}
		return L1Norm(Add(x, y)) <= L1Norm(x)+L1Norm(y)+1e-9 &&
			L2Norm(Add(x, y)) <= L2Norm(x)+L2Norm(y)+1e-9
	}
	if err := quick.Check(triangle, nil); err != nil {
		t.Error(err)
	}
	homog := func(a [8]float64, s float64) bool {
		x := FromSlice(a[:], 8)
		if !x.AllFinite() || math.IsNaN(s) || math.IsInf(s, 0) || math.Abs(s) > 1e100 {
			return true
		}
		l := L1Norm(Scale(x, s))
		want := math.Abs(s) * L1Norm(x)
		return math.Abs(l-want) <= 1e-9*(1+want)
	}
	if err := quick.Check(homog, nil); err != nil {
		t.Error(err)
	}
}

// quick-check property: variance is translation invariant and scales
// quadratically.
func TestVariancePropertiesQuick(t *testing.T) {
	prop := func(a [6]float64, shift float64) bool {
		x := FromSlice(a[:], 6)
		if !x.AllFinite() || math.IsNaN(shift) || math.IsInf(shift, 0) || math.Abs(shift) > 1e6 {
			return true
		}
		for _, v := range a {
			if math.Abs(v) > 1e6 {
				return true
			}
		}
		v0 := Variance(x)
		v1 := Variance(AddScalar(x, shift))
		if math.Abs(v0-v1) > 1e-6*(1+v0) {
			return false
		}
		v2 := Variance(Scale(x, 2))
		return math.Abs(v2-4*v0) <= 1e-6*(1+v0)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestRandomFills(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	u := RandUniform(rng, -1, 1, 1000)
	if Min(u) < -1 || Max(u) >= 1 {
		t.Error("RandUniform out of range")
	}
	n := RandNormal(rng, 5, 0.1, 2000)
	if m := Mean(n); math.Abs(m-5) > 0.05 {
		t.Errorf("RandNormal mean = %g, want ≈5", m)
	}
	b := RandBernoulli(rng, 0.25, 4000)
	frac := Sum(b) / 4000
	if math.Abs(frac-0.25) > 0.05 {
		t.Errorf("RandBernoulli rate = %g, want ≈0.25", frac)
	}
	for _, v := range b.Data() {
		if v != 0 && v != 1 {
			t.Fatal("RandBernoulli produced non-binary value")
		}
	}
	k := KaimingNormal(rng, 100, 50, 100)
	std := math.Sqrt(Variance(k))
	if math.Abs(std-math.Sqrt(2.0/100)) > 0.02 {
		t.Errorf("Kaiming std = %g", std)
	}
}

func TestRandomDeterminism(t *testing.T) {
	a := RandNormal(rand.New(rand.NewSource(42)), 0, 1, 16)
	b := RandNormal(rand.New(rand.NewSource(42)), 0, 1, 16)
	if !Equal(a, b, 0) {
		t.Error("same seed must produce identical tensors")
	}
}
