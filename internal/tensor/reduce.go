package tensor

import "math"

// Sum returns the sum of all elements.
func Sum(a *Tensor) float64 {
	s := 0.0
	for _, v := range a.data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for empty tensors).
func Mean(a *Tensor) float64 {
	if len(a.data) == 0 {
		return 0
	}
	return Sum(a) / float64(len(a.data))
}

// Variance returns the population variance of all elements.
func Variance(a *Tensor) float64 {
	n := len(a.data)
	if n == 0 {
		return 0
	}
	m := Mean(a)
	s := 0.0
	for _, v := range a.data {
		d := v - m
		s += d * d
	}
	return s / float64(n)
}

// Min returns the minimum element (+Inf for empty tensors).
func Min(a *Tensor) float64 {
	m := math.Inf(1)
	for _, v := range a.data {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the maximum element (-Inf for empty tensors).
func Max(a *Tensor) float64 {
	m := math.Inf(-1)
	for _, v := range a.data {
		if v > m {
			m = v
		}
	}
	return m
}

// ArgMax returns the flat index of the first maximum element, or -1 for an
// empty tensor.
func ArgMax(a *Tensor) int {
	best, idx := math.Inf(-1), -1
	for i, v := range a.data {
		if v > best {
			best, idx = v, i
		}
	}
	return idx
}

// L1Norm returns Σ|aᵢ|.
func L1Norm(a *Tensor) float64 {
	s := 0.0
	for _, v := range a.data {
		s += math.Abs(v)
	}
	return s
}

// L2Norm returns √(Σ aᵢ²).
func L2Norm(a *Tensor) float64 {
	s := 0.0
	for _, v := range a.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// L1Diff returns Σ|aᵢ−bᵢ|, the L1 distance between two equal-shape tensors.
func L1Diff(a, b *Tensor) float64 {
	assertSameShape("L1Diff", a, b)
	s := 0.0
	for i := range a.data {
		s += math.Abs(a.data[i] - b.data[i])
	}
	return s
}

// RowEqual reports whether row r of a and b is elementwise identical,
// treating the first axis as rows. It lets step-major spike records be
// compared one time step at a time — the early-exit hot path of the
// incremental fault campaign — without materializing per-row tensors.
//
//snn:hotpath
func RowEqual(a, b *Tensor, r int) bool {
	assertSameShape("RowEqual", a, b)
	if len(a.shape) == 0 {
		failf("RowEqual on rank-0 tensor")
	}
	rows := a.shape[0]
	if r < 0 || r >= rows {
		failf("RowEqual row %d out of range [0, %d)", r, rows)
	}
	w := len(a.data) / rows
	ra := a.data[r*w : (r+1)*w]
	rb := b.data[r*w : (r+1)*w]
	for i := range ra {
		if ra[i] != rb[i] {
			return false
		}
	}
	return true
}

// CountNonZero returns the number of elements with |v| > eps.
func CountNonZero(a *Tensor, eps float64) int {
	n := 0
	for _, v := range a.data {
		if math.Abs(v) > eps {
			n++
		}
	}
	return n
}

// SumRows sums a rank-2 tensor along its second axis, returning a vector of
// length Dim(0): out[i] = Σⱼ a[i,j].
func SumRows(a *Tensor) *Tensor {
	rows, cols := a.shape[0], a.shape[1]
	out := NewLike(a, rows)
	for i := 0; i < rows; i++ {
		s := 0.0
		row := a.data[i*cols : (i+1)*cols]
		for _, v := range row {
			s += v
		}
		out.data[i] = s
	}
	return out
}

// SumCols sums a rank-2 tensor along its first axis, returning a vector of
// length Dim(1): out[j] = Σᵢ a[i,j].
func SumCols(a *Tensor) *Tensor {
	rows, cols := a.shape[0], a.shape[1]
	out := NewLike(a, cols)
	for i := 0; i < rows; i++ {
		row := a.data[i*cols : (i+1)*cols]
		for j, v := range row {
			out.data[j] += v
		}
	}
	return out
}

// Softmax returns the softmax of a vector, computed stably.
func Softmax(a *Tensor) *Tensor {
	out := NewLike(a, a.shape...)
	m := Max(a)
	s := 0.0
	for i, v := range a.data {
		e := math.Exp(v - m)
		out.data[i] = e
		s += e
	}
	if s == 0 {
		return out
	}
	for i := range out.data {
		out.data[i] /= s
	}
	return out
}
