package tensor

import (
	"math/rand"
	"strings"
	"testing"
)

// checkPanic runs fn and asserts it panics through the failf chokepoint
// exactly when want is true: every bounds violation must surface as a
// controlled "tensor: " panic, never a raw runtime error.
func checkPanic(t *testing.T, want bool, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if want {
			s, ok := r.(string)
			if !ok || !strings.HasPrefix(s, "tensor: ") {
				t.Fatalf("expected controlled tensor panic, got %v", r)
			}
		} else if r != nil {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	fn()
}

// FuzzMatMulBlocked differentiates the cache-blocked matrix product
// against the naive reference over arbitrary shapes and sparsity: every
// element must come out identical (==; the kernels' bit-identity
// contract), since both accumulate each output element in the same k
// order with the same exact-zero skip.
func FuzzMatMulBlocked(f *testing.F) {
	f.Add(byte(3), byte(4), byte(5), int64(1), byte(0))
	f.Add(byte(64), byte(64), byte(64), int64(2), byte(3))
	f.Add(byte(65), byte(1), byte(129), int64(3), byte(2))
	f.Add(byte(1), byte(200), byte(1), int64(4), byte(1))
	f.Fuzz(func(t *testing.T, mb, kb, nb byte, seed int64, zmod byte) {
		m, k, n := int(mb)%96+1, int(kb)%96+1, int(nb)%96+1
		rng := rand.New(rand.NewSource(seed))
		a := RandNormal(rng, 0, 1, m, k)
		b := RandNormal(rng, 0, 1, k, n)
		if zmod > 0 {
			step := int(zmod%7) + 2
			for i := 0; i < a.Len(); i += step {
				a.Data()[i] = 0
			}
		}
		got, want := MatMulBlocked(a, b), MatMul(a, b)
		for i := range want.Data() {
			if got.Data()[i] != want.Data()[i] {
				t.Fatalf("blocked[%d] = %g, naive = %g (m=%d k=%d n=%d)", i, got.Data()[i], want.Data()[i], m, k, n)
			}
		}
	})
}

// FuzzConv2DIm2Col differentiates the im2col convolution against the
// naive Conv2D over arbitrary geometries, strides and paddings. Equality
// is elementwise == (padding taps contribute exact zero terms, which can
// at most flip the sign of a zero output — invisible to ==).
func FuzzConv2DIm2Col(f *testing.F) {
	f.Add(byte(2), byte(11), byte(11), byte(3), byte(3), byte(3), byte(2), byte(0), int64(1))
	f.Add(byte(1), byte(5), byte(7), byte(2), byte(3), byte(2), byte(1), byte(2), int64(2))
	f.Add(byte(3), byte(8), byte(8), byte(1), byte(5), byte(5), byte(3), byte(1), int64(3))
	f.Add(byte(1), byte(1), byte(1), byte(1), byte(1), byte(1), byte(1), byte(0), int64(4))
	f.Fuzz(func(t *testing.T, cb, hb, wb, ob, khb, kwb, sb, pb byte, seed int64) {
		inC, h, w := int(cb)%4+1, int(hb)%16+1, int(wb)%16+1
		outC, kh, kw := int(ob)%4+1, int(khb)%6+1, int(kwb)%6+1
		spec := ConvSpec{Stride: int(sb)%4 + 1, Pad: int(pb) % 4}
		if ConvOutDim(h, kh, spec.Stride, spec.Pad) <= 0 || ConvOutDim(w, kw, spec.Stride, spec.Pad) <= 0 {
			return // geometry with no output; both kernels reject it
		}
		rng := rand.New(rand.NewSource(seed))
		x := RandBernoulli(rng, 0.3, inC, h, w) // spike-like inputs with exact zeros
		k := RandNormal(rng, 0, 1, outC, inC, kh, kw)
		got, want := Conv2DIm2Col(x, k, spec), Conv2D(x, k, spec)
		for i := range want.Data() {
			if got.Data()[i] != want.Data()[i] {
				t.Fatalf("im2col[%d] = %g, naive = %g (in=[%d,%d,%d] k=[%d,%d,%d,%d] %+v)",
					i, got.Data()[i], want.Data()[i], inC, h, w, outC, inC, kh, kw, spec)
			}
		}
	})
}

// FuzzAccessors drives the bounds-checked accessors Step, RawRange and
// ElemPtr with arbitrary shapes and offsets, asserting the in-range calls
// return aliasing views of the right length and the out-of-range calls
// fail through failf.
func FuzzAccessors(f *testing.F) {
	f.Add(byte(3), byte(4), 1, 0, 6, 2)
	f.Add(byte(1), byte(1), 0, 0, 1, 0)
	f.Add(byte(2), byte(5), -1, 4, 100, -7)
	f.Add(byte(4), byte(2), 9, 1<<62, 1<<62, 8)
	f.Fuzz(func(t *testing.T, d0, d1 byte, stepIdx, start, n, off int) {
		rows := int(d0%5) + 1
		cols := int(d1%5) + 1
		tt := New(rows, cols)
		for i := range tt.Data() {
			tt.Data()[i] = float64(i)
		}
		total := rows * cols

		checkPanic(t, stepIdx < 0 || stepIdx >= rows, func() {
			s := tt.Step(stepIdx)
			if s.Rank() != 1 || s.Len() != cols {
				t.Fatalf("Step shape %v, want [%d]", s.Shape(), cols)
			}
			s.Data()[0] = -1
			if tt.At(stepIdx, 0) != -1 {
				t.Fatal("Step view must alias the parent data")
			}
			tt.Set(float64(stepIdx*cols), stepIdx, 0)
		})

		checkPanic(t, start < 0 || start > total || n < 0 || n > total-start, func() {
			w := tt.RawRange(start, n)
			if len(w) != n || cap(w) != n {
				t.Fatalf("RawRange len/cap = %d/%d, want %d/%d", len(w), cap(w), n, n)
			}
			for i, v := range w {
				if v != float64(start+i) {
					t.Fatalf("RawRange[%d] = %g, want %d", i, v, start+i)
				}
			}
		})

		checkPanic(t, off < 0 || off >= total, func() {
			p := tt.ElemPtr(off)
			*p = 42
			if tt.Data()[off] != 42 {
				t.Fatal("ElemPtr must alias the backing element")
			}
		})
	})
}
