package tensor

import (
	"strings"
	"testing"
)

// checkPanic runs fn and asserts it panics through the failf chokepoint
// exactly when want is true: every bounds violation must surface as a
// controlled "tensor: " panic, never a raw runtime error.
func checkPanic(t *testing.T, want bool, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if want {
			s, ok := r.(string)
			if !ok || !strings.HasPrefix(s, "tensor: ") {
				t.Fatalf("expected controlled tensor panic, got %v", r)
			}
		} else if r != nil {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	fn()
}

// FuzzAccessors drives the bounds-checked accessors Step, RawRange and
// ElemPtr with arbitrary shapes and offsets, asserting the in-range calls
// return aliasing views of the right length and the out-of-range calls
// fail through failf.
func FuzzAccessors(f *testing.F) {
	f.Add(byte(3), byte(4), 1, 0, 6, 2)
	f.Add(byte(1), byte(1), 0, 0, 1, 0)
	f.Add(byte(2), byte(5), -1, 4, 100, -7)
	f.Add(byte(4), byte(2), 9, 1<<62, 1<<62, 8)
	f.Fuzz(func(t *testing.T, d0, d1 byte, stepIdx, start, n, off int) {
		rows := int(d0%5) + 1
		cols := int(d1%5) + 1
		tt := New(rows, cols)
		for i := range tt.Data() {
			tt.Data()[i] = float64(i)
		}
		total := rows * cols

		checkPanic(t, stepIdx < 0 || stepIdx >= rows, func() {
			s := tt.Step(stepIdx)
			if s.Rank() != 1 || s.Len() != cols {
				t.Fatalf("Step shape %v, want [%d]", s.Shape(), cols)
			}
			s.Data()[0] = -1
			if tt.At(stepIdx, 0) != -1 {
				t.Fatal("Step view must alias the parent data")
			}
			tt.Set(float64(stepIdx*cols), stepIdx, 0)
		})

		checkPanic(t, start < 0 || start > total || n < 0 || n > total-start, func() {
			w := tt.RawRange(start, n)
			if len(w) != n || cap(w) != n {
				t.Fatalf("RawRange len/cap = %d/%d, want %d/%d", len(w), cap(w), n, n)
			}
			for i, v := range w {
				if v != float64(start+i) {
					t.Fatalf("RawRange[%d] = %g, want %d", i, v, start+i)
				}
			}
		})

		checkPanic(t, off < 0 || off >= total, func() {
			p := tt.ElemPtr(off)
			*p = 42
			if tt.Data()[off] != 42 {
				t.Fatal("ElemPtr must alias the backing element")
			}
		})
	})
}
