package tensor

// matmulBlock is the tile edge of the cache-blocked matrix product. 64
// columns of float64 are 512 bytes — eight cache lines — so one (i, jb)
// strip of the output and the matching strips of b stay resident while
// the k loop streams over them.
const matmulBlock = 64

// MatMulBlocked returns the matrix product of a (m×k) and b (k×n) using a
// cache-blocked traversal: the i and j loops are tiled, while the k loop
// runs in full, in order, for every output element. Because only the
// iteration over *output elements* is reordered — never the accumulation
// order within one element, including the skip of exact-zero a entries —
// the result is bit-identical to the naive MatMul, which remains the
// reference implementation (the fuzz harness compares the two).
func MatMulBlocked(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		failf("MatMulBlocked requires rank-2 operands, got %v × %v", a.shape, b.shape)
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		failf("MatMulBlocked inner dimension mismatch %v × %v", a.shape, b.shape)
	}
	out := newResult(a, b, m, n)
	for ib := 0; ib < m; ib += matmulBlock {
		imax := ib + matmulBlock
		if imax > m {
			imax = m
		}
		for jb := 0; jb < n; jb += matmulBlock {
			jmax := jb + matmulBlock
			if jmax > n {
				jmax = n
			}
			for i := ib; i < imax; i++ {
				arow := a.data[i*k : (i+1)*k]
				orow := out.data[i*n : (i+1)*n]
				for kk := 0; kk < k; kk++ {
					av := arow[kk]
					if av == 0 {
						continue
					}
					brow := b.data[kk*n+jb : kk*n+jmax]
					for j, bv := range brow {
						orow[jb+j] += av * bv
					}
				}
			}
		}
	}
	return out
}
