package tensor

import (
	"math/rand"
	"sync"
	"testing"
)

// Race smoke tests: tensors have no internal locking, so the contract
// is "concurrent reads are safe; concurrent writes must target disjoint
// elements". These tests encode that contract so `go test -race`
// (verify.sh) exercises it every run.

func TestConcurrentReadsAreRaceFree(t *testing.T) {
	src := RandNormal(rand.New(rand.NewSource(1)), 0, 1, 8, 16)
	want := Sum(src)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				if got := Sum(src); got != want {
					t.Errorf("worker %d: Sum changed under concurrent reads: %g != %g", w, got, want)
					return
				}
				_ = src.At(w, iter%16)
				_ = src.Step(w)
				_ = src.RawRange(w*16, 16)
			}
		}(w)
	}
	wg.Wait()
}

func TestDisjointStepWritesAreRaceFree(t *testing.T) {
	const steps, frame = 8, 12
	out := New(steps, 3, 4)
	var wg sync.WaitGroup
	for s := 0; s < steps; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			out.Step(s).Fill(float64(s))
		}(s)
	}
	wg.Wait()
	for s := 0; s < steps; s++ {
		for _, v := range out.Step(s).Data() {
			if v != float64(s) {
				t.Fatalf("step %d holds %g; disjoint writes interfered", s, v)
			}
		}
	}
	if out.Len() != steps*frame {
		t.Fatalf("Len = %d, want %d", out.Len(), steps*frame)
	}
}
