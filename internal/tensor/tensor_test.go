package tensor

import (
	"math"
	"testing"
)

func TestNewZeroFilled(t *testing.T) {
	x := New(2, 3)
	if x.Len() != 6 {
		t.Fatalf("Len = %d, want 6", x.Len())
	}
	for i, v := range x.Data() {
		if v != 0 {
			t.Errorf("element %d = %g, want 0", i, v)
		}
	}
	if x.Rank() != 2 || x.Dim(0) != 2 || x.Dim(1) != 3 {
		t.Errorf("shape = %v, want [2 3]", x.Shape())
	}
}

func TestScalar(t *testing.T) {
	s := Scalar(3.5)
	if s.Rank() != 0 || s.Len() != 1 || s.Data()[0] != 3.5 {
		t.Fatalf("Scalar(3.5) = %v", s)
	}
}

func TestFromSliceSharesData(t *testing.T) {
	d := []float64{1, 2, 3, 4}
	x := FromSlice(d, 2, 2)
	d[0] = 9
	if x.At(0, 0) != 9 {
		t.Error("FromSlice should wrap the slice, not copy it")
	}
}

func TestFromSliceBadLengthPanics(t *testing.T) {
	defer mustPanic(t, "FromSlice with wrong length")
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestAtSetOffset(t *testing.T) {
	x := New(2, 3, 4)
	x.Set(7, 1, 2, 3)
	if got := x.At(1, 2, 3); got != 7 {
		t.Errorf("At(1,2,3) = %g, want 7", got)
	}
	if off := x.Offset(1, 2, 3); off != 1*12+2*4+3 {
		t.Errorf("Offset(1,2,3) = %d, want 23", off)
	}
}

func TestOffsetOutOfRangePanics(t *testing.T) {
	defer mustPanic(t, "out-of-range index")
	New(2, 2).At(2, 0)
}

func TestOffsetWrongRankPanics(t *testing.T) {
	defer mustPanic(t, "wrong-rank index")
	New(2, 2).At(1)
}

func TestCloneIndependence(t *testing.T) {
	x := FromSlice([]float64{1, 2}, 2)
	c := x.Clone()
	c.Set(5, 0)
	if x.At(0) != 1 {
		t.Error("Clone must not share backing data")
	}
}

func TestReshapeSharesData(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	r := x.Reshape(3, 2)
	r.Set(9, 0, 1)
	if x.At(0, 1) != 9 {
		t.Error("Reshape must share backing data")
	}
	if r.Dim(0) != 3 || r.Dim(1) != 2 {
		t.Errorf("reshaped shape = %v, want [3 2]", r.Shape())
	}
}

func TestReshapeBadCountPanics(t *testing.T) {
	defer mustPanic(t, "reshape with wrong element count")
	New(2, 3).Reshape(4)
}

func TestFullFillZero(t *testing.T) {
	x := Full(2.5, 3)
	for _, v := range x.Data() {
		if v != 2.5 {
			t.Fatalf("Full: got %g", v)
		}
	}
	x.Fill(1)
	if Sum(x) != 3 {
		t.Errorf("Fill(1) sum = %g, want 3", Sum(x))
	}
	x.Zero()
	if Sum(x) != 0 {
		t.Errorf("Zero sum = %g, want 0", Sum(x))
	}
}

func TestSameShapeAndEqual(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 2)
	b := FromSlice([]float64{1, 2.0000001}, 2)
	if !SameShape(a, b) {
		t.Error("SameShape false for identical shapes")
	}
	if SameShape(a, New(2, 1)) {
		t.Error("SameShape true for different shapes")
	}
	if !Equal(a, b, 1e-3) {
		t.Error("Equal false within tolerance")
	}
	if Equal(a, b, 1e-9) {
		t.Error("Equal true beyond tolerance")
	}
	if Equal(a, New(2, 1), 1) {
		t.Error("Equal must require same shape")
	}
}

func TestAllFinite(t *testing.T) {
	x := FromSlice([]float64{1, 2}, 2)
	if !x.AllFinite() {
		t.Error("finite tensor reported non-finite")
	}
	x.Set(math.NaN(), 0)
	if x.AllFinite() {
		t.Error("NaN not detected")
	}
	x.Set(math.Inf(1), 0)
	if x.AllFinite() {
		t.Error("Inf not detected")
	}
}

func TestCopyFrom(t *testing.T) {
	a := New(2, 2)
	b := FromSlice([]float64{1, 2, 3, 4}, 4)
	a.CopyFrom(b) // same element count, different shape is allowed
	if a.At(1, 1) != 4 {
		t.Errorf("CopyFrom: got %g, want 4", a.At(1, 1))
	}
}

func TestStringSmallAndLarge(t *testing.T) {
	small := FromSlice([]float64{1, 2}, 2)
	if s := small.String(); s == "" {
		t.Error("empty String for small tensor")
	}
	large := New(1000)
	if s := large.String(); s == "" {
		t.Error("empty String for large tensor")
	}
}

func mustPanic(t *testing.T, what string) {
	t.Helper()
	if recover() == nil {
		t.Errorf("expected panic: %s", what)
	}
}
