package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func TestMatMulKnown(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	got := MatMul(a, b)
	want := FromSlice([]float64{58, 64, 139, 154}, 2, 2)
	if !Equal(got, want, 1e-12) {
		t.Errorf("MatMul = %v, want %v", got, want)
	}
}

func TestMatMulDimensionMismatchPanics(t *testing.T) {
	defer mustPanic(t, "MatMul inner mismatch")
	MatMul(New(2, 3), New(2, 2))
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := RandNormal(rng, 0, 1, 4, 4)
	id := New(4, 4)
	for i := 0; i < 4; i++ {
		id.Set(1, i, i)
	}
	if !Equal(MatMul(a, id), a, 1e-12) {
		t.Error("A·I ≠ A")
	}
	if !Equal(MatMul(id, a), a, 1e-12) {
		t.Error("I·A ≠ A")
	}
}

func TestMatVecAgainstMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w := RandNormal(rng, 0, 1, 5, 3)
	x := RandNormal(rng, 0, 1, 3)
	got := MatVec(w, x)
	want := MatMul(w, x.Reshape(3, 1)).Reshape(5)
	if !Equal(got, want, 1e-12) {
		t.Errorf("MatVec = %v, want %v", got, want)
	}
}

func TestMatVecTIsTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := RandNormal(rng, 0, 1, 4, 6)
	g := RandNormal(rng, 0, 1, 4)
	got := MatVecT(w, g)
	// Reference: explicit transpose multiply.
	want := New(6)
	for j := 0; j < 6; j++ {
		s := 0.0
		for i := 0; i < 4; i++ {
			s += w.At(i, j) * g.At(i)
		}
		want.Set(s, j)
	}
	if !Equal(got, want, 1e-12) {
		t.Errorf("MatVecT = %v, want %v", got, want)
	}
}

func TestOuter(t *testing.T) {
	g := vec(1, 2)
	x := vec(3, 4, 5)
	got := Outer(g, x)
	want := FromSlice([]float64{3, 4, 5, 6, 8, 10}, 2, 3)
	if !Equal(got, want, 0) {
		t.Errorf("Outer = %v, want %v", got, want)
	}
}

func TestDot(t *testing.T) {
	if d := Dot(vec(1, 2, 3), vec(4, 5, 6)); d != 32 {
		t.Errorf("Dot = %g, want 32", d)
	}
}

// Property: (A·B)·x == A·(B·x) for random matrices and vectors.
func TestMatMulAssociativityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 25; trial++ {
		m := 1 + rng.Intn(6)
		k := 1 + rng.Intn(6)
		n := 1 + rng.Intn(6)
		a := RandNormal(rng, 0, 1, m, k)
		b := RandNormal(rng, 0, 1, k, n)
		x := RandNormal(rng, 0, 1, n)
		left := MatVec(MatMul(a, b), x)
		right := MatVec(a, MatVec(b, x))
		if !Equal(left, right, 1e-9) {
			t.Fatalf("trial %d: (AB)x ≠ A(Bx): %v vs %v", trial, left, right)
		}
	}
}

// Property: MatVec is linear: W(αx+βy) = αWx + βWy.
func TestMatVecLinearityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 25; trial++ {
		rows := 1 + rng.Intn(5)
		cols := 1 + rng.Intn(5)
		w := RandNormal(rng, 0, 1, rows, cols)
		x := RandNormal(rng, 0, 1, cols)
		y := RandNormal(rng, 0, 1, cols)
		al, be := rng.NormFloat64(), rng.NormFloat64()
		lhs := MatVec(w, Add(Scale(x, al), Scale(y, be)))
		rhs := Add(Scale(MatVec(w, x), al), Scale(MatVec(w, y), be))
		if !Equal(lhs, rhs, 1e-9) {
			t.Fatalf("trial %d: linearity violated", trial)
		}
	}
}

// Property: ⟨Wx, g⟩ == ⟨x, Wᵀg⟩ (adjoint identity used by autograd).
func TestMatVecAdjointProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 25; trial++ {
		rows := 1 + rng.Intn(5)
		cols := 1 + rng.Intn(5)
		w := RandNormal(rng, 0, 1, rows, cols)
		x := RandNormal(rng, 0, 1, cols)
		g := RandNormal(rng, 0, 1, rows)
		lhs := Dot(MatVec(w, x), g)
		rhs := Dot(x, MatVecT(w, g))
		if math.Abs(lhs-rhs) > 1e-9 {
			t.Fatalf("trial %d: adjoint identity violated: %g vs %g", trial, lhs, rhs)
		}
	}
}
