package tensor

import "math"

// Add returns a + b elementwise.
func Add(a, b *Tensor) *Tensor {
	assertSameShape("Add", a, b)
	out := newResult(a, b, a.shape...)
	for i := range a.data {
		out.data[i] = a.data[i] + b.data[i]
	}
	return out
}

// Sub returns a - b elementwise.
func Sub(a, b *Tensor) *Tensor {
	assertSameShape("Sub", a, b)
	out := newResult(a, b, a.shape...)
	for i := range a.data {
		out.data[i] = a.data[i] - b.data[i]
	}
	return out
}

// Mul returns a * b elementwise (Hadamard product).
func Mul(a, b *Tensor) *Tensor {
	assertSameShape("Mul", a, b)
	out := newResult(a, b, a.shape...)
	for i := range a.data {
		out.data[i] = a.data[i] * b.data[i]
	}
	return out
}

// Div returns a / b elementwise.
func Div(a, b *Tensor) *Tensor {
	assertSameShape("Div", a, b)
	out := newResult(a, b, a.shape...)
	for i := range a.data {
		out.data[i] = a.data[i] / b.data[i]
	}
	return out
}

// Scale returns a * s elementwise.
func Scale(a *Tensor, s float64) *Tensor {
	out := NewLike(a, a.shape...)
	for i := range a.data {
		out.data[i] = a.data[i] * s
	}
	return out
}

// AddScalar returns a + s elementwise.
func AddScalar(a *Tensor, s float64) *Tensor {
	out := NewLike(a, a.shape...)
	for i := range a.data {
		out.data[i] = a.data[i] + s
	}
	return out
}

// Neg returns -a.
func Neg(a *Tensor) *Tensor { return Scale(a, -1) }

// Abs returns |a| elementwise.
func Abs(a *Tensor) *Tensor {
	out := NewLike(a, a.shape...)
	for i := range a.data {
		out.data[i] = math.Abs(a.data[i])
	}
	return out
}

// Relu returns max(0, a) elementwise.
func Relu(a *Tensor) *Tensor {
	out := NewLike(a, a.shape...)
	for i := range a.data {
		if a.data[i] > 0 {
			out.data[i] = a.data[i]
		}
	}
	return out
}

// Sigmoid returns 1/(1+exp(-a)) elementwise.
func Sigmoid(a *Tensor) *Tensor {
	out := NewLike(a, a.shape...)
	for i := range a.data {
		out.data[i] = 1 / (1 + math.Exp(-a.data[i]))
	}
	return out
}

// Exp returns exp(a) elementwise.
func Exp(a *Tensor) *Tensor {
	out := NewLike(a, a.shape...)
	for i := range a.data {
		out.data[i] = math.Exp(a.data[i])
	}
	return out
}

// Square returns a² elementwise.
func Square(a *Tensor) *Tensor {
	out := NewLike(a, a.shape...)
	for i := range a.data {
		out.data[i] = a.data[i] * a.data[i]
	}
	return out
}

// Heaviside returns 1 where a > threshold, else 0, elementwise.
func Heaviside(a *Tensor, threshold float64) *Tensor {
	out := NewLike(a, a.shape...)
	for i := range a.data {
		if a.data[i] > threshold {
			out.data[i] = 1
		}
	}
	return out
}

// Clamp limits every element of a to [lo, hi].
func Clamp(a *Tensor, lo, hi float64) *Tensor {
	out := NewLike(a, a.shape...)
	for i := range a.data {
		v := a.data[i]
		if v < lo {
			v = lo
		} else if v > hi {
			v = hi
		}
		out.data[i] = v
	}
	return out
}

// AddInPlace computes dst += src elementwise.
//
//snn:hotpath
func AddInPlace(dst, src *Tensor) {
	assertSameShape("AddInPlace", dst, src)
	for i := range dst.data {
		dst.data[i] += src.data[i]
	}
}

// SubInPlace computes dst -= src elementwise.
//
//snn:hotpath
func SubInPlace(dst, src *Tensor) {
	assertSameShape("SubInPlace", dst, src)
	for i := range dst.data {
		dst.data[i] -= src.data[i]
	}
}

// MulInPlace computes dst *= src elementwise.
//
//snn:hotpath
func MulInPlace(dst, src *Tensor) {
	assertSameShape("MulInPlace", dst, src)
	for i := range dst.data {
		dst.data[i] *= src.data[i]
	}
}

// ScaleInPlace computes dst *= s elementwise.
//
//snn:hotpath
func ScaleInPlace(dst *Tensor, s float64) {
	for i := range dst.data {
		dst.data[i] *= s
	}
}

// AddScaledInPlace computes dst += s*src elementwise (axpy).
//
//snn:hotpath
func AddScaledInPlace(dst *Tensor, s float64, src *Tensor) {
	assertSameShape("AddScaledInPlace", dst, src)
	for i := range dst.data {
		dst.data[i] += s * src.data[i]
	}
}

// Apply returns f applied elementwise to a.
func Apply(a *Tensor, f func(float64) float64) *Tensor {
	out := NewLike(a, a.shape...)
	for i := range a.data {
		out.data[i] = f(a.data[i])
	}
	return out
}
