// Package tensor implements dense, contiguous, row-major float64 tensors
// and the numeric kernels needed by the SNN simulator and the autograd
// engine: elementwise arithmetic, matrix products, 2-D convolution and
// pooling windows, reductions, and deterministic random fills.
//
// Tensors are deliberately simple: there are no views or strides beyond
// row-major contiguity. Reshape reuses the backing slice; every other
// operation either writes into a caller-provided destination or allocates
// a fresh result. All shape mismatches panic (routed through the failf
// invariant helper), because in this codebase a shape mismatch is
// always a programming error, never a data error.
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Tensor is a dense row-major float64 tensor. The zero value is an empty
// scalar-less tensor; use the constructors to obtain usable values.
type Tensor struct {
	shape []int
	data  []float64
	// ar tags tensors rooted in an Arena: operations materializing a
	// result from this tensor allocate it from ar instead of the heap.
	// nil (the common case) keeps plain heap allocation.
	ar *Arena
}

// Arena returns the arena this tensor is tagged with (allocated from, or
// adopted into), or nil for plain heap tensors.
func (t *Tensor) Arena() *Arena { return t.ar }

// New returns a zero-filled tensor with the given shape. A nil or empty
// shape produces a scalar (one element, rank 0).
func New(shape ...int) *Tensor {
	n := numel(shape)
	return &Tensor{shape: cloneShape(shape), data: make([]float64, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); its length must equal the shape's element count.
func FromSlice(data []float64, shape ...int) *Tensor {
	if len(data) != numel(shape) {
		failf("FromSlice data length %d does not match shape %v (%d elements)", len(data), shape, numel(shape))
	}
	return &Tensor{shape: cloneShape(shape), data: data}
}

// Full returns a tensor of the given shape with every element set to v.
func Full(v float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Scalar returns a rank-0 tensor holding v.
func Scalar(v float64) *Tensor {
	return &Tensor{shape: nil, data: []float64{v}}
}

// numel returns the element count of a shape; the empty shape has one
// element (a scalar).
func numel(shape []int) int {
	n := 1
	for _, d := range shape {
		if d < 0 {
			failf("negative dimension in shape %v", shape)
		}
		n *= d
	}
	return n
}

func cloneShape(shape []int) []int {
	if len(shape) == 0 {
		return nil
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return s
}

// Shape returns the tensor's shape. The returned slice must not be mutated.
func (t *Tensor) Shape() []int { return t.shape }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Data returns the backing slice in row-major order. Mutating it mutates
// the tensor.
func (t *Tensor) Data() []float64 { return t.data }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 { return t.data[t.Offset(idx...)] }

// Set assigns v to the element at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) { t.data[t.Offset(idx...)] = v }

// Offset converts a multi-index into a flat row-major offset.
func (t *Tensor) Offset(idx ...int) int {
	if len(idx) != len(t.shape) {
		failf("index rank %d does not match tensor rank %d", len(idx), len(t.shape))
	}
	off := 0
	for i, ix := range idx {
		if ix < 0 || ix >= t.shape[i] {
			failf("index %v out of range for shape %v", idx, t.shape)
		}
		off = off*t.shape[i] + ix
	}
	return off
}

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// CopyFrom copies src's elements into t. Shapes must match in element count.
func (t *Tensor) CopyFrom(src *Tensor) {
	if len(t.data) != len(src.data) {
		failf("CopyFrom size mismatch %v vs %v", t.shape, src.shape)
	}
	copy(t.data, src.data)
}

// Reshape returns a tensor sharing t's backing data with a new shape of the
// same element count. The view inherits t's arena tag.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	if numel(shape) != len(t.data) {
		failf("cannot reshape %v (%d elements) to %v (%d elements)", t.shape, len(t.data), shape, numel(shape))
	}
	if t.ar != nil {
		return t.ar.header(shape, t.data)
	}
	return &Tensor{shape: cloneShape(shape), data: t.data}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.data {
		t.data[i] = v
	}
}

// SameShape reports whether a and b have identical shapes.
func SameShape(a, b *Tensor) bool {
	if len(a.shape) != len(b.shape) {
		return false
	}
	for i := range a.shape {
		if a.shape[i] != b.shape[i] {
			return false
		}
	}
	return true
}

// assertSameShape panics with op context if a and b differ in shape.
func assertSameShape(op string, a, b *Tensor) {
	if !SameShape(a, b) {
		failf("%s shape mismatch %v vs %v", op, a.shape, b.shape)
	}
}

// failf is the package's invariant-check chokepoint: every shape or
// bounds violation panics through it, because in this codebase those
// are always programming errors, never data errors.
func failf(format string, args ...any) {
	panic("tensor: " + fmt.Sprintf(format, args...))
}

// Step returns a view of frame i along the first axis: a tensor of
// shape t.Shape()[1:] sharing t's backing data. It is the sanctioned
// way to address one time step of a [T, frame...] spike train without
// raw stride arithmetic.
func (t *Tensor) Step(i int) *Tensor {
	if len(t.shape) == 0 {
		failf("Step on rank-0 tensor")
	}
	if i < 0 || i >= t.shape[0] {
		failf("Step index %d out of range for shape %v", i, t.shape)
	}
	frame := 1
	for _, d := range t.shape[1:] {
		frame *= d
	}
	view := t.data[i*frame : (i+1)*frame : (i+1)*frame]
	if t.ar != nil {
		return t.ar.header(t.shape[1:], view)
	}
	return &Tensor{shape: cloneShape(t.shape[1:]), data: view}
}

// ViewRange returns a tensor viewing elements [start, start+n) of t's
// backing slice under the given shape (whose element count must be n).
// Like Step, the view shares storage and inherits t's arena tag; it is the
// shaped counterpart of RawRange for callers that need a Tensor header.
func (t *Tensor) ViewRange(start, n int, shape ...int) *Tensor {
	if numel(shape) != n {
		failf("ViewRange shape %v does not hold %d elements", shape, n)
	}
	view := t.RawRange(start, n)
	if t.ar != nil {
		return t.ar.header(shape, view)
	}
	return &Tensor{shape: cloneShape(shape), data: view}
}

// RawRange returns the bounds-checked window [start, start+n) of the
// backing slice. Callers that need a raw float64 window (copy targets,
// kernel interop) use it instead of re-deriving offsets on Data().
//
//snn:hotpath
func (t *Tensor) RawRange(start, n int) []float64 {
	// n is compared against the remaining length rather than start+n
	// against the total, so a huge start+n cannot overflow past the check.
	if start < 0 || start > len(t.data) || n < 0 || n > len(t.data)-start {
		failf("RawRange [%d, %d+%d) out of range for %d elements", start, start, n, len(t.data))
	}
	return t.data[start : start+n : start+n]
}

// ElemPtr returns a pointer to the element at flat offset off, for
// in-place mutation hooks (e.g. fault injection into one weight).
//
//snn:hotpath
func (t *Tensor) ElemPtr(off int) *float64 {
	if off < 0 || off >= len(t.data) {
		failf("ElemPtr offset %d out of range for %d elements", off, len(t.data))
	}
	return &t.data[off]
}

// String renders small tensors fully and large ones as a summary.
func (t *Tensor) String() string {
	const maxElems = 64
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v", t.shape)
	if len(t.data) <= maxElems {
		fmt.Fprintf(&b, "%v", t.data)
	} else {
		fmt.Fprintf(&b, "[%g %g %g ... %g] (%d elements)", t.data[0], t.data[1], t.data[2], t.data[len(t.data)-1], len(t.data))
	}
	return b.String()
}

// AllFinite reports whether every element is finite (no NaN or Inf).
func (t *Tensor) AllFinite() bool {
	for _, v := range t.data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// Equal reports whether a and b have the same shape and elementwise equal
// values within tolerance tol.
func Equal(a, b *Tensor, tol float64) bool {
	if !SameShape(a, b) {
		return false
	}
	for i := range a.data {
		if math.Abs(a.data[i]-b.data[i]) > tol {
			return false
		}
	}
	return true
}
