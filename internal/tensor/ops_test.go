package tensor

import (
	"math"
	"testing"
)

func vec(vals ...float64) *Tensor { return FromSlice(vals, len(vals)) }

func TestAddSubMulDiv(t *testing.T) {
	a := vec(1, 2, 3)
	b := vec(4, 5, 6)
	if got := Add(a, b); !Equal(got, vec(5, 7, 9), 0) {
		t.Errorf("Add = %v", got)
	}
	if got := Sub(a, b); !Equal(got, vec(-3, -3, -3), 0) {
		t.Errorf("Sub = %v", got)
	}
	if got := Mul(a, b); !Equal(got, vec(4, 10, 18), 0) {
		t.Errorf("Mul = %v", got)
	}
	if got := Div(b, a); !Equal(got, vec(4, 2.5, 2), 0) {
		t.Errorf("Div = %v", got)
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	defer mustPanic(t, "Add with mismatched shapes")
	Add(vec(1), vec(1, 2))
}

func TestScaleNegAddScalar(t *testing.T) {
	a := vec(1, -2)
	if got := Scale(a, 3); !Equal(got, vec(3, -6), 0) {
		t.Errorf("Scale = %v", got)
	}
	if got := Neg(a); !Equal(got, vec(-1, 2), 0) {
		t.Errorf("Neg = %v", got)
	}
	if got := AddScalar(a, 10); !Equal(got, vec(11, 8), 0) {
		t.Errorf("AddScalar = %v", got)
	}
}

func TestAbsReluSquareClamp(t *testing.T) {
	a := vec(-2, 0, 3)
	if got := Abs(a); !Equal(got, vec(2, 0, 3), 0) {
		t.Errorf("Abs = %v", got)
	}
	if got := Relu(a); !Equal(got, vec(0, 0, 3), 0) {
		t.Errorf("Relu = %v", got)
	}
	if got := Square(a); !Equal(got, vec(4, 0, 9), 0) {
		t.Errorf("Square = %v", got)
	}
	if got := Clamp(a, -1, 2); !Equal(got, vec(-1, 0, 2), 0) {
		t.Errorf("Clamp = %v", got)
	}
}

func TestSigmoidExp(t *testing.T) {
	s := Sigmoid(vec(0))
	if math.Abs(s.Data()[0]-0.5) > 1e-12 {
		t.Errorf("Sigmoid(0) = %g, want 0.5", s.Data()[0])
	}
	e := Exp(vec(1))
	if math.Abs(e.Data()[0]-math.E) > 1e-12 {
		t.Errorf("Exp(1) = %g", e.Data()[0])
	}
}

func TestHeaviside(t *testing.T) {
	got := Heaviside(vec(-1, 0.5, 2), 1.0)
	if !Equal(got, vec(0, 0, 1), 0) {
		t.Errorf("Heaviside = %v", got)
	}
	// Equality with the threshold does not fire (strict >).
	got = Heaviside(vec(1), 1.0)
	if got.Data()[0] != 0 {
		t.Error("Heaviside must be strict")
	}
}

func TestInPlaceOps(t *testing.T) {
	a := vec(1, 2)
	AddInPlace(a, vec(10, 20))
	if !Equal(a, vec(11, 22), 0) {
		t.Errorf("AddInPlace = %v", a)
	}
	SubInPlace(a, vec(1, 2))
	if !Equal(a, vec(10, 20), 0) {
		t.Errorf("SubInPlace = %v", a)
	}
	MulInPlace(a, vec(2, 0.5))
	if !Equal(a, vec(20, 10), 0) {
		t.Errorf("MulInPlace = %v", a)
	}
	ScaleInPlace(a, 0.1)
	if !Equal(a, vec(2, 1), 1e-12) {
		t.Errorf("ScaleInPlace = %v", a)
	}
	AddScaledInPlace(a, 2, vec(1, 1))
	if !Equal(a, vec(4, 3), 1e-12) {
		t.Errorf("AddScaledInPlace = %v", a)
	}
}

func TestApply(t *testing.T) {
	got := Apply(vec(1, 2, 3), func(v float64) float64 { return v * v })
	if !Equal(got, vec(1, 4, 9), 0) {
		t.Errorf("Apply = %v", got)
	}
}
