package tensor

import (
	"math"
	"math/rand"
)

// RandUniform returns a tensor with elements drawn uniformly from [lo, hi).
func RandUniform(rng *rand.Rand, lo, hi float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = lo + (hi-lo)*rng.Float64()
	}
	return t
}

// RandNormal returns a tensor with elements drawn from N(mean, std²).
func RandNormal(rng *rand.Rand, mean, std float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = mean + std*rng.NormFloat64()
	}
	return t
}

// RandBernoulli returns a binary tensor with P(element = 1) = p.
func RandBernoulli(rng *rand.Rand, p float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		if rng.Float64() < p {
			t.data[i] = 1
		}
	}
	return t
}

// KaimingNormal returns a weight tensor initialized from N(0, 2/fanIn),
// the standard initialization for layers followed by threshold
// nonlinearities.
func KaimingNormal(rng *rand.Rand, fanIn int, shape ...int) *Tensor {
	std := 1.0
	if fanIn > 0 {
		std = math.Sqrt(2.0 / float64(fanIn))
	}
	return RandNormal(rng, 0, std, shape...)
}
