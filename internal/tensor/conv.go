package tensor

// ConvSpec describes the geometry of a 2-D convolution or pooling window.
type ConvSpec struct {
	Stride int // window step, ≥ 1
	Pad    int // zero padding on each spatial border, ≥ 0
}

// ConvOutDim returns the output spatial size for an input of size in with a
// kernel of size k under the given stride and padding.
func ConvOutDim(in, k, stride, pad int) int {
	return (in+2*pad-k)/stride + 1
}

// Conv2D computes the cross-correlation of input x [inC,H,W] with kernel
// w [outC,inC,kH,kW], producing [outC,outH,outW]. Stride and padding follow
// the usual CNN convention; bias is not applied (spiking layers have none).
//
// When the result is arena-backed (an operand is arena-tagged) the
// convolution runs through the im2col kernel with the column buffer drawn
// from the same arena: the fast generation engine gets the branch-free
// path while heap callers — including the reference engine — keep the
// naive loops below, which remain the comparison baseline. The two paths
// are bit-identical (see the im2col numerical contract; the fuzz harness
// differentiates them).
func Conv2D(x, w *Tensor, spec ConvSpec) *Tensor {
	if x.Rank() != 3 || w.Rank() != 4 {
		failf("Conv2D requires input rank 3 and kernel rank 4, got %v and %v", x.shape, w.shape)
	}
	inC, h, wd := x.shape[0], x.shape[1], x.shape[2]
	outC, kc, kh, kw := w.shape[0], w.shape[1], w.shape[2], w.shape[3]
	if kc != inC {
		failf("Conv2D channel mismatch input %v kernel %v", x.shape, w.shape)
	}
	oh := ConvOutDim(h, kh, spec.Stride, spec.Pad)
	ow := ConvOutDim(wd, kw, spec.Stride, spec.Pad)
	if oh <= 0 || ow <= 0 {
		failf("Conv2D produces empty output for input %v kernel %v spec %+v", x.shape, w.shape, spec)
	}
	out := newResult(x, w, outC, oh, ow)
	if out.ar != nil {
		col := out.ar.allocDataUnzeroed(Im2ColLen(inC, h, wd, kh, kw, spec))
		Im2Col(col, x.data, inC, h, wd, kh, kw, spec)
		Conv2DColInto(out.data, col, w)
		return out
	}
	for oc := 0; oc < outC; oc++ {
		for oy := 0; oy < oh; oy++ {
			iy0 := oy*spec.Stride - spec.Pad
			ky0, ky1 := clampKernelRange(iy0, kh, h)
			for ox := 0; ox < ow; ox++ {
				s := 0.0
				ix0 := ox*spec.Stride - spec.Pad
				kx0, kx1 := clampKernelRange(ix0, kw, wd)
				for ic := 0; ic < inC; ic++ {
					for ky := ky0; ky < ky1; ky++ {
						iy := iy0 + ky
						xrow := x.data[(ic*h+iy)*wd : (ic*h+iy+1)*wd]
						wrow := w.data[((oc*inC+ic)*kh+ky)*kw : ((oc*inC+ic)*kh+ky+1)*kw]
						for kx := kx0; kx < kx1; kx++ {
							s += xrow[ix0+kx] * wrow[kx]
						}
					}
				}
				out.data[(oc*oh+oy)*ow+ox] = s
			}
		}
	}
	return out
}

// clampKernelRange returns the half-open kernel-coordinate range [k0, k1)
// whose taps land inside an input axis of the given size when the window
// origin is at i0. Out-of-range taps read zero padding and contribute
// nothing, so iterating only the clamped range preserves the exact
// accumulation sequence of the full branchy loop.
func clampKernelRange(i0, k, size int) (int, int) {
	k0, k1 := 0, k
	if i0 < 0 {
		k0 = -i0
	}
	if i0+k1 > size {
		k1 = size - i0
	}
	if k1 < k0 {
		k1 = k0
	}
	return k0, k1
}

// Conv2DBackwardInput returns ∂L/∂x given upstream gradient g [outC,outH,outW]
// for Conv2D(x, w, spec) with input shape [inC,H,W].
func Conv2DBackwardInput(g, w *Tensor, inShape []int, spec ConvSpec) *Tensor {
	inC, h, wd := inShape[0], inShape[1], inShape[2]
	outC, _, kh, kw := w.shape[0], w.shape[1], w.shape[2], w.shape[3]
	oh, ow := g.shape[1], g.shape[2]
	dx := newResult(g, w, inC, h, wd)
	for oc := 0; oc < outC; oc++ {
		for oy := 0; oy < oh; oy++ {
			iy0 := oy*spec.Stride - spec.Pad
			ky0, ky1 := clampKernelRange(iy0, kh, h)
			for ox := 0; ox < ow; ox++ {
				gv := g.data[(oc*oh+oy)*ow+ox]
				if gv == 0 {
					continue
				}
				ix0 := ox*spec.Stride - spec.Pad
				kx0, kx1 := clampKernelRange(ix0, kw, wd)
				for ic := 0; ic < inC; ic++ {
					for ky := ky0; ky < ky1; ky++ {
						iy := iy0 + ky
						drow := dx.data[(ic*h+iy)*wd : (ic*h+iy+1)*wd]
						wrow := w.data[((oc*inC+ic)*kh+ky)*kw : ((oc*inC+ic)*kh+ky+1)*kw]
						for kx := kx0; kx < kx1; kx++ {
							drow[ix0+kx] += gv * wrow[kx]
						}
					}
				}
			}
		}
	}
	return dx
}

// Conv2DBackwardKernel returns ∂L/∂w given upstream gradient g
// [outC,outH,outW] for Conv2D(x, w, spec) with kernel shape kShape.
func Conv2DBackwardKernel(g, x *Tensor, kShape []int, spec ConvSpec) *Tensor {
	outC, inC, kh, kw := kShape[0], kShape[1], kShape[2], kShape[3]
	h, wd := x.shape[1], x.shape[2]
	oh, ow := g.shape[1], g.shape[2]
	dw := newResult(g, x, outC, inC, kh, kw)
	for oc := 0; oc < outC; oc++ {
		for oy := 0; oy < oh; oy++ {
			iy0 := oy*spec.Stride - spec.Pad
			ky0, ky1 := clampKernelRange(iy0, kh, h)
			for ox := 0; ox < ow; ox++ {
				gv := g.data[(oc*oh+oy)*ow+ox]
				if gv == 0 {
					continue
				}
				ix0 := ox*spec.Stride - spec.Pad
				kx0, kx1 := clampKernelRange(ix0, kw, wd)
				for ic := 0; ic < inC; ic++ {
					for ky := ky0; ky < ky1; ky++ {
						iy := iy0 + ky
						xrow := x.data[(ic*h+iy)*wd : (ic*h+iy+1)*wd]
						wrow := dw.data[((oc*inC+ic)*kh+ky)*kw : ((oc*inC+ic)*kh+ky+1)*kw]
						for kx := kx0; kx < kx1; kx++ {
							wrow[kx] += gv * xrow[ix0+kx]
						}
					}
				}
			}
		}
	}
	return dw
}

// SumPool2D sums non-overlapping k×k windows of x [C,H,W] per channel,
// producing [C,H/k,W/k]. H and W must be divisible by k.
func SumPool2D(x *Tensor, k int) *Tensor {
	if x.Rank() != 3 {
		failf("SumPool2D requires rank-3 input, got %v", x.shape)
	}
	c, h, w := x.shape[0], x.shape[1], x.shape[2]
	if h%k != 0 || w%k != 0 {
		failf("SumPool2D input %v not divisible by window %d", x.shape, k)
	}
	oh, ow := h/k, w/k
	out := NewLike(x, c, oh, ow)
	for ci := 0; ci < c; ci++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				s := 0.0
				for ky := 0; ky < k; ky++ {
					row := x.data[(ci*h+oy*k+ky)*w : (ci*h+oy*k+ky+1)*w]
					for kx := 0; kx < k; kx++ {
						s += row[ox*k+kx]
					}
				}
				out.data[(ci*oh+oy)*ow+ox] = s
			}
		}
	}
	return out
}

// SumPool2DBackward distributes upstream gradient g [C,H/k,W/k] back over
// the k×k windows of the input shape [C,H,W].
func SumPool2DBackward(g *Tensor, inShape []int, k int) *Tensor {
	c, h, w := inShape[0], inShape[1], inShape[2]
	oh, ow := g.shape[1], g.shape[2]
	dx := NewLike(g, c, h, w)
	for ci := 0; ci < c; ci++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				gv := g.data[(ci*oh+oy)*ow+ox]
				if gv == 0 {
					continue
				}
				for ky := 0; ky < k; ky++ {
					row := dx.data[(ci*h+oy*k+ky)*w : (ci*h+oy*k+ky+1)*w]
					for kx := 0; kx < k; kx++ {
						row[ox*k+kx] += gv
					}
				}
			}
		}
	}
	return dx
}
