package tensor

// Arena is a bump allocator for tensors that share one lifetime: a caller
// that rebuilds the same transient computation every iteration (the
// autograd tape of one optimization step) allocates its intermediate
// tensors from an arena and recycles all of them with a single Reset,
// instead of feeding the garbage collector thousands of short-lived
// slices per step.
//
// Tensors allocated from an arena are tagged with it, and every tensor
// operation that materializes a result (Add, MatVec, Conv2D, …) allocates
// that result from the first tagged operand's arena. The tag therefore
// propagates through a computation automatically once its roots are
// arena-backed; Adopt tags an existing heap tensor as such a root without
// moving its storage.
//
// Reset invalidates every tensor previously allocated from the arena: the
// next allocations reuse the same memory. Results that must outlive the
// iteration are copied out with Clone, which always allocates from the
// heap. An Arena is confined to one goroutine.
type Arena struct {
	data   [][]float64
	di, do int // current data block, offset
	hdr    [][]Tensor
	hi, ho int
	dims   [][]int
	mi, mo int

	aux      any    // client allocator recycled with the arena (SetAux)
	auxReset func() // invoked at the start of every Reset
}

// Arena block sizes: data blocks hold the flat float64 payloads, header
// blocks the Tensor structs, dim blocks the shape ints. Oversized requests
// get a dedicated block.
const (
	arenaDataBlock = 1 << 15
	arenaHdrBlock  = 1 << 10
	arenaDimBlock  = 1 << 12
)

// NewArena returns an empty arena. Blocks are allocated lazily on first
// use and retained across Reset.
func NewArena() *Arena { return &Arena{} }

// Reset recycles every allocation made since the previous Reset. Tensors
// handed out before the call must no longer be used: their storage is
// reused by subsequent allocations.
func (a *Arena) Reset() {
	if a.auxReset != nil {
		a.auxReset()
	}
	a.di, a.do = 0, 0
	a.hi, a.ho = 0, 0
	a.mi, a.mo = 0, 0
}

// SetAux attaches a client-owned auxiliary allocator whose lifetime
// tracks the arena's: onReset runs at the start of every Reset, recycling
// the client allocations together with the tensors they reference. The
// autograd engine uses this to recycle graph-node structs alongside the
// arena-backed value tensors they wrap.
func (a *Arena) SetAux(aux any, onReset func()) {
	a.aux, a.auxReset = aux, onReset
}

// Aux returns the allocator attached with SetAux, or nil.
func (a *Arena) Aux() any { return a.aux }

// allocData returns a zeroed float64 span of length n from the arena.
func (a *Arena) allocData(n int) []float64 {
	s := a.allocDataUnzeroed(n)
	for i := range s {
		s[i] = 0
	}
	return s
}

// allocDataUnzeroed returns a float64 span of length n holding whatever a
// previous arena generation left there. Only for buffers the caller
// overwrites in full before reading (the im2col column matrix).
func (a *Arena) allocDataUnzeroed(n int) []float64 {
	for a.di < len(a.data) && len(a.data[a.di])-a.do < n {
		a.di++
		a.do = 0
	}
	if a.di == len(a.data) {
		size := arenaDataBlock
		if n > size {
			size = n
		}
		a.data = append(a.data, make([]float64, size))
		a.do = 0
	}
	s := a.data[a.di][a.do : a.do+n : a.do+n]
	a.do += n
	return s
}

// allocDims returns an int span of length n (shape storage, overwritten by
// the caller).
func (a *Arena) allocDims(n int) []int {
	for a.mi < len(a.dims) && len(a.dims[a.mi])-a.mo < n {
		a.mi++
		a.mo = 0
	}
	if a.mi == len(a.dims) {
		size := arenaDimBlock
		if n > size {
			size = n
		}
		a.dims = append(a.dims, make([]int, size))
		a.mo = 0
	}
	s := a.dims[a.mi][a.mo : a.mo+n : a.mo+n]
	a.mo += n
	return s
}

// header returns an arena-tagged Tensor struct wrapping data under a copy
// of shape.
func (a *Arena) header(shape []int, data []float64) *Tensor {
	for a.hi < len(a.hdr) && a.ho == len(a.hdr[a.hi]) {
		a.hi++
		a.ho = 0
	}
	if a.hi == len(a.hdr) {
		a.hdr = append(a.hdr, make([]Tensor, arenaHdrBlock))
		a.ho = 0
	}
	t := &a.hdr[a.hi][a.ho]
	a.ho++
	var sh []int
	if len(shape) > 0 {
		sh = a.allocDims(len(shape))
		copy(sh, shape)
	}
	t.shape = sh
	t.data = data
	t.ar = a
	return t
}

// New returns a zero-filled tensor of the given shape allocated from the
// arena. It is the arena-backed equivalent of the package-level New.
func (a *Arena) New(shape ...int) *Tensor {
	return a.header(shape, a.allocData(numel(shape)))
}

// Adopt tags t with the arena so results derived from t allocate from it.
// t's own storage is untouched: it remains heap-owned, survives Reset, and
// is the intended way to root an arena-backed computation at a persistent
// input tensor.
func (a *Arena) Adopt(t *Tensor) { t.ar = a }

// NewLike returns a zero-filled tensor of the given shape, allocated from
// like's arena when like is arena-tagged and from the heap otherwise. It
// is the allocation chokepoint of every tensor operation that materializes
// a result from one operand.
func NewLike(like *Tensor, shape ...int) *Tensor {
	if like != nil && like.ar != nil {
		return like.ar.New(shape...)
	}
	return New(shape...)
}

// FullLike is NewLike with every element set to v.
func FullLike(like *Tensor, v float64, shape ...int) *Tensor {
	t := NewLike(like, shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// newResult allocates the result tensor of a binary operation: from a's
// arena if tagged, else from b's, else from the heap. Either operand may
// be nil.
func newResult(a, b *Tensor, shape ...int) *Tensor {
	if a != nil && a.ar != nil {
		return a.ar.New(shape...)
	}
	return NewLike(b, shape...)
}
