package tensor

import "testing"

func TestArenaNewZeroesRecycledMemory(t *testing.T) {
	a := NewArena()
	x := a.New(4, 4)
	for i := range x.Data() {
		x.Data()[i] = 7
	}
	a.Reset()
	y := a.New(4, 4)
	for i, v := range y.Data() {
		if v != 0 {
			t.Fatalf("recycled arena tensor not zeroed at %d: %g", i, v)
		}
	}
	if &x.Data()[0] != &y.Data()[0] {
		t.Fatal("Reset must recycle the data block, not allocate a new one")
	}
}

func TestArenaTagPropagatesThroughOps(t *testing.T) {
	a := NewArena()
	x := a.New(3)
	y := Add(x, New(3))
	if y.ar != a {
		t.Fatal("Add result of an arena tensor must be arena-tagged")
	}
	if z := Add(New(3), x); z.ar != a {
		t.Fatal("arena tag must propagate from either operand")
	}
	if r := y.Reshape(3, 1); r.ar != a {
		t.Fatal("Reshape view must inherit the arena tag")
	}
	if s := y.Reshape(1, 3).Step(0); s.ar != a {
		t.Fatal("Step view must inherit the arena tag")
	}
	if v := y.ViewRange(1, 2, 2); v.ar != a {
		t.Fatal("ViewRange view must inherit the arena tag")
	}
	if c := y.Clone(); c.ar != nil {
		t.Fatal("Clone must escape to the heap (survives Reset)")
	}
}

func TestArenaAdoptRootsPropagationWithoutOwningStorage(t *testing.T) {
	a := NewArena()
	root := New(5)
	root.Fill(3)
	a.Adopt(root)
	d := Scale(root, 2)
	if d.ar != a {
		t.Fatal("result derived from an adopted tensor must be arena-backed")
	}
	a.Reset()
	for _, v := range root.Data() {
		if v != 3 {
			t.Fatal("adopted tensor's heap storage must survive Reset")
		}
	}
}

func TestArenaLargeAllocationGetsDedicatedBlock(t *testing.T) {
	a := NewArena()
	big := a.New(arenaDataBlock + 10)
	if big.Len() != arenaDataBlock+10 {
		t.Fatalf("big alloc length %d", big.Len())
	}
	small := a.New(8)
	_ = small
	a.Reset()
	again := a.New(arenaDataBlock + 10)
	if &big.Data()[0] != &again.Data()[0] {
		t.Fatal("oversized block must be reused after Reset")
	}
}

func TestNewLikeHeapFallback(t *testing.T) {
	x := New(2, 2)
	if y := NewLike(x, 4); y.ar != nil {
		t.Fatal("NewLike of an untagged tensor must stay on the heap")
	}
	if y := NewLike(nil, 4); y.ar != nil || y.Len() != 4 {
		t.Fatal("NewLike(nil) must behave like New")
	}
	if f := FullLike(nil, 2.5, 3); f.Data()[1] != 2.5 {
		t.Fatal("FullLike must fill with v")
	}
}
