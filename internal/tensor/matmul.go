package tensor

// MatMul returns the matrix product of a (m×k) and b (k×n) as an m×n tensor.
func MatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		failf("MatMul requires rank-2 operands, got %v × %v", a.shape, b.shape)
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		failf("MatMul inner dimension mismatch %v × %v", a.shape, b.shape)
	}
	out := newResult(a, b, m, n)
	// ikj loop order keeps the inner loop streaming over contiguous rows.
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		orow := out.data[i*n : (i+1)*n]
		for kk := 0; kk < k; kk++ {
			av := arow[kk]
			if av == 0 {
				continue
			}
			brow := b.data[kk*n : (kk+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}

// MatVec returns w·x for a weight matrix w (out×in) and vector x (in).
func MatVec(w, x *Tensor) *Tensor {
	if w.Rank() != 2 {
		failf("MatVec requires rank-2 matrix, got %v", w.shape)
	}
	rows, cols := w.shape[0], w.shape[1]
	if x.Len() != cols {
		failf("MatVec dimension mismatch %v · %v", w.shape, x.shape)
	}
	out := newResult(w, x, rows)
	xd := x.data
	for i := 0; i < rows; i++ {
		wrow := w.data[i*cols : (i+1)*cols]
		s := 0.0
		for j, xv := range xd {
			s += wrow[j] * xv
		}
		out.data[i] = s
	}
	return out
}

// MatVecT returns wᵀ·g for a weight matrix w (out×in) and vector g (out):
// the gradient of MatVec(w, x) with respect to x.
func MatVecT(w, g *Tensor) *Tensor {
	rows, cols := w.shape[0], w.shape[1]
	if g.Len() != rows {
		failf("MatVecT dimension mismatch %vᵀ · %v", w.shape, g.shape)
	}
	out := newResult(w, g, cols)
	for i := 0; i < rows; i++ {
		gv := g.data[i]
		if gv == 0 {
			continue
		}
		wrow := w.data[i*cols : (i+1)*cols]
		for j := 0; j < cols; j++ {
			out.data[j] += wrow[j] * gv
		}
	}
	return out
}

// Outer returns the outer product g⊗x as a len(g)×len(x) matrix: the
// gradient of MatVec(w, x) with respect to w.
func Outer(g, x *Tensor) *Tensor {
	rows, cols := g.Len(), x.Len()
	out := newResult(g, x, rows, cols)
	for i := 0; i < rows; i++ {
		gv := g.data[i]
		if gv == 0 {
			continue
		}
		orow := out.data[i*cols : (i+1)*cols]
		for j := 0; j < cols; j++ {
			orow[j] = gv * x.data[j]
		}
	}
	return out
}

// Dot returns the inner product of two equal-length tensors.
//
//snn:hotpath
func Dot(a, b *Tensor) float64 {
	if a.Len() != b.Len() {
		failf("Dot length mismatch %v vs %v", a.shape, b.shape)
	}
	s := 0.0
	for i := range a.data {
		s += a.data[i] * b.data[i]
	}
	return s
}
