package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func TestConvOutDim(t *testing.T) {
	cases := []struct{ in, k, stride, pad, want int }{
		{5, 3, 1, 0, 3},
		{5, 3, 1, 1, 5},
		{5, 3, 2, 0, 2},
		{34, 5, 2, 0, 15},
		{128, 4, 4, 0, 32},
	}
	for _, c := range cases {
		if got := ConvOutDim(c.in, c.k, c.stride, c.pad); got != c.want {
			t.Errorf("ConvOutDim(%d,%d,%d,%d) = %d, want %d", c.in, c.k, c.stride, c.pad, got, c.want)
		}
	}
}

func TestConv2DKnown(t *testing.T) {
	// 1 channel, 3×3 input, 2×2 kernel of ones: output sums 2×2 windows.
	x := FromSlice([]float64{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 3, 3)
	w := Full(1, 1, 1, 2, 2)
	got := Conv2D(x, w, ConvSpec{Stride: 1})
	want := FromSlice([]float64{12, 16, 24, 28}, 1, 2, 2)
	if !Equal(got, want, 1e-12) {
		t.Errorf("Conv2D = %v, want %v", got, want)
	}
}

func TestConv2DPadding(t *testing.T) {
	// 3×3 ones convolved with a 3×3 ones kernel at pad 1: each output
	// counts how many valid input pixels its window covers.
	x := Full(1, 1, 3, 3)
	w := Full(1, 1, 1, 3, 3)
	got := Conv2D(x, w, ConvSpec{Stride: 1, Pad: 1})
	want := FromSlice([]float64{
		4, 6, 4,
		6, 9, 6,
		4, 6, 4,
	}, 1, 3, 3)
	if !Equal(got, want, 1e-12) {
		t.Errorf("Conv2D with pad = %v, want %v", got, want)
	}
}

func TestConv2DStride(t *testing.T) {
	x := FromSlice([]float64{
		1, 0, 2, 0,
		0, 0, 0, 0,
		3, 0, 4, 0,
		0, 0, 0, 0,
	}, 1, 4, 4)
	w := Full(1, 1, 1, 1, 1)
	got := Conv2D(x, w, ConvSpec{Stride: 2})
	want := FromSlice([]float64{1, 2, 3, 4}, 1, 2, 2)
	if !Equal(got, want, 1e-12) {
		t.Errorf("strided Conv2D = %v, want %v", got, want)
	}
}

func TestConv2DMultiChannel(t *testing.T) {
	// Two input channels summed by a kernel with per-channel weights 1 and 10.
	x := New(2, 2, 2)
	x.Set(1, 0, 0, 0)
	x.Set(1, 1, 0, 0)
	w := New(1, 2, 1, 1)
	w.Set(1, 0, 0, 0, 0)
	w.Set(10, 0, 1, 0, 0)
	got := Conv2D(x, w, ConvSpec{Stride: 1})
	if got.At(0, 0, 0) != 11 {
		t.Errorf("multichannel conv = %g, want 11", got.At(0, 0, 0))
	}
}

func TestConv2DChannelMismatchPanics(t *testing.T) {
	defer mustPanic(t, "channel mismatch")
	Conv2D(New(2, 3, 3), New(1, 1, 2, 2), ConvSpec{Stride: 1})
}

// Gradient identities checked by finite differences: the adjoint pair
// (BackwardInput, BackwardKernel) must match numerical derivatives of a
// scalar loss L = Σ g⊙Conv2D(x,w).
func TestConv2DBackwardFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	specs := []ConvSpec{{Stride: 1}, {Stride: 2}, {Stride: 1, Pad: 1}}
	for _, spec := range specs {
		x := RandNormal(rng, 0, 1, 2, 5, 5)
		w := RandNormal(rng, 0, 1, 3, 2, 3, 3)
		out := Conv2D(x, w, spec)
		g := RandNormal(rng, 0, 1, out.Shape()...)

		loss := func() float64 { return Dot(Conv2D(x, w, spec), g) }

		dx := Conv2DBackwardInput(g, w, x.Shape(), spec)
		dw := Conv2DBackwardKernel(g, x, w.Shape(), spec)

		const eps = 1e-6
		for _, probe := range []int{0, x.Len() / 2, x.Len() - 1} {
			orig := x.Data()[probe]
			x.Data()[probe] = orig + eps
			up := loss()
			x.Data()[probe] = orig - eps
			down := loss()
			x.Data()[probe] = orig
			num := (up - down) / (2 * eps)
			if math.Abs(num-dx.Data()[probe]) > 1e-5 {
				t.Errorf("spec %+v: dL/dx[%d] = %g, finite diff %g", spec, probe, dx.Data()[probe], num)
			}
		}
		for _, probe := range []int{0, w.Len() / 2, w.Len() - 1} {
			orig := w.Data()[probe]
			w.Data()[probe] = orig + eps
			up := loss()
			w.Data()[probe] = orig - eps
			down := loss()
			w.Data()[probe] = orig
			num := (up - down) / (2 * eps)
			if math.Abs(num-dw.Data()[probe]) > 1e-5 {
				t.Errorf("spec %+v: dL/dw[%d] = %g, finite diff %g", spec, probe, dw.Data()[probe], num)
			}
		}
	}
}

func TestSumPool2D(t *testing.T) {
	x := FromSlice([]float64{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 4, 4)
	got := SumPool2D(x, 2)
	want := FromSlice([]float64{14, 22, 46, 54}, 1, 2, 2)
	if !Equal(got, want, 1e-12) {
		t.Errorf("SumPool2D = %v, want %v", got, want)
	}
}

func TestSumPool2DBackward(t *testing.T) {
	g := FromSlice([]float64{1, 2, 3, 4}, 1, 2, 2)
	dx := SumPool2DBackward(g, []int{1, 4, 4}, 2)
	// Each gradient value spreads to its 2×2 window.
	want := FromSlice([]float64{
		1, 1, 2, 2,
		1, 1, 2, 2,
		3, 3, 4, 4,
		3, 3, 4, 4,
	}, 1, 4, 4)
	if !Equal(dx, want, 1e-12) {
		t.Errorf("SumPool2DBackward = %v, want %v", dx, want)
	}
}

func TestSumPool2DIndivisiblePanics(t *testing.T) {
	defer mustPanic(t, "indivisible pooling")
	SumPool2D(New(1, 5, 4), 2)
}

// Property: pooling preserves total mass: Σ pool(x) == Σ x.
func TestSumPoolMassConservationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		k := 1 + rng.Intn(3)
		c := 1 + rng.Intn(3)
		h := k * (1 + rng.Intn(4))
		w := k * (1 + rng.Intn(4))
		x := RandNormal(rng, 0, 1, c, h, w)
		if math.Abs(Sum(SumPool2D(x, k))-Sum(x)) > 1e-9 {
			t.Fatalf("trial %d: pooling lost mass", trial)
		}
	}
}

// Property: convolution is linear in the input.
func TestConv2DLinearityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 15; trial++ {
		x := RandNormal(rng, 0, 1, 1, 4, 4)
		y := RandNormal(rng, 0, 1, 1, 4, 4)
		w := RandNormal(rng, 0, 1, 2, 1, 2, 2)
		spec := ConvSpec{Stride: 1}
		lhs := Conv2D(Add(x, y), w, spec)
		rhs := Add(Conv2D(x, w, spec), Conv2D(y, w, spec))
		if !Equal(lhs, rhs, 1e-9) {
			t.Fatalf("trial %d: conv not linear", trial)
		}
	}
}
