package fault

import "fmt"

// Coverage aggregates fault-coverage statistics per fault class, the
// quantities reported in Table III.
type Coverage struct {
	TotalFaults int

	CriticalNeuron  ClassCoverage
	BenignNeuron    ClassCoverage
	CriticalSynapse ClassCoverage
	BenignSynapse   ClassCoverage
}

// ClassCoverage is detected/total for one fault class.
type ClassCoverage struct {
	Detected int
	Total    int
}

// FC returns the fault coverage ratio (Eq. 4) of the class, or 1 when the
// class is empty (vacuously covered).
func (c ClassCoverage) FC() float64 {
	if c.Total == 0 {
		return 1
	}
	return float64(c.Detected) / float64(c.Total)
}

func (c ClassCoverage) String() string {
	return fmt.Sprintf("%d/%d (%.2f%%)", c.Detected, c.Total, 100*c.FC())
}

// Compute tallies coverage per class from parallel detected/critical
// flags over the fault list.
func Compute(faults []Fault, detected, critical []bool) (Coverage, error) {
	if len(faults) != len(detected) || len(faults) != len(critical) {
		return Coverage{}, fmt.Errorf("fault: Compute length mismatch: %d faults, %d detected flags, %d critical flags", len(faults), len(detected), len(critical))
	}
	cov := Coverage{TotalFaults: len(faults)}
	for i, f := range faults {
		var cc *ClassCoverage
		switch {
		case f.Kind.IsNeuron() && critical[i]:
			cc = &cov.CriticalNeuron
		case f.Kind.IsNeuron():
			cc = &cov.BenignNeuron
		case critical[i]:
			cc = &cov.CriticalSynapse
		default:
			cc = &cov.BenignSynapse
		}
		cc.Total++
		if detected[i] {
			cc.Detected++
		}
	}
	return cov, nil
}

// OverallFC returns the coverage over the entire universe regardless of
// class.
func (c Coverage) OverallFC() float64 {
	det := c.CriticalNeuron.Detected + c.BenignNeuron.Detected + c.CriticalSynapse.Detected + c.BenignSynapse.Detected
	if c.TotalFaults == 0 {
		return 1
	}
	return float64(det) / float64(c.TotalFaults)
}

// CriticalFC returns the coverage restricted to critical faults, the
// paper's primary figure of merit.
func (c Coverage) CriticalFC() float64 {
	det := c.CriticalNeuron.Detected + c.CriticalSynapse.Detected
	tot := c.CriticalNeuron.Total + c.CriticalSynapse.Total
	if tot == 0 {
		return 1
	}
	return float64(det) / float64(tot)
}
