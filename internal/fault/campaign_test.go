package fault

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"github.com/repro/snntest/internal/snn"
	"github.com/repro/snntest/internal/tensor"
)

// campaignNets builds the fixture networks the incremental-campaign
// equivalence tests sweep: every tiny builder architecture (conv, pool,
// dense, recurrent layers) plus the 2-layer dense tinyNet.
func campaignNets(t *testing.T) map[string]*snn.Network {
	t.Helper()
	rng := rand.New(rand.NewSource(71))
	return map[string]*snn.Network{
		"tiny":        tinyNet(71),
		"nmnist":      must(snn.BuildNMNIST(rng, snn.ScaleTiny)),
		"ibm-gesture": must(snn.BuildIBMGesture(rng, snn.ScaleTiny)),
		"shd":         must(snn.BuildSHD(rng, snn.ScaleTiny)),
	}
}

// TestEquivSimulateIncrementalMatchesFull pins the incremental campaign
// (golden-trace replay + early exit) to the full re-simulation reference
// on every fixture architecture: Detected flags must be identical
// fault-for-fault, and the incremental path must do no more work.
func TestEquivSimulateIncrementalMatchesFull(t *testing.T) {
	for name, net := range campaignNets(t) {
		opts := DefaultOptions()
		if name == "tiny" {
			opts = ExtendedOptions()
		}
		faults := SampleUniverse(net, opts, 3)
		stim := denseStim(72, net, 12)
		inc := must(SimulateWith(net, faults, stim, CampaignOptions{Workers: 1}))
		full := must(SimulateWith(net, faults, stim, CampaignOptions{Workers: 1, FullResim: true}))
		for i := range faults {
			if inc.Detected[i] != full.Detected[i] {
				t.Errorf("%s: fault %d (%v): incremental %v, full %v",
					name, i, faults[i], inc.Detected[i], full.Detected[i])
			}
		}
		if inc.LayerSteps > full.LayerSteps {
			t.Errorf("%s: incremental simulated %d layer-steps, full %d",
				name, inc.LayerSteps, full.LayerSteps)
		}
		if full.LayerSteps != full.FullLayerSteps {
			t.Errorf("%s: full campaign layer-steps %d != predicted %d",
				name, full.LayerSteps, full.FullLayerSteps)
		}
	}
}

// TestEquivClassifyIncrementalMatchesFull is the criticality-campaign
// analogue: per-fault critical flags identical between replay and full
// re-simulation on every fixture.
func TestEquivClassifyIncrementalMatchesFull(t *testing.T) {
	for name, net := range campaignNets(t) {
		faults := SampleUniverse(net, DefaultOptions(), 5)
		samples := []*tensor.Tensor{denseStim(73, net, 10), denseStim(74, net, 10)}
		inc := must(ClassifyWith(net, faults, samples, CampaignOptions{Workers: 1}))
		full := must(ClassifyWith(net, faults, samples, CampaignOptions{Workers: 1, FullResim: true}))
		for i := range faults {
			if inc.Critical[i] != full.Critical[i] {
				t.Errorf("%s: fault %d (%v): incremental %v, full %v",
					name, i, faults[i], inc.Critical[i], full.Critical[i])
			}
		}
		if inc.LayerSteps > full.LayerSteps {
			t.Errorf("%s: incremental %d layer-steps > full %d", name, inc.LayerSteps, full.LayerSteps)
		}
	}
}

// TestEquivSimulateParallelMatchesSerialIncremental covers the worker
// fan-out of the incremental path (per-worker injector + scratch).
func TestEquivSimulateParallelMatchesSerialIncremental(t *testing.T) {
	net := must(snn.BuildIBMGesture(rand.New(rand.NewSource(75)), snn.ScaleTiny))
	faults := SampleUniverse(net, DefaultOptions(), 2)
	stim := denseStim(76, net, 10)
	serial := must(Simulate(net, faults, stim, 1, nil))
	parallel := must(Simulate(net, faults, stim, 4, nil))
	for i := range faults {
		if serial.Detected[i] != parallel.Detected[i] {
			t.Fatalf("fault %d (%v): serial %v, parallel %v", i, faults[i], serial.Detected[i], parallel.Detected[i])
		}
	}
	if serial.LayerSteps != parallel.LayerSteps {
		t.Errorf("layer-step counters differ: serial %d, parallel %d", serial.LayerSteps, parallel.LayerSteps)
	}
}

// TestLayerStepSavings asserts the headline economics on a layered
// architecture: on the 4-layer IBM-gesture tiny model most faults sit in
// upper layers, so golden-trace replay alone must at least halve the
// simulated layer-steps (early exit only widens the gap).
func TestLayerStepSavings(t *testing.T) {
	net := must(snn.BuildIBMGesture(rand.New(rand.NewSource(77)), snn.ScaleTiny))
	faults := Enumerate(net, DefaultOptions())
	stim := denseStim(78, net, 14)
	res := must(Simulate(net, faults, stim, 0, nil))
	if res.LayerSteps*2 > res.FullLayerSteps {
		t.Errorf("incremental campaign simulated %d of %d full layer-steps, want ≤ half",
			res.LayerSteps, res.FullLayerSteps)
	}
}

// TestCampaignLeavesGoldenBitIdentical is the injector state-leakage
// regression test: a full campaign (both kinds, all fault classes, with
// worker parallelism) must leave the golden network's weights and
// behaviour bit-identical — any missed revert or shared-tensor aliasing
// between the injector clones and the golden network fails it.
func TestCampaignLeavesGoldenBitIdentical(t *testing.T) {
	net := must(snn.BuildSHD(rand.New(rand.NewSource(79)), snn.ScaleTiny))
	stim := denseStim(80, net, 12)
	samples := []*tensor.Tensor{denseStim(81, net, 10), denseStim(82, net, 10)}

	var weightsBefore []float64
	for _, l := range net.Layers {
		if w := l.Proj.Weights(); w != nil {
			weightsBefore = append(weightsBefore, append([]float64(nil), w.Data()...)...)
		}
		if r, ok := l.Proj.(*snn.RecurrentProj); ok {
			weightsBefore = append(weightsBefore, append([]float64(nil), r.R.Data()...)...)
		}
	}
	before := net.Run(stim)

	faults := SampleUniverse(net, ExtendedOptions(), 3)
	must(Simulate(net, faults, stim, 4, nil))
	must(Classify(net, faults, samples, 4, nil))

	after := net.Run(stim)
	for li := range before.Layers {
		if !tensor.Equal(before.Layers[li], after.Layers[li], 0) {
			t.Errorf("layer %d spike record changed after campaign", li)
		}
	}
	var weightsAfter []float64
	for _, l := range net.Layers {
		if w := l.Proj.Weights(); w != nil {
			weightsAfter = append(weightsAfter, append([]float64(nil), w.Data()...)...)
		}
		if r, ok := l.Proj.(*snn.RecurrentProj); ok {
			weightsAfter = append(weightsAfter, append([]float64(nil), r.R.Data()...)...)
		}
	}
	for i := range weightsBefore {
		if weightsBefore[i] != weightsAfter[i] {
			t.Fatalf("weight %d changed: %g -> %g", i, weightsBefore[i], weightsAfter[i])
		}
	}
	if net.HasFaultOverrides() {
		t.Error("campaign left neuron fault overrides on the golden network")
	}
}

// TestProgressCalledOutsideLockConcurrently checks the reworked progress
// plumbing: with several workers the callback runs concurrently and
// lock-free, every reported count is in range, and the final count equals
// the fault total.
func TestProgressCalledOutsideLockConcurrently(t *testing.T) {
	net := tinyNet(83)
	faults := Enumerate(net, ExtendedOptions())
	stim := denseStim(84, net, 8)
	var maxSeen atomic.Int64
	_, err := SimulateWith(net, faults, stim, CampaignOptions{
		Workers: 4,
		Progress: func(done int) {
			if done < 1 || done > len(faults) {
				t.Errorf("progress out of range: %d", done)
			}
			for {
				cur := maxSeen.Load()
				if int64(done) <= cur || maxSeen.CompareAndSwap(cur, int64(done)) {
					break
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := maxSeen.Load(); got != int64(len(faults)) {
		t.Errorf("final progress = %d, want %d", got, len(faults))
	}
}
