package fault

import (
	"sync"
	"testing"

	"github.com/repro/snntest/internal/tensor"
)

// Race smoke tests for the campaign worker pools — the only goroutine
// sites in the module. Under `go test -race` (verify.sh) these verify
// that per-worker injector cloning really isolates the shared golden
// network, and that worker count never changes results.

func TestSimulateRaceSmoke(t *testing.T) {
	net := tinyNet(31)
	faults := Enumerate(net, DefaultOptions())
	stim := denseStim(32, net, 12)

	serial := must(Simulate(net, faults, stim, 1, nil))

	// Several parallel campaigns against the same golden network at
	// once: the -race detector sees any sharing between worker clones.
	var wg sync.WaitGroup
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			parallel, err := Simulate(net, faults, stim, 4, nil)
			if err != nil {
				t.Error(err)
				return
			}
			for i := range serial.Detected {
				if parallel.Detected[i] != serial.Detected[i] {
					t.Errorf("fault %d: parallel detection differs from serial", i)
					return
				}
			}
		}()
	}
	wg.Wait()

	if net.HasFaultOverrides() {
		t.Error("campaign leaked fault overrides into the golden network")
	}
}

func TestClassifyRaceSmoke(t *testing.T) {
	net := tinyNet(33)
	faults := Enumerate(net, DefaultOptions())
	samples := []*tensor.Tensor{denseStim(34, net, 10), denseStim(35, net, 10)}

	serial := must(Classify(net, faults, samples, 1, nil))
	parallel := must(Classify(net, faults, samples, 4, nil))
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("fault %d: parallel criticality differs from serial", i)
		}
	}
	if net.HasFaultOverrides() {
		t.Error("classification leaked fault overrides into the golden network")
	}
}
