package fault

import (
	"fmt"

	"github.com/repro/snntest/internal/snn"
)

// failf is the package's invariant-check chokepoint for conditions the
// campaign entry points have already validated (see Validate); hitting
// it means a caller bypassed validation, which is a programmer error.
func failf(format string, args ...any) {
	panic("fault: " + fmt.Sprintf(format, args...))
}

// knownKind reports whether k is a defined fault kind.
func knownKind(k Kind) bool { return k <= SynapseBitFlip }

// Validate checks that every fault addresses an existing layer, neuron
// or synapse of the network and has a known kind. Campaign entry points
// (Simulate, Classify) call it once before their injection loops so the
// loops themselves can rely on panic-free injection.
func Validate(net *snn.Network, faults []Fault) error {
	for i, f := range faults {
		if !knownKind(f.Kind) {
			return fmt.Errorf("fault: fault %d: unknown kind %v", i, f.Kind)
		}
		if f.Layer < 0 || f.Layer >= len(net.Layers) {
			return fmt.Errorf("fault: fault %d (%v): layer %d out of range [0, %d)", i, f, f.Layer, len(net.Layers))
		}
		l := net.Layers[f.Layer]
		if f.Kind.IsNeuron() {
			if f.Neuron < 0 || f.Neuron >= l.NumNeurons() {
				return fmt.Errorf("fault: fault %d (%v): neuron %d out of range [0, %d) in layer %q", i, f, f.Neuron, l.NumNeurons(), l.Name)
			}
			continue
		}
		if ns := l.NumSynapses(); f.Synapse < 0 || f.Synapse >= ns {
			return fmt.Errorf("fault: fault %d (%v): synapse %d out of range [0, %d) in layer %q", i, f, f.Synapse, ns, l.Name)
		}
		if f.Kind == SynapseBitFlip && (f.Bit < 0 || f.Bit > 7) {
			return fmt.Errorf("fault: fault %d (%v): bit %d out of range [0, 7]", i, f, f.Bit)
		}
	}
	return nil
}
