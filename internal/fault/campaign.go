package fault

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/repro/snntest/internal/obs"
	"github.com/repro/snntest/internal/snn"
	"github.com/repro/snntest/internal/tensor"
)

// CampaignOptions tunes a fault-simulation campaign.
type CampaignOptions struct {
	// Workers is the campaign worker count; ≤ 0 uses GOMAXPROCS.
	Workers int
	// Progress, when non-nil, is called periodically with the number of
	// completed faults. It runs outside every campaign lock and — with
	// more than one worker — possibly from several goroutines at once,
	// so it must be safe for concurrent use. The terminal done == total
	// call is guaranteed, exactly once, even for an empty fault list.
	Progress func(done int)
	// FullResim disables golden-trace replay and early exit, re-running
	// the whole network from layer 0 over the full duration for every
	// fault. It exists as the reference path: results are identical to
	// the incremental default, only slower.
	FullResim bool
	// Context, when non-nil, parents the campaign's obs span so traces
	// nest under the caller's tree. It is observability-only: campaigns
	// do not watch it for cancellation.
	Context context.Context
}

// Campaign-level counters, updated once per campaign (not per fault) so
// the disabled obs layer costs nothing on the fault hot path.
var (
	obsCampaignLayerSteps = obs.NewCounter("fault_layer_steps_total")
	obsCampaignFullSteps  = obs.NewCounter("fault_full_layer_steps_total")
	obsFaultsSimulated    = obs.NewCounter("fault_simulated_total")
	obsFaultsDetected     = obs.NewCounter("fault_detected_total")
	obsFaultsClassified   = obs.NewCounter("fault_classified_total")
	obsFaultsCritical     = obs.NewCounter("fault_critical_total")
)

// Live-campaign gauges and latency histogram, only touched when the obs
// layer is enabled (the telemetry server's /metrics and /runs views).
// done/total track the progress-reporter stride; detected/critical are
// bumped per hit so coverage-so-far is exact; the inflight gauge pairs
// Add(1)/Add(-1) around each worker's lifetime.
// Worker-pool resource telemetry. The names match internal/core's pool
// instrumentation on purpose — the obs registry is idempotent, so the
// restart pool and the fault-campaign pool feed one shared series and
// /metrics shows whichever pool ran last (pools never overlap: campaigns
// and generation phases are sequential).
var (
	obsWorkerPoolSize = obs.NewGauge("worker_pool_size_workers")
	obsWorkerBusy     = obs.NewCounter("worker_busy_micros_total")
	obsWorkerUtil     = obs.NewGauge("worker_utilization_percent")
)

var (
	obsCampaignInflight = obs.NewGauge("fault_campaign_inflight_workers")
	obsCampaignDone     = obs.NewGauge("fault_campaign_done_faults")
	obsCampaignTotal    = obs.NewGauge("fault_campaign_total_faults")
	obsCampaignDetected = obs.NewGauge("fault_campaign_detected_faults")
	obsCampaignCritical = obs.NewGauge("fault_campaign_critical_faults")
	obsFaultSimHist     = obs.NewTimingHistogram("fault_simulation_seconds")
)

// SimResult is the outcome of one fault-simulation campaign against a
// test stimulus.
type SimResult struct {
	Detected []bool // parallel to the fault list
	Elapsed  time.Duration
	// LayerSteps counts the (layer, time-step) simulation units actually
	// executed across the campaign; FullLayerSteps is what a full
	// re-simulation of every fault would have executed. Their ratio is
	// the incremental campaign's work saving.
	LayerSteps     int64
	FullLayerSteps int64
}

// NumDetected counts detected faults.
func (r *SimResult) NumDetected() int {
	n := 0
	for _, d := range r.Detected {
		if d {
			n++
		}
	}
	return n
}

// ClassifyResult is the outcome of a criticality-labelling campaign.
type ClassifyResult struct {
	Critical []bool // parallel to the fault list
	Elapsed  time.Duration
	// LayerSteps / FullLayerSteps mirror SimResult's work counters.
	LayerSteps     int64
	FullLayerSteps int64
}

// workerCount resolves a worker request against GOMAXPROCS.
func workerCount(requested int) int {
	if requested > 0 {
		return requested
	}
	return runtime.GOMAXPROCS(0)
}

// parallelFaults fans the fault indices out over per-worker injectors and
// calls fn(injector, faultIndex) for each. Each injector (and its scratch)
// is confined to one worker goroutine.
func parallelFaults(golden *snn.Network, n, workers int, fn func(inj *Injector, i int)) {
	workers = workerCount(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if obs.On() {
			obsCampaignInflight.Add(1)
			defer obsCampaignInflight.Add(-1)
		}
		inj := NewInjector(golden)
		for i := 0; i < n; i++ {
			fn(inj, i)
		}
		return
	}
	on := obs.On()
	var poolStart time.Time
	var busyUS atomic.Int64
	if on {
		poolStart = time.Now()
		obsWorkerPoolSize.Set(int64(workers))
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if on {
				obsCampaignInflight.Add(1)
				defer obsCampaignInflight.Add(-1)
			}
			inj := NewInjector(golden)
			for i := range next {
				if on {
					t0 := time.Now()
					fn(inj, i)
					busyUS.Add(time.Since(t0).Microseconds())
					continue
				}
				fn(inj, i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	if on {
		busy := busyUS.Load()
		obsWorkerBusy.Add(busy)
		if capacity := time.Since(poolStart).Microseconds() * int64(workers); capacity > 0 {
			obsWorkerUtil.Set(busy * 100 / capacity)
		}
		obsWorkerPoolSize.Set(0)
	}
}

// progressSink receives campaign completion updates. The user callback
// and the obs trace stream are both sinks of the same reporter, so they
// see identical update sequences.
type progressSink interface {
	report(done, total int)
}

// callbackSink adapts a CampaignOptions.Progress func.
type callbackSink struct{ fn func(done int) }

func (s callbackSink) report(done, _ int) { s.fn(done) }

// obsSink forwards updates to the obs layer as progress events,
// run-correlated when the campaign minted a flight-recorder run id.
type obsSink struct{ name, run string }

func (s obsSink) report(done, total int) { obs.ProgressRun(s.run, s.name, done, total) }

// progressReporter fans completion counts out to its sinks every stride
// completions. tick runs on worker goroutines outside every campaign
// lock; finish — called after the workers join — guarantees exactly one
// terminal done == total report, even when the fault list is empty or
// total is not a stride multiple.
type progressReporter struct {
	done     atomic.Int64
	terminal atomic.Bool
	total    int
	stride   int64
	sinks    []progressSink
}

func newProgressReporter(total, stride int, opts CampaignOptions, name, run string) *progressReporter {
	r := &progressReporter{total: total, stride: int64(stride)}
	if opts.Progress != nil {
		r.sinks = append(r.sinks, callbackSink{opts.Progress})
	}
	if obs.On() {
		r.sinks = append(r.sinks, obsSink{name: name, run: run})
	}
	return r
}

// tick records one completed fault.
func (r *progressReporter) tick() {
	if len(r.sinks) == 0 {
		return
	}
	d := r.done.Add(1)
	if d%r.stride != 0 && int(d) != r.total {
		return
	}
	if int(d) == r.total && !r.terminal.CompareAndSwap(false, true) {
		return
	}
	r.emit(int(d))
}

// finish emits the terminal report unless a tick already did.
func (r *progressReporter) finish() {
	if len(r.sinks) == 0 || r.terminal.Swap(true) {
		return
	}
	r.emit(r.total)
}

func (r *progressReporter) emit(done int) {
	if obs.On() {
		// Gauges first, so a /runs snapshot triggered by the progress
		// event below already sees the matching done count.
		obsCampaignDone.Set(int64(done))
		obsCampaignTotal.Set(int64(r.total))
	}
	for _, s := range r.sinks {
		s.report(done, r.total)
	}
}

// span opens the campaign's obs span under the options' context and
// returns the derived context so run-labelled profiling can compose with
// it (see obs.WithRunLabel).
func (opts CampaignOptions) span(name string) (context.Context, *obs.Span) {
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	return obs.Start(ctx, name)
}

// Simulate runs the fault-simulation campaign: each fault is injected in
// turn and the network is simulated on the stimulus; the fault is
// detected if the output spike trains differ from the golden response in
// L1 (Eq. 3). workers ≤ 0 uses GOMAXPROCS. progress, when non-nil, is
// called periodically with the number of completed faults (see
// CampaignOptions.Progress for its concurrency contract).
//
// The campaign is incremental: a fault at layer ℓ cannot perturb layers
// below ℓ, so simulation replays the golden record up to the fault site
// and re-simulates only layers ≥ ℓ, stopping at the first time step whose
// output row diverges from the golden response. Detection flags are
// identical to a full re-simulation of every fault.
func Simulate(golden *snn.Network, faults []Fault, stimulus *tensor.Tensor, workers int, progress func(done int)) (*SimResult, error) {
	return SimulateWith(golden, faults, stimulus, CampaignOptions{Workers: workers, Progress: progress})
}

// SimulateWith is Simulate with explicit campaign options.
func SimulateWith(golden *snn.Network, faults []Fault, stimulus *tensor.Tensor, opts CampaignOptions) (*SimResult, error) {
	start := time.Now()
	steps, err := golden.CheckInput(stimulus)
	if err != nil {
		return nil, fmt.Errorf("fault: Simulate: %w", err)
	}
	if err := Validate(golden, faults); err != nil {
		return nil, err
	}
	ctx, sp := opts.span("campaign/simulate")
	defer sp.End()
	sp.SetAttr("faults", len(faults))
	goldenRec := golden.Run(stimulus)
	goldenOut := goldenRec.Output()
	fullPerFault := int64(len(golden.Layers)) * int64(steps)
	res := &SimResult{
		Detected:       make([]bool, len(faults)),
		FullLayerSteps: int64(len(faults)) * fullPerFault,
	}
	run := ""
	if obs.RunEventsOn() {
		run = obs.NewRunID("campaign/simulate")
		obs.EmitRunStart(run, "campaign/simulate", len(faults), map[string]any{
			"steps":  steps,
			"layers": len(golden.Layers),
		})
		// Tag this goroutine's CPU samples with the run id; the fault
		// workers spawned below inherit the goroutine label set.
		ctx = obs.WithRunLabel(ctx, run)
	}
	rep := newProgressReporter(len(faults), 256, opts, "campaign/simulate", run)
	if obs.On() {
		obsCampaignDone.Set(0)
		obsCampaignTotal.Set(int64(len(faults)))
		obsCampaignDetected.Set(0)
	}
	var layerSteps atomic.Int64
	parallelFaults(golden, len(faults), opts.Workers, func(inj *Injector, i int) {
		f := faults[i]
		on := obs.On()
		var t0 time.Time
		if on {
			t0 = time.Now()
		}
		revert := inj.Apply(f)
		var detected bool
		var ls int
		divStep, simSteps := -1, steps
		if opts.FullResim {
			rec, n := inj.Scratch().RunFrom(0, nil, stimulus)
			detected, ls = tensor.L1Diff(goldenOut, rec.Output()) > 0, n
			if detected && run != "" {
				divStep = firstDivergence(rec.Output(), goldenOut, steps)
			}
		} else {
			detected, ls = inj.Scratch().DivergesFrom(f.StartLayer(), goldenRec, stimulus)
			simSteps = inj.Scratch().LastSimSteps()
			if detected {
				// Early exit happens on the divergent step, so the last
				// simulated step is the first divergence.
				divStep = simSteps - 1
			}
		}
		revert()
		res.Detected[i] = detected
		layerSteps.Add(int64(ls))
		if on {
			if detected {
				obsCampaignDetected.Add(1)
			}
			obsFaultSimHist.Observe(time.Since(t0))
		}
		if run != "" {
			obs.EmitFault(run, "campaign/simulate", obs.FaultOutcome{
				Index:      i,
				Kind:       f.Kind.String(),
				Layer:      f.Layer,
				Detected:   detected,
				DivStep:    divStep,
				SimSteps:   simSteps,
				LayerSteps: ls,
			})
		}
		rep.tick()
	})
	rep.finish()
	res.LayerSteps = layerSteps.Load()
	res.Elapsed = time.Since(start)
	if run != "" {
		obs.EmitRunEnd(run, "campaign/simulate", len(faults), len(faults), map[string]any{
			"detected":    res.NumDetected(),
			"layer_steps": res.LayerSteps,
		})
	}
	if obs.On() {
		obsFaultsSimulated.Add(int64(len(faults)))
		obsFaultsDetected.Add(int64(res.NumDetected()))
		obsCampaignLayerSteps.Add(res.LayerSteps)
		obsCampaignFullSteps.Add(res.FullLayerSteps)
		sp.SetAttr("detected", res.NumDetected())
		sp.SetAttr("layer_steps", res.LayerSteps)
	}
	return res, nil
}

// firstDivergence returns the first timestep whose out row differs from
// the golden output, or -1 when the trains are identical. The FullResim
// reference path re-derives here what DivergesFrom's early exit yields
// for free on the incremental path.
func firstDivergence(out, golden *tensor.Tensor, steps int) int {
	for t := 0; t < steps; t++ {
		if !tensor.RowEqual(out, golden, t) {
			return t
		}
	}
	return -1
}

// Classify labels each fault critical (true) or benign (false): a fault
// is critical when it flips the top-1 prediction of at least one of the
// labelled evaluation stimuli (the paper's criterion). This is the
// expensive full-dataset campaign of Table II; like Simulate it starts
// each faulty simulation at the fault site by golden-trace replay.
func Classify(golden *snn.Network, faults []Fault, samples []*tensor.Tensor, workers int, progress func(done int)) ([]bool, error) {
	res, err := ClassifyWith(golden, faults, samples, CampaignOptions{Workers: workers, Progress: progress})
	if err != nil {
		return nil, err
	}
	return res.Critical, nil
}

// ClassifyWith is Classify with explicit campaign options. The golden
// network is simulated once per sample and the per-layer spike records
// are kept for replay, so memory grows with samples × total neurons ×
// steps; the per-fault cost drops from a full-network run per sample to
// the layers at and above the fault site.
func ClassifyWith(golden *snn.Network, faults []Fault, samples []*tensor.Tensor, opts CampaignOptions) (*ClassifyResult, error) {
	start := time.Now()
	for si, s := range samples {
		if _, err := golden.CheckInput(s); err != nil {
			return nil, fmt.Errorf("fault: Classify: sample %d: %w", si, err)
		}
	}
	if err := Validate(golden, faults); err != nil {
		return nil, err
	}
	ctx, sp := opts.span("campaign/classify")
	defer sp.End()
	sp.SetAttr("faults", len(faults))
	sp.SetAttr("samples", len(samples))
	goldenRecs := make([]*snn.Record, len(samples))
	goldenPred := make([]int, len(samples))
	var fullPerFault int64
	for i, s := range samples {
		goldenRecs[i] = golden.Run(s)
		goldenPred[i] = tensor.ArgMax(goldenRecs[i].OutputCounts())
		fullPerFault += int64(len(golden.Layers)) * int64(goldenRecs[i].Steps)
	}
	res := &ClassifyResult{
		Critical:       make([]bool, len(faults)),
		FullLayerSteps: int64(len(faults)) * fullPerFault,
	}
	run := ""
	if obs.RunEventsOn() {
		run = obs.NewRunID("campaign/classify")
		obs.EmitRunStart(run, "campaign/classify", len(faults), map[string]any{
			"samples": len(samples),
			"layers":  len(golden.Layers),
		})
		// Tag this goroutine's CPU samples with the run id; the fault
		// workers spawned below inherit the goroutine label set.
		ctx = obs.WithRunLabel(ctx, run)
	}
	rep := newProgressReporter(len(faults), 64, opts, "campaign/classify", run)
	if obs.On() {
		obsCampaignDone.Set(0)
		obsCampaignTotal.Set(int64(len(faults)))
		obsCampaignCritical.Set(0)
	}
	var layerSteps atomic.Int64
	parallelFaults(golden, len(faults), opts.Workers, func(inj *Injector, i int) {
		f := faults[i]
		on := obs.On()
		var t0 time.Time
		if on {
			t0 = time.Now()
		}
		startLayer := f.StartLayer()
		if opts.FullResim {
			startLayer = 0
		}
		revert := inj.Apply(f)
		ls := 0
		for si, s := range samples {
			var rec *snn.Record
			var n int
			if startLayer == 0 {
				rec, n = inj.Scratch().RunFrom(0, nil, s)
			} else {
				rec, n = inj.Scratch().RunFrom(startLayer, goldenRecs[si], s)
			}
			ls += n
			if tensor.ArgMax(rec.OutputCounts()) != goldenPred[si] {
				res.Critical[i] = true
				break
			}
		}
		revert()
		layerSteps.Add(int64(ls))
		if on {
			if res.Critical[i] {
				obsCampaignCritical.Add(1)
			}
			obsFaultSimHist.Observe(time.Since(t0))
		}
		if run != "" {
			// Criticality has no single first-divergence timestep (it spans
			// samples); DivStep stays -1 and the curve folds these
			// detections into its final point.
			obs.EmitFault(run, "campaign/classify", obs.FaultOutcome{
				Index:      i,
				Kind:       f.Kind.String(),
				Layer:      f.Layer,
				Detected:   res.Critical[i],
				DivStep:    -1,
				LayerSteps: ls,
			})
		}
		rep.tick()
	})
	rep.finish()
	res.LayerSteps = layerSteps.Load()
	res.Elapsed = time.Since(start)
	if run != "" {
		critical := 0
		for _, c := range res.Critical {
			if c {
				critical++
			}
		}
		obs.EmitRunEnd(run, "campaign/classify", len(faults), len(faults), map[string]any{
			"critical":    critical,
			"layer_steps": res.LayerSteps,
		})
	}
	if obs.On() {
		critical := 0
		for _, c := range res.Critical {
			if c {
				critical++
			}
		}
		obsFaultsClassified.Add(int64(len(faults)))
		obsFaultsCritical.Add(int64(critical))
		obsCampaignLayerSteps.Add(res.LayerSteps)
		obsCampaignFullSteps.Add(res.FullLayerSteps)
		sp.SetAttr("critical", critical)
		sp.SetAttr("layer_steps", res.LayerSteps)
	}
	return res, nil
}

// AccuracyDrop returns how much the network's top-1 accuracy on the
// labelled samples drops when the fault is present (positive = worse than
// golden). It quantifies the worst-case effect of a test escape
// (Table III, last row).
func AccuracyDrop(golden *snn.Network, f Fault, samples []*tensor.Tensor, labels []int) float64 {
	correctGolden, correctFaulty := 0, 0
	inj := NewInjector(golden)
	revert := inj.Apply(f)
	defer revert()
	for i, s := range samples {
		goldenRec := golden.Run(s)
		if tensor.ArgMax(goldenRec.OutputCounts()) == labels[i] {
			correctGolden++
		}
		rec, _ := inj.Scratch().RunFrom(f.StartLayer(), goldenRec, s)
		if tensor.ArgMax(rec.OutputCounts()) == labels[i] {
			correctFaulty++
		}
	}
	return float64(correctGolden-correctFaulty) / float64(len(samples))
}

// MaxEscapeDrop returns the maximum accuracy drop over the undetected
// critical faults, split into neuron and synapse classes.
func MaxEscapeDrop(golden *snn.Network, faults []Fault, detected, critical []bool, samples []*tensor.Tensor, labels []int) (neuron, synapse float64) {
	for i, f := range faults {
		if detected[i] || !critical[i] {
			continue
		}
		drop := AccuracyDrop(golden, f, samples, labels)
		if f.Kind.IsNeuron() {
			if drop > neuron {
				neuron = drop
			}
		} else if drop > synapse {
			synapse = drop
		}
	}
	return neuron, synapse
}
