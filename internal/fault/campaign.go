package fault

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/repro/snntest/internal/snn"
	"github.com/repro/snntest/internal/tensor"
)

// SimResult is the outcome of one fault-simulation campaign against a
// test stimulus.
type SimResult struct {
	Detected []bool // parallel to the fault list
	Elapsed  time.Duration
}

// NumDetected counts detected faults.
func (r *SimResult) NumDetected() int {
	n := 0
	for _, d := range r.Detected {
		if d {
			n++
		}
	}
	return n
}

// workerCount resolves a worker request against GOMAXPROCS.
func workerCount(requested int) int {
	if requested > 0 {
		return requested
	}
	return runtime.GOMAXPROCS(0)
}

// parallelFaults fans the fault indices out over per-worker injectors and
// calls fn(injector, faultIndex) for each.
func parallelFaults(golden *snn.Network, n, workers int, fn func(inj *Injector, i int)) {
	workers = workerCount(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		inj := NewInjector(golden)
		for i := 0; i < n; i++ {
			fn(inj, i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			inj := NewInjector(golden)
			for i := range next {
				fn(inj, i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// Simulate runs the full fault-simulation campaign: each fault is
// injected in turn and the network is simulated on the stimulus; the
// fault is detected if the output spike trains differ from the golden
// response in L1 (Eq. 3). workers ≤ 0 uses GOMAXPROCS. progress, when
// non-nil, is called periodically with the number of completed faults.
func Simulate(golden *snn.Network, faults []Fault, stimulus *tensor.Tensor, workers int, progress func(done int)) (*SimResult, error) {
	start := time.Now()
	if _, err := golden.CheckInput(stimulus); err != nil {
		return nil, fmt.Errorf("fault: Simulate: %w", err)
	}
	if err := Validate(golden, faults); err != nil {
		return nil, err
	}
	goldenOut := golden.Run(stimulus).Output()
	res := &SimResult{Detected: make([]bool, len(faults))}
	var done int64
	var mu sync.Mutex
	parallelFaults(golden, len(faults), workers, func(inj *Injector, i int) {
		revert := inj.Apply(faults[i])
		out := inj.Net().Run(stimulus).Output()
		revert()
		if tensor.L1Diff(goldenOut, out) > 0 {
			res.Detected[i] = true
		}
		if progress != nil {
			mu.Lock()
			done++
			if done%256 == 0 || int(done) == len(faults) {
				progress(int(done))
			}
			mu.Unlock()
		}
	})
	res.Elapsed = time.Since(start)
	return res, nil
}

// Classify labels each fault critical (true) or benign (false): a fault
// is critical when it flips the top-1 prediction of at least one of the
// labelled evaluation stimuli (the paper's criterion). This is the
// expensive full-dataset campaign of Table II.
func Classify(golden *snn.Network, faults []Fault, samples []*tensor.Tensor, workers int, progress func(done int)) ([]bool, error) {
	for si, s := range samples {
		if _, err := golden.CheckInput(s); err != nil {
			return nil, fmt.Errorf("fault: Classify: sample %d: %w", si, err)
		}
	}
	if err := Validate(golden, faults); err != nil {
		return nil, err
	}
	goldenPred := make([]int, len(samples))
	for i, s := range samples {
		goldenPred[i] = golden.Predict(s)
	}
	critical := make([]bool, len(faults))
	var done int64
	var mu sync.Mutex
	parallelFaults(golden, len(faults), workers, func(inj *Injector, i int) {
		revert := inj.Apply(faults[i])
		for si, s := range samples {
			if inj.Net().Predict(s) != goldenPred[si] {
				critical[i] = true
				break
			}
		}
		revert()
		if progress != nil {
			mu.Lock()
			done++
			if done%64 == 0 || int(done) == len(faults) {
				progress(int(done))
			}
			mu.Unlock()
		}
	})
	return critical, nil
}

// AccuracyDrop returns how much the network's top-1 accuracy on the
// labelled samples drops when the fault is present (positive = worse than
// golden). It quantifies the worst-case effect of a test escape
// (Table III, last row).
func AccuracyDrop(golden *snn.Network, f Fault, samples []*tensor.Tensor, labels []int) float64 {
	correctGolden, correctFaulty := 0, 0
	inj := NewInjector(golden)
	revert := inj.Apply(f)
	defer revert()
	for i, s := range samples {
		if golden.Predict(s) == labels[i] {
			correctGolden++
		}
		if inj.Net().Predict(s) == labels[i] {
			correctFaulty++
		}
	}
	return float64(correctGolden-correctFaulty) / float64(len(samples))
}

// MaxEscapeDrop returns the maximum accuracy drop over the undetected
// critical faults, split into neuron and synapse classes.
func MaxEscapeDrop(golden *snn.Network, faults []Fault, detected, critical []bool, samples []*tensor.Tensor, labels []int) (neuron, synapse float64) {
	for i, f := range faults {
		if detected[i] || !critical[i] {
			continue
		}
		drop := AccuracyDrop(golden, f, samples, labels)
		if f.Kind.IsNeuron() {
			if drop > neuron {
				neuron = drop
			}
		} else if drop > synapse {
			synapse = drop
		}
	}
	return neuron, synapse
}
