package fault

import (
	"math"

	"github.com/repro/snntest/internal/snn"
)

// Injector applies faults to a private clone of a network and reverts
// them, so thousands of faults can be simulated without re-cloning the
// model per fault. Each Injector owns its clone; use one Injector per
// worker goroutine.
type Injector struct {
	net     *snn.Network
	satVals []float64 // per-layer saturation magnitude: SaturationFactor·max|w|
	scratch *snn.Scratch
}

// NewInjector clones the golden network for fault application.
func NewInjector(golden *snn.Network) *Injector {
	net := golden.Clone()
	sat := make([]float64, len(net.Layers))
	for i, l := range net.Layers {
		sat[i] = SaturationFactor * l.MaxAbsWeight()
	}
	return &Injector{net: net, satVals: sat}
}

// Net returns the injector's working network. It reflects the currently
// applied fault, if any.
func (inj *Injector) Net() *snn.Network { return inj.net }

// Scratch returns the injector's reusable simulation scratch, allocated
// on first use. Campaign loops run thousands of simulations through it so
// the per-fault state and record allocations of a cold snn.Network.Run
// disappear; like the injector itself, it belongs to one goroutine.
func (inj *Injector) Scratch() *snn.Scratch {
	if inj.scratch == nil {
		inj.scratch = inj.net.NewScratch()
	}
	return inj.scratch
}

// Apply injects f into the working network and returns a function that
// restores the pre-fault state. Exactly one fault should be active at a
// time.
func (inj *Injector) Apply(f Fault) (revert func()) {
	l := inj.net.Layers[f.Layer]
	switch f.Kind {
	case NeuronDead, NeuronSaturated:
		prev := snn.NeuronNormal
		if l.Modes != nil {
			prev = l.Modes[f.Neuron]
		}
		mode := snn.NeuronDead
		if f.Kind == NeuronSaturated {
			mode = snn.NeuronSaturated
		}
		l.SetNeuronMode(f.Neuron, mode)
		return func() { l.Modes[f.Neuron] = prev }

	case NeuronThresholdVar:
		prev := 0.0
		if l.Thresholds != nil {
			prev = l.Thresholds[f.Neuron]
		}
		l.SetNeuronThreshold(f.Neuron, l.LIF.Threshold*f.Delta)
		return func() { l.Thresholds[f.Neuron] = prev }

	case NeuronLeakVar:
		prev := 0.0
		if l.Leaks != nil {
			prev = l.Leaks[f.Neuron]
		}
		leak := l.LIF.Leak * f.Delta
		if leak > 1 {
			leak = 1
		}
		l.SetNeuronLeak(f.Neuron, leak)
		return func() { l.Leaks[f.Neuron] = prev }

	case NeuronRefractoryVar:
		prev := -1
		if l.Refracs != nil {
			prev = l.Refracs[f.Neuron]
		}
		l.SetNeuronRefractory(f.Neuron, l.LIF.Refractory+int(math.Round(f.Delta)))
		return func() { l.Refracs[f.Neuron] = prev }

	case SynapseDead, SynapseSatPos, SynapseSatNeg, SynapseBitFlip:
		w := l.SynapseWeightAt(f.Synapse)
		prev := *w
		switch f.Kind {
		case SynapseDead:
			*w = 0
		case SynapseSatPos:
			*w = inj.satVals[f.Layer]
		case SynapseSatNeg:
			*w = -inj.satVals[f.Layer]
		case SynapseBitFlip:
			*w = flipQuantizedBit(prev, f.Bit, inj.satVals[f.Layer]/SaturationFactor)
		}
		return func() { *w = prev }

	default:
		// Unreachable after Validate: campaign entry points reject
		// unknown kinds before any injection loop starts.
		failf("unknown kind %v", f.Kind)
		return nil
	}
}

// flipQuantizedBit models a bit-flip in an 8-bit signed fixed-point weight
// memory: the weight is quantized with the layer's max|w| mapped to 127,
// the requested bit of the two's-complement code is flipped, and the
// result is dequantized. Bit 7 is the sign bit.
//
//snn:hotpath
func flipQuantizedBit(w float64, bit int, maxAbs float64) float64 {
	if maxAbs == 0 { //lint:ignore floateq degenerate all-zero weight matrix guard; max|w| is exactly 0 only then
		return w
	}
	scale := maxAbs / 127
	q := int(math.Round(w / scale))
	if q > 127 {
		q = 127
	} else if q < -128 {
		q = -128
	}
	code := uint8(int8(q))
	code ^= 1 << uint(bit)
	return float64(int8(code)) * scale
}
