package fault

import (
	"math"
	"math/rand"
	"testing"

	"github.com/repro/snntest/internal/snn"
	"github.com/repro/snntest/internal/tensor"
)

// tinyNet builds a small dense 2-layer network with moderate activity.
func tinyNet(seed int64) *snn.Network {
	rng := rand.New(rand.NewSource(seed))
	l1 := must(snn.NewLayer("h", must(snn.NewDenseProj(tensor.RandNormal(rng, 0.2, 0.5, 6, 4))), snn.DefaultLIF()))
	l2 := must(snn.NewLayer("out", must(snn.NewDenseProj(tensor.RandNormal(rng, 0.2, 0.5, 3, 6))), snn.DefaultLIF()))
	return must(snn.NewNetwork("tiny", []int{4}, 1.0, l1, l2))
}

func denseStim(seed int64, net *snn.Network, steps int) *tensor.Tensor {
	return tensor.RandBernoulli(rand.New(rand.NewSource(seed)), 0.6, append([]int{steps}, net.InShape...)...)
}

func TestKindPredicates(t *testing.T) {
	neurons := []Kind{NeuronDead, NeuronSaturated, NeuronThresholdVar, NeuronLeakVar, NeuronRefractoryVar}
	synapses := []Kind{SynapseDead, SynapseSatPos, SynapseSatNeg, SynapseBitFlip}
	for _, k := range neurons {
		if !k.IsNeuron() {
			t.Errorf("%v should be a neuron kind", k)
		}
	}
	for _, k := range synapses {
		if k.IsNeuron() {
			t.Errorf("%v should be a synapse kind", k)
		}
	}
	if NeuronDead.IsExtension() || SynapseDead.IsExtension() {
		t.Error("core kinds must not be extensions")
	}
	if !NeuronThresholdVar.IsExtension() || !SynapseBitFlip.IsExtension() {
		t.Error("parametric/bitflip kinds are extensions")
	}
	for _, k := range append(neurons, synapses...) {
		if k.String() == "" {
			t.Errorf("empty String for %d", k)
		}
	}
}

func TestEnumerateDefaultMatchesPaperArithmetic(t *testing.T) {
	// The paper's Table II counts are 2·#neurons + 3·#synapses.
	net := tinyNet(1)
	faults := Enumerate(net, DefaultOptions())
	want := 2*net.NumNeurons() + 3*net.NumSynapses()
	if len(faults) != want {
		t.Errorf("universe size = %d, want %d", len(faults), want)
	}
	if got := UniverseSize(net, DefaultOptions()); got != want {
		t.Errorf("UniverseSize = %d, want %d", got, want)
	}
}

func TestEnumerateExtendedSize(t *testing.T) {
	net := tinyNet(2)
	opts := ExtendedOptions()
	faults := Enumerate(net, opts)
	// per neuron: 2 core + 2 deltas × 2 params + 1 refractory = 7
	// per synapse: 3 core + 4 bits = 7
	want := 7*net.NumNeurons() + 7*net.NumSynapses()
	if len(faults) != want {
		t.Errorf("extended universe = %d, want %d", len(faults), want)
	}
	if got := UniverseSize(net, opts); got != want {
		t.Errorf("UniverseSize = %d, want %d", got, want)
	}
}

func TestEnumerateDeterministicOrder(t *testing.T) {
	net := tinyNet(3)
	a := Enumerate(net, DefaultOptions())
	b := Enumerate(net, DefaultOptions())
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("enumeration order must be deterministic")
		}
	}
}

func TestSampleUniverseStride(t *testing.T) {
	net := tinyNet(4)
	all := Enumerate(net, DefaultOptions())
	s := SampleUniverse(net, DefaultOptions(), 5)
	if len(s) != (len(all)+4)/5 {
		t.Errorf("stride-5 sample = %d of %d", len(s), len(all))
	}
	if s[0] != all[0] || s[1] != all[5] {
		t.Error("sample must take every 5th fault")
	}
	if got := SampleUniverse(net, DefaultOptions(), 1); len(got) != len(all) {
		t.Error("stride 1 must return the full universe")
	}
}

func TestInjectorRevertRestoresBehaviour(t *testing.T) {
	net := tinyNet(5)
	stim := denseStim(6, net, 12)
	goldenOut := net.Run(stim).Output().Clone()

	inj := NewInjector(net)
	for _, f := range Enumerate(net, ExtendedOptions()) {
		revert := inj.Apply(f)
		revert()
	}
	out := inj.Net().Run(stim).Output()
	if !tensor.Equal(goldenOut, out, 0) {
		t.Error("after applying and reverting every fault, behaviour must match golden")
	}
	// And the golden network itself must never have been touched.
	if !tensor.Equal(goldenOut, net.Run(stim).Output(), 0) {
		t.Error("injector mutated the golden network")
	}
}

func TestNeuronFaultInjection(t *testing.T) {
	net := tinyNet(7)
	stim := denseStim(8, net, 15)
	inj := NewInjector(net)

	revert := inj.Apply(Fault{Kind: NeuronSaturated, Layer: 1, Neuron: 0})
	rec := inj.Net().Run(stim)
	if got := tensor.Sum(rec.NeuronTrain(1, 0)); got != 15 {
		t.Errorf("saturated neuron fired %g/15 steps", got)
	}
	revert()

	revert = inj.Apply(Fault{Kind: NeuronDead, Layer: 0, Neuron: 2})
	rec = inj.Net().Run(stim)
	if got := tensor.Sum(rec.NeuronTrain(0, 2)); got != 0 {
		t.Errorf("dead neuron fired %g times", got)
	}
	revert()
}

func TestParametricFaultInjection(t *testing.T) {
	net := tinyNet(9)
	inj := NewInjector(net)

	revert := inj.Apply(Fault{Kind: NeuronThresholdVar, Layer: 0, Neuron: 1, Delta: 1.5})
	if got := inj.Net().Layers[0].Thresholds[1]; math.Abs(got-1.5) > 1e-12 {
		t.Errorf("threshold override = %g, want 1.5 (1.0 × 1.5)", got)
	}
	revert()

	revert = inj.Apply(Fault{Kind: NeuronLeakVar, Layer: 0, Neuron: 1, Delta: 2.0})
	if got := inj.Net().Layers[0].Leaks[1]; got != 1.0 {
		t.Errorf("leak override = %g, want clamp at 1.0", got)
	}
	revert()

	revert = inj.Apply(Fault{Kind: NeuronRefractoryVar, Layer: 0, Neuron: 1, Delta: 3})
	if got := inj.Net().Layers[0].Refracs[1]; got != snn.DefaultLIF().Refractory+3 {
		t.Errorf("refractory override = %d", got)
	}
	revert()
}

func TestSynapseFaultInjection(t *testing.T) {
	net := tinyNet(10)
	maxAbs := net.Layers[0].MaxAbsWeight()
	inj := NewInjector(net)

	w0 := inj.Net().Layers[0].SynapseWeightAt(0)
	orig := *w0

	revert := inj.Apply(Fault{Kind: SynapseDead, Layer: 0, Synapse: 0})
	if *w0 != 0 {
		t.Error("dead synapse weight must be 0")
	}
	revert()
	if *w0 != orig {
		t.Error("revert failed")
	}

	revert = inj.Apply(Fault{Kind: SynapseSatPos, Layer: 0, Synapse: 0})
	if math.Abs(*w0-SaturationFactor*maxAbs) > 1e-12 {
		t.Errorf("sat-pos weight = %g, want %g", *w0, SaturationFactor*maxAbs)
	}
	revert()

	revert = inj.Apply(Fault{Kind: SynapseSatNeg, Layer: 0, Synapse: 0})
	if math.Abs(*w0+SaturationFactor*maxAbs) > 1e-12 {
		t.Errorf("sat-neg weight = %g", *w0)
	}
	revert()
}

func TestBitFlipQuantization(t *testing.T) {
	// Sign-bit flip of a positive weight makes it negative.
	w := flipQuantizedBit(1.0, 7, 1.0)
	if w >= 0 {
		t.Errorf("sign-bit flip of 1.0 = %g, want negative", w)
	}
	// LSB flip changes the weight by exactly one quantization step
	// relative to the quantized baseline (0.5 quantizes to code 64).
	v := flipQuantizedBit(0.5, 0, 1.0)
	step := 1.0 / 127
	quantized := 64 * step
	if math.Abs(math.Abs(v-quantized)-step) > 1e-12 {
		t.Errorf("LSB flip moved by %g from quantized value, want %g", math.Abs(v-quantized), step)
	}
	// Zero max weight: no-op.
	if flipQuantizedBit(0.3, 3, 0) != 0.3 {
		t.Error("zero-range layer must be untouched")
	}
	// Flip twice restores the original code.
	once := flipQuantizedBit(0.5, 4, 1.0)
	twice := flipQuantizedBit(once, 4, 1.0)
	if math.Abs(twice-float64(int8(math.Round(0.5*127)))*1.0/127) > 1e-9 {
		t.Errorf("double flip = %g, want quantized original", twice)
	}
}

func TestSimulateDetectsInjectedFaults(t *testing.T) {
	net := tinyNet(11)
	stim := denseStim(12, net, 20)
	// Saturating an output neuron is trivially detectable; a synapse on a
	// never-spiking path may not be. Check the obvious ones.
	faults := []Fault{
		{Kind: NeuronSaturated, Layer: 1, Neuron: 0},
		{Kind: NeuronSaturated, Layer: 1, Neuron: 1},
		{Kind: NeuronSaturated, Layer: 1, Neuron: 2},
	}
	res := must(Simulate(net, faults, stim, 1, nil))
	golden := net.Run(stim)
	for i := range faults {
		count := tensor.Sum(golden.NeuronTrain(1, faults[i].Neuron))
		if count < 20 && !res.Detected[i] {
			t.Errorf("saturated output neuron %d (golden count %g) must be detected", i, count)
		}
	}
	if res.Elapsed <= 0 {
		t.Error("elapsed time not measured")
	}
}

func TestSimulateParallelMatchesSerial(t *testing.T) {
	net := tinyNet(13)
	stim := denseStim(14, net, 15)
	faults := Enumerate(net, DefaultOptions())
	serial := must(Simulate(net, faults, stim, 1, nil))
	parallel := must(Simulate(net, faults, stim, 4, nil))
	for i := range faults {
		if serial.Detected[i] != parallel.Detected[i] {
			t.Fatalf("fault %d (%v): serial %v, parallel %v", i, faults[i], serial.Detected[i], parallel.Detected[i])
		}
	}
	if serial.NumDetected() != parallel.NumDetected() {
		t.Error("detected counts differ")
	}
}

func TestSimulateProgressCallback(t *testing.T) {
	net := tinyNet(15)
	stim := denseStim(16, net, 5)
	faults := Enumerate(net, DefaultOptions())
	calls := 0
	last := 0
	Simulate(net, faults, stim, 1, func(done int) { calls++; last = done })
	if calls == 0 || last != len(faults) {
		t.Errorf("progress: %d calls, last %d of %d", calls, last, len(faults))
	}
}

func TestZeroStimulusDetectsOnlySaturation(t *testing.T) {
	// With a zero input, only saturated-neuron faults can reach the
	// output; every dead-neuron and synapse fault is undetectable.
	net := tinyNet(17)
	stim := net.ZeroInput(10)
	faults := Enumerate(net, DefaultOptions())
	res := must(Simulate(net, faults, stim, 1, nil))
	for i, f := range faults {
		if res.Detected[i] && f.Kind != NeuronSaturated {
			t.Errorf("fault %v detected by zero stimulus", f)
		}
	}
	// Output-layer saturation is always detected.
	for i, f := range faults {
		if f.Kind == NeuronSaturated && f.Layer == 1 && !res.Detected[i] {
			t.Errorf("output saturation %v not detected by zero stimulus", f)
		}
	}
}

func TestClassifyCriticalFaults(t *testing.T) {
	net := tinyNet(18)
	samples := []*tensor.Tensor{denseStim(19, net, 15), denseStim(20, net, 15)}
	faults := []Fault{
		{Kind: NeuronSaturated, Layer: 1, Neuron: 0}, // floods class 0: flips anything not predicted 0
		{Kind: SynapseDead, Layer: 0, Synapse: 0},
	}
	critical := must(Classify(net, faults, samples, 1, nil))
	pred := net.Predict(samples[0])
	pred2 := net.Predict(samples[1])
	if pred != 0 || pred2 != 0 {
		if !critical[0] {
			t.Error("output saturation must be critical when golden prediction is not that class")
		}
	}
	if len(critical) != 2 {
		t.Fatal("classification length mismatch")
	}
}

func TestComputeCoverage(t *testing.T) {
	faults := []Fault{
		{Kind: NeuronDead}, {Kind: NeuronDead},
		{Kind: SynapseDead}, {Kind: SynapseSatPos},
	}
	detected := []bool{true, false, true, true}
	critical := []bool{true, true, false, true}
	cov := must(Compute(faults, detected, critical))
	if cov.CriticalNeuron.Detected != 1 || cov.CriticalNeuron.Total != 2 {
		t.Errorf("critical neuron = %v", cov.CriticalNeuron)
	}
	if cov.BenignSynapse.Detected != 1 || cov.BenignSynapse.Total != 1 {
		t.Errorf("benign synapse = %v", cov.BenignSynapse)
	}
	if cov.CriticalSynapse.FC() != 1 {
		t.Errorf("critical synapse FC = %g", cov.CriticalSynapse.FC())
	}
	if math.Abs(cov.OverallFC()-0.75) > 1e-12 {
		t.Errorf("overall FC = %g, want 0.75", cov.OverallFC())
	}
	if math.Abs(cov.CriticalFC()-2.0/3) > 1e-12 {
		t.Errorf("critical FC = %g, want 2/3", cov.CriticalFC())
	}
	if (ClassCoverage{}).FC() != 1 {
		t.Error("empty class must be vacuously covered")
	}
}

func TestAccuracyDropOfDestructiveFault(t *testing.T) {
	net := tinyNet(21)
	var samples []*tensor.Tensor
	var labels []int
	for i := 0; i < 6; i++ {
		s := denseStim(int64(30+i), net, 15)
		samples = append(samples, s)
		labels = append(labels, net.Predict(s)) // golden accuracy = 1 by construction
	}
	// Saturate an output neuron: every prediction becomes that class.
	drop := AccuracyDrop(net, Fault{Kind: NeuronSaturated, Layer: 1, Neuron: 2}, samples, labels)
	wrongGolden := 0
	for _, l := range labels {
		if l != 2 {
			wrongGolden++
		}
	}
	want := float64(wrongGolden) / float64(len(samples))
	if math.Abs(drop-want) > 1e-12 {
		t.Errorf("accuracy drop = %g, want %g", drop, want)
	}
}

func TestMaxEscapeDrop(t *testing.T) {
	net := tinyNet(22)
	var samples []*tensor.Tensor
	var labels []int
	for i := 0; i < 4; i++ {
		s := denseStim(int64(40+i), net, 12)
		samples = append(samples, s)
		labels = append(labels, net.Predict(s))
	}
	faults := []Fault{
		{Kind: NeuronSaturated, Layer: 1, Neuron: 0}, // escape, critical
		{Kind: SynapseDead, Layer: 0, Synapse: 0},    // detected
	}
	detected := []bool{false, true}
	critical := []bool{true, true}
	nDrop, sDrop := MaxEscapeDrop(net, faults, detected, critical, samples, labels)
	if nDrop < 0 || sDrop != 0 {
		t.Errorf("escape drops = %g/%g; synapse fault was detected so its drop must be 0", nDrop, sDrop)
	}
}
