package fault

import (
	"context"
	"sync"
	"testing"

	"github.com/repro/snntest/internal/obs"
	"github.com/repro/snntest/internal/tensor"
)

// withObsRecorder turns the obs layer on for one test, backed by an
// in-memory recorder, and restores the dark default afterwards.
func withObsRecorder(t *testing.T) *obs.Recorder {
	t.Helper()
	rec := &obs.Recorder{}
	obs.SetSinks(rec)
	obs.ResetCounters()
	obs.Enable()
	t.Cleanup(func() {
		obs.Disable()
		obs.SetSinks()
		obs.ResetCounters()
	})
	return rec
}

// progressLog records every Progress callback under a lock so the test
// can inspect the full call sequence.
type progressLog struct {
	mu    sync.Mutex
	calls []int
}

func (l *progressLog) fn(done int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.calls = append(l.calls, done)
}

func (l *progressLog) terminalCalls(total int) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, c := range l.calls {
		if c == total {
			n++
		}
	}
	return n
}

// TestProgressTerminalGuaranteed is the regression test for the progress
// contract: every campaign reports done == total exactly once — including
// an empty fault list (where no per-fault tick ever fires) and totals
// that are not a multiple of the reporting stride.
func TestProgressTerminalGuaranteed(t *testing.T) {
	net := tinyNet(91)
	stim := denseStim(92, net, 8)
	samples := []*tensor.Tensor{denseStim(93, net, 6)}
	universe := Enumerate(net, DefaultOptions())

	for _, tc := range []struct {
		name    string
		nfaults int
		workers int
	}{
		{"empty", 0, 1},
		{"single", 1, 1},
		{"non-stride-multiple", 7, 1},
		{"parallel", len(universe), 4},
	} {
		t.Run("simulate/"+tc.name, func(t *testing.T) {
			var log progressLog
			_, err := SimulateWith(net, universe[:tc.nfaults], stim, CampaignOptions{
				Workers:  tc.workers,
				Progress: log.fn,
			})
			if err != nil {
				t.Fatal(err)
			}
			if got := log.terminalCalls(tc.nfaults); got != 1 {
				t.Errorf("terminal done==%d reported %d times, want exactly 1 (calls: %v)",
					tc.nfaults, got, log.calls)
			}
		})
		t.Run("classify/"+tc.name, func(t *testing.T) {
			var log progressLog
			_, err := ClassifyWith(net, universe[:tc.nfaults], samples, CampaignOptions{
				Workers:  tc.workers,
				Progress: log.fn,
			})
			if err != nil {
				t.Fatal(err)
			}
			if got := log.terminalCalls(tc.nfaults); got != 1 {
				t.Errorf("terminal done==%d reported %d times, want exactly 1 (calls: %v)",
					tc.nfaults, got, log.calls)
			}
		})
	}
}

// TestObsCampaignCountersReconcile pins the obs counters to the campaign
// results they mirror: after one simulate and one classify campaign the
// counter deltas must equal the corresponding result fields exactly.
func TestObsCampaignCountersReconcile(t *testing.T) {
	rec := withObsRecorder(t)
	net := tinyNet(94)
	faults := Enumerate(net, DefaultOptions())
	stim := denseStim(95, net, 10)
	samples := []*tensor.Tensor{denseStim(96, net, 8)}

	sim, err := SimulateWith(net, faults, stim, CampaignOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	cls, err := ClassifyWith(net, faults, samples, CampaignOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	critical := 0
	for _, c := range cls.Critical {
		if c {
			critical++
		}
	}
	snap := obs.Snapshot()
	want := map[string]int64{
		"fault_simulated_total":        int64(len(faults)),
		"fault_detected_total":         int64(sim.NumDetected()),
		"fault_classified_total":       int64(len(faults)),
		"fault_critical_total":         int64(critical),
		"fault_layer_steps_total":      sim.LayerSteps + cls.LayerSteps,
		"fault_full_layer_steps_total": sim.FullLayerSteps + cls.FullLayerSteps,
	}
	for name, w := range want {
		if snap[name] != w {
			t.Errorf("counter %s = %d, want %d", name, snap[name], w)
		}
	}

	// The snn hot-path counters must cover at least the campaign work
	// (golden runs add more, never less).
	if snap["snn_layer_steps_total"] < want["fault_layer_steps_total"] {
		t.Errorf("snn_layer_steps_total = %d < campaign layer-steps %d",
			snap["snn_layer_steps_total"], want["fault_layer_steps_total"])
	}
	if snap["snn_forward_passes_total"] == 0 || snap["snn_spikes_total"] == 0 {
		t.Errorf("snn counters dead: %v", snap)
	}

	if got := len(rec.SpansNamed("campaign/simulate")); got != 1 {
		t.Errorf("campaign/simulate spans = %d, want 1", got)
	}
	if got := len(rec.SpansNamed("campaign/classify")); got != 1 {
		t.Errorf("campaign/classify spans = %d, want 1", got)
	}
}

// TestObsCampaignSpanParenting checks CampaignOptions.Context: a span
// open in the caller's context becomes the campaign span's parent.
func TestObsCampaignSpanParenting(t *testing.T) {
	rec := withObsRecorder(t)
	net := tinyNet(97)
	faults := SampleUniverse(net, DefaultOptions(), 5)
	stim := denseStim(98, net, 8)

	ctx, root := obs.Start(context.Background(), "test-root")
	if _, err := SimulateWith(net, faults, stim, CampaignOptions{Context: ctx}); err != nil {
		t.Fatal(err)
	}
	root.End()

	spans := rec.SpansNamed("campaign/simulate")
	if len(spans) != 1 {
		t.Fatalf("campaign/simulate spans = %d, want 1", len(spans))
	}
	roots := rec.SpansNamed("test-root")
	if len(roots) != 1 || spans[0].Parent != roots[0].ID {
		t.Errorf("campaign span parent = %d, want root id %d", spans[0].Parent, roots[0].ID)
	}

	// The obs progress stream carries the same guaranteed terminal event.
	var sawTerminal bool
	for _, e := range rec.Events() {
		if e.Kind == obs.KindProgress && e.Name == "campaign/simulate" &&
			e.Done == len(faults) && e.Total == len(faults) {
			sawTerminal = true
		}
	}
	if !sawTerminal {
		t.Error("no terminal progress event for campaign/simulate")
	}
}
