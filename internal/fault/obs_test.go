package fault

import (
	"context"
	"sync"
	"testing"

	"github.com/repro/snntest/internal/obs"
	"github.com/repro/snntest/internal/tensor"
)

// withObsRecorder turns the obs layer on for one test, backed by an
// in-memory recorder, and restores the dark default afterwards.
func withObsRecorder(t *testing.T) *obs.Recorder {
	t.Helper()
	rec := &obs.Recorder{}
	obs.SetSinks(rec)
	obs.ResetCounters()
	obs.Enable()
	t.Cleanup(func() {
		obs.Disable()
		obs.SetSinks()
		obs.ResetCounters()
	})
	return rec
}

// progressLog records every Progress callback under a lock so the test
// can inspect the full call sequence.
type progressLog struct {
	mu    sync.Mutex
	calls []int
}

func (l *progressLog) fn(done int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.calls = append(l.calls, done)
}

func (l *progressLog) terminalCalls(total int) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, c := range l.calls {
		if c == total {
			n++
		}
	}
	return n
}

// TestProgressTerminalGuaranteed is the regression test for the progress
// contract: every campaign reports done == total exactly once — including
// an empty fault list (where no per-fault tick ever fires) and totals
// that are not a multiple of the reporting stride.
func TestProgressTerminalGuaranteed(t *testing.T) {
	net := tinyNet(91)
	stim := denseStim(92, net, 8)
	samples := []*tensor.Tensor{denseStim(93, net, 6)}
	universe := Enumerate(net, DefaultOptions())

	for _, tc := range []struct {
		name    string
		nfaults int
		workers int
	}{
		{"empty", 0, 1},
		{"single", 1, 1},
		{"non-stride-multiple", 7, 1},
		{"parallel", len(universe), 4},
	} {
		t.Run("simulate/"+tc.name, func(t *testing.T) {
			var log progressLog
			_, err := SimulateWith(net, universe[:tc.nfaults], stim, CampaignOptions{
				Workers:  tc.workers,
				Progress: log.fn,
			})
			if err != nil {
				t.Fatal(err)
			}
			if got := log.terminalCalls(tc.nfaults); got != 1 {
				t.Errorf("terminal done==%d reported %d times, want exactly 1 (calls: %v)",
					tc.nfaults, got, log.calls)
			}
		})
		t.Run("classify/"+tc.name, func(t *testing.T) {
			var log progressLog
			_, err := ClassifyWith(net, universe[:tc.nfaults], samples, CampaignOptions{
				Workers:  tc.workers,
				Progress: log.fn,
			})
			if err != nil {
				t.Fatal(err)
			}
			if got := log.terminalCalls(tc.nfaults); got != 1 {
				t.Errorf("terminal done==%d reported %d times, want exactly 1 (calls: %v)",
					tc.nfaults, got, log.calls)
			}
		})
	}
}

// TestObsCampaignCountersReconcile pins the obs counters to the campaign
// results they mirror: after one simulate and one classify campaign the
// counter deltas must equal the corresponding result fields exactly.
func TestObsCampaignCountersReconcile(t *testing.T) {
	rec := withObsRecorder(t)
	net := tinyNet(94)
	faults := Enumerate(net, DefaultOptions())
	stim := denseStim(95, net, 10)
	samples := []*tensor.Tensor{denseStim(96, net, 8)}

	sim, err := SimulateWith(net, faults, stim, CampaignOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	cls, err := ClassifyWith(net, faults, samples, CampaignOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	critical := 0
	for _, c := range cls.Critical {
		if c {
			critical++
		}
	}
	snap := obs.Snapshot()
	want := map[string]int64{
		"fault_simulated_total":        int64(len(faults)),
		"fault_detected_total":         int64(sim.NumDetected()),
		"fault_classified_total":       int64(len(faults)),
		"fault_critical_total":         int64(critical),
		"fault_layer_steps_total":      sim.LayerSteps + cls.LayerSteps,
		"fault_full_layer_steps_total": sim.FullLayerSteps + cls.FullLayerSteps,
	}
	for name, w := range want {
		if snap[name] != w {
			t.Errorf("counter %s = %d, want %d", name, snap[name], w)
		}
	}

	// The snn hot-path counters must cover at least the campaign work
	// (golden runs add more, never less).
	if snap["snn_layer_steps_total"] < want["fault_layer_steps_total"] {
		t.Errorf("snn_layer_steps_total = %d < campaign layer-steps %d",
			snap["snn_layer_steps_total"], want["fault_layer_steps_total"])
	}
	if snap["snn_forward_passes_total"] == 0 || snap["snn_spikes_total"] == 0 {
		t.Errorf("snn counters dead: %v", snap)
	}

	if got := len(rec.SpansNamed("campaign/simulate")); got != 1 {
		t.Errorf("campaign/simulate spans = %d, want 1", got)
	}
	if got := len(rec.SpansNamed("campaign/classify")); got != 1 {
		t.Errorf("campaign/classify spans = %d, want 1", got)
	}
}

// TestObsFusedForwardCountersReconcile pins the fused engine (the
// default campaign path — reference engine off) to the obs layer: the
// forward-pass and layer-step counters must reconcile exactly with the
// SimResult a campaign returns. PR 4 established this contract on the
// reference path; PR 8's fused kernels route observe() through a
// different step function and must uphold it byte-for-byte.
func TestObsFusedForwardCountersReconcile(t *testing.T) {
	withObsRecorder(t)
	net := tinyNet(101)
	faults := Enumerate(net, DefaultOptions())
	stim := denseStim(102, net, 9)
	goldenSteps := int64(len(net.Layers)) * int64(stim.Dim(0))

	sim, err := SimulateWith(net, faults, stim, CampaignOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	snap := obs.Snapshot()
	// One golden pass plus exactly one (early-exiting) pass per fault.
	if want := int64(1 + len(faults)); snap["snn_forward_passes_total"] != want {
		t.Errorf("snn_forward_passes_total = %d, want golden+faults = %d",
			snap["snn_forward_passes_total"], want)
	}
	if want := goldenSteps + sim.LayerSteps; snap["snn_layer_steps_total"] != want {
		t.Errorf("snn_layer_steps_total = %d, want golden %d + campaign %d",
			snap["snn_layer_steps_total"], goldenSteps, sim.LayerSteps)
	}
	if snap["snn_spikes_total"] == 0 {
		t.Error("fused path observed zero spikes")
	}

	// Full re-simulation on the fused path reconciles the same way, and
	// its layer-steps match the campaign's own full-work accounting.
	obs.ResetCounters()
	full, err := SimulateWith(net, faults, stim, CampaignOptions{Workers: 2, FullResim: true})
	if err != nil {
		t.Fatal(err)
	}
	snap = obs.Snapshot()
	if want := int64(1 + len(faults)); snap["snn_forward_passes_total"] != want {
		t.Errorf("full-resim snn_forward_passes_total = %d, want %d",
			snap["snn_forward_passes_total"], want)
	}
	if want := goldenSteps + full.LayerSteps; snap["snn_layer_steps_total"] != want {
		t.Errorf("full-resim snn_layer_steps_total = %d, want %d",
			snap["snn_layer_steps_total"], want)
	}
	if full.LayerSteps != full.FullLayerSteps {
		t.Errorf("full resim did %d layer-steps, accounting says %d",
			full.LayerSteps, full.FullLayerSteps)
	}
}

// TestObsFusedSpikesMatchReference: for the same forward pass, the fused
// kernels must report the exact spike and layer-step counts the
// reference engine reports — the counter half of the engine-equivalence
// gate.
func TestObsFusedSpikesMatchReference(t *testing.T) {
	withObsRecorder(t)
	net := tinyNet(103)
	stim := denseStim(104, net, 9)

	fused := net.NewScratch()
	if _, n := fused.RunFrom(0, nil, stim); n == 0 {
		t.Fatal("fused pass ran zero layer-steps")
	}
	fusedSnap := obs.Snapshot()

	obs.ResetCounters()
	ref := net.NewScratch()
	ref.SetReference(true)
	if _, n := ref.RunFrom(0, nil, stim); n == 0 {
		t.Fatal("reference pass ran zero layer-steps")
	}
	refSnap := obs.Snapshot()

	for _, name := range []string{"snn_spikes_total", "snn_layer_steps_total", "snn_forward_passes_total"} {
		if fusedSnap[name] != refSnap[name] {
			t.Errorf("%s: fused %d != reference %d", name, fusedSnap[name], refSnap[name])
		}
	}
	if fusedSnap["snn_spikes_total"] == 0 {
		t.Error("both engines observed zero spikes; stimulus too weak to gate anything")
	}
}

// TestObsCampaignSpanParenting checks CampaignOptions.Context: a span
// open in the caller's context becomes the campaign span's parent.
func TestObsCampaignSpanParenting(t *testing.T) {
	rec := withObsRecorder(t)
	net := tinyNet(97)
	faults := SampleUniverse(net, DefaultOptions(), 5)
	stim := denseStim(98, net, 8)

	ctx, root := obs.Start(context.Background(), "test-root")
	if _, err := SimulateWith(net, faults, stim, CampaignOptions{Context: ctx}); err != nil {
		t.Fatal(err)
	}
	root.End()

	spans := rec.SpansNamed("campaign/simulate")
	if len(spans) != 1 {
		t.Fatalf("campaign/simulate spans = %d, want 1", len(spans))
	}
	roots := rec.SpansNamed("test-root")
	if len(roots) != 1 || spans[0].Parent != roots[0].ID {
		t.Errorf("campaign span parent = %d, want root id %d", spans[0].Parent, roots[0].ID)
	}

	// The obs progress stream carries the same guaranteed terminal event.
	var sawTerminal bool
	for _, e := range rec.Events() {
		if e.Kind == obs.KindProgress && e.Name == "campaign/simulate" &&
			e.Done == len(faults) && e.Total == len(faults) {
			sawTerminal = true
		}
	}
	if !sawTerminal {
		t.Error("no terminal progress event for campaign/simulate")
	}
}
