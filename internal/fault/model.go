// Package fault implements behavioural fault modeling, injection and
// simulation for spiking neural networks, following Section III of the
// paper: neuron faults (dead, saturated, parametric timing variation) and
// synapse faults (dead, positively/negatively saturated, memory bit-flip).
//
// The default fault universe matches the paper's campaign arithmetic
// exactly — two behavioural faults per neuron and three weight faults per
// synapse (the Table II totals are 2·#neurons and 3·#synapses for every
// benchmark) — with the parametric and bit-flip faults available as
// extensions.
//
// A fault is detected by a test stimulus when it perturbs the output
// spike trains: ‖O^L − O^L(f)‖₁ > 0 (Eq. 3). A fault is critical when it
// flips the top-1 prediction of at least one dataset sample; otherwise it
// is benign.
package fault

import "fmt"

// Kind identifies the behavioural fault type.
type Kind uint8

const (
	// NeuronDead halts all spike propagation through the neuron.
	NeuronDead Kind = iota
	// NeuronSaturated makes the neuron fire at every time step.
	NeuronSaturated
	// NeuronThresholdVar perturbs the neuron's firing threshold by the
	// fault's Delta factor (timing-variation fault).
	NeuronThresholdVar
	// NeuronLeakVar perturbs the neuron's membrane leak by Delta.
	NeuronLeakVar
	// NeuronRefractoryVar adds Delta (rounded) steps of refractory period.
	NeuronRefractoryVar
	// SynapseDead zeroes the synapse weight.
	SynapseDead
	// SynapseSatPos saturates the weight to a large positive outlier with
	// respect to the layer's weight distribution.
	SynapseSatPos
	// SynapseSatNeg saturates the weight to a large negative outlier.
	SynapseSatNeg
	// SynapseBitFlip flips bit Bit of the weight's 8-bit fixed-point
	// representation (the digital storage fault of Section III).
	SynapseBitFlip
)

// IsNeuron reports whether the kind targets a neuron (as opposed to a
// synapse weight).
func (k Kind) IsNeuron() bool { return k <= NeuronRefractoryVar }

// IsExtension reports whether the kind is outside the paper's default
// campaign universe (timing-variation and bit-flip faults).
func (k Kind) IsExtension() bool {
	switch k {
	case NeuronThresholdVar, NeuronLeakVar, NeuronRefractoryVar, SynapseBitFlip:
		return true
	}
	return false
}

func (k Kind) String() string {
	switch k {
	case NeuronDead:
		return "neuron-dead"
	case NeuronSaturated:
		return "neuron-saturated"
	case NeuronThresholdVar:
		return "neuron-threshold-var"
	case NeuronLeakVar:
		return "neuron-leak-var"
	case NeuronRefractoryVar:
		return "neuron-refractory-var"
	case SynapseDead:
		return "synapse-dead"
	case SynapseSatPos:
		return "synapse-sat-pos"
	case SynapseSatNeg:
		return "synapse-sat-neg"
	case SynapseBitFlip:
		return "synapse-bitflip"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Fault is one injectable hardware fault, addressed by layer plus neuron
// or synapse index (the layer-contiguous conventions of package snn).
type Fault struct {
	Kind    Kind
	Layer   int
	Neuron  int     // valid when Kind.IsNeuron()
	Synapse int     // valid for synapse kinds
	Bit     int     // valid for SynapseBitFlip: 0 (LSB) … 7 (sign)
	Delta   float64 // perturbation factor for parametric kinds
}

// StartLayer returns the index of the first layer whose activity the
// fault can perturb — the replay start site of the incremental campaign.
// Both neuron and synapse faults first alter their own layer's spike
// output (a synapse fault changes the current entering that layer's
// neurons), so every layer below is bit-identical to the golden run and
// can be replayed from the golden record instead of re-simulated.
// Enumerate tags each fault with this layer index.
func (f Fault) StartLayer() int { return f.Layer }

func (f Fault) String() string {
	if f.Kind.IsNeuron() {
		if f.Delta != 0 { //lint:ignore floateq 0 is the unset sentinel for Delta in display formatting
			return fmt.Sprintf("%s L%d N%d Δ=%g", f.Kind, f.Layer, f.Neuron, f.Delta)
		}
		return fmt.Sprintf("%s L%d N%d", f.Kind, f.Layer, f.Neuron)
	}
	if f.Kind == SynapseBitFlip {
		return fmt.Sprintf("%s L%d S%d bit%d", f.Kind, f.Layer, f.Synapse, f.Bit)
	}
	return fmt.Sprintf("%s L%d S%d", f.Kind, f.Layer, f.Synapse)
}

// SaturationFactor scales a layer's maximum absolute weight to form the
// saturated-synapse outlier value, per the paper's "very large (small)
// weight making it a positive (negative) outlier" definition.
const SaturationFactor = 3.0

// Options selects which fault classes Enumerate includes.
type Options struct {
	// Core faults (the paper's campaign universe).
	NeuronDeadSaturated bool
	SynapseDeadSat      bool

	// Extensions.
	TimingVariation bool      // threshold/leak/refractory parametric faults
	TimingDeltas    []float64 // perturbation factors; default {0.5, 1.5}
	BitFlips        bool      // per-bit flips of 8-bit quantized weights
	BitFlipBits     []int     // which bits; default {0, 3, 6, 7}
}

// DefaultOptions matches the paper's Table II universe: 2 faults per
// neuron and 3 per synapse.
func DefaultOptions() Options {
	return Options{NeuronDeadSaturated: true, SynapseDeadSat: true}
}

// ExtendedOptions adds the parametric timing-variation and bit-flip
// faults of Section III on top of the default universe.
func ExtendedOptions() Options {
	o := DefaultOptions()
	o.TimingVariation = true
	o.TimingDeltas = []float64{0.5, 1.5}
	o.BitFlips = true
	o.BitFlipBits = []int{0, 3, 6, 7}
	return o
}
