package fault

import (
	"testing"

	"github.com/repro/snntest/internal/tensor"
)

func BenchmarkInjectRevert(b *testing.B) {
	net := tinyNet(1)
	inj := NewInjector(net)
	faults := Enumerate(net, ExtendedOptions())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := faults[i%len(faults)]
		revert := inj.Apply(f)
		revert()
	}
}

func BenchmarkSimulateUniverse(b *testing.B) {
	net := tinyNet(2)
	faults := Enumerate(net, DefaultOptions())
	stim := denseStim(3, net, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Simulate(net, faults, stim, 1, nil)
	}
	b.ReportMetric(float64(len(faults)), "faults")
}

func BenchmarkClassify(b *testing.B) {
	net := tinyNet(4)
	faults := Enumerate(net, DefaultOptions())
	samples := []*tensor.Tensor{denseStim(5, net, 15), denseStim(6, net, 15)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Classify(net, faults, samples, 1, nil)
	}
}
