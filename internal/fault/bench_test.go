package fault

import (
	"math/rand"
	"testing"

	"github.com/repro/snntest/internal/snn"
	"github.com/repro/snntest/internal/tensor"
)

func BenchmarkInjectRevert(b *testing.B) {
	net := tinyNet(1)
	inj := NewInjector(net)
	faults := Enumerate(net, ExtendedOptions())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := faults[i%len(faults)]
		revert := inj.Apply(f)
		revert()
	}
}

// benchmarkSimulate runs the campaign either incrementally (the default
// golden-trace replay + early-exit path) or with full re-simulation, on
// the 4-layer IBM-gesture tiny model where the layer-skip saving shows.
func benchmarkSimulate(b *testing.B, full bool) {
	net, err := snn.BuildIBMGesture(rand.New(rand.NewSource(2)), snn.ScaleTiny)
	if err != nil {
		b.Fatal(err)
	}
	faults := Enumerate(net, DefaultOptions())
	stim := denseStim(3, net, 20)
	var res *SimResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = SimulateWith(net, faults, stim, CampaignOptions{Workers: 1, FullResim: full})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(faults)), "faults")
	b.ReportMetric(float64(res.LayerSteps), "layer-steps")
}

func BenchmarkSimulateUniverse(b *testing.B)     { benchmarkSimulate(b, false) }
func BenchmarkSimulateUniverseFull(b *testing.B) { benchmarkSimulate(b, true) }

func BenchmarkRunFromReplay(b *testing.B) {
	// Micro-benchmark of the replay fast path itself: re-simulate only the
	// output layer against a recorded golden trace.
	net := tinyNet(7)
	stim := denseStim(8, net, 20)
	golden := net.Run(stim)
	sc := net.NewScratch()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.RunFrom(len(net.Layers)-1, golden, stim)
	}
}

func BenchmarkClassify(b *testing.B) {
	net := tinyNet(4)
	faults := Enumerate(net, DefaultOptions())
	samples := []*tensor.Tensor{denseStim(5, net, 15), denseStim(6, net, 15)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Classify(net, faults, samples, 1, nil)
	}
}
