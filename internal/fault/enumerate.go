package fault

import (
	"github.com/repro/snntest/internal/snn"
)

// Enumerate lists the fault universe of the network under the given
// options, in deterministic order: layer by layer, neurons before
// synapses, kinds in declaration order. Every fault is tagged with the
// index of its affected layer (Fault.Layer, see Fault.StartLayer): the
// incremental campaign replays the golden trace up to that layer and
// re-simulates only the layers at and above it.
func Enumerate(net *snn.Network, opts Options) []Fault {
	var faults []Fault
	deltas := opts.TimingDeltas
	if opts.TimingVariation && len(deltas) == 0 {
		deltas = []float64{0.5, 1.5}
	}
	bits := opts.BitFlipBits
	if opts.BitFlips && len(bits) == 0 {
		bits = []int{0, 3, 6, 7}
	}
	for li, l := range net.Layers {
		nn := l.NumNeurons()
		if opts.NeuronDeadSaturated {
			for i := 0; i < nn; i++ {
				faults = append(faults,
					Fault{Kind: NeuronDead, Layer: li, Neuron: i},
					Fault{Kind: NeuronSaturated, Layer: li, Neuron: i})
			}
		}
		if opts.TimingVariation {
			for i := 0; i < nn; i++ {
				for _, d := range deltas {
					faults = append(faults,
						Fault{Kind: NeuronThresholdVar, Layer: li, Neuron: i, Delta: d},
						Fault{Kind: NeuronLeakVar, Layer: li, Neuron: i, Delta: d},
					)
				}
				faults = append(faults, Fault{Kind: NeuronRefractoryVar, Layer: li, Neuron: i, Delta: 3})
			}
		}
		ns := l.NumSynapses()
		if opts.SynapseDeadSat {
			for s := 0; s < ns; s++ {
				faults = append(faults,
					Fault{Kind: SynapseDead, Layer: li, Synapse: s},
					Fault{Kind: SynapseSatPos, Layer: li, Synapse: s},
					Fault{Kind: SynapseSatNeg, Layer: li, Synapse: s})
			}
		}
		if opts.BitFlips {
			for s := 0; s < ns; s++ {
				for _, b := range bits {
					faults = append(faults, Fault{Kind: SynapseBitFlip, Layer: li, Synapse: s, Bit: b})
				}
			}
		}
	}
	return faults
}

// UniverseSize returns the fault count Enumerate would produce without
// materializing the slice, useful for paper-scale reporting (the IBM
// model's universe exceeds three million faults).
func UniverseSize(net *snn.Network, opts Options) int {
	perNeuron, perSynapse := 0, 0
	if opts.NeuronDeadSaturated {
		perNeuron += 2
	}
	if opts.TimingVariation {
		deltas := len(opts.TimingDeltas)
		if deltas == 0 {
			deltas = 2
		}
		perNeuron += 2*deltas + 1
	}
	if opts.SynapseDeadSat {
		perSynapse += 3
	}
	if opts.BitFlips {
		bits := len(opts.BitFlipBits)
		if bits == 0 {
			bits = 4
		}
		perSynapse += bits
	}
	return perNeuron*net.NumNeurons() + perSynapse*net.NumSynapses()
}

// SampleUniverse returns every nth fault of the universe (n = stride),
// a deterministic subsample for statistically estimating coverage on
// models whose full universe is too large to simulate exhaustively.
func SampleUniverse(net *snn.Network, opts Options, stride int) []Fault {
	if stride <= 1 {
		return Enumerate(net, opts)
	}
	all := Enumerate(net, opts)
	out := make([]Fault, 0, len(all)/stride+1)
	for i := 0; i < len(all); i += stride {
		out = append(out, all[i])
	}
	return out
}
