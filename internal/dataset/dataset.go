// Package dataset generates synthetic spiking datasets that stand in for
// the three benchmarks of the paper: NMNIST (saccade-driven DVS views of
// digit glyphs), IBM DVS128 Gesture (event streams of arm/hand motion
// trajectories), and Spiking Heidelberg Digits (cochleagram spike trains
// of spoken digits).
//
// The real datasets are not redistributable inside this offline
// reproduction, so each generator synthesizes event streams with the same
// input geometry, class count and qualitative spike statistics: DVS-style
// ON/OFF polarity events produced by moving intensity patterns for the
// two vision benchmarks, and drifting multi-formant Poisson spike trains
// for the audio benchmark. Classes are separable but noisy (per-sample
// jitter, phase and amplitude noise), so a trained SNN is structured and
// faults can be labelled critical or benign against real decision
// boundaries — the only properties the paper's algorithm depends on.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/repro/snntest/internal/encode"
	"github.com/repro/snntest/internal/snn"
	"github.com/repro/snntest/internal/tensor"
)

// Sample is one labelled spiking stimulus of shape [T, frame...].
type Sample struct {
	Input *tensor.Tensor
	Label int
}

// Dataset is a labelled train/test split of spiking stimuli.
type Dataset struct {
	Name        string
	InShape     []int
	NumClasses  int
	SampleSteps int
	Train       []Sample
	Test        []Sample
}

// Inputs returns the inputs and labels of the given split as parallel
// slices (split is "train" or "test").
func (d *Dataset) Inputs(split string) ([]*tensor.Tensor, []int) {
	var s []Sample
	switch split {
	case "train":
		s = d.Train
	case "test":
		s = d.Test
	default:
		// Programmer error: the split names are a closed enum.
		failf("unknown split %q (want train or test)", split)
	}
	ins := make([]*tensor.Tensor, len(s))
	labels := make([]int, len(s))
	for i, smp := range s {
		ins[i] = smp.Input
		labels[i] = smp.Label
	}
	return ins, labels
}

// Config sizes a generated dataset.
type Config struct {
	TrainPerClass int
	TestPerClass  int
	Steps         int // duration of one sample in simulation steps
	Seed          int64
}

// DefaultConfig returns a small deterministic configuration suitable for
// unit tests.
func DefaultConfig() Config {
	return Config{TrainPerClass: 6, TestPerClass: 3, Steps: 30, Seed: 1}
}

// ForBenchmark generates the synthetic dataset matching a benchmark
// network's input geometry. The network must come from one of the
// snn.Build* constructors.
func ForBenchmark(net *snn.Network, cfg Config) (*Dataset, error) {
	switch net.Name {
	case "nmnist":
		return GenNMNIST(cfg, net.InShape[1]), nil
	case "ibm-gesture":
		return GenGesture(cfg, net.InShape[1]), nil
	case "shd":
		return GenSHD(cfg, net.InShape[0]), nil
	default:
		return nil, fmt.Errorf("dataset: no generator for benchmark %q", net.Name)
	}
}

// ---------------------------------------------------------------------------
// NMNIST-like: saccade views of digit glyphs

// GenNMNIST synthesizes the NMNIST stand-in on a 2×h×h DVS retina:
// each class is a distinct oriented-bar glyph; each sample views the glyph
// through a triangular three-saccade camera motion (as in the real NMNIST
// recording protocol), emitting ON/OFF events at moving edges.
func GenNMNIST(cfg Config, h int) *Dataset {
	const classes = 10
	d := &Dataset{
		Name:        "nmnist",
		InShape:     []int{2, h, h},
		NumClasses:  classes,
		SampleSteps: cfg.Steps,
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	gen := func(label int) Sample {
		return Sample{Input: nmnistSample(rng, h, cfg.Steps, label), Label: label}
	}
	d.Train, d.Test = fillSplits(classes, cfg, gen)
	return d
}

// nmnistSample renders one saccading glyph as an event stream.
func nmnistSample(rng *rand.Rand, h, steps, label int) *tensor.Tensor {
	angle := float64(label) * math.Pi / 10
	// Per-sample jitter of glyph position and orientation.
	jx := (rng.Float64() - 0.5) * float64(h) * 0.1
	jy := (rng.Float64() - 0.5) * float64(h) * 0.1
	angle += (rng.Float64() - 0.5) * 0.12
	// A secondary dot distinguishes glyphs with similar bar angles.
	dotPhase := float64(label%5) * 2 * math.Pi / 5

	out := tensor.New(steps, 2, h, h)
	prev := glyphFrame(h, angle, jx, jy, dotPhase, 0, 0)
	amp := float64(h) * 0.12
	for t := 0; t < steps; t++ {
		// Triangular saccade: three linear sweeps per sample.
		ph := 3 * float64(t) / float64(steps)
		seg := int(ph)
		frac := ph - float64(seg)
		var ox, oy float64
		switch seg {
		case 0:
			ox, oy = amp*frac, amp*frac*0.5
		case 1:
			ox, oy = amp*(1-frac), amp*0.5
		default:
			ox, oy = 0, amp*0.5*(1-frac)
		}
		cur := glyphFrame(h, angle, jx, jy, dotPhase, ox, oy)
		ev := encode.EventsFromMotion(prev, cur, 0.04)
		dropoutEvents(rng, ev, 0.1)
		out.Step(t).CopyFrom(ev)
		prev = cur
	}
	return out
}

// glyphFrame renders the intensity image of an oriented bar plus marker
// dot, shifted by (ox, oy).
func glyphFrame(h int, angle, jx, jy, dotPhase, ox, oy float64) *tensor.Tensor {
	f := tensor.New(h, h)
	cx := float64(h)/2 + jx + ox
	cy := float64(h)/2 + jy + oy
	dirX, dirY := math.Cos(angle), math.Sin(angle)
	barLen := float64(h) * 0.38
	barWidth := math.Max(1.0, float64(h)*0.08)
	dotR := math.Max(1.0, float64(h)*0.10)
	dotX := cx + math.Cos(dotPhase)*float64(h)*0.3
	dotY := cy + math.Sin(dotPhase)*float64(h)*0.3
	for y := 0; y < h; y++ {
		for x := 0; x < h; x++ {
			dx, dy := float64(x)-cx, float64(y)-cy
			along := dx*dirX + dy*dirY
			across := -dx*dirY + dy*dirX
			v := 0.0
			if math.Abs(along) < barLen && math.Abs(across) < barWidth {
				v = 1
			}
			ddx, ddy := float64(x)-dotX, float64(y)-dotY
			if ddx*ddx+ddy*ddy < dotR*dotR {
				v = 1
			}
			f.Set(v, y, x)
		}
	}
	return f
}

// ---------------------------------------------------------------------------
// DVS gesture-like: motion trajectories of a blob

// GenGesture synthesizes the DVS128-Gesture stand-in on a 2×h×h retina:
// each of the 11 classes is a distinct parametric motion of a bright blob
// (circles of either handedness, waves, diagonals, growth/contraction,
// zigzags and flicker), emitting polarity events at moving edges.
func GenGesture(cfg Config, h int) *Dataset {
	const classes = 11
	d := &Dataset{
		Name:        "ibm-gesture",
		InShape:     []int{2, h, h},
		NumClasses:  classes,
		SampleSteps: cfg.Steps,
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	gen := func(label int) Sample {
		return Sample{Input: gestureSample(rng, h, cfg.Steps, label), Label: label}
	}
	d.Train, d.Test = fillSplits(classes, cfg, gen)
	return d
}

// gestureSample renders one gesture trajectory as an event stream.
func gestureSample(rng *rand.Rand, h, steps, label int) *tensor.Tensor {
	out := tensor.New(steps, 2, h, h)
	phase := rng.Float64() * 2 * math.Pi // per-sample start phase
	speed := 1 + (rng.Float64()-0.5)*0.3 // per-sample tempo
	prev := blobFrame(h, gesturePos(label, 0, phase, speed, h))
	for t := 0; t < steps; t++ {
		cur := blobFrame(h, gesturePos(label, float64(t+1)/float64(steps), phase, speed, h))
		ev := encode.EventsFromMotion(prev, cur, 0.04)
		dropoutEvents(rng, ev, 0.1)
		out.Step(t).CopyFrom(ev)
		prev = cur
	}
	return out
}

// blobState is the center and radius of the gesture blob.
type blobState struct{ x, y, r float64 }

// gesturePos returns the blob state for gesture class at normalized time
// u ∈ [0,1].
func gesturePos(label int, u, phase, speed float64, h int) blobState {
	c := float64(h) / 2
	a := float64(h) * 0.28 // motion amplitude
	r := math.Max(1.5, float64(h)*0.11)
	w := 2*math.Pi*speed*u + phase
	switch label {
	case 0: // clockwise circle
		return blobState{c + a*math.Cos(w), c + a*math.Sin(w), r}
	case 1: // counter-clockwise circle
		return blobState{c + a*math.Cos(-w), c + a*math.Sin(-w), r}
	case 2: // horizontal wave
		return blobState{c + a*math.Sin(w), c, r}
	case 3: // vertical wave
		return blobState{c, c + a*math.Sin(w), r}
	case 4: // rising diagonal sweep
		return blobState{c + a*(2*u-1), c + a*(2*u-1), r}
	case 5: // falling diagonal sweep
		return blobState{c + a*(2*u-1), c - a*(2*u-1), r}
	case 6: // growing blob
		return blobState{c, c, r * (0.6 + 1.6*u)}
	case 7: // shrinking blob
		return blobState{c, c, r * (2.2 - 1.6*u)}
	case 8: // L-shape: right then down
		if u < 0.5 {
			return blobState{c - a + 4*a*u, c - a, r}
		}
		return blobState{c + a, c - a + 4*a*(u-0.5), r}
	case 9: // zigzag
		return blobState{c + a*(2*u-1), c + a*0.8*math.Sin(3*w), r}
	default: // 10: pulsing in place
		return blobState{c, c, r * (1 + 0.7*math.Sin(2*w))}
	}
}

// blobFrame renders a soft-edged disc.
func blobFrame(h int, b blobState) *tensor.Tensor {
	f := tensor.New(h, h)
	for y := 0; y < h; y++ {
		for x := 0; x < h; x++ {
			dx, dy := float64(x)-b.x, float64(y)-b.y
			d := math.Sqrt(dx*dx+dy*dy) - b.r
			switch {
			case d <= 0:
				f.Set(1, y, x)
			case d < 1.5:
				f.Set(1-d/1.5, y, x)
			}
		}
	}
	return f
}

// ---------------------------------------------------------------------------
// SHD-like: spoken-digit cochleagram spike trains

// GenSHD synthesizes the Spiking-Heidelberg-Digits stand-in over c audio
// channels: each of the 20 classes (ten digits × two languages in the real
// dataset) is a pair of formant tracks — Gaussian activity bumps over the
// channel axis whose centers drift with class-specific slopes — sampled as
// Bernoulli spikes per step.
func GenSHD(cfg Config, channels int) *Dataset {
	const classes = 20
	d := &Dataset{
		Name:        "shd",
		InShape:     []int{channels},
		NumClasses:  classes,
		SampleSteps: cfg.Steps,
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	gen := func(label int) Sample {
		return Sample{Input: shdSample(rng, channels, cfg.Steps, label), Label: label}
	}
	d.Train, d.Test = fillSplits(classes, cfg, gen)
	return d
}

// shdSample renders one utterance as Bernoulli spikes of two drifting
// formant bumps.
func shdSample(rng *rand.Rand, channels, steps, label int) *tensor.Tensor {
	cf := float64(channels)
	// Class-specific formant geometry with per-sample jitter.
	base1 := cf * (0.15 + 0.6*float64(label%10)/10)
	slope1 := cf * 0.3 * (float64(label%4)/3 - 0.5)
	base2 := cf * (0.75 - 0.5*float64(label/10)) // language band
	slope2 := -slope1 * 0.6
	base1 += (rng.Float64() - 0.5) * cf * 0.04
	base2 += (rng.Float64() - 0.5) * cf * 0.04
	amp := 0.55 + rng.Float64()*0.2
	sigma := math.Max(1.0, cf*0.05)

	out := tensor.New(steps, channels)
	for t := 0; t < steps; t++ {
		u := float64(t) / float64(steps)
		c1 := base1 + slope1*u
		c2 := base2 + slope2*u
		for ch := 0; ch < channels; ch++ {
			x := float64(ch)
			r1 := math.Exp(-(x - c1) * (x - c1) / (2 * sigma * sigma))
			r2 := math.Exp(-(x - c2) * (x - c2) / (2 * sigma * sigma))
			p := amp * math.Max(r1, r2)
			if rng.Float64() < p {
				out.Set(1, t, ch)
			}
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// shared helpers

// fillSplits draws TrainPerClass + TestPerClass samples per class.
func fillSplits(classes int, cfg Config, gen func(label int) Sample) (train, test []Sample) {
	for c := 0; c < classes; c++ {
		for i := 0; i < cfg.TrainPerClass; i++ {
			train = append(train, gen(c))
		}
		for i := 0; i < cfg.TestPerClass; i++ {
			test = append(test, gen(c))
		}
	}
	return train, test
}

// dropoutEvents randomly deletes a fraction p of the events in a frame,
// modelling sensor noise.
func dropoutEvents(rng *rand.Rand, ev *tensor.Tensor, p float64) {
	d := ev.Data()
	for i, v := range d {
		if v == 1 && rng.Float64() < p { //lint:ignore floateq event frames hold exactly 0 or 1
			d[i] = 0
		}
	}
}

// failf is the package's invariant-check chokepoint for closed-enum
// misuse that validated entry points have already excluded.
func failf(format string, args ...any) {
	panic("dataset: " + fmt.Sprintf(format, args...))
}
