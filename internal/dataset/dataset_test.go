package dataset

import (
	"math/rand"
	"testing"

	"github.com/repro/snntest/internal/snn"
	"github.com/repro/snntest/internal/tensor"
)

func TestGeneratorsShapeAndSplit(t *testing.T) {
	cfg := Config{TrainPerClass: 2, TestPerClass: 1, Steps: 12, Seed: 1}
	cases := []struct {
		name    string
		ds      *Dataset
		classes int
		inShape []int
	}{
		{"nmnist", GenNMNIST(cfg, 11), 10, []int{2, 11, 11}},
		{"gesture", GenGesture(cfg, 16), 11, []int{2, 16, 16}},
		{"shd", GenSHD(cfg, 40), 20, []int{40}},
	}
	for _, c := range cases {
		if c.ds.NumClasses != c.classes {
			t.Errorf("%s: classes = %d, want %d", c.name, c.ds.NumClasses, c.classes)
		}
		if len(c.ds.Train) != 2*c.classes || len(c.ds.Test) != c.classes {
			t.Errorf("%s: split sizes %d/%d", c.name, len(c.ds.Train), len(c.ds.Test))
		}
		for _, s := range c.ds.Train {
			shape := s.Input.Shape()
			if shape[0] != 12 {
				t.Fatalf("%s: steps = %d, want 12", c.name, shape[0])
			}
			for i, d := range c.inShape {
				if shape[i+1] != d {
					t.Fatalf("%s: frame shape %v, want %v", c.name, shape[1:], c.inShape)
				}
			}
			if s.Label < 0 || s.Label >= c.classes {
				t.Fatalf("%s: label %d out of range", c.name, s.Label)
			}
		}
	}
}

func TestSamplesAreBinaryAndNonEmpty(t *testing.T) {
	cfg := Config{TrainPerClass: 1, TestPerClass: 1, Steps: 20, Seed: 2}
	for _, ds := range []*Dataset{GenNMNIST(cfg, 11), GenGesture(cfg, 16), GenSHD(cfg, 40)} {
		for _, s := range append(ds.Train, ds.Test...) {
			spikes := 0.0
			for _, v := range s.Input.Data() {
				if v != 0 && v != 1 {
					t.Fatalf("%s: non-binary input value %g", ds.Name, v)
				}
				spikes += v
			}
			if spikes == 0 {
				t.Errorf("%s class %d: sample has no events", ds.Name, s.Label)
			}
			// Event streams should be sparse, not dense noise.
			if frac := spikes / float64(s.Input.Len()); frac > 0.5 {
				t.Errorf("%s class %d: implausibly dense events (%.0f%%)", ds.Name, s.Label, 100*frac)
			}
		}
	}
}

func TestDeterministicGeneration(t *testing.T) {
	cfg := Config{TrainPerClass: 1, TestPerClass: 1, Steps: 10, Seed: 7}
	a := GenSHD(cfg, 30)
	b := GenSHD(cfg, 30)
	for i := range a.Train {
		if !tensor.Equal(a.Train[i].Input, b.Train[i].Input, 0) {
			t.Fatal("same seed must reproduce identical datasets")
		}
	}
	cfg.Seed = 8
	c := GenSHD(cfg, 30)
	same := true
	for i := range a.Train {
		if !tensor.Equal(a.Train[i].Input, c.Train[i].Input, 0) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should produce different datasets")
	}
}

func TestClassesAreDistinguishable(t *testing.T) {
	// Samples of the same class must be more similar (in per-pixel count
	// space) to each other than to samples of a different class — a cheap
	// separability proxy that guards against degenerate generators.
	cfg := Config{TrainPerClass: 3, TestPerClass: 0, Steps: 20, Seed: 3}
	for _, ds := range []*Dataset{GenNMNIST(cfg, 11), GenGesture(cfg, 16), GenSHD(cfg, 40)} {
		counts := make(map[int][]*tensor.Tensor)
		for _, s := range ds.Train {
			c := tensor.SumCols(s.Input.Reshape(s.Input.Dim(0), s.Input.Len()/s.Input.Dim(0)))
			counts[s.Label] = append(counts[s.Label], c)
		}
		intra := avgDist(counts[0][0], counts[0][1], counts[0][2])
		inter := 0.0
		pairs := 0
		for c := 1; c < 4; c++ {
			inter += tensor.L1Diff(counts[0][0], counts[c][0])
			pairs++
		}
		inter /= float64(pairs)
		if !(inter > intra) {
			t.Errorf("%s: inter-class distance %.1f not larger than intra-class %.1f", ds.Name, inter, intra)
		}
	}
}

func avgDist(ts ...*tensor.Tensor) float64 {
	total, n := 0.0, 0
	for i := 0; i < len(ts); i++ {
		for j := i + 1; j < len(ts); j++ {
			total += tensor.L1Diff(ts[i], ts[j])
			n++
		}
	}
	return total / float64(n)
}

func TestForBenchmarkMatchesNetworks(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cfg := Config{TrainPerClass: 1, TestPerClass: 1, Steps: 8, Seed: 5}
	for _, build := range []func(*rand.Rand, snn.ModelScale) (*snn.Network, error){
		snn.BuildNMNIST, snn.BuildIBMGesture, snn.BuildSHD,
	} {
		net := must(build(rng, snn.ScaleTiny))
		ds := must(ForBenchmark(net, cfg))
		// The generated samples must be directly runnable on the network.
		rec := net.Run(ds.Train[0].Input)
		if rec.Steps != 8 {
			t.Errorf("%s: record steps = %d", net.Name, rec.Steps)
		}
		if ds.NumClasses != net.OutputLen() {
			t.Errorf("%s: dataset classes %d != network outputs %d", net.Name, ds.NumClasses, net.OutputLen())
		}
	}
}

func TestForBenchmarkUnknownErrors(t *testing.T) {
	net := must(snn.NewNetwork("mystery", []int{1}, 1.0,
		must(snn.NewLayer("d", must(snn.NewDenseProj(tensor.New(1, 1))), snn.DefaultLIF()))))
	if _, err := ForBenchmark(net, DefaultConfig()); err == nil {
		t.Error("expected error for unknown benchmark")
	}
}

func TestInputsSplit(t *testing.T) {
	ds := GenSHD(Config{TrainPerClass: 1, TestPerClass: 2, Steps: 5, Seed: 6}, 20)
	ins, labels := ds.Inputs("test")
	if len(ins) != 40 || len(labels) != 40 {
		t.Errorf("test split = %d/%d, want 40/40", len(ins), len(labels))
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown split must panic")
		}
	}()
	ds.Inputs("validation")
}
