// Package baseline implements the prior-work test-generation methods the
// paper compares against in Table IV. All of them share one skeleton —
// greedily accumulate inputs from a candidate pool until fault coverage
// saturates, verifying every candidate by fault simulation — and differ
// only in where candidates come from:
//
//	[18] El-Sayed et al.  candidates are dataset samples
//	[20] Chen et al.      candidates are random stimuli
//	[17]/[19] Tseng/Chiu  candidates are adversarially perturbed samples
//
// Because the greedy loop scores candidates by fault simulation, its cost
// grows with the fault-model size — the O(M·T_FS) behaviour whose removal
// is the paper's central claim. The FaultSims counter in Result makes
// that cost visible to the benchmark harness.
package baseline

import (
	"math"
	"math/rand"
	"sort"
	"time"

	ag "github.com/repro/snntest/internal/autograd"
	"github.com/repro/snntest/internal/fault"
	"github.com/repro/snntest/internal/snn"
	"github.com/repro/snntest/internal/tensor"
)

// Config controls the greedy selection loop.
type Config struct {
	// TargetFC stops selection once this fraction of the detectable
	// faults (those covered by the union of all candidates) is reached.
	TargetFC float64
	// MaxInputs bounds the test-set size.
	MaxInputs int
	// Workers for the per-candidate fault simulations (≤ 0: GOMAXPROCS).
	Workers int
}

// DefaultConfig reproduces the prior works' stop criterion: accumulate
// until (almost) no undetected-but-detectable fault remains.
func DefaultConfig() Config {
	return Config{TargetFC: 0.999, MaxInputs: 64}
}

// Result is the outcome of a greedy baseline run.
type Result struct {
	// Selected are the chosen inputs in selection order.
	Selected []*tensor.Tensor
	// Stimulus is the concatenated test (samples interleaved with
	// equal-length zero separators, the same reset convention as the
	// optimized test).
	Stimulus *tensor.Tensor
	// CumulativeFC[k] is the fault coverage after the first k+1 inputs.
	CumulativeFC []float64
	// FaultSims counts fault simulations performed during generation
	// (one per candidate × fault pair evaluated).
	FaultSims int
	// Runtime is the wall-clock generation time.
	Runtime time.Duration
}

// TotalSteps returns the duration of the assembled stimulus in steps.
func (r *Result) TotalSteps() int {
	if r.Stimulus == nil {
		return 0
	}
	return r.Stimulus.Dim(0)
}

// GreedySelect runs the shared greedy engine: every candidate is scored
// by full fault simulation, then candidates are added by maximum marginal
// coverage until the target is reached. This is deliberately the
// expensive prior-work flow.
func GreedySelect(net *snn.Network, faults []fault.Fault, candidates []*tensor.Tensor, cfg Config) (*Result, error) {
	start := time.Now()
	res := &Result{}
	if len(candidates) == 0 || len(faults) == 0 {
		res.Stimulus = net.ZeroInput(1)
		res.Runtime = time.Since(start)
		return res, nil
	}

	// Detection matrix: which faults each candidate detects.
	detects := make([][]bool, len(candidates))
	for ci, cand := range candidates {
		sim, err := fault.Simulate(net, faults, cand, cfg.Workers, nil)
		if err != nil {
			return nil, err
		}
		detects[ci] = sim.Detected
		res.FaultSims += len(faults)
	}

	// Detectable universe = union over candidates.
	detectable := 0
	union := make([]bool, len(faults))
	for _, d := range detects {
		for i, v := range d {
			if v && !union[i] {
				union[i] = true
				detectable++
			}
		}
	}
	if detectable == 0 {
		res.Stimulus = net.ZeroInput(1)
		res.Runtime = time.Since(start)
		return res, nil
	}

	covered := make([]bool, len(faults))
	coveredCount := 0
	used := make([]bool, len(candidates))
	maxInputs := cfg.MaxInputs
	if maxInputs <= 0 {
		maxInputs = len(candidates)
	}
	for len(res.Selected) < maxInputs {
		bestC, bestGain := -1, 0
		for ci := range candidates {
			if used[ci] {
				continue
			}
			gain := 0
			for fi, d := range detects[ci] {
				if d && !covered[fi] {
					gain++
				}
			}
			if gain > bestGain {
				bestGain, bestC = gain, ci
			}
		}
		if bestC < 0 {
			break // no candidate adds coverage
		}
		used[bestC] = true
		res.Selected = append(res.Selected, candidates[bestC])
		for fi, d := range detects[bestC] {
			if d && !covered[fi] {
				covered[fi] = true
				coveredCount++
			}
		}
		res.CumulativeFC = append(res.CumulativeFC, float64(coveredCount)/float64(len(faults)))
		if float64(coveredCount) >= cfg.TargetFC*float64(detectable) {
			break
		}
	}

	res.Stimulus = assemble(net, res.Selected)
	res.Runtime = time.Since(start)
	return res, nil
}

// assemble concatenates inputs interleaved with equal-length zero
// separators (same convention as the optimized test's Eq. 7).
func assemble(net *snn.Network, inputs []*tensor.Tensor) *tensor.Tensor {
	if len(inputs) == 0 {
		return net.ZeroInput(1)
	}
	frame := net.InputLen()
	total := 0
	for i, c := range inputs {
		total += c.Dim(0)
		if i < len(inputs)-1 {
			total += c.Dim(0)
		}
	}
	out := tensor.New(append([]int{total}, net.InShape...)...)
	off := 0
	for i, c := range inputs {
		copy(out.RawRange(off*frame, c.Len()), c.Data())
		off += c.Dim(0)
		if i < len(inputs)-1 {
			off += c.Dim(0)
		}
	}
	return out
}

// Dataset18 runs the [18]-style compact functional test generation:
// greedy selection over the provided dataset samples.
func Dataset18(net *snn.Network, faults []fault.Fault, samples []*tensor.Tensor, cfg Config) (*Result, error) {
	return GreedySelect(net, faults, samples, cfg)
}

// Random20 runs the [20]-style generation: greedy selection over random
// Bernoulli stimuli of one dataset-sample duration each.
func Random20(net *snn.Network, faults []fault.Fault, pool, steps int, density float64, rng *rand.Rand, cfg Config) (*Result, error) {
	candidates := make([]*tensor.Tensor, pool)
	for i := range candidates {
		candidates[i] = tensor.RandBernoulli(rng, density, append([]int{steps}, net.InShape...)...)
	}
	return GreedySelect(net, faults, candidates, cfg)
}

// Adversarial17 runs the [17]/[19]-style generation: each dataset sample
// is perturbed by flipping the input bits with the largest
// loss-increasing gradients (a spike-domain FGSM analogue), then greedy
// selection runs over the perturbed pool.
func Adversarial17(net *snn.Network, faults []fault.Fault, samples []*tensor.Tensor, labels []int, flipFrac float64, cfg Config) (*Result, error) {
	candidates := make([]*tensor.Tensor, len(samples))
	for i, s := range samples {
		cand, err := AdversarialPerturb(net, s, labels[i], flipFrac)
		if err != nil {
			return nil, err
		}
		candidates[i] = cand
	}
	return GreedySelect(net, faults, candidates, cfg)
}

// AdversarialPerturb flips the flipFrac fraction of input bits with the
// largest gradient magnitude of the classification loss with respect to
// the input, in the loss-increasing direction.
func AdversarialPerturb(net *snn.Network, sample *tensor.Tensor, label int, flipFrac float64) (*tensor.Tensor, error) {
	steps := sample.Dim(0)
	frame := net.InputLen()
	leaf := ag.Leaf(sample.Clone().Reshape(steps * frame))
	stepNodes := make([]*ag.Node, steps)
	for t := 0; t < steps; t++ {
		// STE keeps the forward binary while letting gradients reach the
		// input bits.
		stepNodes[t] = ag.STE(ag.Slice(leaf, t*frame, frame, net.InShape...), 0.5)
	}
	res := net.RunGraph(stepNodes)
	loss := ag.SoftmaxCrossEntropy(res.LayerCounts(res.OutputLayer()), label)
	if err := ag.Backward(loss); err != nil {
		return nil, err
	}

	grad := leaf.Grad.Data()
	type scored struct {
		idx int
		mag float64
	}
	order := make([]scored, 0, len(grad))
	data := sample.Clone()
	dd := data.Data()
	for i, g := range grad {
		// A flip increases the loss when the gradient points away from
		// the current bit value: positive gradient on a 0-bit (set it),
		// negative gradient on a 1-bit (clear it).
		if (dd[i] == 0 && g > 0) || (dd[i] == 1 && g < 0) { //lint:ignore floateq input bits are exactly 0 or 1 by construction
			order = append(order, scored{i, math.Abs(g)})
		}
	}
	sort.Slice(order, func(a, b int) bool { return order[a].mag > order[b].mag })
	flips := int(flipFrac * float64(len(dd)))
	if flips > len(order) {
		flips = len(order)
	}
	for _, s := range order[:flips] {
		dd[s.idx] = 1 - dd[s.idx]
	}
	return data, nil
}
