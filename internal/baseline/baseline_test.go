package baseline

import (
	"math/rand"
	"testing"

	"github.com/repro/snntest/internal/fault"
	"github.com/repro/snntest/internal/snn"
	"github.com/repro/snntest/internal/tensor"
)

func toyNet(seed int64) *snn.Network {
	rng := rand.New(rand.NewSource(seed))
	l1 := must(snn.NewLayer("h", must(snn.NewDenseProj(tensor.RandNormal(rng, 0.25, 0.5, 5, 4))), snn.DefaultLIF()))
	l2 := must(snn.NewLayer("out", must(snn.NewDenseProj(tensor.RandNormal(rng, 0.25, 0.5, 3, 5))), snn.DefaultLIF()))
	return must(snn.NewNetwork("toy", []int{4}, 1.0, l1, l2))
}

func randomPool(seed int64, net *snn.Network, n, steps int, density float64) []*tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	pool := make([]*tensor.Tensor, n)
	for i := range pool {
		pool[i] = tensor.RandBernoulli(rng, density, append([]int{steps}, net.InShape...)...)
	}
	return pool
}

func TestGreedySelectCoverageMonotone(t *testing.T) {
	net := toyNet(1)
	faults := fault.Enumerate(net, fault.DefaultOptions())
	pool := randomPool(2, net, 8, 12, 0.4)
	res := must(GreedySelect(net, faults, pool, DefaultConfig()))

	if len(res.Selected) == 0 {
		t.Fatal("no inputs selected")
	}
	if len(res.CumulativeFC) != len(res.Selected) {
		t.Fatalf("coverage trace %d entries for %d inputs", len(res.CumulativeFC), len(res.Selected))
	}
	for i := 1; i < len(res.CumulativeFC); i++ {
		if res.CumulativeFC[i] < res.CumulativeFC[i-1] {
			t.Error("cumulative coverage must be non-decreasing")
		}
	}
	if res.CumulativeFC[len(res.CumulativeFC)-1] <= 0 {
		t.Error("final coverage must be positive for an active pool")
	}
	// Generation must have paid one fault simulation per candidate-fault pair.
	if res.FaultSims != 8*len(faults) {
		t.Errorf("FaultSims = %d, want %d", res.FaultSims, 8*len(faults))
	}
	if res.Runtime <= 0 {
		t.Error("runtime not measured")
	}
}

func TestGreedySelectReachesUnionCoverage(t *testing.T) {
	net := toyNet(3)
	faults := fault.Enumerate(net, fault.DefaultOptions())
	pool := randomPool(4, net, 10, 12, 0.5)
	cfg := DefaultConfig()
	res := must(GreedySelect(net, faults, pool, cfg))

	// The greedy test set must detect exactly what the union of selected
	// inputs detects, and reach ≥ TargetFC of the detectable universe.
	sim := must(fault.Simulate(net, faults, res.Stimulus, 1, nil))
	got := sim.NumDetected()
	unionDet := 0
	union := make([]bool, len(faults))
	for _, cand := range pool {
		s := must(fault.Simulate(net, faults, cand, 1, nil))
		for i, d := range s.Detected {
			if d && !union[i] {
				union[i] = true
				unionDet++
			}
		}
	}
	if float64(got) < 0.9*cfg.TargetFC*float64(unionDet) {
		t.Errorf("assembled stimulus detects %d, union detects %d", got, unionDet)
	}
}

func TestGreedySelectRespectsMaxInputs(t *testing.T) {
	net := toyNet(5)
	faults := fault.Enumerate(net, fault.DefaultOptions())
	pool := randomPool(6, net, 10, 10, 0.4)
	cfg := DefaultConfig()
	cfg.MaxInputs = 2
	res := must(GreedySelect(net, faults, pool, cfg))
	if len(res.Selected) > 2 {
		t.Errorf("selected %d inputs, limit 2", len(res.Selected))
	}
}

func TestGreedySelectEmptyInputs(t *testing.T) {
	net := toyNet(7)
	res := must(GreedySelect(net, nil, nil, DefaultConfig()))
	if res.TotalSteps() != 1 {
		t.Error("degenerate run should produce the trivial zero stimulus")
	}
	faults := fault.Enumerate(net, fault.DefaultOptions())
	// A pool of zero stimuli detects nothing except saturation faults…
	// use truly empty-detection pool: zero stimuli detect saturated
	// output faults, so instead pass an empty candidate list.
	res = must(GreedySelect(net, faults, nil, DefaultConfig()))
	if len(res.Selected) != 0 {
		t.Error("no candidates → no selection")
	}
}

func TestRandom20GeneratesAndCovers(t *testing.T) {
	net := toyNet(9)
	faults := fault.Enumerate(net, fault.DefaultOptions())
	res := must(Random20(net, faults, 6, 12, 0.4, rand.New(rand.NewSource(10)), DefaultConfig()))
	if len(res.Selected) == 0 || res.CumulativeFC[len(res.CumulativeFC)-1] <= 0 {
		t.Error("random baseline produced no coverage")
	}
}

func TestDataset18UsesProvidedSamples(t *testing.T) {
	net := toyNet(11)
	faults := fault.Enumerate(net, fault.DefaultOptions())
	samples := randomPool(12, net, 5, 12, 0.5)
	res := must(Dataset18(net, faults, samples, DefaultConfig()))
	for _, sel := range res.Selected {
		found := false
		for _, s := range samples {
			if sel == s {
				found = true
				break
			}
		}
		if !found {
			t.Error("dataset baseline selected an input outside the dataset")
		}
	}
}

func TestAdversarialPerturbFlipsTowardHigherLoss(t *testing.T) {
	net := toyNet(13)
	sample := randomPool(14, net, 1, 12, 0.4)[0]
	label := net.Predict(sample)
	adv := must(AdversarialPerturb(net, sample, label, 0.1))

	// The perturbed input must stay binary and differ from the original.
	diff := tensor.L1Diff(sample, adv)
	if diff == 0 {
		t.Error("adversarial perturbation changed nothing")
	}
	for _, v := range adv.Data() {
		if v != 0 && v != 1 {
			t.Fatal("adversarial input must stay binary")
		}
	}
	// Flip budget respected.
	if diff > 0.1*float64(sample.Len())+1 {
		t.Errorf("flipped %g bits, budget %g", diff, 0.1*float64(sample.Len()))
	}
}

func TestAdversarial17EndToEnd(t *testing.T) {
	net := toyNet(15)
	faults := fault.Enumerate(net, fault.DefaultOptions())
	samples := randomPool(16, net, 4, 12, 0.4)
	labels := make([]int, len(samples))
	for i, s := range samples {
		labels[i] = net.Predict(s)
	}
	res := must(Adversarial17(net, faults, samples, labels, 0.08, DefaultConfig()))
	if len(res.Selected) == 0 {
		t.Error("adversarial baseline selected nothing")
	}
}

func TestAssembleSeparators(t *testing.T) {
	net := toyNet(17)
	a := tensor.Full(1, 3, 4)
	b := tensor.Full(1, 2, 4)
	stim := assemble(net, []*tensor.Tensor{a, b})
	// 3 + 3 (separator) + 2 = 8 steps.
	if stim.Dim(0) != 8 {
		t.Fatalf("assembled %d steps, want 8", stim.Dim(0))
	}
	rowSum := func(s int) float64 {
		sum := 0.0
		for i := 0; i < 4; i++ {
			sum += stim.At(s, i)
		}
		return sum
	}
	if rowSum(0) != 4 || rowSum(3) != 0 || rowSum(6) != 4 {
		t.Error("separator layout wrong")
	}
}
