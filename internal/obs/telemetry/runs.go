package telemetry

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"github.com/repro/snntest/internal/obs"
)

// maxRuns bounds the retained run history; the oldest terminal runs are
// evicted first so a long-lived server cannot grow without bound.
const maxRuns = 64

// RunProgress is the JSON shape of one tracked run as served by /runs
// and /runs/{id}. A "run" is one progress-reporting activity instance —
// a fault-simulation campaign, a classification campaign, or a
// generation loop — identified by the obs progress event stream.
type RunProgress struct {
	ID    string `json:"id"`
	Phase string `json:"phase"` // the progress stream name, e.g. "campaign/simulate"
	Done  int    `json:"done"`
	Total int    `json:"total"`
	// Percent is 100*Done/Total (0 when Total is 0).
	Percent float64 `json:"percent"`
	// Started/Updated are the first and latest progress event times.
	Started time.Time `json:"started"`
	Updated time.Time `json:"updated"`
	// ElapsedMS is Updated-Started; ETAMS extrapolates the remaining
	// wall-clock from the observed rate (-1 while unknown, 0 when done).
	ElapsedMS int64 `json:"elapsed_ms"`
	ETAMS     int64 `json:"eta_ms"`
	// Detected/CoveragePercent give live fault coverage for campaign
	// runs (detected-or-critical count so far and its percentage of the
	// faults completed); both are zero for non-campaign runs.
	Detected        int64   `json:"detected,omitempty"`
	CoveragePercent float64 `json:"coverage_percent,omitempty"`
	// Terminal marks a run that reached done == total.
	Terminal bool `json:"terminal"`
}

// Sink tracks live run progress from the obs event stream. It
// implements obs.Sink; register it with obs.AddSink (the obs.CLI -serve
// path does this) and every progress event becomes queryable run state.
// Safe for concurrent Emit and snapshot use.
type Sink struct {
	mu   sync.Mutex
	seq  int
	runs []*runState

	// detected/critical are shared handles onto the campaign-layer
	// coverage gauges; reading them at each progress event freezes
	// coverage-so-far into the run record without coupling the
	// instrumentation sites to this package.
	detected *obs.Gauge
	critical *obs.Gauge
}

// runState is the mutable tracking record behind one RunProgress.
type runState struct {
	id       string
	phase    string
	done     int
	total    int
	started  time.Time
	updated  time.Time
	detected int64
	terminal bool
}

// NewSink returns an empty run tracker.
func NewSink() *Sink {
	return &Sink{
		detected: obs.NewGauge("fault_campaign_detected_faults"),
		critical: obs.NewGauge("fault_campaign_critical_faults"),
	}
}

// Emit consumes one obs event. Only progress events mutate run state;
// span and counter events are ignored (the /metrics endpoint serves
// counters directly from the registry).
func (s *Sink) Emit(e obs.Event) {
	if e.Kind != obs.KindProgress {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	r := s.activeLocked(e.Name, e.Done, e.Start)
	r.done = e.Done
	r.total = e.Total
	r.updated = e.Start
	if strings.HasPrefix(e.Name, "campaign/") {
		r.detected = s.detected.Value()
		if strings.HasSuffix(e.Name, "/classify") {
			r.detected = s.critical.Value()
		}
	}
	if r.total > 0 && r.done >= r.total {
		r.terminal = true
	}
}

// activeLocked returns the current run for the named activity, starting
// a new one when none exists, the previous one completed, or the done
// count moved backwards (a fresh campaign reusing the name).
func (s *Sink) activeLocked(name string, done int, start time.Time) *runState {
	for i := len(s.runs) - 1; i >= 0; i-- {
		r := s.runs[i]
		if r.phase == name && !r.terminal && r.done <= done {
			return r
		}
		if r.phase == name {
			break
		}
	}
	s.seq++
	r := &runState{id: fmt.Sprintf("run-%d", s.seq), phase: name, started: start}
	s.runs = append(s.runs, r)
	if len(s.runs) > maxRuns {
		s.runs = append(s.runs[:0:0], s.runs[len(s.runs)-maxRuns:]...)
	}
	return r
}

// Runs returns a snapshot of every tracked run in start order.
func (s *Sink) Runs() []RunProgress {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]RunProgress, 0, len(s.runs))
	for _, r := range s.runs {
		out = append(out, r.progress())
	}
	return out
}

// Run returns the run with the given id, if tracked.
func (s *Sink) Run(id string) (RunProgress, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range s.runs {
		if r.id == id {
			return r.progress(), true
		}
	}
	return RunProgress{}, false
}

// progress derives the served view from the tracking record. Callers
// hold the sink lock.
func (r *runState) progress() RunProgress {
	p := RunProgress{
		ID:       r.id,
		Phase:    r.phase,
		Done:     r.done,
		Total:    r.total,
		Started:  r.started,
		Updated:  r.updated,
		Detected: r.detected,
		Terminal: r.terminal,
		ETAMS:    -1,
	}
	if r.total > 0 {
		p.Percent = 100 * float64(r.done) / float64(r.total)
	}
	if r.done > 0 {
		p.CoveragePercent = 100 * float64(r.detected) / float64(r.done)
	}
	elapsed := r.updated.Sub(r.started)
	if elapsed > 0 {
		p.ElapsedMS = elapsed.Milliseconds()
	}
	switch {
	case r.terminal:
		p.ETAMS = 0
	case r.done > 0 && elapsed > 0 && r.total > r.done:
		perItem := float64(elapsed) / float64(r.done)
		p.ETAMS = time.Duration(perItem * float64(r.total-r.done)).Milliseconds()
	}
	return p
}
