package telemetry

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"github.com/repro/snntest/internal/obs"
	"github.com/repro/snntest/internal/obs/ledger"
)

// maxRuns bounds the retained run history; the oldest runs are evicted
// first so a long-lived server cannot grow without bound. Eviction
// drops a run's curve state and event ring along with it.
const maxRuns = 64

// maxRunEvents bounds the per-run journal tail kept for the
// /runs/{id}/events endpoint; older entries age out of memory (the
// on-disk ledger journal, when enabled, keeps the full history).
const maxRunEvents = 256

// obsRunsTracked mirrors the in-memory run-history size onto /metrics.
var obsRunsTracked = obs.NewGauge("telemetry_runs_tracked")

// RunProgress is the JSON shape of one tracked run as served by /runs
// and /runs/{id}. A "run" is one progress-reporting activity instance —
// a fault-simulation campaign, a classification campaign, or a
// generation loop — identified by the obs progress event stream.
type RunProgress struct {
	ID    string `json:"id"`
	Phase string `json:"phase"` // the progress stream name, e.g. "campaign/simulate"
	Done  int    `json:"done"`
	Total int    `json:"total"`
	// Percent is 100*Done/Total (0 when Total is 0).
	Percent float64 `json:"percent"`
	// Started/Updated are the first and latest progress event times.
	Started time.Time `json:"started"`
	Updated time.Time `json:"updated"`
	// ElapsedMS is Updated-Started; ETAMS extrapolates the remaining
	// wall-clock from the observed rate (-1 while unknown, 0 when done).
	ElapsedMS int64 `json:"elapsed_ms"`
	ETAMS     int64 `json:"eta_ms"`
	// Detected/CoveragePercent give live fault coverage for campaign
	// runs (detected-or-critical count so far and its percentage of the
	// faults completed); both are zero for non-campaign runs.
	Detected        int64   `json:"detected,omitempty"`
	CoveragePercent float64 `json:"coverage_percent,omitempty"`
	// Terminal marks a run that reached done == total.
	Terminal bool `json:"terminal"`
	// Rehydrated marks a run restored from a ledger journal written by
	// an earlier process rather than observed live.
	Rehydrated bool `json:"rehydrated,omitempty"`
}

// Sink tracks live run progress from the obs event stream. It
// implements obs.Sink; register it with obs.AddSink (the obs.CLI -serve
// path does this) and every progress and run-lifecycle event becomes
// queryable run state. Safe for concurrent Emit and snapshot use.
type Sink struct {
	mu   sync.Mutex
	seq  int
	runs []*runState

	// detected/critical are shared handles onto the campaign-layer
	// coverage gauges; reading them at each progress event freezes
	// coverage-so-far into the run record without coupling the
	// instrumentation sites to this package.
	detected *obs.Gauge
	critical *obs.Gauge
}

// runState is the mutable tracking record behind one RunProgress.
type runState struct {
	id       string
	phase    string
	done     int
	total    int
	started  time.Time
	updated  time.Time
	detected int64
	terminal bool
	// named marks a run keyed by an explicit flight-recorder run id
	// (never matched by phase-name progress correlation).
	named      bool
	rehydrated bool
	// curve folds this run's fault events into its coverage curve;
	// events is the bounded journal tail. Both nil until the first
	// run-lifecycle event arrives (plain progress-only runs stay lean).
	curve  *ledger.CurveBuilder
	events []ledger.Entry
}

// NewSink returns an empty run tracker.
func NewSink() *Sink {
	return &Sink{
		detected: obs.NewGauge("fault_campaign_detected_faults"),
		critical: obs.NewGauge("fault_campaign_critical_faults"),
	}
}

// Emit consumes one obs event. Progress and run-lifecycle events mutate
// run state; span and counter events are ignored (the /metrics endpoint
// serves counters directly from the registry).
func (s *Sink) Emit(e obs.Event) {
	switch e.Kind {
	case obs.KindProgress:
		s.emitProgress(e)
	case obs.KindRunStart, obs.KindFault, obs.KindRunEnd:
		s.emitRunEvent(e)
	}
}

// emitProgress folds a progress update into its run: by run id when the
// event is run-correlated, else by phase-name heuristics (the pre-
// flight-recorder behaviour, kept for uncorrelated emitters).
func (s *Sink) emitProgress(e obs.Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var r *runState
	if e.Run != "" {
		r = s.byIDLocked(e.Run, e.Name, e.Start)
	} else {
		r = s.activeLocked(e.Name, e.Done, e.Start)
	}
	r.done = e.Done
	r.total = e.Total
	r.updated = e.Start
	if r.curve != nil {
		r.detected = int64(r.curve.Detected())
	} else if strings.HasPrefix(e.Name, "campaign/") {
		r.detected = s.detected.Value()
		if strings.HasSuffix(e.Name, "/classify") {
			r.detected = s.critical.Value()
		}
	}
	if r.total > 0 && r.done >= r.total {
		r.terminal = true
	}
}

// emitRunEvent folds a run-lifecycle event (run_start / fault /
// run_end) into its run's curve state and journal tail.
func (s *Sink) emitRunEvent(e obs.Event) {
	entry, ok := ledger.EntryFromEvent(e)
	if !ok {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	r := s.byIDLocked(e.Run, e.Name, e.Start)
	if r.curve == nil {
		r.curve = ledger.NewCurveBuilder(r.id, r.phase)
	}
	r.curve.Apply(entry)
	r.appendEventLocked(entry)
	r.updated = e.Start
	r.detected = int64(r.curve.Detected())
	switch e.Kind {
	case obs.KindRunStart:
		r.total = e.Total
	case obs.KindFault:
		if d := r.curve.Done(); d > r.done {
			r.done = d
		}
	case obs.KindRunEnd:
		r.done, r.total, r.terminal = e.Done, e.Total, true
	}
}

// appendEventLocked pushes one entry onto the run's bounded tail.
func (r *runState) appendEventLocked(e ledger.Entry) {
	if len(r.events) >= maxRunEvents {
		copy(r.events, r.events[1:])
		r.events[len(r.events)-1] = e
		return
	}
	r.events = append(r.events, e)
}

// byIDLocked returns the run keyed by an explicit run id, creating it
// when unseen (events may arrive in any order near eviction).
func (s *Sink) byIDLocked(id, phase string, start time.Time) *runState {
	for i := len(s.runs) - 1; i >= 0; i-- {
		if s.runs[i].id == id {
			return s.runs[i]
		}
	}
	r := &runState{id: id, phase: phase, started: start, named: true}
	s.insertLocked(r)
	return r
}

// activeLocked returns the current run for the named activity, starting
// a new one when none exists, the previous one completed, or the done
// count moved backwards (a fresh campaign reusing the name). Runs keyed
// by explicit run ids are never matched — their progress arrives
// run-correlated.
func (s *Sink) activeLocked(name string, done int, start time.Time) *runState {
	for i := len(s.runs) - 1; i >= 0; i-- {
		r := s.runs[i]
		if r.named {
			continue
		}
		if r.phase == name && !r.terminal && r.done <= done {
			return r
		}
		if r.phase == name {
			break
		}
	}
	s.seq++
	r := &runState{id: fmt.Sprintf("run-%d", s.seq), phase: name, started: start}
	s.insertLocked(r)
	return r
}

// insertLocked appends a run and enforces the retention bound.
func (s *Sink) insertLocked(r *runState) {
	s.runs = append(s.runs, r)
	if len(s.runs) > maxRuns {
		s.runs = append(s.runs[:0:0], s.runs[len(s.runs)-maxRuns:]...)
	}
	obsRunsTracked.Set(int64(len(s.runs)))
}

// Rehydrate restores run history from the ledger journals under dir,
// replaying each journal through the same curve fold the live event
// path uses. Runs already tracked (same id) are left untouched, so
// rehydrating is idempotent and never clobbers a live run. The
// retention bound applies as usual; with more journals than capacity
// the lexicographically-latest (≈ newest) runs win.
func (s *Sink) Rehydrate(dir string) error {
	ids, err := ledger.List(dir)
	if err != nil {
		return err
	}
	for _, id := range ids {
		entries, err := ledger.ReadRun(dir, id)
		if err != nil || len(entries) == 0 {
			// A vanished or fully-torn journal is not worth failing the
			// server over; skip it.
			continue
		}
		s.rehydrateRun(id, entries)
	}
	return nil
}

// rehydrateRun folds one journal into a tracked run.
func (s *Sink) rehydrateRun(id string, entries []ledger.Entry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range s.runs {
		if r.id == id {
			return
		}
	}
	r := &runState{id: id, named: true, rehydrated: true}
	b := ledger.NewCurveBuilder(id, "")
	for _, e := range entries {
		b.Apply(e)
		r.appendEventLocked(e)
		if r.phase == "" && e.Name != "" {
			r.phase = e.Name
		}
		if r.started.IsZero() || e.Time.Before(r.started) {
			r.started = e.Time
		}
		if e.Time.After(r.updated) {
			r.updated = e.Time
		}
		if e.Kind == string(obs.KindRunEnd) {
			r.terminal = true
		}
	}
	c := b.Curve()
	r.curve = b
	r.done, r.total, r.detected = c.Done, c.Total, int64(c.Detected)
	s.insertLocked(r)
}

// Runs returns a snapshot of every tracked run in start order.
func (s *Sink) Runs() []RunProgress {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]RunProgress, 0, len(s.runs))
	for _, r := range s.runs {
		out = append(out, r.progress())
	}
	return out
}

// Run returns the run with the given id, if tracked.
func (s *Sink) Run(id string) (RunProgress, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range s.runs {
		if r.id == id {
			return r.progress(), true
		}
	}
	return RunProgress{}, false
}

// Coverage returns the run's derived coverage curve. The second result
// is false when the run is unknown; the third is false when the run is
// tracked but recorded no lifecycle events (progress-only runs have no
// curve).
func (s *Sink) Coverage(id string) (ledger.Curve, bool, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range s.runs {
		if r.id == id {
			if r.curve == nil {
				return ledger.Curve{}, true, false
			}
			return r.curve.Curve(), true, true
		}
	}
	return ledger.Curve{}, false, false
}

// Events returns the run's retained journal tail (oldest first).
func (s *Sink) Events(id string) ([]ledger.Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range s.runs {
		if r.id == id {
			return append([]ledger.Entry(nil), r.events...), true
		}
	}
	return nil, false
}

// progress derives the served view from the tracking record. Callers
// hold the sink lock.
func (r *runState) progress() RunProgress {
	p := RunProgress{
		ID:         r.id,
		Phase:      r.phase,
		Done:       r.done,
		Total:      r.total,
		Started:    r.started,
		Updated:    r.updated,
		Detected:   r.detected,
		Terminal:   r.terminal,
		Rehydrated: r.rehydrated,
		ETAMS:      -1,
	}
	if r.total > 0 {
		p.Percent = 100 * float64(r.done) / float64(r.total)
	}
	if r.done > 0 {
		p.CoveragePercent = 100 * float64(r.detected) / float64(r.done)
	}
	elapsed := r.updated.Sub(r.started)
	if elapsed > 0 {
		p.ElapsedMS = elapsed.Milliseconds()
	}
	switch {
	case r.terminal:
		p.ETAMS = 0
	case r.done > 0 && elapsed > 0 && r.total > r.done:
		perItem := float64(elapsed) / float64(r.done)
		p.ETAMS = time.Duration(perItem * float64(r.total-r.done)).Milliseconds()
	}
	return p
}
