package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/repro/snntest/internal/fault"
	"github.com/repro/snntest/internal/obs"
	"github.com/repro/snntest/internal/obs/ledger"
)

// withRunEvents layers the flight-recorder gate on withObs for one
// test, restoring the dark default afterwards.
func withRunEvents(t *testing.T, sinks ...obs.Sink) {
	t.Helper()
	withObs(t, sinks...)
	obs.SetRunEvents(true)
	t.Cleanup(func() { obs.SetRunEvents(false) })
}

// getJSON fetches path from the handler and decodes the response into v,
// returning the status code.
func getJSON(t *testing.T, h http.Handler, path string, v any) int {
	t.Helper()
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, path, nil))
	if v != nil && rr.Code == http.StatusOK {
		if err := json.Unmarshal(rr.Body.Bytes(), v); err != nil {
			t.Fatalf("GET %s: bad JSON: %v\n%s", path, err, rr.Body.String())
		}
	}
	return rr.Code
}

// TestCoverageEndpointReconcilesWithCampaign is the acceptance-criterion
// test: after a real simulate campaign, /runs/{id}/coverage's last curve
// point must equal detected/total from the CampaignResult exactly.
func TestCoverageEndpointReconcilesWithCampaign(t *testing.T) {
	s := New()
	withRunEvents(t, s.Sink())

	net := tinyNet(51)
	faults := fault.Enumerate(net, fault.DefaultOptions())
	stim := denseStim(52, net, 12)
	sim, err := fault.SimulateWith(net, faults, stim, fault.CampaignOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	var run RunProgress
	for _, r := range s.Sink().Runs() {
		if r.Phase == "campaign/simulate" {
			run = r
		}
	}
	if run.ID == "" || !run.Terminal {
		t.Fatalf("no terminal campaign/simulate run: %+v", run)
	}
	if strings.HasPrefix(run.ID, "run-") {
		t.Errorf("campaign with run events on should carry a minted run id, got %q", run.ID)
	}

	var curve ledger.Curve
	if code := getJSON(t, s.Handler(), "/runs/"+run.ID+"/coverage", &curve); code != http.StatusOK {
		t.Fatalf("/runs/%s/coverage status = %d", run.ID, code)
	}
	if curve.Total != len(faults) || curve.Done != len(faults) || !curve.Terminal {
		t.Fatalf("curve tallies = %+v, want terminal over %d faults", curve, len(faults))
	}
	if curve.Detected != sim.NumDetected() {
		t.Errorf("curve detected = %d, want CampaignResult %d", curve.Detected, sim.NumDetected())
	}
	if curve.Steps != 12 {
		t.Errorf("curve steps = %d, want stimulus duration 12", curve.Steps)
	}
	if len(curve.Points) == 0 {
		t.Fatal("campaign curve has no points")
	}
	last := curve.Points[len(curve.Points)-1]
	if last.Detected != sim.NumDetected() {
		t.Errorf("last curve point = %d detections, want %d", last.Detected, sim.NumDetected())
	}
	if want := float64(sim.NumDetected()) / float64(len(faults)); last.Coverage != want {
		t.Errorf("last curve point coverage = %v, want detected/total %v", last.Coverage, want)
	}
	if curve.FinalCoverage != float64(sim.NumDetected())/float64(len(faults)) {
		t.Errorf("final coverage = %v, want %v", curve.FinalCoverage, float64(sim.NumDetected())/float64(len(faults)))
	}
	for i := 1; i < len(curve.Points); i++ {
		if curve.Points[i].Detected < curve.Points[i-1].Detected || curve.Points[i].Step <= curve.Points[i-1].Step {
			t.Errorf("curve not monotone at %d: %+v after %+v", i, curve.Points[i], curve.Points[i-1])
		}
	}
	if curve.LayerSteps != sim.LayerSteps {
		t.Errorf("curve layer steps = %d, want campaign %d", curve.LayerSteps, sim.LayerSteps)
	}

	// The journal tail serves the run's lifecycle in order.
	var events runEventsResponse
	if code := getJSON(t, s.Handler(), "/runs/"+run.ID+"/events", &events); code != http.StatusOK {
		t.Fatalf("/runs/%s/events status = %d", run.ID, code)
	}
	if len(events.Events) < 2 {
		t.Fatalf("only %d events retained", len(events.Events))
	}
	if events.Events[0].Kind != "run_start" || events.Events[len(events.Events)-1].Kind != "run_end" {
		t.Errorf("event tail out of order: first %q last %q",
			events.Events[0].Kind, events.Events[len(events.Events)-1].Kind)
	}

	// Unknown runs and curve-less runs 404.
	if code := getJSON(t, s.Handler(), "/runs/no-such/coverage", nil); code != http.StatusNotFound {
		t.Errorf("/runs/no-such/coverage status = %d, want 404", code)
	}
	if code := getJSON(t, s.Handler(), "/runs/no-such/events", nil); code != http.StatusNotFound {
		t.Errorf("/runs/no-such/events status = %d, want 404", code)
	}
}

// TestRunsStoreBounded is the satellite regression test: hammering the
// sink with far more runs than the retention cap must keep the store at
// the cap, evicting oldest-first, with curve state evicted alongside.
func TestRunsStoreBounded(t *testing.T) {
	s := NewSink()
	const extra = 17
	now := time.Now()
	for i := 0; i < maxRuns+extra; i++ {
		run := fmt.Sprintf("hammer-%04d", i)
		s.Emit(obs.Event{Kind: obs.KindRunStart, Run: run, Name: "campaign/simulate", Total: 1, Start: now})
		s.Emit(obs.Event{Kind: obs.KindFault, Run: run, Name: "campaign/simulate",
			Fault: &obs.FaultOutcome{Index: 0, Detected: true, DivStep: 0}, Start: now})
		s.Emit(obs.Event{Kind: obs.KindRunEnd, Run: run, Done: 1, Total: 1, Start: now})
	}
	runs := s.Runs()
	if len(runs) != maxRuns {
		t.Fatalf("store holds %d runs after %d, want cap %d", len(runs), maxRuns+extra, maxRuns)
	}
	// Oldest evicted: the survivors are exactly the last maxRuns ids.
	if got, want := runs[0].ID, fmt.Sprintf("hammer-%04d", extra); got != want {
		t.Errorf("oldest surviving run = %s, want %s", got, want)
	}
	if _, ok := s.Run("hammer-0000"); ok {
		t.Error("evicted run still queryable")
	}
	if _, known, _ := s.Coverage("hammer-0000"); known {
		t.Error("evicted run's curve still held")
	}
	// Progress-only runs respect the same bound.
	s2 := NewSink()
	for i := 0; i < maxRuns+extra; i++ {
		s2.Emit(obs.Event{Kind: obs.KindProgress, Name: fmt.Sprintf("phase-%d", i), Done: 1, Total: 1, Start: now})
	}
	if n := len(s2.Runs()); n != maxRuns {
		t.Errorf("progress-only store holds %d runs, want %d", n, maxRuns)
	}
}

// TestEvictedRunEndpoints404 pins the HTTP contract at the retention
// boundary: once a run ages out of the bounded store, its endpoints
// answer 404 — never a panic, never a stale curve from the previous
// occupant of the slot.
func TestEvictedRunEndpoints404(t *testing.T) {
	s := New()
	now := time.Now()
	emitRun := func(run string) {
		s.Sink().Emit(obs.Event{Kind: obs.KindRunStart, Run: run, Name: "campaign/simulate", Total: 1, Start: now})
		s.Sink().Emit(obs.Event{Kind: obs.KindFault, Run: run, Name: "campaign/simulate",
			Fault: &obs.FaultOutcome{Index: 0, Detected: true, DivStep: 0}, Start: now})
		s.Sink().Emit(obs.Event{Kind: obs.KindRunEnd, Run: run, Done: 1, Total: 1, Start: now})
	}
	victim := "evictee-0000"
	emitRun(victim)
	// While still resident, the run serves its curve.
	var curve ledger.Curve
	if code := getJSON(t, s.Handler(), "/runs/"+victim+"/coverage", &curve); code != http.StatusOK {
		t.Fatalf("resident run coverage status = %d", code)
	}
	if curve.Detected != 1 {
		t.Fatalf("resident curve = %+v, want 1 detection", curve)
	}
	// Push the store past its cap so the victim ages out.
	for i := 0; i < maxRuns; i++ {
		emitRun(fmt.Sprintf("filler-%04d", i))
	}
	if _, ok := s.Sink().Run(victim); ok {
		t.Fatal("victim run still resident after overflow; eviction broken")
	}
	for _, path := range []string{"/runs/" + victim + "/coverage", "/runs/" + victim + "/events"} {
		if code := getJSON(t, s.Handler(), path, nil); code != http.StatusNotFound {
			t.Errorf("GET %s = %d after eviction, want 404", path, code)
		}
	}
	// The slot's new occupants still serve theirs.
	if code := getJSON(t, s.Handler(), "/runs/filler-0000/coverage", &curve); code != http.StatusOK {
		t.Errorf("surviving run coverage status = %d", code)
	}
}

// TestRehydrateFromLedger pins the restart-survival acceptance
// criterion: journals written by one process (including one whose
// writer died mid-line) rehydrate into a fresh sink's /runs history.
func TestRehydrateFromLedger(t *testing.T) {
	dir := t.TempDir()
	l, err := ledger.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now().UTC().Truncate(time.Second)
	doneRun := obs.NewRunID("campaign/simulate")
	l.Emit(obs.Event{Kind: obs.KindRunStart, Run: doneRun, Name: "campaign/simulate", Total: 3,
		Attrs: map[string]any{"steps": 8}, Start: now})
	for i := 0; i < 3; i++ {
		l.Emit(obs.Event{Kind: obs.KindFault, Run: doneRun, Name: "campaign/simulate",
			Fault: &obs.FaultOutcome{Index: i, Kind: "neuron-dead", Detected: i < 2, DivStep: i*2 - 1, SimSteps: i * 2}, Start: now})
	}
	l.Emit(obs.Event{Kind: obs.KindRunEnd, Run: doneRun, Name: "campaign/simulate", Done: 3, Total: 3, Start: now})
	// A second run whose process was killed before run_end.
	tornRun := obs.NewRunID("generate")
	l.Emit(obs.Event{Kind: obs.KindRunStart, Run: tornRun, Name: "generate", Total: 40, Start: now})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	s := New()
	if err := s.Sink().Rehydrate(dir); err != nil {
		t.Fatal(err)
	}
	var rr runsResponse
	if code := getJSON(t, s.Handler(), "/runs", &rr); code != http.StatusOK {
		t.Fatalf("/runs status = %d", code)
	}
	if len(rr.Runs) != 2 {
		t.Fatalf("rehydrated %d runs, want 2: %+v", len(rr.Runs), rr.Runs)
	}
	byID := map[string]RunProgress{}
	for _, r := range rr.Runs {
		if !r.Rehydrated {
			t.Errorf("run %s not marked rehydrated", r.ID)
		}
		byID[r.ID] = r
	}
	done := byID[doneRun]
	if !done.Terminal || done.Done != 3 || done.Total != 3 || done.Detected != 2 {
		t.Errorf("completed run rehydrated wrong: %+v", done)
	}
	if torn := byID[tornRun]; torn.Terminal {
		t.Errorf("interrupted run must not rehydrate as terminal: %+v", torn)
	}

	var curve ledger.Curve
	if code := getJSON(t, s.Handler(), "/runs/"+doneRun+"/coverage", &curve); code != http.StatusOK {
		t.Fatalf("/runs/%s/coverage status = %d", doneRun, code)
	}
	if curve.Detected != 2 || curve.Total != 3 || curve.Steps != 8 {
		t.Errorf("rehydrated curve = %+v, want 2/3 detected over 8 steps", curve)
	}
	if last := curve.Points[len(curve.Points)-1]; last.Detected != 2 {
		t.Errorf("rehydrated curve endpoint = %d, want 2", last.Detected)
	}

	// Rehydration is idempotent and never clobbers tracked runs.
	if err := s.Sink().Rehydrate(dir); err != nil {
		t.Fatal(err)
	}
	if n := len(s.Sink().Runs()); n != 2 {
		t.Errorf("second rehydrate grew the store to %d runs", n)
	}
}
