package telemetry

import (
	"bytes"
	"math"
	"runtime"
	"runtime/metrics"
	"strings"
	"testing"
)

// TestSampleRuntimePopulatesGauges reads a live runtime snapshot and
// checks the gauges land on physically plausible values — the process
// running this test has goroutines, a live heap and (after an explicit
// GC) at least one completed cycle.
func TestSampleRuntimePopulatesGauges(t *testing.T) {
	runtime.GC()
	SampleRuntime()
	if got := gaugeGoroutines.Value(); got < 1 {
		t.Errorf("runtime_goroutines_count = %d, want >= 1", got)
	}
	if got := gaugeHeapLive.Value(); got <= 0 {
		t.Errorf("runtime_heap_live_bytes = %d, want > 0", got)
	}
	if got := gaugeHeapGoal.Value(); got <= 0 {
		t.Errorf("runtime_heap_goal_bytes = %d, want > 0", got)
	}
	if got := gaugeGCCycles.Value(); got < 1 {
		t.Errorf("runtime_gc_cycles_count = %d, want >= 1 after runtime.GC", got)
	}
	if p50, max := gaugeGCPauseP50.Value(), gaugeGCPauseMax.Value(); p50 > max {
		t.Errorf("gc pause p50 %d > max %d", p50, max)
	}
}

// TestRuntimeGaugesExposed checks the sampled gauges render on the
// Prometheus exposition alongside the repo's own metrics.
func TestRuntimeGaugesExposed(t *testing.T) {
	SampleRuntime()
	var buf bytes.Buffer
	if err := WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{
		"runtime_goroutines_count",
		"runtime_heap_live_bytes",
		"runtime_heap_goal_bytes",
		"runtime_gc_cycles_count",
		"runtime_gc_pause_p50_micros",
		"runtime_gc_pause_max_micros",
		"runtime_sched_latency_p50_micros",
		"runtime_sched_latency_p99_micros",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("/metrics exposition missing %s:\n%s", name, out)
		}
	}
}

// TestHistQuantile pins the fold semantics on a hand-built histogram:
// upper-edge selection, the +Inf tail falling back to its finite lower
// edge, and zero for an empty distribution.
func TestHistQuantile(t *testing.T) {
	h := &metrics.Float64Histogram{
		Counts:  []uint64{10, 80, 9, 1},
		Buckets: []float64{0, 1e-6, 1e-5, 1e-4, math.Inf(+1)},
	}
	if got := histQuantile(h, 0.50); got != 1e-5 {
		t.Errorf("p50 = %g, want 1e-5", got)
	}
	if got := histQuantile(h, 0.99); got != 1e-4 {
		t.Errorf("p99 = %g, want 1e-4", got)
	}
	if got := histQuantile(h, 1.0); got != 1e-4 {
		t.Errorf("p100 = %g, want the +Inf bucket's lower edge 1e-4", got)
	}
	if got := histMax(h); got != 1e-4 {
		t.Errorf("max = %g, want the +Inf bucket's lower edge 1e-4", got)
	}

	empty := &metrics.Float64Histogram{Counts: []uint64{0, 0}, Buckets: []float64{0, 1, 2}}
	if got := histQuantile(empty, 0.5); got != 0 {
		t.Errorf("empty p50 = %g, want 0", got)
	}
	if got := histMax(empty); got != 0 {
		t.Errorf("empty max = %g, want 0", got)
	}

	noTail := &metrics.Float64Histogram{Counts: []uint64{1, 3}, Buckets: []float64{0, 1, 2}}
	if got := histMax(noTail); got != 2 {
		t.Errorf("finite max = %g, want upper edge 2", got)
	}
}

func TestSecondsToMicros(t *testing.T) {
	cases := []struct {
		in   float64
		want int64
	}{
		{0, 0},
		{-1, 0},
		{math.NaN(), 0},
		{1e-6, 1},
		{0.5, 500000},
		{math.Inf(+1), math.MaxInt64},
	}
	for _, c := range cases {
		if got := secondsToMicros(c.in); got != c.want {
			t.Errorf("secondsToMicros(%g) = %d, want %d", c.in, got, c.want)
		}
	}
}
