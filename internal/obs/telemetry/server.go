package telemetry

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"

	"github.com/repro/snntest/internal/obs/ledger"
)

// Server is the embeddable telemetry HTTP server. Construct with New,
// start with Start (which binds the listener and reports the resolved
// address, so ":0" works in tests), and stop with Shutdown. Endpoints:
//
//	/metrics        Prometheus text exposition of every obs metric
//	/healthz        liveness: 200 while the process is up
//	/readyz         readiness: 200 after Start, 503 after Shutdown begins
//	/runs                 JSON list of tracked runs (live + recent history)
//	/runs/{id}            one run, 404 when unknown
//	/runs/{id}/coverage   coverage-over-time curve + detection-latency histograms
//	/runs/{id}/events     the run's flight-recorder event tail
//	/debug/pprof/*        net/http/pprof profiling handlers
type Server struct {
	sink     *Sink
	srv      *http.Server
	ready    atomic.Bool
	serveErr chan error
}

// New builds an unstarted server with a fresh run-tracking sink.
func New() *Server {
	s := &Server{sink: NewSink(), serveErr: make(chan error, 1)}
	s.srv = &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	return s
}

// Sink returns the server's run tracker; register it on the obs event
// stream (obs.AddSink) so /runs has data.
func (s *Server) Sink() *Sink { return s.sink }

// Handler returns the server's route table, also usable standalone
// under httptest.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /runs", s.handleRuns)
	mux.HandleFunc("GET /runs/{id}", s.handleRun)
	mux.HandleFunc("GET /runs/{id}/coverage", s.handleRunCoverage)
	mux.HandleFunc("GET /runs/{id}/events", s.handleRunEvents)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Start binds addr (host:port; ":0" for an ephemeral port) and serves
// in a background goroutine, returning the resolved listen address. The
// goroutine is joined by Shutdown via the serveErr channel.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	go func() { s.serveErr <- s.srv.Serve(ln) }()
	s.ready.Store(true)
	return ln.Addr().String(), nil
}

// Shutdown marks the server unready, drains in-flight requests
// gracefully within ctx's deadline, and joins the serve goroutine.
func (s *Server) Shutdown(ctx context.Context) error {
	s.ready.Store(false)
	err := s.srv.Shutdown(ctx)
	if serr := <-s.serveErr; serr != nil && !errors.Is(serr, http.ErrServerClosed) && err == nil {
		err = serr
	}
	if err != nil {
		return fmt.Errorf("telemetry: shutdown: %w", err)
	}
	return nil
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	// Refresh the runtime_* resource gauges per scrape — the scraper
	// sets the sampling cadence, and an unscraped server pays nothing.
	SampleRuntime()
	// Write errors mean the scraper hung up; nothing useful to do.
	_ = WriteMetrics(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !s.ready.Load() {
		http.Error(w, "shutting down", http.StatusServiceUnavailable)
		return
	}
	_, _ = fmt.Fprintln(w, "ready")
}

// runsResponse is the /runs JSON envelope.
type runsResponse struct {
	Runs []RunProgress `json:"runs"`
	Now  time.Time     `json:"now"`
}

func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, runsResponse{Runs: s.sink.Runs(), Now: time.Now()})
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	run, ok := s.sink.Run(r.PathValue("id"))
	if !ok {
		http.Error(w, "unknown run", http.StatusNotFound)
		return
	}
	writeJSON(w, run)
}

func (s *Server) handleRunCoverage(w http.ResponseWriter, r *http.Request) {
	curve, known, hasCurve := s.sink.Coverage(r.PathValue("id"))
	if !known {
		http.Error(w, "unknown run", http.StatusNotFound)
		return
	}
	if !hasCurve {
		http.Error(w, "run recorded no coverage events", http.StatusNotFound)
		return
	}
	writeJSON(w, curve)
}

// runEventsResponse is the /runs/{id}/events JSON envelope: the run's
// retained journal tail, oldest first.
type runEventsResponse struct {
	Run    string         `json:"run"`
	Events []ledger.Entry `json:"events"`
}

func (s *Server) handleRunEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	events, ok := s.sink.Events(id)
	if !ok {
		http.Error(w, "unknown run", http.StatusNotFound)
		return
	}
	writeJSON(w, runEventsResponse{Run: id, Events: events})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// Encode errors mean the client hung up mid-response.
	_ = enc.Encode(v)
}
