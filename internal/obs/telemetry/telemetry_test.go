package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/repro/snntest/internal/fault"
	"github.com/repro/snntest/internal/obs"
	"github.com/repro/snntest/internal/snn"
	"github.com/repro/snntest/internal/tensor"
)

func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

// tinyNet mirrors the fault package's test network: 4 → 6 → 3 dense LIF.
func tinyNet(seed int64) *snn.Network {
	rng := rand.New(rand.NewSource(seed))
	l1 := must(snn.NewLayer("h", must(snn.NewDenseProj(tensor.RandNormal(rng, 0.2, 0.5, 6, 4))), snn.DefaultLIF()))
	l2 := must(snn.NewLayer("out", must(snn.NewDenseProj(tensor.RandNormal(rng, 0.2, 0.5, 3, 6))), snn.DefaultLIF()))
	return must(snn.NewNetwork("tiny", []int{4}, 1.0, l1, l2))
}

func denseStim(seed int64, net *snn.Network, steps int) *tensor.Tensor {
	return tensor.RandBernoulli(rand.New(rand.NewSource(seed)), 0.6, append([]int{steps}, net.InShape...)...)
}

// withObs turns the obs layer on for one test with the given sinks and
// restores the dark default afterwards.
func withObs(t *testing.T, sinks ...obs.Sink) {
	t.Helper()
	obs.SetSinks(sinks...)
	obs.ResetCounters()
	obs.Enable()
	t.Cleanup(func() {
		obs.Disable()
		obs.SetSinks()
		obs.ResetCounters()
	})
}

// scrape fetches /metrics from the handler and returns the body.
func scrape(t *testing.T, h http.Handler) string {
	t.Helper()
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("/metrics status = %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content type = %q", ct)
	}
	return rr.Body.String()
}

// parseExposition validates the scrape as Prometheus text exposition
// format and returns every sample keyed by its full series (name plus
// label set). It fails the test on malformed lines, duplicate TYPE
// headers, duplicate series, or samples without a preceding TYPE header
// for their family.
func parseExposition(t *testing.T, body string) map[string]float64 {
	t.Helper()
	types := map[string]string{}
	samples := map[string]float64{}
	for ln, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if line == "" {
			t.Fatalf("line %d: empty line in exposition", ln+1)
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, kind, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("line %d: malformed TYPE header %q", ln+1, line)
			}
			if kind != "counter" && kind != "gauge" && kind != "histogram" {
				t.Fatalf("line %d: unknown metric kind %q", ln+1, kind)
			}
			if _, dup := types[name]; dup {
				t.Fatalf("line %d: duplicate TYPE header for %s", ln+1, name)
			}
			types[name] = kind
			continue
		}
		series, valStr, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("line %d: malformed sample %q", ln+1, line)
		}
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("line %d: bad sample value %q: %v", ln+1, valStr, err)
		}
		if _, dup := samples[series]; dup {
			t.Fatalf("line %d: duplicate series %q", ln+1, series)
		}
		samples[series] = val
		family := series
		if i := strings.IndexByte(family, '{'); i >= 0 {
			family = family[:i]
		}
		kind, declared := types[family]
		if !declared {
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				base := strings.TrimSuffix(family, suffix)
				if base != family && types[base] == "histogram" {
					kind, declared = "histogram", true
					break
				}
			}
		}
		if !declared {
			t.Fatalf("line %d: sample %q has no TYPE header", ln+1, series)
		}
		if kind != "histogram" && strings.ContainsAny(series, "{}") {
			t.Fatalf("line %d: unexpected labels on %s series %q", ln+1, kind, series)
		}
	}
	return samples
}

func TestMetricsExpositionValid(t *testing.T) {
	withObs(t)
	obs.NewCounter("telemetry_test_events_total").Add(7)
	obs.NewGauge("telemetry_test_queue_depth").Set(3)
	h := obs.NewTimingHistogram("telemetry_test_wait_seconds")
	for _, d := range []time.Duration{time.Microsecond, time.Millisecond, 50 * time.Millisecond, 2 * time.Second, time.Minute} {
		h.Observe(d)
	}

	samples := parseExposition(t, scrape(t, New().Handler()))

	if got := samples["telemetry_test_events_total"]; got != 7 {
		t.Errorf("counter sample = %v, want 7", got)
	}
	if got := samples["telemetry_test_queue_depth"]; got != 3 {
		t.Errorf("gauge sample = %v, want 3", got)
	}
	// Histogram buckets must be cumulative (non-decreasing in le order)
	// and reconcile with _count; the minute-long observation lands in
	// +Inf only.
	prev, bounds := 0.0, append([]float64{}, obs.TimingBounds[:]...)
	for _, b := range bounds {
		series := fmt.Sprintf("telemetry_test_wait_seconds_bucket{le=%q}", strconv.FormatFloat(b, 'g', -1, 64))
		v, ok := samples[series]
		if !ok {
			t.Fatalf("missing bucket %s", series)
		}
		if v < prev {
			t.Errorf("bucket %s = %v < previous %v (not cumulative)", series, v, prev)
		}
		prev = v
	}
	inf := samples[`telemetry_test_wait_seconds_bucket{le="+Inf"}`]
	if inf != 5 {
		t.Errorf("+Inf bucket = %v, want 5", inf)
	}
	if got := samples["telemetry_test_wait_seconds_count"]; got != inf {
		t.Errorf("_count = %v, want +Inf bucket %v", got, inf)
	}
	if got := samples["telemetry_test_wait_seconds_sum"]; got < 62 {
		t.Errorf("_sum = %v, want >= 62s of observations", got)
	}
}

func TestRunsMonotonicDuringCampaign(t *testing.T) {
	s := New()
	withObs(t, s.Sink())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	net := tinyNet(41)
	faults := fault.Enumerate(net, fault.DefaultOptions())
	samples := []*tensor.Tensor{denseStim(42, net, 8)}

	fetchRuns := func() []RunProgress {
		resp, err := http.Get(ts.URL + "/runs")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var rr runsResponse
		if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
			t.Fatal(err)
		}
		return rr.Runs
	}
	classifyRun := func(runs []RunProgress) (RunProgress, bool) {
		for _, r := range runs {
			if r.Phase == "campaign/classify" {
				return r, true
			}
		}
		return RunProgress{}, false
	}

	// The classify reporter emits every 64 completions, so this campaign
	// produces several live snapshots; each /runs read mid-campaign must
	// see a done count that never moves backwards.
	var mu sync.Mutex
	lastDone, snapshots := -1, 0
	cls, err := fault.ClassifyWith(net, faults, samples, fault.CampaignOptions{
		Workers: 2,
		Progress: func(done int) {
			mu.Lock()
			defer mu.Unlock()
			r, ok := classifyRun(fetchRuns())
			if !ok {
				// The reporter invokes this callback before the obs sink,
				// so the very first emission has not reached /runs yet.
				return
			}
			if r.Done < lastDone {
				t.Errorf("/runs done moved backwards: %d after %d", r.Done, lastDone)
			}
			if r.Done > r.Total {
				t.Errorf("/runs done %d > total %d", r.Done, r.Total)
			}
			lastDone = r.Done
			snapshots++
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if snapshots < 2 {
		t.Errorf("only %d mid-campaign snapshots; want several (faults=%d, stride 64)", snapshots, len(faults))
	}

	r, ok := classifyRun(fetchRuns())
	if !ok {
		t.Fatal("no campaign/classify run after completion")
	}
	if !r.Terminal || r.Done != len(faults) || r.Total != len(faults) {
		t.Errorf("final run = %+v, want terminal with done == total == %d", r, len(faults))
	}
	if r.ETAMS != 0 {
		t.Errorf("terminal run ETA = %d, want 0", r.ETAMS)
	}

	// /runs/{id} serves the same record; unknown ids 404.
	resp, err := http.Get(ts.URL + "/runs/" + r.ID)
	if err != nil {
		t.Fatal(err)
	}
	var byID RunProgress
	if err := json.NewDecoder(resp.Body).Decode(&byID); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if byID.ID != r.ID || byID.Done != r.Done {
		t.Errorf("/runs/%s = %+v, want %+v", r.ID, byID, r)
	}
	resp, err = http.Get(ts.URL + "/runs/no-such-run")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/runs/no-such-run status = %d, want 404", resp.StatusCode)
	}

	// The scraped campaign gauges must reconcile exactly with the final
	// CampaignResult — the acceptance contract for live fault coverage.
	critical := 0
	for _, c := range cls.Critical {
		if c {
			critical++
		}
	}
	mets := parseExposition(t, scrape(t, s.Handler()))
	for series, want := range map[string]float64{
		"fault_campaign_done_faults":     float64(len(faults)),
		"fault_campaign_total_faults":    float64(len(faults)),
		"fault_campaign_critical_faults": float64(critical),
		"fault_classified_total":         float64(len(faults)),
		"fault_critical_total":           float64(critical),
	} {
		if got := mets[series]; got != want {
			t.Errorf("scraped %s = %v, want %v", series, got, want)
		}
	}
	if got := mets["fault_simulation_seconds_count"]; got != float64(len(faults)) {
		t.Errorf("fault_simulation_seconds_count = %v, want %v", got, len(faults))
	}
	if r.Detected != int64(critical) {
		t.Errorf("run detected = %d, want critical count %d", r.Detected, critical)
	}
}

func TestSimulateCoverageReconciles(t *testing.T) {
	s := New()
	withObs(t, s.Sink())

	net := tinyNet(43)
	faults := fault.Enumerate(net, fault.DefaultOptions())
	sim, err := fault.SimulateWith(net, faults, denseStim(44, net, 10), fault.CampaignOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	mets := parseExposition(t, scrape(t, s.Handler()))
	if got, want := mets["fault_campaign_detected_faults"], float64(sim.NumDetected()); got != want {
		t.Errorf("fault_campaign_detected_faults = %v, want NumDetected %v", got, want)
	}
	if got, want := mets["fault_detected_total"], float64(sim.NumDetected()); got != want {
		t.Errorf("fault_detected_total = %v, want %v", got, want)
	}

	var run RunProgress
	for _, r := range s.Sink().Runs() {
		if r.Phase == "campaign/simulate" {
			run = r
		}
	}
	if run.ID == "" || !run.Terminal {
		t.Fatalf("no terminal campaign/simulate run: %+v", run)
	}
	if run.Detected != int64(sim.NumDetected()) {
		t.Errorf("run detected = %d, want %d", run.Detected, sim.NumDetected())
	}
	wantCov := 100 * float64(sim.NumDetected()) / float64(len(faults))
	if run.CoveragePercent != wantCov {
		t.Errorf("run coverage = %v%%, want %v%%", run.CoveragePercent, wantCov)
	}
}

func TestPprofRoutesRegistered(t *testing.T) {
	h := New().Handler()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/symbol"} {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, path, nil))
		if rr.Code != http.StatusOK {
			t.Errorf("GET %s status = %d, want 200", path, rr.Code)
		}
	}
}

func TestServerLifecycle(t *testing.T) {
	s := New()
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rr.Code != http.StatusServiceUnavailable {
		t.Errorf("pre-Start /readyz status = %d, want 503", rr.Code)
	}

	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s status = %d, want 200", path, resp.StatusCode)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	rr = httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rr.Code != http.StatusServiceUnavailable {
		t.Errorf("post-Shutdown /readyz status = %d, want 503", rr.Code)
	}
}
