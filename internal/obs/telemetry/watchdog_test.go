package telemetry

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/repro/snntest/internal/obs"
)

// progressAt feeds one progress event with an explicit timestamp into
// the sink, the way live campaigns do.
func progressAt(s *Sink, run, name string, done, total int, at time.Time) {
	s.Emit(obs.Event{Kind: obs.KindProgress, Name: name, Run: run, Done: done, Total: total, Start: at})
}

// TestWatchdogSnapshotsStalledRun drives a sweep with a synthetic clock:
// a run whose last update is past the deadline gets exactly one snapshot
// per stall episode, terminal runs are ignored, and the snapshot file
// carries the goroutine dump and run identity a post-mortem needs.
func TestWatchdogSnapshotsStalledRun(t *testing.T) {
	dir := t.TempDir()
	s := NewSink()
	base := time.Now()
	progressAt(s, "stalled-run-1", "campaign/simulate", 10, 100, base)
	w := NewWatchdog(s, dir, time.Minute)

	if got := w.sweep(base.Add(30 * time.Second)); got != 0 {
		t.Fatalf("sweep before deadline wrote %d snapshots, want 0", got)
	}
	if got := w.sweep(base.Add(2 * time.Minute)); got != 1 {
		t.Fatalf("sweep past deadline wrote %d snapshots, want 1", got)
	}
	// Same stall episode: no second dump.
	if got := w.sweep(base.Add(3 * time.Minute)); got != 0 {
		t.Fatalf("repeat sweep re-dumped the same episode (%d snapshots)", got)
	}

	path := filepath.Join(dir, "stall-stalled-run-1.txt")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dump := string(data)
	for _, want := range []string{
		"stall snapshot for run stalled-run-1",
		"phase: campaign/simulate",
		"progress: 10/100",
		"-- goroutine dump --",
		"goroutine",
		"runtime_goroutines_count",
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("snapshot missing %q", want)
		}
	}

	// Progress resumes, then stalls again: a fresh episode re-dumps.
	progressAt(s, "stalled-run-1", "campaign/simulate", 50, 100, base.Add(4*time.Minute))
	if got := w.sweep(base.Add(10 * time.Minute)); got != 1 {
		t.Fatalf("new stall episode wrote %d snapshots, want 1", got)
	}

	// A terminal run never stalls.
	progressAt(s, "stalled-run-1", "campaign/simulate", 100, 100, base.Add(11*time.Minute))
	if got := w.sweep(base.Add(time.Hour)); got != 0 {
		t.Fatalf("terminal run was snapshotted (%d)", got)
	}
}

// TestWatchdogStartStop exercises the real ticker loop end to end with a
// short deadline, then checks Stop joins the goroutine.
func TestWatchdogStartStop(t *testing.T) {
	dir := t.TempDir()
	s := NewSink()
	progressAt(s, "wedged", "campaign/classify", 1, 10, time.Now().Add(-time.Hour))
	w := NewWatchdog(s, dir, 200*time.Millisecond)
	w.Start()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(filepath.Join(dir, "stall-wedged.txt")); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("watchdog loop never snapshotted the wedged run")
		}
		time.Sleep(10 * time.Millisecond)
	}
	w.Stop()
}
