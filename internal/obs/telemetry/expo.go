// Package telemetry is the live observability surface of the repo: an
// embeddable, stdlib-only net/http server that exposes the obs layer's
// counters, gauges and timing histograms in Prometheus text exposition
// format (/metrics), liveness and readiness probes (/healthz, /readyz),
// on-demand profiling (/debug/pprof/*), and structured live run
// progress (/runs, /runs/{id}) fed by a Sink registered on the obs
// event stream — so instrumentation points do not change when a binary
// opts into serving.
//
// Every CLI in this repo gains the server through the shared obs.CLI
// -serve flag: importing this package (all cmds and examples/quickstart
// do) registers the serve hook obs.CLI dispatches to. The server is
// read-only over lock-free metric handles, so scraping a run perturbs
// neither its results nor (beyond the shared obs.On() branch) its cost
// model; see DESIGN.md §6.
package telemetry

import (
	"fmt"
	"io"
	"strconv"

	"github.com/repro/snntest/internal/obs"
)

// WriteMetrics renders every registered obs metric in Prometheus text
// exposition format (version 0.0.4): one `# TYPE` header per family
// followed by its sample lines, families in name order within each
// kind. Counters and gauges emit a single sample; timing histograms
// emit the cumulative le-labelled `_bucket` series plus `_sum` and
// `_count`. Names are valid metric names by construction (the
// metricname lint analyzer enforces the subsystem_noun_unit convention
// at every registration site), so no escaping is needed.
func WriteMetrics(w io.Writer) error {
	for _, mv := range obs.SnapshotOrdered() {
		if err := writeSimple(w, mv, "counter"); err != nil {
			return err
		}
	}
	for _, mv := range obs.GaugeSnapshot() {
		if err := writeSimple(w, mv, "gauge"); err != nil {
			return err
		}
	}
	for _, h := range obs.HistogramSnapshots() {
		if err := writeHistogram(w, h); err != nil {
			return err
		}
	}
	return nil
}

// writeSimple emits one single-sample family (counter or gauge).
func writeSimple(w io.Writer, mv obs.MetricValue, kind string) error {
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n%s %d\n", mv.Name, kind, mv.Name, mv.Value)
	return err
}

// writeHistogram emits one histogram family: cumulative buckets in
// ascending le order ending at +Inf, then the sum (seconds) and count.
// The count is derived from the bucket total so the family is
// internally consistent even against in-flight observations (see
// obs.HistogramSnapshots).
func writeHistogram(w io.Writer, h obs.HistogramSnapshot) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", h.Name); err != nil {
		return err
	}
	cum := int64(0)
	for i, bound := range h.Bounds {
		cum += h.Counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.Name, formatBound(bound), cum); err != nil {
			return err
		}
	}
	cum += h.Counts[len(h.Bounds)]
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.Name, cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n",
		h.Name, strconv.FormatFloat(h.Sum, 'g', -1, 64), h.Name, cum); err != nil {
		return err
	}
	return nil
}

// formatBound renders an le bound with the shortest exact float form
// ("1e-06", "0.001", "10").
func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}
