package telemetry

import "github.com/repro/snntest/internal/obs"

// init wires this package into the shared obs.CLI -serve flag: any
// binary that imports telemetry (every cmd and examples/quickstart)
// gains the live server without further plumbing, mirroring the
// net/http/pprof import-for-effect idiom.
func init() {
	obs.RegisterServeHook(func(addr string) (obs.ServeHandle, error) {
		s := New()
		bound, err := s.Start(addr)
		if err != nil {
			return obs.ServeHandle{}, err
		}
		return obs.ServeHandle{Addr: bound, Sink: s.Sink(), Shutdown: s.Shutdown}, nil
	})
}
