package telemetry

import (
	"context"

	"github.com/repro/snntest/internal/obs"
	// Import-for-effect: linking the telemetry server in also registers
	// the flight-recorder ledger's -ledger hook.
	_ "github.com/repro/snntest/internal/obs/ledger"
)

// init wires this package into the shared obs.CLI -serve flag: any
// binary that imports telemetry (every cmd and examples/quickstart)
// gains the live server without further plumbing, mirroring the
// net/http/pprof import-for-effect idiom.
func init() {
	obs.RegisterServeHook(func(opts obs.ServeOptions) (obs.ServeHandle, error) {
		s := New()
		if opts.LedgerDir != "" {
			// Rehydrate persisted run history so /runs and the coverage
			// endpoints survive process restarts (including SIGKILL'd
			// writers — the journal reader tolerates torn final lines).
			if err := s.Sink().Rehydrate(opts.LedgerDir); err != nil {
				return obs.ServeHandle{}, err
			}
		}
		bound, err := s.Start(opts.Addr)
		if err != nil {
			return obs.ServeHandle{}, err
		}
		shutdown := s.Shutdown
		if opts.Stall > 0 && opts.LedgerDir != "" {
			// The stall watchdog rides on the server's run tracker and
			// drops its snapshots next to the ledger journals; obs.CLI
			// validates that both prerequisites are present.
			w := NewWatchdog(s.Sink(), opts.LedgerDir, opts.Stall)
			w.Start()
			shutdown = func(ctx context.Context) error {
				w.Stop()
				return s.Shutdown(ctx)
			}
		}
		return obs.ServeHandle{Addr: bound, Sink: s.Sink(), Shutdown: shutdown}, nil
	})
}
