package telemetry

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"time"

	"github.com/repro/snntest/internal/obs"
)

// obsStallSnapshots counts watchdog firings; it lands on /metrics so a
// scraper can alert on stalls even if nobody reads the snapshot files.
var obsStallSnapshots = obs.NewCounter("telemetry_stall_snapshots_total")

// Watchdog watches the run tracker for stalled campaigns: a tracked,
// non-terminal run whose last progress update is older than the deadline
// triggers a stall snapshot — a full goroutine dump plus a runtime-
// metrics and counter snapshot — written into the flight-recorder ledger
// directory next to the run journals. That is exactly the evidence a
// post-mortem needs for the failure mode the progress API cannot explain
// from outside: is the pool deadlocked, starved by GC, or wedged on one
// pathological fault.
//
// One snapshot is written per stall episode: a run that resumes progress
// and stalls again is snapshotted again, but a run that stays wedged is
// not re-dumped every sweep. Snapshot files are named stall-<runid>.txt
// (timestamp-free, so a re-fired episode overwrites rather than
// accumulating unboundedly).
type Watchdog struct {
	sink     *Sink
	dir      string
	deadline time.Duration
	stop     chan struct{}
	done     chan struct{}
	// snapped maps run id → the run's Updated timestamp at snapshot
	// time; a stalled run is re-dumped only after Updated moves.
	snapped map[string]time.Time
}

// NewWatchdog builds a watchdog over the sink's tracked runs, writing
// stall snapshots under dir. It does not start sweeping until Start.
func NewWatchdog(sink *Sink, dir string, deadline time.Duration) *Watchdog {
	return &Watchdog{
		sink:     sink,
		dir:      dir,
		deadline: deadline,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		snapped:  make(map[string]time.Time),
	}
}

// Start launches the sweep loop. The sweep cadence is a quarter of the
// deadline (floored at 100ms), so a stall is detected at most 1.25
// deadlines after the last progress event.
func (w *Watchdog) Start() {
	interval := w.deadline / 4
	if interval < 100*time.Millisecond {
		interval = 100 * time.Millisecond
	}
	go func() {
		defer close(w.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-w.stop:
				return
			case now := <-t.C:
				w.sweep(now)
			}
		}
	}()
}

// Stop terminates the sweep loop and waits for it to exit.
func (w *Watchdog) Stop() {
	close(w.stop)
	<-w.done
}

// sweep scans the tracked runs once and snapshots every newly stalled
// one, returning how many snapshots were written. Factored off the
// ticker loop so tests can drive it with a synthetic clock.
func (w *Watchdog) sweep(now time.Time) int {
	wrote := 0
	for _, r := range w.sink.Runs() {
		if r.Terminal || r.Rehydrated || r.Updated.IsZero() {
			continue
		}
		if now.Sub(r.Updated) < w.deadline {
			continue
		}
		if last, ok := w.snapped[r.ID]; ok && last.Equal(r.Updated) {
			continue // same stall episode, already dumped
		}
		if err := w.snapshot(r, now); err != nil {
			// The ledger dir going away is not worth crashing the server
			// over; the next sweep retries.
			continue
		}
		w.snapped[r.ID] = r.Updated
		obsStallSnapshots.Add(1)
		wrote++
	}
	return wrote
}

// snapshot writes one stall report: run state, runtime resource gauges,
// the full counter registry, and a debug=2 goroutine dump.
func (w *Watchdog) snapshot(r RunProgress, now time.Time) error {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "stall snapshot for run %s\n", r.ID)
	fmt.Fprintf(&buf, "phase: %s\nprogress: %d/%d (%.1f%%)\n", r.Phase, r.Done, r.Total, r.Percent)
	fmt.Fprintf(&buf, "last update: %s (%s before snapshot)\n", r.Updated.Format(time.RFC3339Nano), now.Sub(r.Updated))
	fmt.Fprintf(&buf, "deadline: %s\n\n", w.deadline)

	SampleRuntime()
	buf.WriteString("-- gauges (incl. runtime metrics) --\n")
	for _, m := range obs.GaugeSnapshot() {
		fmt.Fprintf(&buf, "%s %d\n", m.Name, m.Value)
	}
	buf.WriteString("\n-- counters --\n")
	for _, m := range obs.SnapshotOrdered() {
		fmt.Fprintf(&buf, "%s %d\n", m.Name, m.Value)
	}

	buf.WriteString("\n-- goroutine dump --\n")
	if err := pprof.Lookup("goroutine").WriteTo(&buf, 2); err != nil {
		fmt.Fprintf(&buf, "goroutine dump failed: %v\n", err)
	}
	return os.WriteFile(filepath.Join(w.dir, "stall-"+r.ID+".txt"), buf.Bytes(), 0o644)
}
