package telemetry

import (
	"math"
	"runtime/metrics"

	"github.com/repro/snntest/internal/obs"
)

// Runtime resource gauges, refreshed by SampleRuntime on every /metrics
// scrape (and by the stall watchdog before a snapshot). They surface the
// runtime/metrics signals ROADMAP's perf items keep needing — is a slow
// campaign GC-bound, scheduler-bound, or genuinely compute-bound — next
// to the repo's own counters in one exposition. Pause and latency
// distributions are folded to p50/p99/max in microseconds: the registry
// is int64-valued and the tails are what stall diagnosis reads.
var (
	gaugeGoroutines  = obs.NewGauge("runtime_goroutines_count")
	gaugeHeapLive    = obs.NewGauge("runtime_heap_live_bytes")
	gaugeHeapGoal    = obs.NewGauge("runtime_heap_goal_bytes")
	gaugeGCCycles    = obs.NewGauge("runtime_gc_cycles_count")
	gaugeGCPauseP50  = obs.NewGauge("runtime_gc_pause_p50_micros")
	gaugeGCPauseMax  = obs.NewGauge("runtime_gc_pause_max_micros")
	gaugeSchedLatP50 = obs.NewGauge("runtime_sched_latency_p50_micros")
	gaugeSchedLatP99 = obs.NewGauge("runtime_sched_latency_p99_micros")
)

// runtimeMetricNames are the runtime/metrics series we consume. Unknown
// names read as KindBad and are skipped, so a toolchain that drops one
// degrades to a zero gauge instead of failing the scrape.
var runtimeMetricNames = []string{
	"/sched/goroutines:goroutines",
	"/gc/heap/live:bytes",
	"/gc/heap/goal:bytes",
	"/gc/cycles/total:gc-cycles",
	"/gc/pauses:seconds",
	"/sched/latencies:seconds",
}

// SampleRuntime reads the runtime/metrics snapshot and publishes it into
// the obs gauge registry. Safe for concurrent use (each call reads into
// its own sample buffer; gauge stores are atomic); called per scrape
// rather than on a ticker so an idle server costs nothing.
func SampleRuntime() {
	samples := make([]metrics.Sample, len(runtimeMetricNames))
	for i, name := range runtimeMetricNames {
		samples[i].Name = name
	}
	metrics.Read(samples)
	for _, s := range samples {
		switch s.Name {
		case "/sched/goroutines:goroutines":
			if s.Value.Kind() == metrics.KindUint64 {
				gaugeGoroutines.Set(clampInt64(s.Value.Uint64()))
			}
		case "/gc/heap/live:bytes":
			if s.Value.Kind() == metrics.KindUint64 {
				gaugeHeapLive.Set(clampInt64(s.Value.Uint64()))
			}
		case "/gc/heap/goal:bytes":
			if s.Value.Kind() == metrics.KindUint64 {
				gaugeHeapGoal.Set(clampInt64(s.Value.Uint64()))
			}
		case "/gc/cycles/total:gc-cycles":
			if s.Value.Kind() == metrics.KindUint64 {
				gaugeGCCycles.Set(clampInt64(s.Value.Uint64()))
			}
		case "/gc/pauses:seconds":
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				h := s.Value.Float64Histogram()
				gaugeGCPauseP50.Set(secondsToMicros(histQuantile(h, 0.50)))
				gaugeGCPauseMax.Set(secondsToMicros(histMax(h)))
			}
		case "/sched/latencies:seconds":
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				h := s.Value.Float64Histogram()
				gaugeSchedLatP50.Set(secondsToMicros(histQuantile(h, 0.50)))
				gaugeSchedLatP99.Set(secondsToMicros(histQuantile(h, 0.99)))
			}
		}
	}
}

// clampInt64 narrows a runtime/metrics uint64 into the registry's int64
// domain (heap sizes and counts never get near the boundary in
// practice; the clamp keeps a pathological reading from going negative).
func clampInt64(v uint64) int64 {
	if v > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(v)
}

// secondsToMicros converts a (possibly infinite) seconds value to whole
// microseconds, saturating rather than overflowing.
func secondsToMicros(sec float64) int64 {
	if math.IsNaN(sec) || sec <= 0 {
		return 0
	}
	us := sec * 1e6
	if math.IsInf(us, +1) || us > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(us)
}

// histQuantile folds a runtime/metrics histogram to the value at
// quantile q, using each selected bucket's upper edge (the conservative
// read for a latency distribution). Infinite edges fall back to the
// bucket's finite lower edge. Returns 0 for an empty histogram.
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for i, c := range h.Counts {
		seen += c
		if seen >= target {
			return bucketEdge(h, i)
		}
	}
	return bucketEdge(h, len(h.Counts)-1)
}

// histMax returns the upper edge of the highest populated bucket, or 0
// for an empty histogram.
func histMax(h *metrics.Float64Histogram) float64 {
	for i := len(h.Counts) - 1; i >= 0; i-- {
		if h.Counts[i] > 0 {
			return bucketEdge(h, i)
		}
	}
	return 0
}

// bucketEdge picks a representative finite edge for bucket i: the upper
// edge h.Buckets[i+1], falling back to the lower edge when the upper one
// is +Inf (the runtime's catch-all tail bucket).
func bucketEdge(h *metrics.Float64Histogram, i int) float64 {
	upper := h.Buckets[i+1]
	if !math.IsInf(upper, +1) {
		return upper
	}
	lower := h.Buckets[i]
	if math.IsInf(lower, -1) || lower < 0 {
		return 0
	}
	return lower
}
