package obs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

func TestJSONLSinkWellFormed(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	SetSinks(sink)
	ResetCounters()
	Enable()
	t.Cleanup(func() {
		Disable()
		SetSinks()
		ResetCounters()
	})

	ctx, root := Start(context.Background(), "root")
	_, child := Start(ctx, "child")
	child.SetAttr("n", 3)
	child.End()
	root.End()
	Progress("root", 1, 1)
	EmitCounterSnapshot()
	if err := sink.Err(); err != nil {
		t.Fatalf("sink error: %v", err)
	}

	var events []Event
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %q is not valid JSON: %v", sc.Text(), err)
		}
		events = append(events, e)
	}
	if len(events) != 4 {
		t.Fatalf("decoded %d events, want 4", len(events))
	}
	if events[0].Name != "child" || events[0].Parent == 0 {
		t.Errorf("first line should be the child span with a parent: %+v", events[0])
	}
	if events[3].Kind != KindCounters {
		t.Errorf("last line should be the counter snapshot: %+v", events[3])
	}
}

func TestJSONLSinkRetainsFirstError(t *testing.T) {
	sink := NewJSONLSink(failingWriter{})
	sink.Emit(Event{Kind: KindSpan, Name: "x"})
	if sink.Err() == nil {
		t.Fatal("want retained write error")
	}
	// Later emits are no-ops, not panics.
	sink.Emit(Event{Kind: KindSpan, Name: "y"})
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) {
	return 0, errWrite
}

var errWrite = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "synthetic write failure" }

func TestWriteTreeNesting(t *testing.T) {
	events := []Event{
		{Kind: KindSpan, Name: "leaf", ID: 3, Parent: 2, DurUS: 10},
		{Kind: KindSpan, Name: "mid", ID: 2, Parent: 1, DurUS: 20},
		{Kind: KindSpan, Name: "top", ID: 1, DurUS: 30},
		{Kind: KindSpan, Name: "orphan", ID: 9, Parent: 100, DurUS: 1},
		{Kind: KindProgress, Name: "ignored"},
	}
	var buf bytes.Buffer
	if err := WriteTree(&buf, events); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // header + 4 spans
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	idx := func(name string) int {
		for i, l := range lines {
			if strings.Contains(l, name) {
				return i
			}
		}
		t.Fatalf("missing %q in:\n%s", name, out)
		return -1
	}
	top, mid, leaf := idx("top"), idx("mid"), idx("leaf")
	if !(top < mid && mid < leaf) {
		t.Errorf("tree order wrong:\n%s", out)
	}
	indent := func(l string) int { return len(l) - len(strings.TrimLeft(l, " ")) }
	if !(indent(lines[top]) < indent(lines[mid]) && indent(lines[mid]) < indent(lines[leaf])) {
		t.Errorf("indentation does not nest:\n%s", out)
	}
	idx("orphan") // orphan spans still render (as roots)
}

func TestWriteTreeEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTree(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no spans") {
		t.Errorf("empty tree output = %q", buf.String())
	}
}

func TestWriteCounterTable(t *testing.T) {
	var buf bytes.Buffer
	err := WriteCounterTable(&buf, map[string]int64{"b.two": 2, "a.one": 1, "zero": 0})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "zero") {
		t.Errorf("zero-valued counter rendered:\n%s", out)
	}
	if !strings.Contains(out, "a.one") || !strings.Contains(out, "b.two") {
		t.Errorf("missing counters:\n%s", out)
	}
	if strings.Index(out, "a.one") > strings.Index(out, "b.two") {
		t.Errorf("counters not sorted:\n%s", out)
	}
}

func TestRecorderHelpers(t *testing.T) {
	rec := &Recorder{}
	rec.Emit(Event{Kind: KindSpan, Name: "a", ID: 1})
	rec.Emit(Event{Kind: KindProgress, Name: "p"})
	rec.Emit(Event{Kind: KindSpan, Name: "a", ID: 2})
	if got := len(rec.Events()); got != 3 {
		t.Fatalf("Events len = %d", got)
	}
	if got := len(rec.Spans()); got != 2 {
		t.Fatalf("Spans len = %d", got)
	}
	if got := len(rec.SpansNamed("a")); got != 2 {
		t.Fatalf("SpansNamed len = %d", got)
	}
	rec.Reset()
	if got := len(rec.Events()); got != 0 {
		t.Fatalf("Reset left %d events", got)
	}
}
