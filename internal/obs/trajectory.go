package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"
)

// TrajectoryRecord is one run's entry in the cumulative
// BENCH_trajectory.json artifact: a benchmark (or instrumented run)
// result keyed by the git revision and wall-clock time that produced
// it, so performance can be plotted across the repo's history instead
// of judged from one snapshot.
type TrajectoryRecord struct {
	// GitRev is the HEAD commit at record time ("unknown" outside git).
	GitRev string `json:"git_rev"`
	// Time is the record creation time (RFC 3339).
	Time string `json:"time"`
	// GoVersion is the toolchain that produced the numbers.
	GoVersion string `json:"go_version"`
	// Source names the producer, e.g. "benchreport" or "bench:campaign".
	Source string `json:"source"`
	// Metrics holds the run's headline numbers by metric name.
	Metrics map[string]float64 `json:"metrics"`
}

// NewTrajectoryRecord stamps a record with the current process state.
func NewTrajectoryRecord(source string, metrics map[string]float64) TrajectoryRecord {
	return TrajectoryRecord{
		GitRev:    gitRev(),
		Time:      time.Now().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Source:    source,
		Metrics:   metrics,
	}
}

// AppendTrajectory appends rec to the JSON array at path,
// read-modify-write: a missing file starts a new array, an existing one
// must parse (a corrupt history is an error, never silently truncated).
// Writes go through a temp file + rename so a crash cannot leave the
// trajectory half-written.
func AppendTrajectory(path string, rec TrajectoryRecord) error {
	var records []TrajectoryRecord
	data, err := os.ReadFile(path)
	switch {
	case err == nil:
		if err := json.Unmarshal(data, &records); err != nil {
			return fmt.Errorf("obs: trajectory %s is corrupt: %w", path, err)
		}
	case os.IsNotExist(err):
		// First record: start a fresh array.
	default:
		return err
	}
	records = append(records, rec)
	out, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(out, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
