package obs

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"
)

// CLI bundles the observability flags every binary in this repo shares:
//
//	-v            debug-level logging
//	-quiet        suppress status logging
//	-trace FILE   JSONL span/counter trace
//	-serve ADDR   live telemetry HTTP server (/metrics, /runs, pprof)
//	-ledger DIR   per-run flight-recorder journals (JSONL per run)
//	-profile-dir DIR   phase-labelled cpu/heap pprof profiles, tool-named
//	-stall-timeout D   stall watchdog deadline for -serve + -ledger runs
//	-cpuprofile FILE, -memprofile FILE   (aliases of -profile-dir's pair)
//
// Register the flags on the binary's FlagSet, then call Start after
// parsing; the returned stop function shuts the telemetry server down,
// closes the ledger, flushes profiles, emits the final counter
// snapshot, prints the end-of-run span tree and resets the global obs
// state so repeated in-process runs (tests) stay hermetic.
type CLI struct {
	Verbose bool
	Quiet   bool
	Trace   string
	Serve   string
	Ledger  string
	// ProfileDir writes the unified profile pair — <tool>.cpu.pprof and
	// <tool>.heap.pprof, named after the registered FlagSet so paths are
	// stable across runs (no timestamps) and CI can upload them as
	// artifacts. The legacy -cpuprofile/-memprofile flags remain as
	// aliases; when both are given, the explicit file path wins.
	ProfileDir string
	CPUProfile string
	MemProfile string
	// Stall arms the telemetry server's stall watchdog: when a tracked
	// run's progress flatlines for this long, a goroutine dump plus a
	// runtime-metrics snapshot is written to the -ledger directory.
	// Zero disables the watchdog; it requires -serve and -ledger.
	Stall time.Duration
	// ForceEnable turns the observability layer on even without -trace
	// (counters accumulate; no trace sink). benchreport's -obs mode sets
	// it so the run manifest's counter snapshot is populated.
	ForceEnable bool
	// ServedAddr is the telemetry server's resolved listen address after
	// Start when -serve was given (":0" resolves to an ephemeral port).
	ServedAddr string
	// tool is the FlagSet name captured by Register; it names the
	// -profile-dir files.
	tool string
}

// Register installs the shared flags on fs.
func (c *CLI) Register(fs *flag.FlagSet) {
	c.tool = fs.Name()
	fs.BoolVar(&c.Verbose, "v", false, "verbose (debug-level) status logging")
	fs.BoolVar(&c.Quiet, "quiet", false, "suppress status logging")
	fs.StringVar(&c.Trace, "trace", "", "write a JSONL span/counter trace to this file")
	fs.StringVar(&c.Serve, "serve", "", "serve live telemetry (/metrics, /healthz, /readyz, /runs, /debug/pprof) on this host:port for the run's duration")
	fs.StringVar(&c.Ledger, "ledger", "", "append per-run flight-recorder journals (JSONL) under this directory")
	fs.StringVar(&c.ProfileDir, "profile-dir", "", "write phase-labelled <tool>.cpu.pprof and <tool>.heap.pprof profiles under this directory")
	fs.DurationVar(&c.Stall, "stall-timeout", 0, "with -serve and -ledger: snapshot a goroutine dump + runtime metrics to the ledger dir when run progress stalls this long (0 = off)")
	fs.StringVar(&c.CPUProfile, "cpuprofile", "", "write a pprof CPU profile to this file (alias of -profile-dir's cpu half)")
	fs.StringVar(&c.MemProfile, "memprofile", "", "write a pprof heap profile to this file (alias of -profile-dir's heap half)")
}

// toolName returns the profile-file stem: the FlagSet name captured at
// Register, or a neutral fallback for a CLI built without Register.
func (c *CLI) toolName() string {
	if c.tool == "" {
		return "profile"
	}
	return c.tool
}

// ServeOptions configures the telemetry server started by -serve:
// the listen address and, when -ledger is also set, the journal
// directory the server rehydrates persisted run history from.
type ServeOptions struct {
	Addr      string
	LedgerDir string
	// Stall arms the stall watchdog (see CLI.Stall); zero leaves it off.
	Stall time.Duration
}

// ServeHandle is a running telemetry server as seen by the CLI bundle:
// its resolved address, the run-tracking sink to register on the event
// stream, and the graceful shutdown entry point.
type ServeHandle struct {
	Addr     string
	Sink     Sink
	Shutdown func(context.Context) error
}

// serveHook starts a telemetry server on the given address. It is
// registered by the internal/obs/telemetry package's init (obs cannot
// import it — the server depends on this package), so binaries opt into
// -serve simply by importing internal/obs/telemetry.
var serveHook func(opts ServeOptions) (ServeHandle, error)

// RegisterServeHook installs the -serve implementation. Called once,
// from init; later registrations overwrite earlier ones.
func RegisterServeHook(h func(opts ServeOptions) (ServeHandle, error)) { serveHook = h }

// LedgerHandle is a running flight-recorder journal writer as seen by
// the CLI bundle: the sink to register on the event stream and the
// close entry point flushing per-run journal files.
type LedgerHandle struct {
	Sink  Sink
	Close func() error
}

// ledgerHook opens a ledger rooted at the given directory. Registered
// by the internal/obs/ledger package's init (via the telemetry blank
// import every binary already carries), mirroring serveHook.
var ledgerHook func(dir string) (LedgerHandle, error)

// RegisterLedgerHook installs the -ledger implementation. Called once,
// from init; later registrations overwrite earlier ones.
func RegisterLedgerHook(h func(dir string) (LedgerHandle, error)) { ledgerHook = h }

// Level resolves the flag pair into a log level.
func (c *CLI) Level() LogLevel {
	switch {
	case c.Quiet:
		return LevelQuiet
	case c.Verbose:
		return LevelDebug
	default:
		return LevelInfo
	}
}

// Start validates the flags, builds the shared logger on stderr, and —
// when -trace, -serve or ForceEnable ask for it — enables the
// observability layer: -trace adds a JSONL sink plus an in-memory
// recorder for the final tree summary, -serve starts the telemetry
// server (requires internal/obs/telemetry to be linked in) and registers
// its run-tracking sink, and the requested pprof profiles are started.
// The stop function is safe to defer on every path (including flag
// errors, when it is a no-op); it shuts the server down gracefully,
// flushes and closes the trace, and restores the dark default.
func (c *CLI) Start(stderr io.Writer) (*Logger, func() error, error) {
	if c.Verbose && c.Quiet {
		return nil, nil, fmt.Errorf("obs: -v and -quiet are mutually exclusive")
	}
	if c.Stall < 0 {
		return nil, nil, fmt.Errorf("obs: -stall-timeout must be non-negative")
	}
	if c.Stall > 0 && (c.Serve == "" || c.Ledger == "") {
		return nil, nil, fmt.Errorf("obs: -stall-timeout needs both -serve (to watch run progress) and -ledger (to receive stall snapshots)")
	}
	log := NewLogger(stderr, c.Level())

	// Resolve the unified -profile-dir into the legacy per-file paths;
	// an explicit -cpuprofile/-memprofile wins over the derived name.
	cpuPath, memPath := c.CPUProfile, c.MemProfile
	if c.ProfileDir != "" {
		if err := os.MkdirAll(c.ProfileDir, 0o755); err != nil {
			return nil, nil, fmt.Errorf("obs: -profile-dir: %w", err)
		}
		if cpuPath == "" {
			cpuPath = filepath.Join(c.ProfileDir, c.toolName()+".cpu.pprof")
		}
		if memPath == "" {
			memPath = filepath.Join(c.ProfileDir, c.toolName()+".heap.pprof")
		}
	}

	var cleanups []func() error
	stop := func() error {
		var first error
		// LIFO, mirroring defer semantics.
		for i := len(cleanups) - 1; i >= 0; i-- {
			if err := cleanups[i](); err != nil && first == nil {
				first = err
			}
		}
		cleanups = nil
		return first
	}
	fail := func(err error) (*Logger, func() error, error) {
		// Best effort: release whatever was already set up.
		_ = stop()
		return nil, nil, err
	}

	var jsonl *JSONLSink
	var rec *Recorder
	var traceFile *os.File
	if c.Trace != "" {
		f, err := os.Create(c.Trace)
		if err != nil {
			return fail(err)
		}
		traceFile, jsonl, rec = f, NewJSONLSink(f), &Recorder{}
	}
	if c.Trace != "" || c.Serve != "" || c.Ledger != "" || cpuPath != "" || memPath != "" || c.ForceEnable {
		if jsonl != nil {
			SetSinks(jsonl, rec)
		} else {
			SetSinks()
		}
		ResetCounters()
		Enable()
		// This cleanup runs last (LIFO): the telemetry server has already
		// shut down, so the final counter snapshot is the run's total.
		cleanups = append(cleanups, func() error {
			if jsonl != nil {
				EmitCounterSnapshot()
			}
			snapshot := Snapshot()
			Disable()
			SetSinks()
			ResetCounters()
			if jsonl == nil {
				return nil
			}
			if log.Enabled(LevelInfo) {
				// Summary goes through the logger's writer so -quiet
				// suppresses it alongside every other status line.
				w := log.Writer(LevelInfo)
				if err := WriteTree(w, rec.Events()); err != nil {
					return err
				}
				if err := WriteCounterTable(w, snapshot); err != nil {
					return err
				}
			}
			if err := jsonl.Err(); err != nil {
				_ = traceFile.Close()
				return fmt.Errorf("obs: trace write: %w", err)
			}
			if err := traceFile.Close(); err != nil {
				return fmt.Errorf("obs: trace close: %w", err)
			}
			log.Infof("trace written to %s", c.Trace)
			return nil
		})
	}
	if c.Serve != "" || c.Ledger != "" {
		// Per-run flight-recorder events only flow when something consumes
		// them, keeping plain -trace runs byte-compatible with history.
		SetRunEvents(true)
		cleanups = append(cleanups, func() error {
			SetRunEvents(false)
			return nil
		})
	}
	if c.Ledger != "" {
		if ledgerHook == nil {
			return fail(fmt.Errorf("obs: -ledger needs the flight recorder linked in; import internal/obs/ledger (or internal/obs/telemetry)"))
		}
		h, err := ledgerHook(c.Ledger)
		if err != nil {
			return fail(err)
		}
		AddSink(h.Sink)
		cleanups = append(cleanups, h.Close)
		log.Infof("flight-recorder ledger appending under %s", c.Ledger)
	}
	if c.Serve != "" {
		if serveHook == nil {
			return fail(fmt.Errorf("obs: -serve needs the telemetry server linked in; import internal/obs/telemetry"))
		}
		h, err := serveHook(ServeOptions{Addr: c.Serve, LedgerDir: c.Ledger, Stall: c.Stall})
		if err != nil {
			return fail(err)
		}
		c.ServedAddr = h.Addr
		AddSink(h.Sink)
		cleanups = append(cleanups, func() error {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			return h.Shutdown(ctx)
		})
		log.Infof("telemetry server listening on http://%s (/metrics /healthz /readyz /runs /debug/pprof)", h.Addr)
	}
	if cpuPath != "" || c.Serve != "" {
		// Phase/run pprof labels cost one small allocation per span, so
		// they are only maintained when a profile consumer exists: an
		// on-disk CPU profile, or the server's /debug/pprof endpoints.
		SetProfileLabels(true)
		cleanups = append(cleanups, func() error {
			SetProfileLabels(false)
			return nil
		})
	}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			_ = f.Close()
			return fail(err)
		}
		path := cpuPath
		cleanups = append(cleanups, func() error {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				return err
			}
			log.Infof("CPU profile written to %s", path)
			return nil
		})
	}
	if memPath != "" {
		path := memPath
		cleanups = append(cleanups, func() error {
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			runtime.GC() // settle the heap so the profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				_ = f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			log.Infof("heap profile written to %s", path)
			return nil
		})
	}
	return log, stop, nil
}

// Manifest is the self-describing record benchreport's -obs mode writes
// next to the BENCH_*.json artifacts: enough provenance (git revision,
// configuration, counter values) to interpret a perf number months
// later. Schema documented in DESIGN.md §6.
type Manifest struct {
	// GitRev is the current HEAD commit, or "unknown" outside a git
	// checkout.
	GitRev string `json:"git_rev"`
	// Time is the manifest creation time (RFC 3339).
	Time string `json:"time"`
	// GoVersion is the toolchain that built/ran the binary.
	GoVersion string `json:"go_version"`
	// Config records the run configuration (flag values).
	Config map[string]string `json:"config"`
	// Counters is the observability counter snapshot at write time.
	Counters map[string]int64 `json:"counters"`
}

// NewManifest assembles a manifest from the current process state.
func NewManifest(config map[string]string) Manifest {
	return Manifest{
		GitRev:    gitRev(),
		Time:      time.Now().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Config:    config,
		Counters:  Snapshot(),
	}
}

// WriteManifest writes the manifest as indented JSON to path.
func WriteManifest(path string, m Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// gitRev returns the repository HEAD, best effort.
func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}
