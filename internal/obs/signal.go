package obs

import (
	"context"
	"os"
	"os/signal"
	"syscall"
)

// SignalContext returns a copy of parent that is cancelled on SIGINT or
// SIGTERM — the graceful-shutdown root every CLI threads through its
// pipeline. Cancellation is cooperative: generation loops return their
// partial result, campaigns run to completion, and the deferred
// obs.CLI stop then flushes the trace and shuts the telemetry server
// down, so an interrupted run never leaves a truncated JSONL file. The
// returned CancelFunc (defer it) unregisters the handler, restoring the
// default immediate-exit disposition for any signal after the run.
func SignalContext(parent context.Context) (context.Context, context.CancelFunc) {
	return signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
}
