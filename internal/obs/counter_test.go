package obs

import (
	"sync"
	"testing"
)

func TestNewCounterIdempotent(t *testing.T) {
	t.Cleanup(ResetCounters)
	a := NewCounter("obs_test.idem")
	b := NewCounter("obs_test.idem")
	if a != b {
		t.Fatal("same name returned distinct counters")
	}
	a.Add(3)
	if got := b.Value(); got != 3 {
		t.Fatalf("shared counter value = %d, want 3", got)
	}
	if a.Name() != "obs_test.idem" {
		t.Fatalf("name = %q", a.Name())
	}
}

// TestCounterConcurrentAdd exercises the lock-free contract under -race.
func TestCounterConcurrentAdd(t *testing.T) {
	t.Cleanup(ResetCounters)
	c := NewCounter("obs_test.concurrent")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("value = %d, want %d", got, workers*per)
	}
}

func TestSnapshotAndReset(t *testing.T) {
	t.Cleanup(ResetCounters)
	a := NewCounter("obs_test.snap_a")
	b := NewCounter("obs_test.snap_b")
	a.Add(5)
	b.Set(9)
	snap := Snapshot()
	if snap["obs_test.snap_a"] != 5 || snap["obs_test.snap_b"] != 9 {
		t.Fatalf("snapshot = %v", snap)
	}
	ResetCounters()
	if a.Value() != 0 || b.Value() != 0 {
		t.Fatal("ResetCounters left non-zero values")
	}
	// Handles stay valid after reset.
	a.Add(1)
	if a.Value() != 1 {
		t.Fatal("handle dead after reset")
	}
}

func TestCounterNamesSorted(t *testing.T) {
	t.Cleanup(ResetCounters)
	NewCounter("obs_test.names_b")
	NewCounter("obs_test.names_a")
	names := CounterNames()
	prev := ""
	seenA, seenB := false, false
	for _, n := range names {
		if n < prev {
			t.Fatalf("names not sorted: %v", names)
		}
		prev = n
		seenA = seenA || n == "obs_test.names_a"
		seenB = seenB || n == "obs_test.names_b"
	}
	if !seenA || !seenB {
		t.Fatalf("registered names missing from %v", names)
	}
}
