package obs

import (
	"bytes"
	"flag"
	"io"
	"strings"
	"sync"
	"testing"
)

func TestLoggerLevels(t *testing.T) {
	var buf bytes.Buffer
	log := NewLogger(&buf, LevelInfo)
	log.Infof("status %d", 1)
	log.Debugf("detail %d", 2)
	out := buf.String()
	if !strings.Contains(out, "status 1") {
		t.Errorf("info line missing: %q", out)
	}
	if strings.Contains(out, "detail") {
		t.Errorf("debug line leaked at info level: %q", out)
	}

	buf.Reset()
	log = NewLogger(&buf, LevelDebug)
	log.Debugf("detail")
	if !strings.Contains(buf.String(), "detail") {
		t.Errorf("debug line missing at debug level")
	}

	buf.Reset()
	log = NewLogger(&buf, LevelQuiet)
	log.Infof("status")
	if buf.Len() != 0 {
		t.Errorf("quiet logger wrote %q", buf.String())
	}
}

func TestLoggerNilSafe(t *testing.T) {
	var log *Logger
	log.Infof("x")
	log.Debugf("x")
	log.Errorf("x")
	if log.Enabled(LevelInfo) {
		t.Error("nil logger reports enabled")
	}
	if w := log.Writer(LevelInfo); w != nil {
		t.Errorf("nil logger Writer = %v, want nil", w)
	}
}

func TestLoggerWriterAdapter(t *testing.T) {
	var buf bytes.Buffer
	log := NewLogger(&buf, LevelInfo)
	w := log.Writer(LevelInfo)
	if w == nil {
		t.Fatal("enabled level returned nil writer")
	}
	n, err := io.WriteString(w, "library line\n")
	if err != nil || n != len("library line\n") {
		t.Fatalf("Write = (%d, %v)", n, err)
	}
	if got := buf.String(); got != "library line\n" {
		t.Errorf("writer output = %q", got)
	}
	if log.Writer(LevelDebug) != nil {
		t.Error("disabled level returned a writer; callers rely on nil to keep library logging off")
	}
}

func TestLoggerNewlineNormalization(t *testing.T) {
	var buf bytes.Buffer
	log := NewLogger(&buf, LevelInfo)
	log.Infof("no newline")
	log.Infof("with newline\n")
	if got := buf.String(); got != "no newline\nwith newline\n" {
		t.Errorf("output = %q", got)
	}
}

func TestLoggerConcurrent(t *testing.T) {
	var buf bytes.Buffer
	log := NewLogger(&buf, LevelInfo)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				log.Infof("line")
			}
		}()
	}
	wg.Wait()
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 400 {
		t.Fatalf("got %d lines, want 400", len(lines))
	}
	for _, l := range lines {
		if l != "line" {
			t.Fatalf("interleaved write: %q", l)
		}
	}
}

func TestCLILevel(t *testing.T) {
	cases := []struct {
		verbose, quiet bool
		want           LogLevel
	}{
		{false, false, LevelInfo},
		{true, false, LevelDebug},
		{false, true, LevelQuiet},
	}
	for _, tc := range cases {
		c := CLI{Verbose: tc.verbose, Quiet: tc.quiet}
		if got := c.Level(); got != tc.want {
			t.Errorf("Level(v=%v q=%v) = %v, want %v", tc.verbose, tc.quiet, got, tc.want)
		}
	}
}

func TestCLIRegisterParse(t *testing.T) {
	var c CLI
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	c.Register(fs)
	err := fs.Parse([]string{"-v", "-trace", "t.jsonl", "-cpuprofile", "c.pb", "-memprofile", "m.pb"})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Verbose || c.Trace != "t.jsonl" || c.CPUProfile != "c.pb" || c.MemProfile != "m.pb" {
		t.Fatalf("parsed CLI = %+v", c)
	}
}

func TestCLIStartRejectsVerboseQuiet(t *testing.T) {
	c := CLI{Verbose: true, Quiet: true}
	if _, _, err := c.Start(io.Discard); err == nil {
		t.Fatal("want mutual-exclusion error")
	}
}
