package obs

import (
	"bytes"
	"context"
	"runtime/pprof"
	"strings"
	"testing"
)

// goroutineLabels renders the current goroutine's pprof labels by
// dumping the goroutine profile at debug=1, which prints one
// "# labels: {...}" line per labelled goroutine. It is the only
// stdlib-visible way to observe SetGoroutineLabels, and plenty for
// asserting which phase the test goroutine is attributed to.
func goroutineLabels(t *testing.T) string {
	t.Helper()
	var buf bytes.Buffer
	if err := pprof.Lookup("goroutine").WriteTo(&buf, 1); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestProfileLabelsFollowSpans pins the tentpole contract: with
// labelling on, Start tags the goroutine and the returned context with
// phase=<span name>, nested spans override, and End restores the
// enclosing span's label — so a CPU sample taken at any point lands in
// exactly the innermost open phase.
func TestProfileLabelsFollowSpans(t *testing.T) {
	Enable()
	SetProfileLabels(true)
	defer func() {
		SetProfileLabels(false)
		Disable()
		pprof.SetGoroutineLabels(context.Background())
	}()

	ctx, outer := Start(context.Background(), "profiletest/outer")
	if got, ok := pprof.Label(ctx, "phase"); !ok || got != "profiletest/outer" {
		t.Fatalf("outer ctx phase label = %q, %v; want profiletest/outer", got, ok)
	}
	if !strings.Contains(goroutineLabels(t), `"phase":"profiletest/outer"`) {
		t.Error("outer span did not label the goroutine")
	}

	ictx, inner := Start(ctx, "profiletest/inner")
	if got, _ := pprof.Label(ictx, "phase"); got != "profiletest/inner" {
		t.Errorf("inner ctx phase label = %q, want profiletest/inner", got)
	}
	if !strings.Contains(goroutineLabels(t), `"phase":"profiletest/inner"`) {
		t.Error("inner span did not relabel the goroutine")
	}
	inner.End()
	if !strings.Contains(goroutineLabels(t), `"phase":"profiletest/outer"`) {
		t.Error("inner End did not restore the outer phase label")
	}
	outer.End()
	if strings.Contains(goroutineLabels(t), `"phase":"profiletest/`) {
		t.Error("outer End did not clear the phase label")
	}
}

// TestWithRunLabelComposes pins that the run label merges with (never
// replaces) the phase label, and that the enclosing span's End reverts
// both.
func TestWithRunLabelComposes(t *testing.T) {
	Enable()
	SetProfileLabels(true)
	defer func() {
		SetProfileLabels(false)
		Disable()
		pprof.SetGoroutineLabels(context.Background())
	}()

	ctx, sp := Start(context.Background(), "profiletest/campaign")
	ctx = WithRunLabel(ctx, "run-42")
	if got, _ := pprof.Label(ctx, "run"); got != "run-42" {
		t.Errorf("run label = %q, want run-42", got)
	}
	if got, _ := pprof.Label(ctx, "phase"); got != "profiletest/campaign" {
		t.Errorf("phase label = %q after WithRunLabel, want profiletest/campaign", got)
	}
	dump := goroutineLabels(t)
	if !strings.Contains(dump, `"run":"run-42"`) || !strings.Contains(dump, `"phase":"profiletest/campaign"`) {
		t.Errorf("goroutine labels missing run/phase pair:\n%s", dump)
	}
	sp.End()
	if strings.Contains(goroutineLabels(t), `"run":"run-42"`) {
		t.Error("span End did not revert the run label")
	}
}

// TestProfileLabelsDarkByDefault pins the disabled-by-default contract:
// without SetProfileLabels the span machinery never touches pprof
// state, and with the whole layer dark WithRunLabel is an identity.
func TestProfileLabelsDarkByDefault(t *testing.T) {
	Enable()
	defer Disable()
	ctx, sp := Start(context.Background(), "profiletest/dark")
	defer sp.End()
	if _, ok := pprof.Label(ctx, "phase"); ok {
		t.Error("span attached a phase label with labelling off")
	}
	if sp.labelRestore != nil {
		t.Error("span kept a label-restore context with labelling off")
	}
	if got := WithRunLabel(ctx, "run-1"); got != ctx {
		t.Error("WithRunLabel did not pass ctx through with labelling off")
	}
	Disable()
	if ProfileLabelsOn() {
		t.Error("ProfileLabelsOn true while the layer is disabled")
	}
}
