package ledger

import (
	"os"
	"strings"
	"testing"
	"time"

	"github.com/repro/snntest/internal/obs"
)

// evt builds one run event at a fixed timestamp offset.
func evt(kind obs.EventKind, run, name string, mut func(*obs.Event)) obs.Event {
	e := obs.Event{
		Kind:  kind,
		Run:   run,
		Name:  name,
		Start: time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC),
	}
	if mut != nil {
		mut(&e)
	}
	return e
}

// campaignEvents synthesizes a small simulate campaign's event stream:
// 6 faults over a 10-step stimulus, 4 detected (steps 2, 2, 5, and one
// unknown-step detection), 2 undetected.
func campaignEvents(run string) []obs.Event {
	outcomes := []obs.FaultOutcome{
		{Index: 0, Kind: "neuron-dead", Layer: 0, Detected: true, DivStep: 2, SimSteps: 3, LayerSteps: 6},
		{Index: 1, Kind: "neuron-dead", Layer: 1, Detected: true, DivStep: 2, SimSteps: 3, LayerSteps: 3},
		{Index: 2, Kind: "synapse-stuck", Layer: 0, Detected: true, DivStep: 5, SimSteps: 6, LayerSteps: 12},
		{Index: 3, Kind: "synapse-stuck", Layer: 1, Detected: false, DivStep: -1, SimSteps: 10, LayerSteps: 10},
		{Index: 4, Kind: "neuron-saturated", Layer: 0, Detected: true, DivStep: -1, LayerSteps: 20},
		{Index: 5, Kind: "neuron-dead", Layer: 1, Detected: false, DivStep: -1, SimSteps: 10, LayerSteps: 10},
	}
	events := []obs.Event{
		evt(obs.KindRunStart, run, "campaign/simulate", func(e *obs.Event) {
			e.Total = len(outcomes)
			e.Attrs = map[string]any{"steps": 10, "layers": 2}
		}),
	}
	for i := range outcomes {
		f := outcomes[i]
		events = append(events, evt(obs.KindFault, run, "campaign/simulate", func(e *obs.Event) {
			e.Fault = &f
		}))
	}
	events = append(events, evt(obs.KindRunEnd, run, "campaign/simulate", func(e *obs.Event) {
		e.Done, e.Total = len(outcomes), len(outcomes)
	}))
	return events
}

// assertMonotone fails unless the curve's points are strictly
// increasing in step and nondecreasing in detections/coverage.
func assertMonotone(t *testing.T, c Curve) {
	t.Helper()
	for i := 1; i < len(c.Points); i++ {
		prev, cur := c.Points[i-1], c.Points[i]
		if cur.Step <= prev.Step {
			t.Errorf("points[%d].Step %d not increasing after %d", i, cur.Step, prev.Step)
		}
		if cur.Detected < prev.Detected || cur.Coverage < prev.Coverage {
			t.Errorf("curve not monotone at point %d: %+v after %+v", i, cur, prev)
		}
	}
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	run := obs.NewRunID("campaign/simulate")
	for _, e := range campaignEvents(run) {
		l.Emit(e)
	}
	// Non-run events and run events without a run id must not journal.
	l.Emit(obs.Event{Kind: obs.KindSpan, Name: "noise"})
	l.Emit(obs.Event{Kind: obs.KindFault, Name: "no-run-id"})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	runs, err := List(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || runs[0] != run {
		t.Fatalf("List = %v, want [%s]", runs, run)
	}
	tornBefore := obsLedgerTornLines.Value()
	entries, err := ReadRun(dir, run)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 8 {
		t.Fatalf("got %d entries, want 8 (start + 6 faults + end)", len(entries))
	}
	if got := obsLedgerTornLines.Value(); got != tornBefore {
		t.Errorf("clean journal bumped ledger_torn_lines_total by %d", got-tornBefore)
	}
	if entries[0].Kind != "run_start" || entries[7].Kind != "run_end" {
		t.Fatalf("lifecycle entries out of order: first %q last %q", entries[0].Kind, entries[7].Kind)
	}

	c, err := ReadCurve(dir, run)
	if err != nil {
		t.Fatal(err)
	}
	if c.Run != run || c.Phase != "campaign/simulate" || !c.Terminal {
		t.Errorf("curve header wrong: %+v", c)
	}
	if c.Total != 6 || c.Done != 6 || c.Detected != 4 {
		t.Errorf("tallies wrong: total %d done %d detected %d", c.Total, c.Done, c.Detected)
	}
	if c.Steps != 10 {
		t.Errorf("steps not recovered from run_start attrs: %d", c.Steps)
	}
	assertMonotone(t, c)
	// The last curve point must reconcile exactly with detected/total —
	// including the unknown-step (classify-style) detection.
	last := c.Points[len(c.Points)-1]
	if last.Detected != c.Detected {
		t.Errorf("last point detections %d != final detected %d", last.Detected, c.Detected)
	}
	if want := float64(c.Detected) / float64(c.Total); last.Coverage != want {
		t.Errorf("last point coverage %v != detected/total %v", last.Coverage, want)
	}
	// Expected shape: detections at steps 2 (2 faults), 5 (1), and the
	// unknown-step one on the final step 9.
	if len(c.Points) != 3 || c.Points[0].Step != 2 || c.Points[0].Detected != 2 ||
		c.Points[1].Step != 5 || c.Points[1].Detected != 3 ||
		c.Points[2].Step != 9 || c.Points[2].Detected != 4 {
		t.Errorf("unexpected curve points: %+v", c.Points)
	}

	// Latency groups: layer 0 has steps {2,5}, layer 1 has {2}; kinds
	// split as neuron-dead {2,2} and synapse-stuck {5}. Unknown-step
	// detections carry no latency sample.
	if g := c.LatencyByLayer["0"]; g == nil || g.Count != 2 || g.MinStep != 2 || g.MaxStep != 5 {
		t.Errorf("layer 0 latency wrong: %+v", g)
	}
	if g := c.LatencyByKind["neuron-dead"]; g == nil || g.Count != 2 || g.MeanStep != 2 {
		t.Errorf("neuron-dead latency wrong: %+v", g)
	}
	if c.LayerSteps != 61 {
		t.Errorf("layer steps %d, want 61", c.LayerSteps)
	}
	if c.LayerStepsByLayer["0"] != 38 || c.LayerStepsByLayer["1"] != 23 {
		t.Errorf("per-layer steps wrong: %+v", c.LayerStepsByLayer)
	}
}

// TestTruncatedJournal pins the SIGKILL-survival contract: a journal
// whose writer died mid-line rehydrates its longest valid prefix.
func TestTruncatedJournal(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	run := obs.NewRunID("campaign/simulate")
	events := campaignEvents(run)
	// Persist everything except run_end, then simulate a torn final
	// write: half a JSON object with no trailing newline.
	for _, e := range events[:len(events)-1] {
		l.Emit(e)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(journalPath(dir, run), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"kind":"run_end","run":"` + run + `","done":`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	before := obsLedgerTornLines.Value()
	entries, err := ReadRun(dir, run)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 7 {
		t.Fatalf("got %d entries, want 7 (torn run_end dropped)", len(entries))
	}
	if got := obsLedgerTornLines.Value() - before; got != 1 {
		t.Errorf("ledger_torn_lines_total advanced by %d, want 1", got)
	}
	c := FromEntries(entries)
	if c.Terminal {
		t.Error("torn journal must not read as terminal")
	}
	if c.Done != 6 || c.Detected != 4 {
		t.Errorf("prefix tallies wrong: done %d detected %d", c.Done, c.Detected)
	}
	assertMonotone(t, c)
}

// TestLedgerClosesRunFilesOnRunEnd: journals of completed runs release
// their descriptors eagerly.
func TestLedgerClosesRunFilesOnRunEnd(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	run := obs.NewRunID("generate")
	for _, e := range campaignEvents(run) {
		l.Emit(e)
	}
	l.mu.Lock()
	open := len(l.files)
	l.mu.Unlock()
	if open != 0 {
		t.Errorf("%d journals still open after run_end, want 0", open)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestListMissingDir: an unwritten ledger is an empty history.
func TestListMissingDir(t *testing.T) {
	runs, err := List(t.TempDir() + "/never-created")
	if err != nil || runs != nil {
		t.Fatalf("missing dir: runs=%v err=%v, want nil/nil", runs, err)
	}
}

// TestNewRunIDSafeAndUnique: ids must be filesystem-safe (the journal
// filename is <id>.jsonl) and unique across mints.
func TestNewRunIDSafeAndUnique(t *testing.T) {
	a := obs.NewRunID("campaign/simulate")
	b := obs.NewRunID("campaign/simulate")
	if a == b {
		t.Fatalf("consecutive run ids collide: %s", a)
	}
	if strings.ContainsAny(a, "/\\ :") {
		t.Errorf("run id not filesystem-safe: %q", a)
	}
	if !strings.HasPrefix(a, "campaign-simulate-") {
		t.Errorf("run id should carry the slugged phase: %q", a)
	}
}
