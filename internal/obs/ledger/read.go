package ledger

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// maxJournalLine bounds one journal line for the reader. Entries are
// small (a fault outcome or a metadata map), so 1 MiB is generous.
const maxJournalLine = 1 << 20

// List returns the run ids with a journal under dir, sorted
// lexicographically — which, for obs.NewRunID ids, is start-time order
// within each phase. A missing directory lists as empty: a ledger that
// was never written is just an empty history.
func List(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("ledger: list %s: %w", dir, err)
	}
	var runs []string
	for _, de := range entries {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".jsonl") {
			continue
		}
		runs = append(runs, strings.TrimSuffix(de.Name(), ".jsonl"))
	}
	sort.Strings(runs)
	return runs, nil
}

// ReadRun loads one run's journal entries in append order. The reader
// is tolerant of a truncated final line (the signature a SIGKILL'd
// writer leaves behind): unparseable lines are skipped, never fatal, so
// rehydration always recovers the longest valid prefix.
func ReadRun(dir, run string) ([]Entry, error) {
	f, err := os.Open(journalPath(dir, run))
	if err != nil {
		return nil, fmt.Errorf("ledger: read run %s: %w", run, err)
	}
	defer func() { _ = f.Close() }()

	var out []Entry
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), maxJournalLine)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e Entry
		if err := json.Unmarshal(line, &e); err != nil {
			// Torn or corrupt line — keep whatever parses after it too;
			// entries are self-describing so a lost line costs one event.
			// Counted so rehydration loss is visible in /metrics instead
			// of silently shortening coverage curves.
			obsLedgerTornLines.Add(1)
			continue
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		// An over-long (runaway) line aborts the scan; the valid prefix
		// already collected is still the best available history.
		obsLedgerTornLines.Add(1)
		return out, nil
	}
	return out, nil
}

// ReadCurve derives one run's coverage curve straight from its journal.
func ReadCurve(dir, run string) (Curve, error) {
	entries, err := ReadRun(dir, run)
	if err != nil {
		return Curve{}, err
	}
	if len(entries) == 0 {
		return Curve{}, fmt.Errorf("ledger: run %s: empty journal", run)
	}
	return FromEntries(entries), nil
}

// attrInt extracts an integer attribute from a (possibly JSON-decoded)
// metadata map; JSON numbers arrive as float64.
func attrInt(attrs map[string]any, key string) int {
	switch v := attrs[key].(type) {
	case int:
		return v
	case int64:
		return int(v)
	case float64:
		return int(v)
	default:
		return 0
	}
}
