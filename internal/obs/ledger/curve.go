package ledger

import (
	"sort"
	"strconv"

	"github.com/repro/snntest/internal/obs"
)

// latencyBuckets is the fixed bucket count of the detection-latency
// histograms; coarse on purpose so curve JSON stays small for any
// stimulus duration.
const latencyBuckets = 8

// Point is one sample of the coverage-over-time curve: after `Step`
// stimulus timesteps, `Detected` faults had already diverged from the
// golden response, i.e. a test of length Step+1 achieves `Coverage`.
type Point struct {
	Step     int     `json:"step"`
	Detected int     `json:"detected"`
	Coverage float64 `json:"coverage"`
}

// LatencyBucket is one bar of a detection-latency histogram: the count
// of faults whose first divergence fell in [Lo, Hi).
type LatencyBucket struct {
	Lo    int `json:"lo"`
	Hi    int `json:"hi"`
	Count int `json:"count"`
}

// LatencyStats summarises the first-divergence timesteps of one fault
// group (a layer or a fault kind).
type LatencyStats struct {
	// Count is the number of detections with a known divergence step.
	Count    int             `json:"count"`
	MinStep  int             `json:"min_step"`
	MaxStep  int             `json:"max_step"`
	MeanStep float64         `json:"mean_step"`
	Buckets  []LatencyBucket `json:"buckets,omitempty"`
}

// Curve is the derived flight-recorder artifact for one run: the
// paper's coverage-vs-test-time curve plus detection-latency breakdowns
// per layer and per fault kind. The curve is monotone nondecreasing by
// construction (cumulative detection counts over increasing timesteps)
// and its last point reconciles exactly with the campaign's final
// detected/total coverage.
type Curve struct {
	Run   string `json:"run"`
	Phase string `json:"phase"`
	// Total is the campaign's fault count; Done the completed count.
	Total int `json:"total"`
	Done  int `json:"done"`
	// Detected is the final detected (or critical) fault count.
	Detected int `json:"detected"`
	// Steps is the stimulus duration in timesteps, when recorded.
	Steps int `json:"steps,omitempty"`
	// Points is the coverage curve, strictly increasing in Step.
	Points []Point `json:"points"`
	// FinalCoverage is Detected/Total (0 when Total is 0).
	FinalCoverage float64 `json:"final_coverage"`
	// LatencyByLayer / LatencyByKind are detection-latency histograms
	// keyed by fault layer (decimal string) and fault kind.
	LatencyByLayer map[string]*LatencyStats `json:"latency_by_layer,omitempty"`
	LatencyByKind  map[string]*LatencyStats `json:"latency_by_kind,omitempty"`
	// LayerStepsByLayer sums simulated (layer, timestep) units per fault
	// site; LayerSteps is their total — the campaign's work counter.
	LayerStepsByLayer map[string]int64 `json:"layer_steps_by_layer,omitempty"`
	LayerSteps        int64            `json:"layer_steps,omitempty"`
	// Terminal marks a run whose run_end entry was recorded.
	Terminal bool `json:"terminal"`
}

// latencyGroup accumulates one group's divergence-step distribution.
// Memory is bounded by the stimulus duration (distinct steps), not the
// fault count.
type latencyGroup struct {
	count     int
	min, max  int
	sum       int64
	stepCount map[int]int
}

func (g *latencyGroup) add(step int) {
	if g.stepCount == nil {
		g.stepCount = make(map[int]int)
	}
	if g.count == 0 || step < g.min {
		g.min = step
	}
	if g.count == 0 || step > g.max {
		g.max = step
	}
	g.count++
	g.sum += int64(step)
	g.stepCount[step]++
}

// stats freezes the group into its served form, bucketing over [0, hi)
// where hi is the stimulus duration when known, else max+1.
func (g *latencyGroup) stats(steps int) *LatencyStats {
	s := &LatencyStats{Count: g.count, MinStep: g.min, MaxStep: g.max}
	if g.count == 0 {
		return s
	}
	s.MeanStep = float64(g.sum) / float64(g.count)
	hi := steps
	if hi <= g.max {
		hi = g.max + 1
	}
	n := latencyBuckets
	if n > hi {
		n = hi
	}
	width := (hi + n - 1) / n
	buckets := make([]LatencyBucket, n)
	for i := range buckets {
		buckets[i].Lo = i * width
		buckets[i].Hi = (i + 1) * width
		if buckets[i].Hi > hi {
			buckets[i].Hi = hi
		}
	}
	for step, c := range g.stepCount {
		i := step / width
		if i >= n {
			i = n - 1
		}
		buckets[i].Count += c
	}
	s.Buckets = buckets
	return s
}

// CurveBuilder folds a run's event stream into its coverage curve. The
// builder is incremental — the telemetry sink feeds it live fault
// events under its own lock — and its memory is bounded by the stimulus
// duration and group counts, never by the fault count. Not safe for
// concurrent use; callers serialize.
type CurveBuilder struct {
	run   string
	phase string
	total int
	steps int
	done  int

	detected   int
	unknown    int         // detections with no divergence step recorded
	detAtStep  map[int]int // detections per first-divergence step
	byLayer    map[string]*latencyGroup
	byKind     map[string]*latencyGroup
	layerSteps map[string]int64
	stepsTotal int64
	terminal   bool
}

// NewCurveBuilder starts a curve for one run.
func NewCurveBuilder(run, phase string) *CurveBuilder {
	return &CurveBuilder{
		run:        run,
		phase:      phase,
		detAtStep:  make(map[int]int),
		byLayer:    make(map[string]*latencyGroup),
		byKind:     make(map[string]*latencyGroup),
		layerSteps: make(map[string]int64),
	}
}

// Start records the run_start metadata: planned fault total and the
// stimulus duration in timesteps.
func (b *CurveBuilder) Start(total, steps int) {
	b.total = total
	b.steps = steps
}

// AddFault folds one fault outcome into the curve.
func (b *CurveBuilder) AddFault(f obs.FaultOutcome) {
	b.done++
	layer := strconv.Itoa(f.Layer)
	b.layerSteps[layer] += int64(f.LayerSteps)
	b.stepsTotal += int64(f.LayerSteps)
	if !f.Detected {
		return
	}
	b.detected++
	if f.DivStep < 0 {
		// Classification campaigns detect without a divergence step;
		// these land on the curve's final point so the endpoint still
		// reconciles with detected/total.
		b.unknown++
		return
	}
	b.detAtStep[f.DivStep]++
	g := b.byLayer[layer]
	if g == nil {
		g = &latencyGroup{}
		b.byLayer[layer] = g
	}
	g.add(f.DivStep)
	k := b.byKind[f.Kind]
	if k == nil {
		k = &latencyGroup{}
		b.byKind[f.Kind] = k
	}
	k.add(f.DivStep)
}

// End records the run_end tallies and marks the curve terminal.
func (b *CurveBuilder) End(done, total int) {
	if total > 0 {
		b.total = total
	}
	if done > b.done {
		b.done = done
	}
	b.terminal = true
}

// Done reports the completed-fault count folded so far.
func (b *CurveBuilder) Done() int { return b.done }

// Detected reports the detected-fault count folded so far.
func (b *CurveBuilder) Detected() int { return b.detected }

// Curve freezes the builder into its served form. Safe to call
// repeatedly (mid-run snapshots for the live endpoint).
func (b *CurveBuilder) Curve() Curve {
	c := Curve{
		Run:        b.run,
		Phase:      b.phase,
		Total:      b.total,
		Done:       b.done,
		Detected:   b.detected,
		Steps:      b.steps,
		LayerSteps: b.stepsTotal,
		Terminal:   b.terminal,
	}
	if b.total > 0 {
		c.FinalCoverage = float64(b.detected) / float64(b.total)
	}
	steps := make([]int, 0, len(b.detAtStep))
	for s := range b.detAtStep {
		steps = append(steps, s)
	}
	sort.Ints(steps)
	final := 0
	if b.steps > 0 {
		final = b.steps - 1
	}
	if n := len(steps); n > 0 && steps[n-1] > final {
		final = steps[n-1]
	}
	if b.unknown > 0 && (len(steps) == 0 || steps[len(steps)-1] < final) {
		steps = append(steps, final)
	}
	cum := 0
	c.Points = make([]Point, 0, len(steps))
	for _, s := range steps {
		cum += b.detAtStep[s]
		det := cum
		if s == final {
			det += b.unknown
		}
		p := Point{Step: s, Detected: det}
		if b.total > 0 {
			p.Coverage = float64(det) / float64(b.total)
		}
		c.Points = append(c.Points, p)
	}
	if len(b.byLayer) > 0 {
		c.LatencyByLayer = make(map[string]*LatencyStats, len(b.byLayer))
		for k, g := range b.byLayer {
			c.LatencyByLayer[k] = g.stats(b.steps)
		}
	}
	if len(b.byKind) > 0 {
		c.LatencyByKind = make(map[string]*LatencyStats, len(b.byKind))
		for k, g := range b.byKind {
			c.LatencyByKind[k] = g.stats(b.steps)
		}
	}
	if len(b.layerSteps) > 0 {
		c.LayerStepsByLayer = make(map[string]int64, len(b.layerSteps))
		for k, v := range b.layerSteps {
			c.LayerStepsByLayer[k] = v
		}
	}
	return c
}

// Apply folds one journal entry into the builder — the rehydration path
// shares the exact fold the live sink uses.
func (b *CurveBuilder) Apply(e Entry) {
	switch e.Kind {
	case string(obs.KindRunStart):
		if b.phase == "" {
			b.phase = e.Name
		}
		b.Start(e.Total, attrInt(e.Attrs, "steps"))
	case string(obs.KindFault):
		if e.Fault != nil {
			b.AddFault(*e.Fault)
		}
	case string(obs.KindRunEnd):
		b.End(e.Done, e.Total)
	}
}

// FromEntries derives a run's curve from its journal entries.
func FromEntries(entries []Entry) Curve {
	run, phase := "", ""
	for _, e := range entries {
		if run == "" {
			run = e.Run
		}
		if phase == "" && e.Kind == string(obs.KindRunStart) {
			phase = e.Name
		}
	}
	b := NewCurveBuilder(run, phase)
	for _, e := range entries {
		b.Apply(e)
	}
	return b.Curve()
}
