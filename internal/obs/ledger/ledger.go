// Package ledger is the run flight recorder: a persistent, replayable
// journal of every generation run and fault campaign. Each run appends
// structured entries (run start/end, per-fault first-divergence
// timestep and detection classification, layer-step counts) to its own
// JSONL file under a ledger directory, from which the package derives
// the paper's core artifact — the coverage-over-time curve — plus
// detection-latency histograms per layer and per fault kind.
//
// The recorder is an obs.Sink fed by the KindRunStart / KindFault /
// KindRunEnd event stream, which only flows when run events are enabled
// (obs.SetRunEvents — the -ledger and -serve CLI paths). Entries are
// written as one Write syscall per line on an O_APPEND file, so a
// journal killed mid-run (SIGKILL) is at worst truncated in its final
// line; the reader tolerates that, which is what lets the telemetry
// server rehydrate run history across process restarts.
//
// Like the rest of the obs layer the ledger is disabled by default and
// must stay invisible when off: nothing here is called from
// //snn:hotpath code, and event granularity is per-fault, never
// per-timestep.
package ledger

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/repro/snntest/internal/obs"
)

// Ledger-layer counters: runs opened, entries appended, write failures
// (journals are best-effort — a full disk must not abort a campaign),
// and torn lines skipped on the read path (the trace a SIGKILL'd writer
// leaves; a nonzero count on a clean shutdown means something worse).
var (
	obsLedgerRuns        = obs.NewCounter("ledger_runs_total")
	obsLedgerEntries     = obs.NewCounter("ledger_entries_total")
	obsLedgerWriteErrors = obs.NewCounter("ledger_write_errors_total")
	obsLedgerTornLines   = obs.NewCounter("ledger_torn_lines_total")
)

// init wires the package into the shared obs.CLI -ledger flag, the same
// import-for-effect idiom the telemetry server uses for -serve. The
// telemetry package imports this one, so every binary that already
// blank-imports telemetry gains -ledger with no further plumbing.
func init() {
	obs.RegisterLedgerHook(func(dir string) (obs.LedgerHandle, error) {
		l, err := Open(dir)
		if err != nil {
			return obs.LedgerHandle{}, err
		}
		return obs.LedgerHandle{Sink: l, Close: l.Close}, nil
	})
}

// Entry is one persisted journal line. It is the durable subset of an
// obs run event: kind, run correlation, timestamp and the kind-specific
// payload (fault outcome or run metadata/tallies).
type Entry struct {
	// Kind is the event kind: "run_start", "fault" or "run_end".
	Kind string `json:"kind"`
	// Run is the flight-recorder run id the entry belongs to.
	Run string `json:"run"`
	// Name is the activity phase (e.g. "campaign/simulate").
	Name string `json:"name,omitempty"`
	// Time is the event's wall-clock timestamp.
	Time time.Time `json:"time"`
	// Done/Total carry run_end tallies (and run_start's planned total).
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`
	// Attrs is the run metadata map (stimulus steps, layer count, …).
	Attrs map[string]any `json:"attrs,omitempty"`
	// Fault is the per-fault payload of a "fault" entry.
	Fault *obs.FaultOutcome `json:"fault,omitempty"`
}

// EntryFromEvent maps an obs run event onto its journal line, reporting
// whether the event is one the ledger persists at all (run lifecycle
// events carrying a run id). The telemetry sink shares it so the live
// /runs/{id}/events view and the on-disk journal agree line for line.
func EntryFromEvent(e obs.Event) (Entry, bool) {
	switch e.Kind {
	case obs.KindRunStart, obs.KindFault, obs.KindRunEnd:
	default:
		return Entry{}, false
	}
	if e.Run == "" {
		return Entry{}, false
	}
	return Entry{
		Kind:  string(e.Kind),
		Run:   e.Run,
		Name:  e.Name,
		Time:  e.Start,
		Done:  e.Done,
		Total: e.Total,
		Attrs: e.Attrs,
		Fault: e.Fault,
	}, true
}

// Ledger appends run events to per-run JSONL journal files under a
// directory. It implements obs.Sink; Emit is safe for concurrent use
// from campaign workers.
type Ledger struct {
	dir string

	mu    sync.Mutex
	files map[string]*os.File // open journals keyed by run id
	err   error               // first write error, surfaced at Close
}

// Open creates (if needed) the ledger directory and returns a recorder
// appending under it.
func Open(dir string) (*Ledger, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ledger: open %s: %w", dir, err)
	}
	return &Ledger{dir: dir, files: make(map[string]*os.File)}, nil
}

// Dir returns the ledger's root directory.
func (l *Ledger) Dir() string { return l.dir }

// journalPath is the journal file for one run id. Run ids minted by
// obs.NewRunID are filesystem-safe by construction.
func journalPath(dir, run string) string {
	return filepath.Join(dir, run+".jsonl")
}

// Emit persists one run event. Non-run events (spans, counters,
// progress) pass through untouched — the ledger records run lifecycle
// at per-fault granularity only. Write failures are recorded (counter +
// first error kept for Close) but never propagate: a full disk must not
// abort the campaign being recorded.
func (l *Ledger) Emit(e obs.Event) {
	entry, ok := EntryFromEvent(e)
	if !ok {
		return
	}
	line, err := json.Marshal(entry)
	if err != nil {
		l.noteErr(err)
		return
	}
	line = append(line, '\n')

	l.mu.Lock()
	defer l.mu.Unlock()
	f, ok := l.files[entry.Run]
	if !ok {
		f, err = os.OpenFile(journalPath(l.dir, entry.Run), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			l.noteErrLocked(err)
			return
		}
		l.files[entry.Run] = f
		obsLedgerRuns.Add(1)
	}
	// One Write call per line on an O_APPEND descriptor: a crash between
	// entries leaves at worst one truncated final line, which the reader
	// skips.
	if _, err := f.Write(line); err != nil {
		l.noteErrLocked(err)
		return
	}
	obsLedgerEntries.Add(1)
	if entry.Kind == string(obs.KindRunEnd) {
		// The run is over; release its descriptor eagerly so a long-lived
		// process (the campaign-as-a-service direction) cannot accumulate
		// open files across runs.
		if err := f.Close(); err != nil {
			l.noteErrLocked(err)
		}
		delete(l.files, entry.Run)
	}
}

// noteErr records a write-path error under the lock.
func (l *Ledger) noteErr(err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.noteErrLocked(err)
}

// noteErrLocked records a write-path error; callers hold l.mu.
func (l *Ledger) noteErrLocked(err error) {
	obsLedgerWriteErrors.Add(1)
	if l.err == nil {
		l.err = fmt.Errorf("ledger: %w", err)
	}
}

// Close flushes and closes every still-open journal (runs interrupted
// before their run_end) and returns the first write error seen.
func (l *Ledger) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for run, f := range l.files {
		if err := f.Close(); err != nil {
			l.noteErrLocked(err)
		}
		delete(l.files, run)
	}
	return l.err
}
