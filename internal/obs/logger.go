package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
)

// LogLevel orders the shared CLI logging levels.
type LogLevel int

const (
	// LevelQuiet suppresses status output (errors still print).
	LevelQuiet LogLevel = iota
	// LevelInfo is the default: one-line status messages.
	LevelInfo
	// LevelDebug adds per-iteration / per-phase detail (the -v flag).
	LevelDebug
)

// Logger is the leveled stderr logger shared by every CLI, replacing the
// scattered fmt.Fprintf status prints. A nil *Logger is a valid no-op
// receiver, so libraries can accept one unconditionally. All methods are
// safe for concurrent use.
type Logger struct {
	mu    sync.Mutex
	w     io.Writer
	level LogLevel
}

// NewLogger returns a logger writing to w at the given level.
func NewLogger(w io.Writer, level LogLevel) *Logger {
	return &Logger{w: w, level: level}
}

// Enabled reports whether messages at the given level are emitted.
func (l *Logger) Enabled(level LogLevel) bool {
	if l == nil || l.w == nil {
		return false
	}
	return l.level >= level
}

// logf writes one newline-terminated line if level is enabled.
func (l *Logger) logf(level LogLevel, format string, args ...any) {
	if !l.Enabled(level) {
		return
	}
	msg := fmt.Sprintf(format, args...)
	if !strings.HasSuffix(msg, "\n") {
		msg += "\n"
	}
	l.mu.Lock()
	// Best-effort: a failing status write must not abort the run.
	_, _ = io.WriteString(l.w, msg)
	l.mu.Unlock()
}

// Infof logs a status line at LevelInfo.
func (l *Logger) Infof(format string, args ...any) { l.logf(LevelInfo, format, args...) }

// Debugf logs a detail line at LevelDebug (-v).
func (l *Logger) Debugf(format string, args ...any) { l.logf(LevelDebug, format, args...) }

// Errorf logs an error line regardless of level (quiet only silences
// status, never failures).
func (l *Logger) Errorf(format string, args ...any) {
	if l == nil || l.w == nil {
		return
	}
	l.logf(l.level, format, args...) // l.level >= l.level always holds
}

// Writer returns an io.Writer that forwards writes as log output at the
// given level, or nil when that level is disabled — the adapter for
// libraries that take an optional `Log io.Writer` (core.Config.Log,
// train.Config.Log): pass obs's writer and the nil case keeps their
// logging off.
func (l *Logger) Writer(level LogLevel) io.Writer {
	if !l.Enabled(level) {
		return nil
	}
	return &levelWriter{l: l, level: level}
}

// levelWriter adapts Logger to io.Writer.
type levelWriter struct {
	l     *Logger
	level LogLevel
}

func (w *levelWriter) Write(p []byte) (int, error) {
	w.l.logf(w.level, "%s", strings.TrimRight(string(p), "\n"))
	return len(p), nil
}
