// Package obs is the repo's stdlib-only observability layer: hierarchical
// wall-clock spans, lock-free named counters, and pluggable event sinks
// (a JSONL trace writer, an in-memory recorder for tests, and a
// human-readable end-of-run tree summary), plus the leveled Logger every
// CLI shares and the pprof/flag wiring of the CLI bundle.
//
// The layer is disabled by default and must stay invisible when off: the
// paper's headline claim is a cost model, so the instrumented hot paths
// (snn simulation, fault campaigns, the generation loop) guard every
// probe behind the single-branch On() check and the golden bit-identity
// suites run with the layer dark. Enable() flips one atomic; sinks are
// registered with SetSinks/AddSink and receive completed-span, progress
// and counter-snapshot events.
//
// Span taxonomy, counter names and the overhead-measurement protocol are
// documented in DESIGN.md §6.
package obs

import (
	"context"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// enabled is the global switch. All instrumentation call sites check
// On() first, so a disabled build pays one atomic load and one branch.
var enabled atomic.Bool

// Enable turns the observability layer on. Instrumented code starts
// emitting spans to the registered sinks and bumping counters.
func Enable() { enabled.Store(true) }

// Disable turns the layer off again. Sinks and counters are left as they
// are; see SetSinks and ResetCounters for cleanup.
func Disable() { enabled.Store(false) }

// On reports whether the layer is enabled — the hot-path guard.
func On() bool { return enabled.Load() }

// runEvents is the flight-recorder switch layered on top of the main
// enable gate: per-run lifecycle events (run_start / fault / run_end)
// and run-correlated progress are only emitted when both are on, so a
// plain -trace run keeps its historical JSONL content and the fault
// campaigns pay per-fault event costs only when a ledger or the
// telemetry server actually consumes them.
var runEvents atomic.Bool

// SetRunEvents toggles per-run flight-recorder events (the -ledger and
// -serve paths turn them on; CLI teardown restores the dark default).
func SetRunEvents(on bool) { runEvents.Store(on) }

// RunEventsOn reports whether per-run flight-recorder events should be
// emitted: the layer is enabled and a run-event consumer is registered.
func RunEventsOn() bool { return enabled.Load() && runEvents.Load() }

// runSeq allocates process-unique run sequence numbers.
var runSeq atomic.Uint64

// NewRunID mints a unique, filesystem-safe run identifier for the named
// activity (e.g. "campaign/simulate"): the slugged phase, a UTC
// timestamp, the process id and a process-local sequence number. The
// timestamp+pid pair keeps ids from different process lifetimes (and
// thus ledger journal files) from colliding, and makes rehydrated run
// histories sort naturally by start time.
func NewRunID(phase string) string {
	slug := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			return r
		case r >= 'A' && r <= 'Z':
			return r + ('a' - 'A')
		default:
			return '-'
		}
	}, phase)
	return fmt.Sprintf("%s-%s-%d-%d",
		slug, time.Now().UTC().Format("20060102t150405"), os.Getpid(), runSeq.Add(1))
}

// spanIDs allocates process-unique span identifiers.
var spanIDs atomic.Uint64

// spanKey carries the current span through a context for parenting.
type spanKey struct{}

// Span is one timed region of a run. Spans nest through contexts: a span
// started from a context that carries another span records it as its
// parent, which works across goroutines because contexts are immutable.
// A Span belongs to the goroutine that started it until End; the nil
// Span (returned when the layer is off) is a valid no-op receiver for
// every method.
type Span struct {
	name   string
	id     uint64
	parent uint64
	start  time.Time // wall clock + monotonic (time.Now semantics)
	attrs  map[string]any
	// labelRestore is the pre-span label context when pprof profile
	// labels are on (see profile.go); End reverts the goroutine to it.
	labelRestore context.Context
}

// Start begins a span named name under the span carried by ctx, if any,
// and returns a derived context carrying the new span. When the layer is
// disabled it returns ctx unchanged and a nil span whose methods all
// no-op, so call sites need no second guard.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	if !On() {
		return ctx, nil
	}
	sp := &Span{name: name, id: spanIDs.Add(1), start: time.Now()}
	if parent, ok := ctx.Value(spanKey{}).(*Span); ok && parent != nil {
		sp.parent = parent.id
	}
	ctx = context.WithValue(ctx, spanKey{}, sp)
	if ProfileLabelsOn() {
		ctx = attachPhaseLabel(ctx, sp)
	}
	return ctx, sp
}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// SetAttr attaches a key/value attribute to the span; values should be
// JSON-encodable (strings, numbers, bools). Attributes must be set by
// the owning goroutine before End.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]any, 4)
	}
	s.attrs[key] = value
}

// End completes the span and emits it to the registered sinks. Duration
// is measured on the monotonic clock; the start timestamp is wall-clock.
// End on a nil span is a no-op, and calling it more than once emits the
// span more than once (call sites pair every Start with exactly one End;
// the spanend lint analyzer enforces the pairing statically).
func (s *Span) End() {
	if s == nil {
		return
	}
	restorePhaseLabel(s)
	Emit(Event{
		Kind:   KindSpan,
		Name:   s.name,
		ID:     s.id,
		Parent: s.parent,
		Start:  s.start,
		DurUS:  time.Since(s.start).Microseconds(),
		Attrs:  s.attrs,
	})
}

// Name returns the span name ("" for the nil span).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// EventKind discriminates the event stream.
type EventKind string

const (
	// KindSpan is a completed span (emitted at End).
	KindSpan EventKind = "span"
	// KindProgress is a campaign progress update.
	KindProgress EventKind = "progress"
	// KindCounters is a snapshot of every registered counter.
	KindCounters EventKind = "counters"
	// KindRunStart opens one flight-recorder run (a fault campaign or a
	// generation loop); Run carries the run id, Name the phase, Total the
	// run's work-unit count and Attrs the run metadata (stimulus steps,
	// layer count, …).
	KindRunStart EventKind = "run_start"
	// KindFault is one fault's campaign outcome (detection flag,
	// first-divergence timestep, simulated layer-steps); the Fault field
	// carries the payload.
	KindFault EventKind = "fault"
	// KindRunEnd closes a flight-recorder run with its final tallies.
	KindRunEnd EventKind = "run_end"
)

// FaultOutcome is the per-fault payload of a KindFault event: everything
// the coverage-over-time curve and the detection-latency histograms
// need, at per-fault (never per-timestep) granularity.
type FaultOutcome struct {
	// Index is the fault's position in the campaign's fault list.
	Index int `json:"index"`
	// Kind is the fault kind string (e.g. "neuron-dead").
	Kind string `json:"kind"`
	// Layer is the fault site — the first layer the fault can perturb.
	Layer int `json:"layer"`
	// Detected reports the campaign's detection (or criticality) flag.
	Detected bool `json:"detected,omitempty"`
	// DivStep is the first stimulus timestep whose output diverged from
	// the golden response, or -1 when undetected or unknown (criticality
	// campaigns do not track divergence steps).
	DivStep int `json:"div_step"`
	// SimSteps is the number of stimulus timesteps simulated for this
	// fault (the early-exit point of the incremental campaign).
	SimSteps int `json:"sim_steps,omitempty"`
	// LayerSteps is the number of (layer, timestep) units simulated.
	LayerSteps int `json:"layer_steps,omitempty"`
}

// Event is the unit every sink consumes. Exactly which fields are set
// depends on Kind; the zero values are omitted from JSONL output.
type Event struct {
	Kind   EventKind `json:"kind"`
	Name   string    `json:"name,omitempty"`
	ID     uint64    `json:"id,omitempty"`
	Parent uint64    `json:"parent,omitempty"`
	// Run correlates flight-recorder events (run_start/fault/run_end and
	// run-scoped progress) with one run; empty outside run recording.
	Run string `json:"run,omitempty"`
	// Start is the event's wall-clock timestamp (a span's start time).
	Start time.Time `json:"start"`
	// DurUS is the span duration in microseconds (monotonic clock).
	DurUS int64 `json:"dur_us,omitempty"`
	// Done/Total carry progress updates.
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`
	// Attrs are span attributes (and run_start/run_end metadata).
	Attrs map[string]any `json:"attrs,omitempty"`
	// Counters is the snapshot payload of a KindCounters event.
	Counters map[string]int64 `json:"counters,omitempty"`
	// Fault is the payload of a KindFault event.
	Fault *FaultOutcome `json:"fault,omitempty"`
}

// Sink consumes observability events. Emit may be called from multiple
// goroutines at once; implementations must be safe for concurrent use.
type Sink interface {
	Emit(Event)
}

var (
	sinkMu sync.RWMutex
	sinks  []Sink
)

// SetSinks replaces the registered sink set (nil/empty clears it).
func SetSinks(s ...Sink) {
	sinkMu.Lock()
	sinks = append([]Sink(nil), s...)
	sinkMu.Unlock()
}

// AddSink appends one sink to the registered set.
func AddSink(s Sink) {
	sinkMu.Lock()
	sinks = append(sinks, s)
	sinkMu.Unlock()
}

// Emit fans an event out to every registered sink. It is a no-op when
// the layer is disabled, so instrumentation may call it unguarded on
// cold paths.
func Emit(e Event) {
	if !On() {
		return
	}
	sinkMu.RLock()
	for _, s := range sinks {
		s.Emit(e)
	}
	sinkMu.RUnlock()
}

// Progress emits a KindProgress event — the obs-layer form of the old
// ad-hoc campaign progress callbacks, which are now just one more sink
// for these updates (see fault.CampaignOptions.Progress).
func Progress(name string, done, total int) {
	ProgressRun("", name, done, total)
}

// ProgressRun emits a KindProgress event correlated with a flight-
// recorder run (run may be empty for uncorrelated progress).
func ProgressRun(run, name string, done, total int) {
	Emit(Event{Kind: KindProgress, Name: name, Run: run, Done: done, Total: total, Start: time.Now()})
}

// EmitRunStart opens a flight-recorder run. No-op unless run events are
// on (RunEventsOn), so instrumented call sites stay dark by default.
func EmitRunStart(run, name string, total int, attrs map[string]any) {
	if !RunEventsOn() {
		return
	}
	Emit(Event{Kind: KindRunStart, Name: name, Run: run, Total: total, Attrs: attrs, Start: time.Now()})
}

// EmitFault records one fault's campaign outcome against a run. No-op
// unless run events are on. Called at per-fault granularity only —
// never from //snn:hotpath timestep loops.
func EmitFault(run, name string, f FaultOutcome) {
	if !RunEventsOn() {
		return
	}
	out := f
	Emit(Event{Kind: KindFault, Name: name, Run: run, Fault: &out, Start: time.Now()})
}

// EmitRunEnd closes a flight-recorder run with its final tallies. No-op
// unless run events are on.
func EmitRunEnd(run, name string, done, total int, attrs map[string]any) {
	if !RunEventsOn() {
		return
	}
	Emit(Event{Kind: KindRunEnd, Name: name, Run: run, Done: done, Total: total, Attrs: attrs, Start: time.Now()})
}

// EmitCounterSnapshot emits a KindCounters event holding the current
// value of every registered counter; CLIs emit one right before closing
// their trace so the JSONL artifact is self-contained.
func EmitCounterSnapshot() {
	Emit(Event{Kind: KindCounters, Start: time.Now(), Counters: Snapshot()})
}
