package obs

import (
	"context"
	"sync"
	"testing"
)

// withObs enables the layer with a fresh recorder for the test and
// restores the dark default afterwards.
func withObs(t *testing.T) *Recorder {
	t.Helper()
	rec := &Recorder{}
	SetSinks(rec)
	ResetCounters()
	Enable()
	t.Cleanup(func() {
		Disable()
		SetSinks()
		ResetCounters()
	})
	return rec
}

func TestStartDisabledIsNoop(t *testing.T) {
	if On() {
		t.Fatal("layer enabled at test start")
	}
	ctx := context.Background()
	ctx2, sp := Start(ctx, "x")
	if sp != nil {
		t.Fatalf("disabled Start returned non-nil span %v", sp)
	}
	if ctx2 != ctx {
		t.Fatal("disabled Start derived a new context")
	}
	// Every method must be nil-safe.
	sp.SetAttr("k", 1)
	sp.End()
	if got := sp.Name(); got != "" {
		t.Fatalf("nil span name = %q", got)
	}
}

func TestSpanParenting(t *testing.T) {
	rec := withObs(t)
	ctx, root := Start(context.Background(), "root")
	cctx, child := Start(ctx, "child")
	_, grand := Start(cctx, "grand")
	grand.SetAttr("k", 42)
	grand.End()
	child.End()
	root.End()

	spans := rec.Spans()
	if len(spans) != 3 {
		t.Fatalf("recorded %d spans, want 3", len(spans))
	}
	// Emission order is completion order: grand, child, root.
	g, c, r := spans[0], spans[1], spans[2]
	if g.Name != "grand" || c.Name != "child" || r.Name != "root" {
		t.Fatalf("unexpected emission order: %s, %s, %s", g.Name, c.Name, r.Name)
	}
	if r.Parent != 0 {
		t.Errorf("root has parent %d", r.Parent)
	}
	if c.Parent != r.ID {
		t.Errorf("child parent = %d, want root id %d", c.Parent, r.ID)
	}
	if g.Parent != c.ID {
		t.Errorf("grand parent = %d, want child id %d", g.Parent, c.ID)
	}
	if g.Attrs["k"] != 42 {
		t.Errorf("grand attrs = %v", g.Attrs)
	}
	if g.Start.IsZero() || g.DurUS < 0 {
		t.Errorf("bad timing: start %v dur %d", g.Start, g.DurUS)
	}
}

// TestSpanParentingAcrossGoroutines pins the goroutine-safety contract:
// worker spans started from a shared parent context all parent to the
// same span, concurrently.
func TestSpanParentingAcrossGoroutines(t *testing.T) {
	rec := withObs(t)
	ctx, parent := Start(context.Background(), "parent")
	const n = 16
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, sp := Start(ctx, "worker")
			sp.End()
		}()
	}
	wg.Wait()
	parent.End()

	workers := rec.SpansNamed("worker")
	if len(workers) != n {
		t.Fatalf("recorded %d worker spans, want %d", len(workers), n)
	}
	parentID := rec.SpansNamed("parent")[0].ID
	ids := make(map[uint64]bool)
	for _, w := range workers {
		if w.Parent != parentID {
			t.Errorf("worker parent = %d, want %d", w.Parent, parentID)
		}
		if ids[w.ID] {
			t.Errorf("duplicate span id %d", w.ID)
		}
		ids[w.ID] = true
	}
}

func TestFromContext(t *testing.T) {
	withObs(t)
	if got := FromContext(context.Background()); got != nil {
		t.Fatalf("empty context carries span %v", got)
	}
	ctx, sp := Start(context.Background(), "x")
	defer sp.End()
	if got := FromContext(ctx); got != sp {
		t.Fatalf("FromContext = %v, want %v", got, sp)
	}
}

func TestProgressAndCounterSnapshotEvents(t *testing.T) {
	rec := withObs(t)
	c := NewCounter("obs_test.progress_counter")
	c.Add(7)
	Progress("campaign", 5, 10)
	EmitCounterSnapshot()
	events := rec.Events()
	if len(events) != 2 {
		t.Fatalf("recorded %d events, want 2", len(events))
	}
	p := events[0]
	if p.Kind != KindProgress || p.Name != "campaign" || p.Done != 5 || p.Total != 10 {
		t.Errorf("bad progress event %+v", p)
	}
	s := events[1]
	if s.Kind != KindCounters || s.Counters["obs_test.progress_counter"] != 7 {
		t.Errorf("bad counters event %+v", s)
	}
}

func TestEmitDisabledReachesNoSink(t *testing.T) {
	rec := &Recorder{}
	SetSinks(rec)
	t.Cleanup(func() { SetSinks() })
	Emit(Event{Kind: KindSpan, Name: "dark"})
	Progress("dark", 1, 2)
	if got := rec.Events(); len(got) != 0 {
		t.Fatalf("disabled layer emitted %d events", len(got))
	}
}
