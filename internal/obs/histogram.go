package obs

import (
	"sync/atomic"
	"time"
)

// TimingBounds are the fixed upper bucket bounds, in seconds, shared by
// every TimingHistogram: decades from 1µs to 10s. A fixed global layout
// keeps Observe allocation-free and lock-free (one atomic add per
// bucket hit) and makes every exposed histogram directly comparable.
// Durations above the last bound land in the implicit +Inf bucket.
var TimingBounds = [...]float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10}

// TimingHistogram is a lock-free fixed-bucket latency distribution:
// per-bucket atomic hit counts plus an atomic total count and nanosecond
// sum. Observe costs one bounds scan (8 float compares) and three
// atomic adds, so hot paths guard it behind On() exactly like counters:
//
//	if obs.On() {
//		forwardHist.Observe(time.Since(t0))
//	}
//
// The zero value is unusable; obtain histograms from NewTimingHistogram.
type TimingHistogram struct {
	name     string
	buckets  [len(TimingBounds) + 1]atomic.Int64 // last slot is +Inf
	count    atomic.Int64
	sumNanos atomic.Int64
}

// Name returns the histogram's registered name.
func (h *TimingHistogram) Name() string { return h.name }

// Observe records one duration. Negative durations are clamped to zero
// (the monotonic clock cannot go backwards, but a defensive clamp keeps
// the sum monotone under caller bugs).
//
//snn:hotpath
func (h *TimingHistogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	sec := d.Seconds()
	i := 0
	for i < len(TimingBounds) && sec > TimingBounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNanos.Add(d.Nanoseconds())
}

// Count returns the number of observations.
func (h *TimingHistogram) Count() int64 { return h.count.Load() }

// Sum returns the total observed time in seconds.
func (h *TimingHistogram) Sum() float64 {
	return float64(h.sumNanos.Load()) / 1e9
}

// reset zeroes the histogram. Called by ResetCounters under the
// registry lock.
func (h *TimingHistogram) reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sumNanos.Store(0)
}

// HistogramSnapshot is one histogram's state at a point in time.
// Counts are per-bucket (not cumulative); Counts[len(Bounds)] is the
// +Inf bucket. The /metrics exposition accumulates them into the
// cumulative le-labelled series Prometheus expects.
type HistogramSnapshot struct {
	Name   string
	Bounds []float64 // upper bounds in seconds, excluding +Inf
	Counts []int64   // len(Bounds)+1 entries; last is +Inf
	Count  int64
	Sum    float64 // seconds
}

// NewTimingHistogram registers (or retrieves) the timing histogram with
// the given name. Idempotent like NewCounter.
func NewTimingHistogram(name string) *TimingHistogram {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.h == nil {
		registry.h = make(map[string]*TimingHistogram)
	}
	if h, ok := registry.h[name]; ok {
		return h
	}
	h := &TimingHistogram{name: name}
	registry.h[name] = h
	return h
}

// HistogramSnapshots returns every registered timing histogram's state,
// sorted by name. Per-bucket counts are read once each under the
// registry lock; like Snapshot, the result is per-value atomic but a
// concurrent Observe may land between the bucket reads and the
// count/sum reads, so Count can briefly exceed the bucket total by the
// number of in-flight observations. The exposition layer therefore
// derives the cumulative count from the buckets, keeping the series
// internally consistent.
func HistogramSnapshots() []HistogramSnapshot {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	out := make([]HistogramSnapshot, 0, len(registry.h))
	for _, name := range sortedNamesLocked(registry.h) {
		h := registry.h[name]
		s := HistogramSnapshot{
			Name:   name,
			Bounds: TimingBounds[:],
			Counts: make([]int64, len(h.buckets)),
			Sum:    h.Sum(),
		}
		for i := range h.buckets {
			s.Counts[i] = h.buckets[i].Load()
			s.Count += s.Counts[i]
		}
		out = append(out, s)
	}
	return out
}
