package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestAppendTrajectory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_trajectory.json")

	r1 := NewTrajectoryRecord("bench:campaign", map[string]float64{"savings_x": 3.5})
	if r1.Source != "bench:campaign" || r1.Time == "" || r1.GitRev == "" || r1.GoVersion == "" {
		t.Fatalf("record not fully stamped: %+v", r1)
	}
	if err := AppendTrajectory(path, r1); err != nil {
		t.Fatal(err)
	}
	if err := AppendTrajectory(path, NewTrajectoryRecord("benchreport", map[string]float64{"faults": 120})); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var records []TrajectoryRecord
	if err := json.Unmarshal(data, &records); err != nil {
		t.Fatalf("trajectory is not a JSON array: %v", err)
	}
	if len(records) != 2 {
		t.Fatalf("got %d records, want 2", len(records))
	}
	if records[0].Source != "bench:campaign" || records[0].Metrics["savings_x"] != 3.5 {
		t.Errorf("first record mangled: %+v", records[0])
	}
	if records[1].Source != "benchreport" || records[1].Metrics["faults"] != 120 {
		t.Errorf("second record mangled: %+v", records[1])
	}
}

func TestAppendTrajectoryCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_trajectory.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := AppendTrajectory(path, NewTrajectoryRecord("x", nil))
	if err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("corrupt history must refuse the append, got err=%v", err)
	}
	// The corrupt file must be left untouched for forensics.
	data, _ := os.ReadFile(path)
	if string(data) != "{not json" {
		t.Errorf("corrupt trajectory was overwritten: %q", data)
	}
}
