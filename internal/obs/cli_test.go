package obs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestCLIStartTraceLifecycle runs the full CLI wiring: trace + profiles
// on, one span and one counter recorded, stop flushes everything and
// restores the dark default.
func TestCLIStartTraceLifecycle(t *testing.T) {
	dir := t.TempDir()
	c := CLI{
		Trace:      filepath.Join(dir, "trace.jsonl"),
		CPUProfile: filepath.Join(dir, "cpu.pb"),
		MemProfile: filepath.Join(dir, "mem.pb"),
	}
	var stderr bytes.Buffer
	log, stop, err := c.Start(&stderr)
	if err != nil {
		t.Fatal(err)
	}
	if !On() {
		t.Fatal("-trace did not enable the layer")
	}
	log.Infof("working")
	_, sp := Start(context.Background(), "unit")
	NewCounter("obs_test.cli").Add(11)
	sp.End()
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	if On() {
		t.Error("stop left the layer enabled")
	}
	if got := NewCounter("obs_test.cli").Value(); got != 0 {
		t.Errorf("stop left counter at %d", got)
	}

	data, err := os.ReadFile(c.Trace)
	if err != nil {
		t.Fatal(err)
	}
	var sawSpan, sawCounters bool
	sc := bufio.NewScanner(bytes.NewReader(data))
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("trace line %q: %v", sc.Text(), err)
		}
		switch {
		case e.Kind == KindSpan && e.Name == "unit":
			sawSpan = true
		case e.Kind == KindCounters:
			sawCounters = true
			if e.Counters["obs_test.cli"] != 11 {
				t.Errorf("snapshot counter = %d, want 11", e.Counters["obs_test.cli"])
			}
		}
	}
	if !sawSpan || !sawCounters {
		t.Errorf("trace missing span(%v)/counters(%v):\n%s", sawSpan, sawCounters, data)
	}

	for _, p := range []string{c.CPUProfile, c.MemProfile} {
		st, err := os.Stat(p)
		if err != nil {
			t.Errorf("profile %s: %v", p, err)
		} else if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
	out := stderr.String()
	if !strings.Contains(out, "span summary:") || !strings.Contains(out, "unit") {
		t.Errorf("stderr missing span summary:\n%s", out)
	}
	if !strings.Contains(out, "obs_test.cli") {
		t.Errorf("stderr missing counter table:\n%s", out)
	}
}

// TestCLIStartProfileDir pins the unified -profile-dir contract: the
// layer and pprof labelling come on, the cpu/heap pair lands at stable
// tool-derived names (no timestamps), an explicit legacy flag overrides
// its half of the pair, and stop restores the dark default.
func TestCLIStartProfileDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "profiles")
	fs := flag.NewFlagSet("snntestgen", flag.ContinueOnError)
	c := CLI{}
	c.Register(fs)
	if err := fs.Parse([]string{"-profile-dir", dir, "-quiet"}); err != nil {
		t.Fatal(err)
	}
	_, stop, err := c.Start(os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	if !On() {
		t.Fatal("-profile-dir did not enable the layer")
	}
	if !ProfileLabelsOn() {
		t.Fatal("-profile-dir did not turn pprof labelling on")
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if On() || ProfileLabelsOn() {
		t.Error("stop left the layer or labelling enabled")
	}
	for _, name := range []string{"snntestgen.cpu.pprof", "snntestgen.heap.pprof"} {
		p := filepath.Join(dir, name)
		st, err := os.Stat(p)
		if err != nil {
			t.Errorf("profile %s: %v", p, err)
		} else if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}

	// Explicit legacy flag wins over the derived cpu name; the heap half
	// still comes from the directory.
	cpu := filepath.Join(dir, "explicit.pb")
	c2 := CLI{Quiet: true, ProfileDir: dir, CPUProfile: cpu}
	_, stop2, err := c2.Start(os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	if err := stop2(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(cpu); err != nil {
		t.Errorf("-cpuprofile alias ignored under -profile-dir: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "profile.heap.pprof")); err != nil {
		t.Errorf("unregistered CLI fallback heap name: %v", err)
	}
}

// TestCLIStartStallValidation pins -stall-timeout's dependency on both
// -serve and -ledger.
func TestCLIStartStallValidation(t *testing.T) {
	c := CLI{Stall: time.Second, Serve: ":0"}
	if _, _, err := c.Start(os.Stderr); err == nil {
		t.Fatal("want error for -stall-timeout without -ledger")
	}
	c = CLI{Stall: -time.Second}
	if _, _, err := c.Start(os.Stderr); err == nil {
		t.Fatal("want error for negative -stall-timeout")
	}
}

// TestCLIStartQuietSuppressesSummary keeps -quiet silent even with a
// trace enabled.
func TestCLIStartQuietSuppressesSummary(t *testing.T) {
	c := CLI{Quiet: true, Trace: filepath.Join(t.TempDir(), "trace.jsonl")}
	var stderr bytes.Buffer
	_, stop, err := c.Start(&stderr)
	if err != nil {
		t.Fatal(err)
	}
	_, sp := Start(context.Background(), "unit")
	sp.End()
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if stderr.Len() != 0 {
		t.Errorf("-quiet run wrote to stderr:\n%s", stderr.String())
	}
}

func TestCLIStartForceEnable(t *testing.T) {
	c := CLI{ForceEnable: true, Quiet: true}
	_, stop, err := c.Start(os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	if !On() {
		t.Fatal("ForceEnable did not enable the layer")
	}
	NewCounter("obs_test.force").Add(1)
	if Snapshot()["obs_test.force"] != 1 {
		t.Error("counter not live under ForceEnable")
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if On() {
		t.Error("stop left the layer enabled")
	}
}

func TestCLIStartBadTracePath(t *testing.T) {
	c := CLI{Trace: filepath.Join(t.TempDir(), "missing-dir", "t.jsonl")}
	if _, _, err := c.Start(os.Stderr); err == nil {
		t.Fatal("want error for uncreatable trace file")
	}
	if On() {
		t.Error("failed Start left the layer enabled")
	}
}

func TestManifestRoundTrip(t *testing.T) {
	ResetCounters()
	t.Cleanup(ResetCounters)
	NewCounter("obs_test.manifest").Add(4)
	m := NewManifest(map[string]string{"scale": "tiny", "seed": "7"})
	if m.GitRev == "" || m.Time == "" || m.GoVersion == "" {
		t.Fatalf("incomplete manifest %+v", m)
	}
	if m.Counters["obs_test.manifest"] != 4 {
		t.Fatalf("manifest counters = %v", m.Counters)
	}
	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := WriteManifest(path, m); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got Manifest
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("manifest is not valid JSON: %v\n%s", err, data)
	}
	if got.Config["scale"] != "tiny" || got.Counters["obs_test.manifest"] != 4 {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
}
