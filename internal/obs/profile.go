package obs

import (
	"context"
	"runtime/pprof"
	"sync/atomic"
)

// profileLabels is the CPU-attribution switch layered on top of the
// main enable gate, exactly like the run-events gate: when on, every
// span additionally tags its goroutine with a runtime/pprof `phase`
// label (and run-correlated code paths add a `run` label), so any CPU
// profile taken while the process runs — the -cpuprofile/-profile-dir
// flags or the telemetry server's /debug/pprof/profile endpoint —
// attributes its samples to the span taxonomy sample by sample.
//
// The gate exists because label maintenance, while cheap (one small
// allocation plus a goroutine-label store per span), is not free, and
// the repo's contract is that dark runs pay exactly one predicted
// branch per probe. obs.CLI turns it on for the profiling and -serve
// paths and restores the dark default on teardown.
var profileLabels atomic.Bool

// SetProfileLabels toggles pprof phase/run labelling of spans (the
// -cpuprofile, -profile-dir and -serve CLI paths turn it on).
func SetProfileLabels(on bool) { profileLabels.Store(on) }

// ProfileLabelsOn reports whether spans should maintain pprof labels:
// the layer is enabled and a profile consumer asked for attribution.
func ProfileLabelsOn() bool { return enabled.Load() && profileLabels.Load() }

// attachPhaseLabel tags the calling goroutine (and the returned
// context) with the span's name as the pprof `phase` label. The
// pre-span context is kept on the span so End can restore the parent
// label set — labels nest with spans: a sample taken inside
// "generate/restart" carries phase=generate/restart, and after that
// span ends the goroutine reverts to the enclosing span's phase.
//
// Labels propagate two ways, both load-bearing for worker pools:
// through the returned context (obs.Start merges the parent's label
// set, so a span started on a worker goroutine from a labelled context
// inherits the full set), and through goroutine inheritance (a
// goroutine spawned while its parent holds labels starts with them, so
// campaign workers forked under the campaign span are attributed even
// before their first span).
func attachPhaseLabel(ctx context.Context, sp *Span) context.Context {
	sp.labelRestore = ctx
	lctx := pprof.WithLabels(ctx, pprof.Labels("phase", sp.name))
	pprof.SetGoroutineLabels(lctx)
	return lctx
}

// restorePhaseLabel reverts the goroutine to the label set it carried
// before the span started. No-op for spans that never attached labels
// (labelling disabled, or enabled mid-span).
func restorePhaseLabel(sp *Span) {
	if sp.labelRestore != nil {
		pprof.SetGoroutineLabels(sp.labelRestore)
	}
}

// WithRunLabel tags the calling goroutine (and the returned context)
// with a flight-recorder run id as the pprof `run` label, so one CPU
// profile covering several runs (a long-lived campaign service) can be
// sliced per run. It composes with the phase label — both survive on
// the samples — and is reverted together with the enclosing span's
// phase label at that span's End. No-op (returning ctx unchanged) when
// labelling is off or run is empty.
func WithRunLabel(ctx context.Context, run string) context.Context {
	if run == "" || !ProfileLabelsOn() {
		return ctx
	}
	lctx := pprof.WithLabels(ctx, pprof.Labels("run", run))
	pprof.SetGoroutineLabels(lctx)
	return lctx
}
