package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a lock-free named metric with monotonic-sum semantics. Add
// is a single atomic operation, safe from any number of goroutines. Hot
// paths guard updates behind On() so the disabled layer costs one
// branch, never an atomic write:
//
//	if obs.On() {
//		layerStepCounter.Add(int64(n))
//	}
//
// Counter names follow the subsystem_noun_unit convention enforced by
// the metricname lint analyzer (lowercase, underscore-separated, at
// least two segments) so every name is a valid Prometheus metric name.
type Counter struct {
	name string
	v    atomic.Int64
}

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Add increments the counter by n.
//
//snn:hotpath
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Set stores an absolute value. Prefer Gauge for level-style metrics;
// Set on a Counter exists for registry reset and test seeding.
func (c *Counter) Set(n int64) { c.v.Store(n) }

// Value returns the current value.
//
//snn:hotpath
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a lock-free named level metric: a value that goes up and
// down (in-flight workers, current iteration, live coverage counts).
// The zero value is unusable; obtain gauges from NewGauge. All methods
// are single atomic operations.
type Gauge struct {
	name string
	v    atomic.Int64
}

// Name returns the gauge's registered name.
func (g *Gauge) Name() string { return g.name }

// Set stores the gauge's absolute value.
//
//snn:hotpath
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by delta (negative to decrease) and returns the
// new value, so inflight-style gauges can pair Add(1)/Add(-1).
//
//snn:hotpath
func (g *Gauge) Add(delta int64) int64 { return g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// registry is the global name → metric table for counters, gauges and
// timing histograms. Registration happens at package init time and from
// CLI setup, never on hot paths, so a plain mutex-protected map set is
// enough; reads and writes of the metrics themselves stay lock-free
// through the returned handles.
var registry struct {
	mu sync.Mutex
	c  map[string]*Counter
	g  map[string]*Gauge
	h  map[string]*TimingHistogram
}

// NewCounter registers (or retrieves) the counter with the given name.
// It is idempotent: every caller asking for the same name shares one
// counter, so packages can hold handles from var initializers without
// coordinating.
func NewCounter(name string) *Counter {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.c == nil {
		registry.c = make(map[string]*Counter)
	}
	if c, ok := registry.c[name]; ok {
		return c
	}
	c := &Counter{name: name}
	registry.c[name] = c
	return c
}

// NewGauge registers (or retrieves) the gauge with the given name.
// Idempotent like NewCounter; counters and gauges live in separate
// namespaces within the registry, but sharing one name across kinds is
// a registration bug (the /metrics exposition would emit two series of
// different types under one name) — keep names globally unique.
func NewGauge(name string) *Gauge {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.g == nil {
		registry.g = make(map[string]*Gauge)
	}
	if g, ok := registry.g[name]; ok {
		return g
	}
	g := &Gauge{name: name}
	registry.g[name] = g
	return g
}

// Snapshot returns a copy of every registered counter's current value.
//
// Consistency contract: the snapshot is taken under the registry lock,
// reading each counter exactly once in sorted name order. Because
// ResetCounters holds the same lock, a snapshot can never observe a
// half-reset registry — it sees every counter's value either entirely
// before or entirely after any concurrent reset. Concurrent Add calls
// are lock-free, so the snapshot is per-counter atomic (no torn
// values) but not a cross-counter linearization point: an Add landing
// while the snapshot runs may be included for one counter and not
// another. That is the strongest guarantee available without stopping
// the hot paths, and it is exactly what the trace artifacts need.
func Snapshot() map[string]int64 {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	out := make(map[string]int64, len(registry.c))
	for _, name := range sortedNamesLocked(registry.c) {
		out[name] = registry.c[name].Value()
	}
	return out
}

// MetricValue is one named metric reading, used by the ordered
// snapshot accessors.
type MetricValue struct {
	Name  string
	Value int64
}

// SnapshotOrdered returns every registered counter's value as a slice
// sorted by name — the deterministic accessor behind the /metrics
// exposition and the counter table. Same consistency contract as
// Snapshot.
func SnapshotOrdered() []MetricValue {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	return orderedValuesLocked(registry.c, (*Counter).Value)
}

// GaugeSnapshot returns every registered gauge's value sorted by name,
// under the same consistency contract as Snapshot.
func GaugeSnapshot() []MetricValue {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	return orderedValuesLocked(registry.g, (*Gauge).Value)
}

// orderedValuesLocked reads the metric map into a name-sorted slice.
// Callers hold registry.mu.
func orderedValuesLocked[M any](m map[string]*M, value func(*M) int64) []MetricValue {
	out := make([]MetricValue, 0, len(m))
	for _, name := range sortedNamesLocked(m) {
		out = append(out, MetricValue{Name: name, Value: value(m[name])})
	}
	return out
}

// sortedNamesLocked returns the map's keys sorted. Callers hold
// registry.mu.
func sortedNamesLocked[M any](m map[string]*M) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// CounterNames returns the registered counter names in sorted order.
func CounterNames() []string {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	return sortedNamesLocked(registry.c)
}

// ResetCounters zeroes every registered metric — counters, gauges and
// timing histograms (handles stay valid). Tests and CLI teardown use it
// to keep runs hermetic. It holds the registry lock for the duration,
// so it is serialized against Snapshot and the other snapshot
// accessors (see Snapshot's consistency contract).
func ResetCounters() {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	for _, c := range registry.c {
		c.Set(0)
	}
	for _, g := range registry.g {
		g.Set(0)
	}
	for _, h := range registry.h {
		h.reset()
	}
}
