package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a lock-free named metric. Add gives it counter semantics,
// Set gauge semantics; both are single atomic operations, safe from any
// number of goroutines. Hot paths guard updates behind On() so the
// disabled layer costs one branch, never an atomic write:
//
//	if obs.On() {
//		layerStepCounter.Add(int64(n))
//	}
type Counter struct {
	name string
	v    atomic.Int64
}

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Set stores an absolute value (gauge semantics).
func (c *Counter) Set(n int64) { c.v.Store(n) }

// Value returns the current value.
func (c *Counter) Value() int64 { return c.v.Load() }

// registry is the global name → counter table. Registration happens at
// package init time and from CLI setup, never on hot paths, so a plain
// mutex-protected map is enough; reads of the counters themselves stay
// lock-free through the returned handles.
var registry struct {
	mu sync.Mutex
	m  map[string]*Counter
}

// NewCounter registers (or retrieves) the counter with the given name.
// It is idempotent: every caller asking for the same name shares one
// counter, so packages can hold handles from var initializers without
// coordinating.
func NewCounter(name string) *Counter {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.m == nil {
		registry.m = make(map[string]*Counter)
	}
	if c, ok := registry.m[name]; ok {
		return c
	}
	c := &Counter{name: name}
	registry.m[name] = c
	return c
}

// Snapshot returns a copy of every registered counter's current value.
func Snapshot() map[string]int64 {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	out := make(map[string]int64, len(registry.m))
	for name, c := range registry.m {
		out[name] = c.Value()
	}
	return out
}

// CounterNames returns the registered names in sorted order.
func CounterNames() []string {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	names := make([]string, 0, len(registry.m))
	for name := range registry.m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ResetCounters zeroes every registered counter (handles stay valid).
// Tests and CLI teardown use it to keep runs hermetic.
func ResetCounters() {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	for _, c := range registry.m {
		c.Set(0)
	}
}
