package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// JSONLSink writes every event as one JSON object per line — the
// machine-readable trace artifact behind the CLIs' -trace flag. It is
// safe for concurrent Emit; the first encode error is retained and all
// later writes become no-ops (trace output must never fail a run).
type JSONLSink struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

// NewJSONLSink wraps w in a JSONL event writer.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w)}
}

// Emit writes one event line.
func (s *JSONLSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(e)
}

// Err returns the first write error, if any.
func (s *JSONLSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Recorder retains every event in memory — the test sink, and the data
// source for the end-of-run tree summary.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// Emit appends the event.
func (r *Recorder) Emit(e Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// Events returns a copy of everything recorded so far.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Spans returns the recorded span events, in emission (completion) order.
func (r *Recorder) Spans() []Event {
	var out []Event
	for _, e := range r.Events() {
		if e.Kind == KindSpan {
			out = append(out, e)
		}
	}
	return out
}

// SpansNamed returns the recorded spans with the given name.
func (r *Recorder) SpansNamed(name string) []Event {
	var out []Event
	for _, e := range r.Spans() {
		if e.Name == name {
			out = append(out, e)
		}
	}
	return out
}

// Reset discards everything recorded so far.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.events = nil
	r.mu.Unlock()
}

// WriteTree renders the span events as an indented tree sorted by start
// time, each line showing the span name, duration and attributes — the
// human-readable end-of-run summary. Orphan spans (parent never emitted,
// e.g. when tracing was enabled mid-run) render as roots.
func WriteTree(w io.Writer, events []Event) error {
	byID := make(map[uint64]Event)
	children := make(map[uint64][]uint64)
	var roots []uint64
	for _, e := range events {
		if e.Kind != KindSpan {
			continue
		}
		byID[e.ID] = e
	}
	for id, e := range byID {
		if _, ok := byID[e.Parent]; e.Parent != 0 && ok {
			children[e.Parent] = append(children[e.Parent], id)
		} else {
			roots = append(roots, id)
		}
	}
	byStart := func(ids []uint64) {
		sort.Slice(ids, func(i, j int) bool {
			a, b := byID[ids[i]], byID[ids[j]]
			if !a.Start.Equal(b.Start) {
				return a.Start.Before(b.Start)
			}
			return a.ID < b.ID
		})
	}
	byStart(roots)
	for _, ids := range children {
		byStart(ids)
	}
	if len(byID) == 0 {
		_, err := fmt.Fprintln(w, "span summary: no spans recorded")
		return err
	}
	if _, err := fmt.Fprintln(w, "span summary:"); err != nil {
		return err
	}
	var walk func(id uint64, depth int) error
	walk = func(id uint64, depth int) error {
		e := byID[id]
		if _, err := fmt.Fprintf(w, "  %s%-*s %9.3fms%s\n",
			strings.Repeat("  ", depth), 36-2*depth, e.Name,
			float64(e.DurUS)/1e3, formatAttrs(e.Attrs)); err != nil {
			return err
		}
		for _, c := range children[id] {
			if err := walk(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	for _, id := range roots {
		if err := walk(id, 0); err != nil {
			return err
		}
	}
	return nil
}

// formatAttrs renders span attributes as "  k=v" pairs in key order.
func formatAttrs(attrs map[string]any) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "  %s=%v", k, attrs[k])
	}
	return b.String()
}

// WriteCounterTable renders a counter snapshot as an aligned name/value
// table in name order, skipping zero-valued counters.
func WriteCounterTable(w io.Writer, snapshot map[string]int64) error {
	names := make([]string, 0, len(snapshot))
	width := 0
	for name, v := range snapshot {
		if v == 0 {
			continue
		}
		names = append(names, name)
		if len(name) > width {
			width = len(name)
		}
	}
	if len(names) == 0 {
		return nil
	}
	sort.Strings(names)
	if _, err := fmt.Fprintln(w, "counters:"); err != nil {
		return err
	}
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "  %-*s %d\n", width, name, snapshot[name]); err != nil {
			return err
		}
	}
	return nil
}
