package obs

import (
	"sort"
	"sync"
	"testing"
	"time"
)

// TestGaugeSemantics covers Set/Add/Value and idempotent registration.
func TestGaugeSemantics(t *testing.T) {
	t.Cleanup(ResetCounters)
	g := NewGauge("test_gauge_semantics_units")
	if NewGauge("test_gauge_semantics_units") != g {
		t.Error("NewGauge is not idempotent")
	}
	g.Set(5)
	if v := g.Add(-2); v != 3 {
		t.Errorf("Add returned %d, want 3", v)
	}
	if g.Value() != 3 {
		t.Errorf("Value = %d, want 3", g.Value())
	}
	found := false
	for _, mv := range GaugeSnapshot() {
		if mv.Name == g.Name() && mv.Value == 3 {
			found = true
		}
	}
	if !found {
		t.Error("GaugeSnapshot does not contain the registered gauge")
	}
}

// TestTimingHistogramBuckets pins the bucket layout: each observation
// lands in the first bucket whose bound is >= the duration, and the
// count/sum aggregates match.
func TestTimingHistogramBuckets(t *testing.T) {
	t.Cleanup(ResetCounters)
	h := NewTimingHistogram("test_histogram_bucket_seconds")
	if NewTimingHistogram("test_histogram_bucket_seconds") != h {
		t.Error("NewTimingHistogram is not idempotent")
	}
	obsv := []time.Duration{
		500 * time.Nanosecond, // <= 1µs  → bucket 0
		time.Microsecond,      // == 1µs  → bucket 0 (le semantics)
		time.Millisecond,      // bucket 3
		time.Second,           // bucket 6
		time.Minute,           // above every bound → +Inf bucket
		-time.Second,          // clamped to 0 → bucket 0
	}
	for _, d := range obsv {
		h.Observe(d)
	}
	var snap HistogramSnapshot
	for _, s := range HistogramSnapshots() {
		if s.Name == h.Name() {
			snap = s
		}
	}
	if snap.Name == "" {
		t.Fatal("histogram missing from HistogramSnapshots")
	}
	want := make([]int64, len(TimingBounds)+1)
	want[0] = 3
	want[3] = 1
	want[6] = 1
	want[len(TimingBounds)] = 1
	for i, w := range want {
		if snap.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, snap.Counts[i], w)
		}
	}
	if snap.Count != int64(len(obsv)) {
		t.Errorf("Count = %d, want %d", snap.Count, len(obsv))
	}
	wantSum := (500*time.Nanosecond + time.Microsecond + time.Millisecond +
		time.Second + time.Minute).Seconds()
	if diff := snap.Sum - wantSum; diff < -1e-9 || diff > 1e-9 {
		t.Errorf("Sum = %v, want %v", snap.Sum, wantSum)
	}
}

// TestSnapshotOrderedSorted pins the deterministic-order contract of
// the ordered snapshot accessors.
func TestSnapshotOrderedSorted(t *testing.T) {
	t.Cleanup(ResetCounters)
	NewCounter("test_order_zebra_total").Add(1)
	NewCounter("test_order_alpha_total").Add(1)
	NewGauge("test_order_gauge_b_units").Set(1)
	NewGauge("test_order_gauge_a_units").Set(1)
	check := func(name string, vals []MetricValue) {
		if !sort.SliceIsSorted(vals, func(i, j int) bool { return vals[i].Name < vals[j].Name }) {
			t.Errorf("%s is not sorted by name: %v", name, vals)
		}
	}
	check("SnapshotOrdered", SnapshotOrdered())
	check("GaugeSnapshot", GaugeSnapshot())
}

// TestRegistryResetSnapshotRace hammers Snapshot, Add, gauge Set,
// histogram Observe and ResetCounters from concurrent goroutines. Under
// -race this is the data-race gate for the registry; the assertions pin
// the consistency contract — a snapshot taken under the registry lock
// can never observe a half-reset view, so after the final reset every
// metric reads zero, and no intermediate snapshot holds a value that
// was never written.
func TestRegistryResetSnapshotRace(t *testing.T) {
	t.Cleanup(ResetCounters)
	c := NewCounter("test_race_hammer_total")
	g := NewGauge("test_race_hammer_units")
	h := NewTimingHistogram("test_race_hammer_seconds")
	const (
		writers = 4
		rounds  = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				c.Add(1)
				g.Set(int64(i))
				h.Observe(time.Duration(i))
			}
		}()
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds/10; i++ {
			ResetCounters()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds/10; i++ {
			snap := Snapshot()
			if v := snap[c.Name()]; v < 0 || v > writers*rounds {
				t.Errorf("snapshot counter value %d out of range [0, %d]", v, writers*rounds)
			}
			for _, hs := range HistogramSnapshots() {
				if hs.Name != h.Name() {
					continue
				}
				var total int64
				for _, b := range hs.Counts {
					total += b
				}
				if total != hs.Count {
					t.Errorf("histogram snapshot bucket total %d != count %d", total, hs.Count)
				}
			}
		}
	}()
	wg.Wait()
	ResetCounters()
	if v := c.Value(); v != 0 {
		t.Errorf("counter after final reset = %d, want 0", v)
	}
	if v := g.Value(); v != 0 {
		t.Errorf("gauge after final reset = %d, want 0", v)
	}
	if h.Count() != 0 || h.Sum() != 0 {
		t.Errorf("histogram after final reset: count=%d sum=%v, want zeros", h.Count(), h.Sum())
	}
}
