// Package metrics computes the evaluation quantities of the paper's
// result section that are not already owned by the fault package:
// neuron-activation maps (Fig. 8), per-class output spike-count-difference
// distributions of detected faults (Fig. 9), and duration conversions.
package metrics

import (
	"fmt"
	"math"

	"github.com/repro/snntest/internal/core"
	"github.com/repro/snntest/internal/fault"
	"github.com/repro/snntest/internal/snn"
	"github.com/repro/snntest/internal/tensor"
)

// ActivationMap describes which neurons a stimulus activates, per layer —
// the data behind the paper's Fig. 8 color maps.
type ActivationMap struct {
	LayerNames []string
	// Activated[ℓ][i] reports whether neuron i of layer ℓ fired ≥ 1 spike.
	Activated [][]bool
	// Fractions[ℓ] is the activated fraction of layer ℓ.
	Fractions []float64
	// Overall is the network-wide activated fraction.
	Overall float64
}

// Activation runs the network on the stimulus and maps the activated
// neurons.
func Activation(net *snn.Network, stimulus *tensor.Tensor) (ActivationMap, error) {
	if _, err := net.CheckInput(stimulus); err != nil {
		return ActivationMap{}, fmt.Errorf("metrics: Activation: %w", err)
	}
	rec := net.Run(stimulus)
	m := ActivationMap{
		LayerNames: make([]string, len(net.Layers)),
		Activated:  make([][]bool, len(net.Layers)),
		Fractions:  make([]float64, len(net.Layers)),
	}
	total, act := 0, 0
	for li, l := range net.Layers {
		m.LayerNames[li] = l.Name
		counts := rec.Counts(li)
		flags := make([]bool, l.NumNeurons())
		layerAct := 0
		for i, c := range counts.Data() {
			if c >= 1 {
				flags[i] = true
				layerAct++
			}
		}
		m.Activated[li] = flags
		m.Fractions[li] = float64(layerAct) / float64(l.NumNeurons())
		total += l.NumNeurons()
		act += layerAct
	}
	m.Overall = float64(act) / float64(total)
	return m, nil
}

// ClassDiffs holds, for each output class, the distribution of
// |Δ spike count| over the detected faults — Fig. 9's superimposed
// per-class distributions.
type ClassDiffs struct {
	// Diffs[c] lists the absolute output-count differences of class c
	// over all detected faults.
	Diffs [][]float64
}

// OutputSpikeDiffs simulates every fault against the stimulus and
// collects, for the detected ones, the per-class absolute spike-count
// difference with respect to the fault-free response.
func OutputSpikeDiffs(net *snn.Network, faults []fault.Fault, stimulus *tensor.Tensor) (ClassDiffs, error) {
	if _, err := net.CheckInput(stimulus); err != nil {
		return ClassDiffs{}, fmt.Errorf("metrics: OutputSpikeDiffs: %w", err)
	}
	if err := fault.Validate(net, faults); err != nil {
		return ClassDiffs{}, err
	}
	goldenRec := net.Run(stimulus)
	goldenCounts := goldenRec.OutputCounts()
	classes := goldenCounts.Len()
	cd := ClassDiffs{Diffs: make([][]float64, classes)}
	inj := fault.NewInjector(net)
	for _, f := range faults {
		revert := inj.Apply(f)
		// Golden-trace replay: only the layers at and above the fault
		// site need re-simulation (see fault.Simulate).
		rec, _ := inj.Scratch().RunFrom(f.StartLayer(), goldenRec, stimulus)
		counts := rec.OutputCounts()
		revert()
		detected := false
		diffs := make([]float64, classes)
		for c := 0; c < classes; c++ {
			diffs[c] = math.Abs(counts.At(c) - goldenCounts.At(c))
			if diffs[c] > 0 {
				detected = true
			}
		}
		if !detected {
			continue
		}
		for c := 0; c < classes; c++ {
			cd.Diffs[c] = append(cd.Diffs[c], diffs[c])
		}
	}
	return cd, nil
}

// Histogram bins values into nbins equal-width bins over [0, max]; it
// returns the bin counts and the bin width. Values beyond max land in the
// last bin, values below 0 in the first; NaN values are dropped. A
// non-positive nbins or a non-positive, NaN or infinite max yields all
// zero counts and width 0.
func Histogram(values []float64, nbins int, max float64) (counts []int, width float64) {
	if nbins < 0 {
		nbins = 0
	}
	counts = make([]int, nbins)
	if nbins == 0 || max <= 0 || math.IsNaN(max) || math.IsInf(max, 0) {
		return counts, 0
	}
	width = max / float64(nbins)
	for _, v := range values {
		// Bin edges are resolved with float comparisons before the int
		// conversion: converting NaN or an out-of-range quotient to int is
		// implementation-specific in Go, not merely wrong.
		var b int
		switch {
		case math.IsNaN(v):
			continue
		case v <= 0:
			b = 0
		case v >= max:
			b = nbins - 1
		default:
			b = int(v / width)
			if b >= nbins {
				b = nbins - 1
			}
		}
		counts[b]++
	}
	return counts, width
}

// Percentile returns the p-quantile of values using the nearest-rank
// method; p is clamped to [0, 1]. It returns 0 for empty input and NaN
// for NaN p.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	if math.IsNaN(p) {
		return math.NaN()
	}
	sorted := append([]float64(nil), values...)
	// insertion sort: the inputs here are small distributions
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	// Clamp before the arithmetic: int(math.Ceil(±Inf)) is
	// implementation-specific.
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// GenerationSummary aggregates a generation trace: how many chunks were
// produced, how much duration growth was needed, and — under the
// multi-restart engine — which restarts actually won, the provenance
// Table III's runtime rows are read against.
type GenerationSummary struct {
	Iterations int
	// TotalGrowths is the summed duration-growth count across iterations.
	TotalGrowths int
	// MeanNewActivated is the average newly activated neuron count per
	// iteration (0 for an empty trace).
	MeanNewActivated float64
	// RestartsRun is the summed number of restarts evaluated.
	RestartsRun int
	// WinnersByRestart[r] counts iterations won by restart index r.
	WinnersByRestart map[int]int
}

// SummarizeGeneration folds a per-iteration trace into a GenerationSummary.
func SummarizeGeneration(trace []core.IterationStats) GenerationSummary {
	s := GenerationSummary{WinnersByRestart: make(map[int]int)}
	totalNew := 0
	for _, it := range trace {
		s.Iterations++
		s.TotalGrowths += it.Growths
		s.RestartsRun += it.RestartsRun
		s.WinnersByRestart[it.Restart]++
		totalNew += it.NewActivated
	}
	if s.Iterations > 0 {
		s.MeanNewActivated = float64(totalNew) / float64(s.Iterations)
	}
	return s
}

// DurationSeconds converts simulation steps to seconds for a network's
// step period.
func DurationSeconds(net *snn.Network, steps int) float64 {
	return float64(steps) * net.StepMS / 1000
}

// WilsonInterval returns the 95% Wilson score interval for a coverage
// estimate of k detections out of n sampled faults — the right way to
// report fault coverage measured on a strided subsample of the universe.
func WilsonInterval(k, n int) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	const z = 1.959964 // 97.5th percentile of the standard normal
	p := float64(k) / float64(n)
	nf := float64(n)
	denom := 1 + z*z/nf
	center := (p + z*z/(2*nf)) / denom
	half := z * math.Sqrt(p*(1-p)/nf+z*z/(4*nf*nf)) / denom
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}
