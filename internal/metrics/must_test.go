package metrics

// must unwraps a (value, error) constructor result in test fixtures,
// panicking on error — fixture construction failures are test bugs.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}
