package metrics

import (
	"math"
	"math/rand"
	"testing"

	"github.com/repro/snntest/internal/core"
	"github.com/repro/snntest/internal/fault"
	"github.com/repro/snntest/internal/snn"
	"github.com/repro/snntest/internal/tensor"
)

func toyNet(seed int64) *snn.Network {
	rng := rand.New(rand.NewSource(seed))
	l1 := must(snn.NewLayer("h", must(snn.NewDenseProj(tensor.RandNormal(rng, 0.25, 0.5, 5, 4))), snn.DefaultLIF()))
	l2 := must(snn.NewLayer("out", must(snn.NewDenseProj(tensor.RandNormal(rng, 0.25, 0.5, 3, 5))), snn.DefaultLIF()))
	return must(snn.NewNetwork("toy", []int{4}, 1.0, l1, l2))
}

func TestActivationMap(t *testing.T) {
	net := toyNet(1)
	stim := tensor.RandBernoulli(rand.New(rand.NewSource(2)), 0.6, 15, 4)
	m := must(Activation(net, stim))
	if len(m.Activated) != 2 || len(m.Fractions) != 2 {
		t.Fatal("one entry per layer expected")
	}
	rec := net.Run(stim)
	for li := range m.Activated {
		counts := rec.Counts(li)
		for i, a := range m.Activated[li] {
			if a != (counts.At(i) >= 1) {
				t.Errorf("layer %d neuron %d: flag %v, count %g", li, i, a, counts.At(i))
			}
		}
	}
	// Zero stimulus activates nothing.
	z := must(Activation(net, net.ZeroInput(5)))
	if z.Overall != 0 {
		t.Errorf("zero stimulus overall activation = %g", z.Overall)
	}
}

func TestOutputSpikeDiffsDetectedOnly(t *testing.T) {
	net := toyNet(3)
	stim := tensor.RandBernoulli(rand.New(rand.NewSource(4)), 0.6, 15, 4)
	faults := []fault.Fault{
		{Kind: fault.NeuronSaturated, Layer: 1, Neuron: 0}, // detectable: floods output 0
	}
	cd := must(OutputSpikeDiffs(net, faults, stim))
	if len(cd.Diffs) != 3 {
		t.Fatalf("classes = %d, want 3", len(cd.Diffs))
	}
	if len(cd.Diffs[0]) != 1 {
		t.Fatalf("expected exactly one detected fault, got %d", len(cd.Diffs[0]))
	}
	if cd.Diffs[0][0] <= 0 {
		t.Error("saturated output neuron must change its class count")
	}
	// All class lists stay parallel (one entry per detected fault).
	if len(cd.Diffs[1]) != 1 || len(cd.Diffs[2]) != 1 {
		t.Error("per-class lists must be parallel")
	}
}

func TestOutputSpikeDiffsSkipsUndetected(t *testing.T) {
	net := toyNet(5)
	// Zero stimulus: a hidden dead-neuron fault is invisible.
	faults := []fault.Fault{{Kind: fault.NeuronDead, Layer: 0, Neuron: 0}}
	cd := must(OutputSpikeDiffs(net, faults, net.ZeroInput(10)))
	if len(cd.Diffs[0]) != 0 {
		t.Error("undetected fault must not contribute to the distribution")
	}
}

func TestHistogram(t *testing.T) {
	counts, width := Histogram([]float64{0.5, 1.5, 2.5, 9.5, 100}, 5, 10)
	if width != 2 {
		t.Errorf("bin width = %g, want 2", width)
	}
	want := []int{2, 1, 0, 0, 2} // 100 clamps into the last bin
	for i, c := range want {
		if counts[i] != c {
			t.Errorf("bin %d = %d, want %d", i, counts[i], c)
		}
	}
	if c, _ := Histogram(nil, 0, 10); len(c) != 0 {
		t.Error("zero bins should return empty")
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{5, 1, 3, 2, 4}
	if p := Percentile(vals, 0.5); p != 3 {
		t.Errorf("median = %g, want 3", p)
	}
	if p := Percentile(vals, 1.0); p != 5 {
		t.Errorf("max = %g, want 5", p)
	}
	if p := Percentile(vals, 0.0); p != 1 {
		t.Errorf("p0 = %g, want 1 (nearest rank clamps)", p)
	}
	if Percentile(nil, 0.5) != 0 {
		t.Error("empty percentile should be 0")
	}
	// Input must not be mutated.
	if vals[0] != 5 {
		t.Error("Percentile sorted the caller's slice")
	}
}

func TestDurationSeconds(t *testing.T) {
	net := toyNet(6)
	if s := DurationSeconds(net, 2500); math.Abs(s-2.5) > 1e-12 {
		t.Errorf("2500 steps at 1 ms = %g s, want 2.5", s)
	}
}

func TestWilsonInterval(t *testing.T) {
	lo, hi := WilsonInterval(0, 0)
	if lo != 0 || hi != 1 {
		t.Error("empty sample must be maximally uncertain")
	}
	lo, hi = WilsonInterval(50, 100)
	if !(lo < 0.5 && 0.5 < hi) {
		t.Errorf("interval [%g,%g] must bracket the point estimate", lo, hi)
	}
	if hi-lo > 0.25 {
		t.Errorf("interval too wide for n=100: [%g,%g]", lo, hi)
	}
	// More samples → tighter interval.
	lo2, hi2 := WilsonInterval(500, 1000)
	if hi2-lo2 >= hi-lo {
		t.Error("interval must shrink with sample size")
	}
	// Boundary cases stay within [0,1].
	lo, hi = WilsonInterval(100, 100)
	if hi != 1 || lo < 0.9 {
		t.Errorf("perfect coverage interval [%g,%g]", lo, hi)
	}
}

func TestSummarizeGeneration(t *testing.T) {
	if s := SummarizeGeneration(nil); s.Iterations != 0 || s.MeanNewActivated != 0 {
		t.Errorf("empty trace summary = %+v", s)
	}
	trace := []core.IterationStats{
		{Iteration: 0, Growths: 1, NewActivated: 10, Restart: 2, RestartsRun: 4},
		{Iteration: 1, Growths: 0, NewActivated: 4, Restart: 0, RestartsRun: 4},
		{Iteration: 2, Growths: 2, NewActivated: 1, Restart: 2, RestartsRun: 4},
	}
	s := SummarizeGeneration(trace)
	if s.Iterations != 3 || s.TotalGrowths != 3 || s.RestartsRun != 12 {
		t.Errorf("summary = %+v", s)
	}
	if s.MeanNewActivated != 5 {
		t.Errorf("mean new activated = %g, want 5", s.MeanNewActivated)
	}
	if s.WinnersByRestart[2] != 2 || s.WinnersByRestart[0] != 1 {
		t.Errorf("winners = %v", s.WinnersByRestart)
	}
}

// TestPercentileEdgeCases pins the contract at the boundaries: empty
// input, out-of-range and NaN p, and single-element slices.
func TestPercentileEdgeCases(t *testing.T) {
	vals := []float64{5, 1, 3}
	if p := Percentile(vals, -0.5); p != 1 {
		t.Errorf("p<0 = %g, want min 1", p)
	}
	if p := Percentile(vals, 1.5); p != 5 {
		t.Errorf("p>1 = %g, want max 5", p)
	}
	if p := Percentile(vals, math.Inf(-1)); p != 1 {
		t.Errorf("p=-Inf = %g, want min 1", p)
	}
	if p := Percentile(vals, math.Inf(1)); p != 5 {
		t.Errorf("p=+Inf = %g, want max 5", p)
	}
	if p := Percentile(vals, math.NaN()); !math.IsNaN(p) {
		t.Errorf("p=NaN = %g, want NaN", p)
	}
	for _, p := range []float64{0, 0.001, 0.5, 0.999, 1} {
		if got := Percentile([]float64{7}, p); got != 7 {
			t.Errorf("single-element Percentile(p=%g) = %g, want 7", p, got)
		}
	}
	if Percentile(nil, 0) != 0 || Percentile(nil, 1) != 0 {
		t.Error("empty input must return 0 for every p")
	}
}

// TestHistogramEdgeCases covers degenerate shapes: zero/negative max and
// bins, all-equal values, negatives, and non-finite inputs.
func TestHistogramEdgeCases(t *testing.T) {
	// Zero max: all-zero counts, zero width — not a panic or NaN bins.
	counts, width := Histogram([]float64{1, 2, 3}, 4, 0)
	if width != 0 || len(counts) != 4 {
		t.Fatalf("zero max: counts=%v width=%g", counts, width)
	}
	for i, c := range counts {
		if c != 0 {
			t.Errorf("zero max bin %d = %d, want 0", i, c)
		}
	}
	// Negative bins must not panic.
	if c, w := Histogram([]float64{1}, -3, 10); len(c) != 0 || w != 0 {
		t.Errorf("negative bins: counts=%v width=%g", c, w)
	}
	// NaN / Inf max behave like the degenerate max.
	if c, w := Histogram([]float64{1}, 3, math.NaN()); w != 0 || c[0] != 0 {
		t.Errorf("NaN max: counts=%v width=%g", c, w)
	}
	if c, w := Histogram([]float64{1}, 3, math.Inf(1)); w != 0 || c[0] != 0 {
		t.Errorf("Inf max: counts=%v width=%g", c, w)
	}
	// All-equal values at the max boundary land in the last bin.
	counts, width = Histogram([]float64{5, 5, 5}, 5, 5)
	if width != 1 || counts[4] != 3 {
		t.Errorf("all-equal at max: counts=%v width=%g", counts, width)
	}
	// Negative and non-finite values: negatives into bin 0, +Inf into the
	// last bin, NaN dropped.
	counts, _ = Histogram([]float64{-2, math.Inf(1), math.NaN(), 0.5}, 2, 2)
	if counts[0] != 2 || counts[1] != 1 {
		t.Errorf("mixed pathological values: counts=%v", counts)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 3 {
		t.Errorf("NaN value not dropped: total=%d", total)
	}
}
