package core

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/repro/snntest/internal/obs"
	"github.com/repro/snntest/internal/snn"
)

// Restart-engine telemetry: how many workers are mid-optimization right
// now, and how long one restart's growth loop takes end to end. The
// serial legacy path in GenerateContext feeds the same histogram so the
// latency distribution is comparable across engine modes.
var (
	obsRestartInflight = obs.NewGauge("core_restart_inflight_workers")
	obsRestartHist     = obs.NewTimingHistogram("core_restart_optimize_seconds")
)

// Worker-pool resource telemetry, shared by name with the fault
// campaign's pool (the obs registry is idempotent, so both packages feed
// the same series): pool size and unclaimed-queue depth as live gauges,
// total in-fn busy time as a counter, and per-pool utilization — busy
// time over workers × wall time — as a percentage gauge written when the
// pool drains. Utilization is the signal that finally explains a 0.97×
// "speedup": a pool that is mostly idle is contended or starved, not
// compute-bound.
var (
	obsWorkerPoolSize = obs.NewGauge("worker_pool_size_workers")
	obsWorkerBusy     = obs.NewCounter("worker_busy_micros_total")
	obsWorkerUtil     = obs.NewGauge("worker_utilization_percent")
	obsRestartQueue   = obs.NewGauge("core_restart_queue_depth")
)

// runIndexed executes fn(0..n-1) on a pool of the given number of worker
// goroutines and blocks until every index has been processed. Each fn call
// must write only to its own index-addressed slot; the pool imposes no
// ordering, so determinism comes from the slots, never from completion
// order.
//
// Work items are restarts or calibration candidates — coarse units that
// run for seconds — so scheduling is a single atomic counter rather than
// a channel: no per-item send/receive, no channel buffer sized to n, and
// a workers<=1 call degenerates to a plain loop on the caller's
// goroutine with no synchronization at all.
func runIndexed(workers, n int, fn func(int)) {
	if workers >= n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	on := obs.On()
	var poolStart time.Time
	var busyUS atomic.Int64
	if on {
		poolStart = time.Now()
		obsWorkerPoolSize.Set(int64(workers))
		obsRestartQueue.Set(int64(n))
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if on {
					if d := int64(n) - next.Load(); d > 0 {
						obsRestartQueue.Set(d)
					} else {
						obsRestartQueue.Set(0)
					}
					t0 := time.Now()
					fn(i)
					busyUS.Add(time.Since(t0).Microseconds())
					continue
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if on {
		busy := busyUS.Load()
		obsWorkerBusy.Add(busy)
		if capacity := time.Since(poolStart).Microseconds() * int64(workers); capacity > 0 {
			obsWorkerUtil.Set(busy * 100 / capacity)
		}
		obsWorkerPoolSize.Set(0)
		obsRestartQueue.Set(0)
	}
}

// restartOutcome is the result of one restart of the multi-restart stage-1
// engine: the optimizer that produced it (kept so the winner can continue
// into stage 2), the best stage-1 outcome, and provenance for Trace.
type restartOutcome struct {
	opt     *chunkOptimizer
	best    stageOutcome
	growths int
	idx     int // winning restart index
	run     int // restarts actually evaluated
}

// runRestarts executes K = cfg.Parallel.Restarts independent stage-1
// optimizations of the same target set and returns the winner. Restart r
// draws every random number from rand.NewSource(iterSeed + r) and runs the
// growth loop on its own inference-mode clone of net (chunkOptimizer
// documents why sharing a trained net across goroutines would race).
//
// The winner is chosen by a fixed, index-ordered tie-break — lowest
// stage-1 loss, then most newly activated target neurons, then lowest
// restart index — so the result is a pure function of iterSeed regardless
// of worker count or completion order. Restarts not yet started when ctx
// is cancelled are skipped and excluded from the RestartsRun count.
func runRestarts(ctx context.Context, net *snn.Network, cfg *Config, iterSeed int64, tInMin int, tdMin float64, mask *LayerMask, target map[int]bool, offsets []int) (restartOutcome, error) {
	k := cfg.Parallel.restarts()
	type slot struct {
		opt     *chunkOptimizer
		best    stageOutcome
		growths int
		done    bool
		err     error
	}
	slots := make([]slot, k)
	runIndexed(cfg.Parallel.workers(k), k, func(r int) {
		if ctx.Err() != nil {
			return
		}
		on := obs.On()
		var t0 time.Time
		if on {
			obsRestartInflight.Add(1)
			t0 = time.Now()
		}
		rctx, rsp := obs.Start(ctx, "generate/restart")
		rsp.SetAttr("restart", r)
		rng := rand.New(rand.NewSource(iterSeed + int64(r)))
		opt := newChunkOptimizer(net.Clone(), cfg, rng, tInMin)
		best, growths, err := runGrowthLoop(rctx, opt, cfg, mask, tdMin, target, offsets)
		rsp.SetAttr("growths", growths)
		rsp.End()
		if on {
			obsRestartHist.Observe(time.Since(t0))
			obsRestartInflight.Add(-1)
		}
		slots[r] = slot{opt: opt, best: best, growths: growths, done: true, err: err}
	})

	winner := restartOutcome{idx: -1}
	bestLoss, bestNew := math.Inf(1), -1
	for r := range slots {
		s := &slots[r]
		if !s.done {
			continue
		}
		if s.err != nil {
			return restartOutcome{}, s.err
		}
		winner.run++
		n := newTargets(s.best.activated, target)
		if s.best.loss < bestLoss || (s.best.loss == bestLoss && n > bestNew) { //lint:ignore floateq lexicographic tie-break on deterministically recomputed loss values
			bestLoss, bestNew = s.best.loss, n
			winner.opt, winner.best, winner.growths, winner.idx = s.opt, s.best, s.growths, r
		}
	}
	return winner, nil
}

// CalibrateTInMinParallel is the multi-restart engine's T_in,min
// calibration: all candidate durations 1, 2, 4, …, maxCalibrationDuration
// are optimized concurrently, candidate i seeded with calibSeed + i, and
// the serial selection rule is applied afterwards — the shortest fully
// successful duration, falling back to the duration with the lowest L1
// (shortest on ties). Unlike CalibrateTInMin it never consumes the master
// RNG stream, so the outcome depends only on calibSeed, not on worker
// count or scheduling.
func CalibrateTInMinParallel(ctx context.Context, net *snn.Network, cfg *Config, calibSeed int64) (int, error) {
	budget := calibrationBudget(cfg)
	n := 0
	for t := 1; t <= maxCalibrationDuration; t *= 2 {
		n++
	}
	type slot struct {
		cand calibCandidate
		done bool
		err  error
	}
	slots := make([]slot, n)
	runIndexed(cfg.Parallel.workers(n), n, func(i int) {
		if ctx.Err() != nil {
			return
		}
		_, csp := obs.Start(ctx, "generate/calibrate/candidate")
		csp.SetAttr("duration", 1<<i)
		rng := rand.New(rand.NewSource(calibSeed + int64(i)))
		cand, err := calibrateCandidate(net.Clone(), cfg, rng, 1<<i, budget)
		csp.End()
		slots[i] = slot{cand: cand, done: true, err: err}
	})

	bestT, bestL1 := maxCalibrationDuration, math.Inf(1)
	for i := range slots {
		s := &slots[i]
		if !s.done {
			continue
		}
		if s.err != nil {
			return 0, s.err
		}
		if s.cand.success {
			return 1 << i, nil
		}
		if s.cand.minL1 < bestL1 {
			bestL1, bestT = s.cand.minL1, 1<<i
		}
	}
	return bestT, nil
}
