package core

import (
	"context"
	"time"

	"github.com/repro/snntest/internal/fault"
	"github.com/repro/snntest/internal/obs"
	"github.com/repro/snntest/internal/snn"
	"github.com/repro/snntest/internal/tensor"
)

// CompactionStats reports what Compact removed.
type CompactionStats struct {
	ChunksBefore int
	ChunksAfter  int
	StepsBefore  int
	StepsAfter   int
	// Detected is the number of faults the compacted test still detects
	// (never less than the original test's count by construction).
	Detected int
}

// Compact implements the paper's future-work direction of reducing test
// duration further: it fault-simulates each generated chunk in isolation
// (valid because the zero separators of Eq. 7 return every membrane to
// rest between chunks), then greedily drops chunks whose detected-fault
// sets are covered by the union of the chunks that remain, and
// reassembles the test. Coverage is preserved exactly with respect to
// the given fault list.
func Compact(net *snn.Network, res *Result, faults []fault.Fault, workers int) (*Result, CompactionStats, error) {
	return CompactContext(context.Background(), net, res, faults, workers)
}

// CompactContext is Compact with a caller context. The context parents
// the compaction's obs span (and the per-chunk fault campaigns beneath
// it) so traces nest under the caller's tree; compaction itself is not
// cancellable.
func CompactContext(ctx context.Context, net *snn.Network, res *Result, faults []fault.Fault, workers int) (*Result, CompactionStats, error) {
	ctx, sp := obs.Start(ctx, "compact")
	defer sp.End()
	sp.SetAttr("chunks_before", len(res.Chunks))
	campaign := func(stim *tensor.Tensor) (*fault.SimResult, error) {
		return fault.SimulateWith(net, faults, stim, fault.CampaignOptions{Workers: workers, Context: ctx})
	}
	stats := CompactionStats{
		ChunksBefore: len(res.Chunks),
		StepsBefore:  res.TotalSteps(),
	}
	if len(res.Chunks) <= 1 {
		stats.ChunksAfter = len(res.Chunks)
		stats.StepsAfter = res.TotalSteps()
		sim, err := campaign(res.Stimulus)
		if err != nil {
			return nil, stats, err
		}
		stats.Detected = sim.NumDetected()
		return res, stats, nil
	}

	// Per-chunk detection sets.
	detects := make([][]bool, len(res.Chunks))
	for i, c := range res.Chunks {
		sim, err := campaign(c)
		if err != nil {
			return nil, stats, err
		}
		detects[i] = sim.Detected
	}

	keep := make([]bool, len(res.Chunks))
	for i := range keep {
		keep[i] = true
	}
	// Try dropping chunks from the cheapest contribution upward: order by
	// the number of faults only that chunk detects among the kept set.
	for {
		dropped := false
		bestIdx, bestUnique := -1, 1<<62
		for i := range res.Chunks {
			if !keep[i] {
				continue
			}
			unique := 0
			for fi, d := range detects[i] {
				if !d {
					continue
				}
				covered := false
				for j := range res.Chunks {
					if j != i && keep[j] && detects[j][fi] {
						covered = true
						break
					}
				}
				if !covered {
					unique++
				}
			}
			if unique == 0 && len(res.Chunks[i].Data()) < bestUnique {
				bestIdx, bestUnique = i, len(res.Chunks[i].Data())
			}
		}
		if bestIdx >= 0 {
			keep[bestIdx] = false
			dropped = true
		}
		if !dropped {
			break
		}
	}

	var kept []*tensor.Tensor
	union := make([]bool, len(faults))
	for i, c := range res.Chunks {
		if keep[i] {
			kept = append(kept, c)
			for fi, d := range detects[i] {
				if d {
					union[fi] = true
				}
			}
		}
	}
	detected := 0
	for _, d := range union {
		if d {
			detected++
		}
	}

	out := &Result{
		Stimulus:          Assemble(net, kept),
		Chunks:            kept,
		TInMin:            res.TInMin,
		Activated:         res.Activated,
		ActivatedFraction: res.ActivatedFraction,
		Trace:             res.Trace,
		Runtime:           res.Runtime + time.Duration(0),
	}
	stats.ChunksAfter = len(kept)
	stats.StepsAfter = out.TotalSteps()
	stats.Detected = detected
	sp.SetAttr("chunks_after", len(kept))
	return out, stats, nil
}
