package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/repro/snntest/internal/tensor"
)

// Property: Assemble obeys Eq. 8 for any set of chunk durations:
// T_test = Σ_{j<d} 2·T_j + T_d, with zero separators exactly between
// chunks.
func TestAssembleEq8Property(t *testing.T) {
	net := smallNet(1)
	prop := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 6 {
			return true
		}
		var chunks []*tensor.Tensor
		want := 0
		for i, r := range raw {
			d := 1 + int(r%7)
			chunks = append(chunks, tensor.Full(1, d, 4))
			want += d
			if i < len(raw)-1 {
				want += d
			}
		}
		stim := Assemble(net, chunks)
		if stim.Dim(0) != want {
			return false
		}
		// Total spike mass equals the chunk mass (separators are silent).
		mass := 0.0
		for _, c := range chunks {
			mass += tensor.Sum(c)
		}
		return tensor.Sum(stim) == mass
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: TargetMask selects exactly the requested neurons for any
// random target subset.
func TestTargetMaskProperty(t *testing.T) {
	net := smallNet(2)
	total := net.NumNeurons()
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		target := map[int]bool{}
		for g := 0; g < total; g++ {
			if rng.Float64() < 0.5 {
				target[g] = true
			}
		}
		m := TargetMask(net, target)
		if m.Count() != len(target) {
			return false
		}
		offs := net.LayerOffsets()
		for li, l := range net.Layers {
			for j := 0; j < l.NumNeurons(); j++ {
				want := 0.0
				if target[offs[li]+j] {
					want = 1
				}
				if m.Masks[li].Data()[j] != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: generated stimuli are always binary and of positive duration,
// regardless of seed.
func TestGenerateBinaryProperty(t *testing.T) {
	cfg := TestConfig()
	cfg.Steps1 = 12
	cfg.MaxIterations = 2
	cfg.MaxGrowth = 1
	prop := func(seed int64) bool {
		net := smallNet(seed)
		c := cfg
		c.Seed = seed + 1
		res := must(Generate(net, c))
		if res.TotalSteps() < 1 {
			return false
		}
		for _, v := range res.Stimulus.Data() {
			if v != 0 && v != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5}); err != nil {
		t.Error(err)
	}
}

// Property: the reported activated set never shrinks across iterations of
// the trace (N_A is monotone).
func TestActivatedMonotoneProperty(t *testing.T) {
	net := smallNet(7)
	cfg := TestConfig()
	cfg.Steps1 = 25
	cfg.Seed = 8
	res := must(Generate(net, cfg))
	prev := -1
	for _, tr := range res.Trace {
		if tr.TotalActivated < prev {
			t.Fatalf("activated count shrank: %+v", res.Trace)
		}
		prev = tr.TotalActivated
	}
}
