package core

import (
	"fmt"
	"math"
	"math/rand"

	ag "github.com/repro/snntest/internal/autograd"
	"github.com/repro/snntest/internal/snn"
	"github.com/repro/snntest/internal/tensor"
	"github.com/repro/snntest/internal/train"
)

// chunkOptimizer runs the within-stage input optimization of Fig. 3: a
// real-valued tensor I_real is pushed through Gumbel-Softmax and a
// straight-through estimator to obtain a binary stimulus, the SNN runs
// differentiably, and Adam adjusts I_real against the stage loss.
//
// A chunkOptimizer is confined to one goroutine. The multi-restart engine
// gives every restart its own optimizer AND its own inference-mode network
// clone: a trained network's projections carry shared autograd weight
// leaves (snn.Projection.ParamLeaves), and concurrent Backward passes
// through a shared leaf would race on its Grad tensor. Network.Clone
// drops the leaves, making concurrent RunGraph calls race-free.
type chunkOptimizer struct {
	net   *snn.Network
	cfg   *Config
	rng   *rand.Rand
	frame int
	steps int // T_in in simulation steps

	leaf  *ag.Node       // I_real, flattened [steps·frame]
	noise *tensor.Tensor // logistic noise, resampled per optimization step
	adam  *train.Adam

	// Buffer-reusing engine state, nil when cfg.ReferenceEngine: the
	// arena recycles every per-iteration graph tensor (values, interior
	// gradients, the Gumbel relaxation) at the next forward call; rec,
	// scratch, stim and stepNodes amortize the remaining per-iteration
	// structures. Anything that survives an iteration (the best stimulus
	// and output) is Clone()d onto the heap before the arena resets.
	arena     *tensor.Arena
	rec       *snn.Record
	scratch   *snn.Scratch
	stim      *tensor.Tensor
	stepNodes []*ag.Node
}

// initLogitMean biases the initial I_real logits negative so the first
// binarized stimuli are sparse (≈10–15%% spike density), matching the
// event-stream statistics the benchmark models are trained on; a dense
// 50%% start sits far off that manifold and strangles the gradient signal
// through trained layers.
const initLogitMean = -2.0

// newChunkOptimizer initializes I_real from N(initLogitMean, 1) logits.
func newChunkOptimizer(net *snn.Network, cfg *Config, rng *rand.Rand, steps int) *chunkOptimizer {
	frame := net.InputLen()
	o := &chunkOptimizer{
		net:   net,
		cfg:   cfg,
		rng:   rng,
		frame: frame,
		steps: steps,
		leaf:  ag.Leaf(tensor.RandNormal(rng, initLogitMean, 1, steps*frame)),
		noise: tensor.New(steps * frame),
	}
	o.adam = train.NewAdam([]*ag.Node{o.leaf}, cfg.LR)
	if !cfg.ReferenceEngine {
		// Adopting the (heap-backed) logits roots arena propagation:
		// every tensor derived from the leaf during forward/backward is
		// drawn from the arena and recycled at the next iteration.
		o.arena = tensor.NewArena()
		o.arena.Adopt(o.leaf.Value)
	}
	return o
}

// grow extends the chunk by extra steps of fresh random logits, keeping
// the already-optimized prefix (the paper increases T_in by β and repeats
// the stage optimization).
func (o *chunkOptimizer) grow(extra int) {
	old := o.leaf.Value.Data()
	grown := tensor.RandNormal(o.rng, initLogitMean, 1, (o.steps+extra)*o.frame)
	copy(grown.Data(), old)
	o.steps += extra
	o.leaf = ag.Leaf(grown)
	o.noise = tensor.New(o.steps * o.frame)
	o.adam = train.NewAdam([]*ag.Node{o.leaf}, o.cfg.LR)
	if o.arena != nil {
		o.arena.Adopt(o.leaf.Value)
		// Per-duration buffers are stale; lazily resized on next use.
		o.rec, o.stim, o.stepNodes = nil, nil, nil
	}
}

// forward builds the Gumbel-Softmax → STE → RunGraph pipeline for the
// current logits at temperature tau and returns the graph result plus the
// realized binary stimulus. It fails if the relaxation has gone non-finite
// (a diverged I_real under an aggressive learning rate), so every stage
// loop propagates divergence as an error instead of optimizing on NaNs.
func (o *chunkOptimizer) forward(tau float64) (*snn.GraphResult, *tensor.Tensor, error) {
	if o.arena != nil {
		// Everything the previous iteration's graph allocated is dead by
		// now: the bookkeeping between iterations holds only scalars and
		// heap clones.
		o.arena.Reset()
	}
	if o.cfg.PlainSigmoid {
		o.noise.Zero()
	} else {
		ag.LogisticNoise(o.noise, o.rng.Float64)
	}
	soft := ag.GumbelSigmoid(o.leaf, o.noise, tau)
	if !soft.Value.AllFinite() {
		return nil, nil, fmt.Errorf("core: optimizer diverged: non-finite relaxation values at temperature %g", tau)
	}
	stepNodes, stim := o.stepNodes, o.stim
	if stepNodes == nil || len(stepNodes) != o.steps {
		stepNodes = make([]*ag.Node, o.steps)
		stim = tensor.New(append([]int{o.steps}, o.net.InShape...)...)
		if o.arena != nil {
			o.stepNodes, o.stim = stepNodes, stim
		}
	}
	for t := 0; t < o.steps; t++ {
		frameNode := ag.STE(ag.Slice(soft, t*o.frame, o.frame, o.net.InShape...), 0.5)
		stepNodes[t] = frameNode
		copy(stim.RawRange(t*o.frame, o.frame), frameNode.Value.Data())
	}
	if o.arena != nil {
		return o.net.RunGraphFused(stepNodes), stim, nil
	}
	return o.net.RunGraph(stepNodes), stim, nil
}

// record materializes the graph result's spike trains, reusing the
// optimizer's record on the buffer-reusing engine.
func (o *chunkOptimizer) record(res *snn.GraphResult) *snn.Record {
	if o.arena == nil {
		return res.ToRecord(o.net)
	}
	o.rec = res.ToRecordInto(o.net, o.rec)
	return o.rec
}

// traffic returns the hidden-layer spike count the stimulus elicits,
// through the optimizer's reusable scratch on the buffer-reusing engine.
func (o *chunkOptimizer) traffic(stim *tensor.Tensor) float64 {
	if o.arena == nil {
		return hiddenTraffic(o.net, stim)
	}
	if o.scratch == nil {
		o.scratch = o.net.NewScratch()
	}
	rec, _ := o.scratch.RunFrom(0, nil, stim)
	return sumHidden(rec)
}

// stageOutcome is the best stimulus visited during one stage pass.
type stageOutcome struct {
	stim      *tensor.Tensor // binary [steps, InShape...]
	loss      float64
	activated map[int]bool // globally indexed neurons spiking ≥ once
	output    *tensor.Tensor
}

// alphas computes the paper's loss weights: the inverse of the expected
// magnitude of each stage-1 loss term, measured on the initial stimulus,
// so every term contributes comparably to the total.
func alphas(vals [4]float64) [4]float64 {
	var a [4]float64
	for i, v := range vals {
		a[i] = 1 / math.Max(math.Abs(v), 1)
	}
	return a
}

// stage1Losses evaluates L1..L4 for the given graph result.
func (o *chunkOptimizer) stage1Losses(res *snn.GraphResult, mask *LayerMask, tdMin float64) [4]*ag.Node {
	var ls [4]*ag.Node
	ls[0] = L1(res)
	ls[1] = L2(res, mask)
	if o.cfg.DisableL3 {
		ls[2] = ag.Const(tensor.Scalar(0))
	} else {
		ls[2] = L3(res, mask, tdMin)
	}
	if o.cfg.DisableL4 {
		ls[3] = ag.Const(tensor.Scalar(0))
	} else {
		ls[3] = L4(o.net, res)
	}
	return ls
}

// runStage1 optimizes the chunk against Σ αᵢLᵢ (Eq. 14) for the stage
// budget and returns the best stimulus visited, ranked by output-layer
// firing (L1) first, newly activated target neurons second, and the
// aggregate loss last.
func (o *chunkOptimizer) runStage1(mask *LayerMask, tdMin float64, offsets []int) (stageOutcome, error) {
	steps := o.cfg.Steps1
	lrSched := o.cfg.lrSchedule(steps)
	tauSched := o.cfg.tauSchedule(steps)

	var alpha [4]float64
	haveAlpha := false
	best := stageOutcome{loss: math.Inf(1)}
	bestL1, bestNew := math.Inf(1), -1

	for s := 0; s < steps; s++ {
		res, stim, err := o.forward(tauSched.At(s))
		if err != nil {
			return stageOutcome{}, err
		}
		ls := o.stage1Losses(res, mask, tdMin)
		if !haveAlpha {
			alpha = alphas([4]float64{
				ls[0].Value.Data()[0], ls[1].Value.Data()[0],
				ls[2].Value.Data()[0], ls[3].Value.Data()[0],
			})
			haveAlpha = true
		}
		total := ag.AddN(
			ag.Scale(ls[0], alpha[0]),
			ag.Scale(ls[1], alpha[1]),
			ag.Scale(ls[2], alpha[2]),
			ag.Scale(ls[3], alpha[3]),
		)
		lossVal := total.Value.Data()[0]
		l1Val := ls[0].Value.Data()[0]

		rec := o.record(res)
		// The activated-neuron set is only materialized as a map when the
		// candidate wins; the ranking itself uses the mapless record scan.
		var act map[int]bool
		var newCount int
		if o.arena == nil {
			act = rec.ActivatedNeurons(offsets, 1)
			newCount = countMasked(act, mask, offsets, o.net)
		} else {
			newCount = countActivatedMasked(rec, mask, o.net)
		}
		// Candidate ranking: firing outputs comes first (a fault effect
		// that cannot reach O^L is undetectable, so L1 dominates), then
		// newly activated target neurons, then the aggregate loss.
		better := l1Val < bestL1 ||
			(l1Val == bestL1 && newCount > bestNew) || //lint:ignore floateq lexicographic tie-break on deterministically recomputed loss values
			(l1Val == bestL1 && newCount == bestNew && lossVal < best.loss) //lint:ignore floateq lexicographic tie-break on deterministically recomputed loss values
		if better {
			if act == nil {
				act = rec.ActivatedNeurons(offsets, 1)
			}
			bestL1, bestNew = l1Val, newCount
			best = stageOutcome{
				stim:      stim.Clone(),
				loss:      lossVal,
				activated: act,
				output:    rec.Output().Clone(),
			}
		}

		o.adam.ZeroGrad()
		if err := o.backward(total); err != nil {
			return stageOutcome{}, err
		}
		o.adam.LR = lrSched.At(s)
		o.adam.Step()
	}
	return best, nil
}

// runStage2 fine-tunes the chunk to minimize L5 while keeping the output
// spike trains fixed at ref (Eq. 15), implemented as a weighted penalty
// with exact-match acceptance: a candidate replaces the incumbent only if
// its output trains equal ref bit-for-bit, it keeps every neuron the
// incumbent activated, and its hidden traffic is strictly lower. Starting
// from the incumbent's own traffic (rather than +∞) prevents a
// degenerate collapse to a near-silent stimulus when the reference output
// carries few spikes.
func (o *chunkOptimizer) runStage2(incumbent stageOutcome, offsets []int) (stageOutcome, error) {
	steps := o.cfg.steps2()
	lrSched := o.cfg.lrSchedule(steps)
	tauSched := o.cfg.tauSchedule(steps)

	best := incumbent
	bestTraffic := o.traffic(incumbent.stim)
	ref := incumbent.output

	for s := 0; s < steps; s++ {
		res, stim, err := o.forward(tauSched.At(s))
		if err != nil {
			return stageOutcome{}, err
		}
		l5 := L5(res)
		mismatch := OutputMismatch(res, ref)
		total := ag.Add(l5, ag.Scale(mismatch, o.cfg.MismatchWeight))

		if mismatch.Value.Data()[0] == 0 && l5.Value.Data()[0] < bestTraffic { //lint:ignore floateq mismatch counts differing binary spikes; exact zero means identical trains
			rec := o.record(res)
			act := rec.ActivatedNeurons(offsets, 1)
			if containsAll(act, incumbent.activated) {
				bestTraffic = l5.Value.Data()[0]
				best = stageOutcome{
					stim:      stim.Clone(),
					loss:      total.Value.Data()[0],
					activated: act,
					output:    rec.Output().Clone(),
				}
			}
		}

		o.adam.ZeroGrad()
		if err := o.backward(total); err != nil {
			return stageOutcome{}, err
		}
		o.adam.LR = lrSched.At(s)
		o.adam.Step()
	}
	return best, nil
}

// backward dispatches the gradient pass to the engine-matched visited-set
// strategy: the reference engine keeps the original map-visited
// topological sort, the fast engine the epoch-based one. The traversal
// order is the same, so gradients are bit-identical either way.
func (o *chunkOptimizer) backward(total *ag.Node) error {
	if o.arena == nil {
		return ag.BackwardReference(total)
	}
	return ag.Backward(total)
}

// hiddenTraffic returns the total hidden-layer spike count the stimulus
// elicits (the fast-path value of L5), simulated on the reference kernels
// — it serves the ReferenceEngine baseline, whose allocation profile it
// preserves.
func hiddenTraffic(net *snn.Network, stim *tensor.Tensor) float64 {
	sc := net.NewScratch()
	sc.SetReference(true)
	rec, _ := sc.RunFrom(0, nil, stim)
	return sumHidden(rec)
}

// sumHidden totals the spike counts of every non-output layer.
func sumHidden(rec *snn.Record) float64 {
	total := 0.0
	for li := 0; li < len(rec.Layers)-1; li++ {
		total += tensor.Sum(rec.Layers[li])
	}
	return total
}

// countActivatedMasked counts the neurons inside the mask whose recorded
// spike train carries at least one spike, scanning the record in place —
// the mapless equivalent of countMasked over ActivatedNeurons(offsets, 1),
// run every optimization step on the buffer-reusing engine.
//
//snn:hotpath
func countActivatedMasked(rec *snn.Record, mask *LayerMask, net *snn.Network) int {
	n := 0
	for li, l := range net.Layers {
		mv := mask.maskFor(li)
		nn := l.NumNeurons()
		data := rec.Layers[li].Data()
		for j := 0; j < nn; j++ {
			if mv != nil && mv.Data()[j] != 1 { //lint:ignore floateq layer masks hold exactly 0 or 1
				continue
			}
			for t := 0; t < rec.Steps; t++ {
				if data[t*nn+j] != 0 { //lint:ignore floateq recorded spikes are exactly 0 or 1
					n++
					break
				}
			}
		}
	}
	return n
}

// containsAll reports whether set contains every member of subset.
func containsAll(set, subset map[int]bool) bool {
	for g := range subset {
		if !set[g] {
			return false
		}
	}
	return true
}

// countMasked counts activated neurons that lie inside the mask (the
// newly activated members of N_T).
//
//snn:hotpath
func countMasked(act map[int]bool, mask *LayerMask, offsets []int, net *snn.Network) int {
	n := 0
	for li, l := range net.Layers {
		mv := mask.maskFor(li)
		for j := 0; j < l.NumNeurons(); j++ {
			if (mv == nil || mv.Data()[j] == 1) && act[offsets[li]+j] { //lint:ignore floateq layer masks hold exactly 0 or 1
				n++
			}
		}
	}
	return n
}
