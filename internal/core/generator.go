package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/repro/snntest/internal/obs"
	"github.com/repro/snntest/internal/snn"
	"github.com/repro/snntest/internal/tensor"
)

// Generator-level counters; updated at most once per iteration so the
// optimizer's inner loops never touch them.
var (
	obsIterations  = obs.NewCounter("core_iterations_total")
	obsGrowths     = obs.NewCounter("core_growths_total")
	obsRestartsRun = obs.NewCounter("core_restarts_run_total")

	// Live-progress gauges for the telemetry server's /metrics and /runs
	// views; written once per iteration alongside the counters above.
	obsGenIteration = obs.NewGauge("core_generate_iteration_index")
	obsGenActivated = obs.NewGauge("core_generate_activated_neurons")
	obsGenTotal     = obs.NewGauge("core_generate_total_neurons")
)

// IterationStats records one iteration of the outer loop (one generated
// chunk).
type IterationStats struct {
	Iteration      int
	ChunkSteps     int
	Growths        int
	NewActivated   int
	TotalActivated int
	Stage1Loss     float64
	// Restart is the index of the restart that won this iteration's
	// multi-restart selection (0 on the serial path).
	Restart int
	// RestartsRun is the number of restarts actually evaluated this
	// iteration (1 on the serial path; may be < Config.Parallel.Restarts
	// when the run was cancelled mid-iteration).
	RestartsRun int
}

// Result is the output of Generate: the assembled test stimulus and its
// provenance.
type Result struct {
	// Stimulus is the final test input I = {I¹,0¹,…,I^d} (Eq. 7), shape
	// [T_test, InShape...].
	Stimulus *tensor.Tensor
	// Chunks are the optimized inputs I^j before interleaving.
	Chunks []*tensor.Tensor
	// TInMin is the calibrated (or configured) initial chunk duration.
	TInMin int
	// Activated is the final N_A set of globally indexed neurons.
	Activated map[int]bool
	// ActivatedFraction is |N_A| / |N|.
	ActivatedFraction float64
	// Trace holds per-iteration statistics.
	Trace []IterationStats
	// Runtime is the wall-clock test-generation time.
	Runtime time.Duration
}

// TotalSteps returns T_test in simulation steps (Eq. 8).
func (r *Result) TotalSteps() int { return r.Stimulus.Dim(0) }

// DurationMS returns the test duration in milliseconds for the network's
// step period.
func (r *Result) DurationMS(net *snn.Network) float64 {
	return float64(r.TotalSteps()) * net.StepMS
}

// DurationSamples expresses the test duration in equivalents of one
// dataset sample of the given length (Table III's "test duration
// (samples)" row).
func (r *Result) DurationSamples(sampleSteps int) float64 {
	return float64(r.TotalSteps()) / float64(sampleSteps)
}

// Generate runs the full test-generation algorithm of Fig. 2 on the
// fault-free network and returns the assembled stimulus. The network
// model stays fixed throughout; only the input is optimized. It is
// GenerateContext under a background context.
func Generate(net *snn.Network, cfg Config) (*Result, error) {
	return GenerateContext(context.Background(), net, cfg)
}

// GenerateContext is Generate with caller-controlled cancellation: the
// paper's t_limit (Config.TimeLimit) is layered onto ctx as a deadline,
// and both the outer chunk loop and every duration-growth loop observe
// ctx instead of polling the wall clock. Cancellation is graceful — the
// partial result generated so far is returned, never an error, exactly
// like hitting t_limit.
//
// With Config.Parallel.Restarts > 1 each iteration runs its restarts on a
// bounded worker pool; see Parallel for the determinism contract (results
// depend only on the seed, never on the worker count).
func GenerateContext(ctx context.Context, net *snn.Network, cfg Config) (*Result, error) {
	if net.HasFaultOverrides() {
		return nil, fmt.Errorf("core: Generate requires a fault-free network, but %q carries fault overrides", net.Name)
	}
	start := time.Now()
	ctx, cancel := context.WithTimeout(ctx, cfg.TimeLimit)
	defer cancel()
	ctx, sp := obs.Start(ctx, "generate")
	defer sp.End()
	sp.SetAttr("network", net.Name)
	sp.SetAttr("seed", cfg.Seed)
	rng := rand.New(rand.NewSource(cfg.Seed))
	offsets := net.LayerOffsets()
	totalNeurons := net.NumNeurons()
	run := ""
	if obs.RunEventsOn() {
		run = obs.NewRunID("generate")
		obs.EmitRunStart(run, "generate", totalNeurons, map[string]any{
			"network": net.Name,
			"layers":  len(net.Layers),
			"seed":    cfg.Seed,
		})
		// Tag CPU samples from here down (including pool workers, which
		// inherit goroutine labels at spawn) with this run's id.
		ctx = obs.WithRunLabel(ctx, run)
	}
	if obs.On() {
		obsGenIteration.Set(0)
		obsGenActivated.Set(0)
		obsGenTotal.Set(int64(totalNeurons))
		obs.ProgressRun(run, "generate", 0, totalNeurons)
	}

	tInMin := cfg.TInMin
	if tInMin == 0 {
		var err error
		cctx, csp := obs.Start(ctx, "generate/calibrate")
		if cfg.Parallel.enabled() {
			tInMin, err = CalibrateTInMinParallel(cctx, net, &cfg, rng.Int63())
		} else {
			tInMin, err = CalibrateTInMin(net, &cfg, rng)
		}
		csp.SetAttr("t_in_min", tInMin)
		csp.End()
		if err != nil {
			return nil, err
		}
		if tInMin < cfg.TInFloor {
			tInMin = cfg.TInFloor
		}
	}
	tdMin := math.Max(1, float64(tInMin/cfg.TDMinDivisor))

	activated := make(map[int]bool)
	res := &Result{TInMin: tInMin, Activated: activated}

	for iter := 0; iter < cfg.MaxIterations; iter++ {
		if len(activated) >= totalNeurons || ctx.Err() != nil {
			break
		}
		target := make(map[int]bool, totalNeurons-len(activated))
		for g := 0; g < totalNeurons; g++ {
			if !activated[g] {
				target[g] = true
			}
		}
		mask := TargetMask(net, target)

		// The iteration span cannot use defer (it must close before the
		// loop's next pass), so every exit below ends it explicitly.
		ictx, isp := obs.Start(ctx, "generate/iteration")
		isp.SetAttr("iteration", iter)

		var winner restartOutcome
		if cfg.Parallel.enabled() {
			var err error
			winner, err = runRestarts(ictx, net, &cfg, rng.Int63(), tInMin, tdMin, mask, target, offsets)
			if err != nil {
				isp.End()
				return nil, err
			}
		} else {
			// Serial legacy path: the single optimizer consumes the master
			// RNG stream directly, reproducing historical outputs
			// byte-for-byte.
			var t0 time.Time
			if obs.On() {
				t0 = time.Now()
			}
			rctx, rsp := obs.Start(ictx, "generate/restart")
			rsp.SetAttr("restart", 0)
			opt := newChunkOptimizer(net, &cfg, rng, tInMin)
			best, growths, err := runGrowthLoop(rctx, opt, &cfg, mask, tdMin, target, offsets)
			rsp.SetAttr("growths", growths)
			rsp.End()
			if obs.On() {
				obsRestartHist.Observe(time.Since(t0))
			}
			if err != nil {
				isp.End()
				return nil, err
			}
			winner = restartOutcome{opt: opt, best: best, growths: growths, run: 1}
		}
		if winner.best.stim == nil {
			isp.End()
			break
		}
		if !cfg.DisableStage2 {
			_, s2sp := obs.Start(ictx, "generate/stage2")
			var err error
			winner.best, err = winner.opt.runStage2(winner.best, offsets)
			s2sp.End()
			if err != nil {
				isp.End()
				return nil, err
			}
		}
		best := winner.best

		newCount := 0
		for g := range best.activated {
			if !activated[g] {
				activated[g] = true
				newCount++
			}
		}
		res.Chunks = append(res.Chunks, best.stim)
		res.Trace = append(res.Trace, IterationStats{
			Iteration:      iter,
			ChunkSteps:     best.stim.Dim(0),
			Growths:        winner.growths,
			NewActivated:   newCount,
			TotalActivated: len(activated),
			Stage1Loss:     best.loss,
			Restart:        winner.idx,
			RestartsRun:    winner.run,
		})
		if obs.On() {
			obsIterations.Add(1)
			obsGrowths.Add(int64(winner.growths))
			obsRestartsRun.Add(int64(winner.run))
			obsGenIteration.Set(int64(iter + 1))
			obsGenActivated.Set(int64(len(activated)))
			obs.ProgressRun(run, "generate", len(activated), totalNeurons)
			isp.SetAttr("chunk_steps", best.stim.Dim(0))
			isp.SetAttr("new_activated", newCount)
			isp.SetAttr("restart_won", winner.idx)
		}
		isp.End()
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "iteration %d: chunk %d steps, +%d neurons (%d/%d activated, restart %d/%d)\n",
				iter, best.stim.Dim(0), newCount, len(activated), totalNeurons, winner.idx, winner.run)
		}
		if newCount == 0 || float64(newCount) < cfg.MinNewFraction*float64(totalNeurons) {
			// The optimizer can no longer reach the remaining neurons at a
			// useful rate (typically dead or suppressed weights); further
			// iterations would only lengthen the test.
			break
		}
	}

	res.Stimulus = Assemble(net, res.Chunks)
	res.ActivatedFraction = float64(len(activated)) / float64(totalNeurons)
	res.Runtime = time.Since(start)
	if run != "" {
		obs.EmitRunEnd(run, "generate", len(activated), totalNeurons, map[string]any{
			"chunks":     len(res.Chunks),
			"iterations": len(res.Trace),
		})
	}
	return res, nil
}

// runGrowthLoop runs stage 1 and the β-doubling duration growth of
// Section V-C on one optimizer until a new target neuron activates, the
// growth budget is exhausted, or ctx is cancelled. It is shared between
// the serial path and every parallel restart worker.
func runGrowthLoop(ctx context.Context, opt *chunkOptimizer, cfg *Config, mask *LayerMask, tdMin float64, target map[int]bool, offsets []int) (stageOutcome, int, error) {
	beta := cfg.Beta
	growths := 0
	var best stageOutcome
	for {
		var err error
		best, err = opt.runStage1(mask, tdMin, offsets)
		if err != nil {
			return stageOutcome{}, growths, err
		}
		if newTargets(best.activated, target) > 0 || growths >= cfg.MaxGrowth {
			break
		}
		// No new target neuron activated: grow the input by β steps
		// and repeat the stage; β doubles per growth (Section V-C).
		opt.grow(beta)
		beta *= 2
		growths++
		if ctx.Err() != nil {
			break
		}
	}
	return best, growths, nil
}

// newTargets counts activated neurons belonging to the target set.
func newTargets(act, target map[int]bool) int {
	n := 0
	for g := range act {
		if target[g] {
			n++
		}
	}
	return n
}

// Assemble concatenates the chunks interleaved with equal-length zero
// inputs (Eq. 7): {I¹, 0¹, I², 0², …, 0^{d-1}, I^d}. The zero separators
// let every membrane decay back to rest, the paper's "sleep" reset
// between chunks. The total duration follows Eq. 8.
func Assemble(net *snn.Network, chunks []*tensor.Tensor) *tensor.Tensor {
	if len(chunks) == 0 {
		return net.ZeroInput(1)
	}
	frame := net.InputLen()
	total := 0
	for i, c := range chunks {
		total += c.Dim(0)
		if i < len(chunks)-1 {
			total += c.Dim(0) // the zero separator 0^j has duration T_in^j
		}
	}
	out := tensor.New(append([]int{total}, net.InShape...)...)
	off := 0
	for i, c := range chunks {
		copy(out.RawRange(off*frame, c.Len()), c.Data())
		off += c.Dim(0)
		if i < len(chunks)-1 {
			off += c.Dim(0) // zero separator: already zero-filled
		}
	}
	return out
}

// calibCandidate is the evaluation of one candidate duration during
// T_in,min calibration.
type calibCandidate struct {
	minL1   float64
	success bool // the optimized input made every output neuron fire
}

// calibrateCandidate optimizes min L1 alone for the candidate duration t
// over the given step budget and reports whether full output firing was
// reached, plus the lowest L1 visited. Forward divergence and backward
// errors propagate like every other optimization path.
func calibrateCandidate(net *snn.Network, cfg *Config, rng *rand.Rand, t, budget int) (calibCandidate, error) {
	opt := newChunkOptimizer(net, cfg, rng, t)
	lrSched := cfg.lrSchedule(budget)
	tauSched := cfg.tauSchedule(budget)
	c := calibCandidate{minL1: math.Inf(1)}
	for s := 0; s < budget; s++ {
		res, _, err := opt.forward(tauSched.At(s))
		if err != nil {
			return c, err
		}
		l1 := L1(res)
		if l1.Value.Data()[0] == 0 { //lint:ignore floateq L1 sums binary spikes; exact zero means no output spike at all
			c.success = true
			c.minL1 = 0
			return c, nil
		}
		if l1.Value.Data()[0] < c.minL1 {
			c.minL1 = l1.Value.Data()[0]
		}
		opt.adam.ZeroGrad()
		if err := opt.backward(l1); err != nil {
			return c, err
		}
		opt.adam.LR = lrSched.At(s)
		opt.adam.Step()
	}
	return c, nil
}

// calibrationBudget returns the per-candidate optimization step budget.
func calibrationBudget(cfg *Config) int {
	budget := cfg.Steps1 / 2
	if budget < 60 {
		budget = 60
	}
	return budget
}

// maxCalibrationDuration caps the doubling search of T_in,min
// calibration: candidate durations are 1, 2, 4, …, maxCalibrationDuration.
const maxCalibrationDuration = 512

// CalibrateTInMin finds the paper's T_in,min: the smallest input duration
// for which optimizing min L1 alone makes every output neuron fire. It
// starts from one step and doubles until the optimization succeeds; if no
// duration fully succeeds within the cap, it returns the duration that
// achieved the lowest L1 (preferring shorter on ties), leaving the rest
// to the full stage-1 optimization with its larger budget. This serial
// form consumes the caller's RNG stream directly; see
// CalibrateTInMinParallel for the concurrent, derived-stream variant.
func CalibrateTInMin(net *snn.Network, cfg *Config, rng *rand.Rand) (int, error) {
	budget := calibrationBudget(cfg)
	bestT, bestL1 := maxCalibrationDuration, math.Inf(1)
	for t := 1; t <= maxCalibrationDuration; t *= 2 {
		c, err := calibrateCandidate(net, cfg, rng, t, budget)
		if err != nil {
			return 0, err
		}
		if c.success {
			return t, nil
		}
		if c.minL1 < bestL1 {
			bestL1, bestT = c.minL1, t
		}
	}
	return bestT, nil
}
