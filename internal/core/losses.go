// Package core implements the paper's contribution: a test-generation
// algorithm that optimizes a short spatio-temporal binary input toward
// maximum hardware fault coverage without running fault simulation in the
// loop (Section IV).
//
// Instead of using fault coverage as the fitness — whose evaluation cost
// O(M·T_FS) explodes with model size — the input is optimized against
// five spike-domain loss functions that act as proxies for fault
// sensitization and fault-effect propagation:
//
//	L1 (Eq. 9)  every output neuron fires              → effects reach O^L
//	L2 (Eq. 10) every neuron fires                     → dead faults exposed
//	L3 (Eq. 12) spike trains are temporally diverse    → timing faults exposed
//	L4 (Eq. 13) synapse contributions are uniform      → weak synapses unmasked
//	L5 (Eq. 16) hidden spike traffic is minimal        → refractory masking reduced
//
// The optimization runs in two stages per generated chunk (Fig. 2):
// stage 1 minimizes α₁L1+α₂L2+α₃L3+α₄L4, stage 2 minimizes L5 subject to
// an unchanged output response. Chunks are concatenated with equal-length
// zero separators into the final test stimulus (Eq. 7).
package core

import (
	ag "github.com/repro/snntest/internal/autograd"
	"github.com/repro/snntest/internal/snn"
	"github.com/repro/snntest/internal/tensor"
)

// LayerMask restricts a loss to a subset of neurons: Masks[ℓ] is a 0/1
// vector over layer ℓ's neurons. A nil LayerMask (or nil entry) means
// "all neurons".
type LayerMask struct {
	Masks []*tensor.Tensor
}

// FullMask returns a mask covering every neuron of the network.
func FullMask(net *snn.Network) *LayerMask {
	m := &LayerMask{Masks: make([]*tensor.Tensor, len(net.Layers))}
	for i, l := range net.Layers {
		m.Masks[i] = tensor.Full(1, l.NumNeurons())
	}
	return m
}

// TargetMask returns a mask selecting exactly the globally indexed neurons
// in target (the paper's N_T = N \ N_A).
func TargetMask(net *snn.Network, target map[int]bool) *LayerMask {
	offs := net.LayerOffsets()
	m := &LayerMask{Masks: make([]*tensor.Tensor, len(net.Layers))}
	for i, l := range net.Layers {
		v := tensor.New(l.NumNeurons())
		for j := 0; j < l.NumNeurons(); j++ {
			if target[offs[i]+j] {
				v.Data()[j] = 1
			}
		}
		m.Masks[i] = v
	}
	return m
}

// Count returns the number of selected neurons.
func (m *LayerMask) Count() int {
	n := 0.0
	for _, v := range m.Masks {
		n += tensor.Sum(v)
	}
	return int(n)
}

// maskFor returns the mask vector of layer li, or nil for "all".
func (m *LayerMask) maskFor(li int) *tensor.Tensor {
	if m == nil || m.Masks == nil {
		return nil
	}
	return m.Masks[li]
}

// hingeBelow returns Σ mask ⊙ max(0, floor − x): the generic hinge used by
// L1, L2 and L3.
func hingeBelow(x *ag.Node, floor float64, mask *tensor.Tensor) *ag.Node {
	h := ag.Relu(ag.AddScalar(ag.Neg(x), floor))
	if mask != nil {
		h = ag.MulConstVec(h, mask)
	}
	return ag.Sum(h)
}

// L1 (Eq. 9) penalizes output neurons that fire no spike during the
// inference window, reinforcing fault-effect sensitization at the output.
func L1(res *snn.GraphResult) *ag.Node {
	return hingeBelow(res.LayerCounts(res.OutputLayer()), 1, nil)
}

// L2 (Eq. 10) penalizes any neuron that fires no spike — neuron activation
// is the necessary condition for exposing dead and timing faults, and
// uniform activation equalizes neuron importance. The mask restricts the
// hinge to the current target set N_T.
func L2(res *snn.GraphResult, mask *LayerMask) *ag.Node {
	terms := make([]*ag.Node, len(res.Spikes))
	for li := range res.Spikes {
		terms[li] = hingeBelow(res.LayerCounts(li), 1, mask.maskFor(li))
	}
	return ag.AddN(terms...)
}

// temporalDiversity returns the differentiable TD^{ℓi} vector of layer li
// (Eq. 11): the number of state changes of each neuron's train.
func temporalDiversity(res *snn.GraphResult, li int) *ag.Node {
	spikes := res.Spikes[li]
	n := spikes[0].Value.Len()
	if len(spikes) < 2 {
		return ag.Const(tensor.New(n))
	}
	diffs := make([]*ag.Node, 0, len(spikes)-1)
	for t := 1; t < len(spikes); t++ {
		d := ag.Abs(ag.Sub(ag.Reshape(spikes[t], n), ag.Reshape(spikes[t-1], n)))
		diffs = append(diffs, d)
	}
	return ag.AddN(diffs...)
}

// L3 (Eq. 12) penalizes neurons whose temporal diversity falls below
// tdMin, promoting irregular trains that expose timing-variation faults.
func L3(res *snn.GraphResult, mask *LayerMask, tdMin float64) *ag.Node {
	terms := make([]*ag.Node, len(res.Spikes))
	for li := range res.Spikes {
		terms[li] = hingeBelow(temporalDiversity(res, li), tdMin, mask.maskFor(li))
	}
	return ag.AddN(terms...)
}

// L4 (Eq. 13) penalizes non-uniform synapse contributions
// w_{j,i}·|O^{ℓ-1,j}| into each post-synaptic neuron, so that strong
// synapses cannot mask the faults of weak ones. Layers without faultable
// fan-in weights (pooling) are skipped, as is the first layer (its
// presynaptic side is the input, not a neuron population, per the ℓ ≥ 2
// range of Eq. 13).
func L4(net *snn.Network, res *snn.GraphResult) *ag.Node {
	var terms []*ag.Node
	for li := 1; li < len(net.Layers); li++ {
		proj := net.Layers[li].Proj
		fanIn := proj.FanIn()
		if fanIn == nil {
			continue
		}
		pre := res.LayerCounts(li - 1)
		var own *ag.Node
		if _, ok := proj.(*snn.RecurrentProj); ok {
			own = res.LayerCounts(li)
		}
		contrib := proj.ContributionCounts(pre, own)
		terms = append(terms, ag.Sum(ag.MaskedRowVariance(fanIn, contrib)))
	}
	if len(terms) == 0 {
		return ag.Const(tensor.Scalar(0))
	}
	return ag.AddN(terms...)
}

// L5 (Eq. 16) is the total hidden-layer spike traffic; stage 2 minimizes
// it to reduce refractory information loss while holding O^L constant.
func L5(res *snn.GraphResult) *ag.Node {
	if len(res.Spikes) == 1 {
		return ag.Const(tensor.Scalar(0))
	}
	terms := make([]*ag.Node, 0, len(res.Spikes)-1)
	for li := 0; li < len(res.Spikes)-1; li++ {
		terms = append(terms, ag.Sum(res.LayerCounts(li)))
	}
	return ag.AddN(terms...)
}

// OutputMismatch returns the differentiable ‖O^L − ref‖₁ penalty that
// enforces stage 2's constant-output constraint; ref holds the reference
// output trains [T, N^L] from stage 1.
func OutputMismatch(res *snn.GraphResult, ref *tensor.Tensor) *ag.Node {
	out := res.Spikes[res.OutputLayer()]
	n := out[0].Value.Len()
	terms := make([]*ag.Node, len(out))
	for t, s := range out {
		refT := ref.Step(t).Reshape(n)
		terms[t] = ag.Sum(ag.Abs(ag.Sub(ag.Reshape(s, n), ag.Const(refT))))
	}
	return ag.AddN(terms...)
}
