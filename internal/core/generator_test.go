package core

import (
	"math/rand"
	"testing"
	"time"

	"github.com/repro/snntest/internal/fault"
	"github.com/repro/snntest/internal/snn"
	"github.com/repro/snntest/internal/tensor"
)

func TestAssembleInterleavesZeros(t *testing.T) {
	net := smallNet(1)
	c1 := tensor.Full(1, 3, 4) // 3 steps of all-ones
	c2 := tensor.Full(1, 2, 4)
	c3 := tensor.Full(1, 4, 4)
	stim := Assemble(net, []*tensor.Tensor{c1, c2, c3})
	// Eq. 8: 2·3 + 2·2 + 4 = 14 steps.
	if stim.Dim(0) != 14 {
		t.Fatalf("assembled steps = %d, want 14", stim.Dim(0))
	}
	// Layout: I¹(0-2) 0¹(3-5) I²(6-7) 0²(8-9) I³(10-13).
	stepSum := func(s int) float64 {
		sum := 0.0
		for i := 0; i < 4; i++ {
			sum += stim.At(s, i)
		}
		return sum
	}
	for s := 0; s < 3; s++ {
		if stepSum(s) != 4 {
			t.Errorf("step %d should be chunk 1 content", s)
		}
	}
	for s := 3; s < 6; s++ {
		if stepSum(s) != 0 {
			t.Errorf("step %d should be zero separator", s)
		}
	}
	if stepSum(6) != 4 || stepSum(8) != 0 || stepSum(10) != 4 || stepSum(13) != 4 {
		t.Error("chunk layout wrong")
	}
}

func TestAssembleSingleChunkNoSeparator(t *testing.T) {
	net := smallNet(2)
	stim := Assemble(net, []*tensor.Tensor{tensor.Full(1, 5, 4)})
	if stim.Dim(0) != 5 {
		t.Errorf("single chunk duration = %d, want 5 (no trailing zeros)", stim.Dim(0))
	}
}

func TestAssembleEmpty(t *testing.T) {
	net := smallNet(3)
	stim := Assemble(net, nil)
	if stim.Dim(0) != 1 || tensor.Sum(stim) != 0 {
		t.Error("empty assembly should be a single zero step")
	}
}

func TestCalibrateTInMinReachesAllOutputs(t *testing.T) {
	net := smallNet(4)
	cfg := TestConfig()
	rng := rand.New(rand.NewSource(5))
	tmin := must(CalibrateTInMin(net, &cfg, rng))
	if tmin < 1 {
		t.Fatalf("T_in,min = %d", tmin)
	}
	// The calibrated duration must not be absurd for a 2-layer net.
	if tmin > 64 {
		t.Errorf("T_in,min = %d, implausibly large", tmin)
	}
}

func TestGenerateActivatesNeuronsAndAssembles(t *testing.T) {
	net := smallNet(6)
	cfg := TestConfig()
	cfg.Seed = 7
	res := must(Generate(net, cfg))

	if res.Stimulus == nil || res.TotalSteps() < 1 {
		t.Fatal("no stimulus generated")
	}
	if res.ActivatedFraction < 0.9 {
		t.Errorf("activated fraction = %.2f; a small dense net should reach ≥ 0.9", res.ActivatedFraction)
	}
	if len(res.Chunks) == 0 || len(res.Trace) != len(res.Chunks) {
		t.Fatalf("chunks/trace mismatch: %d/%d", len(res.Chunks), len(res.Trace))
	}
	// Stimulus must be binary.
	for _, v := range res.Stimulus.Data() {
		if v != 0 && v != 1 {
			t.Fatal("non-binary stimulus")
		}
	}
	// Eq. 8 arithmetic: total = Σ 2·Tj + Td.
	want := 0
	for i, c := range res.Chunks {
		want += c.Dim(0)
		if i < len(res.Chunks)-1 {
			want += c.Dim(0)
		}
	}
	if res.TotalSteps() != want {
		t.Errorf("assembled duration %d, Eq. 8 gives %d", res.TotalSteps(), want)
	}
	// Activated set must be consistent with re-simulating the stimulus.
	rec := net.Run(res.Stimulus)
	act := rec.ActivatedNeurons(net.LayerOffsets(), 1)
	for g := range res.Activated {
		if !act[g] {
			t.Errorf("neuron %d reported activated but silent under the assembled stimulus", g)
		}
	}
	if res.Runtime <= 0 {
		t.Error("runtime not measured")
	}
	if res.DurationMS(net) != float64(res.TotalSteps()) {
		t.Error("DurationMS with 1 ms steps must equal step count")
	}
	if res.DurationSamples(10) != float64(res.TotalSteps())/10 {
		t.Error("DurationSamples arithmetic wrong")
	}
}

func TestGenerateDeterministicWithSeed(t *testing.T) {
	net := smallNet(8)
	cfg := TestConfig()
	cfg.Seed = 9
	a := must(Generate(net, cfg))
	b := must(Generate(net, cfg))
	if !tensor.Equal(a.Stimulus, b.Stimulus, 0) {
		t.Error("same seed must reproduce the same stimulus")
	}
}

func TestGenerateRespectsTimeLimit(t *testing.T) {
	net := smallNet(10)
	cfg := TestConfig()
	cfg.TimeLimit = 0 // expire immediately after the first checks
	res := must(Generate(net, cfg))
	if len(res.Chunks) > 1 {
		t.Errorf("time-limited run produced %d chunks", len(res.Chunks))
	}
}

func TestGenerateRespectsMaxIterations(t *testing.T) {
	net := smallNet(11)
	cfg := TestConfig()
	cfg.MaxIterations = 1
	res := must(Generate(net, cfg))
	if len(res.Chunks) > 1 {
		t.Errorf("MaxIterations=1 produced %d chunks", len(res.Chunks))
	}
}

// The headline property: the optimized stimulus achieves high fault
// coverage. (The optimized-vs-random advantage that motivates the paper
// only materializes on non-trivial models where random inputs leave most
// neurons silent; the benchmark harness checks it at small scale, while
// this unit test checks absolute coverage on a toy.)
func TestGeneratedTestCoversFaults(t *testing.T) {
	net := smallNet(12)
	cfg := TestConfig()
	cfg.Seed = 13
	res := must(Generate(net, cfg))

	faults := fault.Enumerate(net, fault.DefaultOptions())
	sim := must(fault.Simulate(net, faults, res.Stimulus, 1, nil))
	fcOpt := float64(sim.NumDetected()) / float64(len(faults))

	if fcOpt < 0.6 {
		t.Errorf("optimized stimulus FC = %.2f; expected ≥ 0.6 on a dense toy net", fcOpt)
	}
	// Saturated-neuron faults are self-activating and must essentially all
	// be caught by a stimulus that makes every neuron participate.
	det, tot := 0, 0
	for i, f := range faults {
		if f.Kind == fault.NeuronSaturated {
			tot++
			if sim.Detected[i] {
				det++
			}
		}
	}
	if float64(det)/float64(tot) < 0.9 {
		t.Errorf("saturated-neuron coverage = %d/%d; expected ≥ 0.9", det, tot)
	}
}

func TestGenerateOnConvNetwork(t *testing.T) {
	// The generator must handle conv/pool architectures, not just dense.
	rng := rand.New(rand.NewSource(15))
	net := must(snn.BuildNMNIST(rng, snn.ScaleTiny))
	cfg := TestConfig()
	cfg.Steps1 = 25
	cfg.MaxIterations = 2
	cfg.TimeLimit = time.Minute
	res := must(Generate(net, cfg))
	if res.TotalSteps() < 1 {
		t.Fatal("no stimulus for conv network")
	}
	if res.ActivatedFraction == 0 {
		t.Error("conv generation activated nothing")
	}
}
