package core

import (
	"testing"

	"github.com/repro/snntest/internal/fault"
	"github.com/repro/snntest/internal/tensor"
)

func TestCompactPreservesCoverage(t *testing.T) {
	net := smallNet(20)
	cfg := TestConfig()
	cfg.Seed = 21
	cfg.MinNewFraction = 0 // let redundant chunks accumulate
	res := must(Generate(net, cfg))
	faults := fault.Enumerate(net, fault.DefaultOptions())

	before := must(fault.Simulate(net, faults, res.Stimulus, 1, nil)).NumDetected()
	compacted, stats, err := Compact(net, res, faults, 1)
	if err != nil {
		t.Fatal(err)
	}
	after := must(fault.Simulate(net, faults, compacted.Stimulus, 1, nil)).NumDetected()

	if stats.ChunksAfter > stats.ChunksBefore || stats.StepsAfter > stats.StepsBefore {
		t.Errorf("compaction grew the test: %+v", stats)
	}
	// Union-of-chunks detection must be at least the per-chunk union the
	// compactor certified; the assembled test may only differ through
	// cross-chunk membrane interactions, which the zero separators
	// eliminate — so coverage must not regress.
	if after < before {
		t.Errorf("compaction lost coverage: %d → %d detected", before, after)
	}
	if stats.Detected < after {
		t.Errorf("certified %d < observed %d", stats.Detected, after)
	}
}

func TestCompactSingleChunkNoop(t *testing.T) {
	net := smallNet(22)
	cfg := TestConfig()
	cfg.Seed = 23
	cfg.MaxIterations = 1
	res := must(Generate(net, cfg))
	if len(res.Chunks) != 1 {
		t.Skip("needs a single-chunk result")
	}
	faults := fault.Enumerate(net, fault.DefaultOptions())
	compacted, stats, err := Compact(net, res, faults, 1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ChunksAfter != 1 || compacted.TotalSteps() != res.TotalSteps() {
		t.Error("single-chunk compaction must be a no-op")
	}
}

func TestCompactDropsRedundantChunk(t *testing.T) {
	// Hand-build a result with a duplicated chunk: the duplicate detects
	// exactly the same faults, so compaction must drop one copy.
	net := smallNet(24)
	cfg := TestConfig()
	cfg.Seed = 25
	cfg.MaxIterations = 1
	res := must(Generate(net, cfg))
	dup := &Result{
		Chunks:    []*tensor.Tensor{res.Chunks[0], res.Chunks[0].Clone()},
		TInMin:    res.TInMin,
		Activated: res.Activated,
	}
	dup.Stimulus = Assemble(net, dup.Chunks)
	faults := fault.Enumerate(net, fault.DefaultOptions())
	_, stats, err := Compact(net, dup, faults, 1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ChunksAfter != 1 {
		t.Errorf("duplicate chunk not dropped: %+v", stats)
	}
}
