package core

import (
	"context"
	"testing"

	"github.com/repro/snntest/internal/fault"
	"github.com/repro/snntest/internal/obs"
	"github.com/repro/snntest/internal/tensor"
)

// withObsRecorder turns the obs layer on for one test, backed by an
// in-memory recorder, and restores the dark default afterwards.
func withObsRecorder(t *testing.T) *obs.Recorder {
	t.Helper()
	rec := &obs.Recorder{}
	obs.SetSinks(rec)
	obs.ResetCounters()
	obs.Enable()
	t.Cleanup(func() {
		obs.Disable()
		obs.SetSinks()
		obs.ResetCounters()
	})
	return rec
}

// spanByName returns the single recorded span with the given name.
func spanByName(t *testing.T, rec *obs.Recorder, name string) obs.Event {
	t.Helper()
	spans := rec.SpansNamed(name)
	if len(spans) != 1 {
		t.Fatalf("spans named %q = %d, want 1", name, len(spans))
	}
	return spans[0]
}

// TestObsGenerateSpanTree runs the serial generator under a recorder and
// checks the span tree: calibrate, iterations, restarts and stage 2 all
// nest under one generate root, and the counters reconcile with Trace.
func TestObsGenerateSpanTree(t *testing.T) {
	rec := withObsRecorder(t)
	net := smallNet(21)
	cfg := TestConfig()
	cfg.Seed = 22
	res := must(Generate(net, cfg))

	root := spanByName(t, rec, "generate")
	if root.Parent != 0 {
		t.Errorf("generate span has parent %d, want root", root.Parent)
	}
	calib := spanByName(t, rec, "generate/calibrate")
	if calib.Parent != root.ID {
		t.Errorf("calibrate parent = %d, want generate id %d", calib.Parent, root.ID)
	}

	iters := rec.SpansNamed("generate/iteration")
	if len(iters) != len(res.Trace) {
		t.Fatalf("iteration spans = %d, want %d (one per Trace entry)", len(iters), len(res.Trace))
	}
	iterIDs := make(map[uint64]bool, len(iters))
	for _, it := range iters {
		if it.Parent != root.ID {
			t.Errorf("iteration span parent = %d, want generate id %d", it.Parent, root.ID)
		}
		iterIDs[it.ID] = true
	}
	restarts := rec.SpansNamed("generate/restart")
	if len(restarts) != len(res.Trace) {
		t.Errorf("restart spans = %d, want %d (serial path: one per iteration)", len(restarts), len(res.Trace))
	}
	for _, r := range restarts {
		if !iterIDs[r.Parent] {
			t.Errorf("restart span parent %d is not an iteration span", r.Parent)
		}
	}
	if got := len(rec.SpansNamed("generate/stage2")); got != len(res.Trace) {
		t.Errorf("stage2 spans = %d, want %d", got, len(res.Trace))
	}

	snap := obs.Snapshot()
	if snap["core_iterations_total"] != int64(len(res.Trace)) {
		t.Errorf("core_iterations_total = %d, want %d", snap["core_iterations_total"], len(res.Trace))
	}
	wantRestarts := int64(0)
	for _, tr := range res.Trace {
		wantRestarts += int64(tr.RestartsRun)
	}
	if snap["core_restarts_run_total"] != wantRestarts {
		t.Errorf("core_restarts_run_total = %d, want %d", snap["core_restarts_run_total"], wantRestarts)
	}
	if snap["snn_forward_passes_total"] == 0 {
		t.Error("generator ran with zero recorded forward passes")
	}
}

// TestObsParallelRestartSpans covers the multi-restart path: one restart
// span per evaluated restart, parented under its iteration.
func TestObsParallelRestartSpans(t *testing.T) {
	rec := withObsRecorder(t)
	net := smallNet(23)
	cfg := TestConfig()
	cfg.Seed = 24
	cfg.Parallel.Restarts = 3
	cfg.Parallel.Workers = 2
	res := must(Generate(net, cfg))

	wantRestarts := 0
	for _, tr := range res.Trace {
		wantRestarts += tr.RestartsRun
	}
	if got := len(rec.SpansNamed("generate/restart")); got != wantRestarts {
		t.Errorf("restart spans = %d, want Σ RestartsRun = %d", got, wantRestarts)
	}
	if got := len(rec.SpansNamed("generate/calibrate/candidate")); got == 0 {
		t.Error("parallel calibration emitted no candidate spans")
	}
}

// TestObsGenerateBitIdentical is the zero-interference gate: the obs
// layer (enabled with a live recorder) must not change the generated
// stimulus by a single byte relative to a dark run.
func TestObsGenerateBitIdentical(t *testing.T) {
	net := smallNet(25)
	cfg := TestConfig()
	cfg.Seed = 26
	dark := must(Generate(net.Clone(), cfg))

	withObsRecorder(t)
	lit := must(Generate(net.Clone(), cfg))

	if !tensor.Equal(dark.Stimulus, lit.Stimulus, 0) {
		t.Fatal("enabling obs changed the generated stimulus")
	}
	if len(dark.Trace) != len(lit.Trace) {
		t.Fatalf("trace lengths differ: %d vs %d", len(dark.Trace), len(lit.Trace))
	}
}

// TestObsCompactSpanNestsCampaigns checks CompactContext: the compact
// span parents the per-chunk fault campaigns.
func TestObsCompactSpanNestsCampaigns(t *testing.T) {
	rec := withObsRecorder(t)
	net := smallNet(27)
	cfg := TestConfig()
	cfg.Seed = 28
	res := must(Generate(net, cfg))
	faults := fault.Enumerate(net, fault.DefaultOptions())

	_, _, err := CompactContext(context.Background(), net, res, faults, 2)
	if err != nil {
		t.Fatal(err)
	}
	comp := spanByName(t, rec, "compact")
	sims := rec.SpansNamed("campaign/simulate")
	if len(sims) == 0 {
		t.Fatal("compaction ran no fault campaigns")
	}
	for _, s := range sims {
		if s.Parent != comp.ID {
			t.Errorf("campaign span parent = %d, want compact id %d", s.Parent, comp.ID)
		}
	}
}
