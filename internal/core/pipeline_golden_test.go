package core

import (
	"math/rand"
	"testing"

	"github.com/repro/snntest/internal/fault"
	"github.com/repro/snntest/internal/snn"
	"github.com/repro/snntest/internal/tensor"
)

// runPipeline executes the full Generate → Compact → fault classification
// chain on the tiny NMNIST builder fixture with the given parallel
// settings, returning everything the golden assertions inspect.
func runPipeline(t *testing.T, par Parallel) (*Result, CompactionStats, float64) {
	t.Helper()
	net := must(snn.Build("nmnist", rand.New(rand.NewSource(97)), snn.ScaleTiny))
	cfg := TestConfig()
	cfg.Seed = 98
	cfg.Steps1 = 20
	cfg.MaxIterations = 3
	cfg.MaxGrowth = 1
	cfg.TInMin = 6
	cfg.Parallel = par
	res := must(Generate(net, cfg))

	faults := fault.Enumerate(net, fault.DefaultOptions())
	compacted, stats, err := Compact(net, res, faults, 2)
	if err != nil {
		t.Fatal(err)
	}
	sim := must(fault.Simulate(net, faults, compacted.Stimulus, 2, nil))
	coverage := float64(sim.NumDetected()) / float64(len(faults))
	return compacted, stats, coverage
}

// TestEquivPipelineGolden pins the end-to-end pipeline: the seed-fixed
// stimulus shape, activated fraction, and fault coverage must be stable
// across repeated runs and bit-identical between Workers=1 and Workers=4.
func TestEquivPipelineGolden(t *testing.T) {
	first, firstStats, firstCov := runPipeline(t, Parallel{Restarts: 4, Workers: 1})

	if first.Stimulus.Dim(0) < 1 {
		t.Fatal("pipeline produced an empty stimulus")
	}
	if first.ActivatedFraction <= 0 || first.ActivatedFraction > 1 {
		t.Fatalf("activated fraction %.3f out of (0,1]", first.ActivatedFraction)
	}
	if firstCov <= 0 {
		t.Fatal("compacted test detects no faults")
	}
	if firstStats.StepsAfter > firstStats.StepsBefore {
		t.Errorf("compaction grew the test: %d → %d steps", firstStats.StepsBefore, firstStats.StepsAfter)
	}

	rerun, rerunStats, rerunCov := runPipeline(t, Parallel{Restarts: 4, Workers: 1})
	if !tensor.Equal(first.Stimulus, rerun.Stimulus, 0) {
		t.Error("repeated run changed the stimulus despite the fixed seed")
	}
	if firstStats != rerunStats || firstCov != rerunCov {
		t.Errorf("repeated run changed stats/coverage: %+v/%.4f vs %+v/%.4f",
			firstStats, firstCov, rerunStats, rerunCov)
	}

	wide, wideStats, wideCov := runPipeline(t, Parallel{Restarts: 4, Workers: 4})
	if !tensor.Equal(first.Stimulus, wide.Stimulus, 0) {
		t.Error("Workers=4 pipeline stimulus differs from Workers=1")
	}
	if firstStats != wideStats || firstCov != wideCov {
		t.Errorf("Workers=4 changed stats/coverage: %+v/%.4f vs %+v/%.4f",
			firstStats, firstCov, wideStats, wideCov)
	}
}
