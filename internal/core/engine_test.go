package core

import (
	"math/rand"
	"testing"

	"github.com/repro/snntest/internal/snn"
	"github.com/repro/snntest/internal/tensor"
)

// TestEquivReferenceEngineBitIdentity pins the buffer-reusing generation
// engine (arena, record/scratch reuse, mapless activation counting) to
// the per-iteration-allocation reference engine: for every fixture and
// for both the serial and the multi-restart paths, the generated
// stimulus and the iteration trace must be bit-identical — the engines
// may differ only in where buffers live.
func TestEquivReferenceEngineBitIdentity(t *testing.T) {
	for _, benchmark := range []string{"nmnist", "ibm-gesture", "shd"} {
		t.Run(benchmark, func(t *testing.T) {
			for _, par := range []Parallel{{}, {Restarts: 3, Workers: 4}} {
				net := must(snn.Build(benchmark, rand.New(rand.NewSource(33)), snn.ScaleTiny))
				cfg := fastParallelConfig(par.Restarts, par.Workers)
				cfg.Parallel = par

				fast := must(Generate(net, cfg))
				cfg.ReferenceEngine = true
				ref := must(Generate(net, cfg))

				if !tensor.Equal(fast.Stimulus, ref.Stimulus, 0) {
					t.Fatalf("restarts=%d: fast-engine stimulus differs from reference engine", par.Restarts)
				}
				if len(fast.Trace) != len(ref.Trace) {
					t.Fatalf("restarts=%d: trace length %d vs %d", par.Restarts, len(fast.Trace), len(ref.Trace))
				}
				for i := range fast.Trace {
					if fast.Trace[i] != ref.Trace[i] {
						t.Errorf("restarts=%d: trace[%d] differs: %+v vs %+v", par.Restarts, i, fast.Trace[i], ref.Trace[i])
					}
				}
			}
		})
	}
}
