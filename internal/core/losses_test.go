package core

import (
	"math"
	"math/rand"
	"testing"

	ag "github.com/repro/snntest/internal/autograd"
	"github.com/repro/snntest/internal/snn"
	"github.com/repro/snntest/internal/tensor"
)

// smallNet builds a 2-layer dense network used across testgen tests.
func smallNet(seed int64) *snn.Network {
	rng := rand.New(rand.NewSource(seed))
	l1 := must(snn.NewLayer("h", must(snn.NewDenseProj(tensor.RandNormal(rng, 0.25, 0.5, 5, 4))), snn.DefaultLIF()))
	l2 := must(snn.NewLayer("out", must(snn.NewDenseProj(tensor.RandNormal(rng, 0.25, 0.5, 3, 5))), snn.DefaultLIF()))
	return must(snn.NewNetwork("small", []int{4}, 1.0, l1, l2))
}

// graphRun runs the net differentiably on a binary stimulus.
func graphRun(net *snn.Network, stim *tensor.Tensor) *snn.GraphResult {
	steps := stim.Dim(0)
	frame := net.InputLen()
	nodes := make([]*ag.Node, steps)
	for t := 0; t < steps; t++ {
		nodes[t] = ag.Const(tensor.FromSlice(stim.Data()[t*frame:(t+1)*frame], net.InShape...))
	}
	return net.RunGraph(nodes)
}

func TestL1ZeroWhenAllOutputsFire(t *testing.T) {
	net := smallNet(1)
	stim := tensor.RandBernoulli(rand.New(rand.NewSource(2)), 0.9, 20, 4)
	res := graphRun(net, stim)
	counts := res.LayerCounts(res.OutputLayer()).Value
	allFire := tensor.Min(counts) >= 1
	l1 := L1(res).Value.Data()[0]
	if allFire && l1 != 0 {
		t.Errorf("L1 = %g with all outputs firing", l1)
	}
	if !allFire && l1 == 0 {
		t.Errorf("L1 = 0 with silent outputs (counts %v)", counts)
	}
}

func TestL1CountsSilentOutputs(t *testing.T) {
	net := smallNet(3)
	res := graphRun(net, net.ZeroInput(10))
	// Zero input → zero output spikes → L1 = N^L · 1 = 3.
	if l1 := L1(res).Value.Data()[0]; l1 != 3 {
		t.Errorf("L1 on zero stimulus = %g, want 3", l1)
	}
}

func TestL2MaskRestriction(t *testing.T) {
	net := smallNet(4)
	res := graphRun(net, net.ZeroInput(10))
	full := FullMask(net)
	if l2 := L2(res, full).Value.Data()[0]; l2 != 8 {
		t.Errorf("full-mask L2 on zero stimulus = %g, want 8 (5+3 silent neurons)", l2)
	}
	// Mask selecting only the output layer's first neuron.
	target := map[int]bool{5: true}
	m := TargetMask(net, target)
	if m.Count() != 1 {
		t.Fatalf("mask count = %d", m.Count())
	}
	if l2 := L2(res, m).Value.Data()[0]; l2 != 1 {
		t.Errorf("masked L2 = %g, want 1", l2)
	}
}

func TestL3TemporalDiversityHinge(t *testing.T) {
	net := smallNet(5)
	// A persistent stimulus produces some toggling; compare against the
	// explicit record-based TD computation.
	stim := tensor.RandBernoulli(rand.New(rand.NewSource(6)), 0.7, 16, 4)
	res := graphRun(net, stim)
	rec := res.ToRecord(net)
	tdMin := 6.0
	want := 0.0
	for li := 0; li < 2; li++ {
		td := rec.TemporalDiversity(li)
		for _, v := range td.Data() {
			if v < tdMin {
				want += tdMin - v
			}
		}
	}
	got := L3(res, FullMask(net), tdMin).Value.Data()[0]
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("L3 = %g, want %g (record-based)", got, want)
	}
}

func TestL4SkipsFirstLayerAndPooling(t *testing.T) {
	// A single-layer network has no ℓ ≥ 2 term: L4 must be 0.
	rng := rand.New(rand.NewSource(7))
	one := must(snn.NewNetwork("one", []int{3}, 1.0,
		must(snn.NewLayer("out", must(snn.NewDenseProj(tensor.RandNormal(rng, 0.3, 0.4, 2, 3))), snn.DefaultLIF()))))
	res := graphRun(one, tensor.RandBernoulli(rng, 0.5, 8, 3))
	if l4 := L4(one, res).Value.Data()[0]; l4 != 0 {
		t.Errorf("single-layer L4 = %g, want 0", l4)
	}
}

func TestL4ZeroForUniformContributions(t *testing.T) {
	// Second-layer weights all equal and first layer firing uniformly →
	// contributions are uniform → variance 0.
	l1 := must(snn.NewLayer("h", must(snn.NewDenseProj(tensor.Full(2, 4, 2))), snn.DefaultLIF()))
	l2 := must(snn.NewLayer("out", must(snn.NewDenseProj(tensor.Full(0.5, 2, 4))), snn.DefaultLIF()))
	net := must(snn.NewNetwork("uniform", []int{2}, 1.0, l1, l2))
	stim := tensor.Full(1, 6, 2)
	res := graphRun(net, stim)
	if l4 := L4(net, res).Value.Data()[0]; l4 != 0 {
		t.Errorf("uniform L4 = %g, want 0", l4)
	}
}

func TestL5CountsHiddenTrafficOnly(t *testing.T) {
	net := smallNet(8)
	stim := tensor.RandBernoulli(rand.New(rand.NewSource(9)), 0.8, 12, 4)
	res := graphRun(net, stim)
	rec := res.ToRecord(net)
	want := tensor.Sum(rec.Layers[0]) // hidden layer only
	if got := L5(res).Value.Data()[0]; got != want {
		t.Errorf("L5 = %g, want %g", got, want)
	}
}

func TestOutputMismatchPenalty(t *testing.T) {
	net := smallNet(10)
	stim := tensor.RandBernoulli(rand.New(rand.NewSource(11)), 0.6, 10, 4)
	res := graphRun(net, stim)
	ref := res.ToRecord(net).Output()
	if m := OutputMismatch(res, ref).Value.Data()[0]; m != 0 {
		t.Errorf("self mismatch = %g, want 0", m)
	}
	// Flip one reference bit: mismatch = 1.
	ref2 := ref.Clone()
	ref2.Data()[0] = 1 - ref2.Data()[0]
	if m := OutputMismatch(res, ref2).Value.Data()[0]; m != 1 {
		t.Errorf("one-bit mismatch = %g, want 1", m)
	}
}

func TestLossGradientsReachInput(t *testing.T) {
	// Every stage-1 loss must propagate a non-trivially zero gradient to
	// the input logits through the full Gumbel-Softmax/STE/SNN pipeline.
	net := smallNet(12)
	rng := rand.New(rand.NewSource(13))
	cfg := TestConfig()
	opt := newChunkOptimizer(net, &cfg, rng, 10)
	res, _, err := opt.forward(0.5)
	if err != nil {
		t.Fatal(err)
	}
	mask := FullMask(net)
	losses := map[string]*ag.Node{
		"L1": L1(res),
		"L2": L2(res, mask),
		"L3": L3(res, mask, 4),
		"L4": L4(net, res),
		"L5": L5(res),
	}
	for name, l := range losses {
		opt.adam.ZeroGrad()
		if l.Value.Data()[0] == 0 {
			continue // nothing to optimize; zero gradient is correct
		}
		ag.Backward(l)
		if tensor.L1Norm(opt.leaf.Grad) == 0 {
			t.Errorf("%s: no gradient reached the input logits", name)
		}
	}
}

func TestFullMaskAndTargetMask(t *testing.T) {
	net := smallNet(14)
	if FullMask(net).Count() != 8 {
		t.Errorf("full mask count = %d, want 8", FullMask(net).Count())
	}
	m := TargetMask(net, map[int]bool{0: true, 4: true, 7: true})
	if m.Count() != 3 {
		t.Errorf("target mask count = %d, want 3", m.Count())
	}
	if m.Masks[0].Data()[0] != 1 || m.Masks[0].Data()[4] != 1 || m.Masks[1].Data()[2] != 1 {
		t.Error("target mask selected wrong neurons")
	}
	if m.Masks[0].Data()[1] != 0 {
		t.Error("unselected neuron present in mask")
	}
}

func TestAlphasInverseMagnitude(t *testing.T) {
	a := alphas([4]float64{10, 0.5, 0, 100})
	if a[0] != 0.1 {
		t.Errorf("alpha[0] = %g, want 0.1", a[0])
	}
	// Magnitudes below 1 clamp to 1 to avoid exploding weights.
	if a[1] != 1 || a[2] != 1 {
		t.Errorf("small-magnitude alphas = %g/%g, want 1/1", a[1], a[2])
	}
	if a[3] != 0.01 {
		t.Errorf("alpha[3] = %g, want 0.01", a[3])
	}
}
