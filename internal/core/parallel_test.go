package core

import (
	"context"
	"math/rand"
	"testing"

	"github.com/repro/snntest/internal/snn"
	"github.com/repro/snntest/internal/tensor"
)

// fastParallelConfig is a minimal-budget config with the multi-restart
// engine enabled; TInMin is pinned so each case exercises the restart
// machinery rather than calibration.
func fastParallelConfig(restarts, workers int) Config {
	cfg := TestConfig()
	cfg.Steps1 = 20
	cfg.MaxIterations = 2
	cfg.MaxGrowth = 1
	cfg.TInMin = 6
	cfg.Seed = 21
	cfg.Parallel = Parallel{Restarts: restarts, Workers: workers}
	return cfg
}

// The tentpole determinism contract: the worker count must never change
// the generated stimulus. Checked bit-for-bit on every builder fixture.
func TestEquivGenerateWorkerCountInvariance(t *testing.T) {
	for _, benchmark := range []string{"nmnist", "ibm-gesture", "shd"} {
		t.Run(benchmark, func(t *testing.T) {
			net := must(snn.Build(benchmark, rand.New(rand.NewSource(31)), snn.ScaleTiny))
			serial := must(Generate(net, fastParallelConfig(4, 1)))
			parallel := must(Generate(net, fastParallelConfig(4, 4)))
			if !tensor.Equal(serial.Stimulus, parallel.Stimulus, 0) {
				t.Fatal("Workers=4 stimulus differs from Workers=1 at Restarts=4")
			}
			if len(serial.Trace) != len(parallel.Trace) {
				t.Fatalf("trace length differs: %d vs %d", len(serial.Trace), len(parallel.Trace))
			}
			for i := range serial.Trace {
				if serial.Trace[i] != parallel.Trace[i] {
					t.Errorf("trace[%d] differs: %+v vs %+v", i, serial.Trace[i], parallel.Trace[i])
				}
			}
		})
	}
}

// Restarts ∈ {0, 1} must select the serial legacy path and reproduce its
// output byte-for-byte, whatever Workers says.
func TestEquivRestartsOneMatchesLegacySerial(t *testing.T) {
	net := smallNet(8)
	cfg := TestConfig()
	cfg.Seed = 9
	legacy := must(Generate(net, cfg))

	cfg.Parallel = Parallel{Restarts: 1, Workers: 4}
	one := must(Generate(net, cfg))
	if !tensor.Equal(legacy.Stimulus, one.Stimulus, 0) {
		t.Error("Restarts=1 must reproduce the serial stimulus byte-for-byte")
	}
}

// Calibration through the parallel engine must also be worker-invariant,
// including the uncalibrated (TInMin=0) entry path of GenerateContext.
func TestEquivCalibrateTInMinParallelWorkerInvariance(t *testing.T) {
	net := smallNet(4)
	cfg := TestConfig()

	cfg.Parallel = Parallel{Restarts: 4, Workers: 1}
	t1 := must(CalibrateTInMinParallel(context.Background(), net, &cfg, 77))
	cfg.Parallel = Parallel{Restarts: 4, Workers: 4}
	t4 := must(CalibrateTInMinParallel(context.Background(), net, &cfg, 77))
	if t1 != t4 {
		t.Fatalf("calibrated T_in,min differs by worker count: %d vs %d", t1, t4)
	}
	if t1 < 1 || t1 > 64 {
		t.Errorf("parallel T_in,min = %d, implausible for a 2-layer net", t1)
	}

	genCfg := fastParallelConfig(2, 1)
	genCfg.TInMin = 0 // force the calibration entry path
	a := must(Generate(net, genCfg))
	genCfg.Parallel.Workers = 4
	b := must(Generate(net, genCfg))
	if a.TInMin != b.TInMin || !tensor.Equal(a.Stimulus, b.Stimulus, 0) {
		t.Error("calibrated parallel generation differs by worker count")
	}
}

// Trace provenance: parallel iterations record which restart won and how
// many ran; the serial path keeps the legacy 0/1 values.
func TestParallelTraceProvenance(t *testing.T) {
	net := smallNet(6)
	cfg := fastParallelConfig(3, 2)
	res := must(Generate(net, cfg))
	if len(res.Trace) == 0 {
		t.Fatal("no iterations recorded")
	}
	for _, it := range res.Trace {
		if it.RestartsRun != 3 {
			t.Errorf("iteration %d: RestartsRun = %d, want 3", it.Iteration, it.RestartsRun)
		}
		if it.Restart < 0 || it.Restart >= 3 {
			t.Errorf("iteration %d: Restart = %d out of [0,3)", it.Iteration, it.Restart)
		}
	}

	cfg.Parallel = Parallel{}
	res = must(Generate(net, cfg))
	for _, it := range res.Trace {
		if it.Restart != 0 || it.RestartsRun != 1 {
			t.Errorf("serial iteration %d: provenance %d/%d, want 0/1", it.Iteration, it.Restart, it.RestartsRun)
		}
	}
}

// A cancelled context stops the parallel engine gracefully: a partial
// (here empty) result, never an error.
func TestGenerateContextCancelledParallel(t *testing.T) {
	net := smallNet(10)
	cfg := fastParallelConfig(4, 2)
	cfg.TimeLimit = TestConfig().TimeLimit
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := must(GenerateContext(ctx, net, cfg))
	if len(res.Chunks) != 0 {
		t.Errorf("cancelled run produced %d chunks", len(res.Chunks))
	}
	if res.Stimulus == nil {
		t.Error("cancelled run must still assemble an (empty) stimulus")
	}
}

// Stress the concurrent restart machinery for the -race gate: many
// restarts, maximum contention, repeated runs sharing one trained-style
// network value.
func TestParallelRestartsRaceStress(t *testing.T) {
	net := smallNet(12)
	cfg := fastParallelConfig(6, 6)
	cfg.MaxIterations = 1
	cfg.Steps1 = 10
	var first *tensor.Tensor
	for rep := 0; rep < 3; rep++ {
		res := must(Generate(net, cfg))
		if first == nil {
			first = res.Stimulus
		} else if !tensor.Equal(first, res.Stimulus, 0) {
			t.Fatalf("rep %d: stimulus changed across identical runs", rep)
		}
	}
}
