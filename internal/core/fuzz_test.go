package core

import (
	"math/rand"
	"testing"

	"github.com/repro/snntest/internal/tensor"
)

// FuzzAssemble feeds arbitrary chunk-duration lists through the Eq. 7/8
// assembly and asserts its structural invariants: total duration follows
// Eq. 8, every chunk lands verbatim at its offset, the separators are
// zero-filled and exactly as long as the chunk they follow, and binary
// chunks yield a binary stimulus — all without panicking.
func FuzzAssemble(f *testing.F) {
	f.Add([]byte{3, 2, 4}, int64(1))
	f.Add([]byte{1}, int64(0))
	f.Add([]byte{}, int64(7))
	f.Add([]byte{8, 8, 8, 8, 8, 8}, int64(-3))
	f.Fuzz(func(t *testing.T, durs []byte, seed int64) {
		net := smallNet(1)
		frame := net.InputLen()
		if len(durs) > 6 {
			durs = durs[:6]
		}
		rng := rand.New(rand.NewSource(seed))
		chunks := make([]*tensor.Tensor, len(durs))
		for ci, d := range durs {
			steps := int(d%8) + 1
			c := tensor.New(append([]int{steps}, net.InShape...)...)
			for i := range c.Data() {
				c.Data()[i] = float64(rng.Intn(2))
			}
			chunks[ci] = c
		}

		stim := Assemble(net, chunks)

		if len(chunks) == 0 {
			if stim.Dim(0) != 1 || tensor.Sum(stim) != 0 {
				t.Fatal("empty assembly must be one zero step")
			}
			return
		}
		want := 0
		for i, c := range chunks {
			want += c.Dim(0)
			if i < len(chunks)-1 {
				want += c.Dim(0)
			}
		}
		if stim.Dim(0) != want {
			t.Fatalf("assembled %d steps, Eq. 8 gives %d", stim.Dim(0), want)
		}
		off := 0
		for i, c := range chunks {
			got := stim.RawRange(off*frame, c.Len())
			for j, v := range c.Data() {
				if got[j] != v {
					t.Fatalf("chunk %d altered at element %d", i, j)
				}
			}
			off += c.Dim(0)
			if i < len(chunks)-1 {
				sep := stim.RawRange(off*frame, c.Len())
				for j, v := range sep {
					if v != 0 {
						t.Fatalf("separator after chunk %d non-zero at element %d", i, j)
					}
				}
				off += c.Dim(0)
			}
		}
		for _, v := range stim.Data() {
			if v != 0 && v != 1 {
				t.Fatal("binary chunks produced a non-binary stimulus")
			}
		}
	})
}
