package core

import (
	"io"
	"runtime"
	"time"

	"github.com/repro/snntest/internal/train"
)

// Parallel configures the deterministic multi-restart generation engine.
// The zero value keeps the original serial algorithm: one chunk optimizer
// per outer iteration, fed directly by the master RNG stream, so existing
// seeds keep reproducing their historical stimuli byte-for-byte.
//
// With Restarts > 1, every outer iteration launches Restarts independent
// chunk optimizers whose RNGs are derived as iterSeed + restartIndex
// (iterSeed drawn once per iteration from the master stream), runs them on
// a bounded worker pool, and picks the winner by a fixed tie-break —
// lowest stage-1 loss, then most newly activated target neurons, then
// lowest restart index. T_in,min calibration likewise evaluates its
// candidate durations concurrently with per-candidate derived RNGs.
// Because every random stream and every selection rule is a pure function
// of the seed, results are bit-identical for ANY worker count; Workers
// only trades cores for wall-clock time.
type Parallel struct {
	// Restarts is K, the number of independently seeded chunk optimizers
	// per outer iteration. 0 and 1 select the serial legacy path.
	Restarts int
	// Workers bounds the goroutines evaluating restarts and calibration
	// candidates; 0 uses GOMAXPROCS. Never affects results, only speed.
	Workers int
}

// enabled reports whether the multi-restart engine is active.
func (p Parallel) enabled() bool { return p.Restarts > 1 }

// restarts returns the effective restart count K (at least 1).
func (p Parallel) restarts() int {
	if p.Restarts < 1 {
		return 1
	}
	return p.Restarts
}

// workers returns the effective pool size for n work items.
func (p Parallel) workers(n int) int {
	w := p.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Config holds the user-defined parameters of the test-generation
// algorithm (Section V-C). The zero value is not usable; start from
// DefaultConfig or TestConfig.
type Config struct {
	// TInMin is the initial chunk duration in steps. When 0, Generate
	// calibrates it as the minimum duration whose optimized input makes
	// every output neuron fire (the paper's min-L1 calibration starting
	// at 1 ms).
	TInMin int
	// TInFloor lower-bounds the calibrated T_in,min. In this simulator a
	// spike cascades through every layer within one step, so very small
	// networks can calibrate to a single step, leaving no room for
	// membrane accumulation; the floor keeps chunks long enough to build
	// temporal structure. 0 behaves as 1 (the paper's starting point).
	TInFloor int
	// TDMinDivisor sets TD_min = T_in,min / TDMinDivisor (paper: 10).
	TDMinDivisor int
	// Steps1 is the number of optimization steps per stage-1 pass
	// (paper: 2000). Stage 2 runs Steps1/2 steps.
	Steps1 int
	// Beta is the initial duration increment, in steps, applied when a
	// stage-1 pass activates no new target neuron (paper: 10 ms); it
	// doubles after every growth.
	Beta int
	// MaxGrowth bounds the number of duration growths per iteration.
	MaxGrowth int
	// MaxIterations bounds the number of generated chunks.
	MaxIterations int
	// MinNewFraction stops the outer loop when an iteration activates
	// fewer new neurons than this fraction of the network (0 keeps the
	// paper's stop-only-on-no-progress behaviour). It bounds the test
	// length on models whose activation tail saturates slowly.
	MinNewFraction float64
	// TimeLimit is the paper's t_limit termination condition (3 h there).
	// Generate enforces it through a context deadline: the zero value
	// expires immediately (matching the historical ad-hoc polling), so
	// callers wanting an effectively unbounded run set a large value.
	TimeLimit time.Duration
	// Parallel configures the deterministic multi-restart engine; the
	// zero value keeps the serial legacy algorithm.
	Parallel Parallel
	// LR is the initial Adam learning rate (paper: 0.1), annealed over
	// each stage with a cosine schedule.
	LR float64
	// TauMax is the maximum Gumbel-Softmax temperature (paper: 0.9),
	// annealed downward over each stage.
	TauMax float64
	// MismatchWeight scales the constant-O^L penalty of stage 2.
	MismatchWeight float64
	// DisableStage2, DisableL3 and DisableL4 switch off parts of the
	// algorithm for the ablation studies.
	DisableStage2 bool
	DisableL3     bool
	DisableL4     bool
	// PlainSigmoid replaces the Gumbel-Softmax relaxation with a plain
	// noise-free sigmoid (ablation of the stochastic reparameterization).
	PlainSigmoid bool
	// ReferenceEngine disables the buffer-reusing generation engine (the
	// per-restart tensor arena, record/scratch reuse and mapless
	// activation counting) and falls back to per-iteration allocation.
	// Results are bit-identical either way — the flag exists as the
	// differential baseline for the equivalence suite and the
	// BENCH_generate speedup measurement.
	ReferenceEngine bool
	// Seed drives every stochastic component.
	Seed int64
	// Log, when non-nil, receives per-iteration progress lines.
	Log io.Writer
}

// DefaultConfig mirrors the paper's settings; suitable for paper-scale
// runs (hours).
func DefaultConfig() Config {
	return Config{
		TDMinDivisor:   10,
		Steps1:         2000,
		Beta:           10,
		MaxGrowth:      4,
		MaxIterations:  64,
		TimeLimit:      3 * time.Hour,
		LR:             0.1,
		TauMax:         0.9,
		MismatchWeight: 25,
		Seed:           1,
	}
}

// TestConfig shrinks the optimization budget so the full algorithm runs
// in seconds on the tiny benchmark models; the structure (two stages,
// duration growth, chunk concatenation) is unchanged.
func TestConfig() Config {
	c := DefaultConfig()
	c.Steps1 = 60
	c.Beta = 5
	c.TInFloor = 8
	c.MaxGrowth = 2
	c.MaxIterations = 12
	c.MinNewFraction = 0.02
	c.TimeLimit = 2 * time.Minute
	return c
}

// steps2 returns the stage-2 step budget (paper: N¹steps/2).
func (c *Config) steps2() int { return c.Steps1 / 2 }

// lrSchedule returns the per-stage learning-rate annealing.
func (c *Config) lrSchedule(steps int) train.Schedule {
	return train.CosineSchedule{Initial: c.LR, Floor: c.LR / 20, Period: steps}
}

// tauSchedule returns the per-stage temperature annealing.
func (c *Config) tauSchedule(steps int) train.Schedule {
	return train.CosineSchedule{Initial: c.TauMax, Floor: 0.1, Period: steps}
}
