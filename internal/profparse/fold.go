package profparse

import (
	"sort"
	"strings"
)

// PhaseStat is one phase's share of a profile. Flat is the value of
// samples labelled with exactly this phase; Cum additionally includes
// every descendant phase — span names are path-like ("generate/restart"
// nests under "generate"), so cumulative attribution is a name-prefix
// fold, no stack decoding required. Fractions are of the profile total
// (labelled + unlabelled), so they are comparable across phases and the
// labelled fractions sum to LabeledFraction.
type PhaseStat struct {
	Phase        string  `json:"phase"`
	Samples      int64   `json:"samples"`
	Flat         int64   `json:"flat_value"`
	FlatFraction float64 `json:"flat_fraction"`
	Cum          int64   `json:"cum_value"`
	CumFraction  float64 `json:"cum_fraction"`
}

// PhaseReport is the phase-label fold of one profile — the data behind
// benchreport's per-phase CPU table and the BENCH_profile.json artifact.
// Phases are sorted by flat value descending (name ascending on ties),
// so rendering the report is deterministic for a given profile.
type PhaseReport struct {
	SampleType      string      `json:"sample_type"`
	SampleUnit      string      `json:"sample_unit"`
	TotalSamples    int64       `json:"total_samples"`
	TotalValue      int64       `json:"total_value"`
	LabeledSamples  int64       `json:"labeled_samples"`
	LabeledValue    int64       `json:"labeled_value"`
	LabeledFraction float64     `json:"labeled_fraction"`
	Phases          []PhaseStat `json:"phases"`
}

// FoldByPhase folds the profile's samples by their `phase` pprof label
// on the value dimension named valueType ("cpu" for CPU profiles; an
// absent dimension falls back to the last one, pprof's own default).
// Ancestor phases that recorded no flat samples of their own still get
// an entry when a descendant did, so Cum("generate") is always present
// on a profile with generate/* activity.
func FoldByPhase(p *Profile, valueType string) PhaseReport {
	vi := p.ValueIndex(valueType)
	if vi < 0 {
		vi = len(p.SampleTypes) - 1
	}
	// The encoder merges samples with identical stacks and labels into
	// one record whose "samples" dimension carries the tick count, so
	// sample totals must be weighted by it — a record is not a tick.
	ci := p.ValueIndex("samples")
	r := PhaseReport{}
	if vi >= 0 {
		r.SampleType = p.SampleTypes[vi].Type
		r.SampleUnit = p.SampleTypes[vi].Unit
	}

	flat := make(map[string]int64)
	count := make(map[string]int64)
	for _, s := range p.Samples {
		var v int64
		if vi >= 0 && vi < len(s.Values) {
			v = s.Values[vi]
		}
		ticks := int64(1)
		if ci >= 0 && ci < len(s.Values) {
			ticks = s.Values[ci]
		}
		r.TotalSamples += ticks
		r.TotalValue += v
		phase, ok := s.Labels["phase"]
		if !ok || phase == "" {
			continue
		}
		r.LabeledSamples += ticks
		r.LabeledValue += v
		flat[phase] += v
		count[phase] += ticks
	}
	if r.TotalValue > 0 {
		r.LabeledFraction = float64(r.LabeledValue) / float64(r.TotalValue)
	}

	// Materialize ancestors so cumulative lookups on interior names work
	// even when the parent span burned no CPU of its own.
	for phase := range flat {
		for i, c := range phase {
			if c == '/' {
				anc := phase[:i]
				if _, ok := flat[anc]; !ok {
					flat[anc] = 0
				}
			}
		}
	}

	names := make([]string, 0, len(flat))
	for phase := range flat {
		names = append(names, phase)
	}
	sort.Strings(names)
	for _, phase := range names {
		st := PhaseStat{Phase: phase, Samples: count[phase], Flat: flat[phase]}
		prefix := phase + "/"
		for other, v := range flat {
			if other == phase || strings.HasPrefix(other, prefix) {
				st.Cum += v
			}
		}
		if r.TotalValue > 0 {
			st.FlatFraction = float64(st.Flat) / float64(r.TotalValue)
			st.CumFraction = float64(st.Cum) / float64(r.TotalValue)
		}
		r.Phases = append(r.Phases, st)
	}
	sort.SliceStable(r.Phases, func(i, j int) bool {
		if r.Phases[i].Flat != r.Phases[j].Flat {
			return r.Phases[i].Flat > r.Phases[j].Flat
		}
		return r.Phases[i].Phase < r.Phases[j].Phase
	})
	return r
}

// CumValue returns the cumulative value attributed to phase (itself plus
// every descendant), 0 when the phase never appears.
func (r PhaseReport) CumValue(phase string) int64 {
	for _, st := range r.Phases {
		if st.Phase == phase {
			return st.Cum
		}
	}
	return 0
}
