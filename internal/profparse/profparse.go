// Package profparse is a dependency-free reader for the pprof protobuf
// profile format (profile.proto), decoding exactly the subset the repo's
// phase-attribution tooling needs: sample types, per-sample values, and
// the string/number labels runtime/pprof attaches to samples. Locations,
// mappings and function tables are skipped — phase attribution folds on
// labels, never on stack frames — which keeps the decoder at a few
// hundred lines of plain varint walking instead of a protobuf
// dependency (the repo is stdlib-only by policy, enforced by snnlint).
//
// The wire format is standard proto3: a Profile message whose fields of
// interest are sample_type (1, ValueType), sample (2, Sample),
// string_table (6), period_type (11), period (12) and duration_nanos
// (10); Sample carries value (2, repeated int64) and label (3, Label);
// Label carries key (1), str (2) and num (3), with key/str indexing the
// string table. Profiles are usually gzip-wrapped; Parse sniffs the
// magic and accepts both forms.
package profparse

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"os"
)

// ValueType describes one sample value dimension, e.g. {cpu, nanoseconds}.
type ValueType struct {
	Type string `json:"type"`
	Unit string `json:"unit"`
}

// Sample is one profile sample: its per-dimension values and its pprof
// labels (string-valued and number-valued kept separately, as in the
// runtime). Maps are nil when the sample carries no labels of that kind.
type Sample struct {
	Values    []int64
	Labels    map[string]string
	NumLabels map[string]int64
}

// Profile is the decoded subset of one pprof protobuf.
type Profile struct {
	SampleTypes   []ValueType
	Samples       []Sample
	PeriodType    ValueType
	Period        int64
	DurationNanos int64
}

// ValueIndex returns the index of the sample-value dimension with the
// given type name, or -1. CPU profiles carry {samples,count} and
// {cpu,nanoseconds}; callers fold on ValueIndex("cpu") and fall back to
// the last dimension (the pprof default) when absent.
func (p *Profile) ValueIndex(typ string) int {
	for i, st := range p.SampleTypes {
		if st.Type == typ {
			return i
		}
	}
	return -1
}

// ParseFile reads and decodes a pprof profile from disk.
func ParseFile(path string) (*Profile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	p, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("profparse: %s: %w", path, err)
	}
	return p, nil
}

// Parse decodes a (possibly gzip-wrapped) pprof protobuf.
func Parse(data []byte) (*Profile, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("gzip: %w", err)
		}
		raw, err := io.ReadAll(zr)
		if cerr := zr.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("gzip: %w", err)
		}
		data = raw
	}

	// First pass: decode raw messages, keeping string-table indices
	// symbolic (the table may appear after its first use in the stream).
	type rawValueType struct{ typ, unit int64 }
	type rawLabel struct{ key, str, num int64 }
	type rawSample struct {
		values []int64
		labels []rawLabel
	}
	var (
		strtab      []string
		sampleTypes []rawValueType
		samples     []rawSample
		periodType  rawValueType
		p           Profile
	)

	parseValueType := func(msg []byte) (rawValueType, error) {
		var vt rawValueType
		err := walkFields(msg, func(field int, wire int, d *decoder) error {
			switch field {
			case 1:
				v, err := d.varint()
				vt.typ = int64(v)
				return err
			case 2:
				v, err := d.varint()
				vt.unit = int64(v)
				return err
			default:
				return d.skip(wire)
			}
		})
		return vt, err
	}
	parseLabel := func(msg []byte) (rawLabel, error) {
		var l rawLabel
		err := walkFields(msg, func(field int, wire int, d *decoder) error {
			switch field {
			case 1:
				v, err := d.varint()
				l.key = int64(v)
				return err
			case 2:
				v, err := d.varint()
				l.str = int64(v)
				return err
			case 3:
				v, err := d.varint()
				l.num = int64(v)
				return err
			default:
				return d.skip(wire)
			}
		})
		return l, err
	}
	parseSample := func(msg []byte) (rawSample, error) {
		var s rawSample
		err := walkFields(msg, func(field int, wire int, d *decoder) error {
			switch field {
			case 2: // value: repeated int64, packed or not
				if wire == wireVarint {
					v, err := d.varint()
					s.values = append(s.values, int64(v))
					return err
				}
				packed, err := d.lenDelim()
				if err != nil {
					return err
				}
				pd := &decoder{data: packed}
				for !pd.done() {
					v, err := pd.varint()
					if err != nil {
						return err
					}
					s.values = append(s.values, int64(v))
				}
				return nil
			case 3: // label
				msg, err := d.lenDelim()
				if err != nil {
					return err
				}
				l, err := parseLabel(msg)
				if err != nil {
					return err
				}
				s.labels = append(s.labels, l)
				return nil
			default:
				return d.skip(wire)
			}
		})
		return s, err
	}

	err := walkFields(data, func(field int, wire int, d *decoder) error {
		switch field {
		case 1: // sample_type
			msg, err := d.lenDelim()
			if err != nil {
				return err
			}
			vt, err := parseValueType(msg)
			if err != nil {
				return err
			}
			sampleTypes = append(sampleTypes, vt)
			return nil
		case 2: // sample
			msg, err := d.lenDelim()
			if err != nil {
				return err
			}
			s, err := parseSample(msg)
			if err != nil {
				return err
			}
			samples = append(samples, s)
			return nil
		case 6: // string_table
			b, err := d.lenDelim()
			if err != nil {
				return err
			}
			strtab = append(strtab, string(b))
			return nil
		case 10: // duration_nanos
			v, err := d.varint()
			p.DurationNanos = int64(v)
			return err
		case 11: // period_type
			msg, err := d.lenDelim()
			if err != nil {
				return err
			}
			periodType, err = parseValueType(msg)
			return err
		case 12: // period
			v, err := d.varint()
			p.Period = int64(v)
			return err
		default:
			return d.skip(wire)
		}
	})
	if err != nil {
		return nil, err
	}

	// Second pass: resolve string-table indices.
	str := func(i int64) (string, error) {
		if i < 0 || i >= int64(len(strtab)) {
			return "", fmt.Errorf("string table index %d out of range (table size %d)", i, len(strtab))
		}
		return strtab[i], nil
	}
	for _, vt := range sampleTypes {
		t, err := str(vt.typ)
		if err != nil {
			return nil, err
		}
		u, err := str(vt.unit)
		if err != nil {
			return nil, err
		}
		p.SampleTypes = append(p.SampleTypes, ValueType{Type: t, Unit: u})
	}
	if periodType != (rawValueType{}) {
		t, err := str(periodType.typ)
		if err != nil {
			return nil, err
		}
		u, err := str(periodType.unit)
		if err != nil {
			return nil, err
		}
		p.PeriodType = ValueType{Type: t, Unit: u}
	}
	p.Samples = make([]Sample, 0, len(samples))
	for _, rs := range samples {
		s := Sample{Values: rs.values}
		for _, l := range rs.labels {
			key, err := str(l.key)
			if err != nil {
				return nil, err
			}
			if l.str != 0 {
				v, err := str(l.str)
				if err != nil {
					return nil, err
				}
				if s.Labels == nil {
					s.Labels = make(map[string]string, 2)
				}
				s.Labels[key] = v
			} else {
				if s.NumLabels == nil {
					s.NumLabels = make(map[string]int64, 2)
				}
				s.NumLabels[key] = l.num
			}
		}
		p.Samples = append(p.Samples, s)
	}
	return &p, nil
}

// Proto wire types.
const (
	wireVarint  = 0
	wireFixed64 = 1
	wireBytes   = 2
	wireFixed32 = 5
)

// decoder is a cursor over one proto message's bytes.
type decoder struct {
	data []byte
	pos  int
}

func (d *decoder) done() bool { return d.pos >= len(d.data) }

// varint decodes one base-128 varint.
func (d *decoder) varint() (uint64, error) {
	var v uint64
	for shift := uint(0); shift < 64; shift += 7 {
		if d.pos >= len(d.data) {
			return 0, fmt.Errorf("truncated varint at offset %d", d.pos)
		}
		b := d.data[d.pos]
		d.pos++
		v |= uint64(b&0x7f) << shift
		if b&0x80 == 0 {
			return v, nil
		}
	}
	return 0, fmt.Errorf("varint overflow at offset %d", d.pos)
}

// lenDelim decodes one length-delimited field body.
func (d *decoder) lenDelim() ([]byte, error) {
	n, err := d.varint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(d.data)-d.pos) {
		return nil, fmt.Errorf("truncated length-delimited field (%d bytes wanted, %d left)", n, len(d.data)-d.pos)
	}
	b := d.data[d.pos : d.pos+int(n)]
	d.pos += int(n)
	return b, nil
}

// skip consumes one field body of the given wire type.
func (d *decoder) skip(wire int) error {
	switch wire {
	case wireVarint:
		_, err := d.varint()
		return err
	case wireFixed64:
		if len(d.data)-d.pos < 8 {
			return fmt.Errorf("truncated fixed64 at offset %d", d.pos)
		}
		d.pos += 8
		return nil
	case wireBytes:
		_, err := d.lenDelim()
		return err
	case wireFixed32:
		if len(d.data)-d.pos < 4 {
			return fmt.Errorf("truncated fixed32 at offset %d", d.pos)
		}
		d.pos += 4
		return nil
	default:
		return fmt.Errorf("unsupported wire type %d at offset %d", wire, d.pos)
	}
}

// walkFields iterates a message's fields, calling fn with each field
// number and wire type; fn must consume the field body from the decoder
// (or call skip).
func walkFields(msg []byte, fn func(field, wire int, d *decoder) error) error {
	d := &decoder{data: msg}
	for !d.done() {
		tag, err := d.varint()
		if err != nil {
			return err
		}
		field, wire := int(tag>>3), int(tag&7)
		if field == 0 {
			return fmt.Errorf("invalid field number 0 at offset %d", d.pos)
		}
		if err := fn(field, wire, d); err != nil {
			return err
		}
	}
	return nil
}
