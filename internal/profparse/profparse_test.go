package profparse

import (
	"bytes"
	"compress/gzip"
	"context"
	"os"
	"path/filepath"
	"runtime/pprof"
	"testing"
	"time"
)

// --- a minimal pprof protobuf encoder, test-only, so the parser is
// --- exercised against wire bytes we fully control.

type enc struct{ b []byte }

func (e *enc) varint(v uint64) {
	for v >= 0x80 {
		e.b = append(e.b, byte(v)|0x80)
		v >>= 7
	}
	e.b = append(e.b, byte(v))
}

func (e *enc) tag(field, wire int) { e.varint(uint64(field<<3 | wire)) }

func (e *enc) bytesField(field int, b []byte) {
	e.tag(field, wireBytes)
	e.varint(uint64(len(b)))
	e.b = append(e.b, b...)
}

func (e *enc) varintField(field int, v uint64) {
	e.tag(field, wireVarint)
	e.varint(v)
}

func encValueType(typ, unit int) []byte {
	var e enc
	e.varintField(1, uint64(typ))
	e.varintField(2, uint64(unit))
	return e.b
}

func encLabel(key, str int, num int64) []byte {
	var e enc
	e.varintField(1, uint64(key))
	if str != 0 {
		e.varintField(2, uint64(str))
	}
	if num != 0 {
		e.varintField(3, uint64(num))
	}
	return e.b
}

// encSample encodes values packed (the runtime's encoding) and each
// label as a submessage.
func encSample(values []int64, labels ...[]byte) []byte {
	var vals enc
	for _, v := range values {
		vals.varint(uint64(v))
	}
	var e enc
	e.bytesField(2, vals.b)
	for _, l := range labels {
		e.bytesField(3, l)
	}
	return e.b
}

// testProfile builds a two-dimension CPU profile with phase labels:
//
//	strtab: 0:"" 1:samples 2:count 3:cpu 4:nanoseconds 5:phase
//	        6:generate 7:generate/restart 8:run 9:run-1
func testProfile(gzipped bool) []byte {
	var e enc
	e.bytesField(1, encValueType(1, 2)) // samples/count
	e.bytesField(1, encValueType(3, 4)) // cpu/nanoseconds
	// 3 samples in generate/restart, labelled with a run id too.
	e.bytesField(2, encSample([]int64{3, 30_000_000}, encLabel(5, 7, 0), encLabel(8, 9, 0)))
	// 1 sample in generate (unpacked value encoding for coverage).
	{
		var s enc
		s.varintField(2, 1)
		s.varintField(2, 10_000_000)
		s.bytesField(3, encLabel(5, 6, 0))
		e.bytesField(2, s.b)
	}
	// 1 unlabelled sample (GC worker), with a numeric label to decode.
	e.bytesField(2, encSample([]int64{1, 10_000_000}, encLabel(5, 0, 42)))
	for _, s := range []string{"", "samples", "count", "cpu", "nanoseconds", "phase", "generate", "generate/restart", "run", "run-1"} {
		e.bytesField(6, []byte(s))
	}
	e.varintField(10, 50_000_000)        // duration_nanos
	e.bytesField(11, encValueType(3, 4)) // period_type
	e.varintField(12, 10_000_000)        // period
	if !gzipped {
		return e.b
	}
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(e.b); err != nil {
		panic(err)
	}
	if err := zw.Close(); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func TestParseSyntheticProfile(t *testing.T) {
	for _, gz := range []bool{false, true} {
		p, err := Parse(testProfile(gz))
		if err != nil {
			t.Fatalf("gzip=%v: %v", gz, err)
		}
		if len(p.SampleTypes) != 2 || p.SampleTypes[1] != (ValueType{"cpu", "nanoseconds"}) {
			t.Fatalf("gzip=%v: sample types = %+v", gz, p.SampleTypes)
		}
		if p.ValueIndex("cpu") != 1 || p.ValueIndex("nope") != -1 {
			t.Errorf("gzip=%v: ValueIndex misresolved", gz)
		}
		if len(p.Samples) != 3 {
			t.Fatalf("gzip=%v: %d samples, want 3", gz, len(p.Samples))
		}
		s0 := p.Samples[0]
		if s0.Values[1] != 30_000_000 || s0.Labels["phase"] != "generate/restart" || s0.Labels["run"] != "run-1" {
			t.Errorf("gzip=%v: sample 0 = %+v", gz, s0)
		}
		if p.Samples[1].Labels["phase"] != "generate" || p.Samples[1].Values[1] != 10_000_000 {
			t.Errorf("gzip=%v: sample 1 = %+v", gz, p.Samples[1])
		}
		if p.Samples[2].Labels != nil || p.Samples[2].NumLabels["phase"] != 42 {
			t.Errorf("gzip=%v: sample 2 = %+v", gz, p.Samples[2])
		}
		if p.Period != 10_000_000 || p.PeriodType != (ValueType{"cpu", "nanoseconds"}) || p.DurationNanos != 50_000_000 {
			t.Errorf("gzip=%v: period/duration mis-decoded: %+v", gz, p)
		}
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse([]byte{0x0a}); err == nil { // truncated len-delim
		t.Error("want error for truncated message")
	}
	var e enc
	e.bytesField(1, encValueType(99, 0)) // string index out of range
	if _, err := Parse(e.b); err == nil {
		t.Error("want error for out-of-range string index")
	}
}

func TestFoldByPhase(t *testing.T) {
	p, err := Parse(testProfile(true))
	if err != nil {
		t.Fatal(err)
	}
	r := FoldByPhase(p, "cpu")
	if r.SampleType != "cpu" || r.SampleUnit != "nanoseconds" {
		t.Fatalf("folded on %s/%s", r.SampleType, r.SampleUnit)
	}
	// Tick counts come from the "samples" dimension (3+1+1), not the
	// record count — the encoder merges identical stack+label samples.
	if r.TotalSamples != 5 || r.TotalValue != 50_000_000 {
		t.Fatalf("total = %d samples / %d, want 5 / 50000000", r.TotalSamples, r.TotalValue)
	}
	if r.LabeledSamples != 4 || r.LabeledValue != 40_000_000 {
		t.Fatalf("labeled = %d samples / %d, want 4 / 40000000", r.LabeledSamples, r.LabeledValue)
	}
	if r.Phases[0].Samples != 3 {
		t.Errorf("restart tick count = %d, want 3", r.Phases[0].Samples)
	}
	if got, want := r.LabeledFraction, 0.8; got != want {
		t.Errorf("labeled fraction = %g, want %g", got, want)
	}
	// Sorted by flat desc: generate/restart (30M) then generate (10M).
	if len(r.Phases) != 2 || r.Phases[0].Phase != "generate/restart" || r.Phases[1].Phase != "generate" {
		t.Fatalf("phases = %+v", r.Phases)
	}
	if r.Phases[0].Cum != 30_000_000 {
		t.Errorf("restart cum = %d", r.Phases[0].Cum)
	}
	// generate's cum folds its descendant in.
	if got := r.CumValue("generate"); got != 40_000_000 {
		t.Errorf("generate cum = %d, want 40000000", got)
	}
	if got := r.CumValue("absent"); got != 0 {
		t.Errorf("absent phase cum = %d", got)
	}
}

// TestFoldMaterializesAncestors checks an interior phase with no flat
// samples of its own still answers cumulative queries.
func TestFoldMaterializesAncestors(t *testing.T) {
	p := &Profile{
		SampleTypes: []ValueType{{"cpu", "nanoseconds"}},
		Samples: []Sample{
			{Values: []int64{7}, Labels: map[string]string{"phase": "generate/calibrate/candidate"}},
			{Values: []int64{3}, Labels: map[string]string{"phase": "generate/restart"}},
		},
	}
	r := FoldByPhase(p, "cpu")
	if got := r.CumValue("generate"); got != 10 {
		t.Errorf("generate cum = %d, want 10", got)
	}
	if got := r.CumValue("generate/calibrate"); got != 7 {
		t.Errorf("generate/calibrate cum = %d, want 7", got)
	}
}

// TestParseLiveProfile is the integration check against the real
// runtime encoder: profile a labelled busy loop and assert the samples
// decode with the phase label attached.
func TestParseLiveProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("live CPU profile capture in -short mode")
	}
	path := filepath.Join(t.TempDir(), "cpu.pprof")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		t.Fatal(err)
	}
	ctx := pprof.WithLabels(context.Background(), pprof.Labels("phase", "profparse/burn"))
	pprof.SetGoroutineLabels(ctx)
	sink := 0
	for deadline := time.Now().Add(300 * time.Millisecond); time.Now().Before(deadline); {
		for i := 0; i < 1_000_000; i++ {
			sink += i * i
		}
	}
	pprof.SetGoroutineLabels(context.Background())
	pprof.StopCPUProfile()
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	_ = sink

	p, err := ParseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Samples) == 0 {
		t.Skip("no CPU samples collected (profiling timer unavailable)")
	}
	r := FoldByPhase(p, "cpu")
	if r.CumValue("profparse/burn") == 0 {
		t.Fatalf("live profile lost the phase label; report: %+v", r)
	}
	if r.LabeledFraction < 0.5 {
		t.Errorf("labeled fraction = %.2f, want most of a single-goroutine burn", r.LabeledFraction)
	}
}
