package autograd

import "fmt"

// checkf is the package's invariant-check chokepoint: graph-construction
// ops are hot-path code whose misuse (empty operand lists, out-of-range
// slices, non-positive temperatures) is always a programmer error, so
// they panic through this helper instead of threading errors through
// every op chain. Boundary APIs (Backward) return errors.
func checkf(format string, args ...any) {
	panic("autograd: " + fmt.Sprintf(format, args...))
}
