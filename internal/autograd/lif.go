package autograd

import "github.com/repro/snntest/internal/tensor"

// This file holds the fused differentiable LIF kernels used by the fast
// generation engine's graph path. Each op computes exactly the float
// sequence of the composed op chain it replaces — same multiplications,
// same addition order — and accumulates parent gradients in place,
// without the per-op temporary tensors of the composed form.
//
// Fusion here is only order-safe because every replaced interior node
// has exactly one consumer: collapsing such a chain moves no
// gradient-accumulation relative to any other consumer of a shared
// parent, so the backward pass is bit-identical to the composed chain.
// The membrane chain (Scale→Mul→Add→Mul(gate)) and the (1−s) chain
// (Neg→AddScalar) both satisfy this; the spike node s itself has many
// consumers and is deliberately NOT fused. The equivalence suite in
// internal/snn pins fused-vs-composed graphs bit-for-bit, values and
// gradients both.

// OneMinusSpike returns (−s)+1 for a binary spike node s, fusing the
// Neg→AddScalar chain of the LIF keep-path into one node.
func OneMinusSpike(s *Node) *Node {
	v := tensor.NewLike(s.Value, s.Value.Shape()...)
	sd, vd := s.Value.Data(), v.Data()
	for i := range vd {
		vd[i] = -sd[i] + 1
	}
	return newOp(v, func(out *Node) {
		if !s.requiresGrad {
			return
		}
		sg, od := s.Grad.Data(), out.Grad.Data()
		for i := range od {
			sg[i] += od[i] * -1
		}
	}, s)
}

// LIFStep fuses the leaky-integrate membrane update of one LIF layer
// step: out = gate ⊙ ((leak·u) ⊙ oneMinus + cur). gate is the constant
// refractory mask (0 while refractory, 1 otherwise) and receives no
// gradient; a nil gate means all-ones — multiplying by exactly 1.0 is
// the float identity, so eliding it is bit-invisible. u, oneMinus and
// cur are each consumed only by this op.
func LIFStep(u, oneMinus, cur *Node, gate *tensor.Tensor, leak float64) *Node {
	v := tensor.NewLike(cur.Value, cur.Value.Shape()...)
	ud, omd, cd := u.Value.Data(), oneMinus.Value.Data(), cur.Value.Data()
	vd := v.Data()
	var gd []float64
	if gate != nil {
		gd = gate.Data()
	}
	if gd == nil {
		for i := range vd {
			vd[i] = (ud[i]*leak)*omd[i] + cd[i]
		}
	} else {
		for i := range vd {
			vd[i] = ((ud[i]*leak)*omd[i] + cd[i]) * gd[i]
		}
	}
	return newOp(v, func(out *Node) {
		od := out.Grad.Data()
		var ug, omg, cg []float64
		if u.requiresGrad {
			ug = u.Grad.Data()
		}
		if oneMinus.requiresGrad {
			omg = oneMinus.Grad.Data()
		}
		if cur.requiresGrad {
			cg = cur.Grad.Data()
		}
		for i := range od {
			gg := od[i] // cotangent below the gate
			if gd != nil {
				gg *= gd[i]
			}
			if cg != nil {
				cg[i] += gg
			}
			if omg != nil {
				omg[i] += gg * (ud[i] * leak)
			}
			if ug != nil {
				ug[i] += (gg * omd[i]) * leak
			}
		}
	}, u, oneMinus, cur)
}
