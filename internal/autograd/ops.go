package autograd

import (
	"github.com/repro/snntest/internal/tensor"
)

// Add returns a + b elementwise.
func Add(a, b *Node) *Node {
	v := tensor.Add(a.Value, b.Value)
	return newOp(v, func(out *Node) {
		accumulate(a, out.Grad)
		accumulate(b, out.Grad)
	}, a, b)
}

// AddN returns the elementwise sum of all operands (at least one).
func AddN(nodes ...*Node) *Node {
	if len(nodes) == 0 {
		checkf("AddN requires at least one operand")
	}
	v := tensor.NewLike(nodes[0].Value, nodes[0].Value.Shape()...)
	copy(v.Data(), nodes[0].Value.Data())
	for _, n := range nodes[1:] {
		tensor.AddInPlace(v, n.Value)
	}
	return newOp(v, func(out *Node) {
		for _, n := range nodes {
			accumulate(n, out.Grad)
		}
	}, nodes...)
}

// Sub returns a - b elementwise.
func Sub(a, b *Node) *Node {
	v := tensor.Sub(a.Value, b.Value)
	return newOp(v, func(out *Node) {
		accumulate(a, out.Grad)
		if b.requiresGrad {
			accumulate(b, tensor.Neg(out.Grad))
		}
	}, a, b)
}

// Mul returns a * b elementwise (Hadamard). The per-operand gradient
// products are only materialized for operands that require gradients —
// masks and gates enter as constants, and their cotangents would be
// discarded.
func Mul(a, b *Node) *Node {
	v := tensor.Mul(a.Value, b.Value)
	return newOp(v, func(out *Node) {
		if a.requiresGrad {
			accumulate(a, tensor.Mul(out.Grad, b.Value))
		}
		if b.requiresGrad {
			accumulate(b, tensor.Mul(out.Grad, a.Value))
		}
	}, a, b)
}

// Scale returns a * s.
func Scale(a *Node, s float64) *Node {
	v := tensor.Scale(a.Value, s)
	return newOp(v, func(out *Node) {
		accumulate(a, tensor.Scale(out.Grad, s))
	}, a)
}

// AddScalar returns a + s elementwise.
func AddScalar(a *Node, s float64) *Node {
	v := tensor.AddScalar(a.Value, s)
	return newOp(v, func(out *Node) {
		accumulate(a, out.Grad)
	}, a)
}

// Neg returns -a.
func Neg(a *Node) *Node { return Scale(a, -1) }

// Abs returns |a| elementwise; the subgradient at 0 is 0.
func Abs(a *Node) *Node {
	v := tensor.Abs(a.Value)
	return newOp(v, func(out *Node) {
		g := tensor.NewLike(a.Value, a.Value.Shape()...)
		av, gd, od := a.Value.Data(), g.Data(), out.Grad.Data()
		for i := range gd {
			switch {
			case av[i] > 0:
				gd[i] = od[i]
			case av[i] < 0:
				gd[i] = -od[i]
			}
		}
		accumulate(a, g)
	}, a)
}

// Relu returns max(0, a) elementwise; the subgradient at 0 is 0.
func Relu(a *Node) *Node {
	v := tensor.Relu(a.Value)
	return newOp(v, func(out *Node) {
		g := tensor.NewLike(a.Value, a.Value.Shape()...)
		av, gd, od := a.Value.Data(), g.Data(), out.Grad.Data()
		for i := range gd {
			if av[i] > 0 {
				gd[i] = od[i]
			}
		}
		accumulate(a, g)
	}, a)
}

// Square returns a² elementwise.
func Square(a *Node) *Node {
	v := tensor.Square(a.Value)
	return newOp(v, func(out *Node) {
		g := tensor.Mul(out.Grad, a.Value)
		tensor.ScaleInPlace(g, 2)
		accumulate(a, g)
	}, a)
}

// Sum reduces a to a scalar node holding Σ aᵢ. The scalar inherits a's
// arena so the loss math downstream of a reduction stays arena-backed.
func Sum(a *Node) *Node {
	v := tensor.NewLike(a.Value)
	v.Data()[0] = tensor.Sum(a.Value)
	return newOp(v, func(out *Node) {
		accumulate(a, tensor.FullLike(a.Value, out.Grad.Data()[0], a.Value.Shape()...))
	}, a)
}

// Mean reduces a to a scalar node holding its arithmetic mean.
func Mean(a *Node) *Node {
	n := a.Value.Len()
	if n == 0 {
		return Const(tensor.Scalar(0))
	}
	return Scale(Sum(a), 1/float64(n))
}

// Detach returns a constant view of a's value: gradients stop here. It is
// used for the refractory gates of LIF neurons and for the stage-2
// reference output trains, which the paper treats as fixed targets.
func Detach(a *Node) *Node { return Const(a.Value) }

// MatVec returns w·x for matrix node w (out×in) and vector node x (in),
// differentiable in both operands.
func MatVec(w, x *Node) *Node {
	v := tensor.MatVec(w.Value, x.Value)
	return newOp(v, func(out *Node) {
		if x.requiresGrad {
			accumulate(x, tensor.MatVecT(w.Value, out.Grad))
		}
		if w.requiresGrad {
			accumulate(w, tensor.Outer(out.Grad, x.Value))
		}
	}, w, x)
}

// Conv2D returns the cross-correlation of input node x [inC,H,W] with
// kernel node w [outC,inC,kH,kW], differentiable in both operands.
func Conv2D(x, w *Node, spec tensor.ConvSpec) *Node {
	v := tensor.Conv2D(x.Value, w.Value, spec)
	return newOp(v, func(out *Node) {
		if x.requiresGrad {
			accumulate(x, tensor.Conv2DBackwardInput(out.Grad, w.Value, x.Value.Shape(), spec))
		}
		if w.requiresGrad {
			accumulate(w, tensor.Conv2DBackwardKernel(out.Grad, x.Value, w.Value.Shape(), spec))
		}
	}, x, w)
}

// SumPool2D sums non-overlapping k×k windows of x [C,H,W].
func SumPool2D(x *Node, k int) *Node {
	v := tensor.SumPool2D(x.Value, k)
	return newOp(v, func(out *Node) {
		accumulate(x, tensor.SumPool2DBackward(out.Grad, x.Value.Shape(), k))
	}, x)
}

// Slice returns a node viewing length elements of a's flattened value
// starting at start, reshaped to shape. The view shares a's backing data;
// gradients are routed back into the corresponding segment. It is how the
// per-step input frames of a [T·frame] stimulus leaf enter the SNN graph.
func Slice(a *Node, start, length int, shape ...int) *Node {
	if start < 0 || length < 0 || start+length > a.Value.Len() {
		checkf("Slice [%d:%d] out of range for %d elements", start, start+length, a.Value.Len())
	}
	v := a.Value.ViewRange(start, length, shape...)
	return newOp(v, func(out *Node) {
		if !a.requiresGrad {
			return
		}
		g := a.Grad.RawRange(start, length)
		og := out.Grad.Data()
		for i := range og {
			g[i] += og[i]
		}
	}, a)
}

// MulConstVec multiplies a elementwise by a constant mask/weight tensor.
func MulConstVec(a *Node, mask *tensor.Tensor) *Node {
	return Mul(a, Const(mask))
}

// Reshape returns a node viewing a's value under a new shape. Gradients
// flow through unchanged (reshaped back).
func Reshape(a *Node, shape ...int) *Node {
	v := a.Value.Reshape(shape...)
	return newOp(v, func(out *Node) {
		accumulate(a, out.Grad.Reshape(a.Value.Shape()...))
	}, a)
}
