package autograd

import (
	"math"

	"github.com/repro/snntest/internal/tensor"
)

// SurrogateScale is the default sharpness of the fast-sigmoid surrogate
// gradient used for the spike nonlinearity (SuperSpike-style):
// σ'(x) = 1 / (1 + scale·|x|)².
const SurrogateScale = 10.0

// Spike applies the threshold nonlinearity of a spiking neuron: the
// forward pass emits Heaviside(u − threshold) (a binary spike train), and
// the backward pass substitutes the fast-sigmoid surrogate derivative
// 1/(1+scale·|u−θ|)², the standard trick that makes BPTT through spiking
// layers possible (as in SLAYER).
func Spike(u *Node, threshold, scale float64) *Node {
	v := tensor.Heaviside(u.Value, threshold)
	return newOp(v, func(out *Node) {
		g := tensor.NewLike(u.Value, u.Value.Shape()...)
		ud, gd, od := u.Value.Data(), g.Data(), out.Grad.Data()
		for i := range gd {
			x := ud[i] - threshold
			d := 1 + scale*math.Abs(x)
			gd[i] = od[i] / (d * d)
		}
		accumulate(u, g)
	}, u)
}

// GumbelSigmoid is the binary special case of the Gumbel-Softmax
// (binary-concrete) relaxation used by the paper (Eq. 17) to optimize a
// binary input with gradient descent: forward computes
// sigmoid((logits + noise)/τ), a soft approximation of Bernoulli samples
// that sharpens as τ→0. noise must hold pre-sampled logistic noise
// (difference of two Gumbel variates); pass a zero tensor for the
// deterministic relaxation. The backward pass uses the exact sigmoid
// Jacobian s(1−s)/τ.
func GumbelSigmoid(logits *Node, noise *tensor.Tensor, tau float64) *Node {
	if tau <= 0 {
		checkf("GumbelSigmoid temperature must be positive, got %g", tau)
	}
	v := tensor.NewLike(logits.Value, logits.Value.Shape()...)
	ld, nd, vd := logits.Value.Data(), noise.Data(), v.Data()
	for i := range vd {
		vd[i] = 1 / (1 + math.Exp(-(ld[i]+nd[i])/tau))
	}
	return newOp(v, func(out *Node) {
		g := tensor.NewLike(logits.Value, logits.Value.Shape()...)
		gd, od := g.Data(), out.Grad.Data()
		for i := range gd {
			s := vd[i]
			gd[i] = od[i] * s * (1 - s) / tau
		}
		accumulate(logits, g)
	}, logits)
}

// STE is the straight-through estimator (Eq. 18): the forward pass
// binarizes its input at the given threshold; the backward pass passes the
// incoming gradient through unchanged, as if the op were the identity.
func STE(a *Node, threshold float64) *Node {
	v := tensor.Heaviside(a.Value, threshold)
	return newOp(v, func(out *Node) {
		accumulate(a, out.Grad)
	}, a)
}

// LogisticNoise fills a tensor with samples of the logistic distribution
// (the difference of two standard Gumbel variates), the noise source of
// the binary Gumbel-Softmax reparameterization.
func LogisticNoise(dst *tensor.Tensor, uniform func() float64) {
	d := dst.Data()
	for i := range d {
		u := uniform()
		// Clamp away from {0,1} to keep the logit finite.
		if u < 1e-12 {
			u = 1e-12
		} else if u > 1-1e-12 {
			u = 1 - 1e-12
		}
		d[i] = math.Log(u / (1 - u))
	}
}

// MaskedRowVariance computes, for each row i of the constant weight matrix
// w (out×in), the population variance over the non-zero entries j of the
// per-synapse contributions c_ij = w_ij·x_j, where x is the (differentiable)
// vector of presynaptic spike counts. This is the inner term of the
// paper's loss L4 (Eq. 13): uniform synapse contributions expose weak
// synapses whose faults would otherwise be masked by dominant ones.
// Rows with fewer than two non-zero weights contribute variance 0.
func MaskedRowVariance(w *tensor.Tensor, x *Node) *Node {
	rows, cols := w.Dim(0), w.Dim(1)
	if x.Value.Len() != cols {
		checkf("MaskedRowVariance dimension mismatch: %d weights columns vs %d counts", cols, x.Value.Len())
	}
	v := tensor.NewLike(x.Value, rows)
	means := make([]float64, rows)
	counts := make([]int, rows)
	wd, xd := w.Data(), x.Value.Data()
	for i := 0; i < rows; i++ {
		wrow := wd[i*cols : (i+1)*cols]
		sum, n := 0.0, 0
		for j, wv := range wrow {
			if wv != 0 { //lint:ignore floateq zero weight means no synapse; pruned weights are exactly 0 by construction
				sum += wv * xd[j]
				n++
			}
		}
		counts[i] = n
		if n < 2 {
			continue
		}
		mean := sum / float64(n)
		means[i] = mean
		varSum := 0.0
		for j, wv := range wrow {
			if wv != 0 { //lint:ignore floateq zero weight means no synapse; pruned weights are exactly 0 by construction
				d := wv*xd[j] - mean
				varSum += d * d
			}
		}
		v.Data()[i] = varSum / float64(n)
	}
	return newOp(v, func(out *Node) {
		// dvar_i/dx_k = (2/n_i)·m_ik·(c_ik − mean_i)·w_ik ; the mean term
		// cancels because Σ_j m_ij (c_ij − mean_i) = 0.
		g := tensor.NewLike(x.Value, cols)
		gd, od := g.Data(), out.Grad.Data()
		for i := 0; i < rows; i++ {
			if counts[i] < 2 || od[i] == 0 { //lint:ignore floateq skipping only bit-exact zero upstream gradients is safe
				continue
			}
			wrow := wd[i*cols : (i+1)*cols]
			scale := 2 * od[i] / float64(counts[i])
			for k, wv := range wrow {
				if wv != 0 { //lint:ignore floateq zero weight means no synapse; pruned weights are exactly 0 by construction
					gd[k] += scale * (wv*xd[k] - means[i]) * wv
				}
			}
		}
		accumulate(x, g)
	}, x)
}

// SoftmaxCrossEntropy returns the scalar cross-entropy between
// softmax(logits) and the one-hot target class. It is the training loss
// for rate-coded classification, where logits are output-neuron spike
// counts.
func SoftmaxCrossEntropy(logits *Node, target int) *Node {
	p := tensor.Softmax(logits.Value)
	loss := -math.Log(math.Max(p.Data()[target], 1e-15))
	v := tensor.NewLike(logits.Value)
	v.Data()[0] = loss
	return newOp(v, func(out *Node) {
		g := p.Clone()
		g.Data()[target] -= 1
		tensor.ScaleInPlace(g, out.Grad.Data()[0])
		accumulate(logits, g)
	}, logits)
}
