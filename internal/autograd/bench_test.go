package autograd

import (
	"math/rand"
	"testing"

	"github.com/repro/snntest/internal/tensor"
)

func BenchmarkBackwardChain(b *testing.B) {
	x := Leaf(tensor.RandNormal(rand.New(rand.NewSource(1)), 0, 1, 128))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := x
		for d := 0; d < 50; d++ {
			n = Relu(AddScalar(Mul(n, n), 0.1))
		}
		x.ZeroGrad()
		Backward(Sum(n))
	}
}

func BenchmarkSpikeSurrogate(b *testing.B) {
	u := Leaf(tensor.RandNormal(rand.New(rand.NewSource(2)), 1, 0.5, 4096))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u.ZeroGrad()
		Backward(Sum(Spike(u, 1.0, SurrogateScale)))
	}
}

func BenchmarkGumbelSigmoidSTE(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	logits := Leaf(tensor.RandNormal(rng, 0, 1, 4096))
	noise := tensor.New(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LogisticNoise(noise, rng.Float64)
		logits.ZeroGrad()
		Backward(Sum(STE(GumbelSigmoid(logits, noise, 0.5), 0.5)))
	}
}

func BenchmarkMaskedRowVariance(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	w := tensor.RandNormal(rng, 0, 1, 128, 128)
	x := Leaf(tensor.RandNormal(rng, 0, 1, 128))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.ZeroGrad()
		Backward(Sum(MaskedRowVariance(w, x)))
	}
}
