package autograd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/repro/snntest/internal/tensor"
)

func TestSpikeForwardBinary(t *testing.T) {
	u := Leaf(tensor.FromSlice([]float64{-0.5, 0.9, 1.0, 1.1}, 4))
	s := Spike(u, 1.0, SurrogateScale)
	want := []float64{0, 0, 0, 1}
	for i, w := range want {
		if s.Value.Data()[i] != w {
			t.Errorf("spike[%d] = %g, want %g (strict threshold)", i, s.Value.Data()[i], w)
		}
	}
}

func TestSpikeSurrogateGradient(t *testing.T) {
	// Backward must use the fast-sigmoid surrogate, not the (zero a.e.)
	// true derivative of the Heaviside.
	u := Leaf(tensor.FromSlice([]float64{1.2}, 1))
	Backward(Sum(Spike(u, 1.0, 10)))
	x := 0.2
	want := 1 / math.Pow(1+10*math.Abs(x), 2)
	if g := u.Grad.Data()[0]; math.Abs(g-want) > 1e-12 {
		t.Errorf("surrogate grad = %g, want %g", g, want)
	}
}

func TestSpikeSurrogatePeaksAtThreshold(t *testing.T) {
	grads := make([]float64, 3)
	for i, uv := range []float64{0.5, 1.0, 1.5} {
		u := Leaf(tensor.Scalar(uv))
		Backward(Sum(Spike(u, 1.0, 10)))
		grads[i] = u.Grad.Data()[0]
	}
	if !(grads[1] > grads[0] && grads[1] > grads[2]) {
		t.Errorf("surrogate gradient should peak at threshold: %v", grads)
	}
}

func TestGumbelSigmoidDeterministic(t *testing.T) {
	logits := Leaf(tensor.FromSlice([]float64{0}, 1))
	noise := tensor.New(1)
	s := GumbelSigmoid(logits, noise, 0.5)
	if math.Abs(s.Value.Data()[0]-0.5) > 1e-12 {
		t.Errorf("GumbelSigmoid(0) = %g, want 0.5", s.Value.Data()[0])
	}
}

func TestGumbelSigmoidGradientFiniteDifference(t *testing.T) {
	logits := tensor.RandNormal(rand.New(rand.NewSource(1)), 0, 1, 6)
	noise := tensor.RandNormal(rand.New(rand.NewSource(2)), 0, 1, 6)
	for _, tau := range []float64{0.3, 0.9, 2.0} {
		checkGrad(t, "GumbelSigmoid", logits, func(x *Node) *Node {
			return Sum(Square(GumbelSigmoid(x, noise, tau)))
		}, 1e-4)
	}
}

func TestGumbelSigmoidSharpensWithTemperature(t *testing.T) {
	logits := Leaf(tensor.FromSlice([]float64{2}, 1))
	noise := tensor.New(1)
	warm := GumbelSigmoid(logits, noise, 1.0).Value.Data()[0]
	cold := GumbelSigmoid(Leaf(tensor.FromSlice([]float64{2}, 1)), noise, 0.1).Value.Data()[0]
	if !(cold > warm) {
		t.Errorf("lower temperature should sharpen toward 1: τ=0.1 → %g, τ=1 → %g", cold, warm)
	}
}

func TestGumbelSigmoidBadTemperaturePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for τ ≤ 0")
		}
	}()
	GumbelSigmoid(Leaf(tensor.New(1)), tensor.New(1), 0)
}

func TestSTEForwardBinarizesBackwardIdentity(t *testing.T) {
	x := Leaf(tensor.FromSlice([]float64{0.3, 0.7, 0.5}, 3))
	s := STE(x, 0.5)
	want := []float64{0, 1, 0}
	for i, w := range want {
		if s.Value.Data()[i] != w {
			t.Errorf("STE forward[%d] = %g, want %g", i, s.Value.Data()[i], w)
		}
	}
	Backward(Sum(Scale(s, 3)))
	for i := range want {
		if g := x.Grad.Data()[i]; g != 3 {
			t.Errorf("STE backward[%d] = %g, want identity (3)", i, g)
		}
	}
}

func TestLogisticNoiseStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	noise := tensor.New(20000)
	LogisticNoise(noise, rng.Float64)
	if !noise.AllFinite() {
		t.Fatal("logistic noise produced non-finite values")
	}
	if m := tensor.Mean(noise); math.Abs(m) > 0.08 {
		t.Errorf("logistic noise mean = %g, want ≈0", m)
	}
	// Logistic(0,1) variance is π²/3 ≈ 3.29.
	if v := tensor.Variance(noise); math.Abs(v-math.Pi*math.Pi/3) > 0.35 {
		t.Errorf("logistic noise variance = %g, want ≈3.29", v)
	}
}

func TestLogisticNoiseClampsExtremes(t *testing.T) {
	noise := tensor.New(2)
	vals := []float64{0, 1}
	i := 0
	LogisticNoise(noise, func() float64 { v := vals[i]; i++; return v })
	if !noise.AllFinite() {
		t.Error("extreme uniforms must be clamped to finite logits")
	}
}

func TestMaskedRowVarianceValue(t *testing.T) {
	// Row 0: weights {1,2}, x={1,1} → contributions {1,2}, var 0.25.
	// Row 1: single non-zero weight → var 0 by convention.
	w := tensor.FromSlice([]float64{1, 2, 0, 3}, 2, 2)
	x := Leaf(tensor.FromSlice([]float64{1, 1}, 2))
	v := MaskedRowVariance(w, x)
	if math.Abs(v.Value.Data()[0]-0.25) > 1e-12 {
		t.Errorf("row 0 variance = %g, want 0.25", v.Value.Data()[0])
	}
	if v.Value.Data()[1] != 0 {
		t.Errorf("row 1 variance = %g, want 0 (degenerate row)", v.Value.Data()[1])
	}
}

func TestMaskedRowVarianceZeroWhenUniform(t *testing.T) {
	// Contributions w_ij·x_j are uniform within each row → variance 0.
	w := tensor.FromSlice([]float64{2, 3, 4, 6}, 2, 2)
	x := Leaf(tensor.FromSlice([]float64{3, 2}, 2))
	v := MaskedRowVariance(w, x)
	if tensor.L1Norm(v.Value) > 1e-12 {
		t.Errorf("uniform contributions should give zero variance, got %v", v.Value)
	}
}

func TestMaskedRowVarianceGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	w := tensor.RandNormal(rng, 0, 1, 5, 4)
	// Sparsify to exercise the mask.
	w.Set(0, 0, 1)
	w.Set(0, 2, 3)
	w.Set(0, 4, 0)
	x := tensor.RandNormal(rng, 0, 1, 4)
	checkGrad(t, "MaskedRowVariance", x, func(xn *Node) *Node {
		return Sum(MaskedRowVariance(w, xn))
	}, 1e-4)
}

func TestSoftmaxCrossEntropyValueAndGradient(t *testing.T) {
	logits := tensor.FromSlice([]float64{1, 2, 3}, 3)
	checkGrad(t, "SoftmaxCrossEntropy", logits, func(x *Node) *Node {
		return SoftmaxCrossEntropy(x, 1)
	}, 1e-4)
	// Uniform logits: loss = ln(K).
	u := Leaf(tensor.New(4))
	l := SoftmaxCrossEntropy(u, 2)
	if math.Abs(l.Value.Data()[0]-math.Log(4)) > 1e-12 {
		t.Errorf("uniform CE = %g, want ln 4", l.Value.Data()[0])
	}
}

// Property: for any logits, the cross-entropy gradient sums to zero
// (softmax − onehot always does).
func TestCrossEntropyGradientSumZeroQuick(t *testing.T) {
	prop := func(a [5]float64, targetRaw uint8) bool {
		for _, v := range a {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 100 {
				return true
			}
		}
		target := int(targetRaw) % 5
		leaf := Leaf(tensor.FromSlice(append([]float64(nil), a[:]...), 5))
		Backward(SoftmaxCrossEntropy(leaf, target))
		return math.Abs(tensor.Sum(leaf.Grad)) < 1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: STE output is always binary regardless of input.
func TestSTEAlwaysBinaryQuick(t *testing.T) {
	prop := func(a [7]float64) bool {
		s := STE(Leaf(tensor.FromSlice(append([]float64(nil), a[:]...), 7)), 0.5)
		for _, v := range s.Value.Data() {
			if v != 0 && v != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
