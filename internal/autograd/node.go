// Package autograd implements a small tape-based reverse-mode automatic
// differentiation engine over tensor.Tensor values.
//
// It exists to support two gradient consumers in this repository:
//
//   - training spiking networks with surrogate-gradient backpropagation
//     through time (gradients with respect to layer weights), and
//   - the paper's test-generation algorithm, which optimizes the binary
//     network *input* through a Gumbel-Softmax relaxation and a
//     straight-through estimator (gradients with respect to the input).
//
// Graphs are built eagerly: every operation returns a new Node that records
// its parents and a closure that propagates the upstream gradient.
// Backward performs a topological sort from the root and runs the closures
// in reverse order. Leaves created with Leaf accumulate gradients in
// Grad; constants created with Const do not participate in backprop.
//
// # Goroutine safety
//
// The engine keeps no global state: a tape is nothing but the Node graph
// reachable from a root, so goroutines working on disjoint graphs (their
// own Leaf/Const nodes and the ops derived from them) never share memory
// and need no synchronization. The one hazard is a shared *Node appearing
// in graphs on different goroutines — most commonly a weight leaf handed
// out by snn.Projection.ParamLeaves — because concurrent Backward calls
// both accumulate into its Grad tensor. Callers that parallelize must give
// each goroutine its own leaves (the multi-restart engine in internal/core
// does this by cloning the network per restart); autograd itself does not
// lock.
package autograd

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/repro/snntest/internal/tensor"
)

// Node is one vertex of the computation graph. Value is the forward result;
// Grad accumulates ∂root/∂Value during Backward for nodes that require
// gradients.
type Node struct {
	Value *tensor.Tensor
	Grad  *tensor.Tensor

	requiresGrad bool
	parents      []*Node
	backward     func(out *Node) // propagates out.Grad into parents' Grad
	// visit is the topoSort epoch that last reached this node; comparing
	// against a fresh epoch replaces the per-Backward visited map. It
	// follows the package's goroutine contract: a node appears in one
	// goroutine's graph at a time.
	visit uint64
}

// Leaf wraps t as a differentiable graph input. Backward accumulates into
// its Grad field; the caller owns zeroing it between steps (ZeroGrad).
// The Grad tensor is always heap-backed — it must outlive any arena the
// value tensor is adopted into, since optimizers read it across arena
// resets.
func Leaf(t *tensor.Tensor) *Node {
	return &Node{
		Value:        t,
		Grad:         tensor.New(t.Shape()...),
		requiresGrad: true,
	}
}

// Const wraps t as a non-differentiable constant. No gradient is
// accumulated for it and graph traversal stops there.
func Const(t *tensor.Tensor) *Node {
	return &Node{Value: t}
}

// RequiresGrad reports whether gradients flow into this node.
func (n *Node) RequiresGrad() bool { return n.requiresGrad }

// ZeroGrad clears the accumulated gradient of a leaf (or any grad-bearing
// node).
func (n *Node) ZeroGrad() {
	if n.Grad != nil {
		n.Grad.Zero()
	}
}

// newOp builds an interior node whose gradient requirement is inherited
// from its parents. Nodes whose value is arena-backed are drawn from the
// arena's node slab and recycled together with the value at the next
// Reset; heap values get plain heap nodes.
func newOp(value *tensor.Tensor, back func(out *Node), parents ...*Node) *Node {
	n := slabNode(value)
	n.Value = value
	n.parents = parents
	for _, p := range parents {
		if p != nil && p.requiresGrad {
			n.requiresGrad = true
			break
		}
	}
	if n.requiresGrad {
		// Interior gradients live exactly as long as the value: if the
		// value is arena-backed, so is the gradient buffer.
		n.Grad = tensor.NewLike(value, value.Shape()...)
		n.backward = back
	}
	return n
}

// nodeSlab bump-allocates Node structs whose lifetime is one tensor-arena
// generation: it is attached to an Arena via SetAux, so Arena.Reset
// recycles the node structs in the same instant it recycles the value and
// gradient tensors they point at. Blocks are retained across resets;
// stale pointers inside them pin at most one graph's tensors until
// overwritten, bounded by the high-water mark like the arena itself.
type nodeSlab struct {
	blocks [][]Node
	bi, bo int
}

const nodeSlabBlock = 1024

func (s *nodeSlab) get() *Node {
	if s.bi == len(s.blocks) {
		s.blocks = append(s.blocks, make([]Node, nodeSlabBlock))
	}
	n := &s.blocks[s.bi][s.bo]
	s.bo++
	if s.bo == len(s.blocks[s.bi]) {
		s.bi++
		s.bo = 0
	}
	*n = Node{}
	return n
}

func (s *nodeSlab) reset() { s.bi, s.bo = 0, 0 }

// slabNode returns a zeroed Node for a value tensor: from the value's
// arena-attached slab when the value is arena-backed (fast engine), from
// the heap otherwise (reference engine, training, tests). Leaf and Const
// construct their nodes directly and so always live on the heap — a leaf
// (the optimizer's stimulus, adopted into the arena) outlives every
// Reset, which a slab node must not.
func slabNode(value *tensor.Tensor) *Node {
	ar := value.Arena()
	if ar == nil {
		return &Node{}
	}
	slab, ok := ar.Aux().(*nodeSlab)
	if !ok {
		slab = new(nodeSlab)
		ar.SetAux(slab, slab.reset)
	}
	return slab.get()
}

// accumulate adds g into p.Grad if p participates in backprop.
func accumulate(p *Node, g *tensor.Tensor) {
	if p == nil || !p.requiresGrad {
		return
	}
	tensor.AddInPlace(p.Grad, g)
}

// Backward runs reverse-mode differentiation from root, which must be a
// scalar (single-element) node. After it returns, every reachable
// gradient-requiring node holds ∂root/∂node in Grad (accumulated on top of
// whatever was already there, so call ZeroGrad on leaves between steps).
func Backward(root *Node) error {
	return backward(root, false)
}

// BackwardReference is Backward with the original per-sort visited map
// instead of the epoch counter. The traversal — and therefore every
// gradient bit — is identical; only the allocation behaviour differs. It
// exists as the differential baseline for the generation-engine
// equivalence suite and the BENCH_generate speedup measurement.
func BackwardReference(root *Node) error {
	return backward(root, true)
}

func backward(root *Node, mapVisited bool) error {
	if root.Value.Len() != 1 {
		return fmt.Errorf("autograd: Backward root must be scalar, got shape %v", root.Value.Shape())
	}
	if !root.requiresGrad {
		return nil // nothing reachable requires gradients
	}
	order := topoSort(root, mapVisited)
	root.Grad.Fill(1)
	for i := len(order) - 1; i >= 0; i-- {
		if n := order[i]; n.backward != nil {
			n.backward(n)
		}
	}
	if !mapVisited {
		sortBufs.Put(&sortBuf{order: order[:0]})
	}
	return nil
}

// sortBuf recycles one Backward's traversal slice. Only the epoch-based
// fast path draws from the pool; BackwardReference allocates fresh, like
// the baseline engine it stands in for.
type sortBuf struct{ order []*Node }

var sortBufs = sync.Pool{New: func() any { return new(sortBuf) }}

// topoEpoch issues one fresh epoch per topoSort; a node is visited in the
// current sort iff its visit field equals the epoch. The counter is
// atomic so concurrent Backward calls on disjoint graphs draw distinct
// epochs, keeping the per-sort visited set map-free.
var topoEpoch atomic.Uint64

// topoSort returns nodes reachable from root in topological order
// (parents before children). Iterative DFS to survive deep BPTT graphs.
// With mapVisited the visited set is a heap map (the pre-epoch baseline);
// otherwise it is the epoch counter. Both walk parents in the same order,
// so the returned order — and every downstream gradient — is identical.
func topoSort(root *Node, mapVisited bool) []*Node {
	type frame struct {
		n    *Node
		next int
	}
	var epoch uint64
	var visited map[*Node]bool
	var order []*Node
	if mapVisited {
		visited = map[*Node]bool{root: true}
	} else {
		epoch = topoEpoch.Add(1)
		root.visit = epoch
		order = sortBufs.Get().(*sortBuf).order
	}
	seen := func(p *Node) bool {
		if mapVisited {
			if visited[p] {
				return true
			}
			visited[p] = true
			return false
		}
		if p.visit == epoch {
			return true
		}
		p.visit = epoch
		return false
	}
	stack := []frame{{n: root}}
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		if top.next < len(top.n.parents) {
			p := top.n.parents[top.next]
			top.next++
			if p != nil && p.requiresGrad && !seen(p) {
				stack = append(stack, frame{n: p})
			}
			continue
		}
		order = append(order, top.n)
		stack = stack[:len(stack)-1]
	}
	return order
}
