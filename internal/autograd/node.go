// Package autograd implements a small tape-based reverse-mode automatic
// differentiation engine over tensor.Tensor values.
//
// It exists to support two gradient consumers in this repository:
//
//   - training spiking networks with surrogate-gradient backpropagation
//     through time (gradients with respect to layer weights), and
//   - the paper's test-generation algorithm, which optimizes the binary
//     network *input* through a Gumbel-Softmax relaxation and a
//     straight-through estimator (gradients with respect to the input).
//
// Graphs are built eagerly: every operation returns a new Node that records
// its parents and a closure that propagates the upstream gradient.
// Backward performs a topological sort from the root and runs the closures
// in reverse order. Leaves created with Leaf accumulate gradients in
// Grad; constants created with Const do not participate in backprop.
//
// # Goroutine safety
//
// The engine keeps no global state: a tape is nothing but the Node graph
// reachable from a root, so goroutines working on disjoint graphs (their
// own Leaf/Const nodes and the ops derived from them) never share memory
// and need no synchronization. The one hazard is a shared *Node appearing
// in graphs on different goroutines — most commonly a weight leaf handed
// out by snn.Projection.ParamLeaves — because concurrent Backward calls
// both accumulate into its Grad tensor. Callers that parallelize must give
// each goroutine its own leaves (the multi-restart engine in internal/core
// does this by cloning the network per restart); autograd itself does not
// lock.
package autograd

import (
	"fmt"

	"github.com/repro/snntest/internal/tensor"
)

// Node is one vertex of the computation graph. Value is the forward result;
// Grad accumulates ∂root/∂Value during Backward for nodes that require
// gradients.
type Node struct {
	Value *tensor.Tensor
	Grad  *tensor.Tensor

	requiresGrad bool
	parents      []*Node
	backward     func() // propagates n.Grad into parents' Grad
}

// Leaf wraps t as a differentiable graph input. Backward accumulates into
// its Grad field; the caller owns zeroing it between steps (ZeroGrad).
func Leaf(t *tensor.Tensor) *Node {
	return &Node{
		Value:        t,
		Grad:         tensor.New(t.Shape()...),
		requiresGrad: true,
	}
}

// Const wraps t as a non-differentiable constant. No gradient is
// accumulated for it and graph traversal stops there.
func Const(t *tensor.Tensor) *Node {
	return &Node{Value: t}
}

// RequiresGrad reports whether gradients flow into this node.
func (n *Node) RequiresGrad() bool { return n.requiresGrad }

// ZeroGrad clears the accumulated gradient of a leaf (or any grad-bearing
// node).
func (n *Node) ZeroGrad() {
	if n.Grad != nil {
		n.Grad.Zero()
	}
}

// newOp builds an interior node whose gradient requirement is inherited
// from its parents.
func newOp(value *tensor.Tensor, back func(out *Node), parents ...*Node) *Node {
	n := &Node{Value: value, parents: parents}
	for _, p := range parents {
		if p != nil && p.requiresGrad {
			n.requiresGrad = true
			break
		}
	}
	if n.requiresGrad {
		n.Grad = tensor.New(value.Shape()...)
		n.backward = func() { back(n) }
	}
	return n
}

// accumulate adds g into p.Grad if p participates in backprop.
func accumulate(p *Node, g *tensor.Tensor) {
	if p == nil || !p.requiresGrad {
		return
	}
	tensor.AddInPlace(p.Grad, g)
}

// Backward runs reverse-mode differentiation from root, which must be a
// scalar (single-element) node. After it returns, every reachable
// gradient-requiring node holds ∂root/∂node in Grad (accumulated on top of
// whatever was already there, so call ZeroGrad on leaves between steps).
func Backward(root *Node) error {
	if root.Value.Len() != 1 {
		return fmt.Errorf("autograd: Backward root must be scalar, got shape %v", root.Value.Shape())
	}
	if !root.requiresGrad {
		return nil // nothing reachable requires gradients
	}
	order := topoSort(root)
	root.Grad.Fill(1)
	for i := len(order) - 1; i >= 0; i-- {
		if order[i].backward != nil {
			order[i].backward()
		}
	}
	return nil
}

// topoSort returns nodes reachable from root in topological order
// (parents before children). Iterative DFS to survive deep BPTT graphs.
func topoSort(root *Node) []*Node {
	type frame struct {
		n    *Node
		next int
	}
	visited := make(map[*Node]bool)
	var order []*Node
	stack := []frame{{n: root}}
	visited[root] = true
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		if top.next < len(top.n.parents) {
			p := top.n.parents[top.next]
			top.next++
			if p != nil && p.requiresGrad && !visited[p] {
				visited[p] = true
				stack = append(stack, frame{n: p})
			}
			continue
		}
		order = append(order, top.n)
		stack = stack[:len(stack)-1]
	}
	return order
}
