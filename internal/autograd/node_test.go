package autograd

import (
	"math"
	"math/rand"
	"testing"

	"github.com/repro/snntest/internal/tensor"
)

// numericalGrad estimates ∂f/∂x[i] by central differences, where f rebuilds
// the graph from x's current data and returns the scalar loss value.
func numericalGrad(x *tensor.Tensor, i int, f func() float64) float64 {
	const eps = 1e-6
	orig := x.Data()[i]
	x.Data()[i] = orig + eps
	up := f()
	x.Data()[i] = orig - eps
	down := f()
	x.Data()[i] = orig
	return (up - down) / (2 * eps)
}

// checkGrad verifies the analytic gradient of loss(leaf) against finite
// differences at every coordinate of the leaf.
func checkGrad(t *testing.T, name string, data *tensor.Tensor, loss func(x *Node) *Node, tol float64) {
	t.Helper()
	leaf := Leaf(data)
	root := loss(leaf)
	Backward(root)
	for i := range data.Data() {
		num := numericalGrad(data, i, func() float64 {
			return loss(Leaf(data)).Value.Data()[0]
		})
		got := leaf.Grad.Data()[i]
		if math.Abs(got-num) > tol*(1+math.Abs(num)) {
			t.Errorf("%s: grad[%d] = %g, finite difference %g", name, i, got, num)
		}
	}
}

func randVec(seed int64, n int) *tensor.Tensor {
	return tensor.RandNormal(rand.New(rand.NewSource(seed)), 0, 1, n)
}

func TestBackwardRequiresScalarRoot(t *testing.T) {
	if err := Backward(Leaf(tensor.New(2))); err == nil {
		t.Error("expected error for non-scalar root")
	}
}

func TestLeafConstSemantics(t *testing.T) {
	l := Leaf(tensor.Scalar(1))
	c := Const(tensor.Scalar(2))
	if !l.RequiresGrad() || c.RequiresGrad() {
		t.Fatal("Leaf must require grad, Const must not")
	}
	root := Sum(Mul(l, c))
	Backward(root)
	if l.Grad.Data()[0] != 2 {
		t.Errorf("d(l·c)/dl = %g, want 2", l.Grad.Data()[0])
	}
	if c.Grad != nil {
		t.Error("Const must not accumulate gradient")
	}
}

func TestGradAccumulatesAcrossBackwardCalls(t *testing.T) {
	l := Leaf(tensor.Scalar(3))
	Backward(Sum(l))
	Backward(Sum(l))
	if l.Grad.Data()[0] != 2 {
		t.Errorf("accumulated grad = %g, want 2", l.Grad.Data()[0])
	}
	l.ZeroGrad()
	if l.Grad.Data()[0] != 0 {
		t.Error("ZeroGrad did not clear gradient")
	}
}

func TestDiamondGraphGradient(t *testing.T) {
	// y = sum(x*x + x) reuses x twice; gradient must be 2x+1.
	x := Leaf(tensor.FromSlice([]float64{2, -3}, 2))
	Backward(Sum(Add(Mul(x, x), x)))
	want := []float64{5, -5}
	for i, w := range want {
		if g := x.Grad.Data()[i]; math.Abs(g-w) > 1e-12 {
			t.Errorf("grad[%d] = %g, want %g", i, g, w)
		}
	}
}

func TestAddSubMulGradients(t *testing.T) {
	a := randVec(1, 5)
	b := randVec(2, 5)
	checkGrad(t, "Add", a, func(x *Node) *Node { return Sum(Add(x, Const(b))) }, 1e-5)
	checkGrad(t, "Sub-left", a, func(x *Node) *Node { return Sum(Sub(x, Const(b))) }, 1e-5)
	checkGrad(t, "Sub-right", a, func(x *Node) *Node { return Sum(Sub(Const(b), x)) }, 1e-5)
	checkGrad(t, "Mul", a, func(x *Node) *Node { return Sum(Mul(x, Const(b))) }, 1e-5)
	checkGrad(t, "Square", a, func(x *Node) *Node { return Sum(Square(x)) }, 1e-5)
	checkGrad(t, "Scale", a, func(x *Node) *Node { return Sum(Scale(x, -2.5)) }, 1e-5)
	checkGrad(t, "AddScalar", a, func(x *Node) *Node { return Sum(AddScalar(x, 7)) }, 1e-5)
	checkGrad(t, "Neg", a, func(x *Node) *Node { return Sum(Neg(x)) }, 1e-5)
	checkGrad(t, "Mean", a, func(x *Node) *Node { return Mean(Square(x)) }, 1e-5)
}

func TestAddNGradient(t *testing.T) {
	a := randVec(3, 4)
	// x appears three times: gradient of sum(3x) is 3.
	leaf := Leaf(a)
	Backward(Sum(AddN(leaf, leaf, leaf)))
	for i := range a.Data() {
		if g := leaf.Grad.Data()[i]; math.Abs(g-3) > 1e-12 {
			t.Errorf("AddN grad[%d] = %g, want 3", i, g)
		}
	}
}

func TestAbsReluGradients(t *testing.T) {
	// Avoid the kink at 0 where subgradients differ from central differences.
	a := tensor.FromSlice([]float64{1.5, -2.5, 0.7, -0.1}, 4)
	checkGrad(t, "Abs", a, func(x *Node) *Node { return Sum(Abs(x)) }, 1e-5)
	checkGrad(t, "Relu", a, func(x *Node) *Node { return Sum(Relu(x)) }, 1e-5)
}

func TestMatVecGradients(t *testing.T) {
	w := tensor.RandNormal(rand.New(rand.NewSource(4)), 0, 1, 4, 3)
	x := randVec(5, 3)
	checkGrad(t, "MatVec/x", x, func(xn *Node) *Node { return Sum(Square(MatVec(Const(w), xn))) }, 1e-4)
	checkGrad(t, "MatVec/w", w, func(wn *Node) *Node { return Sum(Square(MatVec(wn, Const(x)))) }, 1e-4)
}

func TestConv2DGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := tensor.RandNormal(rng, 0, 1, 2, 4, 4)
	w := tensor.RandNormal(rng, 0, 1, 3, 2, 2, 2)
	spec := tensor.ConvSpec{Stride: 1}
	checkGrad(t, "Conv2D/x", x, func(xn *Node) *Node { return Sum(Square(Conv2D(xn, Const(w), spec))) }, 1e-4)
	checkGrad(t, "Conv2D/w", w, func(wn *Node) *Node { return Sum(Square(Conv2D(Const(x), wn, spec))) }, 1e-4)
}

func TestSumPool2DGradient(t *testing.T) {
	x := tensor.RandNormal(rand.New(rand.NewSource(7)), 0, 1, 1, 4, 4)
	checkGrad(t, "SumPool2D", x, func(xn *Node) *Node { return Sum(Square(SumPool2D(xn, 2))) }, 1e-4)
}

func TestReshapeGradient(t *testing.T) {
	x := randVec(8, 6)
	checkGrad(t, "Reshape", x, func(xn *Node) *Node { return Sum(Square(Reshape(xn, 2, 3))) }, 1e-5)
}

func TestDetachStopsGradient(t *testing.T) {
	x := Leaf(tensor.Scalar(2))
	root := Sum(Mul(Detach(x), x)) // d/dx (const(2)·x) = 2, not 2x=4
	Backward(root)
	if g := x.Grad.Data()[0]; g != 2 {
		t.Errorf("Detach grad = %g, want 2", g)
	}
}

func TestSliceGradientRouting(t *testing.T) {
	x := Leaf(tensor.FromSlice([]float64{1, 2, 3, 4, 5, 6}, 6))
	// Loss touches only the middle slice; gradient lands there only.
	mid := Slice(x, 2, 2, 2)
	Backward(Sum(Scale(mid, 3)))
	want := []float64{0, 0, 3, 3, 0, 0}
	for i, w := range want {
		if g := x.Grad.Data()[i]; g != w {
			t.Errorf("grad[%d] = %g, want %g", i, g, w)
		}
	}
	// Slices share backing data with the leaf.
	x.Value.Data()[2] = 42
	if mid.Value.Data()[0] != 42 {
		t.Error("Slice must view, not copy")
	}
}

func TestSliceOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Slice(Leaf(tensor.New(4)), 2, 3, 3)
}

func TestSliceFiniteDifference(t *testing.T) {
	data := randVec(9, 8)
	checkGrad(t, "Slice", data, func(x *Node) *Node {
		a := Slice(x, 0, 4, 4)
		b := Slice(x, 4, 4, 4)
		return Sum(Square(Add(a, b)))
	}, 1e-5)
}

func TestDeepChainBackward(t *testing.T) {
	// A 10 000-op chain must not overflow the stack (iterative topo sort).
	x := Leaf(tensor.Scalar(1))
	n := AddScalar(x, 0)
	for i := 0; i < 10000; i++ {
		n = AddScalar(n, 0)
	}
	Backward(Sum(n))
	if x.Grad.Data()[0] != 1 {
		t.Errorf("deep chain grad = %g, want 1", x.Grad.Data()[0])
	}
}
