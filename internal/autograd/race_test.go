package autograd

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/repro/snntest/internal/tensor"
)

// tapeGrad builds and differentiates one representative tape — the
// Gumbel-Sigmoid → Spike → loss chain the generator optimizes — and
// returns the L1 norm of the leaf gradient.
func tapeGrad(seed int64) (float64, error) {
	rng := rand.New(rand.NewSource(seed))
	leaf := Leaf(tensor.RandNormal(rng, 0, 1, 64))
	noise := tensor.New(64)
	LogisticNoise(noise, rng.Float64)
	soft := GumbelSigmoid(leaf, noise, 0.5)
	spikes := Spike(soft, 0.5, SurrogateScale)
	loss := Mean(Square(Add(spikes, soft)))
	if err := Backward(loss); err != nil {
		return 0, err
	}
	return tensor.L1Norm(leaf.Grad), nil
}

// TestConcurrentIndependentTapesRace stresses the documented concurrency
// contract under -race: goroutines building and differentiating disjoint
// tapes share nothing, and each computes exactly what a serial run with
// the same seed computes.
func TestConcurrentIndependentTapesRace(t *testing.T) {
	const goroutines, reps = 8, 25
	want := make([]float64, goroutines)
	for g := range want {
		v, err := tapeGrad(int64(g))
		if err != nil {
			t.Fatal(err)
		}
		want[g] = v
	}

	got := make([]float64, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < reps; rep++ {
				v, err := tapeGrad(int64(g))
				if err != nil {
					errs[g] = err
					return
				}
				got[g] = v
			}
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if got[g] != want[g] {
			t.Errorf("goroutine %d: concurrent gradient %g differs from serial %g", g, got[g], want[g])
		}
	}
}
