package autograd

import (
	"go/ast"
	"go/parser"
	"go/token"
	"math"
	"math/rand"
	"strings"
	"testing"

	"github.com/repro/snntest/internal/tensor"
)

// gradCase checks one op's Backward against central finite differences.
// build constructs a scalar-rooted graph from the leaf under test; eval,
// when non-nil, is the smooth primitive the backward pass is defined
// against (needed for surrogate-gradient ops whose forward is a step
// function); nil eval differentiates the forward pass itself.
type gradCase struct {
	op      string // autograd function under test, for completeness audit
	variant string
	x       *tensor.Tensor
	build   func(*Node) *Node
	eval    func(*tensor.Tensor) float64
	tol     float64
}

// wsum reduces an op output to a scalar with fixed distinct weights so a
// per-element sign or routing error cannot cancel out.
func wsum(a *Node, w *tensor.Tensor) *Node { return Sum(MulConstVec(a, w)) }

// awayFromZero samples values with |v| ∈ [0.2, 1.2] for ops whose
// (sub)derivative is discontinuous at 0 (Abs, Relu): finite differences
// straddling the kink would disagree with any one-sided convention.
func awayFromZero(rng *rand.Rand, n int) *tensor.Tensor {
	t := tensor.New(n)
	for i := range t.Data() {
		v := 0.2 + rng.Float64()
		if rng.Intn(2) == 0 {
			v = -v
		}
		t.Data()[i] = v
	}
	return t
}

func gradCases() []gradCase {
	rng := rand.New(rand.NewSource(42))
	w8 := tensor.RandNormal(rng, 0, 1, 8)
	w12 := tensor.RandNormal(rng, 0, 1, 12)
	x8 := tensor.RandNormal(rng, 0, 1, 8)
	noise := tensor.RandNormal(rng, 0, 1, 8)

	convX := tensor.RandNormal(rng, 0, 1, 2, 5, 5)
	convK := tensor.RandNormal(rng, 0, 0.5, 3, 2, 3, 3)
	convW := tensor.RandNormal(rng, 0, 1, 3, 3, 3) // conv output weights
	spec := tensor.ConvSpec{Stride: 1}

	mvW := tensor.RandNormal(rng, 0, 1, 3, 4)
	mvX := tensor.RandNormal(rng, 0, 1, 4)
	w3 := tensor.RandNormal(rng, 0, 1, 3)

	poolX := tensor.RandNormal(rng, 0, 1, 2, 4, 4)
	poolW := tensor.RandNormal(rng, 0, 1, 2, 2, 2)
	reshapeW := tensor.RandNormal(rng, 0, 1, 4, 8)

	// Sparse weights for MaskedRowVariance: row 3 has a single non-zero
	// entry, exercising the <2-support zero-variance branch.
	mrvW := tensor.RandNormal(rng, 0, 1, 4, 6)
	for j := 0; j < 6; j += 3 {
		mrvW.Data()[0*6+j] = 0
	}
	for j := 1; j < 6; j++ {
		mrvW.Data()[3*6+j] = 0
	}
	mrvX := tensor.RandNormal(rng, 1, 0.5, 6)
	w4 := tensor.RandNormal(rng, 0, 1, 4)

	spikeIn := awayFromZero(rng, 8) // |u−θ| ≥ 0.2 with θ=0 below
	detachBase := tensor.RandNormal(rng, 0, 1, 8)

	// Fused LIF kernel operands: a mixed refractory gate plus fixed
	// membrane/one-minus/current tensors for the per-operand variants.
	lifU := tensor.RandNormal(rng, 0, 1, 8)
	lifOM := tensor.RandNormal(rng, 0.5, 0.3, 8)
	lifCur := tensor.RandNormal(rng, 0, 1, 8)
	lifGate := tensor.New(8)
	for i := range lifGate.Data() {
		lifGate.Data()[i] = float64(1 - i%2)
	}
	const lifLeak = 0.9

	return []gradCase{
		{op: "Add", x: x8, build: func(a *Node) *Node { return wsum(Add(a, Square(a)), w8) }},
		{op: "AddN", x: x8, build: func(a *Node) *Node { return wsum(AddN(a, Square(a), Scale(a, 0.5)), w8) }},
		{op: "Sub", x: x8, build: func(a *Node) *Node { return wsum(Sub(Square(a), a), w8) }},
		{op: "Mul", x: x8, build: func(a *Node) *Node { return wsum(Mul(a, AddScalar(a, 1)), w8) }},
		{op: "Scale", x: x8, build: func(a *Node) *Node { return wsum(Scale(a, -1.7), w8) }},
		{op: "AddScalar", x: x8, build: func(a *Node) *Node { return wsum(AddScalar(a, 0.3), w8) }},
		{op: "Neg", x: x8, build: func(a *Node) *Node { return wsum(Neg(a), w8) }},
		{op: "Abs", x: awayFromZero(rng, 8), build: func(a *Node) *Node { return wsum(Abs(a), w8) }},
		{op: "Relu", x: awayFromZero(rng, 8), build: func(a *Node) *Node { return wsum(Relu(a), w8) }},
		{op: "Square", x: x8, build: func(a *Node) *Node { return wsum(Square(a), w8) }},
		{op: "Sum", x: x8, build: func(a *Node) *Node { return Sum(Mul(a, a)) }},
		{op: "Mean", x: x8, build: func(a *Node) *Node { return Mean(Square(a)) }},
		{op: "MatVec", variant: "x", x: mvX, build: func(a *Node) *Node { return wsum(MatVec(Const(mvW), a), w3) }},
		{op: "MatVec", variant: "w", x: mvW, build: func(a *Node) *Node { return wsum(MatVec(a, Const(mvX)), w3) }},
		{op: "Conv2D", variant: "input", x: convX, build: func(a *Node) *Node { return wsum(Conv2D(a, Const(convK), spec), convW) }},
		{op: "Conv2D", variant: "kernel", x: convK, build: func(a *Node) *Node { return wsum(Conv2D(Const(convX), a, spec), convW) }},
		{op: "SumPool2D", x: poolX, build: func(a *Node) *Node { return wsum(SumPool2D(a, 2), poolW) }},
		{op: "Slice", x: w12, build: func(a *Node) *Node { return wsum(Slice(a, 3, 8, 8), w8) }},
		{op: "MulConstVec", x: x8, build: func(a *Node) *Node { return Sum(MulConstVec(a, w8)) }},
		{op: "Reshape", x: poolX, build: func(a *Node) *Node { return wsum(Reshape(a, 4, 8), reshapeW) }},
		{op: "MaskedRowVariance", x: mrvX, build: func(a *Node) *Node { return wsum(MaskedRowVariance(mrvW, a), w4) }},
		{op: "SoftmaxCrossEntropy", x: tensor.RandNormal(rng, 0, 1, 5), build: func(a *Node) *Node { return SoftmaxCrossEntropy(a, 2) }},
		{op: "GumbelSigmoid", x: x8, build: func(a *Node) *Node { return wsum(GumbelSigmoid(a, noise, 0.7), w8) }},
		{op: "OneMinusSpike", x: x8, build: func(a *Node) *Node { return wsum(OneMinusSpike(a), w8) }},
		{op: "LIFStep", variant: "u", x: x8, build: func(a *Node) *Node {
			return wsum(LIFStep(a, Leaf(lifOM.Clone()), Leaf(lifCur.Clone()), lifGate, lifLeak), w8)
		}},
		{op: "LIFStep", variant: "oneMinus", x: x8, build: func(a *Node) *Node {
			return wsum(LIFStep(Leaf(lifU.Clone()), a, Leaf(lifCur.Clone()), lifGate, lifLeak), w8)
		}},
		{op: "LIFStep", variant: "cur", x: x8, build: func(a *Node) *Node {
			return wsum(LIFStep(Leaf(lifU.Clone()), Leaf(lifOM.Clone()), a, lifGate, lifLeak), w8)
		}},
		{op: "LIFStep", variant: "nil-gate", x: x8, build: func(a *Node) *Node {
			return wsum(LIFStep(a, Leaf(lifOM.Clone()), Leaf(lifCur.Clone()), nil, lifLeak), w8)
		}},
		{op: "LIFStep", variant: "const-parents", x: x8, build: func(a *Node) *Node {
			// Gradient flows through cur only; u and oneMinus are constants,
			// exercising the requiresGrad guards on the fused backward.
			return wsum(LIFStep(Const(lifU), Const(lifOM), a, lifGate, lifLeak), w8)
		}},
		{
			// STE's forward is Heaviside; its backward is defined as the
			// identity Jacobian, so the FD reference is the identity map.
			op: "STE", x: awayFromZero(rng, 8),
			build: func(a *Node) *Node { return wsum(STE(a, 0), w8) },
			eval: func(xt *tensor.Tensor) float64 {
				s := 0.0
				for i, v := range xt.Data() {
					s += w8.Data()[i] * v
				}
				return s
			},
		},
		{
			// Spike's backward substitutes the fast-sigmoid surrogate
			// 1/(1+s|u−θ|)², the exact derivative of F(u) = (u−θ)/(1+s|u−θ|);
			// the FD reference is therefore F, not the Heaviside forward.
			op: "Spike", x: spikeIn,
			build: func(a *Node) *Node { return wsum(Spike(a, 0, SurrogateScale), w8) },
			eval: func(xt *tensor.Tensor) float64 {
				s := 0.0
				for i, v := range xt.Data() {
					s += w8.Data()[i] * v / (1 + SurrogateScale*math.Abs(v))
				}
				return s
			},
		},
		{
			// Detach stops gradients: the detached factor must act as a
			// constant frozen at the linearization point.
			op: "Detach", x: detachBase,
			build: func(a *Node) *Node { return Sum(Mul(a, Detach(Square(a)))) },
			eval: func(xt *tensor.Tensor) float64 {
				s := 0.0
				for i, v := range xt.Data() {
					c := detachBase.Data()[i]
					s += v * c * c
				}
				return s
			},
		},
	}
}

// TestGradCheckAllOps compares every op's Backward gradient against
// central finite differences on fixed-seed random tensors.
func TestGradCheckAllOps(t *testing.T) {
	for _, c := range gradCases() {
		name := c.op
		if c.variant != "" {
			name += "/" + c.variant
		}
		t.Run(name, func(t *testing.T) {
			leaf := Leaf(c.x.Clone())
			root := c.build(leaf)
			if root.Value.Len() != 1 {
				t.Fatalf("build must produce a scalar root, got shape %v", root.Value.Shape())
			}
			if err := Backward(root); err != nil {
				t.Fatal(err)
			}
			eval := c.eval
			if eval == nil {
				eval = func(xt *tensor.Tensor) float64 { return c.build(Leaf(xt)).Value.Data()[0] }
			}
			tol := c.tol
			if tol == 0 {
				tol = 1e-4
			}
			const h = 1e-5
			for i := range c.x.Data() {
				xp, xm := c.x.Clone(), c.x.Clone()
				xp.Data()[i] += h
				xm.Data()[i] -= h
				fd := (eval(xp) - eval(xm)) / (2 * h)
				got := leaf.Grad.Data()[i]
				if d := math.Abs(got - fd); d > tol*(1+math.Abs(fd)) {
					t.Errorf("element %d: analytic %.8g vs finite-difference %.8g (|Δ|=%.2g)", i, got, fd, d)
				}
			}
		})
	}
}

// TestGradCheckCoversAllOps audits the package source: every exported
// op constructor (function returning *Node, excluding the Leaf/Const
// graph-input constructors) must appear in gradCases, so a newly added op
// cannot ship without a gradient check.
func TestGradCheckCoversAllOps(t *testing.T) {
	covered := map[string]bool{}
	for _, c := range gradCases() {
		covered[c.op] = true
	}
	inputCtors := map[string]bool{"Leaf": true, "Const": true}

	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		for fname, file := range pkg.Files {
			if strings.HasSuffix(fname, "_test.go") {
				continue
			}
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Recv != nil || !fd.Name.IsExported() || !returnsNodePtr(fd) {
					continue
				}
				if inputCtors[fd.Name.Name] {
					continue
				}
				if !covered[fd.Name.Name] {
					t.Errorf("op %s (%s) has no gradient check in gradCases", fd.Name.Name, fname)
				}
			}
		}
	}
}

// returnsNodePtr reports whether fd's results include *Node.
func returnsNodePtr(fd *ast.FuncDecl) bool {
	if fd.Type.Results == nil {
		return false
	}
	for _, r := range fd.Type.Results.List {
		if star, ok := r.Type.(*ast.StarExpr); ok {
			if id, ok := star.X.(*ast.Ident); ok && id.Name == "Node" {
				return true
			}
		}
	}
	return false
}
