// Package snntest is a Go reproduction of "Minimum Time Maximum Fault
// Coverage Testing of Spiking Neural Networks" (Raptis & Stratigopoulos,
// DATE 2025): a test-generation algorithm for SNN hardware accelerators
// that optimizes a short spatio-temporal binary stimulus toward maximum
// hardware fault coverage without fault simulation in the loop.
//
// This root package is the public facade over the implementation
// packages:
//
//   - internal/core      the paper's algorithm (losses L1–L5, two-stage
//     Gumbel-Softmax/STE input optimization, chunk assembly)
//   - internal/snn       discrete-time LIF simulator with a fast inference
//     path and a differentiable surrogate-gradient path
//   - internal/fault     behavioural fault models, injection, campaigns
//   - internal/baseline  the greedy prior-work methods of Table IV
//   - internal/dataset   synthetic NMNIST / DVS-gesture / SHD stand-ins
//   - internal/train     Adam, schedules, BPTT training
//   - internal/experiments  end-to-end pipelines for every table & figure
//
// Quick start:
//
//	rng := rand.New(rand.NewSource(1))
//	net, err := snntest.BuildNMNIST(rng, snntest.ScaleTiny)
//	res, err := snntest.GenerateTest(net, snntest.TestGenConfig())
//	faults := snntest.EnumerateFaults(net)
//	sim, err := snntest.SimulateFaults(net, faults, res.Stimulus, 0)
//	fmt.Printf("fault coverage: %.1f%%\n",
//		100*float64(sim.NumDetected())/float64(len(faults)))
package snntest

import (
	"context"
	"math/rand"

	"github.com/repro/snntest/internal/core"
	"github.com/repro/snntest/internal/fault"
	"github.com/repro/snntest/internal/snn"
	"github.com/repro/snntest/internal/tensor"
)

// Re-exported model types.
type (
	// Network is a spiking neural network (see internal/snn).
	Network = snn.Network
	// ModelScale selects tiny/small/full benchmark geometry.
	ModelScale = snn.ModelScale
	// Fault is one injectable hardware fault.
	Fault = fault.Fault
	// TestResult is the outcome of the test-generation algorithm.
	TestResult = core.Result
	// GenConfig parameterizes the test-generation algorithm.
	GenConfig = core.Config
	// Tensor is a dense float64 tensor.
	Tensor = tensor.Tensor
)

// Model scales.
const (
	ScaleTiny  = snn.ScaleTiny
	ScaleSmall = snn.ScaleSmall
	ScaleFull  = snn.ScaleFull
)

// BuildNMNIST constructs the NMNIST-style benchmark SNN (paper Fig. 4).
func BuildNMNIST(rng *rand.Rand, sc ModelScale) (*Network, error) { return snn.BuildNMNIST(rng, sc) }

// BuildIBMGesture constructs the DVS128-Gesture-style SNN (paper Fig. 5).
func BuildIBMGesture(rng *rand.Rand, sc ModelScale) (*Network, error) {
	return snn.BuildIBMGesture(rng, sc)
}

// BuildSHD constructs the Spiking-Heidelberg-Digits-style SNN (paper Fig. 6).
func BuildSHD(rng *rand.Rand, sc ModelScale) (*Network, error) { return snn.BuildSHD(rng, sc) }

// Build constructs the named benchmark SNN ("nmnist", "ibm-gesture" or
// "shd").
func Build(benchmark string, rng *rand.Rand, sc ModelScale) (*Network, error) {
	return snn.Build(benchmark, rng, sc)
}

// DefaultGenConfig returns the paper's optimization settings (Section V-C).
func DefaultGenConfig() GenConfig { return core.DefaultConfig() }

// TestGenConfig returns a reduced-budget configuration that runs in
// seconds on tiny models.
func TestGenConfig() GenConfig { return core.TestConfig() }

// GenerateTest runs the paper's test-generation algorithm on a fault-free
// network.
func GenerateTest(net *Network, cfg GenConfig) (*TestResult, error) { return core.Generate(net, cfg) }

// GenerateTestContext is GenerateTest with caller-controlled cancellation;
// the context also parents the run's observability spans (internal/obs).
func GenerateTestContext(ctx context.Context, net *Network, cfg GenConfig) (*TestResult, error) {
	return core.GenerateContext(ctx, net, cfg)
}

// EnumerateFaults lists the paper's default fault universe: dead and
// saturated faults per neuron; dead, positively and negatively saturated
// faults per synapse.
func EnumerateFaults(net *Network) []Fault { return fault.Enumerate(net, fault.DefaultOptions()) }

// CampaignOptions tunes a fault campaign (workers, progress reporting,
// and the FullResim reference path that disables incremental replay).
type CampaignOptions = fault.CampaignOptions

// SimulateFaults runs a fault-simulation campaign of the given faults
// against a test stimulus; workers ≤ 0 uses GOMAXPROCS. The campaign is
// incremental: each faulty run replays the golden spike trace up to the
// fault's layer, re-simulates only the layers above it, and stops at the
// first output divergence; the result's LayerSteps/FullLayerSteps
// counters report the work saved.
func SimulateFaults(net *Network, faults []Fault, stimulus *Tensor, workers int) (*fault.SimResult, error) {
	return fault.Simulate(net, faults, stimulus, workers, nil)
}

// SimulateFaultsWith is SimulateFaults with explicit campaign options.
func SimulateFaultsWith(net *Network, faults []Fault, stimulus *Tensor, opts CampaignOptions) (*fault.SimResult, error) {
	return fault.SimulateWith(net, faults, stimulus, opts)
}

// ClassifyFaults labels faults critical (top-1 flip on ≥ 1 sample) or
// benign against the evaluation stimuli.
func ClassifyFaults(net *Network, faults []Fault, samples []*Tensor, workers int) ([]bool, error) {
	return fault.Classify(net, faults, samples, workers, nil)
}

// ClassifyFaultsWith is ClassifyFaults with explicit campaign options;
// the returned result carries the simulated-layer-step counters.
func ClassifyFaultsWith(net *Network, faults []Fault, samples []*Tensor, opts CampaignOptions) (*fault.ClassifyResult, error) {
	return fault.ClassifyWith(net, faults, samples, opts)
}

// FaultCoverage tallies per-class coverage from detection and criticality
// flags.
func FaultCoverage(faults []Fault, detected, critical []bool) (fault.Coverage, error) {
	return fault.Compute(faults, detected, critical)
}

// CompactTest drops generated chunks whose fault detections are covered
// by the remaining chunks, preserving coverage of the given fault list
// while shortening the test (the paper's future-work direction).
func CompactTest(net *Network, res *TestResult, faults []Fault, workers int) (*TestResult, core.CompactionStats, error) {
	return core.Compact(net, res, faults, workers)
}

// CompactTestContext is CompactTest with a caller context that parents
// the compaction's observability spans.
func CompactTestContext(ctx context.Context, net *Network, res *TestResult, faults []Fault, workers int) (*TestResult, core.CompactionStats, error) {
	return core.CompactContext(ctx, net, res, faults, workers)
}
