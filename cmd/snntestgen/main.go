// Command snntestgen is the end-to-end tool of the reproduction: it
// builds and trains a benchmark SNN (or loads trained weights), runs the
// paper's test-generation algorithm, and verifies the resulting stimulus
// with a single fault-simulation campaign, printing the Table III
// efficiency metrics.
//
// Usage:
//
//	snntestgen -bench nmnist [-scale tiny|small|full] [-seed N]
//	           [-weights file.gob] [-steps1 N] [-max-iter N]
//	           [-stride N] [-workers N] [-save-stimulus file.gob]
package main

import (
	"encoding/gob"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"github.com/repro/snntest/internal/core"
	"github.com/repro/snntest/internal/dataset"
	"github.com/repro/snntest/internal/fault"
	"github.com/repro/snntest/internal/metrics"
	"github.com/repro/snntest/internal/snn"
	"github.com/repro/snntest/internal/tensor"
	"github.com/repro/snntest/internal/train"
)

func main() {
	var (
		bench     = flag.String("bench", "nmnist", "benchmark: nmnist, ibm-gesture or shd")
		scaleFlag = flag.String("scale", "tiny", "model scale: tiny, small or full")
		seed      = flag.Int64("seed", 1, "random seed")
		weights   = flag.String("weights", "", "load trained weights instead of training in-process")
		steps1    = flag.Int("steps1", 0, "stage-1 optimization steps (0 = scale default)")
		maxIter   = flag.Int("max-iter", 0, "maximum generated chunks (0 = scale default)")
		stride    = flag.Int("stride", 1, "fault universe stride for verification")
		workers   = flag.Int("workers", 0, "campaign workers (0 = GOMAXPROCS)")
		save      = flag.String("save-stimulus", "", "write the stimulus tensor to this file (gob)")
	)
	flag.Parse()

	scale, err := parseScale(*scaleFlag)
	if err != nil {
		fatal(err)
	}
	rng := rand.New(rand.NewSource(*seed))
	net, err := snn.Build(*bench, rng, scale)
	if err != nil {
		fatal(err)
	}

	sampleSteps, err := snn.SampleSteps(*bench, scale)
	if err != nil {
		fatal(err)
	}
	ds, err := dataset.ForBenchmark(net, dataset.Config{
		TrainPerClass: 4, TestPerClass: 2, Steps: sampleSteps, Seed: *seed + 1,
	})
	if err != nil {
		fatal(err)
	}
	if *weights != "" {
		if err := net.LoadWeightsFile(*weights); err != nil {
			fatal(err)
		}
	} else {
		trainIn, trainLab := ds.Inputs("train")
		fmt.Fprintln(os.Stderr, "training model…")
		if _, err := train.Train(net, trainIn, trainLab, train.Config{
			Epochs: 4, LR: 0.03, Seed: *seed + 2,
		}); err != nil {
			fatal(err)
		}
	}

	cfg := core.DefaultConfig()
	if scale != snn.ScaleFull {
		cfg = core.TestConfig()
		cfg.Steps1 = 100
	}
	cfg.Seed = *seed + 3
	cfg.Log = os.Stderr
	if *steps1 > 0 {
		cfg.Steps1 = *steps1
	}
	if *maxIter > 0 {
		cfg.MaxIterations = *maxIter
	}

	fmt.Fprintln(os.Stderr, "generating test stimulus…")
	res, err := core.Generate(net, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("test generation runtime: %v\n", res.Runtime.Round(time.Millisecond))
	fmt.Printf("T_in,min: %d steps; chunks: %d\n", res.TInMin, len(res.Chunks))
	fmt.Printf("test duration: %d steps = %.2f samples = %.3f s\n",
		res.TotalSteps(), res.DurationSamples(sampleSteps),
		metrics.DurationSeconds(net, res.TotalSteps()))
	fmt.Printf("activated neurons: %.2f%%\n", 100*res.ActivatedFraction)

	faults := fault.SampleUniverse(net, fault.DefaultOptions(), *stride)
	fmt.Fprintf(os.Stderr, "verifying against %d faults…\n", len(faults))
	testIn, _ := ds.Inputs("test")
	critical, err := fault.Classify(net, faults, testIn, *workers, nil)
	if err != nil {
		fatal(err)
	}
	sim, err := fault.Simulate(net, faults, res.Stimulus, *workers, nil)
	if err != nil {
		fatal(err)
	}
	cov, err := fault.Compute(faults, sim.Detected, critical)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("verification campaign: %v for %d faults\n", sim.Elapsed.Round(time.Millisecond), len(faults))
	fmt.Printf("FC critical neuron faults:  %.2f%%\n", 100*cov.CriticalNeuron.FC())
	fmt.Printf("FC critical synapse faults: %.2f%%\n", 100*cov.CriticalSynapse.FC())
	fmt.Printf("FC benign neuron faults:    %.2f%%\n", 100*cov.BenignNeuron.FC())
	fmt.Printf("FC benign synapse faults:   %.2f%%\n", 100*cov.BenignSynapse.FC())

	if *save != "" {
		if err := saveStimulus(*save, res.Stimulus); err != nil {
			fatal(err)
		}
		fmt.Printf("stimulus written to %s\n", *save)
	}
}

// stimulusFile is the on-disk representation of a test stimulus.
type stimulusFile struct {
	Shape []int
	Data  []float64
}

func saveStimulus(path string, t *tensor.Tensor) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := gob.NewEncoder(f).Encode(stimulusFile{Shape: t.Shape(), Data: t.Data()}); err != nil {
		return err
	}
	return f.Close()
}

func parseScale(s string) (snn.ModelScale, error) {
	switch s {
	case "tiny":
		return snn.ScaleTiny, nil
	case "small":
		return snn.ScaleSmall, nil
	case "full":
		return snn.ScaleFull, nil
	default:
		return 0, fmt.Errorf("unknown scale %q (want tiny, small or full)", s)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "snntestgen:", err)
	os.Exit(1)
}
