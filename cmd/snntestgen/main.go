// Command snntestgen is the end-to-end tool of the reproduction: it
// builds and trains a benchmark SNN (or loads trained weights), runs the
// paper's test-generation algorithm, and verifies the resulting stimulus
// with a single fault-simulation campaign, printing the Table III
// efficiency metrics.
//
// Usage:
//
//	snntestgen -bench nmnist [-scale tiny|small|full] [-seed N]
//	           [-weights file.gob] [-epochs N] [-steps1 N] [-max-iter N]
//	           [-restarts K] [-tinmin N] [-stride N] [-workers N]
//	           [-save-stimulus file.gob]
//	           [-v|-quiet] [-trace out.jsonl] [-serve :9090]
//	           [-ledger dir] [-stall-timeout D]
//	           [-profile-dir dir] [-cpuprofile f] [-memprofile f]
//
// -restarts K enables the deterministic multi-restart generation engine:
// every iteration optimizes K independently seeded candidate chunks on a
// worker pool (-workers bounds it) and keeps the best. Results depend
// only on -seed, never on the worker count.
//
// -trace records the run's observability stream (span tree + counters) as
// JSON lines and prints an end-of-run summary; -serve exposes the run
// live over HTTP (/metrics, /runs, /debug/pprof); -v / -quiet tune the
// stderr narration. -profile-dir writes phase-labelled
// snntestgen.{cpu,heap}.pprof profiles (analyze with
// `benchreport -profile`); -cpuprofile / -memprofile override the paths.
// -stall-timeout (with -serve and -ledger) dumps goroutine snapshots of
// flatlined runs into the ledger directory.
// SIGINT/SIGTERM cancel generation gracefully — the partial stimulus is
// still verified and the trace flushed.
package main

import (
	"context"
	"encoding/gob"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"github.com/repro/snntest/internal/core"
	"github.com/repro/snntest/internal/dataset"
	"github.com/repro/snntest/internal/fault"
	"github.com/repro/snntest/internal/metrics"
	"github.com/repro/snntest/internal/obs"
	_ "github.com/repro/snntest/internal/obs/telemetry" // -serve support
	"github.com/repro/snntest/internal/snn"
	"github.com/repro/snntest/internal/tensor"
	"github.com/repro/snntest/internal/train"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "snntestgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) (err error) {
	fs := flag.NewFlagSet("snntestgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var ocli obs.CLI
	ocli.Register(fs)
	var (
		bench     = fs.String("bench", "nmnist", "benchmark: nmnist, ibm-gesture or shd")
		scaleFlag = fs.String("scale", "tiny", "model scale: tiny, small or full")
		seed      = fs.Int64("seed", 1, "random seed")
		weights   = fs.String("weights", "", "load trained weights instead of training in-process")
		epochs    = fs.Int("epochs", 4, "in-process training epochs when -weights is absent")
		steps1    = fs.Int("steps1", 0, "stage-1 optimization steps (0 = scale default)")
		maxIter   = fs.Int("max-iter", 0, "maximum generated chunks (0 = scale default)")
		restarts  = fs.Int("restarts", 1, "optimizer restarts per chunk (>1 enables the parallel engine)")
		tinMin    = fs.Int("tinmin", 0, "pin the chunk duration T_in,min and skip calibration (0 = calibrate)")
		stride    = fs.Int("stride", 1, "fault universe stride for verification")
		workers   = fs.Int("workers", 0, "campaign and restart workers (0 = GOMAXPROCS)")
		save      = fs.String("save-stimulus", "", "write the stimulus tensor to this file (gob)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	log, stop, err := ocli.Start(stderr)
	if err != nil {
		return err
	}
	defer func() {
		if serr := stop(); err == nil {
			err = serr
		}
	}()
	sctx, cancel := obs.SignalContext(context.Background())
	defer cancel()
	ctx, root := obs.Start(sctx, "snntestgen")
	defer root.End()

	scale, err := parseScale(*scaleFlag)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	net, err := snn.Build(*bench, rng, scale)
	if err != nil {
		return err
	}

	sampleSteps, err := snn.SampleSteps(*bench, scale)
	if err != nil {
		return err
	}
	ds, err := dataset.ForBenchmark(net, dataset.Config{
		TrainPerClass: 4, TestPerClass: 2, Steps: sampleSteps, Seed: *seed + 1,
	})
	if err != nil {
		return err
	}
	if *weights != "" {
		if err := net.LoadWeightsFile(*weights); err != nil {
			return err
		}
	} else {
		trainIn, trainLab := ds.Inputs("train")
		log.Infof("training model…")
		if _, err := train.Train(net, trainIn, trainLab, train.Config{
			Epochs: *epochs, LR: 0.03, Seed: *seed + 2,
		}); err != nil {
			return err
		}
	}

	cfg := core.DefaultConfig()
	if scale != snn.ScaleFull {
		cfg = core.TestConfig()
		cfg.Steps1 = 100
	}
	cfg.Seed = *seed + 3
	cfg.Log = log.Writer(obs.LevelDebug)
	if *steps1 > 0 {
		cfg.Steps1 = *steps1
	}
	if *maxIter > 0 {
		cfg.MaxIterations = *maxIter
	}
	if *tinMin > 0 {
		cfg.TInMin = *tinMin
	}
	cfg.Parallel = core.Parallel{Restarts: *restarts, Workers: *workers}

	log.Infof("generating test stimulus…")
	res, err := core.GenerateContext(ctx, net, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "test generation runtime: %v\n", res.Runtime.Round(time.Millisecond))
	fmt.Fprintf(stdout, "T_in,min: %d steps; chunks: %d\n", res.TInMin, len(res.Chunks))
	fmt.Fprintf(stdout, "test duration: %d steps = %.2f samples = %.3f s\n",
		res.TotalSteps(), res.DurationSamples(sampleSteps),
		metrics.DurationSeconds(net, res.TotalSteps()))
	fmt.Fprintf(stdout, "activated neurons: %.2f%%\n", 100*res.ActivatedFraction)
	summary := metrics.SummarizeGeneration(res.Trace)
	fmt.Fprintf(stdout, "generation: %d iterations, %d growths, %.1f new neurons/iteration\n",
		summary.Iterations, summary.TotalGrowths, summary.MeanNewActivated)
	if *restarts > 1 {
		fmt.Fprintf(stdout, "restarts evaluated: %d; wins by restart index:", summary.RestartsRun)
		for r := 0; r < *restarts; r++ {
			fmt.Fprintf(stdout, " %d:%d", r, summary.WinnersByRestart[r])
		}
		fmt.Fprintln(stdout)
	}

	faults := fault.SampleUniverse(net, fault.DefaultOptions(), *stride)
	log.Infof("verifying against %d faults…", len(faults))
	testIn, _ := ds.Inputs("test")
	cls, err := fault.ClassifyWith(net, faults, testIn, fault.CampaignOptions{
		Workers: *workers, Context: ctx,
	})
	if err != nil {
		return err
	}
	critical := cls.Critical
	sim, err := fault.SimulateWith(net, faults, res.Stimulus, fault.CampaignOptions{
		Workers: *workers, Context: ctx,
	})
	if err != nil {
		return err
	}
	cov, err := fault.Compute(faults, sim.Detected, critical)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "verification campaign: %v for %d faults\n", sim.Elapsed.Round(time.Millisecond), len(faults))
	fmt.Fprintf(stdout, "FC critical neuron faults:  %.2f%%\n", 100*cov.CriticalNeuron.FC())
	fmt.Fprintf(stdout, "FC critical synapse faults: %.2f%%\n", 100*cov.CriticalSynapse.FC())
	fmt.Fprintf(stdout, "FC benign neuron faults:    %.2f%%\n", 100*cov.BenignNeuron.FC())
	fmt.Fprintf(stdout, "FC benign synapse faults:   %.2f%%\n", 100*cov.BenignSynapse.FC())

	if *save != "" {
		if err := saveStimulus(*save, res.Stimulus); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "stimulus written to %s\n", *save)
	}
	return nil
}

// stimulusFile is the on-disk representation of a test stimulus.
type stimulusFile struct {
	Shape []int
	Data  []float64
}

func saveStimulus(path string, t *tensor.Tensor) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := gob.NewEncoder(f).Encode(stimulusFile{Shape: t.Shape(), Data: t.Data()}); err != nil {
		return err
	}
	return f.Close()
}

func parseScale(s string) (snn.ModelScale, error) {
	switch s {
	case "tiny":
		return snn.ScaleTiny, nil
	case "small":
		return snn.ScaleSmall, nil
	case "full":
		return snn.ScaleFull, nil
	default:
		return 0, fmt.Errorf("unknown scale %q (want tiny, small or full)", s)
	}
}
