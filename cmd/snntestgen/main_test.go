package main

import (
	"bytes"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"github.com/repro/snntest/internal/profparse"
)

// TestRunSmoke drives the full binary pipeline — build, train, generate,
// verify — on a minimal budget and checks the headline report lines.
func TestRunSmoke(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := []string{
		"-bench", "nmnist", "-scale", "tiny", "-epochs", "1",
		"-steps1", "8", "-max-iter", "1", "-restarts", "2",
		"-tinmin", "6", "-stride", "50",
	}
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"T_in,min: 6 steps",
		"activated neurons:",
		"generation:",
		"restarts evaluated:",
		"FC critical neuron faults:",
		"FC benign synapse faults:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q; got:\n%s", want, out)
		}
	}
}

// TestRunProfileDirDarkIdentity pins two acceptance criteria at once: a
// -profile-dir run leaves the tool's stdout byte-identical to a dark run
// (profiling is observability, never behaviour), and the captured CPU
// profile attributes ≥95% of its samples to a phase label.
func TestRunProfileDirDarkIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("live CPU profile capture in -short mode")
	}
	// A slightly heavier budget than the smoke run so the profiled
	// window collects enough CPU samples to judge attribution.
	args := []string{
		"-bench", "nmnist", "-scale", "tiny", "-epochs", "2",
		"-steps1", "16", "-max-iter", "2", "-restarts", "4",
		"-tinmin", "6", "-stride", "50",
	}
	var dark, darkErr bytes.Buffer
	if err := run(args, &dark, &darkErr); err != nil {
		t.Fatalf("dark run: %v\nstderr:\n%s", err, darkErr.String())
	}

	dir := t.TempDir()
	var lit, litErr bytes.Buffer
	if err := run(append([]string{"-profile-dir", dir, "-quiet"}, args...), &lit, &litErr); err != nil {
		t.Fatalf("profiled run: %v\nstderr:\n%s", err, litErr.String())
	}
	// Wall-clock timings differ run to run even fully dark; everything
	// else — every count, percentage and table — must be byte-identical.
	durations := regexp.MustCompile(`[0-9]+(\.[0-9]+)?(ns|µs|us|ms|m|h|s)\b`)
	norm := func(s string) string { return durations.ReplaceAllString(s, "DUR") }
	if norm(dark.String()) != norm(lit.String()) {
		t.Errorf("-profile-dir changed stdout:\ndark:\n%s\nprofiled:\n%s", dark.String(), lit.String())
	}

	p, err := profparse.ParseFile(filepath.Join(dir, "snntestgen.cpu.pprof"))
	if err != nil {
		t.Fatal(err)
	}
	r := profparse.FoldByPhase(p, "cpu")
	if r.TotalSamples < 20 {
		t.Skipf("only %d CPU samples collected; too few to judge attribution", r.TotalSamples)
	}
	// This minimal-budget run is training-heavy, so GC background
	// goroutines (the only unlabelled samples) hold a few percent; the
	// full ≥0.95 acceptance gate runs in verify.sh on a realistic
	// generate-dominated capture, where the zero-alloc kernels push the
	// labelled fraction past 99%.
	if r.LabeledFraction < 0.90 {
		t.Errorf("phase-labelled fraction = %.3f, want >= 0.90; phases: %+v", r.LabeledFraction, r.Phases)
	}
}

func TestRunBadScale(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-scale", "bogus"}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "unknown scale") {
		t.Fatalf("want unknown-scale error, got %v", err)
	}
}

func TestRunBadFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-no-such-flag"}, &stdout, &stderr); err == nil {
		t.Fatal("want flag-parse error, got nil")
	}
}
