package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunSmoke drives the full binary pipeline — build, train, generate,
// verify — on a minimal budget and checks the headline report lines.
func TestRunSmoke(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := []string{
		"-bench", "nmnist", "-scale", "tiny", "-epochs", "1",
		"-steps1", "8", "-max-iter", "1", "-restarts", "2",
		"-tinmin", "6", "-stride", "50",
	}
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"T_in,min: 6 steps",
		"activated neurons:",
		"generation:",
		"restarts evaluated:",
		"FC critical neuron faults:",
		"FC benign synapse faults:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q; got:\n%s", want, out)
		}
	}
}

func TestRunBadScale(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-scale", "bogus"}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "unknown scale") {
		t.Fatalf("want unknown-scale error, got %v", err)
	}
}

func TestRunBadFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-no-such-flag"}, &stdout, &stderr); err == nil {
		t.Fatal("want flag-parse error, got nil")
	}
}
