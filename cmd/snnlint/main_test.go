package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// TestRunList checks the -list mode names every registered analyzer.
func TestRunList(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	n, err := run([]string{"-list"}, wd, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if n != 0 {
		t.Fatalf("list mode reported %d findings, want 0", n)
	}
	out := stdout.String()
	for _, want := range []string{"determinism", "errchecklite", "goroutinejoin", "panicfree", "rawdata", "stdlibonly"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list output missing analyzer %q; got:\n%s", want, out)
		}
	}
}

// TestRunModuleCleanJSON lints the enclosing module (the lint walk finds
// the module root from any subdirectory) and requires zero findings, in
// valid JSON form.
func TestRunModuleCleanJSON(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	n, err := run([]string{"-json"}, wd, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var diags []map[string]any
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, stdout.String())
	}
	if n != 0 || len(diags) != 0 {
		t.Fatalf("module has %d lint finding(s):\n%s", n, stdout.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if _, err := run([]string{"-no-such-flag"}, ".", &stdout, &stderr); err == nil {
		t.Fatal("want flag-parse error, got nil")
	}
}

// writeTempModule lays out a tiny single-package module for exercising
// the findings and load-error exit paths without touching the real repo.
func writeTempModule(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(dir+"/go.mod", []byte("module example.com/tmp\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir+"/tmp.go", []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestRunFindingsCount drives the findings exit path (main maps any
// positive count to exit code 1): a defer inside a loop is one finding,
// and the summary line carries the analyzed/suppressed counts.
func TestRunFindingsCount(t *testing.T) {
	dir := writeTempModule(t, `package tmp

func leak(fns []func()) {
	for _, f := range fns {
		defer f()
	}
}
`)
	var stdout, stderr bytes.Buffer
	n, err := run(nil, dir, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if n != 1 {
		t.Fatalf("got %d findings, want 1; stdout:\n%s", n, stdout.String())
	}
	if !strings.Contains(stdout.String(), "[deferloop]") {
		t.Errorf("missing deferloop diagnostic:\n%s", stdout.String())
	}
	sum := stderr.String()
	for _, want := range []string{"1 package(s)", "1 analyzed", "0 suppressed", "1 finding(s)"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary line missing %q:\n%s", want, sum)
		}
	}
}

// TestRunSuppressedFinding checks that a //lint:ignore directive drops
// the finding and is counted in the summary.
func TestRunSuppressedFinding(t *testing.T) {
	dir := writeTempModule(t, `package tmp

func leak(fns []func()) {
	for _, f := range fns {
		defer f() //lint:ignore deferloop bounded fan-in, joined by the caller
	}
}
`)
	var stdout, stderr bytes.Buffer
	n, err := run(nil, dir, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if n != 0 {
		t.Fatalf("got %d findings, want 0 (suppressed); stdout:\n%s", n, stdout.String())
	}
	if !strings.Contains(stderr.String(), "1 suppressed") {
		t.Errorf("summary line missing suppressed count:\n%s", stderr.String())
	}
}

// TestRunLoadErrorExitPath: a type-check failure must surface as an
// error (main maps it to exit code 2), not as findings.
func TestRunLoadErrorExitPath(t *testing.T) {
	dir := writeTempModule(t, "package tmp\n\nfunc broken() { undefinedSymbol() }\n")
	var stdout, stderr bytes.Buffer
	if _, err := run(nil, dir, &stdout, &stderr); err == nil {
		t.Fatal("want type-check error, got nil")
	}
}

// TestRunCacheWarm runs twice against the same cache file: the second
// run must serve every package from the cache and emit identical
// diagnostics output.
func TestRunCacheWarm(t *testing.T) {
	dir := writeTempModule(t, `package tmp

func leak(fns []func()) {
	for _, f := range fns {
		defer f()
	}
}
`)
	cache := dir + "/cache.json"
	var out1, err1, out2, err2 bytes.Buffer
	if _, err := run([]string{"-cache", cache}, dir, &out1, &err1); err != nil {
		t.Fatalf("cold run: %v", err)
	}
	if _, err := run([]string{"-cache", cache}, dir, &out2, &err2); err != nil {
		t.Fatalf("warm run: %v", err)
	}
	if out1.String() != out2.String() {
		t.Errorf("warm-cache diagnostics differ:\ncold:\n%s\nwarm:\n%s", out1.String(), out2.String())
	}
	if !strings.Contains(err2.String(), "0 analyzed, 1 cached") {
		t.Errorf("warm run did not hit the cache:\n%s", err2.String())
	}
}

// TestRunBaselineRoundTrip records findings with -write-baseline, then
// filters them with -baseline.
func TestRunBaselineRoundTrip(t *testing.T) {
	dir := writeTempModule(t, `package tmp

func leak(fns []func()) {
	for _, f := range fns {
		defer f()
	}
}
`)
	bl := dir + "/baseline.json"
	var stdout, stderr bytes.Buffer
	n, err := run([]string{"-write-baseline", bl}, dir, &stdout, &stderr)
	if err != nil {
		t.Fatalf("write-baseline run: %v", err)
	}
	if n != 0 {
		t.Fatalf("write-baseline mode reported %d findings, want 0", n)
	}
	stdout.Reset()
	stderr.Reset()
	n, err = run([]string{"-baseline", bl}, dir, &stdout, &stderr)
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	if n != 0 {
		t.Fatalf("baselined finding resurfaced: %d findings\n%s", n, stdout.String())
	}
	if !strings.Contains(stderr.String(), "1 baselined") {
		t.Errorf("summary line missing baselined count:\n%s", stderr.String())
	}
}
