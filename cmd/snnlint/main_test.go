package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// TestRunList checks the -list mode names every registered analyzer.
func TestRunList(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	n, err := run([]string{"-list"}, wd, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if n != 0 {
		t.Fatalf("list mode reported %d findings, want 0", n)
	}
	out := stdout.String()
	for _, want := range []string{"determinism", "errchecklite", "goroutinejoin", "panicfree", "rawdata", "stdlibonly"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list output missing analyzer %q; got:\n%s", want, out)
		}
	}
}

// TestRunModuleCleanJSON lints the enclosing module (the lint walk finds
// the module root from any subdirectory) and requires zero findings, in
// valid JSON form.
func TestRunModuleCleanJSON(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	n, err := run([]string{"-json"}, wd, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var diags []map[string]any
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, stdout.String())
	}
	if n != 0 || len(diags) != 0 {
		t.Fatalf("module has %d lint finding(s):\n%s", n, stdout.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if _, err := run([]string{"-no-such-flag"}, ".", &stdout, &stderr); err == nil {
		t.Fatal("want flag-parse error, got nil")
	}
}
