// Command snnlint runs the repo-specific static-analysis suite over the
// enclosing Go module and reports diagnostics with file:line:col
// positions. It exits 0 when clean, 1 on findings, 2 on load failure.
//
// Usage:
//
//	go run ./cmd/snnlint ./...
//	go run ./cmd/snnlint -json ./...
//	go run ./cmd/snnlint -list
//
// The module is always analyzed as a whole (package patterns are
// accepted for command-line symmetry with go vet but do not narrow the
// walk). See internal/lint for the analyzers and README.md for how to
// add one. snnlint shares the repo-wide observability flags (-v, -quiet,
// -trace, -serve, -cpuprofile, -memprofile) with the other cmds.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/repro/snntest/internal/lint"
	"github.com/repro/snntest/internal/obs"
	_ "github.com/repro/snntest/internal/obs/telemetry" // -serve support
)

func main() {
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "snnlint:", err)
		os.Exit(2)
	}
	findings, err := run(os.Args[1:], wd, os.Stdout, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "snnlint:", err)
		os.Exit(2)
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "snnlint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

// run executes the lint walk rooted at dir and returns the finding count;
// a non-nil error signals a load/encode failure (exit code 2).
func run(args []string, dir string, stdout, stderr io.Writer) (findings int, err error) {
	fs := flag.NewFlagSet("snnlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var ocli obs.CLI
	ocli.Register(fs)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	list := fs.Bool("list", false, "list the analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 0, err
	}
	log, stop, err := ocli.Start(stderr)
	if err != nil {
		return 0, err
	}
	defer func() {
		if serr := stop(); err == nil {
			err = serr
		}
	}()

	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0, nil
	}

	mod, err := lint.LoadModule(dir)
	if err != nil {
		return 0, err
	}
	log.Debugf("loaded module at %s: %d packages", dir, len(mod.Pkgs))
	diags := lint.Run(mod, lint.All())
	log.Debugf("ran %d analyzers: %d finding(s)", len(lint.All()), len(diags))

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			return 0, err
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	return len(diags), nil
}
