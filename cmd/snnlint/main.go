// Command snnlint runs the repo-specific static-analysis suite over the
// enclosing Go module and reports diagnostics with file:line:col
// positions. It exits 0 when clean, 1 on findings, 2 on load failure.
//
// Usage:
//
//	go run ./cmd/snnlint ./...
//	go run ./cmd/snnlint -json ./...
//	go run ./cmd/snnlint -cache .snnlint-cache.json ./...
//	go run ./cmd/snnlint -list
//
// The module is always analyzed as a whole (package patterns are
// accepted for command-line symmetry with go vet but do not narrow the
// walk) through the incremental parallel driver: -cache persists
// per-package results keyed by content hash so unchanged packages skip
// parsing and type-checking, -workers bounds the concurrency (the output
// is identical for every value), and -baseline filters accepted
// pre-existing findings recorded with -write-baseline. See internal/lint
// for the analyzers and README.md for how to add one. snnlint shares the
// repo-wide observability flags (-v, -quiet, -trace, -serve,
// -profile-dir, -cpuprofile, -memprofile) with the other cmds.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/repro/snntest/internal/lint"
	"github.com/repro/snntest/internal/obs"
	_ "github.com/repro/snntest/internal/obs/telemetry" // -serve support
)

func main() {
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "snnlint:", err)
		os.Exit(2)
	}
	findings, err := run(os.Args[1:], wd, os.Stdout, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "snnlint:", err)
		os.Exit(2)
	}
	if findings > 0 {
		os.Exit(1)
	}
}

// run executes the lint walk rooted at dir and returns the finding count;
// a non-nil error signals a load/encode failure (exit code 2).
func run(args []string, dir string, stdout, stderr io.Writer) (findings int, err error) {
	fs := flag.NewFlagSet("snnlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var ocli obs.CLI
	ocli.Register(fs)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	list := fs.Bool("list", false, "list the analyzers and exit")
	workers := fs.Int("workers", 0, "type-check/analysis concurrency (0 = GOMAXPROCS; output is identical for every value)")
	cachePath := fs.String("cache", "", "persistent per-package diagnostics cache file (empty = no cache)")
	baselinePath := fs.String("baseline", "", "accepted-findings baseline file to filter against")
	writeBaseline := fs.String("write-baseline", "", "record the run's findings as the accepted baseline at this path and exit 0")
	if err := fs.Parse(args); err != nil {
		return 0, err
	}
	log, stop, err := ocli.Start(stderr)
	if err != nil {
		return 0, err
	}
	defer func() {
		if serr := stop(); err == nil {
			err = serr
		}
	}()

	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0, nil
	}

	opts := lint.Options{Workers: *workers, CachePath: *cachePath}
	if *baselinePath != "" {
		opts.Baseline, err = lint.LoadBaseline(*baselinePath)
		if err != nil {
			return 0, err
		}
	}
	res, err := lint.AnalyzeModule(dir, lint.All(), opts)
	if err != nil {
		return 0, err
	}
	st := res.Stats
	log.Debugf("analyzed module at %s: %d packages", dir, st.Packages)

	if *writeBaseline != "" {
		if err := lint.WriteBaseline(*writeBaseline, dir, res.Diagnostics); err != nil {
			return 0, err
		}
		fmt.Fprintf(stderr, "snnlint: wrote %d finding(s) to baseline %s\n", len(res.Diagnostics), *writeBaseline)
		return 0, nil
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		diags := res.Diagnostics
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			return 0, err
		}
	} else {
		for _, d := range res.Diagnostics {
			fmt.Fprintln(stdout, d)
		}
	}
	fmt.Fprintf(stderr, "snnlint: %d package(s): %d analyzed, %d cached; %d suppressed, %d baselined, %d finding(s) in %v\n",
		st.Packages, st.Analyzed, st.Cached, st.Suppressed, st.Baselined, len(res.Diagnostics), st.Wall.Round(time.Millisecond))
	return len(res.Diagnostics), nil
}
