// Command snnlint runs the repo-specific static-analysis suite over the
// enclosing Go module and reports diagnostics with file:line:col
// positions. It exits 0 when clean, 1 on findings, 2 on load failure.
//
// Usage:
//
//	go run ./cmd/snnlint ./...
//	go run ./cmd/snnlint -json ./...
//	go run ./cmd/snnlint -list
//
// The module is always analyzed as a whole (package patterns are
// accepted for command-line symmetry with go vet but do not narrow the
// walk). See internal/lint for the analyzers and README.md for how to
// add one.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/repro/snntest/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "snnlint:", err)
		os.Exit(2)
	}
	mod, err := lint.LoadModule(wd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "snnlint:", err)
		os.Exit(2)
	}
	diags := lint.Run(mod, lint.All())

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "snnlint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "snnlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
