package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunSmoke runs a heavily strided campaign on the tiny SHD model and
// checks the per-class report lines.
func TestRunSmoke(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := []string{
		"-bench", "shd", "-scale", "tiny", "-epochs", "1", "-stride", "50",
	}
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"universe",
		"critical neuron faults:",
		"benign synapse faults:",
		"campaign time:",
		"simulated layer-steps:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q; got:\n%s", want, out)
		}
	}
}

func TestRunBadScale(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-scale", "bogus"}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "unknown scale") {
		t.Fatalf("want unknown-scale error, got %v", err)
	}
}

func TestRunBadBenchmark(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-bench", "imagenet"}, &stdout, &stderr); err == nil {
		t.Fatal("want unknown-benchmark error, got nil")
	}
}
