// Command faultsim runs a standalone fault-simulation campaign on one
// benchmark model: it enumerates the fault universe, labels each fault
// critical or benign against the test split (the Table II campaign), and
// reports the per-class counts and wall-clock cost.
//
// Usage:
//
//	faultsim -bench shd [-scale tiny|small|full] [-stride N]
//	         [-weights file.gob] [-extended] [-workers N] [-seed N] [-full]
//	         [-v|-quiet] [-trace out.jsonl] [-serve :9090]
//	         [-ledger dir] [-stall-timeout D]
//	         [-profile-dir dir] [-cpuprofile f] [-memprofile f]
//
// By default the campaign is incremental: each faulty simulation replays
// the golden spike trace up to the fault's layer and re-simulates only
// the layers above it. -full forces the reference full re-simulation of
// every fault (same results, more simulated layer-steps).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"
	"time"

	"github.com/repro/snntest/internal/dataset"
	"github.com/repro/snntest/internal/fault"
	"github.com/repro/snntest/internal/obs"
	_ "github.com/repro/snntest/internal/obs/telemetry" // -serve support
	"github.com/repro/snntest/internal/snn"
	"github.com/repro/snntest/internal/train"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "faultsim:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) (err error) {
	fs := flag.NewFlagSet("faultsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var ocli obs.CLI
	ocli.Register(fs)
	var (
		bench     = fs.String("bench", "shd", "benchmark: nmnist, ibm-gesture or shd")
		scaleFlag = fs.String("scale", "tiny", "model scale: tiny, small or full")
		stride    = fs.Int("stride", 1, "fault universe subsampling stride (1 = exhaustive)")
		weights   = fs.String("weights", "", "load trained weights instead of training in-process")
		extended  = fs.Bool("extended", false, "include timing-variation and bit-flip faults")
		workers   = fs.Int("workers", 0, "campaign workers (0 = GOMAXPROCS)")
		epochs    = fs.Int("epochs", 4, "in-process training epochs when -weights is absent")
		seed      = fs.Int64("seed", 1, "random seed")
		full      = fs.Bool("full", false, "disable incremental golden-trace replay (full re-simulation per fault)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	log, stop, err := ocli.Start(stderr)
	if err != nil {
		return err
	}
	defer func() {
		if serr := stop(); err == nil {
			err = serr
		}
	}()
	sctx, cancel := obs.SignalContext(context.Background())
	defer cancel()
	ctx, root := obs.Start(sctx, "faultsim")
	defer root.End()

	scale, err := parseScale(*scaleFlag)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	net, err := snn.Build(*bench, rng, scale)
	if err != nil {
		return err
	}

	sampleSteps, err := snn.SampleSteps(*bench, scale)
	if err != nil {
		return err
	}
	ds, err := dataset.ForBenchmark(net, dataset.Config{
		TrainPerClass: 4, TestPerClass: 2,
		Steps: sampleSteps, Seed: *seed + 1,
	})
	if err != nil {
		return err
	}
	if *weights != "" {
		if err := net.LoadWeightsFile(*weights); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "loaded weights from %s\n", *weights)
	} else {
		trainIn, trainLab := ds.Inputs("train")
		log.Infof("training model…")
		if _, err := train.Train(net, trainIn, trainLab, train.Config{
			Epochs: *epochs, LR: 0.03, Seed: *seed + 2,
		}); err != nil {
			return err
		}
	}

	opts := fault.DefaultOptions()
	if *extended {
		opts = fault.ExtendedOptions()
	}
	faults := fault.SampleUniverse(net, opts, *stride)
	fmt.Fprintf(stdout, "%s (%s): %d neurons, %d synapses; universe %d faults (stride %d → %d simulated)\n",
		net.Name, *scaleFlag, net.NumNeurons(), net.NumSynapses(),
		fault.UniverseSize(net, opts), *stride, len(faults))

	testIn, _ := ds.Inputs("test")
	start := time.Now()
	var progress func(done int)
	if log.Enabled(obs.LevelInfo) {
		var progressMu sync.Mutex
		progress = func(done int) {
			progressMu.Lock()
			fmt.Fprintf(stderr, "\rclassified %d/%d", done, len(faults))
			progressMu.Unlock()
		}
	}
	res, err := fault.ClassifyWith(net, faults, testIn, fault.CampaignOptions{
		Workers:   *workers,
		FullResim: *full,
		Progress:  progress,
		Context:   ctx,
	})
	if progress != nil {
		fmt.Fprintln(stderr)
	}
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	critical := res.Critical

	var cn, bn, cs, bs int
	for i, f := range faults {
		switch {
		case f.Kind.IsNeuron() && critical[i]:
			cn++
		case f.Kind.IsNeuron():
			bn++
		case critical[i]:
			cs++
		default:
			bs++
		}
	}
	fmt.Fprintf(stdout, "\nFault simulation results (%d samples, %d steps each):\n", len(testIn), ds.SampleSteps)
	fmt.Fprintf(stdout, "  critical neuron faults:  %d\n", cn)
	fmt.Fprintf(stdout, "  benign neuron faults:    %d\n", bn)
	fmt.Fprintf(stdout, "  critical synapse faults: %d\n", cs)
	fmt.Fprintf(stdout, "  benign synapse faults:   %d\n", bs)
	fmt.Fprintf(stdout, "  campaign time:           %v (%.2f ms/fault)\n",
		elapsed.Round(time.Millisecond), float64(elapsed.Milliseconds())/float64(len(faults)))
	fmt.Fprintf(stdout, "  simulated layer-steps:   %d of %d full (%.2fx saved)\n",
		res.LayerSteps, res.FullLayerSteps, float64(res.FullLayerSteps)/float64(res.LayerSteps))
	return nil
}

func parseScale(s string) (snn.ModelScale, error) {
	switch s {
	case "tiny":
		return snn.ScaleTiny, nil
	case "small":
		return snn.ScaleSmall, nil
	case "full":
		return snn.ScaleFull, nil
	default:
		return 0, fmt.Errorf("unknown scale %q (want tiny, small or full)", s)
	}
}
