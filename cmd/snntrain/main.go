// Command snntrain trains one benchmark SNN on its synthetic dataset
// with surrogate-gradient BPTT and optionally saves the weights.
//
// Usage:
//
//	snntrain -bench nmnist [-scale tiny|small|full] [-epochs N] [-lr F]
//	         [-seed N] [-out weights.gob]
//	         [-v|-quiet] [-trace out.jsonl] [-serve :9090]
//	         [-profile-dir dir] [-cpuprofile f] [-memprofile f]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"github.com/repro/snntest/internal/dataset"
	"github.com/repro/snntest/internal/obs"
	_ "github.com/repro/snntest/internal/obs/telemetry" // -serve support
	"github.com/repro/snntest/internal/snn"
	"github.com/repro/snntest/internal/train"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "snntrain:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) (err error) {
	fs := flag.NewFlagSet("snntrain", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var ocli obs.CLI
	ocli.Register(fs)
	var (
		bench     = fs.String("bench", "nmnist", "benchmark: nmnist, ibm-gesture or shd")
		scaleFlag = fs.String("scale", "tiny", "model scale: tiny, small or full")
		epochs    = fs.Int("epochs", 5, "training epochs")
		lr        = fs.Float64("lr", 0.01, "Adam learning rate")
		perClass  = fs.Int("per-class", 6, "training samples per class")
		seed      = fs.Int64("seed", 1, "random seed")
		out       = fs.String("out", "", "write trained weights to this file (gob)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	log, stop, err := ocli.Start(stderr)
	if err != nil {
		return err
	}
	defer func() {
		if serr := stop(); err == nil {
			err = serr
		}
	}()
	_, root := obs.Start(context.Background(), "snntrain")
	defer root.End()

	scale, err := parseScale(*scaleFlag)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	net, err := snn.Build(*bench, rng, scale)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%s (%s): %d neurons, %d synapses\n", net.Name, *scaleFlag, net.NumNeurons(), net.NumSynapses())

	sampleSteps, err := snn.SampleSteps(*bench, scale)
	if err != nil {
		return err
	}
	ds, err := dataset.ForBenchmark(net, dataset.Config{
		TrainPerClass: *perClass,
		TestPerClass:  max(1, *perClass/2),
		Steps:         sampleSteps,
		Seed:          *seed + 1,
	})
	if err != nil {
		return err
	}
	trainIn, trainLab := ds.Inputs("train")
	testIn, testLab := ds.Inputs("test")

	log.Infof("training %s for %d epochs…", net.Name, *epochs)
	_, err = train.Train(net, trainIn, trainLab, train.Config{
		Epochs: *epochs, LR: *lr, Seed: *seed + 2, Log: log.Writer(obs.LevelInfo),
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "test accuracy: %.2f%%\n", 100*train.Evaluate(net, testIn, testLab))

	if *out != "" {
		if err := net.SaveWeightsFile(*out); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "weights written to %s\n", *out)
	}
	return nil
}

func parseScale(s string) (snn.ModelScale, error) {
	switch s {
	case "tiny":
		return snn.ScaleTiny, nil
	case "small":
		return snn.ScaleSmall, nil
	case "full":
		return snn.ScaleFull, nil
	default:
		return 0, fmt.Errorf("unknown scale %q (want tiny, small or full)", s)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
