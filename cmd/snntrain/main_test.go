package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunSmoke trains the tiny NMNIST model for one epoch and saves the
// weights, checking the log and the weight file round-trip message.
func TestRunSmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "w.gob")
	var stdout, stderr bytes.Buffer
	args := []string{
		"-bench", "nmnist", "-scale", "tiny", "-epochs", "1",
		"-per-class", "2", "-out", out,
	}
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, stderr.String())
	}
	got := stdout.String()
	for _, want := range []string{"neurons", "test accuracy:", "weights written to"} {
		if !strings.Contains(got, want) {
			t.Errorf("stdout missing %q; got:\n%s", want, got)
		}
	}
}

func TestRunBadScale(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-scale", "bogus"}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "unknown scale") {
		t.Fatalf("want unknown-scale error, got %v", err)
	}
}
