package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strings"
	"testing"
	"time"
)

// captureLabeledProfile burns CPU under generate-taxonomy phase labels
// and returns the written CPU profile path.
func captureLabeledProfile(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "cpu.pprof")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		t.Fatal(err)
	}
	sink := 0
	burn := func(phase string, d time.Duration) {
		ctx := pprof.WithLabels(context.Background(), pprof.Labels("phase", phase))
		pprof.SetGoroutineLabels(ctx)
		for deadline := time.Now().Add(d); time.Now().Before(deadline); {
			for i := 0; i < 1_000_000; i++ {
				sink += i * i
			}
		}
		pprof.SetGoroutineLabels(context.Background())
	}
	burn("generate/restart", 250*time.Millisecond)
	burn("generate/calibrate/candidate", 100*time.Millisecond)
	pprof.StopCPUProfile()
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	_ = sink
	return path
}

// TestRunProfileMode runs the -profile analyzer end to end on a live
// labelled capture: per-phase table on stdout, BENCH_profile.json on
// disk, gates passing, and a second run reproducing the report
// byte-identically (determinism is part of the acceptance contract).
func TestRunProfileMode(t *testing.T) {
	if testing.Short() {
		t.Skip("live CPU profile capture in -short mode")
	}
	prof := captureLabeledProfile(t)
	out := filepath.Join(t.TempDir(), "BENCH_profile.json")

	var stdout, stderr bytes.Buffer
	args := []string{
		"-profile", prof, "-profile-out", out,
		"-profile-min-labeled", "0.9", "-profile-kernel-min", "0.8",
		"-profile-min-samples", "5",
	}
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v\nstdout:\n%s", err, stdout.String())
	}
	text := stdout.String()
	if strings.Contains(text, "gates skipped") {
		t.Skip("too few CPU samples collected to gate (profiling timer starved)")
	}
	for _, want := range []string{"generate/restart", "kernel share of generate", "profile report written"} {
		if !strings.Contains(text, want) {
			t.Errorf("stdout missing %q:\n%s", want, text)
		}
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var art profileArtifact
	if err := json.Unmarshal(data, &art); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if !art.Checks.Pass || !art.Checks.Gated {
		t.Errorf("checks did not pass: %+v", art.Checks)
	}
	if art.Report.LabeledFraction < 0.9 {
		t.Errorf("labelled fraction %.3f < 0.9", art.Report.LabeledFraction)
	}
	if art.Checks.KernelFraction < 0.8 {
		t.Errorf("kernel fraction %.3f < 0.8", art.Checks.KernelFraction)
	}

	// Determinism: same profile in, byte-identical table and artifact out.
	var stdout2 bytes.Buffer
	out2 := filepath.Join(t.TempDir(), "BENCH_profile2.json")
	args2 := []string{
		"-profile", prof, "-profile-out", out2,
		"-profile-min-labeled", "0.9", "-profile-kernel-min", "0.8",
		"-profile-min-samples", "5",
	}
	if err := run(args2, &stdout2, &stderr); err != nil {
		t.Fatal(err)
	}
	norm := func(s, path string) string { return strings.ReplaceAll(s, path, "OUT") }
	if norm(stdout.String(), out) != norm(stdout2.String(), out2) {
		t.Error("re-running -profile on the same capture changed the table")
	}
	data2, err := os.ReadFile(out2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Error("re-running -profile on the same capture changed the JSON artifact")
	}
}

// TestRunProfileGateFailure feeds a profile with no phase labels and
// checks the labelled-fraction gate trips.
func TestRunProfileGateFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("live CPU profile capture in -short mode")
	}
	path := filepath.Join(t.TempDir(), "cpu.pprof")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		t.Fatal(err)
	}
	sink := 0
	for deadline := time.Now().Add(250 * time.Millisecond); time.Now().Before(deadline); {
		for i := 0; i < 1_000_000; i++ {
			sink += i * i
		}
	}
	pprof.StopCPUProfile()
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	_ = sink

	var stdout, stderr bytes.Buffer
	err = run([]string{
		"-profile", path, "-profile-out", "",
		"-profile-min-labeled", "0.95", "-profile-min-samples", "5",
	}, &stdout, &stderr)
	if strings.Contains(stdout.String(), "gates skipped") {
		t.Skip("too few CPU samples collected to gate")
	}
	if err == nil || !strings.Contains(err.Error(), "labelled fraction") {
		t.Fatalf("want labelled-fraction gate failure, got %v", err)
	}
}

func TestRunProfileMissingFile(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-profile", filepath.Join(t.TempDir(), "nope.pprof")}, &stdout, &stderr); err == nil {
		t.Fatal("want error for missing profile file")
	}
}
