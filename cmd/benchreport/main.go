// Command benchreport regenerates the paper's tables and figures on the
// synthetic reproduction pipelines.
//
// Usage:
//
//	benchreport [-scale tiny|small|full] [-seed N] [-workers N] [-epochs N]
//	            [-table 1|2|3|4] [-fig 7|8|9] [-ablations] [-forward] [-all]
//	            [-bench nmnist,ibm-gesture,shd] [-v|-quiet] [-out report.txt]
//	            [-obs] [-manifest BENCH_manifest.json]
//	            [-trajectory BENCH_trajectory.json] [-trace out.jsonl]
//	            [-serve :9090] [-profile-dir DIR] [-cpuprofile f] [-memprofile f]
//	            [-check] [-check-window N] [-check-min N] [-check-tol F]
//	            [-profile cpu.pprof] [-profile-out BENCH_profile.json]
//	            [-profile-min-labeled F] [-profile-kernel-min F]
//
// -check runs the perf-regression sentinel instead of the report: the
// latest trajectory record of every source has its ratio (*_x) metrics
// compared against the median of its prior same-source records, and any
// drop beyond the tolerance exits nonzero. verify.sh and CI invoke it
// so benchmark ratios cannot silently decay across revisions.
//
// -profile analyzes a pprof CPU profile captured with phase labelling
// on (any -profile-dir/-cpuprofile run, or /debug/pprof/profile): the
// samples are folded by their `phase` label into a per-phase flat/cum
// CPU table, written both to stdout and to the -profile-out JSON
// artifact. The optional gates fail the run when too few samples carry
// a phase label (-profile-min-labeled) or when the fused-kernel phases
// hold too little of the generate subtree's CPU (-profile-kernel-min) —
// verify.sh runs both so attribution regressions surface in CI.
//
// With no artifact flags, -all is implied. Tables I–III run on every
// selected benchmark; Table IV and the figures follow the paper's choices
// (Table IV on NMNIST, Figs. 7–9 on the IBM model).
//
// -obs enables the observability counters for the run, writes a run
// manifest (git revision, configuration, counter totals) next to the
// BENCH_*.json artifacts, and appends the run to the cumulative
// BENCH_trajectory.json history (-trajectory overrides the path), so
// benchmark numbers stay attributable to the exact run that produced
// them and comparable across revisions.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/repro/snntest/internal/core"
	"github.com/repro/snntest/internal/experiments"
	"github.com/repro/snntest/internal/obs"
	_ "github.com/repro/snntest/internal/obs/telemetry" // -serve support
	"github.com/repro/snntest/internal/snn"
	"github.com/repro/snntest/internal/tensor"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) (err error) {
	fs := flag.NewFlagSet("benchreport", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var ocli obs.CLI
	ocli.Register(fs)
	var (
		scaleFlag   = fs.String("scale", "tiny", "model scale: tiny, small or full")
		seed        = fs.Int64("seed", 1, "random seed for every stochastic component")
		workers     = fs.Int("workers", 0, "fault-campaign workers (0 = GOMAXPROCS)")
		epochs      = fs.Int("epochs", 0, "training epochs (0 = scale default)")
		table       = fs.Int("table", 0, "render one table (1-4)")
		fig         = fs.Int("fig", 0, "render one figure (7-9)")
		ablations   = fs.Bool("ablations", false, "run the ablation study")
		forward     = fs.Bool("forward", false, "render the fused-vs-reference forward kernel timing table")
		all         = fs.Bool("all", false, "render every table, figure and ablation")
		benchList   = fs.String("bench", strings.Join(experiments.Benchmarks, ","), "comma-separated benchmarks")
		outPath     = fs.String("out", "", "write the report to this file (default: stdout)")
		obsMode     = fs.Bool("obs", false, "collect run counters and write a run manifest")
		manifest    = fs.String("manifest", "BENCH_manifest.json", "manifest path for -obs")
		trajectory  = fs.String("trajectory", "BENCH_trajectory.json", "cumulative per-run trajectory path for -obs")
		check       = fs.Bool("check", false, "perf-regression sentinel: gate the trajectory's latest ratio metrics against their history and exit nonzero on regression")
		checkWin    = fs.Int("check-window", checkWindow, "sentinel baseline window (median of up to N prior same-source records)")
		checkMin    = fs.Int("check-min", checkMinHistory, "sentinel minimum prior records before a metric gates")
		checkTolF   = fs.Float64("check-tol", checkTol, "sentinel regression tolerance as a fraction of baseline")
		profile     = fs.String("profile", "", "analyze a pprof CPU profile: fold samples by phase label, render the per-phase table and write the -profile-out artifact")
		profOut     = fs.String("profile-out", "BENCH_profile.json", "phase-attribution artifact path for -profile")
		profKern    = fs.String("profile-kernel", defaultKernelPhases, "comma-separated kernel phases for the attribution gate")
		profRoot    = fs.String("profile-root", "generate", "phase subtree the kernel share is measured against")
		profLabMin  = fs.Float64("profile-min-labeled", 0, "fail unless at least this fraction of samples carries a phase label (0 = no gate)")
		profKernMin = fs.Float64("profile-kernel-min", 0, "fail unless the kernel phases hold at least this fraction of the -profile-root subtree's CPU (0 = no gate)")
		profMinSamp = fs.Int("profile-min-samples", 50, "skip the -profile gates (with a note) below this sample count")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *check {
		// The sentinel is a pure file check: no pipelines, no obs setup.
		return runCheck(stdout, *trajectory, *checkWin, *checkMin, *checkTolF)
	}
	if *profile != "" {
		// Like -check: pure file analysis, deterministic per profile.
		return runProfile(stdout, *profile, *profOut, *profKern, *profRoot, *profLabMin, *profKernMin, *profMinSamp)
	}
	ocli.ForceEnable = ocli.ForceEnable || *obsMode
	log, stop, err := ocli.Start(stderr)
	if err != nil {
		return err
	}
	defer func() {
		if serr := stop(); err == nil {
			err = serr
		}
	}()

	scale, err := parseScale(*scaleFlag)
	if err != nil {
		return err
	}
	if *table == 0 && *fig == 0 && !*ablations && !*forward {
		*all = true
	}

	opts := experiments.ScaledOptions(scale, *seed)
	opts.Workers = *workers
	if *epochs > 0 {
		opts.TrainEpochs = *epochs
	}
	opts.Log = log.Writer(obs.LevelDebug)

	var pipes []*experiments.Pipeline
	for _, name := range strings.Split(*benchList, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		p, err := experiments.NewPipeline(name, opts)
		if err != nil {
			return err
		}
		log.Infof("%s: built and trained (%v, accuracy %.1f%%)",
			name, p.TrainTime.Round(1e6), 100*p.Accuracy)
		pipes = append(pipes, p)
	}
	if len(pipes) == 0 {
		return fmt.Errorf("no benchmarks selected")
	}
	out := stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		out = f
	}

	if *all || *table == 1 {
		rows := make([]experiments.Table1Row, len(pipes))
		for i, p := range pipes {
			rows[i] = experiments.Table1(p)
		}
		if err := experiments.RenderTable1(out, rows); err != nil {
			return err
		}
	}
	if *all || *table == 2 {
		rows := make([]experiments.Table2Row, len(pipes))
		for i, p := range pipes {
			rows[i], err = experiments.Table2(p)
			if err != nil {
				return err
			}
		}
		if err := experiments.RenderTable2(out, rows); err != nil {
			return err
		}
	}
	if *all || *table == 3 {
		rows := make([]experiments.Table3Row, len(pipes))
		for i, p := range pipes {
			rows[i], err = experiments.Table3(p)
			if err != nil {
				return err
			}
		}
		if err := experiments.RenderTable3(out, rows); err != nil {
			return err
		}
	}
	if *all || *table == 4 {
		rows, err := experiments.Table4(pickPipe(pipes, "nmnist"))
		if err != nil {
			return err
		}
		if err := experiments.RenderTable4(out, rows); err != nil {
			return err
		}
	}
	if *all || *fig == 7 {
		if err := experiments.Fig7(out, pickPipe(pipes, "ibm-gesture"), 4); err != nil {
			return err
		}
	}
	if *all || *fig == 8 {
		p := pickPipe(pipes, "ibm-gesture")
		d, err := experiments.Fig8(p)
		if err != nil {
			return err
		}
		if err := experiments.RenderFig8(out, p, d); err != nil {
			return err
		}
	}
	if *all || *fig == 9 {
		p := pickPipe(pipes, "ibm-gesture")
		d, err := experiments.Fig9(p)
		if err != nil {
			return err
		}
		if err := experiments.RenderFig9(out, p, d, 10); err != nil {
			return err
		}
	}
	if *all || *ablations {
		if err := runAblations(out, pickPipe(pipes, "shd")); err != nil {
			return err
		}
	}
	if *all || *forward {
		if err := renderForward(out, pipes, *seed); err != nil {
			return err
		}
	}
	if *obsMode {
		m := obs.NewManifest(map[string]string{
			"tool":       "benchreport",
			"scale":      *scaleFlag,
			"seed":       strconv.FormatInt(*seed, 10),
			"workers":    strconv.Itoa(*workers),
			"benchmarks": *benchList,
		})
		if err := obs.WriteManifest(*manifest, m); err != nil {
			return err
		}
		log.Infof("run manifest written to %s", *manifest)

		// Append this run to the cumulative bench trajectory so counter
		// totals stay comparable across revisions, not just within one run.
		metrics := make(map[string]float64, len(m.Counters))
		for name, v := range m.Counters {
			metrics[name] = float64(v)
		}
		if err := obs.AppendTrajectory(*trajectory, obs.NewTrajectoryRecord("benchreport", metrics)); err != nil {
			return err
		}
		log.Infof("trajectory record appended to %s", *trajectory)
	}
	return nil
}

// pickPipe returns the pipeline for the preferred benchmark, falling back
// to the first one built.
func pickPipe(pipes []*experiments.Pipeline, prefer string) *experiments.Pipeline {
	for _, p := range pipes {
		if p.Benchmark == prefer {
			return p
		}
	}
	return pipes[0]
}

// renderForward times the fused forward kernels against the retained
// reference path on each pipeline's trained network and renders a small
// table — the CLI view of the BenchmarkForwardFused / BENCH_forward.json
// comparison. Divergent spike records are an error: bit-identity between
// the two engines is a correctness invariant, not a benchmark metric.
func renderForward(w io.Writer, pipes []*experiments.Pipeline, seed int64) error {
	const steps = 50
	fmt.Fprintf(w, "\nFused forward kernels vs reference path (%d steps, bit-identical records)\n", steps)
	fmt.Fprintf(w, "%-14s %12s %12s %9s\n", "benchmark", "fused", "reference", "speedup")
	for _, p := range pipes {
		rng := rand.New(rand.NewSource(seed))
		stim := tensor.RandBernoulli(rng, 0.3, append([]int{steps}, p.Net.InShape...)...)
		fused, ref := p.Net.NewScratch(), p.Net.NewScratch()
		ref.SetReference(true)
		frec, _ := fused.RunFrom(0, nil, stim)
		rrec, _ := ref.RunFrom(0, nil, stim)
		for li := range p.Net.Layers {
			if !tensor.Equal(frec.Layers[li], rrec.Layers[li], 0) {
				return fmt.Errorf("%s: fused forward diverges from reference path at layer %d", p.Benchmark, li)
			}
		}
		// Alternate the two engines at single-run granularity so machine
		// slow phases inflate both totals proportionally (see bench_test).
		var tF, tR time.Duration
		deadline := time.Now().Add(150 * time.Millisecond)
		n := 0
		for time.Now().Before(deadline) {
			s0 := time.Now()
			fused.RunFrom(0, nil, stim)
			s1 := time.Now()
			ref.RunFrom(0, nil, stim)
			tR += time.Since(s1)
			tF += s1.Sub(s0)
			n++
		}
		fmt.Fprintf(w, "%-14s %12v %12v %8.2fx\n", p.Benchmark,
			(tF / time.Duration(n)).Round(time.Microsecond),
			(tR / time.Duration(n)).Round(time.Microsecond),
			float64(tR)/float64(tF))
	}
	return nil
}

// runAblations executes the DESIGN.md §5 ablation suite.
func runAblations(w io.Writer, p *experiments.Pipeline) error {
	variants := []struct {
		name   string
		mutate func(*core.Config)
	}{
		{"no-stage2", func(c *core.Config) { c.DisableStage2 = true }},
		{"no-L3", func(c *core.Config) { c.DisableL3 = true }},
		{"no-L4", func(c *core.Config) { c.DisableL4 = true }},
		{"plain-sigmoid", func(c *core.Config) { c.PlainSigmoid = true }},
	}
	rows := make([]experiments.AblationResult, 0, len(variants))
	for _, v := range variants {
		row, err := experiments.Ablate(p, v.name, v.mutate)
		if err != nil {
			return err
		}
		rows = append(rows, row)
	}
	return experiments.RenderAblations(w, rows)
}

func parseScale(s string) (snn.ModelScale, error) {
	switch s {
	case "tiny":
		return snn.ScaleTiny, nil
	case "small":
		return snn.ScaleSmall, nil
	case "full":
		return snn.ScaleFull, nil
	default:
		return 0, fmt.Errorf("unknown scale %q (want tiny, small or full)", s)
	}
}
