package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/repro/snntest/internal/profparse"
)

// defaultKernelPhases are the spans where generation CPU is supposed to
// live: the fused stepLayer/LIF kernels run inside the restart growth
// loops, the stage-2 extension, and the T_in,min calibration (whose
// subtree covers the parallel per-candidate spans by name prefix). The
// verify.sh attribution gate checks that their cumulative share of the
// "generate" subtree stays high — CPU leaking into bookkeeping phases
// is exactly the regression PR 3 shipped blind.
const defaultKernelPhases = "generate/restart,generate/stage2,generate/calibrate"

// profileChecks records the gate evaluation alongside the fold in
// BENCH_profile.json, so CI artifacts show not just the table but what
// was asserted about it.
type profileChecks struct {
	MinSamples     int64   `json:"min_samples"`
	Gated          bool    `json:"gated"` // false when the sample floor skipped the gates
	MinLabeled     float64 `json:"min_labeled,omitempty"`
	KernelMin      float64 `json:"kernel_min,omitempty"`
	KernelPhases   string  `json:"kernel_phases,omitempty"`
	KernelRoot     string  `json:"kernel_root,omitempty"`
	KernelFraction float64 `json:"kernel_fraction"`
	Pass           bool    `json:"pass"`
}

// profileArtifact is the BENCH_profile.json schema (DESIGN.md §6).
type profileArtifact struct {
	Source string                `json:"source"`
	Report profparse.PhaseReport `json:"report"`
	Checks profileChecks         `json:"checks"`
}

// runProfile is the -profile mode: fold a pprof CPU profile by phase
// label, render the per-phase table, write BENCH_profile.json, and
// enforce the attribution gates. Pure file analysis — no pipelines, no
// obs setup — so the output is a deterministic function of the profile.
func runProfile(w io.Writer, path, outPath, kernelList, kernelRoot string, minLabeled, kernelMin float64, minSamples int) error {
	p, err := profparse.ParseFile(path)
	if err != nil {
		return err
	}
	r := profparse.FoldByPhase(p, "cpu")

	fmt.Fprintf(w, "phase-attributed CPU profile: %s\n", path)
	fmt.Fprintf(w, "%d samples, %s %s total, %.1f%% phase-labelled\n\n",
		r.TotalSamples, renderValue(r.TotalValue, r.SampleUnit), r.SampleUnit, 100*r.LabeledFraction)
	fmt.Fprintf(w, "%-36s %10s %6s %10s %6s %8s\n", "phase", "flat", "%", "cum", "%", "samples")
	for _, st := range r.Phases {
		fmt.Fprintf(w, "%-36s %10s %5.1f%% %10s %5.1f%% %8d\n",
			st.Phase, renderValue(st.Flat, r.SampleUnit), 100*st.FlatFraction,
			renderValue(st.Cum, r.SampleUnit), 100*st.CumFraction, st.Samples)
	}

	checks := profileChecks{
		MinSamples:   int64(minSamples),
		MinLabeled:   minLabeled,
		KernelMin:    kernelMin,
		KernelPhases: kernelList,
		KernelRoot:   kernelRoot,
		Pass:         true,
	}
	var kernelCum int64
	for _, phase := range strings.Split(kernelList, ",") {
		if phase = strings.TrimSpace(phase); phase != "" {
			kernelCum += r.CumValue(phase)
		}
	}
	if rootCum := r.CumValue(kernelRoot); rootCum > 0 {
		checks.KernelFraction = float64(kernelCum) / float64(rootCum)
	}
	fmt.Fprintf(w, "\nkernel share of %s: %.1f%% (phases: %s)\n", kernelRoot, 100*checks.KernelFraction, kernelList)

	var failures []string
	checks.Gated = r.TotalSamples >= int64(minSamples)
	if !checks.Gated {
		fmt.Fprintf(w, "gates skipped: %d samples < floor %d (run longer to gate)\n", r.TotalSamples, minSamples)
	} else {
		if minLabeled > 0 && r.LabeledFraction < minLabeled {
			failures = append(failures, fmt.Sprintf("labelled fraction %.3f < required %.3f", r.LabeledFraction, minLabeled))
		}
		if kernelMin > 0 {
			if r.CumValue(kernelRoot) == 0 {
				failures = append(failures, fmt.Sprintf("no CPU attributed to %s — cannot check kernel share", kernelRoot))
			} else if checks.KernelFraction < kernelMin {
				failures = append(failures, fmt.Sprintf("kernel share %.3f of %s < required %.3f", checks.KernelFraction, kernelRoot, kernelMin))
			}
		}
	}
	checks.Pass = len(failures) == 0

	if outPath != "" {
		art := profileArtifact{Source: path, Report: r, Checks: checks}
		data, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "profile report written to %s\n", outPath)
	}
	if len(failures) > 0 {
		return fmt.Errorf("profile attribution gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

// renderValue formats a sample value for the table: nanosecond units
// become milliseconds, anything else prints raw.
func renderValue(v int64, unit string) string {
	if unit == "nanoseconds" {
		return fmt.Sprintf("%.1fms", float64(v)/1e6)
	}
	return fmt.Sprintf("%d", v)
}
